// Online scoring simulation (the Fig 5 scenario): the deployed model is an
// ERM pipeline; LightMIRM is appended as a *companion runner* that can veto
// approvals. Sweeping the veto threshold trades a small number of extra
// refusals for a large reduction of the bad-debt rate. The companion is
// served through the compiled batch scorer (serve::ScoringSession), and the
// tail of the run reports its steady-state throughput.
#include <algorithm>
#include <cstdio>

#include "common/config.h"
#include "common/timer.h"
#include "core/experiment.h"
#include "metrics/threshold.h"
#include "obs/export.h"
#include "obs/metrics.h"

using namespace lightmirm;

int main(int argc, char** argv) {
  auto cfg_or = ConfigMap::FromArgs(argc, argv);
  if (!cfg_or.ok()) {
    std::fprintf(stderr, "%s\n", cfg_or.status().ToString().c_str());
    return 1;
  }
  core::ExperimentConfig config;
  config.generator.rows_per_year =
      static_cast<int>(cfg_or->GetInt("rows_per_year", 6000));
  config.model.trainer.epochs =
      static_cast<int>(cfg_or->GetInt("epochs", 60));
  config.trace_out = cfg_or->GetString("trace_out", "");

  auto runner_or = core::ExperimentRunner::Create(config);
  if (!runner_or.ok()) {
    std::fprintf(stderr, "%s\n", runner_or.status().ToString().c_str());
    return 1;
  }
  core::ExperimentRunner& runner = **runner_or;

  auto erm_or = runner.RunMethod(core::Method::kErm);
  // Train the companion head directly so the example can hold onto the
  // model and serve it through its compiled scoring session.
  auto lm_model_or = core::GbdtLrModel::TrainWithBooster(
      runner.shared_booster(), runner.train(), core::Method::kLightMirm,
      config.model);
  if (!erm_or.ok() || !lm_model_or.ok()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }
  auto companion_or = lm_model_or->Predict(runner.test());
  if (!companion_or.ok()) {
    std::fprintf(stderr, "scoring failed: %s\n",
                 companion_or.status().ToString().c_str());
    return 1;
  }
  const std::vector<int>& labels = runner.test().labels();
  const std::vector<double>& online = erm_or->test_scores;
  const std::vector<double>& companion = *companion_or;

  // Baseline: the online (ERM) model approves score < 0.5.
  const double online_bad = metrics::BadDebtRateAt(labels, online, 0.5);
  std::printf("== Online companion-runner simulation ==\n");
  std::printf("online model bad-debt rate at threshold 0.5: %.2f%%\n\n",
              100.0 * online_bad);

  std::printf("%-10s %-14s %-14s %-14s\n", "threshold", "refusal_rate",
              "fp_rate", "bad_debt_rate");
  for (int i = 1; i <= 19; ++i) {
    const double t = static_cast<double>(i) / 20.0;
    // The companion vetoes an approval when its score >= t.
    int64_t approved = 0, bad = 0, refused = 0, fp = 0, good = 0;
    for (size_t r = 0; r < labels.size(); ++r) {
      if (labels[r] == 0) ++good;
      const bool refuse = online[r] >= 0.5 || companion[r] >= t;
      if (refuse) {
        ++refused;
        if (labels[r] == 0) ++fp;
      } else {
        ++approved;
        if (labels[r] == 1) ++bad;
      }
    }
    const double bad_rate =
        approved > 0 ? static_cast<double>(bad) / approved : 0.0;
    std::printf("%-10.2f %-14.4f %-14.4f %-14.4f\n", t,
                static_cast<double>(refused) / labels.size(),
                static_cast<double>(fp) / good, bad_rate);
  }

  const double combined_bad = [&] {
    int64_t approved = 0, bad = 0;
    for (size_t r = 0; r < labels.size(); ++r) {
      if (online[r] < 0.5 && companion[r] < 0.5) {
        ++approved;
        if (labels[r] == 1) ++bad;
      }
    }
    return approved > 0 ? static_cast<double>(bad) / approved : 0.0;
  }();
  std::printf("\nwith the companion at threshold 0.5 the bad-debt rate "
              "drops %.2f%% -> %.2f%% (%.0f%% reduction)\n",
              100.0 * online_bad, 100.0 * combined_bad,
              online_bad > 0
                  ? 100.0 * (1.0 - combined_bad / online_bad)
                  : 0.0);

  // Steady-state serving throughput of the companion on the test batch:
  // the compiled session reuses the output buffer, so repeated batches
  // allocate nothing.
  const auto session = lm_model_or->scoring_session();
  std::vector<double> scratch;
  double best = 1e300;
  for (int i = 0; i < 10; ++i) {
    WallTimer watch;
    if (!session->Score(runner.test().features(), &runner.test().envs(),
                        &scratch)
             .ok()) {
      std::fprintf(stderr, "batch scoring failed\n");
      return 1;
    }
    best = std::min(best, watch.Seconds());
  }
  std::printf("\ncompanion batch scoring: %zu rows in %.2f ms (%.0f "
              "rows/sec, compiled path)\n",
              runner.test().NumRows(), 1e3 * best,
              static_cast<double>(runner.test().NumRows()) / best);

  // telemetry_out=serve.json dumps the registry after the scoring loop, so
  // the file carries the companion's serve.batch.seconds quantiles.
  const std::string telemetry_out =
      cfg_or->GetString("telemetry_out", "");
  if (!telemetry_out.empty()) {
    const Status st = obs::WriteTelemetryFile(
        *obs::MetricsRegistry::Global(), telemetry_out);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", telemetry_out.c_str());
  }
  return 0;
}
