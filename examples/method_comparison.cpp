// Method comparison: runs every training paradigm the paper evaluates on
// one shared feature extractor and prints the Table-I-style comparison.
#include <cstdio>

#include "common/config.h"
#include "core/experiment.h"
#include "core/report.h"

using namespace lightmirm;

int main(int argc, char** argv) {
  auto cfg_or = ConfigMap::FromArgs(argc, argv);
  if (!cfg_or.ok()) {
    std::fprintf(stderr, "%s\n", cfg_or.status().ToString().c_str());
    return 1;
  }
  core::ExperimentConfig config;
  const ConfigMap& cfg = *cfg_or;
  auto& gen = config.generator;
  gen.rows_per_year = static_cast<int>(cfg.GetInt("rows_per_year", 6000));
  gen.seed = static_cast<uint64_t>(cfg.GetInt("seed", 42));
  gen.invariant_strength =
      cfg.GetDouble("invariant_strength", gen.invariant_strength);
  gen.spurious_strength =
      cfg.GetDouble("spurious_strength", gen.spurious_strength);
  gen.base_rate_logit = cfg.GetDouble("base_rate_logit", gen.base_rate_logit);
  gen.covariate_shift = cfg.GetDouble("covariate_shift", gen.covariate_shift);
  config.model.booster.num_trees =
      static_cast<int>(cfg.GetInt("trees", config.model.booster.num_trees));
  config.model.trainer.epochs = static_cast<int>(cfg.GetInt("epochs", 60));
  config.model.trainer.optimizer.learning_rate =
      cfg.GetDouble("lr", config.model.trainer.optimizer.learning_rate);
  config.model.meta_irm.inner_lr =
      cfg.GetDouble("inner_lr", config.model.meta_irm.inner_lr);
  config.model.light_mirm.inner_lr = config.model.meta_irm.inner_lr;
  config.model.meta_irm.lambda =
      cfg.GetDouble("lambda", config.model.meta_irm.lambda);
  config.model.light_mirm.lambda = config.model.meta_irm.lambda;
  const bool iid = cfg.GetBool("iid", false);
  config.iid_split = iid;

  auto runner_or = core::ExperimentRunner::Create(config);
  if (!runner_or.ok()) {
    std::fprintf(stderr, "%s\n", runner_or.status().ToString().c_str());
    return 1;
  }
  core::ExperimentRunner& runner = **runner_or;

  std::printf("== Method comparison (%s split) ==\n\n",
              iid ? "i.i.d." : "temporal 2016-2019 / 2020");
  std::vector<core::MethodResult> results;
  for (core::Method method : core::AllMethods()) {
    std::printf("training %s ...\n", core::MethodName(method).c_str());
    auto result_or = runner.RunMethod(method);
    if (!result_or.ok()) {
      std::fprintf(stderr, "%s\n", result_or.status().ToString().c_str());
      return 1;
    }
    results.push_back(std::move(*result_or));
  }
  std::printf("\n%s\n", core::FormatComparisonTable(results).c_str());
  return 0;
}
