// Fairness audit (the Fig 1 scenario): train an ERM model on pooled data
// and audit its per-province performance spread, then show how LightMIRM
// narrows the gap. Also reports cross-province false-positive-rate
// disparity (the paper's calibration-style fairness notion).
#include <cstdio>

#include "common/config.h"
#include "core/experiment.h"
#include "core/report.h"
#include "gbdt/importance.h"
#include "metrics/bootstrap.h"
#include "metrics/calibration.h"

using namespace lightmirm;

int main(int argc, char** argv) {
  auto cfg_or = ConfigMap::FromArgs(argc, argv);
  if (!cfg_or.ok()) {
    std::fprintf(stderr, "%s\n", cfg_or.status().ToString().c_str());
    return 1;
  }
  core::ExperimentConfig config;
  config.generator.rows_per_year =
      static_cast<int>(cfg_or->GetInt("rows_per_year", 6000));
  config.model.trainer.epochs =
      static_cast<int>(cfg_or->GetInt("epochs", 60));

  auto runner_or = core::ExperimentRunner::Create(config);
  if (!runner_or.ok()) {
    std::fprintf(stderr, "%s\n", runner_or.status().ToString().c_str());
    return 1;
  }
  core::ExperimentRunner& runner = **runner_or;

  std::printf("== Province fairness audit ==\n\n");

  // Explainability leg of the audit (the paper's FEAS requirements): which
  // raw features the automatic feature extraction keys on, bucketed into
  // interpretable bureau numerics vs drifting bureau attributes vs noise.
  {
    const auto importances = gbdt::SplitImportance(
        runner.booster(), runner.train().schema());
    std::printf("top feature importances of the extractor:\n%s\n",
                gbdt::FormatImportanceTable(importances, 10).c_str());
    const auto buckets = gbdt::BucketImportance(
        importances, {"bureau_attr_", "ext_attr_", "vehicle_",
                      "occupation_"});
    std::printf("split share by feature family:\n");
    for (const auto& b : buckets) {
      std::printf("  %-14s %5.1f%%\n", b.prefix.c_str(), 100.0 * b.share);
    }
    std::printf("  (unprefixed = interpretable causal numerics)\n\n");
  }
  for (core::Method method :
       {core::Method::kErm, core::Method::kLightMirm}) {
    auto result_or = runner.RunMethod(method);
    if (!result_or.ok()) {
      std::fprintf(stderr, "%s\n", result_or.status().ToString().c_str());
      return 1;
    }
    const core::MethodResult& r = *result_or;
    std::printf("--- %s ---\n%s", r.method_name.c_str(),
                core::FormatProvinceTable(r).c_str());
    const double spread = r.report.per_env.empty()
                              ? 0.0
                              : (r.report.mean_ks - r.report.worst_ks) /
                                    r.report.mean_ks;
    std::printf("mKS %.4f | wKS %.4f | worst is %.1f%% below the mean\n",
                r.report.mean_ks, r.report.worst_ks, 100.0 * spread);
    auto disparity = metrics::FprDisparity(runner.test(), r.test_scores, 0.5);
    if (disparity.ok()) {
      std::printf("cross-province FPR disparity at threshold 0.5: %.4f\n",
                  *disparity);
    }
    auto ks_ci =
        metrics::BootstrapKs(runner.test().labels(), r.test_scores);
    if (ks_ci.ok()) {
      std::printf("pooled test KS %.4f, 95%% bootstrap CI [%.4f, %.4f]\n",
                  ks_ci->point, ks_ci->lo, ks_ci->hi);
    }
    std::printf("\n");
  }
  return 0;
}
