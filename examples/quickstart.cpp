// Quickstart: generate a synthetic auto-loan dataset, train the GBDT+LR
// pipeline with ERM and with LightMIRM, and compare per-province fairness.
//
// Run:   example_quickstart [rows_per_year=6000] [epochs=60] [threads=4] ...
//
// threads=N parallelizes generation, GBDT training, scoring and the LR
// head (0 = all hardware threads); results are identical at every value.
// telemetry_out=run.json dumps the telemetry registry (training spans,
// meta-loss trajectories, serving latency quantiles) after each method.
#include <cstdio>

#include "common/config.h"
#include "common/thread_pool.h"
#include "core/experiment.h"
#include "core/report.h"

using namespace lightmirm;

int main(int argc, char** argv) {
  auto cfg_or = ConfigMap::FromArgs(argc, argv);
  if (!cfg_or.ok()) {
    std::fprintf(stderr, "%s\n", cfg_or.status().ToString().c_str());
    return 1;
  }
  const ConfigMap& cfg = *cfg_or;

  core::ExperimentConfig config;
  config.generator.rows_per_year =
      static_cast<int>(cfg.GetInt("rows_per_year", 6000));
  config.generator.seed = static_cast<uint64_t>(cfg.GetInt("seed", 42));
  config.model.trainer.epochs = static_cast<int>(cfg.GetInt("epochs", 60));
  config.threads = static_cast<int>(cfg.GetInt("threads", 0));
  config.model.trainer.threads = config.threads;
  config.telemetry_out = cfg.GetString("telemetry_out", "");
  config.trace_out = cfg.GetString("trace_out", "");

  std::printf("== LightMIRM quickstart ==\n");
  std::printf("Generating %d rows/year x 5 years of synthetic loan data...\n",
              config.generator.rows_per_year);
  auto runner_or = core::ExperimentRunner::Create(config);
  if (!runner_or.ok()) {
    std::fprintf(stderr, "%s\n", runner_or.status().ToString().c_str());
    return 1;
  }
  core::ExperimentRunner& runner = **runner_or;
  std::printf("train rows: %zu (2016-2019), test rows: %zu (2020), "
              "default rate: %.1f%%\n",
              runner.train().NumRows(), runner.test().NumRows(),
              100.0 * runner.train().PositiveRate());
  std::printf("GBDT feature extractor: %zu trees, %d leaf features\n",
              runner.booster().trees().size(),
              runner.booster().TotalLeaves());
  {
    // Reference point: the booster's own scores (pure ERM, no LR head).
    const std::vector<double> gbdt_scores =
        runner.booster().PredictProbs(runner.test().features());
    auto report = metrics::EvaluatePerEnv(runner.test(), gbdt_scores,
                                          config.eval_min_rows);
    if (report.ok()) {
      std::printf("GBDT-only test metrics: mKS %.4f wKS %.4f mAUC %.4f "
                  "wAUC %.4f\n\n",
                  report->mean_ks, report->worst_ks, report->mean_auc,
                  report->worst_auc);
    }
  }

  std::vector<core::MethodResult> results;
  for (core::Method method :
       {core::Method::kErm, core::Method::kLightMirm}) {
    auto result_or = runner.RunMethod(method);
    if (!result_or.ok()) {
      std::fprintf(stderr, "%s\n", result_or.status().ToString().c_str());
      return 1;
    }
    results.push_back(std::move(*result_or));
  }

  std::printf("%s\n", core::FormatComparisonTable(results).c_str());
  for (const core::MethodResult& r : results) {
    std::printf("[%s] worst province: %s (KS %.4f)\n", r.method_name.c_str(),
                runner.test().EnvName(r.report.worst_ks_env).c_str(),
                r.report.worst_ks);
  }
  std::printf("\nPer-province breakdown for %s:\n%s\n",
              results.back().method_name.c_str(),
              core::FormatProvinceTable(results.back()).c_str());
  return 0;
}
