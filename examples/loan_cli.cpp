// Command-line workflow over CSV files: generate a demo dataset, train a
// pipeline, persist it, and score new applications — the full deployment
// loop of the library.
//
//   example_loan_cli mode=generate out=loans.csv rows_per_year=4000
//   example_loan_cli mode=train data=loans.csv model=model.txt \
//       method=light_mirm epochs=200 threads=4
//   example_loan_cli mode=score model=model.txt data=loans.csv
//   example_loan_cli mode=evaluate model=model.txt data=loans.csv
//
// All modes accept threads=N (0 = all hardware threads, 1 = serial); the
// outputs are bit-identical at every thread count.
#include <cstdio>

#include "common/config.h"
#include "common/thread_pool.h"
#include "core/model_io.h"
#include "data/csv.h"
#include "data/env_split.h"
#include "data/loan_generator.h"
#include "metrics/env_report.h"

using namespace lightmirm;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Generate(const ConfigMap& cfg) {
  data::LoanGeneratorOptions options;
  options.rows_per_year = static_cast<int>(cfg.GetInt("rows_per_year", 4000));
  options.seed = static_cast<uint64_t>(cfg.GetInt("seed", 42));
  const std::string out = cfg.GetString("out", "loans.csv");
  auto dataset = data::LoanGenerator(options).Generate();
  if (!dataset.ok()) return Fail(dataset.status());
  const Status st = data::WriteCsv(*dataset, out);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %zu rows x %zu features to %s\n", dataset->NumRows(),
              dataset->NumFeatures(), out.c_str());
  return 0;
}

int Train(const ConfigMap& cfg) {
  auto dataset = data::ReadCsv(cfg.GetString("data", "loans.csv"));
  if (!dataset.ok()) return Fail(dataset.status());
  auto method = core::MethodFromName(cfg.GetString("method", "light_mirm"));
  if (!method.ok()) return Fail(method.status());

  // Train on the pre-test years only when the file spans 2020.
  data::Dataset train = std::move(*dataset);
  bool split_off_2020 = false;
  for (int y : train.years()) {
    if (y >= 2020) {
      split_off_2020 = true;
      break;
    }
  }
  if (split_off_2020) {
    auto split = data::TemporalSplit(train, 2020);
    if (!split.ok()) return Fail(split.status());
    train = std::move(split->train);
    std::printf("training on %zu pre-2020 rows\n", train.NumRows());
  }

  core::GbdtLrOptions options;
  options.trainer.epochs = static_cast<int>(cfg.GetInt("epochs", 200));
  options.booster.num_trees =
      static_cast<int>(cfg.GetInt("trees", options.booster.num_trees));
  auto model = core::GbdtLrModel::Train(train, *method, options);
  if (!model.ok()) return Fail(model.status());
  const std::string path = cfg.GetString("model", "model.txt");
  const Status st = core::SaveModelToFile(*model, path);
  if (!st.ok()) return Fail(st);
  std::printf("trained %s and saved the pipeline to %s\n",
              core::MethodName(*method).c_str(), path.c_str());
  return 0;
}

int Score(const ConfigMap& cfg, bool evaluate) {
  auto model = core::LoadModelFromFile(cfg.GetString("model", "model.txt"));
  if (!model.ok()) return Fail(model.status());
  auto dataset = data::ReadCsv(cfg.GetString("data", "loans.csv"));
  if (!dataset.ok()) return Fail(dataset.status());
  auto scores = model->Predict(*dataset);
  if (!scores.ok()) return Fail(scores.status());
  if (!evaluate) {
    const size_t limit =
        static_cast<size_t>(cfg.GetInt("limit", 20));
    std::printf("row,env,score\n");
    for (size_t i = 0; i < std::min(limit, scores->size()); ++i) {
      std::printf("%zu,%s,%.6f\n", i,
                  dataset->EnvName(dataset->envs()[i]).c_str(),
                  (*scores)[i]);
    }
    std::printf("... (%zu rows scored)\n", scores->size());
    return 0;
  }
  // Evaluate out-of-time (2020) when the file spans it, so the numbers
  // reflect deployment rather than training fit.
  data::Dataset eval_data = std::move(*dataset);
  std::vector<double> eval_scores = std::move(*scores);
  bool has_2020 = false;
  for (int y : eval_data.years()) {
    if (y >= 2020) {
      has_2020 = true;
      break;
    }
  }
  if (has_2020) {
    std::vector<size_t> rows;
    for (size_t i = 0; i < eval_data.NumRows(); ++i) {
      if (eval_data.years()[i] >= 2020) rows.push_back(i);
    }
    std::vector<double> subset_scores;
    for (size_t r : rows) subset_scores.push_back(eval_scores[r]);
    auto subset = eval_data.Select(rows);
    if (!subset.ok()) return Fail(subset.status());
    eval_data = std::move(*subset);
    eval_scores = std::move(subset_scores);
    std::printf("evaluating on the %zu rows of the 2020 test year\n",
                eval_data.NumRows());
  }
  auto report = metrics::EvaluatePerEnv(eval_data, eval_scores, 50);
  if (!report.ok()) return Fail(report.status());
  std::printf("mKS %.4f | wKS %.4f | mAUC %.4f | wAUC %.4f over %zu "
              "provinces\n",
              report->mean_ks, report->worst_ks, report->mean_auc,
              report->worst_auc, report->per_env.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto cfg = ConfigMap::FromArgs(argc, argv);
  if (!cfg.ok()) return Fail(cfg.status());
  SetDefaultThreads(static_cast<int>(cfg->GetInt("threads", 0)));
  const std::string mode = cfg->GetString("mode", "demo");
  if (mode == "generate") return Generate(*cfg);
  if (mode == "train") return Train(*cfg);
  if (mode == "score") return Score(*cfg, false);
  if (mode == "evaluate") return Score(*cfg, true);
  if (mode == "demo") {
    // Self-contained end-to-end demo in a temp directory.
    ConfigMap demo = *cfg;
    demo.Set("out", "/tmp/lightmirm_demo.csv");
    demo.Set("data", "/tmp/lightmirm_demo.csv");
    demo.Set("model", "/tmp/lightmirm_demo_model.txt");
    demo.Set("rows_per_year", demo.GetString("rows_per_year", "2000"));
    if (int rc = Generate(demo)) return rc;
    if (int rc = Train(demo)) return rc;
    return Score(demo, true);
  }
  std::fprintf(stderr,
               "usage: mode=generate|train|score|evaluate|demo ...\n");
  return 1;
}
