#include "data/dataset.h"

#include <algorithm>

#include "common/string_util.h"

namespace lightmirm::data {

Dataset::Dataset(Schema schema, Matrix features, std::vector<int> labels,
                 std::vector<int> envs, std::vector<int> years,
                 std::vector<int> halves)
    : schema_(std::move(schema)),
      features_(std::move(features)),
      labels_(std::move(labels)),
      envs_(std::move(envs)),
      years_(std::move(years)),
      halves_(std::move(halves)) {}

std::string Dataset::EnvName(int e) const {
  if (e >= 0 && static_cast<size_t>(e) < env_names_.size()) {
    return env_names_[e];
  }
  return StrFormat("env%d", e);
}

int Dataset::NumEnvs() const {
  int max_env = -1;
  for (int e : envs_) max_env = std::max(max_env, e);
  return max_env + 1;
}

double Dataset::PositiveRate() const {
  if (labels_.empty()) return 0.0;
  double pos = 0.0;
  for (int y : labels_) pos += y;
  return pos / static_cast<double>(labels_.size());
}

Result<Dataset> Dataset::Select(const std::vector<size_t>& rows) const {
  Matrix feats(rows.size(), NumFeatures());
  std::vector<int> labels(rows.size());
  std::vector<int> envs(rows.size());
  std::vector<int> years(rows.size());
  std::vector<int> halves(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    const size_t r = rows[i];
    if (r >= NumRows()) {
      return Status::OutOfRange(
          StrFormat("row index %zu out of range (%zu rows)", r, NumRows()));
    }
    std::copy(features_.Row(r), features_.Row(r) + NumFeatures(),
              feats.Row(i));
    labels[i] = labels_[r];
    envs[i] = envs_[r];
    years[i] = years_[r];
    halves[i] = halves_[r];
  }
  Dataset out(schema_, std::move(feats), std::move(labels), std::move(envs),
              std::move(years), std::move(halves));
  out.set_env_names(env_names_);
  return out;
}

Status Dataset::Validate() const {
  const size_t n = NumRows();
  if (labels_.size() != n || envs_.size() != n || years_.size() != n ||
      halves_.size() != n) {
    return Status::FailedPrecondition(StrFormat(
        "column length mismatch: %zu rows but labels=%zu envs=%zu years=%zu "
        "halves=%zu",
        n, labels_.size(), envs_.size(), years_.size(), halves_.size()));
  }
  if (schema_.num_features() != NumFeatures()) {
    return Status::FailedPrecondition(
        StrFormat("schema has %zu fields but matrix has %zu columns",
                  schema_.num_features(), NumFeatures()));
  }
  for (size_t i = 0; i < n; ++i) {
    if (labels_[i] != 0 && labels_[i] != 1) {
      return Status::FailedPrecondition(
          StrFormat("label at row %zu is %d, expected 0 or 1", i, labels_[i]));
    }
    if (envs_[i] < 0) {
      return Status::FailedPrecondition(
          StrFormat("negative environment id at row %zu", i));
    }
  }
  return Status::OK();
}

}  // namespace lightmirm::data
