// Synthetic auto-loan application generator standing in for the proprietary
// Chery FS transaction data (1.4M records, 210 features, 31 provinces,
// 2016-2020). See DESIGN.md §2 for the substitution rationale.
//
// The generative model plants the structure every experiment in the paper
// keys on:
//   * an *invariant* default mechanism: a latent creditworthiness vector z
//     drives the label through a weight vector shared by all provinces and
//     all years, observed through 12 noisy numeric features;
//   * *spurious* bureau attributes that agree with the label with a
//     province-dependent probability during the training years and drift
//     (partially or fully flip) in the 2020 test year;
//   * covariate shift: province-dependent feature means, vehicle-type and
//     occupation mixes that depend on the province economy and on the year
//     (Fig 4), and Guangdong's transaction share halving in 2020 (Fig 10);
//   * concept shift: a COVID-19 shock in Hubei in H1-2020 that raises the
//     default rate, weakens the invariant signal, and flips the spurious
//     patterns, rolling back in H2-2020 (Fig 11);
//   * underrepresented provinces (Xinjiang, Qinghai, Tibet, Ningxia) whose
//     spurious patterns disagree with the national ones, so an ERM model
//     that exploits spurious features degrades there (Fig 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/column_store.h"
#include "data/dataset.h"

namespace lightmirm::data {

/// Static per-province generation parameters.
struct ProvinceProfile {
  std::string name;
  /// Base share of applications over the 2016-2019 training years.
  double share = 0.0;
  /// Economic development score in [0,1]; drives vehicle mix and feature
  /// noise (developed provinces have cleaner bureau data).
  double economy = 0.5;
  /// Probability that a spurious attribute agrees with the label during
  /// training years.
  double spurious_agree_train = 0.9;
  /// How much of the (signed, centered) spurious agreement survives into
  /// 2020: p_2020 = 0.5 + (p_train - 0.5) * retention. Negative values
  /// flip the pattern.
  double retention_2020 = 0.3;
  /// Additive province offset on the default logit.
  double base_logit_offset = 0.0;
};

/// Tunable knobs of the generator. Defaults produce ~60k rows in a few
/// hundred milliseconds; scale `rows_per_year` up for paper-scale runs.
struct LoanGeneratorOptions {
  uint64_t seed = 42;
  int rows_per_year = 12000;
  int first_year = 2016;
  int last_year = 2020;

  int latent_dim = 8;
  int num_numeric = 12;  ///< noisy views of the causal latent
  int num_spurious = 32;
  int num_noise = 154;

  /// Logit scale of the linear part of the invariant (causal) signal.
  double invariant_strength = 2.1;
  /// Logit scale of the nonlinear invariant terms (threshold effects and
  /// factor interactions). These are what the GBDT feature extraction is
  /// for: a linear model on raw features cannot capture them.
  double nonlinear_strength = 2.4;
  /// Per-feature logit-equivalent strength of a spurious attribute.
  double spurious_strength = 0.45;
  /// Base default logit; -5.0 (with the default signal strengths) gives
  /// roughly a 9% default rate.
  double base_rate_logit = -4.5;
  /// Baseline observation noise on numeric features.
  double numeric_noise = 0.45;
  /// Magnitude of province-dependent numeric mean shifts.
  double covariate_shift = 0.4;
  /// Guangdong share multiplier in 2020 (Fig 10).
  double guangdong_2020_share_factor = 0.5;
  /// COVID shock applied to Hubei in H1-2020 (Fig 11).
  double covid_logit_shock = 1.6;
  double covid_invariant_retention = 0.75;
  double covid_spurious_retention = -0.1;
};

/// Deterministic synthetic loan-application generator. The same options
/// always produce the same dataset.
class LoanGenerator {
 public:
  explicit LoanGenerator(LoanGeneratorOptions options);

  /// Names of the 31 provinces, index == environment id.
  static const std::vector<std::string>& ProvinceNames();

  /// Environment id of a named province, or NotFound.
  static Result<int> ProvinceIndex(const std::string& name);

  /// Per-province generation profiles (fixed by the seed).
  const std::vector<ProvinceProfile>& profiles() const { return profiles_; }

  const LoanGeneratorOptions& options() const { return options_; }

  /// Total feature dimension: numeric + vehicle(4) + occupation(8) +
  /// spurious + noise.
  int NumFeatures() const;

  /// Generates the full dataset (all years). Rows are ordered by year.
  /// If `true_logits` is non-null it receives the generative default logit
  /// of every row (the Bayes-optimal score), useful for diagnostics and
  /// for upper-bounding achievable metrics in tests.
  Result<Dataset> Generate(std::vector<double>* true_logits = nullptr) const;

  /// Streams the full dataset into a compressed column store at `path`
  /// instead of materializing it: rows are generated a few shards at a
  /// time (bounded memory at any rows_per_year) and appended to a
  /// ColumnStoreWriter. The generator is row-sharded with a per-shard rng
  /// stream, so the rows written are bit-identical to Generate()'s —
  /// reading the store back (lossless encoding) reproduces the in-memory
  /// dataset exactly. Returns the number of rows written.
  Result<uint64_t> GenerateToStore(
      const std::string& path,
      const ColumnStoreOptions& store_options = {}) const;

  /// Province application shares for a given year (normalized).
  std::vector<double> YearShares(int year) const;

  /// Vehicle-type mix for a (province, year); 4 probabilities
  /// (new_sedan, used_car, trailer_truck, suv).
  std::vector<double> VehicleMix(int province, int year) const;

 private:
  /// Shared validation of the generation options (both entry points).
  Status CheckOptions() const;

  /// Feature schema of the generated dataset.
  std::vector<FieldSpec> BuildFields() const;

  /// Province-dependent numeric mean shifts (covariate shift), fixed by
  /// the seed.
  std::vector<std::vector<double>> MeanShifts() const;

  /// Generates global rows [begin, end) — one shard: `shard` must be
  /// begin / kGeneratorRowGrain and end - begin <= the grain — into output
  /// slots [0, end - begin) of the given buffers (`feats` points at row
  /// `begin`'s feature slot, stride NumFeatures()). Drawing from the
  /// shard's own rng stream makes the rows a pure function of the options
  /// and the global row range, which is what keeps Generate and
  /// GenerateToStore bit-identical.
  void GenerateShard(size_t shard, size_t begin, size_t end,
                     const std::vector<std::vector<double>>& year_shares,
                     const std::vector<std::vector<double>>& mean_shift,
                     const Rng& base, double* feats, int* labels, int* envs,
                     int* years, int* halves, double* true_logits) const;

  LoanGeneratorOptions options_;
  std::vector<ProvinceProfile> profiles_;
  std::vector<double> invariant_weights_;  // latent_dim
  Matrix numeric_mixing_;                  // num_numeric x latent_dim
  std::vector<double> vehicle_logit_;      // 4, invariant effect on default
  std::vector<double> occupation_logit_;   // 8
};

}  // namespace lightmirm::data
