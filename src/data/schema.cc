#include "data/schema.h"

namespace lightmirm::data {

size_t Schema::AddField(FieldSpec spec) {
  fields_.push_back(std::move(spec));
  return fields_.size() - 1;
}

Result<size_t> Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("no field named '" + name + "'");
}

bool Schema::operator==(const Schema& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    const FieldSpec& a = fields_[i];
    const FieldSpec& b = other.fields_[i];
    if (a.name != b.name || a.kind != b.kind ||
        a.cardinality != b.cardinality) {
      return false;
    }
  }
  return true;
}

}  // namespace lightmirm::data
