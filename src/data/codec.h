// Self-contained column codecs for the compressed chunk store
// (data/column_store.h). No external compression library: every codec is a
// few hundred lines of bit twiddling chosen for the shapes loan columns
// actually take —
//
//   * delta + bitpack       monotone-ish integers (ids, timestamps, years)
//   * RLE + dictionary      low-cardinality integers (province, label, half)
//   * byte-stream-split     doubles, lossless: the s-th byte of every value
//                           forms stream s, and each stream independently
//                           picks raw / RLE / dictionary+bitpack — sign and
//                           exponent bytes collapse, mantissa bytes stay raw
//   * quantized-float       doubles through gbdt::QuantizeThreshold (the
//                           exact float image the SIMD serving plane uses),
//                           then 4-stream byte-split — halves the mantissa
//                           cost while scoring stays bit-identical on the
//                           SIMD path
//   * double dictionary     low-cardinality doubles (one-hot columns),
//                           matched on bit patterns so NaN payloads survive
//   * serving grid          doubles quantized to the interval structure of a
//                           trained forest's per-feature thresholds: the
//                           stored index preserves every `x <= threshold`
//                           comparison the forest can make, so *scores* are
//                           bit-identical on both the scalar and SIMD
//                           kernels at a few bits per value
//
// Every decoder takes the expected value count from the caller (the chunk
// header owns row counts) and bounds-checks the payload, so a truncated or
// corrupt file surfaces as a Status, never as UB.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace lightmirm::data {

/// Wire identifier of the codec a column chunk was written with.
enum class ColumnCodec : uint8_t {
  kDeltaBitpack = 1,
  kRleDictionary = 2,
  kByteStreamSplit = 3,
  kQuantizedFloat = 4,
  kDoubleDictionary = 5,
  kServingGrid = 6,
};

/// Display name ("delta_bitpack", ...); "unknown" for invalid ids.
const char* ColumnCodecName(ColumnCodec codec);

/// LEB128 varint append/read (read is bounds-checked against `size`).
void AppendVarint(uint64_t value, std::vector<uint8_t>* out);
Status ReadVarint(const uint8_t* bytes, size_t size, size_t* pos,
                  uint64_t* value);

/// Zigzag mapping of signed to unsigned (small magnitudes stay small).
uint64_t ZigzagEncode(int64_t value);
int64_t ZigzagDecode(uint64_t value);

/// Delta + bitpack: first value varint-zigzag, then all deltas zigzagged
/// and packed at the chunk's max delta width. Decodes exactly `n` values.
void EncodeDeltaBitpack(const int64_t* values, size_t n,
                        std::vector<uint8_t>* out);
Status DecodeDeltaBitpack(const uint8_t* bytes, size_t size, size_t n,
                          int64_t* out);

/// Dictionary (first-appearance order) + the smaller of RLE runs or
/// bitpacked indices. The right codec for province/label/half columns.
void EncodeRleDictionary(const int64_t* values, size_t n,
                         std::vector<uint8_t>* out);
Status DecodeRleDictionary(const uint8_t* bytes, size_t size, size_t n,
                           int64_t* out);

/// Lossless doubles: 8 byte streams, each independently raw / RLE /
/// dictionary+bitpack (whichever is smallest). Bit-exact round trip,
/// including NaN payloads, ±inf and signed zeros.
void EncodeByteStreamSplit(const double* values, size_t n,
                           std::vector<uint8_t>* out);
Status DecodeByteStreamSplit(const uint8_t* bytes, size_t size, size_t n,
                             double* out);

/// Doubles through gbdt::QuantizeThreshold (largest float <= value — the
/// serving plane's rounding), stored as 4 float byte streams. Lossy in the
/// 53-bit space, exact in the float space the SIMD kernels compare in:
/// re-quantizing a decoded value is the identity.
void EncodeQuantizedFloat(const double* values, size_t n,
                          std::vector<uint8_t>* out);
Status DecodeQuantizedFloat(const uint8_t* bytes, size_t size, size_t n,
                            double* out);

/// Dictionary codec for low-cardinality double columns (one-hot flags,
/// categorical codes stored as doubles). Returns false — leaving `out`
/// untouched — when the chunk has more than `max_dict` distinct bit
/// patterns; callers then fall back to a stream codec.
bool TryEncodeDoubleDictionary(const double* values, size_t n,
                               size_t max_dict, std::vector<uint8_t>* out);
Status DecodeDoubleDictionary(const uint8_t* bytes, size_t size, size_t n,
                              double* out);

/// Serving-grid codec. `grid` is the sorted unique float threshold set a
/// trained forest compares this feature against (serve::ScoringFeatureGrid).
/// Each value stores the index of the first grid entry its float image is
/// <= (grid.size() when above all of them, or NaN — both compare false
/// against every threshold, exactly like the kernels' NaN-goes-right
/// rule). Decoding returns the grid entry itself, or NaN for the top
/// interval (false against every threshold, like the value it replaces):
/// a float-valued double that decides every forest comparison exactly as
/// the quantized descent over the original value — what the SIMD feature
/// plane sees — and, being float-representable, decides identically under
/// the scalar kernel's raw double compares (the gbdt::QuantizeThreshold
/// tie invariant). The raw double comparison of the original is preserved
/// too except when it lies in the sub-float-ULP window above a threshold,
/// where the two kernels already disagree on uncompressed data.
void EncodeServingGrid(const double* values, size_t n,
                       const std::vector<float>& grid,
                       std::vector<uint8_t>* out);
Status DecodeServingGrid(const uint8_t* bytes, size_t size, size_t n,
                         const std::vector<float>& grid, double* out);

}  // namespace lightmirm::data
