#include "data/loan_generator.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace lightmirm::data {
namespace {

// 31 provinces of mainland China. The index is the environment id used
// throughout the library.
const char* kProvinceNames[] = {
    "Guangdong", "Jiangsu",   "Shandong",  "Zhejiang",     "Henan",
    "Sichuan",   "Hubei",     "Hunan",     "Anhui",        "Hebei",
    "Fujian",    "Shanghai",  "Beijing",   "Shaanxi",      "Jiangxi",
    "Chongqing", "Liaoning",  "Yunnan",    "Guangxi",      "Shanxi",
    "Guizhou",   "Inner Mongolia", "Tianjin", "Heilongjiang", "Jilin",
    "Xinjiang",  "Gansu",     "Hainan",    "Ningxia",      "Qinghai",
    "Tibet",
};
constexpr int kNumProvinces = 31;

// Base application shares for 2016-2019 (unnormalized). Roughly power-law:
// Guangdong largest, frontier provinces tiny.
const double kBaseShare[kNumProvinces] = {
    14.0, 8.5, 8.0, 7.0, 6.5, 6.0, 5.5, 5.0, 4.5, 4.2,  //
    4.0,  3.8, 3.6, 3.2, 3.0, 2.8, 2.6, 2.4, 2.2, 2.0,  //
    1.9,  1.8, 1.7, 1.6, 1.5, 1.3, 1.1, 1.0, 0.8, 0.7, 0.5,
};

// Economic development score in [0,1].
const double kEconomy[kNumProvinces] = {
    0.95, 0.92, 0.80, 0.93, 0.60, 0.62, 0.68, 0.63, 0.58, 0.57,  //
    0.85, 0.99, 0.98, 0.60, 0.55, 0.66, 0.56, 0.45, 0.48, 0.52,  //
    0.42, 0.50, 0.82, 0.48, 0.46, 0.35, 0.33, 0.54, 0.32, 0.30, 0.28,
};

constexpr int kNumVehicleTypes = 4;   // new_sedan, used_car, trailer, suv
constexpr int kNumOccupations = 8;

// Rows per generation shard; shard s always covers global rows
// [s*grain, (s+1)*grain) whichever entry point drives the generation.
constexpr size_t kGeneratorRowGrain = 2048;

const char* kNumericNames[] = {
    "age",
    "annual_income",
    "loan_amount",
    "ltv_ratio",
    "credit_score",
    "prior_default_count",
    "employment_years",
    "debt_to_income",
    "down_payment_ratio",
    "num_credit_lines",
    "months_since_delinquency",
    "bank_relationship_years",
};

const char* kVehicleNames[] = {
    "vehicle_new_sedan",
    "vehicle_used_car",
    "vehicle_trailer_truck",
    "vehicle_suv",
};

}  // namespace

LoanGenerator::LoanGenerator(LoanGeneratorOptions options)
    : options_(std::move(options)) {
  Rng rng(options_.seed ^ 0xC0FFEEULL);

  // Province profiles. Underrepresented western provinces get spurious
  // patterns that disagree with the national majority (low agree prob) and
  // negative retention into 2020, which is what makes an ERM model collapse
  // on them (Fig 1 / Table I "worst province" metrics).
  profiles_.resize(kNumProvinces);
  for (int m = 0; m < kNumProvinces; ++m) {
    ProvinceProfile& p = profiles_[m];
    p.name = kProvinceNames[m];
    p.share = kBaseShare[m];
    p.economy = kEconomy[m];
    // Large developed provinces: spurious attrs strongly aligned in
    // training; small frontier provinces: much weaker alignment.
    // Spurious agreement rises with province size: the national bureau
    // patterns are calibrated on the big markets. The smallest provinces
    // sit *below* 0.5 — their local patterns mildly disagree with the
    // national ones — so a pooled ERM model that leans on these attributes
    // is actively wrong there, while the per-environment optimum differs
    // in sign across provinces (the configuration IRM exploits).
    p.spurious_agree_train = 0.40 +
                             0.52 * std::min(1.0, p.share / 3.5) +
                             rng.Uniform(-0.02, 0.02);
    p.spurious_agree_train = std::clamp(p.spurious_agree_train, 0.42, 0.92);
    // Retention of the (centered) spurious pattern into 2020. The 2020
    // drift (business-mix shift + COVID) largely invalidates the learned
    // bureau patterns of the big markets, while the small provinces' local
    // disagreement is structural and persists — the combination that makes
    // a spurious-leaning ERM model fail on 2020 and keep failing on the
    // underrepresented provinces.
    if (p.share < 1.5) {
      p.retention_2020 = rng.Uniform(0.55, 0.80);
    } else {
      p.retention_2020 = rng.Uniform(0.15, 0.40);
    }
    p.base_logit_offset = rng.Uniform(-0.25, 0.25) + 0.3 * (0.5 - p.economy);
  }

  // Invariant default mechanism: fixed across provinces and years.
  invariant_weights_.resize(options_.latent_dim);
  double norm = 0.0;
  for (double& w : invariant_weights_) {
    w = rng.Normal();
    norm += w * w;
  }
  norm = std::sqrt(norm);
  for (double& w : invariant_weights_) w /= norm;

  // Observation model: numeric features are near-diagonal views of the
  // latent (each bureau attribute mostly reflects one underlying factor,
  // with mild cross-talk). Keeping the mixing close to axis-aligned is
  // also what makes the signal learnable by axis-aligned tree splits.
  numeric_mixing_ = Matrix(options_.num_numeric, options_.latent_dim);
  for (size_t r = 0; r < numeric_mixing_.rows(); ++r) {
    for (size_t c = 0; c < numeric_mixing_.cols(); ++c) {
      numeric_mixing_.At(r, c) = rng.Normal(0.0, 0.2);
    }
    numeric_mixing_.At(r, r % numeric_mixing_.cols()) += 1.4;
  }

  // Invariant vehicle / occupation effects on the default logit.
  vehicle_logit_ = {0.0, 0.30, 0.45, 0.12};  // sedan, used, trailer, suv
  occupation_logit_.resize(kNumOccupations);
  for (double& v : occupation_logit_) v = rng.Uniform(-0.15, 0.15);
}

const std::vector<std::string>& LoanGenerator::ProvinceNames() {
  static const std::vector<std::string> names(
      kProvinceNames, kProvinceNames + kNumProvinces);
  return names;
}

Result<int> LoanGenerator::ProvinceIndex(const std::string& name) {
  const auto& names = ProvinceNames();
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  return Status::NotFound("unknown province: " + name);
}

int LoanGenerator::NumFeatures() const {
  return options_.num_numeric + kNumVehicleTypes + kNumOccupations +
         options_.num_spurious + options_.num_noise;
}

std::vector<double> LoanGenerator::YearShares(int year) const {
  std::vector<double> shares(kNumProvinces);
  for (int m = 0; m < kNumProvinces; ++m) shares[m] = profiles_[m].share;
  if (year >= 2020) {
    // Chery FS's business focus shifted away from Guangdong (Fig 10).
    shares[0] *= options_.guangdong_2020_share_factor;
  }
  double total = 0.0;
  for (double s : shares) total += s;
  for (double& s : shares) s /= total;
  return shares;
}

std::vector<double> LoanGenerator::VehicleMix(int province, int year) const {
  const double economy = profiles_[province].economy;
  // Trade-heavy provinces buy more trailer trucks; less developed ones buy
  // more used cars. The used-car share also grows over the years while new
  // sedans decline (Fig 4: the mix "changes from year to year").
  const double t = static_cast<double>(year - options_.first_year) /
                   std::max(1, options_.last_year - options_.first_year);
  double new_sedan = 0.45 - 0.10 * t + 0.10 * economy;
  double used_car = 0.20 + 0.12 * t + 0.25 * (1.0 - economy);
  double trailer = 0.10 + 0.25 * economy;
  double suv = 0.18 + 0.05 * t;
  const double total = new_sedan + used_car + trailer + suv;
  return {new_sedan / total, used_car / total, trailer / total, suv / total};
}

Status LoanGenerator::CheckOptions() const {
  if (options_.rows_per_year <= 0) {
    return Status::InvalidArgument("rows_per_year must be positive");
  }
  if (options_.last_year < options_.first_year) {
    return Status::InvalidArgument("last_year before first_year");
  }
  return Status::OK();
}

std::vector<FieldSpec> LoanGenerator::BuildFields() const {
  const LoanGeneratorOptions& opt = options_;
  std::vector<FieldSpec> fields;
  for (int i = 0; i < opt.num_numeric; ++i) {
    fields.push_back({kNumericNames[i % 12], FeatureKind::kNumeric, 0});
  }
  for (int i = 0; i < kNumVehicleTypes; ++i) {
    fields.push_back({kVehicleNames[i], FeatureKind::kBinary, 0});
  }
  for (int i = 0; i < kNumOccupations; ++i) {
    fields.push_back({StrFormat("occupation_%d", i), FeatureKind::kBinary, 0});
  }
  for (int i = 0; i < opt.num_spurious; ++i) {
    fields.push_back(
        {StrFormat("bureau_attr_%02d", i), FeatureKind::kNumeric, 0});
  }
  for (int i = 0; i < opt.num_noise; ++i) {
    fields.push_back({StrFormat("ext_attr_%03d", i), FeatureKind::kNumeric, 0});
  }
  return fields;
}

std::vector<std::vector<double>> LoanGenerator::MeanShifts() const {
  // Province-dependent mean shifts for numeric features (covariate shift).
  Rng shift_rng(options_.seed ^ 0x51F7ULL);
  std::vector<std::vector<double>> mean_shift(kNumProvinces);
  for (int m = 0; m < kNumProvinces; ++m) {
    mean_shift[m].resize(options_.num_numeric);
    for (double& v : mean_shift[m]) {
      v = shift_rng.Normal(0.0, options_.covariate_shift);
    }
  }
  return mean_shift;
}

void LoanGenerator::GenerateShard(
    size_t shard, size_t begin, size_t end,
    const std::vector<std::vector<double>>& year_shares,
    const std::vector<std::vector<double>>& mean_shift, const Rng& base,
    double* feats, int* labels, int* envs, int* years, int* halves,
    double* true_logits) const {
  const LoanGeneratorOptions& opt = options_;
  const int hubei = 6;  // index in kProvinceNames
  const int d = NumFeatures();
  Rng rng = base.Fork(shard);
  std::vector<double> z(opt.latent_dim);
  std::vector<double> xnum(opt.num_numeric);
  for (size_t row = begin; row < end; ++row) {
    const size_t slot = row - begin;
    const int year_index =
        static_cast<int>(row / static_cast<size_t>(opt.rows_per_year));
    const int year = opt.first_year + year_index;
    const std::vector<double>& shares =
        year_shares[static_cast<size_t>(year_index)];
    const int m = static_cast<int>(rng.Categorical(shares));
    const ProvinceProfile& prof = profiles_[m];
    const int half = rng.Bernoulli(0.5) ? 2 : 1;
    const bool covid = (year == 2020 && m == hubei && half == 1);

    // Latent creditworthiness and the invariant part of the logit.
    for (double& v : z) v = rng.Normal();
    double inv_score = 0.0;
    for (int k = 0; k < opt.latent_dim; ++k) {
      inv_score += invariant_weights_[k] * z[k];
    }
    // Nonlinear invariant mechanisms (normalized to roughly unit
    // variance): a leverage threshold effect on the first factor, and an
    // affordability interaction between the next two. Axis-aligned tree
    // splits capture these; a linear model on raw features cannot.
    const double leverage_term = z[0] > 0.8 ? 1.0 : -0.27;
    const double distress_term = z[3] < -1.0 ? 1.0 : -0.19;
    const double interaction_term = z[1] * z[2];
    const double nonlinear_score = 0.7 * leverage_term +
                                   0.6 * distress_term +
                                   0.35 * interaction_term;
    double inv_scale = opt.invariant_strength;
    if (covid) inv_scale *= opt.covid_invariant_retention;

    // Vehicle type and occupation.
    const std::vector<double> mix = VehicleMix(m, year);
    const int vehicle = static_cast<int>(rng.Categorical(mix));
    const int occupation = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(kNumOccupations)));

    double logit = opt.base_rate_logit + prof.base_logit_offset +
                   inv_scale * inv_score +
                   (inv_scale / opt.invariant_strength) *
                       opt.nonlinear_strength * nonlinear_score +
                   vehicle_logit_[vehicle] +
                   occupation_logit_[occupation];
    if (covid) logit += opt.covid_logit_shock;
    if (true_logits != nullptr) true_logits[slot] = logit;
    const int y = rng.Bernoulli(1.0 / (1.0 + std::exp(-logit))) ? 1 : 0;

    // Numeric causal features: noisy, province-shifted views of z.
    // Developed provinces have cleaner bureau data.
    const double noise_scale =
        opt.numeric_noise * (1.25 - 0.5 * prof.economy);
    numeric_mixing_.MatVec(z, &xnum);
    double* out = feats + slot * static_cast<size_t>(d);
    int col = 0;
    for (int j = 0; j < opt.num_numeric; ++j) {
      out[col++] =
          xnum[j] + mean_shift[m][j] + rng.Normal(0.0, noise_scale);
    }
    // One-hot vehicle and occupation.
    for (int j = 0; j < kNumVehicleTypes; ++j) {
      out[col++] = (j == vehicle) ? 1.0 : 0.0;
    }
    for (int j = 0; j < kNumOccupations; ++j) {
      out[col++] = (j == occupation) ? 1.0 : 0.0;
    }
    // Spurious bureau attributes: each agrees with the label with a
    // province/period-dependent probability.
    double agree_p = prof.spurious_agree_train;
    if (year >= 2020) {
      double retention = prof.retention_2020;
      if (m == hubei) {
        retention = (half == 1) ? opt.covid_spurious_retention : 0.35;
      }
      agree_p = 0.5 + (agree_p - 0.5) * retention;
    }
    const double sign_y = y == 1 ? 1.0 : -1.0;
    for (int j = 0; j < opt.num_spurious; ++j) {
      const double dir = rng.Bernoulli(agree_p) ? sign_y : -sign_y;
      out[col++] = opt.spurious_strength * dir + rng.Normal();
    }
    // Pure noise block.
    for (int j = 0; j < opt.num_noise; ++j) out[col++] = rng.Normal();

    labels[slot] = y;
    envs[slot] = m;
    years[slot] = year;
    halves[slot] = half;
  }
}

Result<Dataset> LoanGenerator::Generate(
    std::vector<double>* true_logits) const {
  LIGHTMIRM_RETURN_NOT_OK(CheckOptions());
  const LoanGeneratorOptions& opt = options_;
  const int num_years = opt.last_year - opt.first_year + 1;
  const size_t total_rows =
      static_cast<size_t>(opt.rows_per_year) * static_cast<size_t>(num_years);
  const int d = NumFeatures();

  std::vector<FieldSpec> fields = BuildFields();
  Matrix feats(total_rows, static_cast<size_t>(d));
  std::vector<int> labels(total_rows), envs(total_rows), years(total_rows),
      halves(total_rows);
  if (true_logits != nullptr) true_logits->assign(total_rows, 0.0);
  const std::vector<std::vector<double>> mean_shift = MeanShifts();

  // Row-sharded generation: shard s covers the fixed row range
  // [s*grain, (s+1)*grain) and draws from its own stream Fork(s), so the
  // dataset is a pure function of the options at any thread count (and of
  // the entry point: GenerateToStore walks the same shards). Shards never
  // depend on each other; a row's year is derived from its index.
  const std::vector<std::vector<double>> year_shares = [&] {
    std::vector<std::vector<double>> shares;
    for (int year = opt.first_year; year <= opt.last_year; ++year) {
      shares.push_back(YearShares(year));
    }
    return shares;
  }();
  const Rng base(opt.seed);
  obs::Histogram* shard_seconds = nullptr;
  obs::Counter* rows_generated = nullptr;
  if (obs::TelemetryEnabled()) {
    obs::MetricsRegistry* registry = obs::MetricsRegistry::Global();
    shard_seconds = registry->GetHistogram("datagen.shard.seconds");
    rows_generated = registry->GetCounter("datagen.rows");
  }
  ParallelForShards(0, total_rows, kGeneratorRowGrain, [&](size_t shard,
                                                           size_t begin,
                                                           size_t end) {
    WallTimer shard_watch;
    GenerateShard(shard, begin, end, year_shares, mean_shift, base,
                  feats.Row(begin), labels.data() + begin,
                  envs.data() + begin, years.data() + begin,
                  halves.data() + begin,
                  true_logits != nullptr ? true_logits->data() + begin
                                         : nullptr);
    if (shard_seconds != nullptr) {
      shard_seconds->Record(shard_watch.Seconds());
      rows_generated->Increment(end - begin);
    }
  });

  Dataset dataset(Schema(std::move(fields)), std::move(feats),
                  std::move(labels), std::move(envs), std::move(years),
                  std::move(halves));
  dataset.set_env_names(ProvinceNames());
  LIGHTMIRM_RETURN_NOT_OK(dataset.Validate());
  return dataset;
}

Result<uint64_t> LoanGenerator::GenerateToStore(
    const std::string& path, const ColumnStoreOptions& store_options) const {
  LIGHTMIRM_RETURN_NOT_OK(CheckOptions());
  const LoanGeneratorOptions& opt = options_;
  const int num_years = opt.last_year - opt.first_year + 1;
  const size_t total_rows =
      static_cast<size_t>(opt.rows_per_year) * static_cast<size_t>(num_years);
  const size_t d = static_cast<size_t>(NumFeatures());

  const Schema schema{BuildFields()};
  LIGHTMIRM_ASSIGN_OR_RETURN(
      ColumnStoreWriter writer,
      ColumnStoreWriter::Open(path, schema, ProvinceNames(), store_options));

  const std::vector<std::vector<double>> mean_shift = MeanShifts();
  const std::vector<std::vector<double>> year_shares = [&] {
    std::vector<std::vector<double>> shares;
    for (int year = opt.first_year; year <= opt.last_year; ++year) {
      shares.push_back(YearShares(year));
    }
    return shares;
  }();
  const Rng base(opt.seed);

  // Generate a bounded block of whole shards at a time (shard indices stay
  // global, so every row is drawn from the same rng stream Generate would
  // use), then hand the block to the writer. Memory high-water mark is one
  // block plus one buffered chunk, independent of rows_per_year.
  constexpr size_t kShardsPerBlock = 8;
  constexpr size_t kBlockRows = kShardsPerBlock * kGeneratorRowGrain;
  for (size_t block_begin = 0; block_begin < total_rows;
       block_begin += kBlockRows) {
    const size_t block_end = std::min(total_rows, block_begin + kBlockRows);
    const size_t block_rows = block_end - block_begin;
    Matrix feats(block_rows, d);
    std::vector<int> labels(block_rows), envs(block_rows), years(block_rows),
        halves(block_rows);
    ParallelForShards(
        block_begin, block_end, kGeneratorRowGrain,
        [&](size_t shard, size_t begin, size_t end) {
          const size_t slot = begin - block_begin;
          GenerateShard(block_begin / kGeneratorRowGrain + shard, begin, end,
                        year_shares, mean_shift, base, feats.Row(slot),
                        labels.data() + slot, envs.data() + slot,
                        years.data() + slot, halves.data() + slot, nullptr);
        });
    Dataset block(schema, std::move(feats), std::move(labels),
                  std::move(envs), std::move(years), std::move(halves));
    LIGHTMIRM_RETURN_NOT_OK(writer.Append(block));
  }
  LIGHTMIRM_RETURN_NOT_OK(writer.Finish());
  return writer.rows_written();
}

}  // namespace lightmirm::data
