#include "data/column_store.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <utility>

#include "common/string_util.h"
#include "data/codec.h"
#include "gbdt/tree.h"

namespace lightmirm::data {
namespace {

constexpr char kMagic[4] = {'L', 'M', 'C', 'S'};
constexpr uint8_t kVersion = 1;

// Column order inside a chunk body: the four int columns first (so
// ReadChunkTimes decodes a prefix), then the features.
constexpr size_t kIntColumns = 4;

void AppendRaw(const void* bytes, size_t n, std::vector<uint8_t>* out) {
  const uint8_t* p = static_cast<const uint8_t*>(bytes);
  out->insert(out->end(), p, p + n);
}

Status WriteAll(std::ofstream& out, const std::vector<uint8_t>& bytes) {
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return out.good() ? Status::OK()
                    : Status::IoError("column store write failed");
}

Status ReadVarintStream(std::istream& in, uint64_t* value) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    const int c = in.get();
    if (c == std::char_traits<char>::eof() || shift > 63) {
      return Status::IoError("column store varint truncated");
    }
    v |= static_cast<uint64_t>(c & 0x7F) << shift;
    if ((c & 0x80) == 0) break;
    shift += 7;
  }
  *value = v;
  return Status::OK();
}

Status ReadZigzagStream(std::istream& in, int64_t* value) {
  uint64_t raw = 0;
  LIGHTMIRM_RETURN_NOT_OK(ReadVarintStream(in, &raw));
  *value = ZigzagDecode(raw);
  return Status::OK();
}

Status ReadExact(std::istream& in, void* bytes, size_t n) {
  in.read(static_cast<char*>(bytes), static_cast<std::streamsize>(n));
  return static_cast<size_t>(in.gcount()) == n
             ? Status::OK()
             : Status::IoError("column store payload truncated");
}

Status ReadString(std::istream& in, std::string* out) {
  uint64_t len = 0;
  LIGHTMIRM_RETURN_NOT_OK(ReadVarintStream(in, &len));
  if (len > (1u << 20)) {
    return Status::IoError("column store string length implausible");
  }
  out->resize(len);
  return ReadExact(in, out->data(), len);
}

// One encoded column staged for a chunk body: codec byte, payload, and for
// feature columns the 16-byte min/max stat block.
void AppendColumn(ColumnCodec codec, const std::vector<uint8_t>& payload,
                  const double* stats, std::vector<uint8_t>* body) {
  body->push_back(static_cast<uint8_t>(codec));
  AppendVarint(payload.size(), body);
  if (stats != nullptr) AppendRaw(stats, 2 * sizeof(double), body);
  body->insert(body->end(), payload.begin(), payload.end());
}

// Smaller of delta-bitpack and RLE-dictionary for an int column.
void EncodeIntColumn(const int64_t* values, size_t n,
                     std::vector<uint8_t>* body) {
  std::vector<uint8_t> delta, dict;
  EncodeDeltaBitpack(values, n, &delta);
  EncodeRleDictionary(values, n, &dict);
  if (delta.size() <= dict.size()) {
    AppendColumn(ColumnCodec::kDeltaBitpack, delta, nullptr, body);
  } else {
    AppendColumn(ColumnCodec::kRleDictionary, dict, nullptr, body);
  }
}

struct ColumnHeader {
  ColumnCodec codec;
  size_t payload_begin = 0;
  size_t payload_size = 0;
  double stat_min = 0.0;
  double stat_max = 0.0;
};

// Parses one column header from a chunk body buffer, leaving *pos at the
// byte after the payload.
Status ParseColumnHeader(const uint8_t* body, size_t size, size_t* pos,
                         bool has_stats, ColumnHeader* header) {
  if (*pos >= size) {
    return Status::IoError("chunk body truncated at column header");
  }
  header->codec = static_cast<ColumnCodec>(body[(*pos)++]);
  uint64_t payload = 0;
  LIGHTMIRM_RETURN_NOT_OK(ReadVarint(body, size, pos, &payload));
  if (has_stats) {
    if (*pos + 2 * sizeof(double) > size) {
      return Status::IoError("chunk body truncated at column stats");
    }
    std::memcpy(&header->stat_min, body + *pos, sizeof(double));
    std::memcpy(&header->stat_max, body + *pos + sizeof(double),
                sizeof(double));
    *pos += 2 * sizeof(double);
  }
  if (*pos + payload > size) {
    return Status::IoError("chunk body truncated inside column payload");
  }
  header->payload_begin = *pos;
  header->payload_size = payload;
  *pos += payload;
  return Status::OK();
}

Status DecodeIntColumn(const ColumnHeader& header, const uint8_t* body,
                       size_t n, std::vector<int>* out) {
  std::vector<int64_t> wide(n);
  const uint8_t* payload = body + header.payload_begin;
  switch (header.codec) {
    case ColumnCodec::kDeltaBitpack:
      LIGHTMIRM_RETURN_NOT_OK(
          DecodeDeltaBitpack(payload, header.payload_size, n, wide.data()));
      break;
    case ColumnCodec::kRleDictionary:
      LIGHTMIRM_RETURN_NOT_OK(
          DecodeRleDictionary(payload, header.payload_size, n, wide.data()));
      break;
    default:
      return Status::IoError(
          StrFormat("unexpected codec %d for an int column",
                    static_cast<int>(header.codec)));
  }
  out->resize(n);
  for (size_t i = 0; i < n; ++i) {
    if (wide[i] < std::numeric_limits<int>::min() ||
        wide[i] > std::numeric_limits<int>::max()) {
      return Status::IoError("int column value out of range");
    }
    (*out)[i] = static_cast<int>(wide[i]);
  }
  return Status::OK();
}

}  // namespace

const char* FeatureEncodingName(FeatureEncoding encoding) {
  switch (encoding) {
    case FeatureEncoding::kLossless:
      return "lossless";
    case FeatureEncoding::kQuantized:
      return "quantized";
    case FeatureEncoding::kServingGrid:
      return "serving_grid";
  }
  return "unknown";
}

Result<ColumnStoreWriter> ColumnStoreWriter::Open(
    const std::string& path, const Schema& schema,
    std::vector<std::string> env_names, ColumnStoreOptions options) {
  if (options.chunk_rows == 0) {
    return Status::InvalidArgument("chunk_rows must be positive");
  }
  if (options.feature_encoding == FeatureEncoding::kServingGrid) {
    if (options.feature_grids.size() != schema.num_features()) {
      return Status::InvalidArgument(StrFormat(
          "serving-grid encoding needs one grid per feature (%zu grids, "
          "%zu features)",
          options.feature_grids.size(), schema.num_features()));
    }
    for (const std::vector<float>& grid : options.feature_grids) {
      if (!std::is_sorted(grid.begin(), grid.end())) {
        return Status::InvalidArgument("feature grids must be sorted");
      }
    }
  } else if (!options.feature_grids.empty()) {
    return Status::InvalidArgument(
        "feature_grids is only meaningful with the serving-grid encoding");
  }

  ColumnStoreWriter writer;
  writer.out_ = std::make_unique<std::ofstream>(
      path, std::ios::binary | std::ios::trunc);
  if (!*writer.out_) {
    return Status::IoError("cannot open for writing: " + path);
  }
  writer.schema_ = schema;
  writer.env_names_ = std::move(env_names);
  writer.options_ = std::move(options);

  std::vector<uint8_t> header;
  AppendRaw(kMagic, sizeof(kMagic), &header);
  header.push_back(kVersion);
  header.push_back(static_cast<uint8_t>(writer.options_.feature_encoding));
  AppendVarint(schema.num_features(), &header);
  for (const FieldSpec& field : schema.fields()) {
    AppendVarint(field.name.size(), &header);
    AppendRaw(field.name.data(), field.name.size(), &header);
    header.push_back(static_cast<uint8_t>(field.kind));
    AppendVarint(static_cast<uint64_t>(field.cardinality), &header);
  }
  AppendVarint(writer.env_names_.size(), &header);
  for (const std::string& name : writer.env_names_) {
    AppendVarint(name.size(), &header);
    AppendRaw(name.data(), name.size(), &header);
  }
  if (writer.options_.feature_encoding == FeatureEncoding::kServingGrid) {
    for (const std::vector<float>& grid : writer.options_.feature_grids) {
      AppendVarint(grid.size(), &header);
      AppendRaw(grid.data(), grid.size() * sizeof(float), &header);
    }
  }
  LIGHTMIRM_RETURN_NOT_OK(WriteAll(*writer.out_, header));
  writer.bytes_written_ = header.size();
  return writer;
}

Status ColumnStoreWriter::Append(const Dataset& rows) {
  if (finished_) {
    return Status::FailedPrecondition("writer already finished");
  }
  if (!(rows.schema() == schema_)) {
    return Status::InvalidArgument(
        "appended dataset schema does not match the store");
  }
  const size_t n = rows.NumRows();
  const size_t d = schema_.num_features();
  features_.reserve((buffered_rows_ + n) * d);
  for (size_t r = 0; r < n; ++r) {
    const double* row = rows.features().Row(r);
    features_.insert(features_.end(), row, row + d);
    labels_.push_back(rows.labels()[r]);
    envs_.push_back(rows.envs()[r]);
    years_.push_back(rows.years()[r]);
    halves_.push_back(rows.halves()[r]);
  }
  buffered_rows_ += n;
  while (buffered_rows_ >= options_.chunk_rows) {
    LIGHTMIRM_RETURN_NOT_OK(FlushChunk(options_.chunk_rows));
  }
  return Status::OK();
}

Status ColumnStoreWriter::FlushChunk(size_t rows) {
  const size_t d = schema_.num_features();

  std::vector<uint8_t> body;
  EncodeIntColumn(labels_.data(), rows, &body);
  EncodeIntColumn(envs_.data(), rows, &body);
  EncodeIntColumn(years_.data(), rows, &body);
  EncodeIntColumn(halves_.data(), rows, &body);

  std::vector<double> column(rows);
  std::vector<uint8_t> payload;
  for (size_t f = 0; f < d; ++f) {
    for (size_t r = 0; r < rows; ++r) column[r] = features_[r * d + f];
    double stats[2] = {std::numeric_limits<double>::quiet_NaN(),
                       std::numeric_limits<double>::quiet_NaN()};
    for (double v : column) {
      if (std::isnan(v)) continue;
      if (std::isnan(stats[0]) || v < stats[0]) stats[0] = v;
      if (std::isnan(stats[1]) || v > stats[1]) stats[1] = v;
    }
    payload.clear();
    switch (options_.feature_encoding) {
      case FeatureEncoding::kLossless:
        if (TryEncodeDoubleDictionary(column.data(), rows,
                                      options_.max_double_dict, &payload)) {
          AppendColumn(ColumnCodec::kDoubleDictionary, payload, stats, &body);
        } else {
          EncodeByteStreamSplit(column.data(), rows, &payload);
          AppendColumn(ColumnCodec::kByteStreamSplit, payload, stats, &body);
        }
        break;
      case FeatureEncoding::kQuantized: {
        // Quantize first so a dictionary hit stores the same float image
        // the stream codec would.
        for (double& v : column) {
          v = static_cast<double>(gbdt::QuantizeThreshold(v));
        }
        if (TryEncodeDoubleDictionary(column.data(), rows,
                                      options_.max_double_dict, &payload)) {
          AppendColumn(ColumnCodec::kDoubleDictionary, payload, stats, &body);
        } else {
          EncodeQuantizedFloat(column.data(), rows, &payload);
          AppendColumn(ColumnCodec::kQuantizedFloat, payload, stats, &body);
        }
        break;
      }
      case FeatureEncoding::kServingGrid:
        EncodeServingGrid(column.data(), rows, options_.feature_grids[f],
                          &payload);
        AppendColumn(ColumnCodec::kServingGrid, payload, stats, &body);
        break;
    }
  }

  std::vector<uint8_t> header;
  AppendVarint(rows, &header);
  const auto minmax_of = [&](const std::vector<int64_t>& v) {
    const auto [lo, hi] = std::minmax_element(v.begin(), v.begin() + rows);
    AppendVarint(ZigzagEncode(*lo), &header);
    AppendVarint(ZigzagEncode(*hi), &header);
  };
  minmax_of(labels_);
  minmax_of(envs_);
  minmax_of(years_);
  minmax_of(halves_);
  AppendVarint(body.size(), &header);
  LIGHTMIRM_RETURN_NOT_OK(WriteAll(*out_, header));
  LIGHTMIRM_RETURN_NOT_OK(WriteAll(*out_, body));
  bytes_written_ += header.size() + body.size();
  rows_written_ += rows;

  // Drop the flushed prefix.
  features_.erase(features_.begin(),
                  features_.begin() + static_cast<std::ptrdiff_t>(rows * d));
  const auto drop = [rows](std::vector<int64_t>& v) {
    v.erase(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(rows));
  };
  drop(labels_);
  drop(envs_);
  drop(years_);
  drop(halves_);
  buffered_rows_ -= rows;
  return Status::OK();
}

Status ColumnStoreWriter::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("writer already finished");
  }
  if (buffered_rows_ > 0) {
    LIGHTMIRM_RETURN_NOT_OK(FlushChunk(buffered_rows_));
  }
  std::vector<uint8_t> marker;
  AppendVarint(0, &marker);
  LIGHTMIRM_RETURN_NOT_OK(WriteAll(*out_, marker));
  bytes_written_ += marker.size();
  out_->flush();
  if (!out_->good()) {
    return Status::IoError("column store flush failed");
  }
  finished_ = true;
  return Status::OK();
}

Result<ColumnStoreReader> ColumnStoreReader::Open(const std::string& path) {
  ColumnStoreReader reader;
  reader.in_ = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!*reader.in_) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::ifstream& in = *reader.in_;

  char magic[4];
  LIGHTMIRM_RETURN_NOT_OK(ReadExact(in, magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("not a column store file (bad magic)");
  }
  const int version = in.get();
  if (version != kVersion) {
    return Status::IoError(
        StrFormat("unsupported column store version %d", version));
  }
  const int encoding = in.get();
  if (encoding < 0 || encoding > 2) {
    return Status::IoError(
        StrFormat("unknown feature encoding %d", encoding));
  }
  reader.feature_encoding_ = static_cast<FeatureEncoding>(encoding);

  uint64_t num_features = 0;
  LIGHTMIRM_RETURN_NOT_OK(ReadVarintStream(in, &num_features));
  std::vector<FieldSpec> fields;
  fields.reserve(num_features);
  for (uint64_t f = 0; f < num_features; ++f) {
    FieldSpec spec;
    LIGHTMIRM_RETURN_NOT_OK(ReadString(in, &spec.name));
    const int kind = in.get();
    if (kind < 0 || kind > 2) {
      return Status::IoError("unknown feature kind in schema");
    }
    spec.kind = static_cast<FeatureKind>(kind);
    uint64_t cardinality = 0;
    LIGHTMIRM_RETURN_NOT_OK(ReadVarintStream(in, &cardinality));
    spec.cardinality = static_cast<int>(cardinality);
    fields.push_back(std::move(spec));
  }
  reader.schema_ = Schema(std::move(fields));

  uint64_t num_envs = 0;
  LIGHTMIRM_RETURN_NOT_OK(ReadVarintStream(in, &num_envs));
  reader.env_names_.resize(num_envs);
  for (uint64_t e = 0; e < num_envs; ++e) {
    LIGHTMIRM_RETURN_NOT_OK(ReadString(in, &reader.env_names_[e]));
  }

  if (reader.feature_encoding_ == FeatureEncoding::kServingGrid) {
    reader.feature_grids_.resize(num_features);
    for (uint64_t f = 0; f < num_features; ++f) {
      uint64_t grid_size = 0;
      LIGHTMIRM_RETURN_NOT_OK(ReadVarintStream(in, &grid_size));
      reader.feature_grids_[f].resize(grid_size);
      LIGHTMIRM_RETURN_NOT_OK(ReadExact(in, reader.feature_grids_[f].data(),
                                        grid_size * sizeof(float)));
    }
  }

  // Chunk index scan: headers only, bodies are seeked past.
  while (true) {
    uint64_t rows = 0;
    LIGHTMIRM_RETURN_NOT_OK(ReadVarintStream(in, &rows));
    if (rows == 0) break;
    ChunkInfo info;
    info.rows = rows;
    int64_t stat = 0;
    int* stats[8] = {&info.label_min, &info.label_max, &info.env_min,
                     &info.env_max,   &info.year_min,  &info.year_max,
                     &info.half_min,  &info.half_max};
    for (int* slot : stats) {
      LIGHTMIRM_RETURN_NOT_OK(ReadZigzagStream(in, &stat));
      *slot = static_cast<int>(stat);
    }
    uint64_t body_bytes = 0;
    LIGHTMIRM_RETURN_NOT_OK(ReadVarintStream(in, &body_bytes));
    info.body_offset = static_cast<uint64_t>(in.tellg());
    info.body_bytes = body_bytes;
    in.seekg(static_cast<std::streamoff>(body_bytes), std::ios::cur);
    if (!in.good() || in.peek() == std::char_traits<char>::eof()) {
      return Status::IoError("column store truncated inside a chunk body");
    }
    reader.total_rows_ += rows;
    reader.chunks_.push_back(info);
  }
  const std::streampos end_of_stream = in.tellg();
  in.clear();
  in.seekg(0, std::ios::end);
  reader.file_bytes_ = static_cast<uint64_t>(in.tellg());
  if (static_cast<uint64_t>(end_of_stream) != reader.file_bytes_) {
    return Status::IoError("column store has trailing bytes after the end "
                           "marker");
  }
  return reader;
}

Result<Dataset> ColumnStoreReader::ReadChunk(size_t i) {
  if (i >= chunks_.size()) {
    return Status::OutOfRange(StrFormat("chunk %zu of %zu", i,
                                        chunks_.size()));
  }
  const ChunkInfo& info = chunks_[i];
  const size_t rows = static_cast<size_t>(info.rows);
  const size_t d = schema_.num_features();
  std::vector<uint8_t> body(info.body_bytes);
  in_->clear();
  in_->seekg(static_cast<std::streamoff>(info.body_offset));
  LIGHTMIRM_RETURN_NOT_OK(ReadExact(*in_, body.data(), body.size()));

  size_t pos = 0;
  ColumnHeader header;
  std::vector<int> labels, envs, years, halves;
  std::vector<int>* int_columns[kIntColumns] = {&labels, &envs, &years,
                                                &halves};
  for (std::vector<int>* column : int_columns) {
    LIGHTMIRM_RETURN_NOT_OK(ParseColumnHeader(body.data(), body.size(), &pos,
                                              /*has_stats=*/false, &header));
    LIGHTMIRM_RETURN_NOT_OK(
        DecodeIntColumn(header, body.data(), rows, column));
  }

  Matrix features(rows, d);
  std::vector<double> column(rows);
  for (size_t f = 0; f < d; ++f) {
    LIGHTMIRM_RETURN_NOT_OK(ParseColumnHeader(body.data(), body.size(), &pos,
                                              /*has_stats=*/true, &header));
    const uint8_t* payload = body.data() + header.payload_begin;
    switch (header.codec) {
      case ColumnCodec::kByteStreamSplit:
        LIGHTMIRM_RETURN_NOT_OK(DecodeByteStreamSplit(
            payload, header.payload_size, rows, column.data()));
        break;
      case ColumnCodec::kQuantizedFloat:
        LIGHTMIRM_RETURN_NOT_OK(DecodeQuantizedFloat(
            payload, header.payload_size, rows, column.data()));
        break;
      case ColumnCodec::kDoubleDictionary:
        LIGHTMIRM_RETURN_NOT_OK(DecodeDoubleDictionary(
            payload, header.payload_size, rows, column.data()));
        break;
      case ColumnCodec::kServingGrid:
        if (feature_grids_.size() != d) {
          return Status::IoError(
              "serving-grid chunk in a store without grids");
        }
        LIGHTMIRM_RETURN_NOT_OK(
            DecodeServingGrid(payload, header.payload_size, rows,
                              feature_grids_[f], column.data()));
        break;
      default:
        return Status::IoError(
            StrFormat("unexpected codec %d for a feature column",
                      static_cast<int>(header.codec)));
    }
    for (size_t r = 0; r < rows; ++r) features.At(r, f) = column[r];
  }
  if (pos != body.size()) {
    return Status::IoError("chunk body has trailing bytes");
  }

  Dataset chunk(schema_, std::move(features), std::move(labels),
                std::move(envs), std::move(years), std::move(halves));
  chunk.set_env_names(env_names_);
  return chunk;
}

Result<ChunkTimes> ColumnStoreReader::ReadChunkTimes(size_t i) {
  if (i >= chunks_.size()) {
    return Status::OutOfRange(StrFormat("chunk %zu of %zu", i,
                                        chunks_.size()));
  }
  const ChunkInfo& info = chunks_[i];
  const size_t rows = static_cast<size_t>(info.rows);
  in_->clear();
  in_->seekg(static_cast<std::streamoff>(info.body_offset));

  ChunkTimes times;
  std::vector<int>* int_columns[kIntColumns] = {&times.labels, &times.envs,
                                                &times.years, &times.halves};
  for (std::vector<int>* column : int_columns) {
    // Stream-parse just this column's header + payload; feature payloads
    // after the fourth column are never read.
    const int codec = in_->get();
    if (codec == std::char_traits<char>::eof()) {
      return Status::IoError("chunk body truncated at column header");
    }
    uint64_t payload_size = 0;
    LIGHTMIRM_RETURN_NOT_OK(ReadVarintStream(*in_, &payload_size));
    std::vector<uint8_t> payload(payload_size);
    LIGHTMIRM_RETURN_NOT_OK(ReadExact(*in_, payload.data(), payload_size));
    ColumnHeader header;
    header.codec = static_cast<ColumnCodec>(codec);
    header.payload_begin = 0;
    header.payload_size = payload_size;
    LIGHTMIRM_RETURN_NOT_OK(
        DecodeIntColumn(header, payload.data(), rows, column));
  }
  return times;
}

Result<std::vector<FeatureStats>> ColumnStoreReader::ReadChunkFeatureStats(
    size_t i) {
  if (i >= chunks_.size()) {
    return Status::OutOfRange(StrFormat("chunk %zu of %zu", i,
                                        chunks_.size()));
  }
  const ChunkInfo& info = chunks_[i];
  in_->clear();
  in_->seekg(static_cast<std::streamoff>(info.body_offset));

  const auto skip_column = [&](bool has_stats,
                               FeatureStats* stats) -> Status {
    const int codec = in_->get();
    if (codec == std::char_traits<char>::eof()) {
      return Status::IoError("chunk body truncated at column header");
    }
    uint64_t payload_size = 0;
    LIGHTMIRM_RETURN_NOT_OK(ReadVarintStream(*in_, &payload_size));
    if (has_stats) {
      double raw[2];
      LIGHTMIRM_RETURN_NOT_OK(ReadExact(*in_, raw, sizeof(raw)));
      stats->min = raw[0];
      stats->max = raw[1];
    }
    in_->seekg(static_cast<std::streamoff>(payload_size), std::ios::cur);
    return in_->good() ? Status::OK()
                       : Status::IoError("chunk body truncated");
  };

  for (size_t c = 0; c < kIntColumns; ++c) {
    LIGHTMIRM_RETURN_NOT_OK(skip_column(/*has_stats=*/false, nullptr));
  }
  std::vector<FeatureStats> stats(schema_.num_features());
  for (FeatureStats& s : stats) {
    LIGHTMIRM_RETURN_NOT_OK(skip_column(/*has_stats=*/true, &s));
  }
  return stats;
}

}  // namespace lightmirm::data
