#include "data/codec.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/string_util.h"
#include "gbdt/tree.h"

namespace lightmirm::data {
namespace {

// Bits needed to represent `value` (0 for 0).
int BitWidth(uint64_t value) {
  int bits = 0;
  while (value != 0) {
    ++bits;
    value >>= 1;
  }
  return bits;
}

// Little-endian bit packer: values are appended LSB-first at a fixed
// width (any width in [1, 64] — wide values go out in <= 32-bit chunks so
// the 64-bit staging buffer never overflows).
struct BitWriter {
  explicit BitWriter(std::vector<uint8_t>* out) : out(out) {}
  void Write(uint64_t value, int width) {
    while (width > 0) {
      const int take = std::min(width, 32);
      const uint64_t mask =
          take == 64 ? ~uint64_t{0} : (uint64_t{1} << take) - 1;
      buf |= (value & mask) << bits;
      bits += take;
      while (bits >= 8) {
        out->push_back(static_cast<uint8_t>(buf));
        buf >>= 8;
        bits -= 8;
      }
      value >>= take;
      width -= take;
    }
  }
  void Flush() {
    if (bits > 0) {
      out->push_back(static_cast<uint8_t>(buf));
      buf = 0;
      bits = 0;
    }
  }
  std::vector<uint8_t>* out;
  uint64_t buf = 0;
  int bits = 0;
};

struct BitReader {
  BitReader(const uint8_t* bytes, size_t size) : bytes(bytes), size(size) {}
  Status Read(int width, uint64_t* value) {
    uint64_t v = 0;
    int got = 0;
    while (got < width) {
      if (bit_pos >= size * 8) {
        return Status::IoError("bitpacked payload truncated");
      }
      const size_t byte = bit_pos >> 3;
      const int offset = static_cast<int>(bit_pos & 7);
      const int take = std::min(8 - offset, width - got);
      const uint64_t chunk =
          (bytes[byte] >> offset) & ((uint64_t{1} << take) - 1);
      v |= chunk << got;
      got += take;
      bit_pos += take;
    }
    *value = v;
    return Status::OK();
  }
  const uint8_t* bytes;
  size_t size;
  size_t bit_pos = 0;
};

// One byte stream of a split double/float column: whichever of raw, RLE
// (value, run-length pairs) or dictionary+bitpack is smallest.
// Layout: u8 mode | varint payload_bytes | payload.
enum : uint8_t { kStreamRaw = 0, kStreamRle = 1, kStreamDict = 2 };

void EncodeByteStream(const uint8_t* bytes, size_t n,
                      std::vector<uint8_t>* out) {
  // RLE candidate.
  std::vector<uint8_t> rle;
  for (size_t i = 0; i < n;) {
    size_t run = 1;
    while (i + run < n && bytes[i + run] == bytes[i]) ++run;
    rle.push_back(bytes[i]);
    AppendVarint(run, &rle);
    i += run;
    if (rle.size() >= n) break;  // already worse than raw; stop early
  }
  // Dictionary candidate (worth it below ~64 distinct byte values).
  std::vector<uint8_t> dict;
  bool have_dict = false;
  {
    bool present[256] = {false};
    uint8_t index_of[256] = {0};
    std::vector<uint8_t> symbols;
    for (size_t i = 0; i < n && symbols.size() <= 64; ++i) {
      if (!present[bytes[i]]) {
        present[bytes[i]] = true;
        symbols.push_back(bytes[i]);
      }
    }
    if (symbols.size() <= 64 && n > 0) {
      std::sort(symbols.begin(), symbols.end());
      for (size_t s = 0; s < symbols.size(); ++s) {
        index_of[symbols[s]] = static_cast<uint8_t>(s);
      }
      const int width = std::max(1, BitWidth(symbols.size() - 1));
      dict.push_back(static_cast<uint8_t>(symbols.size()));
      dict.insert(dict.end(), symbols.begin(), symbols.end());
      BitWriter writer(&dict);
      for (size_t i = 0; i < n; ++i) {
        writer.Write(index_of[bytes[i]], width);
      }
      writer.Flush();
      have_dict = true;
    }
  }

  uint8_t mode = kStreamRaw;
  size_t best = n;
  if (rle.size() < best) {
    mode = kStreamRle;
    best = rle.size();
  }
  if (have_dict && dict.size() < best) {
    mode = kStreamDict;
    best = dict.size();
  }
  out->push_back(mode);
  AppendVarint(best, out);
  switch (mode) {
    case kStreamRaw:
      out->insert(out->end(), bytes, bytes + n);
      break;
    case kStreamRle:
      out->insert(out->end(), rle.begin(), rle.end());
      break;
    case kStreamDict:
      out->insert(out->end(), dict.begin(), dict.end());
      break;
  }
}

Status DecodeByteStream(const uint8_t* bytes, size_t size, size_t* pos,
                        size_t n, uint8_t* out) {
  // The encoder writes the mode + payload-size header even for an empty
  // stream, so the header must be present regardless of n.
  if (*pos >= size) {
    return Status::IoError("byte stream header truncated");
  }
  const uint8_t mode = bytes[(*pos)++];
  uint64_t payload = 0;
  LIGHTMIRM_RETURN_NOT_OK(ReadVarint(bytes, size, pos, &payload));
  if (*pos + payload > size) {
    return Status::IoError("byte stream payload truncated");
  }
  const uint8_t* p = bytes + *pos;
  *pos += payload;
  switch (mode) {
    case kStreamRaw: {
      if (payload != n) {
        return Status::IoError("raw byte stream has wrong length");
      }
      std::memcpy(out, p, n);
      return Status::OK();
    }
    case kStreamRle: {
      size_t at = 0;
      size_t produced = 0;
      while (produced < n) {
        if (at >= payload) {
          return Status::IoError("RLE byte stream ran out of runs");
        }
        const uint8_t value = p[at++];
        uint64_t run = 0;
        LIGHTMIRM_RETURN_NOT_OK(ReadVarint(p, payload, &at, &run));
        if (run == 0 || produced + run > n) {
          return Status::IoError("RLE byte stream has malformed run");
        }
        std::memset(out + produced, value, run);
        produced += run;
      }
      return Status::OK();
    }
    case kStreamDict: {
      if (payload == 0) {
        return n == 0 ? Status::OK()
                      : Status::IoError("dictionary byte stream empty");
      }
      const size_t dict_size = p[0];
      if (dict_size == 0 || payload < 1 + dict_size) {
        return Status::IoError("dictionary byte stream malformed");
      }
      const uint8_t* symbols = p + 1;
      const int width = std::max(1, BitWidth(dict_size - 1));
      BitReader reader(p + 1 + dict_size, payload - 1 - dict_size);
      for (size_t i = 0; i < n; ++i) {
        uint64_t index = 0;
        LIGHTMIRM_RETURN_NOT_OK(reader.Read(width, &index));
        if (index >= dict_size) {
          return Status::IoError("dictionary byte stream index out of range");
        }
        out[i] = symbols[index];
      }
      return Status::OK();
    }
    default:
      return Status::IoError(
          StrFormat("unknown byte stream mode %d", mode));
  }
}

// Shared byte-split driver for 8-byte (double) and 4-byte (float) cells.
template <size_t kBytes>
void EncodeSplitStreams(const uint8_t* cells, size_t n,
                        std::vector<uint8_t>* out) {
  std::vector<uint8_t> stream(n);
  for (size_t s = 0; s < kBytes; ++s) {
    for (size_t i = 0; i < n; ++i) stream[i] = cells[i * kBytes + s];
    EncodeByteStream(stream.data(), n, out);
  }
}

template <size_t kBytes>
Status DecodeSplitStreams(const uint8_t* bytes, size_t size, size_t n,
                          uint8_t* cells) {
  std::vector<uint8_t> stream(n);
  size_t pos = 0;
  for (size_t s = 0; s < kBytes; ++s) {
    LIGHTMIRM_RETURN_NOT_OK(
        DecodeByteStream(bytes, size, &pos, n, stream.data()));
    for (size_t i = 0; i < n; ++i) cells[i * kBytes + s] = stream[i];
  }
  if (pos != size) {
    return Status::IoError("byte-split payload has trailing bytes");
  }
  return Status::OK();
}

}  // namespace

const char* ColumnCodecName(ColumnCodec codec) {
  switch (codec) {
    case ColumnCodec::kDeltaBitpack:
      return "delta_bitpack";
    case ColumnCodec::kRleDictionary:
      return "rle_dictionary";
    case ColumnCodec::kByteStreamSplit:
      return "byte_stream_split";
    case ColumnCodec::kQuantizedFloat:
      return "quantized_float";
    case ColumnCodec::kDoubleDictionary:
      return "double_dictionary";
    case ColumnCodec::kServingGrid:
      return "serving_grid";
  }
  return "unknown";
}

void AppendVarint(uint64_t value, std::vector<uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

Status ReadVarint(const uint8_t* bytes, size_t size, size_t* pos,
                  uint64_t* value) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (*pos >= size || shift > 63) {
      return Status::IoError("varint truncated or overlong");
    }
    const uint8_t byte = bytes[(*pos)++];
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *value = v;
  return Status::OK();
}

uint64_t ZigzagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

int64_t ZigzagDecode(uint64_t value) {
  return static_cast<int64_t>((value >> 1) ^ (~(value & 1) + 1));
}

void EncodeDeltaBitpack(const int64_t* values, size_t n,
                        std::vector<uint8_t>* out) {
  if (n == 0) return;
  AppendVarint(ZigzagEncode(values[0]), out);
  uint64_t max_delta = 0;
  for (size_t i = 1; i < n; ++i) {
    // Deltas in the unsigned domain so int64 overflow is well-defined.
    const uint64_t delta = ZigzagEncode(static_cast<int64_t>(
        static_cast<uint64_t>(values[i]) - static_cast<uint64_t>(values[i - 1])));
    max_delta = std::max(max_delta, delta);
  }
  const int width = BitWidth(max_delta);
  out->push_back(static_cast<uint8_t>(width));
  if (width == 0) return;  // constant column: first value + width is all
  BitWriter writer(out);
  for (size_t i = 1; i < n; ++i) {
    writer.Write(ZigzagEncode(static_cast<int64_t>(
                     static_cast<uint64_t>(values[i]) -
                     static_cast<uint64_t>(values[i - 1]))),
                 width);
  }
  writer.Flush();
}

Status DecodeDeltaBitpack(const uint8_t* bytes, size_t size, size_t n,
                          int64_t* out) {
  if (n == 0) {
    return size == 0 ? Status::OK()
                     : Status::IoError("empty column has payload bytes");
  }
  size_t pos = 0;
  uint64_t first = 0;
  LIGHTMIRM_RETURN_NOT_OK(ReadVarint(bytes, size, &pos, &first));
  out[0] = ZigzagDecode(first);
  if (pos >= size) {
    return Status::IoError("delta-bitpack width byte missing");
  }
  const int width = bytes[pos++];
  if (width > 64) {
    return Status::IoError("delta-bitpack width out of range");
  }
  if (width == 0) {
    for (size_t i = 1; i < n; ++i) out[i] = out[0];
    return Status::OK();
  }
  BitReader reader(bytes + pos, size - pos);
  for (size_t i = 1; i < n; ++i) {
    uint64_t delta = 0;
    LIGHTMIRM_RETURN_NOT_OK(reader.Read(width, &delta));
    out[i] = static_cast<int64_t>(static_cast<uint64_t>(out[i - 1]) +
                                  static_cast<uint64_t>(ZigzagDecode(delta)));
  }
  return Status::OK();
}

void EncodeRleDictionary(const int64_t* values, size_t n,
                         std::vector<uint8_t>* out) {
  // Dictionary in first-appearance order keeps typical index streams small
  // and makes the encoding deterministic.
  std::vector<int64_t> symbols;
  std::vector<uint32_t> indices(n);
  for (size_t i = 0; i < n; ++i) {
    size_t at = symbols.size();
    for (size_t s = 0; s < symbols.size(); ++s) {
      if (symbols[s] == values[i]) {
        at = s;
        break;
      }
    }
    if (at == symbols.size()) symbols.push_back(values[i]);
    indices[i] = static_cast<uint32_t>(at);
  }
  AppendVarint(symbols.size(), out);
  for (int64_t s : symbols) AppendVarint(ZigzagEncode(s), out);
  if (n == 0 || symbols.empty()) return;

  // Index stream: RLE runs vs bitpack, whichever is smaller.
  std::vector<uint8_t> rle;
  for (size_t i = 0; i < n;) {
    size_t run = 1;
    while (i + run < n && indices[i + run] == indices[i]) ++run;
    AppendVarint(indices[i], &rle);
    AppendVarint(run, &rle);
    i += run;
  }
  const int width = std::max(1, BitWidth(symbols.size() - 1));
  const size_t packed_bytes = (n * static_cast<size_t>(width) + 7) / 8;
  if (rle.size() < packed_bytes) {
    out->push_back(0);  // RLE index stream
    out->insert(out->end(), rle.begin(), rle.end());
  } else {
    out->push_back(1);  // bitpacked index stream
    BitWriter writer(out);
    for (size_t i = 0; i < n; ++i) writer.Write(indices[i], width);
    writer.Flush();
  }
}

Status DecodeRleDictionary(const uint8_t* bytes, size_t size, size_t n,
                           int64_t* out) {
  size_t pos = 0;
  uint64_t dict_size = 0;
  LIGHTMIRM_RETURN_NOT_OK(ReadVarint(bytes, size, &pos, &dict_size));
  if (dict_size > n && !(n == 0 && dict_size == 0)) {
    return Status::IoError("dictionary larger than the column");
  }
  std::vector<int64_t> symbols(dict_size);
  for (uint64_t s = 0; s < dict_size; ++s) {
    uint64_t v = 0;
    LIGHTMIRM_RETURN_NOT_OK(ReadVarint(bytes, size, &pos, &v));
    symbols[s] = ZigzagDecode(v);
  }
  if (n == 0) return Status::OK();
  if (dict_size == 0) {
    return Status::IoError("non-empty column with empty dictionary");
  }
  if (pos >= size) {
    return Status::IoError("dictionary index stream missing");
  }
  const uint8_t index_mode = bytes[pos++];
  if (index_mode == 0) {
    size_t produced = 0;
    while (produced < n) {
      uint64_t index = 0, run = 0;
      LIGHTMIRM_RETURN_NOT_OK(ReadVarint(bytes, size, &pos, &index));
      LIGHTMIRM_RETURN_NOT_OK(ReadVarint(bytes, size, &pos, &run));
      if (index >= dict_size || run == 0 || produced + run > n) {
        return Status::IoError("dictionary RLE run malformed");
      }
      for (uint64_t i = 0; i < run; ++i) out[produced++] = symbols[index];
    }
    return Status::OK();
  }
  if (index_mode != 1) {
    return Status::IoError("unknown dictionary index mode");
  }
  const int width = std::max(1, BitWidth(dict_size - 1));
  BitReader reader(bytes + pos, size - pos);
  for (size_t i = 0; i < n; ++i) {
    uint64_t index = 0;
    LIGHTMIRM_RETURN_NOT_OK(reader.Read(width, &index));
    if (index >= dict_size) {
      return Status::IoError("dictionary index out of range");
    }
    out[i] = symbols[index];
  }
  return Status::OK();
}

void EncodeByteStreamSplit(const double* values, size_t n,
                           std::vector<uint8_t>* out) {
  EncodeSplitStreams<8>(reinterpret_cast<const uint8_t*>(values), n, out);
}

Status DecodeByteStreamSplit(const uint8_t* bytes, size_t size, size_t n,
                             double* out) {
  return DecodeSplitStreams<8>(bytes, size, n,
                               reinterpret_cast<uint8_t*>(out));
}

void EncodeQuantizedFloat(const double* values, size_t n,
                          std::vector<uint8_t>* out) {
  std::vector<float> cells(n);
  for (size_t i = 0; i < n; ++i) {
    cells[i] = gbdt::QuantizeThreshold(values[i]);
  }
  EncodeSplitStreams<4>(reinterpret_cast<const uint8_t*>(cells.data()), n,
                        out);
}

Status DecodeQuantizedFloat(const uint8_t* bytes, size_t size, size_t n,
                            double* out) {
  std::vector<float> cells(n);
  LIGHTMIRM_RETURN_NOT_OK(DecodeSplitStreams<4>(
      bytes, size, n, reinterpret_cast<uint8_t*>(cells.data())));
  for (size_t i = 0; i < n; ++i) out[i] = static_cast<double>(cells[i]);
  return Status::OK();
}

bool TryEncodeDoubleDictionary(const double* values, size_t n,
                               size_t max_dict, std::vector<uint8_t>* out) {
  // Match on bit patterns: NaNs with distinct payloads stay distinct and
  // -0.0 != +0.0, so the round trip is bit-exact.
  std::vector<uint64_t> symbols;
  std::vector<uint32_t> indices(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t bits;
    std::memcpy(&bits, &values[i], sizeof(bits));
    size_t at = symbols.size();
    for (size_t s = 0; s < symbols.size(); ++s) {
      if (symbols[s] == bits) {
        at = s;
        break;
      }
    }
    if (at == symbols.size()) {
      if (symbols.size() >= max_dict) return false;
      symbols.push_back(bits);
    }
    indices[i] = static_cast<uint32_t>(at);
  }
  AppendVarint(symbols.size(), out);
  for (uint64_t s : symbols) {
    const size_t at = out->size();
    out->resize(at + sizeof(s));
    std::memcpy(out->data() + at, &s, sizeof(s));
  }
  if (n == 0 || symbols.empty()) return true;
  const int width = std::max(1, BitWidth(symbols.size() - 1));
  BitWriter writer(out);
  for (size_t i = 0; i < n; ++i) writer.Write(indices[i], width);
  writer.Flush();
  return true;
}

Status DecodeDoubleDictionary(const uint8_t* bytes, size_t size, size_t n,
                              double* out) {
  size_t pos = 0;
  uint64_t dict_size = 0;
  LIGHTMIRM_RETURN_NOT_OK(ReadVarint(bytes, size, &pos, &dict_size));
  if (pos + dict_size * 8 > size) {
    return Status::IoError("double dictionary truncated");
  }
  std::vector<double> symbols(dict_size);
  for (uint64_t s = 0; s < dict_size; ++s) {
    std::memcpy(&symbols[s], bytes + pos, sizeof(double));
    pos += sizeof(double);
  }
  if (n == 0) return Status::OK();
  if (dict_size == 0) {
    return Status::IoError("non-empty column with empty double dictionary");
  }
  const int width = std::max(1, BitWidth(dict_size - 1));
  BitReader reader(bytes + pos, size - pos);
  for (size_t i = 0; i < n; ++i) {
    uint64_t index = 0;
    LIGHTMIRM_RETURN_NOT_OK(reader.Read(width, &index));
    if (index >= dict_size) {
      return Status::IoError("double dictionary index out of range");
    }
    out[i] = symbols[index];
  }
  return Status::OK();
}

void EncodeServingGrid(const double* values, size_t n,
                       const std::vector<float>& grid,
                       std::vector<uint8_t>* out) {
  // grid.size() + 1 intervals; the top one also absorbs NaN (both compare
  // false against every threshold).
  const int width = std::max(1, BitWidth(grid.size()));
  out->push_back(static_cast<uint8_t>(width));
  BitWriter writer(out);
  for (size_t i = 0; i < n; ++i) {
    const float f = gbdt::QuantizeThreshold(values[i]);
    uint64_t interval;
    if (std::isnan(f)) {
      interval = grid.size();
    } else {
      interval = static_cast<uint64_t>(
          std::lower_bound(grid.begin(), grid.end(), f) - grid.begin());
    }
    writer.Write(interval, width);
  }
  writer.Flush();
}

Status DecodeServingGrid(const uint8_t* bytes, size_t size, size_t n,
                         const std::vector<float>& grid, double* out) {
  if (n == 0) {
    return Status::OK();
  }
  if (size == 0) {
    return Status::IoError("serving-grid payload truncated");
  }
  const int width = bytes[0];
  if (width == 0 || width > 64 ||
      width != std::max(1, BitWidth(grid.size()))) {
    return Status::IoError("serving-grid width does not match the grid");
  }
  BitReader reader(bytes + 1, size - 1);
  for (size_t i = 0; i < n; ++i) {
    uint64_t interval = 0;
    LIGHTMIRM_RETURN_NOT_OK(reader.Read(width, &interval));
    if (interval > grid.size()) {
      return Status::IoError("serving-grid interval out of range");
    }
    // The top interval (above every threshold, or NaN) decodes to NaN:
    // like the original value it compares false against every grid entry
    // on both kernels (NaN goes right), whereas +inf would compare true
    // against a hypothetical +inf threshold.
    out[i] = interval < grid.size()
                 ? static_cast<double>(grid[interval])
                 : std::numeric_limits<double>::quiet_NaN();
  }
  return Status::OK();
}

}  // namespace lightmirm::data
