#include "data/csv.h"

#include <fstream>

#include "common/string_util.h"

namespace lightmirm::data {

Status WriteCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << "label,env,year,half";
  for (const FieldSpec& f : dataset.schema().fields()) out << "," << f.name;
  out << "\n";
  const size_t n = dataset.NumRows();
  const size_t d = dataset.NumFeatures();
  for (size_t i = 0; i < n; ++i) {
    out << dataset.labels()[i] << "," << dataset.envs()[i] << ","
        << dataset.years()[i] << "," << dataset.halves()[i];
    const double* row = dataset.features().Row(i);
    for (size_t j = 0; j < d; ++j) {
      out << "," << StrFormat("%.9g", row[j]);
    }
    out << "\n";
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Dataset> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("empty csv file: " + path);
  }
  const std::vector<std::string> header = Split(Trim(line), ',');
  if (header.size() < 4 || header[0] != "label" || header[1] != "env" ||
      header[2] != "year" || header[3] != "half") {
    return Status::InvalidArgument(
        "csv header must start with label,env,year,half: " + path);
  }
  std::vector<FieldSpec> fields;
  for (size_t j = 4; j < header.size(); ++j) {
    fields.push_back(FieldSpec{header[j], FeatureKind::kNumeric, 0});
  }
  const size_t d = fields.size();

  std::vector<double> values;
  std::vector<int> labels, envs, years, halves;
  size_t rows = 0;
  size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    const std::vector<std::string> cells = Split(trimmed, ',');
    if (cells.size() != 4 + d) {
      return Status::InvalidArgument(
          StrFormat("line %zu: expected %zu cells, got %zu", lineno, 4 + d,
                    cells.size()));
    }
    LIGHTMIRM_ASSIGN_OR_RETURN(const int64_t label, ParseInt(cells[0]));
    LIGHTMIRM_ASSIGN_OR_RETURN(const int64_t env, ParseInt(cells[1]));
    LIGHTMIRM_ASSIGN_OR_RETURN(const int64_t year, ParseInt(cells[2]));
    LIGHTMIRM_ASSIGN_OR_RETURN(const int64_t half, ParseInt(cells[3]));
    labels.push_back(static_cast<int>(label));
    envs.push_back(static_cast<int>(env));
    years.push_back(static_cast<int>(year));
    halves.push_back(static_cast<int>(half));
    for (size_t j = 0; j < d; ++j) {
      LIGHTMIRM_ASSIGN_OR_RETURN(const double v, ParseDouble(cells[4 + j]));
      values.push_back(v);
    }
    ++rows;
  }
  Matrix feats(rows, d, std::move(values));
  Dataset dataset(Schema(std::move(fields)), std::move(feats),
                  std::move(labels), std::move(envs), std::move(years),
                  std::move(halves));
  LIGHTMIRM_RETURN_NOT_OK(dataset.Validate());
  return dataset;
}

}  // namespace lightmirm::data
