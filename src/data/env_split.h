// Partitioning utilities: group rows by environment, temporal train/test
// splits (the paper trains on 2016-2019 and tests on 2020), and random
// i.i.d. splits (Table VI).
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"

namespace lightmirm::data {

/// Row indices of each environment: groups[e] lists the rows with env == e.
/// Environments with no rows get empty lists.
std::vector<std::vector<size_t>> GroupByEnv(const Dataset& dataset);

/// A train/test split of a dataset.
struct Split {
  Dataset train;
  Dataset test;
};

/// Rows with year < `test_year` go to train; rows with year == `test_year`
/// go to test. Rows from later years are rejected.
Result<Split> TemporalSplit(const Dataset& dataset, int test_year);

/// Random split with `test_fraction` of rows in test, shuffled with `rng`.
Result<Split> RandomSplit(const Dataset& dataset, double test_fraction,
                          Rng* rng);

/// Per-environment datasets (views materialized as copies). Environments
/// with fewer than `min_rows` rows are merged into a single synthetic
/// "rest" environment appended at the end, so that tiny groups do not make
/// per-environment losses meaningless. Pass min_rows = 0 to keep all.
Result<std::vector<Dataset>> SplitByEnv(const Dataset& dataset,
                                        size_t min_rows = 0);

/// Per-environment row counts, indexed by env id.
std::vector<size_t> EnvCounts(const Dataset& dataset);

}  // namespace lightmirm::data
