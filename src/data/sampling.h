// Resampling utilities: environment up-sampling (the "Up Sampling" baseline
// of Table I) and class re-weighting helpers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"

namespace lightmirm::data {

/// Options for environment up-sampling.
struct UpSamplingOptions {
  /// Environments smaller than `target_fraction * max_env_count` are
  /// up-sampled (with replacement) to that size.
  double target_fraction = 0.5;
  uint64_t seed = 17;
};

/// Replicates rows of underrepresented environments so each environment has
/// at least target_fraction of the largest environment's row count.
Result<Dataset> UpSampleEnvironments(const Dataset& dataset,
                                     const UpSamplingOptions& options);

/// Per-row weights that re-balance the positive class to `target_pos_rate`
/// of total weight. Used to "adjust the rate of negative samples in the
/// loss function" (paper, Up-sampling baseline).
std::vector<double> ClassBalanceWeights(const Dataset& dataset,
                                        double target_pos_rate);

/// Draws `batch_size` row indices uniformly with replacement.
std::vector<size_t> SampleBatch(size_t num_rows, size_t batch_size, Rng* rng);

}  // namespace lightmirm::data
