#include "data/env_split.h"

#include <algorithm>
#include <numeric>

#include "common/string_util.h"

namespace lightmirm::data {

std::vector<std::vector<size_t>> GroupByEnv(const Dataset& dataset) {
  std::vector<std::vector<size_t>> groups(
      static_cast<size_t>(std::max(dataset.NumEnvs(), 0)));
  for (size_t i = 0; i < dataset.NumRows(); ++i) {
    groups[static_cast<size_t>(dataset.envs()[i])].push_back(i);
  }
  return groups;
}

Result<Split> TemporalSplit(const Dataset& dataset, int test_year) {
  std::vector<size_t> train_rows, test_rows;
  for (size_t i = 0; i < dataset.NumRows(); ++i) {
    const int y = dataset.years()[i];
    if (y < test_year) {
      train_rows.push_back(i);
    } else if (y == test_year) {
      test_rows.push_back(i);
    } else {
      return Status::InvalidArgument(StrFormat(
          "row %zu has year %d after test year %d", i, y, test_year));
    }
  }
  LIGHTMIRM_ASSIGN_OR_RETURN(Dataset train, dataset.Select(train_rows));
  LIGHTMIRM_ASSIGN_OR_RETURN(Dataset test, dataset.Select(test_rows));
  return Split{std::move(train), std::move(test)};
}

Result<Split> RandomSplit(const Dataset& dataset, double test_fraction,
                          Rng* rng) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    return Status::InvalidArgument(
        StrFormat("test_fraction must be in (0,1), got %g", test_fraction));
  }
  std::vector<size_t> order(dataset.NumRows());
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  const size_t n_test =
      static_cast<size_t>(test_fraction * static_cast<double>(order.size()));
  std::vector<size_t> test_rows(order.begin(), order.begin() + n_test);
  std::vector<size_t> train_rows(order.begin() + n_test, order.end());
  // Keep original row order within each side for reproducible iteration.
  std::sort(test_rows.begin(), test_rows.end());
  std::sort(train_rows.begin(), train_rows.end());
  LIGHTMIRM_ASSIGN_OR_RETURN(Dataset train, dataset.Select(train_rows));
  LIGHTMIRM_ASSIGN_OR_RETURN(Dataset test, dataset.Select(test_rows));
  return Split{std::move(train), std::move(test)};
}

Result<std::vector<Dataset>> SplitByEnv(const Dataset& dataset,
                                        size_t min_rows) {
  const std::vector<std::vector<size_t>> groups = GroupByEnv(dataset);
  std::vector<Dataset> out;
  std::vector<size_t> rest;
  for (const std::vector<size_t>& rows : groups) {
    if (rows.empty()) continue;
    if (rows.size() < min_rows) {
      rest.insert(rest.end(), rows.begin(), rows.end());
      continue;
    }
    LIGHTMIRM_ASSIGN_OR_RETURN(Dataset env_ds, dataset.Select(rows));
    out.push_back(std::move(env_ds));
  }
  if (!rest.empty()) {
    std::sort(rest.begin(), rest.end());
    LIGHTMIRM_ASSIGN_OR_RETURN(Dataset rest_ds, dataset.Select(rest));
    out.push_back(std::move(rest_ds));
  }
  if (out.empty()) {
    return Status::FailedPrecondition("dataset has no rows to split by env");
  }
  return out;
}

std::vector<size_t> EnvCounts(const Dataset& dataset) {
  std::vector<size_t> counts(
      static_cast<size_t>(std::max(dataset.NumEnvs(), 0)), 0);
  for (int e : dataset.envs()) counts[static_cast<size_t>(e)]++;
  return counts;
}

}  // namespace lightmirm::data
