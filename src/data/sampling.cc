#include "data/sampling.h"

#include <algorithm>

#include "data/env_split.h"

namespace lightmirm::data {

Result<Dataset> UpSampleEnvironments(const Dataset& dataset,
                                     const UpSamplingOptions& options) {
  if (options.target_fraction <= 0.0 || options.target_fraction > 1.0) {
    return Status::InvalidArgument("target_fraction must be in (0,1]");
  }
  const std::vector<std::vector<size_t>> groups = GroupByEnv(dataset);
  size_t max_count = 0;
  for (const auto& g : groups) max_count = std::max(max_count, g.size());
  const size_t target = static_cast<size_t>(
      options.target_fraction * static_cast<double>(max_count));

  Rng rng(options.seed);
  std::vector<size_t> rows;
  rows.reserve(dataset.NumRows());
  for (size_t i = 0; i < dataset.NumRows(); ++i) rows.push_back(i);
  for (const std::vector<size_t>& g : groups) {
    if (g.empty() || g.size() >= target) continue;
    const size_t extra = target - g.size();
    for (size_t k = 0; k < extra; ++k) {
      rows.push_back(g[rng.UniformInt(g.size())]);
    }
  }
  return dataset.Select(rows);
}

std::vector<double> ClassBalanceWeights(const Dataset& dataset,
                                        double target_pos_rate) {
  const size_t n = dataset.NumRows();
  std::vector<double> weights(n, 1.0);
  const double pos_rate = dataset.PositiveRate();
  if (pos_rate <= 0.0 || pos_rate >= 1.0 || n == 0) return weights;
  const double pos_w = target_pos_rate / pos_rate;
  const double neg_w = (1.0 - target_pos_rate) / (1.0 - pos_rate);
  for (size_t i = 0; i < n; ++i) {
    weights[i] = dataset.labels()[i] == 1 ? pos_w : neg_w;
  }
  return weights;
}

std::vector<size_t> SampleBatch(size_t num_rows, size_t batch_size, Rng* rng) {
  std::vector<size_t> batch(batch_size);
  for (size_t i = 0; i < batch_size; ++i) {
    batch[i] = rng->UniformInt(num_rows);
  }
  return batch;
}

}  // namespace lightmirm::data
