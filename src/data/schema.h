// Column schema for loan datasets: feature names/kinds plus the special
// label / environment / time columns used by environment-aware training.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace lightmirm::data {

/// Kind of a feature column.
enum class FeatureKind : int {
  kNumeric = 0,      ///< real-valued
  kBinary = 1,       ///< one-hot component, {0,1}
  kCategorical = 2,  ///< small-integer category id stored as double
};

/// One feature column.
struct FieldSpec {
  std::string name;
  FeatureKind kind = FeatureKind::kNumeric;
  /// For kCategorical: number of categories; otherwise 0.
  int cardinality = 0;
};

/// Ordered feature schema. Label/env/year/half live outside the feature
/// matrix (see Dataset) so the schema describes only model inputs.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<FieldSpec> fields)
      : fields_(std::move(fields)) {}

  size_t num_features() const { return fields_.size(); }
  const FieldSpec& field(size_t i) const { return fields_[i]; }
  const std::vector<FieldSpec>& fields() const { return fields_; }

  /// Appends a field and returns its index.
  size_t AddField(FieldSpec spec);

  /// Index of the field named `name`, or NotFound.
  Result<size_t> FieldIndex(const std::string& name) const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<FieldSpec> fields_;
};

}  // namespace lightmirm::data
