// CSV serialization for Dataset. The on-disk layout is
//   label,env,year,half,<feature columns...>
// with a header row carrying the feature names. Used by the examples for
// data interchange; the benches generate data in memory.
#pragma once

#include <string>

#include "common/result.h"
#include "data/dataset.h"

namespace lightmirm::data {

/// Writes `dataset` to `path`. Overwrites any existing file.
Status WriteCsv(const Dataset& dataset, const std::string& path);

/// Reads a dataset previously written by WriteCsv. All feature columns are
/// read back as kNumeric (kinds/cardinalities are not round-tripped).
Result<Dataset> ReadCsv(const std::string& path);

}  // namespace lightmirm::data
