// Compressed columnar chunk store: the out-of-core representation of a
// loan Dataset. A store file ("LMCS") is a schema header followed by
// fixed-size row chunks; within a chunk every column — label, env, year,
// half, then each feature — is encoded independently with whichever codec
// (data/codec.h) fits its shape, so a 2020-scale replay can stream from
// disk one chunk at a time instead of holding the five-year table in RAM.
//
// Feature columns support three encodings, chosen at write time for the
// whole file:
//   * lossless   — bit-exact doubles (byte-stream-split, or a double
//                  dictionary when a chunk has few distinct values);
//                  the general-purpose archival mode
//   * quantized  — doubles through gbdt::QuantizeThreshold, the exact
//                  float image the SIMD serving plane compares in; half
//                  the mantissa cost, SIMD scores bit-identical
//   * grid       — values quantized to the interval structure of one
//                  trained forest's per-feature thresholds
//                  (serve::ScoringFeatureGrid); a few bits per value and
//                  *scores* bit-identical on both the scalar and SIMD
//                  kernels — the serving/replay mode
//
// Chunk headers carry per-column min/max stats; the reader indexes them at
// Open, so a consumer can skip chunks wholesale (obs::ReplayCompressedStream
// uses the year range this way) without touching feature payloads.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "data/schema.h"

namespace lightmirm::data {

/// How feature columns are encoded (file-wide, recorded in the header).
enum class FeatureEncoding : uint8_t {
  kLossless = 0,
  kQuantized = 1,
  kServingGrid = 2,
};

/// Display name ("lossless", "quantized", "serving_grid").
const char* FeatureEncodingName(FeatureEncoding encoding);

struct ColumnStoreOptions {
  /// Rows per chunk; the unit of streaming reads and of stat-based skips.
  size_t chunk_rows = 4096;
  FeatureEncoding feature_encoding = FeatureEncoding::kLossless;
  /// Required for kServingGrid: one sorted-unique float threshold grid per
  /// feature (serve::ScoringFeatureGrid of the forest that will score the
  /// stream). Must be empty for the other encodings.
  std::vector<std::vector<float>> feature_grids;
  /// A chunk whose feature column has at most this many distinct bit
  /// patterns is stored as a dictionary (one-hot and categorical columns
  /// collapse to a few bits per row). Lossless/quantized modes only.
  size_t max_double_dict = 32;
};

/// Streaming writer. Append() buffers rows and flushes whole chunks of
/// `chunk_rows`; Finish() flushes the partial tail chunk and the end
/// marker. A store without Finish() is truncated and will not Open.
class ColumnStoreWriter {
 public:
  static Result<ColumnStoreWriter> Open(const std::string& path,
                                        const Schema& schema,
                                        std::vector<std::string> env_names,
                                        ColumnStoreOptions options = {});

  ColumnStoreWriter(ColumnStoreWriter&&) = default;
  ColumnStoreWriter& operator=(ColumnStoreWriter&&) = default;

  /// Appends every row of `rows` (schema must match the writer's).
  Status Append(const Dataset& rows);

  /// Flushes buffered rows and writes the end-of-stream marker. Must be
  /// called exactly once, after the last Append.
  Status Finish();

  uint64_t rows_written() const { return rows_written_; }
  /// Total file bytes, valid after Finish().
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  ColumnStoreWriter() = default;

  /// Encodes and writes one chunk of the first `rows` buffered rows.
  Status FlushChunk(size_t rows);

  Schema schema_;
  std::vector<std::string> env_names_;
  ColumnStoreOptions options_;
  std::unique_ptr<std::ofstream> out_;
  /// Row-major feature buffer plus parallel int columns.
  std::vector<double> features_;
  std::vector<int64_t> labels_, envs_, years_, halves_;
  size_t buffered_rows_ = 0;
  uint64_t rows_written_ = 0;
  uint64_t bytes_written_ = 0;
  bool finished_ = false;
};

/// Per-chunk index entry: position plus the int-column stats the reader
/// scanned from the chunk header (enough to skip a chunk by year/env/label
/// range without reading its body).
struct ChunkInfo {
  uint64_t rows = 0;
  uint64_t body_offset = 0;
  uint64_t body_bytes = 0;
  int label_min = 0, label_max = 0;
  int env_min = 0, env_max = 0;
  int year_min = 0, year_max = 0;
  int half_min = 0, half_max = 0;
};

/// The non-feature columns of one chunk, decoded without touching feature
/// payloads.
struct ChunkTimes {
  std::vector<int> labels, envs, years, halves;
};

/// Per-feature min/max (NaN-skipping) of the original values of one chunk.
struct FeatureStats {
  double min = 0.0;
  double max = 0.0;
};

/// Reader over one store file. Open scans the chunk index (headers only);
/// ReadChunk decodes one chunk into a Dataset carrying the store's schema
/// and env names.
class ColumnStoreReader {
 public:
  static Result<ColumnStoreReader> Open(const std::string& path);

  ColumnStoreReader(ColumnStoreReader&&) = default;
  ColumnStoreReader& operator=(ColumnStoreReader&&) = default;

  const Schema& schema() const { return schema_; }
  const std::vector<std::string>& env_names() const { return env_names_; }
  FeatureEncoding feature_encoding() const { return feature_encoding_; }
  /// Per-feature grids (non-empty only for kServingGrid files).
  const std::vector<std::vector<float>>& feature_grids() const {
    return feature_grids_;
  }

  size_t num_chunks() const { return chunks_.size(); }
  const ChunkInfo& chunk(size_t i) const { return chunks_[i]; }
  uint64_t total_rows() const { return total_rows_; }
  /// Size of the store file in bytes (the compressed footprint).
  uint64_t file_bytes() const { return file_bytes_; }

  /// Decodes chunk `i` (all columns) into a Dataset.
  Result<Dataset> ReadChunk(size_t i);

  /// Decodes only the label/env/year/half columns of chunk `i`, seeking
  /// past every feature payload.
  Result<ChunkTimes> ReadChunkTimes(size_t i);

  /// Reads the per-feature min/max stats of chunk `i` (headers only).
  Result<std::vector<FeatureStats>> ReadChunkFeatureStats(size_t i);

 private:
  ColumnStoreReader() = default;

  Schema schema_;
  std::vector<std::string> env_names_;
  FeatureEncoding feature_encoding_ = FeatureEncoding::kLossless;
  std::vector<std::vector<float>> feature_grids_;
  std::unique_ptr<std::ifstream> in_;
  std::vector<ChunkInfo> chunks_;
  uint64_t total_rows_ = 0;
  uint64_t file_bytes_ = 0;
};

}  // namespace lightmirm::data
