// Dataset: an in-memory table of loan applications. Features are stored as
// a dense row-major matrix; the label, environment (province), year, and
// half-year columns are stored alongside because the training algorithms and
// the evaluation harness key on them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/result.h"
#include "data/schema.h"

namespace lightmirm::data {

/// An immutable-by-convention table of instances. `env[i]` is the
/// environment (province) index of row i; `year[i]` / `half[i]` record when
/// the application was filed (half is 1 or 2).
class Dataset {
 public:
  Dataset() = default;
  Dataset(Schema schema, Matrix features, std::vector<int> labels,
          std::vector<int> envs, std::vector<int> years,
          std::vector<int> halves);

  size_t NumRows() const { return features_.rows(); }
  size_t NumFeatures() const { return features_.cols(); }

  const Schema& schema() const { return schema_; }
  const Matrix& features() const { return features_; }
  Matrix& mutable_features() { return features_; }
  const std::vector<int>& labels() const { return labels_; }
  const std::vector<int>& envs() const { return envs_; }
  const std::vector<int>& years() const { return years_; }
  const std::vector<int>& halves() const { return halves_; }

  /// Names of the environments; index e names envs()[i] == e. May be empty
  /// if the producer did not attach names.
  const std::vector<std::string>& env_names() const { return env_names_; }
  void set_env_names(std::vector<std::string> names) {
    env_names_ = std::move(names);
  }

  /// Human-readable name for environment e ("env<e>" when unnamed).
  std::string EnvName(int e) const;

  /// Number of distinct environment ids (max env + 1; 0 when empty).
  int NumEnvs() const;

  /// Fraction of rows with label == 1.
  double PositiveRate() const;

  /// Returns a new dataset containing the given rows (in order). Indices
  /// out of range yield OutOfRange.
  Result<Dataset> Select(const std::vector<size_t>& rows) const;

  /// Validates internal consistency (column lengths match, labels in {0,1},
  /// env ids non-negative).
  Status Validate() const;

 private:
  Schema schema_;
  Matrix features_;
  std::vector<int> labels_;
  std::vector<int> envs_;
  std::vector<int> years_;
  std::vector<int> halves_;
  std::vector<std::string> env_names_;
};

}  // namespace lightmirm::data
