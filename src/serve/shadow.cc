#include "serve/shadow.h"

#include <utility>

namespace lightmirm::serve {

ShadowScorer::ShadowScorer(ModelRegistry* registry, ChallengerGate gate)
    : registry_(registry), gate_(std::move(gate)) {}

Status ShadowScorer::Score(const Matrix& raw, const std::vector<int>* envs,
                           const std::vector<int>* labels,
                           ShadowBatchResult* out) const {
  if (registry_ == nullptr) {
    return Status::InvalidArgument("registry must be non-null");
  }
  if (out == nullptr) return Status::InvalidArgument("out must be non-null");
  // One snapshot of each slot for the whole batch: the registry may swap
  // versions while we score, but this batch is wholly one champion's (and
  // one challenger's) work.
  out->champion = registry_->active();
  out->challenger = registry_->challenger();
  if (out->champion == nullptr) {
    return Status::FailedPrecondition("registry has no active version");
  }
  if (labels != nullptr && labels->size() != raw.rows()) {
    return Status::InvalidArgument("labels misaligned with batch rows");
  }
  if (out->challenger == nullptr) {
    out->challenger_scores.clear();
    LIGHTMIRM_RETURN_NOT_OK(out->champion->session()->Score(
        raw, envs, &out->champion_scores));
    // Score() already fed the session's attached monitor, if any; the
    // version monitor is fed here (with labels when present).
    if (out->champion->monitor() != nullptr) {
      LIGHTMIRM_RETURN_NOT_OK(out->champion->monitor()->ObserveBatch(
          out->champion_scores, envs, labels));
    }
    return Status::OK();
  }
  LIGHTMIRM_RETURN_NOT_OK(ScoringSession::ScoreShadow(
      *out->champion->session(), *out->challenger->session(), raw, envs,
      &out->champion_scores, &out->challenger_scores));
  if (out->champion->monitor() != nullptr) {
    LIGHTMIRM_RETURN_NOT_OK(out->champion->monitor()->ObserveBatch(
        out->champion_scores, envs, labels));
  }
  if (out->challenger->monitor() != nullptr) {
    LIGHTMIRM_RETURN_NOT_OK(out->challenger->monitor()->ObserveBatch(
        out->challenger_scores, envs, labels));
  }
  return Status::OK();
}

Result<GateReport> ShadowScorer::EvaluateGate() const {
  if (registry_ == nullptr) {
    return Status::InvalidArgument("registry must be non-null");
  }
  const std::shared_ptr<const ModelVersion> champion = registry_->active();
  const std::shared_ptr<const ModelVersion> challenger =
      registry_->challenger();
  if (champion == nullptr) {
    return Status::FailedPrecondition("registry has no active version");
  }
  if (challenger == nullptr) {
    return Status::FailedPrecondition("no challenger is staged");
  }
  if (champion->monitor() == nullptr) {
    return Status::FailedPrecondition(
        "active version has no health monitor to compare against");
  }
  // StageChallenger guarantees the challenger has one.
  GateReport report =
      gate_.Evaluate(*champion->monitor(), *challenger->monitor());
  LIGHTMIRM_RETURN_NOT_OK(registry_->ApplyVerdict(report.verdict));
  return report;
}

}  // namespace lightmirm::serve
