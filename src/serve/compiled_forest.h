// CompiledForest: the trained booster flattened for serving. The training
// representation (gbdt::Tree, fat AoS TreeNode structs) is optimized for
// growth; inference only needs the split tuple (feature, threshold, left,
// right) and, at each leaf, the global LR column the §III-C multi-hot
// encoding would activate. Flattening every tree into structure-of-arrays
// node storage — contiguous feature/threshold/child arrays, leaves encoding
// their LR column directly — turns the GBDT→leaf→LR scoring path into a
// single pointer-chase per tree with no intermediate FeatureMatrix.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "gbdt/booster.h"

namespace lightmirm::serve {

/// Immutable SoA forest built once from a trained booster. Column layout is
/// identical to gbdt::LeafEncoder: tree t's leaves occupy LR columns
/// [offset[t], offset[t] + num_leaves_t), leaf `l` at offset[t] + l.
class CompiledForest {
 public:
  /// Flattens `booster`. Errors (InvalidArgument) on malformed trees:
  /// empty trees, children or leaf ordinals out of range, negative split
  /// features, or node graphs that are not trees (cycles, shared nodes).
  static Result<CompiledForest> Build(const gbdt::Booster& booster);

  size_t num_trees() const { return roots_.size(); }
  size_t num_nodes() const { return feature_.size(); }

  /// Total LR columns (sum of leaf counts) — the multi-hot width.
  size_t num_columns() const { return num_columns_; }

  /// Minimum raw-row width any traversal reads: max split feature id + 1.
  size_t min_feature_count() const { return min_feature_count_; }

  /// Global LR column of the leaf that `row` falls into in tree t. `row`
  /// must have at least min_feature_count() entries.
  ///
  /// The descent is depth-padded and branchless: leaves self-loop
  /// (left == right == own index), so the walk always runs exactly
  /// depths_[t] steps — a predictable trip count with a mask select per
  /// step — instead of exiting on a data-dependent (and thus mispredicted)
  /// leaf test. Rows that reach their leaf early just spin in place; the
  /// final index is the same either way, and self-loops are also NaN-safe
  /// (both branches stay put).
  uint32_t LeafColumn(size_t t, const double* row) const {
    int32_t idx = roots_[t];
    for (int32_t d = depths_[t]; d > 0; --d) {
      const size_t i = static_cast<size_t>(idx);
      const int32_t go_left = left_[i];
      const int32_t go_right = right_[i];
      const int32_t take_right =
          -static_cast<int32_t>(!(row[feature_[i]] <= threshold_[i]));
      idx = go_left + ((go_right - go_left) & take_right);
    }
    return leaf_col_[static_cast<size_t>(idx)];
  }

  /// Row-block capacity of LeafColumnsBlock (and the unit of batching in
  /// serve::ScoringSession).
  static constexpr size_t kBlockRows = 64;

  /// Batch form of LeafColumn: cols[i] = LeafColumn(t, rows[i]) for i in
  /// [0, n), n <= kBlockRows. Tree levels are walked in lockstep across the
  /// block — depth outer, rows inner — so every step of the inner loop is
  /// independent of the previous one and the out-of-order core overlaps the
  /// whole block's node loads instead of serializing one root-to-leaf
  /// pointer chain at a time.
  void LeafColumnsBlock(size_t t, const double* const* rows, size_t n,
                        uint32_t* cols) const {
    int32_t idx[kBlockRows];
    const int32_t root = roots_[t];
    for (size_t i = 0; i < n; ++i) idx[i] = root;
    for (int32_t d = depths_[t]; d > 0; --d) {
      for (size_t i = 0; i < n; ++i) {
        const size_t node = static_cast<size_t>(idx[i]);
        const int32_t go_left = left_[node];
        const int32_t go_right = right_[node];
        // Mask select instead of `?:` — compilers turn the ternary into a
        // data-dependent branch that mispredicts ~50% of the time; setcc +
        // mask keeps the step branch-free. `!(a <= b)` (not `a > b`) so a
        // NaN feature goes right, exactly like the training-side
        // Tree::PredictLeaf.
        const int32_t take_right = -static_cast<int32_t>(
            !(rows[i][feature_[node]] <= threshold_[node]));
        idx[i] = go_left + ((go_right - go_left) & take_right);
      }
    }
    for (size_t i = 0; i < n; ++i) {
      cols[i] = leaf_col_[static_cast<size_t>(idx[i])];
    }
  }

  /// Fused multi-hot dot product: sum over trees of w[LeafColumn(t, row)],
  /// accumulated in tree order — the exact addition sequence of
  /// FeatureMatrix::RowDot over a LeafEncoder-encoded sparse row, so the
  /// result is bit-identical to the legacy encode-then-dot path. `w` must
  /// have at least num_columns() entries.
  double FusedDot(const double* row, const double* w) const {
    double acc = 0.0;
    for (size_t t = 0; t < roots_.size(); ++t) {
      acc += w[LeafColumn(t, row)];
    }
    return acc;
  }

  /// Raw SoA views for downstream compilers (serve::QuantizedForest
  /// re-packs these into a float, cache-blocked layout). Children of node i
  /// are left()[i]/right()[i]; leaves self-loop (left == right == i).
  const std::vector<int32_t>& roots() const { return roots_; }
  const std::vector<int32_t>& depths() const { return depths_; }
  const std::vector<int32_t>& feature() const { return feature_; }
  const std::vector<double>& threshold() const { return threshold_; }
  const std::vector<int32_t>& left() const { return left_; }
  const std::vector<int32_t>& right() const { return right_; }
  const std::vector<uint32_t>& leaf_col() const { return leaf_col_; }

 private:
  std::vector<int32_t> roots_;     ///< global index of each tree's root
  std::vector<int32_t> depths_;    ///< max root-to-leaf edge count per tree
  std::vector<int32_t> feature_;   ///< split feature; 0 (benign) at a leaf
  std::vector<double> threshold_;  ///< go left iff row[feature] <= threshold
  std::vector<int32_t> left_;      ///< left child; at a leaf: own index
  std::vector<int32_t> right_;     ///< right child; at a leaf: own index
  std::vector<uint32_t> leaf_col_;  ///< global LR column; valid at leaves
  size_t num_columns_ = 0;
  size_t min_feature_count_ = 0;
};

}  // namespace lightmirm::serve
