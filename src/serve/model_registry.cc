#include "serve/model_registry.h"

#include <shared_mutex>
#include <utility>

#include "common/string_util.h"

namespace lightmirm::serve {

Result<std::shared_ptr<const ModelVersion>> ModelVersion::Create(
    std::string id, core::GbdtLrModel model,
    const obs::MonitorOptions& monitor_options) {
  if (id.empty()) {
    return Status::InvalidArgument("model version id must be non-empty");
  }
  if (model.scoring_session() == nullptr) {
    return Status::InvalidArgument(StrFormat(
        "model version '%s' has no scoring session (raw-feature models "
        "cannot serve through the registry)",
        id.c_str()));
  }
  // shared_ptr<ModelVersion> first, const later: Create must fill the
  // members after construction (the constructor only moves the model in).
  std::shared_ptr<ModelVersion> version(new ModelVersion(
      std::move(id),
      std::make_shared<const core::GbdtLrModel>(std::move(model))));
  version->session_ = version->model_->scoring_session();
  if (!version->model_->score_reference().empty()) {
    LIGHTMIRM_ASSIGN_OR_RETURN(
        std::unique_ptr<obs::ModelHealthMonitor> monitor,
        obs::ModelHealthMonitor::Create(version->model_->score_reference(),
                                        monitor_options));
    version->monitor_ = std::move(monitor);
  }
  return std::shared_ptr<const ModelVersion>(std::move(version));
}

Result<std::shared_ptr<const ModelVersion>> ModelVersion::CreateSibling(
    const std::shared_ptr<const ModelVersion>& base,
    const obs::MonitorOptions& monitor_options) {
  if (base == nullptr) {
    return Status::InvalidArgument("sibling needs a non-null base version");
  }
  std::shared_ptr<ModelVersion> version(
      new ModelVersion(base->id_, base->model_));
  version->session_ = base->session_;
  if (!version->model_->score_reference().empty()) {
    LIGHTMIRM_ASSIGN_OR_RETURN(
        std::unique_ptr<obs::ModelHealthMonitor> monitor,
        obs::ModelHealthMonitor::Create(version->model_->score_reference(),
                                        monitor_options));
    version->monitor_ = std::move(monitor);
  }
  return std::shared_ptr<const ModelVersion>(std::move(version));
}

Status ModelRegistry::Add(std::shared_ptr<const ModelVersion> version) {
  if (version == nullptr) {
    return Status::InvalidArgument("version must be non-null");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = versions_.emplace(version->id(), version);
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument(StrFormat(
        "model version '%s' is already registered", version->id().c_str()));
  }
  if (active_ == nullptr) {
    std::unique_lock<std::shared_mutex> slots(snapshot_mu_);
    active_ = std::move(version);
  }
  return Status::OK();
}

Result<std::shared_ptr<const ModelVersion>> ModelRegistry::Register(
    std::string id, core::GbdtLrModel model,
    const obs::MonitorOptions& monitor_options) {
  LIGHTMIRM_ASSIGN_OR_RETURN(
      std::shared_ptr<const ModelVersion> version,
      ModelVersion::Create(std::move(id), std::move(model),
                           monitor_options));
  LIGHTMIRM_RETURN_NOT_OK(Add(version));
  return version;
}

Result<std::shared_ptr<const ModelVersion>> ModelRegistry::Get(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = versions_.find(id);
  if (it == versions_.end()) {
    return Status::NotFound(
        StrFormat("no model version '%s' registered", id.c_str()));
  }
  return it->second;
}

std::vector<std::string> ModelRegistry::VersionIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(versions_.size());
  for (const auto& [id, version] : versions_) {
    (void)version;
    ids.push_back(id);
  }
  return ids;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return versions_.size();
}

Status ModelRegistry::Activate(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = versions_.find(id);
  if (it == versions_.end()) {
    return Status::NotFound(
        StrFormat("no model version '%s' registered", id.c_str()));
  }
  if (challenger_ != nullptr && challenger_->id() == id) {
    return Status::FailedPrecondition(StrFormat(
        "version '%s' is staged as challenger; promote it through the "
        "gate (ApplyVerdict), not Activate",
        id.c_str()));
  }
  std::unique_lock<std::shared_mutex> slots(snapshot_mu_);
  active_ = it->second;
  return Status::OK();
}

Status ModelRegistry::StageChallenger(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = versions_.find(id);
  if (it == versions_.end()) {
    return Status::NotFound(
        StrFormat("no model version '%s' registered", id.c_str()));
  }
  if (active_ != nullptr && active_->id() == id) {
    return Status::FailedPrecondition(StrFormat(
        "version '%s' is the active champion and cannot shadow itself",
        id.c_str()));
  }
  if (challenger_ != nullptr) {
    return Status::FailedPrecondition(
        "a challenger is already staged; clear or resolve it first");
  }
  if (it->second->monitor() == nullptr) {
    return Status::FailedPrecondition(StrFormat(
        "version '%s' carries no score reference, so no gate could ever "
        "evaluate it as challenger",
        id.c_str()));
  }
  std::unique_lock<std::shared_mutex> slots(snapshot_mu_);
  challenger_ = it->second;
  return Status::OK();
}

void ModelRegistry::ClearChallenger() {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_lock<std::shared_mutex> slots(snapshot_mu_);
  challenger_ = nullptr;
}

Status ModelRegistry::ApplyVerdict(GateVerdict verdict) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::shared_ptr<const ModelVersion> challenger = challenger_;
  if (challenger == nullptr) {
    return Status::FailedPrecondition("no challenger is staged");
  }
  switch (verdict) {
    case GateVerdict::kHold:
      return Status::OK();  // keep shadowing, gather more evidence
    case GateVerdict::kPromote: {
      // The hot swap: one slot assignment; the demoted champion stays
      // registered for instant rollback via Activate.
      std::unique_lock<std::shared_mutex> slots(snapshot_mu_);
      challenger_ = nullptr;
      active_ = challenger;
      return Status::OK();
    }
    case GateVerdict::kReject: {
      {
        std::unique_lock<std::shared_mutex> slots(snapshot_mu_);
        challenger_ = nullptr;
      }
      versions_.erase(challenger->id());
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown gate verdict");
}

Status ModelRegistry::Remove(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = versions_.find(id);
  if (it == versions_.end()) {
    return Status::NotFound(
        StrFormat("no model version '%s' registered", id.c_str()));
  }
  if (active_ != nullptr && active_->id() == id) {
    return Status::FailedPrecondition(StrFormat(
        "version '%s' is active; activate another version first",
        id.c_str()));
  }
  if (challenger_ != nullptr && challenger_->id() == id) {
    return Status::FailedPrecondition(StrFormat(
        "version '%s' is staged as challenger; clear or resolve it first",
        id.c_str()));
  }
  versions_.erase(it);
  return Status::OK();
}

size_t ModelRegistry::EvictUnreferenced() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t evicted = 0;
  for (auto it = versions_.begin(); it != versions_.end();) {
    const bool pinned = it->second == active_ || it->second == challenger_;
    // use_count == 1 under mu_: only the map itself still holds this
    // version (the snapshot slots would add a count, but those are the
    // pinned versions excluded above).
    if (!pinned && it->second.use_count() == 1) {
      it = versions_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

}  // namespace lightmirm::serve
