// ModelRegistry: the versioned model plane. A registry holds multiple
// immutable model versions — each a trained GbdtLrModel with its score
// reference, compiled/quantized serving artifacts, and its own health
// monitor — keyed by id, with one version active (the champion) and at
// most one staged as challenger for shadow scoring (serve/shadow.h).
//
// The active version swaps RCU-style: scorers take one shared_ptr
// snapshot per batch (a shared_lock held only for the pointer copy —
// readers never contend with each other, and writers hold the lock just
// long enough to assign a pointer) and finish the whole batch on that
// snapshot, so a concurrent Activate can never produce a batch scored
// partly by the old and partly by the new version. Retired versions stay
// alive as long as any in-flight batch still references them and are
// evicted once only the registry's own map holds them.
//
// Why not std::atomic<std::shared_ptr>? libstdc++ 12's lock-free-ish
// _Sp_atomic releases its internal lock bit with relaxed ordering, which
// ThreadSanitizer cannot see through (annotations only landed in GCC 13),
// so the hot-swap race test would report false positives. The
// shared_mutex snapshot has the same observable semantics and keeps the
// TSan CI job meaningful.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "core/gbdt_lr_model.h"
#include "obs/monitor.h"
#include "serve/challenger_gate.h"
#include "serve/scoring_session.h"

namespace lightmirm::serve {

/// One immutable registered version. The model (and through it the
/// compiled forest, quantized forest, and scoring session) never mutates
/// after Create; the monitor is the version's online state and is
/// internally synchronized, so sharing a ModelVersion across scoring
/// threads needs no further locking.
class ModelVersion {
 public:
  /// Wraps a trained model. Errors when `id` is empty or the model has no
  /// scoring session (the raw-feature ablation cannot serve through the
  /// registry). A health monitor is created from the model's score
  /// reference under `monitor_options` when one was captured; versions of
  /// reference-less models carry a null monitor and cannot pass a
  /// challenger gate.
  static Result<std::shared_ptr<const ModelVersion>> Create(
      std::string id, core::GbdtLrModel model,
      const obs::MonitorOptions& monitor_options = {});

  /// A sibling version: shares `base`'s immutable model (and through it
  /// the compiled/quantized serving artifacts — GbdtLrModel is move-only,
  /// so siblings are how many registries serve one trained model) under
  /// the same id, but carries its OWN freshly created monitor. The
  /// sharded service registers one sibling per shard so every shard's
  /// windows observe only that shard's slice of the traffic.
  static Result<std::shared_ptr<const ModelVersion>> CreateSibling(
      const std::shared_ptr<const ModelVersion>& base,
      const obs::MonitorOptions& monitor_options = {});

  const std::string& id() const { return id_; }
  const core::GbdtLrModel& model() const { return *model_; }
  const std::shared_ptr<const ScoringSession>& session() const {
    return session_;
  }
  /// The version's own health monitor; null when the model carries no
  /// score reference.
  const std::shared_ptr<obs::ModelHealthMonitor>& monitor() const {
    return monitor_;
  }

 private:
  ModelVersion(std::string id,
               std::shared_ptr<const core::GbdtLrModel> model)
      : id_(std::move(id)), model_(std::move(model)) {}

  std::string id_;
  /// Shared, never mutated after Create; siblings alias it.
  std::shared_ptr<const core::GbdtLrModel> model_;
  std::shared_ptr<const ScoringSession> session_;
  std::shared_ptr<obs::ModelHealthMonitor> monitor_;
};

/// Thread-safe multi-version registry; see file comment. Writers (Add /
/// Activate / StageChallenger / Remove / eviction) serialize on one mutex;
/// readers of active()/challenger() take a shared lock only for the
/// pointer copy and score entirely on the snapshot.
class ModelRegistry {
 public:
  ModelRegistry() = default;
  LIGHTMIRM_DISALLOW_COPY(ModelRegistry);

  /// Registers a version. Errors on null or duplicate id. The first
  /// version ever added becomes active so a fresh registry can serve
  /// immediately.
  Status Add(std::shared_ptr<const ModelVersion> version);

  /// Convenience: ModelVersion::Create + Add, returning the version.
  Result<std::shared_ptr<const ModelVersion>> Register(
      std::string id, core::GbdtLrModel model,
      const obs::MonitorOptions& monitor_options = {});

  Result<std::shared_ptr<const ModelVersion>> Get(
      const std::string& id) const;
  /// Registered ids, ascending.
  std::vector<std::string> VersionIds() const;
  size_t size() const;

  /// Current champion — a shared-locked pointer copy. Callers score the
  /// whole batch against the snapshot they took; null only before the
  /// first Add.
  std::shared_ptr<const ModelVersion> active() const {
    std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
    return active_;
  }
  /// Currently staged challenger (null when none).
  std::shared_ptr<const ModelVersion> challenger() const {
    std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
    return challenger_;
  }

  /// Atomically makes `id` the active version (the hot swap). In-flight
  /// batches holding the previous snapshot finish on it untouched. A
  /// version staged as challenger cannot be activated directly — that is
  /// the gate's job (ApplyVerdict), not a side door around it.
  Status Activate(const std::string& id);

  /// Stages `id` for shadow scoring. Errors when it is the active version,
  /// when another challenger is already staged, or when the version has no
  /// monitor (a gate could never evaluate it).
  Status StageChallenger(const std::string& id);
  /// Unstages the challenger, if any (the version stays registered).
  void ClearChallenger();

  /// Applies a gate verdict to the staged challenger: PROMOTE hot-swaps it
  /// to active (the old champion stays registered for rollback), REJECT
  /// unstages and removes it from the registry, HOLD leaves everything in
  /// place for more evidence. Errors when no challenger is staged.
  Status ApplyVerdict(GateVerdict verdict);

  /// Unregisters `id`. The active version and a staged challenger cannot
  /// be removed. In-flight references keep the version alive; the registry
  /// just stops handing it out.
  Status Remove(const std::string& id);

  /// Evicts every retired version (neither active nor challenger) that no
  /// one outside the registry references anymore, returning how many were
  /// dropped. Call periodically after swaps to bound memory under rolling
  /// deployments.
  size_t EvictUnreferenced();

 private:
  mutable std::mutex mu_;  ///< guards versions_ and serializes all writers
  std::map<std::string, std::shared_ptr<const ModelVersion>> versions_;
  /// Guards the two snapshot slots. Writers hold mu_ AND a unique lock
  /// here for the assignment; readers under mu_ may read the slots bare.
  mutable std::shared_mutex snapshot_mu_;
  std::shared_ptr<const ModelVersion> active_;
  std::shared_ptr<const ModelVersion> challenger_;
};

}  // namespace lightmirm::serve
