// AVX2 scoring kernel over a QuantizedForest and a row-major float feature
// plane. Eight rows ride one lane group: each level step gathers the
// lanes' split features and float thresholds, gathers the corresponding
// plane values, compares (`_CMP_LE_OQ`, so NaN goes right like the
// training descent), and blends into the interleaved kids gather — a
// branch-free lockstep walk. The leaf -> LR-column gather is fused into
// the step after the last level, and the LR accumulation stays in double
// (per-lane, trees in increasing order), so the summed scores are
// bit-identical to the scalar quantized descent and — through the
// tie-preserving threshold rounding — to the double-precision paths.
//
// This translation unit is the only one compiled with -mavx2; callers must
// gate on ActiveSimdLevel() (serve/simd_dispatch.h). On non-x86 builds the
// entry points exist but abort if reached.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lightmirm::serve {

class QuantizedForest;

/// True when this binary contains the AVX2 kernel (compile-time property;
/// whether the CPU can run it is DetectedSimdLevel()'s job).
bool Avx2KernelAvailable();

/// acc[i] += sum over trees [tree_begin, tree_end) of w[leaf_col(t, row i)]
/// for n <= CompiledForest::kBlockRows rows starting at `plane` with
/// `stride` floats per row. Lane-group tails (n % 8) fall back to the
/// scalar quantized descent — same arithmetic, same results.
void Avx2AccumulateBlock(const QuantizedForest& forest, size_t tree_begin,
                         size_t tree_end, const float* plane, size_t stride,
                         size_t n, const double* w, double* acc);

/// Per-row weight-table variant (fine-tune env overrides): row i reads
/// tables[i]. Leaf columns are still computed 8 lanes at a time; the
/// per-row accumulation is scalar because each lane gathers from its own
/// table base.
void Avx2AccumulateBlockPerRow(const QuantizedForest& forest,
                               size_t tree_begin, size_t tree_end,
                               const float* plane, size_t stride, size_t n,
                               const double* const* tables, double* acc);

/// cols[i] = leaf column of plane row i in tree t (n <= kBlockRows).
/// Exposed for the SIMD-vs-scalar property tests.
void Avx2LeafColumnsBlock(const QuantizedForest& forest, size_t t,
                          const float* plane, size_t stride, size_t n,
                          uint32_t* cols);

/// Bitvector ("false-node") evaluation of the whole forest, the fast path
/// when forest.bitvector_ready(): per 8-row group, each feature's sorted
/// split thresholds are swept once against one gathered plane vector, and
/// lanes whose condition is false AND the node's clear mask into the
/// tree's leaf mask; the surviving lowest bit is exactly the leaf the
/// descent reaches. acc[i] += w[leaf column] in increasing tree order —
/// the same additions as the descent paths, so scores stay bit-identical.
void Avx2BitvectorAccumulateBlock(const QuantizedForest& forest,
                                  const float* plane, size_t stride,
                                  size_t n, const double* w, double* acc);

/// Per-row weight-table variant of the bitvector evaluation.
void Avx2BitvectorAccumulateBlockPerRow(const QuantizedForest& forest,
                                        const float* plane, size_t stride,
                                        size_t n,
                                        const double* const* tables,
                                        double* acc);

/// dst[c] = gbdt::QuantizeThreshold(src[c]) for c in [0, n): the vectorized
/// batch-plane conversion (largest float <= each double). Identical results
/// to the scalar function on every reachable input — the conditional
/// one-ulp step toward -inf runs branch-free in the monotone integer image
/// of the float bits. Falls back to the scalar loop on non-AVX2 builds, so
/// this one is always safe to call.
void Avx2QuantizeCells(const double* src, float* dst, size_t n);

}  // namespace lightmirm::serve
