#include "serve/challenger_gate.h"

#include <algorithm>

#include "common/string_util.h"
#include "metrics/streaming.h"

namespace lightmirm::serve {
namespace {

// Fills the labeled-evidence comparison of one window pair. Distribution
// PSI is always attempted (it only needs rows); AUC/ECE need labels with
// both classes present on both sides.
GateDelta CompareWindows(int env, const obs::WindowAggregates& champion,
                         const obs::WindowAggregates& challenger,
                         uint64_t min_labeled) {
  GateDelta delta;
  delta.env = env;
  delta.champion_labeled = champion.labeled;
  delta.challenger_labeled = challenger.labeled;
  if (champion.rows > 0 && challenger.rows > 0) {
    auto psi = metrics::PsiFromCounts(champion.counts, challenger.counts);
    if (psi.ok()) delta.psi = *psi;
  }
  const auto classes_present = [](const obs::WindowAggregates& w) {
    return w.positives > 0 && w.positives < w.labeled;
  };
  delta.evaluated = champion.labeled >= min_labeled &&
                    challenger.labeled >= min_labeled &&
                    classes_present(champion) && classes_present(challenger);
  if (!delta.evaluated) return delta;
  const auto auc_of = [](const obs::WindowAggregates& w) {
    std::vector<uint64_t> negatives(w.labeled_counts.size(), 0);
    for (size_t b = 0; b < negatives.size(); ++b) {
      negatives[b] = w.labeled_counts[b] - w.labeled_positives[b];
    }
    auto auc = metrics::AucFromBinnedCounts(w.labeled_positives, negatives);
    return auc.ok() ? *auc : 0.0;
  };
  const auto ece_of = [](const obs::WindowAggregates& w) {
    auto ece = metrics::EceFromBinnedSums(w.labeled_counts, w.score_sums,
                                          w.labeled_positives);
    return ece.ok() ? *ece : 0.0;
  };
  delta.champion_auc = auc_of(champion);
  delta.challenger_auc = auc_of(challenger);
  delta.auc_delta = delta.challenger_auc - delta.champion_auc;
  delta.champion_ece = ece_of(champion);
  delta.challenger_ece = ece_of(challenger);
  delta.calibration_delta = delta.challenger_ece - delta.champion_ece;
  return delta;
}

}  // namespace

const char* GateVerdictName(GateVerdict verdict) {
  switch (verdict) {
    case GateVerdict::kHold:
      return "HOLD";
    case GateVerdict::kPromote:
      return "PROMOTE";
    case GateVerdict::kReject:
      return "REJECT";
  }
  return "?";
}

GateReport ChallengerGate::Evaluate(
    const obs::ModelHealthMonitor& champion,
    const obs::ModelHealthMonitor& challenger) const {
  GateReport report;
  const obs::WindowAggregates champion_global = champion.GlobalWindow();
  const obs::WindowAggregates challenger_global = challenger.GlobalWindow();
  report.global = CompareWindows(-1, champion_global, challenger_global,
                                 options_.min_labeled);

  // Provinces both monitors track; deltas are comparable only there.
  const std::vector<int> champion_envs = champion.MonitoredEnvs();
  for (const int env : champion_envs) {
    auto champion_window = champion.EnvWindow(env);
    auto challenger_window = challenger.EnvWindow(env);
    if (!champion_window.ok() || !challenger_window.ok()) continue;
    report.per_env.push_back(CompareWindows(
        env, *champion_window, *challenger_window, options_.min_env_labeled));
  }

  if (champion_global.rows < options_.min_rows ||
      challenger_global.rows < options_.min_rows) {
    report.verdict = GateVerdict::kHold;
    report.reason = StrFormat(
        "insufficient evidence: global windows hold %llu / %llu rows, need "
        "%llu",
        static_cast<unsigned long long>(champion_global.rows),
        static_cast<unsigned long long>(challenger_global.rows),
        static_cast<unsigned long long>(options_.min_rows));
    return report;
  }
  if (!report.global.evaluated) {
    report.verdict = GateVerdict::kHold;
    report.reason = StrFormat(
        "insufficient labeled evidence: global windows hold %llu / %llu "
        "labeled rows (need %llu with both classes present)",
        static_cast<unsigned long long>(champion_global.labeled),
        static_cast<unsigned long long>(challenger_global.labeled),
        static_cast<unsigned long long>(options_.min_labeled));
    return report;
  }

  // REJECT on measured degradation, global or in any qualifying province.
  if (report.global.auc_delta <= -options_.reject_auc_drop) {
    report.verdict = GateVerdict::kReject;
    report.reason = StrFormat(
        "challenger global AUC %.4f vs champion %.4f (drop %.4f exceeds "
        "%.4f)",
        report.global.challenger_auc, report.global.champion_auc,
        -report.global.auc_delta, options_.reject_auc_drop);
    return report;
  }
  if (report.global.calibration_delta >= options_.reject_calibration_rise) {
    report.verdict = GateVerdict::kReject;
    report.reason = StrFormat(
        "challenger global calibration error %.4f vs champion %.4f (rise "
        "%.4f exceeds %.4f)",
        report.global.challenger_ece, report.global.champion_ece,
        report.global.calibration_delta, options_.reject_calibration_rise);
    return report;
  }
  for (const GateDelta& delta : report.per_env) {
    if (delta.evaluated && delta.auc_delta <= -options_.reject_auc_drop) {
      report.verdict = GateVerdict::kReject;
      report.reason = StrFormat(
          "challenger AUC in env %d is %.4f vs champion %.4f (drop %.4f "
          "exceeds %.4f)",
          delta.env, delta.challenger_auc, delta.champion_auc,
          -delta.auc_delta, options_.reject_auc_drop);
      return report;
    }
  }

  // PROMOTE only on a real global gain without behavioral divergence.
  if (report.global.auc_delta >= options_.promote_min_auc_gain) {
    if (report.global.psi > options_.max_promote_psi) {
      report.verdict = GateVerdict::kHold;
      report.reason = StrFormat(
          "challenger gains %.4f AUC but its score distribution diverges "
          "from the champion's (PSI %.3f > %.3f); hold for review",
          report.global.auc_delta, report.global.psi,
          options_.max_promote_psi);
      return report;
    }
    report.verdict = GateVerdict::kPromote;
    report.reason = StrFormat(
        "challenger global AUC %.4f beats champion %.4f by %.4f (>= %.4f) "
        "with no qualifying province regressing",
        report.global.challenger_auc, report.global.champion_auc,
        report.global.auc_delta, options_.promote_min_auc_gain);
    return report;
  }

  report.verdict = GateVerdict::kHold;
  report.reason = StrFormat(
      "no material difference: global AUC delta %.4f (promote needs "
      "+%.4f, reject needs -%.4f)",
      report.global.auc_delta, options_.promote_min_auc_gain,
      options_.reject_auc_drop);
  return report;
}

}  // namespace lightmirm::serve
