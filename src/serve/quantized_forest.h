// QuantizedForest: the CompiledForest re-packed for the vector kernel.
// Three layout changes buy the SIMD path its bandwidth:
//
//   * Thresholds are quantized double -> float with gbdt::QuantizeThreshold
//     (largest float <= the training split). The feature plane is rounded
//     with the same function, so exact ties (feature == threshold — common,
//     because bin bounds are observed training values) still go left and
//     every float-representable feature decides exactly like the double
//     descent — see DESIGN.md §11 for the argument.
//   * Nodes are re-ordered breadth-first per tree (nodes of the same depth
//     contiguous), and left/right children are interleaved into one kids
//     array (kids[2i] / kids[2i+1]), so one level step is a single indexed
//     gather of `2*idx + 1 + cmp` instead of two child-array reads.
//   * Trees are grouped into tiles whose node storage fits comfortably in
//     L1, and the batch scorer walks every row block through one tile
//     before touching the next, so a tile's nodes are loaded from memory
//     once per block instead of once per row.
//
// Leaves keep the CompiledForest convention: they self-loop (both kids
// point at the node itself), descent is depth-padded, and a NaN feature
// compares false and goes right, exactly like gbdt::Tree::PredictLeaf.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "serve/compiled_forest.h"

namespace lightmirm::serve {

/// Immutable float/SoA forest derived from a CompiledForest. Shares its
/// column layout (leaf of tree t -> same global LR column).
class QuantizedForest {
 public:
  /// Node-storage budget per tree tile, in bytes (feature + threshold +
  /// interleaved kids + leaf column = 20 bytes/node -> ~16 KiB keeps a
  /// tile inside half of a typical 32 KiB L1d alongside the row plane).
  /// A single tree larger than the budget gets a tile of its own.
  static constexpr size_t kTileNodeBytes = 16 * 1024;
  static constexpr size_t kBytesPerNode = 20;

  /// Re-packs `forest`. Errors (InvalidArgument) when the interleaved kids
  /// array would overflow int32 indexing.
  static Result<QuantizedForest> Build(const CompiledForest& forest);

  size_t num_trees() const { return roots_.size(); }
  size_t num_nodes() const { return feature_.size(); }
  size_t num_columns() const { return num_columns_; }
  size_t min_feature_count() const { return min_feature_count_; }

  /// Tree tiles: tile k covers trees [tile_trees_[k], tile_trees_[k+1]).
  size_t num_tiles() const { return tile_trees_.size() - 1; }
  size_t tile_tree_begin(size_t k) const { return tile_trees_[k]; }
  size_t tile_tree_end(size_t k) const { return tile_trees_[k + 1]; }

  /// Global LR column of the leaf `row` (a float feature row with at least
  /// min_feature_count() entries) falls into in tree t. This is the scalar
  /// reference for the vector kernel: identical arithmetic (float compare
  /// against the quantized threshold), so the two are bit-identical by
  /// construction. Out-of-line on purpose — the hot callers are the kernel
  /// and its block tail, not this method.
  uint32_t LeafColumn(size_t t, const float* row) const;

  /// Raw arrays for the kernel (all indexed by global node id).
  const int32_t* roots() const { return roots_.data(); }
  const int32_t* depths() const { return depths_.data(); }
  const int32_t* feature() const { return feature_.data(); }
  const float* threshold() const { return threshold_.data(); }
  /// Interleaved children: kids()[2*i] = left, kids()[2*i + 1] = right.
  const int32_t* kids() const { return kids_.data(); }
  const uint32_t* leaf_col() const { return leaf_col_.data(); }

  /// Leaf-mask width of the bitvector ("false-node") evaluation tables.
  /// Trees with more leaves disable the tables and the kernel falls back
  /// to the lane-group gather descent.
  static constexpr size_t kLeafBits = 32;

  /// True when every tree has at most kLeafBits leaves, so the false-node
  /// tables below are populated (see DESIGN.md §11: evaluating the false
  /// split conditions feature-by-feature and AND-ing per-tree leaf masks
  /// finds the same leaf as the descent, without per-level gather chains).
  bool bitvector_ready() const { return bitvector_ready_; }

  /// False-node tables, sorted by (feature, ascending quantized
  /// threshold): feature f's nodes occupy
  /// [node_begin_by_feature()[f], node_begin_by_feature()[f+1]).
  const int32_t* node_begin_by_feature() const { return qs_begin_.data(); }
  const float* sorted_threshold() const { return qs_threshold_.data(); }
  const int32_t* sorted_tree() const { return qs_tree_.data(); }
  /// AND-mask applied to the node's tree when its condition is false:
  /// all-ones except the bits of the node's left subtree's leaves.
  const uint32_t* sorted_clear_mask() const { return qs_clear_.data(); }
  /// leaf_col_by_bit()[t * kLeafBits + b] = LR column of tree t's b-th
  /// leaf in left-to-right order (the bit numbering of the masks above).
  const uint32_t* leaf_col_by_bit() const { return leaf_col_by_bit_.data(); }

 private:
  std::vector<int32_t> roots_;
  std::vector<int32_t> depths_;
  std::vector<int32_t> feature_;
  std::vector<float> threshold_;
  std::vector<int32_t> kids_;
  std::vector<uint32_t> leaf_col_;
  std::vector<size_t> tile_trees_;
  size_t num_columns_ = 0;
  size_t min_feature_count_ = 0;
  bool bitvector_ready_ = false;
  std::vector<int32_t> qs_begin_;
  std::vector<float> qs_threshold_;
  std::vector<int32_t> qs_tree_;
  std::vector<uint32_t> qs_clear_;
  std::vector<uint32_t> leaf_col_by_bit_;
};

/// Per-feature threshold grids of a compiled forest: entry f is the
/// sorted-unique list of QuantizeThreshold images of every split threshold
/// on feature f (empty when the forest never splits on f), indexed up to
/// forest.min_feature_count(). Scores depend on a feature value only
/// through `value <= threshold` against these grids — on both the scalar
/// (double) and SIMD (float) kernels, by the QuantizeThreshold tie
/// invariant — which is what lets data::ColumnStore's serving-grid
/// encoding replace each value by its grid interval and stay
/// score-bit-identical.
std::vector<std::vector<float>> ScoringFeatureGrid(
    const CompiledForest& forest);

}  // namespace lightmirm::serve
