#include "serve/simd_dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "serve/simd_kernel.h"

namespace lightmirm::serve {
namespace {

bool CpuSupportsAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

std::atomic<int>& ActiveLevelSlot() {
  static std::atomic<int> level{static_cast<int>(
      ResolveSimdLevel(std::getenv("LIGHTMIRM_SIMD_LEVEL"),
                       std::getenv("LIGHTMIRM_FORCE_SCALAR"),
                       DetectedSimdLevel()))};
  return level;
}

}  // namespace

SimdLevel ResolveSimdLevel(const char* simd_level, const char* force_scalar,
                           SimdLevel detected) {
  if (simd_level != nullptr && simd_level[0] != '\0') {
    if (std::strcmp(simd_level, "scalar") == 0) return SimdLevel::kScalar;
    if (std::strcmp(simd_level, "avx2") == 0) {
      // A tier the build or CPU cannot run clamps to the best it can.
      return detected >= SimdLevel::kAvx2 ? SimdLevel::kAvx2
                                          : SimdLevel::kScalar;
    }
    if (std::strcmp(simd_level, "auto") != 0) {
      std::fprintf(stderr,
                   "lightmirm: unknown LIGHTMIRM_SIMD_LEVEL '%s' "
                   "(want scalar|avx2|auto); using auto\n",
                   simd_level);
    }
    // "auto" (and unknown values) fall through to the legacy variable.
  }
  if (force_scalar != nullptr && force_scalar[0] != '\0' &&
      std::strcmp(force_scalar, "0") != 0) {
    return SimdLevel::kScalar;
  }
  return detected;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdLevel DetectedSimdLevel() {
  static const SimdLevel detected =
      Avx2KernelAvailable() && CpuSupportsAvx2() ? SimdLevel::kAvx2
                                                 : SimdLevel::kScalar;
  return detected;
}

SimdLevel ActiveSimdLevel() {
  return static_cast<SimdLevel>(
      ActiveLevelSlot().load(std::memory_order_relaxed));
}

SimdLevel SetSimdLevel(SimdLevel level) {
  if (static_cast<int>(level) > static_cast<int>(DetectedSimdLevel())) {
    level = DetectedSimdLevel();
  }
  ActiveLevelSlot().store(static_cast<int>(level),
                          std::memory_order_relaxed);
  return level;
}

std::string CpuModelName() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/cpuinfo", "r");
  if (f != nullptr) {
    char line[512];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::strncmp(line, "model name", 10) == 0) {
        const char* colon = std::strchr(line, ':');
        if (colon != nullptr) {
          std::string name(colon + 1);
          while (!name.empty() && (name.front() == ' ' || name.front() == '\t')) {
            name.erase(name.begin());
          }
          while (!name.empty() &&
                 (name.back() == '\n' || name.back() == ' ')) {
            name.pop_back();
          }
          std::fclose(f);
          if (!name.empty()) return name;
          break;
        }
      }
    }
    std::fclose(f);
  }
#endif
  return "unknown";
}

}  // namespace lightmirm::serve
