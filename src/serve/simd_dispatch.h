// Runtime CPU dispatch for the serving kernels. The AVX2 scoring kernel
// lives in its own translation unit (simd_kernel.cc, compiled with -mavx2);
// everything else in the binary is built for the baseline ISA, so whether
// the vector kernel may run is a runtime question: the build must contain
// it, the CPU must report AVX2, and the operator must not have pinned a
// tier through the environment. ScoringSession consults ActiveSimdLevel()
// per batch; benches and tests pin levels explicitly to compare kernels on
// the same machine.
//
// Environment control, in precedence order (resolved once at first use):
//   LIGHTMIRM_SIMD_LEVEL=scalar|avx2|auto  pins a kernel tier per process
//       ("avx2" is clamped to what the build + CPU support; "auto" defers
//       to the legacy variable, then to detection; unknown values warn and
//       behave like "auto").
//   LIGHTMIRM_FORCE_SCALAR=1               legacy spelling of "scalar",
//       still honored when LIGHTMIRM_SIMD_LEVEL is unset or "auto".
#pragma once

#include <string>

namespace lightmirm::serve {

/// Kernel tiers, ordered by preference. kScalar is the portable lockstep
/// double-precision descent (CompiledForest::LeafColumnsBlock); kAvx2 is
/// the quantized 8-lane gather kernel (simd_kernel.h).
enum class SimdLevel {
  kScalar = 0,
  kAvx2 = 1,
};

/// Display name: "scalar" / "avx2".
const char* SimdLevelName(SimdLevel level);

/// Best level this build + this CPU can run (ignores the environment
/// override and any SetSimdLevel call). Computed once.
SimdLevel DetectedSimdLevel();

/// Level the scoring path currently selects. Starts at the environment
/// resolution above (ResolveSimdLevel over LIGHTMIRM_SIMD_LEVEL /
/// LIGHTMIRM_FORCE_SCALAR), read once at first use.
SimdLevel ActiveSimdLevel();

/// Pure resolution of the environment controls, exposed so the precedence
/// order is unit-testable without mutating the process environment:
/// `simd_level` / `force_scalar` stand in for the two variables (null =
/// unset), `detected` for DetectedSimdLevel(). Requested tiers above
/// `detected` are clamped to it; an unrecognized `simd_level` value warns
/// on stderr and falls through to the "auto" path.
SimdLevel ResolveSimdLevel(const char* simd_level, const char* force_scalar,
                           SimdLevel detected);

/// Overrides the active level, clamped to DetectedSimdLevel() (requesting
/// kAvx2 on a scalar-only machine stays scalar). Returns the level actually
/// now active. Thread-safe; intended for benches and tests.
SimdLevel SetSimdLevel(SimdLevel level);

/// RAII level pin for bench sweeps and tests.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) : prev_(ActiveSimdLevel()) {
    SetSimdLevel(level);
  }
  ~ScopedSimdLevel() { SetSimdLevel(prev_); }
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  SimdLevel prev_;
};

/// Human-readable CPU model ("model name" from /proc/cpuinfo on Linux;
/// "unknown" elsewhere). Recorded in bench artifacts so throughput numbers
/// carry the hardware they were measured on.
std::string CpuModelName();

}  // namespace lightmirm::serve
