// Runtime CPU dispatch for the serving kernels. The AVX2 scoring kernel
// lives in its own translation unit (simd_kernel.cc, compiled with -mavx2);
// everything else in the binary is built for the baseline ISA, so whether
// the vector kernel may run is a runtime question: the build must contain
// it, the CPU must report AVX2, and the operator must not have forced the
// portable path (LIGHTMIRM_FORCE_SCALAR=1). ScoringSession consults
// ActiveSimdLevel() per batch; benches and tests pin levels explicitly to
// compare kernels on the same machine.
#pragma once

#include <string>

namespace lightmirm::serve {

/// Kernel tiers, ordered by preference. kScalar is the portable lockstep
/// double-precision descent (CompiledForest::LeafColumnsBlock); kAvx2 is
/// the quantized 8-lane gather kernel (simd_kernel.h).
enum class SimdLevel {
  kScalar = 0,
  kAvx2 = 1,
};

/// Display name: "scalar" / "avx2".
const char* SimdLevelName(SimdLevel level);

/// Best level this build + this CPU can run (ignores the environment
/// override and any SetSimdLevel call). Computed once.
SimdLevel DetectedSimdLevel();

/// Level the scoring path currently selects. Starts at DetectedSimdLevel(),
/// demoted to kScalar when LIGHTMIRM_FORCE_SCALAR is set to anything but
/// "0" or empty in the environment at first use.
SimdLevel ActiveSimdLevel();

/// Overrides the active level, clamped to DetectedSimdLevel() (requesting
/// kAvx2 on a scalar-only machine stays scalar). Returns the level actually
/// now active. Thread-safe; intended for benches and tests.
SimdLevel SetSimdLevel(SimdLevel level);

/// RAII level pin for bench sweeps and tests.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) : prev_(ActiveSimdLevel()) {
    SetSimdLevel(level);
  }
  ~ScopedSimdLevel() { SetSimdLevel(prev_); }
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  SimdLevel prev_;
};

/// Human-readable CPU model ("model name" from /proc/cpuinfo on Linux;
/// "unknown" elsewhere). Recorded in bench artifacts so throughput numbers
/// carry the hardware they were measured on.
std::string CpuModelName();

}  // namespace lightmirm::serve
