#include "serve/simd_kernel.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "gbdt/tree.h"
#include "serve/quantized_forest.h"

#if defined(__AVX2__) && (defined(__x86_64__) || defined(_M_X64))
#define LIGHTMIRM_HAVE_AVX2_KERNEL 1
#include <immintrin.h>
// GCC implements the unmasked gather intrinsics on top of the masked forms
// with an undefined pass-through operand, which -Wmaybe-uninitialized
// flags; the pass-through lanes are fully overwritten under an all-ones
// mask, so the warning is a known false positive here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
#else
#define LIGHTMIRM_HAVE_AVX2_KERNEL 0
#endif

namespace lightmirm::serve {

bool Avx2KernelAvailable() { return LIGHTMIRM_HAVE_AVX2_KERNEL != 0; }

#if LIGHTMIRM_HAVE_AVX2_KERNEL

namespace {

constexpr size_t kLanes = 8;

// Walks 8 plane rows (lane i at base + i*stride) through tree t's padded
// depth and returns the lanes' final node indices. row_off carries the
// per-lane row start offsets so the feature gather is one vector add away.
inline __m256i Descend8(const QuantizedForest& forest, size_t t,
                        const float* base, __m256i row_off) {
  const int32_t* feature = forest.feature();
  const float* threshold = forest.threshold();
  const int32_t* kids = forest.kids();
  const __m256i one = _mm256_set1_epi32(1);
  __m256i idx = _mm256_set1_epi32(forest.roots()[t]);
  for (int32_t d = forest.depths()[t]; d > 0; --d) {
    const __m256i feat = _mm256_i32gather_epi32(feature, idx, 4);
    const __m256 thr = _mm256_i32gather_ps(threshold, idx, 4);
    const __m256 x =
        _mm256_i32gather_ps(base, _mm256_add_epi32(row_off, feat), 4);
    // All-ones where x <= thr (go left); NaN compares false and goes right,
    // matching `!(x <= thr)` in the scalar descents.
    const __m256i le =
        _mm256_castps_si256(_mm256_cmp_ps(x, thr, _CMP_LE_OQ));
    // Interleaved kids: slot 2*idx for left, 2*idx + 1 for right; le is -1
    // on the left lanes, so 2*idx + 1 + le selects without a branch.
    const __m256i slot = _mm256_add_epi32(
        _mm256_add_epi32(_mm256_slli_epi32(idx, 1), one), le);
    idx = _mm256_i32gather_epi32(kids, slot, 4);
  }
  return idx;
}

inline __m256i RowOffsets(size_t stride) {
  const int32_t s = static_cast<int32_t>(stride);
  return _mm256_setr_epi32(0, s, 2 * s, 3 * s, 4 * s, 5 * s, 6 * s, 7 * s);
}

// One tree's descent is a serial gather chain (feature -> plane value ->
// kids), so a single 8-lane group runs latency-bound. Walking G groups
// (8*G rows) through the tree in lockstep interleaves G independent chains
// per level, which keeps the gather ports saturated instead of waiting out
// each chain. G = 8 keeps the gather ports busy across their ~4-cycle
// issue throughput while the lane indices still fit the register file.
constexpr size_t kMaxWaveGroups = 8;

// Descends rows [0, 8*G) of `base` through tree t and stores the lanes'
// leaf LR columns into cols[0..G). G is a compile-time constant so the
// group loops fully unroll and idx[] stays in registers.
template <size_t G>
inline void DescendWave(const QuantizedForest& forest, size_t t,
                        const float* base, size_t stride, __m256i row_off,
                        __m256i cols[G]) {
  const int32_t* feature = forest.feature();
  const float* threshold = forest.threshold();
  const int32_t* kids = forest.kids();
  const int* leaf_col = reinterpret_cast<const int*>(forest.leaf_col());
  const __m256i one = _mm256_set1_epi32(1);
  __m256i idx[G];
  const __m256i root = _mm256_set1_epi32(forest.roots()[t]);
  for (size_t g = 0; g < G; ++g) idx[g] = root;
  for (int32_t d = forest.depths()[t]; d > 0; --d) {
    for (size_t g = 0; g < G; ++g) {
      const __m256i feat = _mm256_i32gather_epi32(feature, idx[g], 4);
      const __m256 thr = _mm256_i32gather_ps(threshold, idx[g], 4);
      const __m256 x = _mm256_i32gather_ps(
          base + g * kLanes * stride, _mm256_add_epi32(row_off, feat), 4);
      // All-ones where x <= thr (go left); NaN compares false and goes
      // right, matching `!(x <= thr)` in the scalar descents.
      const __m256i le =
          _mm256_castps_si256(_mm256_cmp_ps(x, thr, _CMP_LE_OQ));
      // Interleaved kids: slot 2*idx for left, 2*idx + 1 for right; le is
      // -1 on the left lanes, so 2*idx + 1 + le selects without a branch.
      const __m256i slot = _mm256_add_epi32(
          _mm256_add_epi32(_mm256_slli_epi32(idx[g], 1), one), le);
      idx[g] = _mm256_i32gather_epi32(kids, slot, 4);
    }
  }
  for (size_t g = 0; g < G; ++g) {
    cols[g] = _mm256_i32gather_epi32(leaf_col, idx[g], 4);
  }
}

// Accumulates trees [tree_begin, tree_end) into acc for one wave of G
// groups. The accumulation is per-lane double adds in increasing tree
// order — the exact addition sequence of the scalar paths — with the
// leaf -> LR-column gather fused into the end of each descent.
template <size_t G>
void AccumulateWave(const QuantizedForest& forest, size_t tree_begin,
                    size_t tree_end, const float* base, size_t stride,
                    __m256i row_off, const double* w, double* acc) {
  __m256i cols[G];
  for (size_t t = tree_begin; t < tree_end; ++t) {
    DescendWave<G>(forest, t, base, stride, row_off, cols);
    for (size_t g = 0; g < G; ++g) {
      const size_t at = g * kLanes;
      _mm256_storeu_pd(
          acc + at,
          _mm256_add_pd(_mm256_loadu_pd(acc + at),
                        _mm256_i32gather_pd(
                            w, _mm256_castsi256_si128(cols[g]), 8)));
      _mm256_storeu_pd(
          acc + at + 4,
          _mm256_add_pd(_mm256_loadu_pd(acc + at + 4),
                        _mm256_i32gather_pd(
                            w, _mm256_extracti128_si256(cols[g], 1), 8)));
    }
  }
}

// Per-row weight-table variant: lane k of group g reads its own table, so
// the final accumulation is scalar; the descents still run vectorized.
template <size_t G>
void AccumulateWavePerRow(const QuantizedForest& forest, size_t tree_begin,
                          size_t tree_end, const float* base, size_t stride,
                          __m256i row_off, const double* const* tables,
                          double* acc) {
  __m256i cols[G];
  alignas(32) uint32_t lane_cols[kLanes];
  for (size_t t = tree_begin; t < tree_end; ++t) {
    DescendWave<G>(forest, t, base, stride, row_off, cols);
    for (size_t g = 0; g < G; ++g) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(lane_cols), cols[g]);
      const size_t at = g * kLanes;
      for (size_t k = 0; k < kLanes; ++k) {
        acc[at + k] += tables[at + k][lane_cols[k]];
      }
    }
  }
}

// Fills masks[t * G * 8 + g * 8 + k] with the surviving leaf mask of tree
// t for lane k of lane group g over the W = G * 8 rows at `base`. One
// sweep per feature: the plane values are gathered once, then the
// feature's nodes (thresholds ascending) are compared against them; lanes
// where the condition x <= thr is FALSE (NaN included, matching the
// descent's go-right) AND in the node's clear mask.
//
// Wide form rationale: W rows share one sweep, so each node's threshold /
// tree / clear-mask loads amortize over G lane groups — the sweep is
// load-port bound, and those three loads per node are the part that does
// not scale with rows. No early-out here: with 32 lanes the all-lanes-true
// break almost never fires before the end of a feature's list, so the
// movemask dependency costs more than the nodes it skips.
template <size_t G>
inline void BitvectorMasksWide(const QuantizedForest& forest,
                               const float* base, size_t stride,
                               __m256i row_off, uint32_t* masks) {
  constexpr size_t kWide = G * kLanes;
  std::memset(masks, 0xFF, forest.num_trees() * kWide * sizeof(uint32_t));
  const int32_t* begin = forest.node_begin_by_feature();
  const float* thr = forest.sorted_threshold();
  const int32_t* tree_of = forest.sorted_tree();
  const uint32_t* clear = forest.sorted_clear_mask();
  const size_t features = forest.min_feature_count();
  for (size_t f = 0; f < features; ++f) {
    int32_t j = begin[f];
    const int32_t e = begin[f + 1];
    if (j == e) continue;
    __m256 x[G];
    const __m256i col_off =
        _mm256_add_epi32(row_off, _mm256_set1_epi32(static_cast<int32_t>(f)));
    for (size_t g = 0; g < G; ++g) {
      x[g] = _mm256_i32gather_ps(base + g * kLanes * stride, col_off, 4);
    }
    for (; j < e; ++j) {
      const __m256 tv = _mm256_set1_ps(thr[j]);
      const __m256i clear_bc =
          _mm256_set1_epi32(static_cast<int32_t>(clear[j]));
      uint32_t* m = masks + static_cast<size_t>(tree_of[j]) * kWide;
      for (size_t g = 0; g < G; ++g) {
        const __m256 go_right = _mm256_cmp_ps(x[g], tv, _CMP_NLE_UQ);
        __m256i* slot = reinterpret_cast<__m256i*>(m + g * kLanes);
        const __m256i cur = _mm256_loadu_si256(slot);
        const __m256i pruned = _mm256_and_si256(cur, clear_bc);
        _mm256_storeu_si256(
            slot,
            _mm256_blendv_epi8(cur, pruned, _mm256_castps_si256(go_right)));
      }
    }
  }
}

// Resolves the masks of W = G * 8 rows into LR columns and accumulates
// w[col] into acc. Tree-outer, lane-inner: each row's additions still run
// in increasing tree order (bit-identical sums), but the rows' FP-add
// dependency chains interleave instead of serializing.
template <size_t G>
inline void BitvectorResolve(const QuantizedForest& forest,
                             const uint32_t* masks, const double* w,
                             double* acc) {
  constexpr size_t kWide = G * kLanes;
  const uint32_t* cols = forest.leaf_col_by_bit();
  const size_t trees = forest.num_trees();
  for (size_t t = 0; t < trees; ++t) {
    const uint32_t* m = masks + t * kWide;
    const uint32_t* cb = cols + t * QuantizedForest::kLeafBits;
    for (size_t k = 0; k < kWide; ++k) {
      acc[k] += w[cb[static_cast<uint32_t>(std::countr_zero(m[k]))]];
    }
  }
}

template <size_t G>
inline void BitvectorResolvePerRow(const QuantizedForest& forest,
                                   const uint32_t* masks,
                                   const double* const* tables,
                                   double* acc) {
  constexpr size_t kWide = G * kLanes;
  const uint32_t* cols = forest.leaf_col_by_bit();
  const size_t trees = forest.num_trees();
  for (size_t t = 0; t < trees; ++t) {
    const uint32_t* m = masks + t * kWide;
    const uint32_t* cb = cols + t * QuantizedForest::kLeafBits;
    for (size_t k = 0; k < kWide; ++k) {
      acc[k] +=
          tables[k][cb[static_cast<uint32_t>(std::countr_zero(m[k]))]];
    }
  }
}

}  // namespace

void Avx2BitvectorAccumulateBlock(const QuantizedForest& forest,
                                  const float* plane, size_t stride,
                                  size_t n, const double* w, double* acc) {
  thread_local std::vector<uint32_t> mask_buf;
  const size_t trees = forest.num_trees();
  mask_buf.resize(trees * 4 * kLanes);
  uint32_t* masks = mask_buf.data();
  const __m256i row_off = RowOffsets(stride);
  size_t i = 0;
  for (; i + 4 * kLanes <= n; i += 4 * kLanes) {
    BitvectorMasksWide<4>(forest, plane + i * stride, stride, row_off,
                          masks);
    BitvectorResolve<4>(forest, masks, w, acc + i);
  }
  for (; i + kLanes <= n; i += kLanes) {
    BitvectorMasksWide<1>(forest, plane + i * stride, stride, row_off,
                          masks);
    BitvectorResolve<1>(forest, masks, w, acc + i);
  }
  for (; i < n; ++i) {
    const float* row = plane + i * stride;
    double a = acc[i];
    for (size_t t = 0; t < trees; ++t) {
      a += w[forest.LeafColumn(t, row)];
    }
    acc[i] = a;
  }
}

void Avx2BitvectorAccumulateBlockPerRow(const QuantizedForest& forest,
                                        const float* plane, size_t stride,
                                        size_t n,
                                        const double* const* tables,
                                        double* acc) {
  thread_local std::vector<uint32_t> mask_buf;
  const size_t trees = forest.num_trees();
  mask_buf.resize(trees * 4 * kLanes);
  uint32_t* masks = mask_buf.data();
  const __m256i row_off = RowOffsets(stride);
  size_t i = 0;
  for (; i + 4 * kLanes <= n; i += 4 * kLanes) {
    BitvectorMasksWide<4>(forest, plane + i * stride, stride, row_off,
                          masks);
    BitvectorResolvePerRow<4>(forest, masks, tables + i, acc + i);
  }
  for (; i + kLanes <= n; i += kLanes) {
    BitvectorMasksWide<1>(forest, plane + i * stride, stride, row_off,
                          masks);
    BitvectorResolvePerRow<1>(forest, masks, tables + i, acc + i);
  }
  for (; i < n; ++i) {
    const float* row = plane + i * stride;
    double a = acc[i];
    for (size_t t = 0; t < trees; ++t) {
      a += tables[i][forest.LeafColumn(t, row)];
    }
    acc[i] = a;
  }
}

void Avx2AccumulateBlock(const QuantizedForest& forest, size_t tree_begin,
                         size_t tree_end, const float* plane, size_t stride,
                         size_t n, const double* w, double* acc) {
  const __m256i row_off = RowOffsets(stride);
  size_t i = 0;
  while (n - i >= kLanes) {
    const size_t groups = std::min(kMaxWaveGroups, (n - i) / kLanes);
    const float* base = plane + i * stride;
    switch (groups) {
      case 8:
        AccumulateWave<8>(forest, tree_begin, tree_end, base, stride,
                          row_off, w, acc + i);
        break;
      case 7:
        AccumulateWave<7>(forest, tree_begin, tree_end, base, stride,
                          row_off, w, acc + i);
        break;
      case 6:
        AccumulateWave<6>(forest, tree_begin, tree_end, base, stride,
                          row_off, w, acc + i);
        break;
      case 5:
        AccumulateWave<5>(forest, tree_begin, tree_end, base, stride,
                          row_off, w, acc + i);
        break;
      case 4:
        AccumulateWave<4>(forest, tree_begin, tree_end, base, stride,
                          row_off, w, acc + i);
        break;
      case 3:
        AccumulateWave<3>(forest, tree_begin, tree_end, base, stride,
                          row_off, w, acc + i);
        break;
      case 2:
        AccumulateWave<2>(forest, tree_begin, tree_end, base, stride,
                          row_off, w, acc + i);
        break;
      default:
        AccumulateWave<1>(forest, tree_begin, tree_end, base, stride,
                          row_off, w, acc + i);
        break;
    }
    i += groups * kLanes;
  }
  for (; i < n; ++i) {
    const float* row = plane + i * stride;
    double a = acc[i];
    for (size_t t = tree_begin; t < tree_end; ++t) {
      a += w[forest.LeafColumn(t, row)];
    }
    acc[i] = a;
  }
}

void Avx2AccumulateBlockPerRow(const QuantizedForest& forest,
                               size_t tree_begin, size_t tree_end,
                               const float* plane, size_t stride, size_t n,
                               const double* const* tables, double* acc) {
  const __m256i row_off = RowOffsets(stride);
  size_t i = 0;
  while (n - i >= kLanes) {
    const size_t groups = std::min(kMaxWaveGroups, (n - i) / kLanes);
    const float* base = plane + i * stride;
    switch (groups) {
      case 8:
        AccumulateWavePerRow<8>(forest, tree_begin, tree_end, base, stride,
                                row_off, tables + i, acc + i);
        break;
      case 7:
        AccumulateWavePerRow<7>(forest, tree_begin, tree_end, base, stride,
                                row_off, tables + i, acc + i);
        break;
      case 6:
        AccumulateWavePerRow<6>(forest, tree_begin, tree_end, base, stride,
                                row_off, tables + i, acc + i);
        break;
      case 5:
        AccumulateWavePerRow<5>(forest, tree_begin, tree_end, base, stride,
                                row_off, tables + i, acc + i);
        break;
      case 4:
        AccumulateWavePerRow<4>(forest, tree_begin, tree_end, base, stride,
                                row_off, tables + i, acc + i);
        break;
      case 3:
        AccumulateWavePerRow<3>(forest, tree_begin, tree_end, base, stride,
                                row_off, tables + i, acc + i);
        break;
      case 2:
        AccumulateWavePerRow<2>(forest, tree_begin, tree_end, base, stride,
                                row_off, tables + i, acc + i);
        break;
      default:
        AccumulateWavePerRow<1>(forest, tree_begin, tree_end, base, stride,
                                row_off, tables + i, acc + i);
        break;
    }
    i += groups * kLanes;
  }
  for (; i < n; ++i) {
    const float* row = plane + i * stride;
    double a = acc[i];
    for (size_t t = tree_begin; t < tree_end; ++t) {
      a += tables[i][forest.LeafColumn(t, row)];
    }
    acc[i] = a;
  }
}

void Avx2LeafColumnsBlock(const QuantizedForest& forest, size_t t,
                          const float* plane, size_t stride, size_t n,
                          uint32_t* cols) {
  const __m256i row_off = RowOffsets(stride);
  const int* leaf_col = reinterpret_cast<const int*>(forest.leaf_col());
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256i leaf =
        Descend8(forest, t, plane + i * stride, row_off);
    const __m256i col = _mm256_i32gather_epi32(leaf_col, leaf, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(cols + i), col);
  }
  for (; i < n; ++i) {
    cols[i] = forest.LeafColumn(t, plane + i * stride);
  }
}

void Avx2QuantizeCells(const double* src, float* dst, size_t n) {
  const __m256i top = _mm256_set1_epi32(INT32_MIN);
  const __m256i ones = _mm256_set1_epi32(-1);
  size_t c = 0;
  for (; c + kLanes <= n; c += kLanes) {
    const __m256d d0 = _mm256_loadu_pd(src + c);
    const __m256d d1 = _mm256_loadu_pd(src + c + 4);
    const __m128 f0 = _mm256_cvtpd_ps(d0);  // round-to-nearest, like (float)x
    const __m128 f1 = _mm256_cvtpd_ps(d1);
    const __m256 f = _mm256_set_m128(f1, f0);
    // Lanes whose float image rounded up past the double need one ulp down.
    // NaN compares false under OQ and passes through, like the scalar path.
    const __m256d up0 = _mm256_cmp_pd(_mm256_cvtps_pd(f0), d0, _CMP_GT_OQ);
    const __m256d up1 = _mm256_cmp_pd(_mm256_cvtps_pd(f1), d1, _CMP_GT_OQ);
    // Compress the two 4x64 masks into one 8x32 mask in f's lane order:
    // even dwords of each 64-bit mask lane, then fix the 128-bit halves.
    const __m256 packed = _mm256_shuffle_ps(_mm256_castpd_ps(up0),
                                            _mm256_castpd_ps(up1),
                                            _MM_SHUFFLE(2, 0, 2, 0));
    const __m256i up = _mm256_permute4x64_epi64(_mm256_castps_si256(packed),
                                                _MM_SHUFFLE(3, 1, 2, 0));
    // Conditional nextafterf(f, -inf): map the float bits b to the totally
    // ordered integer o = b ^ ((b >> 31) | 0x80000000), add the -1 mask,
    // and map back (b = o ^ ((~o >> 31) | 0x80000000)). Matches the scalar
    // nextafterf on every lane the GT mask can select (f = +0.0 never
    // steps: it only arises from non-negative doubles).
    const __m256i b = _mm256_castps_si256(f);
    const __m256i o = _mm256_add_epi32(
        _mm256_xor_si256(b,
                         _mm256_or_si256(_mm256_srai_epi32(b, 31), top)),
        up);
    const __m256i stepped = _mm256_xor_si256(
        o, _mm256_or_si256(
               _mm256_srai_epi32(_mm256_xor_si256(o, ones), 31), top));
    _mm256_storeu_ps(dst + c, _mm256_castsi256_ps(stepped));
  }
  for (; c < n; ++c) {
    dst[c] = gbdt::QuantizeThreshold(src[c]);
  }
}

#else  // !LIGHTMIRM_HAVE_AVX2_KERNEL

// Portable stubs: the dispatcher never selects kAvx2 when the kernel is
// not compiled in, so reaching these is a programming error.
void Avx2AccumulateBlock(const QuantizedForest&, size_t, size_t,
                         const float*, size_t, size_t, const double*,
                         double*) {
  std::abort();
}

void Avx2BitvectorAccumulateBlock(const QuantizedForest&, const float*,
                                  size_t, size_t, const double*, double*) {
  std::abort();
}

void Avx2BitvectorAccumulateBlockPerRow(const QuantizedForest&, const float*,
                                        size_t, size_t,
                                        const double* const*, double*) {
  std::abort();
}

void Avx2AccumulateBlockPerRow(const QuantizedForest&, size_t, size_t,
                               const float*, size_t, size_t,
                               const double* const*, double*) {
  std::abort();
}

void Avx2LeafColumnsBlock(const QuantizedForest&, size_t, const float*,
                          size_t, size_t, uint32_t*) {
  std::abort();
}

void Avx2QuantizeCells(const double* src, float* dst, size_t n) {
  for (size_t c = 0; c < n; ++c) {
    dst[c] = gbdt::QuantizeThreshold(src[c]);
  }
}

#endif  // LIGHTMIRM_HAVE_AVX2_KERNEL

}  // namespace lightmirm::serve
