#include "serve/quantized_forest.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "gbdt/tree.h"

namespace lightmirm::serve {

namespace {

// One false-node record: when `x[feature] <= threshold` is FALSE the
// descent goes right, so the leaves of the node's left subtree become
// unreachable — `clear` ANDs them out of the tree's leaf mask.
struct FalseNode {
  int32_t feature;
  float threshold;
  int32_t tree;
  uint32_t clear;
};

// In-order DFS over one source tree: assigns leaf bits left-to-right,
// records each leaf's LR column, and emits a FalseNode per split with the
// left subtree's leaf set. Returns the subtree's leaf mask; sets
// `overflow` when the tree has more than kLeafBits leaves.
struct FalseNodeBuilder {
  const std::vector<int32_t>& feature;
  const std::vector<double>& threshold;
  const std::vector<int32_t>& left;
  const std::vector<int32_t>& right;
  const std::vector<uint32_t>& leaf_col;
  int32_t tree;
  uint32_t* cols_by_bit;
  std::vector<FalseNode>* out;
  uint32_t next_bit = 0;
  bool overflow = false;

  uint32_t Visit(int32_t node) {
    const size_t i = static_cast<size_t>(node);
    if (left[i] == node) {  // leaf self-loop
      if (next_bit >= QuantizedForest::kLeafBits) {
        overflow = true;
        return 0;
      }
      cols_by_bit[next_bit] = leaf_col[i];
      return 1u << next_bit++;
    }
    const uint32_t l = Visit(left[i]);
    const uint32_t r = Visit(right[i]);
    if (overflow) return 0;
    out->push_back({feature[i], gbdt::QuantizeThreshold(threshold[i]), tree,
                    ~l});
    return l | r;
  }
};

}  // namespace

Result<QuantizedForest> QuantizedForest::Build(const CompiledForest& forest) {
  const size_t total_nodes = forest.num_nodes();
  if (total_nodes >
      static_cast<size_t>(std::numeric_limits<int32_t>::max()) / 2) {
    return Status::InvalidArgument(
        "forest too large for interleaved int32 child indexing");
  }

  QuantizedForest q;
  q.num_columns_ = forest.num_columns();
  q.min_feature_count_ = forest.min_feature_count();
  q.roots_.reserve(forest.num_trees());
  q.depths_ = forest.depths();
  q.feature_.resize(total_nodes);
  q.threshold_.resize(total_nodes);
  q.kids_.resize(2 * total_nodes);
  q.leaf_col_.resize(total_nodes);

  const std::vector<int32_t>& src_feature = forest.feature();
  const std::vector<double>& src_threshold = forest.threshold();
  const std::vector<int32_t>& src_left = forest.left();
  const std::vector<int32_t>& src_right = forest.right();
  const std::vector<uint32_t>& src_leaf_col = forest.leaf_col();

  // Breadth-first renumbering per tree: a queue sweep emits level 0, then
  // level 1, ... so same-depth nodes land contiguous in the new arrays.
  std::vector<int32_t> remap(total_nodes, -1);
  std::vector<int32_t> order;
  order.reserve(total_nodes);
  int32_t next = 0;
  for (size_t t = 0; t < forest.num_trees(); ++t) {
    const int32_t root = forest.roots()[t];
    q.roots_.push_back(next);
    const size_t head = order.size();
    order.push_back(root);
    remap[static_cast<size_t>(root)] = next++;
    for (size_t cursor = head; cursor < order.size(); ++cursor) {
      const size_t old = static_cast<size_t>(order[cursor]);
      const int32_t l = src_left[old];
      const int32_t r = src_right[old];
      if (static_cast<size_t>(l) == old) continue;  // leaf self-loop
      order.push_back(l);
      remap[static_cast<size_t>(l)] = next++;
      order.push_back(r);
      remap[static_cast<size_t>(r)] = next++;
    }
  }

  for (size_t old = 0; old < total_nodes; ++old) {
    const size_t now = static_cast<size_t>(remap[old]);
    q.feature_[now] = src_feature[old];
    q.threshold_[now] = gbdt::QuantizeThreshold(src_threshold[old]);
    q.kids_[2 * now] = remap[static_cast<size_t>(src_left[old])];
    q.kids_[2 * now + 1] = remap[static_cast<size_t>(src_right[old])];
    q.leaf_col_[now] = src_leaf_col[old];
  }

  // Greedy tree tiling against the per-tile node budget; every tile holds
  // at least one tree, so an oversized tree simply gets its own tile.
  constexpr size_t budget_nodes = kTileNodeBytes / kBytesPerNode;
  q.tile_trees_.push_back(0);
  size_t tile_nodes = 0;
  for (size_t t = 0; t < forest.num_trees(); ++t) {
    const size_t tree_nodes =
        (t + 1 < forest.num_trees()
             ? static_cast<size_t>(forest.roots()[t + 1])
             : total_nodes) -
        static_cast<size_t>(forest.roots()[t]);
    if (tile_nodes > 0 && tile_nodes + tree_nodes > budget_nodes) {
      q.tile_trees_.push_back(t);
      tile_nodes = 0;
    }
    tile_nodes += tree_nodes;
  }
  q.tile_trees_.push_back(forest.num_trees());

  // False-node ("bitvector") tables: per tree an in-order leaf numbering
  // and per split the mask of leaves its FALSE outcome rules out. Sorted
  // by (feature, ascending threshold) so the kernel can sweep each
  // feature's nodes once and stop at the first all-lanes-true threshold.
  q.bitvector_ready_ = true;
  std::vector<FalseNode> qs;
  qs.reserve(total_nodes);
  q.leaf_col_by_bit_.assign(forest.num_trees() * kLeafBits, 0);
  for (size_t t = 0; t < forest.num_trees() && q.bitvector_ready_; ++t) {
    FalseNodeBuilder builder{src_feature,
                             src_threshold,
                             src_left,
                             src_right,
                             src_leaf_col,
                             static_cast<int32_t>(t),
                             q.leaf_col_by_bit_.data() + t * kLeafBits,
                             &qs};
    builder.Visit(forest.roots()[t]);
    if (builder.overflow) q.bitvector_ready_ = false;
  }
  if (q.bitvector_ready_) {
    std::stable_sort(qs.begin(), qs.end(),
                     [](const FalseNode& a, const FalseNode& b) {
                       if (a.feature != b.feature) {
                         return a.feature < b.feature;
                       }
                       return a.threshold < b.threshold;
                     });
    q.qs_begin_.assign(q.min_feature_count_ + 1, 0);
    q.qs_threshold_.reserve(qs.size());
    q.qs_tree_.reserve(qs.size());
    q.qs_clear_.reserve(qs.size());
    for (const FalseNode& node : qs) {
      ++q.qs_begin_[static_cast<size_t>(node.feature) + 1];
      q.qs_threshold_.push_back(node.threshold);
      q.qs_tree_.push_back(node.tree);
      q.qs_clear_.push_back(node.clear);
    }
    for (size_t f = 1; f < q.qs_begin_.size(); ++f) {
      q.qs_begin_[f] += q.qs_begin_[f - 1];
    }
  } else {
    q.leaf_col_by_bit_.clear();
  }
  return q;
}

uint32_t QuantizedForest::LeafColumn(size_t t, const float* row) const {
  int32_t idx = roots_[t];
  for (int32_t d = depths_[t]; d > 0; --d) {
    const size_t i = static_cast<size_t>(idx);
    // `!(x <= thr)` so a NaN feature goes right, matching the training-side
    // descent; mask select keeps the step branch-free like the double path.
    const int32_t take_right =
        static_cast<int32_t>(!(row[feature_[i]] <= threshold_[i]));
    idx = kids_[2 * i + static_cast<size_t>(take_right)];
  }
  return leaf_col_[static_cast<size_t>(idx)];
}

std::vector<std::vector<float>> ScoringFeatureGrid(
    const CompiledForest& forest) {
  std::vector<std::vector<float>> grids(forest.min_feature_count());
  for (size_t i = 0; i < forest.num_nodes(); ++i) {
    // Leaves self-loop (left == right == own index); only real splits
    // contribute a threshold.
    if (forest.left()[i] == static_cast<int32_t>(i)) continue;
    grids[static_cast<size_t>(forest.feature()[i])].push_back(
        gbdt::QuantizeThreshold(forest.threshold()[i]));
  }
  for (std::vector<float>& grid : grids) {
    std::sort(grid.begin(), grid.end());
    grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  }
  return grids;
}

}  // namespace lightmirm::serve
