#include "serve/scoring_session.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <utility>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "gbdt/tree.h"
#include "serve/simd_kernel.h"

namespace lightmirm::serve {
namespace {

// Upper bound on rows per shard of the batch loop (and the size of the
// per-shard weight-table pointer block in ScoreRange).
constexpr size_t kRowGrain = 1024;

// Rows walked through one tree level in lockstep before moving on (the
// CompiledForest block capacity). Blocking keeps a tree's SoA node arrays
// hot in L1 across the whole block and gives the out-of-order core kBlock
// independent traversal steps per level instead of one serial chain. Each
// row's accumulator still sums trees in increasing t order, so scores stay
// bit-identical to the row-major legacy path.
constexpr size_t kBlock = CompiledForest::kBlockRows;

// Scores rows [begin, end) of `raw` against the single weight table `w`
// (bias last at index `cols`).
void ScoreBlockwiseGlobal(const CompiledForest& forest, const Matrix& raw,
                          size_t begin, size_t end, const double* w,
                          size_t cols, double* out) {
  const size_t num_trees = forest.num_trees();
  const double bias = w[cols];
  const double* rows[kBlock];
  uint32_t col[kBlock];
  double acc[kBlock];
  for (size_t r0 = begin; r0 < end; r0 += kBlock) {
    const size_t n = std::min(kBlock, end - r0);
    for (size_t i = 0; i < n; ++i) {
      rows[i] = raw.Row(r0 + i);
      acc[i] = 0.0;
    }
    for (size_t t = 0; t < num_trees; ++t) {
      forest.LeafColumnsBlock(t, rows, n, col);
      for (size_t i = 0; i < n; ++i) acc[i] += w[col[i]];
    }
    for (size_t i = 0; i < n; ++i) {
      out[r0 + i] = linear::Sigmoid(acc[i] + bias);
    }
  }
}

// Per-env form: `tables[r - begin]` is the LR weight table of row r.
void ScoreBlockwisePerRow(const CompiledForest& forest, const Matrix& raw,
                          size_t begin, size_t end,
                          const double* const* tables, size_t cols,
                          double* out) {
  const size_t num_trees = forest.num_trees();
  const double* rows[kBlock];
  uint32_t col[kBlock];
  double acc[kBlock];
  for (size_t r0 = begin; r0 < end; r0 += kBlock) {
    const size_t n = std::min(kBlock, end - r0);
    const double* const* tab = tables + (r0 - begin);
    for (size_t i = 0; i < n; ++i) {
      rows[i] = raw.Row(r0 + i);
      acc[i] = 0.0;
    }
    for (size_t t = 0; t < num_trees; ++t) {
      forest.LeafColumnsBlock(t, rows, n, col);
      for (size_t i = 0; i < n; ++i) acc[i] += tab[i][col[i]];
    }
    for (size_t i = 0; i < n; ++i) {
      out[r0 + i] = linear::Sigmoid(acc[i] + tab[i][cols]);
    }
  }
}

// SIMD form of ScoreBlockwiseGlobal: rows come from the float feature
// plane (stride floats per row). Forests whose trees all fit the 32-bit
// leaf masks take the bitvector evaluation (no per-level gather chains);
// wider trees fall back to the lane-group gather descent, where each
// 64-row block runs through the quantized forest tile by tile so one
// tile's nodes stay L1-hot across the whole block. Either way the
// accumulation visits trees in increasing order, so scores match the
// scalar paths bit for bit.
void ScoreBlockwiseSimdGlobal(const QuantizedForest& forest,
                              const float* plane, size_t stride,
                              size_t begin, size_t end, const double* w,
                              size_t cols, double* out) {
  const double bias = w[cols];
  double acc[kBlock];
  for (size_t r0 = begin; r0 < end; r0 += kBlock) {
    const size_t n = std::min(kBlock, end - r0);
    std::fill(acc, acc + n, 0.0);
    if (forest.bitvector_ready()) {
      Avx2BitvectorAccumulateBlock(forest, plane + r0 * stride, stride, n,
                                   w, acc);
    } else {
      for (size_t k = 0; k < forest.num_tiles(); ++k) {
        Avx2AccumulateBlock(forest, forest.tile_tree_begin(k),
                            forest.tile_tree_end(k), plane + r0 * stride,
                            stride, n, w, acc);
      }
    }
    for (size_t i = 0; i < n; ++i) {
      out[r0 + i] = linear::Sigmoid(acc[i] + bias);
    }
  }
}

void ScoreBlockwiseSimdPerRow(const QuantizedForest& forest,
                              const float* plane, size_t stride,
                              size_t begin, size_t end,
                              const double* const* tables, size_t cols,
                              double* out) {
  double acc[kBlock];
  for (size_t r0 = begin; r0 < end; r0 += kBlock) {
    const size_t n = std::min(kBlock, end - r0);
    const double* const* tab = tables + (r0 - begin);
    std::fill(acc, acc + n, 0.0);
    if (forest.bitvector_ready()) {
      Avx2BitvectorAccumulateBlockPerRow(forest, plane + r0 * stride,
                                         stride, n, tab, acc);
    } else {
      for (size_t k = 0; k < forest.num_tiles(); ++k) {
        Avx2AccumulateBlockPerRow(forest, forest.tile_tree_begin(k),
                                  forest.tile_tree_end(k),
                                  plane + r0 * stride, stride, n, tab, acc);
      }
    }
    for (size_t i = 0; i < n; ++i) {
      out[r0 + i] = linear::Sigmoid(acc[i] + tab[i][cols]);
    }
  }
}

// Deterministic shard grain for a batch of `rows`: whole 64-row blocks,
// sized so a batch splits into roughly kTargetShards shards — enough
// slack for any plausible pool width to balance (the old fixed 1024-row
// grain cut a 20k-row batch into only 20 shards, so an 8-thread pool ran
// the tail 4 threads idle) — but never finer than one block nor coarser
// than kRowGrain (the ScoreRange table-pointer bound). A pure function of
// the batch size only: shard structure stays independent of the thread
// count, exactly like the fixed grain it replaces.
size_t ServingGrain(size_t rows) {
  constexpr size_t kTargetShards = 64;
  const size_t blocks = (rows + kBlock - 1) / kBlock;
  const size_t blocks_per_shard = (blocks + kTargetShards - 1) / kTargetShards;
  return std::min(blocks_per_shard, kRowGrain / kBlock) * kBlock;
}

}  // namespace

namespace internal {

namespace {

std::vector<float>& ThreadPlane() {
  static thread_local std::vector<float> plane;
  return plane;
}

}  // namespace

// Thread-local float plane of the calling thread, so steady-state scoring
// stays allocation-free: repeated batches on one caller thread reuse its
// capacity, concurrent callers each get their own plane, and pool workers
// write only their own shard's rows. Capacity far beyond the request is
// released first: one huge batch used to pin its high-water mark on every
// pool thread for the process lifetime, so a single 1M-row spike left
// every worker holding megabytes it would never touch again.
float* PlaneBuffer(size_t cells) {
  std::vector<float>& plane = ThreadPlane();
  if (plane.capacity() > cells * kPlaneShrinkFactor) {
    std::vector<float>().swap(plane);
  }
  plane.resize(cells);
  return plane.data();
}

size_t PlaneBufferCapacity() { return ThreadPlane().capacity(); }

}  // namespace internal

Result<ScoringSession> ScoringSession::Create(
    std::shared_ptr<const CompiledForest> forest,
    const train::TrainedPredictor& predictor) {
  if (forest == nullptr) {
    return Status::InvalidArgument("forest must be non-null");
  }
  const size_t want = forest->num_columns() + 1;
  if (predictor.global.params().size() != want) {
    return Status::InvalidArgument(
        StrFormat("global LR table has %zu params but the forest encodes "
                  "%zu columns (+1 bias)",
                  predictor.global.params().size(), forest->num_columns()));
  }
  for (const auto& [env, model] : predictor.per_env) {
    if (model.params().size() != want) {
      return Status::InvalidArgument(
          StrFormat("env %d LR table has %zu params but the forest encodes "
                    "%zu columns (+1 bias)",
                    env, model.params().size(), forest->num_columns()));
    }
  }
  ScoringSession session;
  session.forest_ = std::move(forest);
  LIGHTMIRM_ASSIGN_OR_RETURN(QuantizedForest quantized,
                             QuantizedForest::Build(*session.forest_));
  session.quantized_ =
      std::make_shared<const QuantizedForest>(std::move(quantized));
  session.monitor_slot_ = std::make_shared<MonitorSlot>();
  session.global_ = predictor.global.params();
  for (const auto& [env, model] : predictor.per_env) {
    session.env_tables_.emplace(env, model.params());
  }
  if (obs::TelemetryEnabled()) {
    obs::MetricsRegistry* registry = obs::MetricsRegistry::Global();
    session.telemetry_.batch_seconds =
        registry->GetHistogram("serve.batch.seconds");
    session.telemetry_.batches = registry->GetCounter("serve.batches");
    session.telemetry_.rows_scored =
        registry->GetCounter("serve.rows_scored");
    session.telemetry_.override_hits =
        registry->GetCounter("serve.env_override.hits");
    session.telemetry_.override_misses =
        registry->GetCounter("serve.env_override.misses");
  }
  return session;
}

std::optional<BatchWidthError> ScoringSession::CheckBatchWidth(
    const Matrix& raw) const {
  if (raw.cols() >= forest_->min_feature_count()) return std::nullopt;
  BatchWidthError error;
  error.row = 0;  // row-major batches are uniform: every row is too narrow
  error.actual_width = raw.cols();
  error.expected_width = forest_->min_feature_count();
  return error;
}

void ScoringSession::ScoreRange(const Matrix& raw, const float* plane,
                                size_t stride, size_t begin, size_t end,
                                const std::vector<int>* envs,
                                double* out) const {
  const CompiledForest& forest = *forest_;
  const QuantizedForest& quantized = *quantized_;
  const size_t cols = forest.num_columns();
  if (envs == nullptr || env_tables_.empty()) {
    const double* w = global_.data();
    if (plane != nullptr) {
      ScoreBlockwiseSimdGlobal(quantized, plane, stride, begin, end, w,
                               cols, out);
    } else {
      ScoreBlockwiseGlobal(forest, raw, begin, end, w, cols, out);
    }
    if (telemetry_.override_misses != nullptr && !env_tables_.empty()) {
      telemetry_.override_misses->Increment(end - begin);
    }
    return;
  }
  // Resolve each row's weight table once up front; the hot kernel then
  // only chases preresolved pointers. A range is at most kRowGrain rows
  // (the shard grain), so the pointer block lives on the stack.
  const double* global_table = global_.data();
  const double* tab[kRowGrain];
  size_t hits = 0;
  for (size_t r = begin; r < end; ++r) {
    tab[r - begin] = TableFor((*envs)[r]).data();
    hits += tab[r - begin] != global_table ? 1 : 0;
  }
  if (telemetry_.override_hits != nullptr) {
    telemetry_.override_hits->Increment(hits);
    telemetry_.override_misses->Increment(end - begin - hits);
  }
  if (plane != nullptr) {
    ScoreBlockwiseSimdPerRow(quantized, plane, stride, begin, end, tab,
                             cols, out);
  } else {
    ScoreBlockwisePerRow(forest, raw, begin, end, tab, cols, out);
  }
}

namespace {

Status WidthError(const BatchWidthError& width) {
  return Status::InvalidArgument(
      StrFormat("batch row %zu has %zu features but the forest needs %zu "
                "(reads feature %zu)",
                width.row, width.actual_width, width.expected_width,
                width.expected_width - 1));
}

}  // namespace

Status ScoringSession::ScoreBatch(const ScoringSession* const* sessions,
                                  size_t num_sessions, const Matrix& raw,
                                  const std::vector<int>* envs,
                                  std::vector<double>* const* outs,
                                  ScoreStageTiming* stages) {
  size_t stride = 0;
  for (size_t s = 0; s < num_sessions; ++s) {
    if (outs[s] == nullptr) {
      return Status::InvalidArgument("out must be non-null");
    }
    for (size_t other = 0; other < s; ++other) {
      if (outs[s] == outs[other]) {
        return Status::InvalidArgument(
            "champion and challenger outputs must be distinct");
      }
    }
    // One width check per batch and session — every per-block kernel
    // below relies on it.
    if (const std::optional<BatchWidthError> width =
            sessions[s]->CheckBatchWidth(raw)) {
      return WidthError(*width);
    }
    stride = std::max(stride, sessions[s]->quantized_->min_feature_count());
  }
  if (envs != nullptr && envs->size() != raw.rows()) {
    return Status::InvalidArgument(
        StrFormat("envs has %zu entries for %zu rows", envs->size(),
                  raw.rows()));
  }
  for (size_t s = 0; s < num_sessions; ++s) outs[s]->resize(raw.rows());
  const bool use_simd = ActiveSimdLevel() != SimdLevel::kScalar;
  // The float plane is shared by every session and every tree; each shard
  // converts its own rows (gbdt::QuantizeThreshold rounding, vectorized)
  // right before scoring them, so the cells are still in cache for the
  // descent and the batch needs exactly one pool dispatch. The scalar
  // path skips the plane and re-reads the double rows tree by tree.
  float* plane =
      use_simd ? internal::PlaneBuffer(raw.rows() * stride) : nullptr;
  // Stage attribution: busy time per internal shard, summed atomically.
  // The timing brackets never reorder or touch the compute, so scores are
  // bit-identical with or without `stages`.
  std::atomic<uint64_t> convert_ns{0};
  std::atomic<uint64_t> kernel_ns{0};
  ParallelForShards(
      0, raw.rows(), ServingGrain(raw.rows()),
      [&](size_t, size_t begin, size_t end) {
        using Clock = std::chrono::steady_clock;
        const auto t0 = stages != nullptr ? Clock::now()
                                          : Clock::time_point{};
        if (plane != nullptr) {
          for (size_t r = begin; r < end; ++r) {
            Avx2QuantizeCells(raw.Row(r), plane + r * stride, stride);
          }
        }
        const auto t1 = stages != nullptr ? Clock::now()
                                          : Clock::time_point{};
        for (size_t s = 0; s < num_sessions; ++s) {
          sessions[s]->ScoreRange(raw, plane, stride, begin, end, envs,
                                  outs[s]->data());
        }
        if (stages != nullptr) {
          const auto t2 = Clock::now();
          convert_ns.fetch_add(
              static_cast<uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(t1 -
                                                                       t0)
                      .count()),
              std::memory_order_relaxed);
          kernel_ns.fetch_add(
              static_cast<uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(t2 -
                                                                       t1)
                      .count()),
              std::memory_order_relaxed);
        }
      });
  if (stages != nullptr) {
    stages->convert_ns = convert_ns.load(std::memory_order_relaxed);
    stages->kernel_ns = kernel_ns.load(std::memory_order_relaxed);
  }
  return Status::OK();
}

Status ScoringSession::Score(const Matrix& raw, const std::vector<int>* envs,
                             std::vector<double>* out,
                             ScoreStageTiming* stages) const {
  WallTimer batch_watch;
  const ScoringSession* session = this;
  LIGHTMIRM_RETURN_NOT_OK(ScoreBatch(&session, 1, raw, envs, &out, stages));
  if (telemetry_.batches != nullptr) {
    telemetry_.batches->Increment();
    telemetry_.rows_scored->Increment(raw.rows());
    telemetry_.batch_seconds->Record(batch_watch.Seconds());
  }
  if (const std::shared_ptr<obs::ModelHealthMonitor> monitor =
          this->monitor();
      monitor != nullptr) {
    LIGHTMIRM_RETURN_NOT_OK(monitor->ObserveBatch(*out, envs, nullptr));
  }
  return Status::OK();
}

Status ScoringSession::ScoreShadow(const ScoringSession& champion,
                                   const ScoringSession& challenger,
                                   const Matrix& raw,
                                   const std::vector<int>* envs,
                                   std::vector<double>* champion_out,
                                   std::vector<double>* challenger_out) {
  WallTimer batch_watch;
  const ScoringSession* sessions[2] = {&champion, &challenger};
  std::vector<double>* outs[2] = {champion_out, challenger_out};
  LIGHTMIRM_RETURN_NOT_OK(ScoreBatch(sessions, 2, raw, envs, outs));
  const double seconds = batch_watch.Seconds();
  for (const ScoringSession* session : sessions) {
    if (session->telemetry_.batches != nullptr) {
      session->telemetry_.batches->Increment();
      session->telemetry_.rows_scored->Increment(raw.rows());
      session->telemetry_.batch_seconds->Record(seconds);
    }
  }
  return Status::OK();
}

Status ScoringSession::AttachMonitor(
    std::shared_ptr<obs::ModelHealthMonitor> monitor) const {
  if (monitor == nullptr) {
    return Status::InvalidArgument(
        "monitor must be non-null (use DetachMonitor to remove one)");
  }
  std::lock_guard<std::mutex> lock(monitor_slot_->mu);
  if (monitor_slot_->monitor != nullptr) {
    return Status::FailedPrecondition(
        "a monitor is already attached to this session; detach it first");
  }
  monitor_slot_->monitor = std::move(monitor);
  return Status::OK();
}

std::shared_ptr<obs::ModelHealthMonitor> ScoringSession::DetachMonitor()
    const {
  std::lock_guard<std::mutex> lock(monitor_slot_->mu);
  return std::exchange(monitor_slot_->monitor, nullptr);
}

std::shared_ptr<obs::ModelHealthMonitor> ScoringSession::monitor() const {
  std::lock_guard<std::mutex> lock(monitor_slot_->mu);
  return monitor_slot_->monitor;
}

Result<std::vector<double>> ScoringSession::Score(
    const Matrix& raw, const std::vector<int>* envs) const {
  std::vector<double> out;
  LIGHTMIRM_RETURN_NOT_OK(Score(raw, envs, &out));
  return out;
}

}  // namespace lightmirm::serve
