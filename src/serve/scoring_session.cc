#include "serve/scoring_session.h"

#include <algorithm>

#include "common/string_util.h"
#include "common/thread_pool.h"

namespace lightmirm::serve {
namespace {

// Rows per shard of the batch loop; fixed so shard structure (and thus
// scheduling) depends only on the batch size, never the thread count.
constexpr size_t kRowGrain = 1024;

// Rows walked through one tree level in lockstep before moving on (the
// CompiledForest block capacity). Blocking keeps a tree's SoA node arrays
// hot in L1 across the whole block and gives the out-of-order core kBlock
// independent traversal steps per level instead of one serial chain. Each
// row's accumulator still sums trees in increasing t order, so scores stay
// bit-identical to the row-major legacy path.
constexpr size_t kBlock = CompiledForest::kBlockRows;

// Scores rows [begin, end) of `raw` against the single weight table `w`
// (bias last at index `cols`).
void ScoreBlockwiseGlobal(const CompiledForest& forest, const Matrix& raw,
                          size_t begin, size_t end, const double* w,
                          size_t cols, double* out) {
  const size_t num_trees = forest.num_trees();
  const double bias = w[cols];
  const double* rows[kBlock];
  uint32_t col[kBlock];
  double acc[kBlock];
  for (size_t r0 = begin; r0 < end; r0 += kBlock) {
    const size_t n = std::min(kBlock, end - r0);
    for (size_t i = 0; i < n; ++i) {
      rows[i] = raw.Row(r0 + i);
      acc[i] = 0.0;
    }
    for (size_t t = 0; t < num_trees; ++t) {
      forest.LeafColumnsBlock(t, rows, n, col);
      for (size_t i = 0; i < n; ++i) acc[i] += w[col[i]];
    }
    for (size_t i = 0; i < n; ++i) {
      out[r0 + i] = linear::Sigmoid(acc[i] + bias);
    }
  }
}

// Per-env form: `tables[r - begin]` is the LR weight table of row r.
void ScoreBlockwisePerRow(const CompiledForest& forest, const Matrix& raw,
                          size_t begin, size_t end,
                          const double* const* tables, size_t cols,
                          double* out) {
  const size_t num_trees = forest.num_trees();
  const double* rows[kBlock];
  uint32_t col[kBlock];
  double acc[kBlock];
  for (size_t r0 = begin; r0 < end; r0 += kBlock) {
    const size_t n = std::min(kBlock, end - r0);
    const double* const* tab = tables + (r0 - begin);
    for (size_t i = 0; i < n; ++i) {
      rows[i] = raw.Row(r0 + i);
      acc[i] = 0.0;
    }
    for (size_t t = 0; t < num_trees; ++t) {
      forest.LeafColumnsBlock(t, rows, n, col);
      for (size_t i = 0; i < n; ++i) acc[i] += tab[i][col[i]];
    }
    for (size_t i = 0; i < n; ++i) {
      out[r0 + i] = linear::Sigmoid(acc[i] + tab[i][cols]);
    }
  }
}

}  // namespace

Result<ScoringSession> ScoringSession::Create(
    std::shared_ptr<const CompiledForest> forest,
    const train::TrainedPredictor& predictor) {
  if (forest == nullptr) {
    return Status::InvalidArgument("forest must be non-null");
  }
  const size_t want = forest->num_columns() + 1;
  if (predictor.global.params().size() != want) {
    return Status::InvalidArgument(
        StrFormat("global LR table has %zu params but the forest encodes "
                  "%zu columns (+1 bias)",
                  predictor.global.params().size(), forest->num_columns()));
  }
  for (const auto& [env, model] : predictor.per_env) {
    if (model.params().size() != want) {
      return Status::InvalidArgument(
          StrFormat("env %d LR table has %zu params but the forest encodes "
                    "%zu columns (+1 bias)",
                    env, model.params().size(), forest->num_columns()));
    }
  }
  ScoringSession session;
  session.forest_ = std::move(forest);
  session.monitor_slot_ = std::make_shared<MonitorSlot>();
  session.global_ = predictor.global.params();
  for (const auto& [env, model] : predictor.per_env) {
    session.env_tables_.emplace(env, model.params());
  }
  if (obs::TelemetryEnabled()) {
    obs::MetricsRegistry* registry = obs::MetricsRegistry::Global();
    session.telemetry_.batch_seconds =
        registry->GetHistogram("serve.batch.seconds");
    session.telemetry_.batches = registry->GetCounter("serve.batches");
    session.telemetry_.rows_scored =
        registry->GetCounter("serve.rows_scored");
    session.telemetry_.override_hits =
        registry->GetCounter("serve.env_override.hits");
    session.telemetry_.override_misses =
        registry->GetCounter("serve.env_override.misses");
  }
  return session;
}

Status ScoringSession::Score(const Matrix& raw, const std::vector<int>* envs,
                             std::vector<double>* out) const {
  if (out == nullptr) return Status::InvalidArgument("out must be non-null");
  if (raw.cols() < forest_->min_feature_count()) {
    return Status::InvalidArgument(
        StrFormat("matrix has %zu columns but the forest reads feature %zu",
                  raw.cols(), forest_->min_feature_count() - 1));
  }
  if (envs != nullptr && envs->size() != raw.rows()) {
    return Status::InvalidArgument(
        StrFormat("envs has %zu entries for %zu rows", envs->size(),
                  raw.rows()));
  }
  WallTimer batch_watch;
  out->resize(raw.rows());
  const CompiledForest& forest = *forest_;
  const size_t cols = forest.num_columns();
  if (envs == nullptr || env_tables_.empty()) {
    const double* w = global_.data();
    ParallelForShards(0, raw.rows(), kRowGrain,
                      [&](size_t, size_t begin, size_t end) {
                        ScoreBlockwiseGlobal(forest, raw, begin, end, w, cols,
                                             out->data());
                      });
    if (telemetry_.override_misses != nullptr && !env_tables_.empty()) {
      telemetry_.override_misses->Increment(raw.rows());
    }
  } else {
    const double* global_table = global_.data();
    ParallelForShards(
        0, raw.rows(), kRowGrain, [&](size_t, size_t begin, size_t end) {
          // Resolve each row's weight table once up front; the hot kernel
          // then only chases preresolved pointers. A shard is at most
          // kRowGrain rows, so the pointer block lives on the stack.
          const double* tab[kRowGrain];
          size_t hits = 0;
          for (size_t r = begin; r < end; ++r) {
            tab[r - begin] = TableFor((*envs)[r]).data();
            hits += tab[r - begin] != global_table ? 1 : 0;
          }
          if (telemetry_.override_hits != nullptr) {
            telemetry_.override_hits->Increment(hits);
            telemetry_.override_misses->Increment(end - begin - hits);
          }
          ScoreBlockwisePerRow(forest, raw, begin, end, tab, cols,
                               out->data());
        });
  }
  if (telemetry_.batches != nullptr) {
    telemetry_.batches->Increment();
    telemetry_.rows_scored->Increment(raw.rows());
    telemetry_.batch_seconds->Record(batch_watch.Seconds());
  }
  if (const std::shared_ptr<obs::ModelHealthMonitor> monitor =
          this->monitor();
      monitor != nullptr) {
    LIGHTMIRM_RETURN_NOT_OK(monitor->ObserveBatch(*out, envs, nullptr));
  }
  return Status::OK();
}

void ScoringSession::AttachMonitor(
    std::shared_ptr<obs::ModelHealthMonitor> monitor) const {
  std::lock_guard<std::mutex> lock(monitor_slot_->mu);
  monitor_slot_->monitor = std::move(monitor);
}

std::shared_ptr<obs::ModelHealthMonitor> ScoringSession::monitor() const {
  std::lock_guard<std::mutex> lock(monitor_slot_->mu);
  return monitor_slot_->monitor;
}

Result<std::vector<double>> ScoringSession::Score(
    const Matrix& raw, const std::vector<int>* envs) const {
  std::vector<double> out;
  LIGHTMIRM_RETURN_NOT_OK(Score(raw, envs, &out));
  return out;
}

}  // namespace lightmirm::serve
