// ChallengerGate: the evidence gate between shadow scoring and promotion.
// A challenger model runs in the champion's shadow (serve/shadow.h), each
// feeding its own ModelHealthMonitor; the gate compares the two monitors'
// sliding windows — global and per province — and turns the deltas into a
// PROMOTE / HOLD / REJECT verdict that drives the registry's hot swap.
// This is the Continual-IRM rollout discipline: a model retrained on fresh
// environments is promoted through measured evidence, never swapped
// blindly.
//
// All comparisons are O(bins) over the windows' binned aggregates
// (metrics/streaming.h): streaming AUC deltas, expected-calibration-error
// deltas, and the PSI between the champion's and challenger's score
// distributions over the same traffic (a behavioral-divergence signal —
// two models scoring identical rows very differently deserve a human look
// even when the challenger's AUC is up).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/monitor.h"

namespace lightmirm::serve {

enum class GateVerdict { kHold = 0, kPromote = 1, kReject = 2 };

/// "HOLD" / "PROMOTE" / "REJECT".
const char* GateVerdictName(GateVerdict verdict);

/// Gate thresholds. Defaults are deliberately conservative: a challenger
/// must show a real AUC gain to promote, degrade measurably to reject, and
/// anything in between — including "identical to the champion" — holds.
struct GateOptions {
  /// Both global windows need at least this many rows before any verdict
  /// other than HOLD("insufficient evidence") is possible.
  uint64_t min_rows = 500;
  /// ... and this many labeled rows with both classes present (the AUC /
  /// calibration deltas are meaningless below that).
  uint64_t min_labeled = 300;
  /// Per-province deltas participate in the verdict only at or above this
  /// labeled count (small-province AUC noise must not gate a rollout).
  uint64_t min_env_labeled = 300;
  /// Challenger must beat the champion's global streaming AUC by at least
  /// this to PROMOTE.
  double promote_min_auc_gain = 0.005;
  /// Challenger worse than the champion by this much AUC — globally or in
  /// any qualifying province — is REJECTed.
  double reject_auc_drop = 0.02;
  /// Challenger raising expected calibration error by this much globally
  /// is REJECTed (miscalibrated scores poison downstream cutoffs even at
  /// equal AUC).
  double reject_calibration_rise = 0.05;
  /// A champion-vs-challenger score-distribution PSI above this blocks
  /// PROMOTE (held for investigation, not rejected: the challenger may
  /// legitimately re-rank, but not silently).
  double max_promote_psi = 0.25;
};

/// Champion-vs-challenger comparison of one window (env == -1: global).
struct GateDelta {
  int env = -1;
  uint64_t champion_labeled = 0;
  uint64_t challenger_labeled = 0;
  double champion_auc = 0.0;
  double challenger_auc = 0.0;
  double auc_delta = 0.0;  ///< challenger - champion; negative = worse
  double champion_ece = 0.0;
  double challenger_ece = 0.0;
  double calibration_delta = 0.0;  ///< challenger - champion; positive = worse
  double psi = 0.0;  ///< challenger score dist vs champion's, same traffic
  bool evaluated = false;  ///< enough labeled evidence on both sides
};

/// One gate evaluation: the verdict, why, and every window's deltas.
struct GateReport {
  GateVerdict verdict = GateVerdict::kHold;
  std::string reason;
  GateDelta global;
  /// Provinces monitored by both sides, ascending env id. Entries with
  /// evaluated == false carry distribution-only data (PSI) and do not
  /// participate in the verdict.
  std::vector<GateDelta> per_env;
};

/// Stateless evaluator over two monitors fed the same shadow traffic.
class ChallengerGate {
 public:
  explicit ChallengerGate(GateOptions options = {}) : options_(options) {}

  const GateOptions& options() const { return options_; }

  /// Compares the champion's and challenger's windows and renders the
  /// verdict. Pure read — neither monitor's alert machinery is advanced.
  GateReport Evaluate(const obs::ModelHealthMonitor& champion,
                      const obs::ModelHealthMonitor& challenger) const;

 private:
  GateOptions options_;
};

}  // namespace lightmirm::serve
