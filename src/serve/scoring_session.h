// ScoringSession: a reusable batch scorer over a CompiledForest. Fuses the
// three passes of the legacy inference path (leaf encoding into a sparse
// FeatureMatrix, per-row sparse dot, sigmoid) into one traversal per row —
// sigmoid(bias + Σ_t w[leaf_col(t, row)]) — with zero heap allocations in
// steady state: the caller owns the output buffer, per-row work needs no
// scratch, and the SIMD path's float feature plane lives in a thread-local
// buffer that is reused across batches. Batches shard across the process
// thread pool deterministically (per-row outputs are disjoint), and the
// fine-tune baseline's per-env weight overrides are honored exactly as
// TrainedPredictor::Predict does.
//
// Kernel selection is per batch through serve/simd_dispatch.h: when the
// active level is kAvx2 the batch is converted once into a row-major float
// plane and walked by the quantized AVX2 kernel (simd_kernel.h); otherwise
// the portable double-precision lockstep path runs. Both produce
// bit-identical scores (the LR accumulation stays in double either way).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/matrix.h"
#include "common/result.h"
#include "linear/logistic.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "serve/compiled_forest.h"
#include "serve/quantized_forest.h"
#include "serve/simd_dispatch.h"
#include "train/trainer.h"

namespace lightmirm::serve {

namespace internal {

/// A thread's plane scratch is released (not just left unused) when its
/// capacity exceeds kPlaneShrinkFactor × the current request, so one huge
/// batch cannot pin its high-water allocation on every pool thread for the
/// process lifetime. 4× keeps steady mixed traffic allocation-free: batch
/// sizes that wander within a 4× band reuse the buffer, only a genuine
/// collapse (e.g. 1M-row backfill followed by 64-row interactive requests)
/// triggers the free + reallocation.
inline constexpr size_t kPlaneShrinkFactor = 4;

/// Returns this thread's float plane scratch, resized to `cells`
/// (shrinking first per kPlaneShrinkFactor). Exposed for the regression
/// test; scoring code reaches it only through ScoringSession.
float* PlaneBuffer(size_t cells);

/// Capacity of this thread's plane scratch (test observability).
size_t PlaneBufferCapacity();

}  // namespace internal

/// Structured description of a batch/forest width mismatch: the first row
/// whose width cannot satisfy the forest's feature reads, plus the widths
/// involved. Row-major Matrix batches are uniform, so `row` is the first
/// row of the batch; the struct keeps the contract explicit for future
/// ragged batch sources.
struct BatchWidthError {
  size_t row = 0;
  size_t actual_width = 0;
  size_t expected_width = 0;
};

/// Busy-time split of one Score call, for stage attribution (the service
/// records these as `service.stage.convert.seconds` /
/// `service.stage.kernel.seconds`). Durations are summed across the
/// batch's internal shards; when the whole batch scores inline on one
/// thread (service-sized batches do: nested session parallelism runs
/// inline on a pool worker) convert + kernel equals the call's wall time
/// minus dispatch overhead. Collecting costs two clock reads per internal
/// shard; passing nullptr costs one branch.
struct ScoreStageTiming {
  uint64_t convert_ns = 0;  ///< float-plane conversion (0 on scalar path)
  uint64_t kernel_ns = 0;   ///< forest traversal + LR accumulation
};

/// Batch scorer binding a compiled forest to trained LR weights.
class ScoringSession {
 public:
  /// Validates that every weight table matches the forest's column count
  /// (params are [theta_0..theta_{cols-1}, bias]).
  static Result<ScoringSession> Create(
      std::shared_ptr<const CompiledForest> forest,
      const train::TrainedPredictor& predictor);

  const CompiledForest& forest() const { return *forest_; }
  const QuantizedForest& quantized_forest() const { return *quantized_; }
  size_t num_env_overrides() const { return env_tables_.size(); }

  /// Validates the batch width against the forest once per batch (hoisted
  /// out of every per-block scoring loop). Returns the offending shape on
  /// failure, std::nullopt when the batch is wide enough. Score() turns a
  /// failure into the InvalidArgument its callers see.
  std::optional<BatchWidthError> CheckBatchWidth(const Matrix& raw) const;

  /// Scores every row of `raw` into `out` (resized to raw.rows(); repeated
  /// calls with a same-sized batch reuse its capacity). Row i uses the
  /// override table for (*envs)[i] when present, the global table
  /// otherwise; envs = nullptr forces the global table. Errors
  /// (InvalidArgument) when `raw` is narrower than the booster's trained
  /// feature count or `envs` is mis-sized. Scores are bit-identical to the
  /// legacy encode-then-dot path at any thread count, and identical with
  /// or without `stages` (timing never touches the compute).
  Status Score(const Matrix& raw, const std::vector<int>* envs,
               std::vector<double>* out,
               ScoreStageTiming* stages = nullptr) const;

  /// Convenience form allocating the output vector.
  Result<std::vector<double>> Score(const Matrix& raw,
                                    const std::vector<int>* envs) const;

  /// Scores one batch with two sessions — the registry's champion and a
  /// shadow challenger — in a single pass: one batch-width check each, one
  /// shared float-plane conversion (at the wider of the two strides; both
  /// kernels read the plane through an explicit stride, so the challenger
  /// reuses the champion's converted cells), and one shard dispatch that
  /// walks both forests per shard while the rows are cache-hot. Outputs
  /// are bit-identical to scoring each session alone. Neither session's
  /// attached monitor is fed — shadow evaluation owns its monitors and
  /// usually has (delayed) labels the serving path does not, so the
  /// caller (serve/shadow.h) feeds them explicitly.
  static Status ScoreShadow(const ScoringSession& champion,
                            const ScoringSession& challenger,
                            const Matrix& raw, const std::vector<int>* envs,
                            std::vector<double>* champion_out,
                            std::vector<double>* challenger_out);

  /// Attaches a model-health monitor. Every Score call then feeds the
  /// monitor one ObserveBatch of (score, env) pairs — unlabeled; delayed
  /// labels reach the monitor out of band. Observing never touches the
  /// computed scores (predictions are bit-identical with monitoring on or
  /// off), which is why attachment is const; the holder is internally
  /// synchronized. Errors on a null monitor, and — so a registry handing
  /// sessions between owners can never silently drop a live monitor's
  /// feed — on a session that already has one attached: detach first.
  Status AttachMonitor(std::shared_ptr<obs::ModelHealthMonitor> monitor) const;
  /// Detaches and returns the attached monitor (null when none was).
  std::shared_ptr<obs::ModelHealthMonitor> DetachMonitor() const;
  std::shared_ptr<obs::ModelHealthMonitor> monitor() const;

 private:
  ScoringSession() = default;

  /// The one batch-prep + dispatch path behind Score and ScoreShadow:
  /// validates the batch against every session (width, envs size), sizes
  /// the outputs, and runs a single fused shard dispatch in which each
  /// shard converts its own rows into the shared float plane (SIMD levels
  /// only) and scores them for every session while they are cache-hot —
  /// one pool wakeup per batch, no separate conversion pass. The plane is
  /// laid out at the widest session's stride and indexed through it
  /// explicitly, so cells (and scores) are bit-identical however many
  /// sessions share the batch.
  static Status ScoreBatch(const ScoringSession* const* sessions,
                           size_t num_sessions, const Matrix& raw,
                           const std::vector<int>* envs,
                           std::vector<double>* const* outs,
                           ScoreStageTiming* stages = nullptr);

  /// Scores rows [begin, end) (one shard, <= the shard grain) against the
  /// per-env/global tables, reading the shared float plane when non-null.
  /// Factored out of Score so the shadow path can interleave two sessions
  /// inside one shard dispatch.
  void ScoreRange(const Matrix& raw, const float* plane, size_t stride,
                  size_t begin, size_t end, const std::vector<int>* envs,
                  double* out) const;

  /// Weight lookup for one row's environment (legacy override semantics).
  const linear::ParamVec& TableFor(int env) const {
    const auto it = env_tables_.find(env);
    return it != env_tables_.end() ? it->second : global_;
  }

  /// Serving metrics (global registry handles, resolved once at Create
  /// when telemetry is enabled; all null otherwise): batch latency
  /// histogram `serve.batch.seconds`, counters `serve.batches`,
  /// `serve.rows_scored` and `serve.env_override.{hits,misses}`.
  struct Telemetry {
    obs::Histogram* batch_seconds = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* rows_scored = nullptr;
    obs::Counter* override_hits = nullptr;
    obs::Counter* override_misses = nullptr;
  };

  /// Synchronized monitor holder, heap-allocated so the session stays
  /// movable (Create returns by value).
  struct MonitorSlot {
    std::mutex mu;
    std::shared_ptr<obs::ModelHealthMonitor> monitor;
  };

  std::shared_ptr<const CompiledForest> forest_;
  std::shared_ptr<const QuantizedForest> quantized_;
  linear::ParamVec global_;
  std::map<int, linear::ParamVec> env_tables_;
  Telemetry telemetry_;
  std::shared_ptr<MonitorSlot> monitor_slot_;
};

}  // namespace lightmirm::serve
