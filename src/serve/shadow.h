// ShadowScorer: champion–challenger serving over a ModelRegistry. Every
// batch is scored by the registry's active version and — when a challenger
// is staged — by the challenger in the same pass (one shared float-plane
// conversion, one shard dispatch; serve/scoring_session.h ScoreShadow).
// Only the champion's scores are returned to the caller: the challenger
// runs in the shadow, invisible to traffic, while each version's own
// ModelHealthMonitor accumulates its view of the identical rows. When
// enough evidence accumulates, EvaluateGate() compares the two monitors
// through the ChallengerGate and applies the verdict to the registry —
// PROMOTE hot-swaps the challenger in, REJECT drops it, HOLD keeps
// shadowing.
#pragma once

#include <memory>
#include <vector>

#include "common/matrix.h"
#include "common/result.h"
#include "serve/challenger_gate.h"
#include "serve/model_registry.h"

namespace lightmirm::serve {

/// Outcome of one shadow-scored batch. `champion`/`challenger` are the
/// version snapshots the batch was scored on (the challenger fields are
/// null/empty when none was staged) — a hot swap mid-stream can never mix
/// versions inside one batch.
struct ShadowBatchResult {
  std::shared_ptr<const ModelVersion> champion;
  std::shared_ptr<const ModelVersion> challenger;
  std::vector<double> champion_scores;
  std::vector<double> challenger_scores;
};

/// Scores batches through a registry with optional challenger shadowing;
/// see file comment. Not internally synchronized beyond what the registry
/// and monitors provide: concurrent Score calls are safe (each takes its
/// own version snapshots and owns its result), EvaluateGate is safe to
/// call concurrently with scoring.
class ShadowScorer {
 public:
  /// The registry must outlive the scorer.
  explicit ShadowScorer(ModelRegistry* registry, ChallengerGate gate = ChallengerGate());

  /// Scores one batch on the current champion (and challenger, when
  /// staged) and feeds every scored version's monitor — scores, envs, and
  /// `labels` when the caller has them (replay and backfill do; live
  /// traffic passes nullptr and labels arrive out of band). Errors when no
  /// version is active or scoring fails.
  Status Score(const Matrix& raw, const std::vector<int>* envs,
               const std::vector<int>* labels, ShadowBatchResult* out) const;

  /// Evaluates the challenger gate over the champion's and challenger's
  /// monitors, applies the verdict to the registry, and returns the
  /// report. Errors when no challenger is staged or either side lacks a
  /// monitor.
  Result<GateReport> EvaluateGate() const;

  const ChallengerGate& gate() const { return gate_; }
  ModelRegistry* registry() const { return registry_; }

 private:
  ModelRegistry* registry_;
  ChallengerGate gate_;
};

}  // namespace lightmirm::serve
