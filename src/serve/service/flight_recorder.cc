#include "serve/service/flight_recorder.h"

#include <algorithm>

#include "common/string_util.h"
#include "serve/service/exemplar.h"

namespace lightmirm::serve {
namespace {

constexpr uint64_t kBusy = static_cast<uint64_t>(-1);

size_t RoundUpPow2(size_t n) {
  size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* ServiceEventTypeName(ServiceEventType type) {
  switch (type) {
    case ServiceEventType::kSubmit:
      return "submit";
    case ServiceEventType::kShed:
      return "shed";
    case ServiceEventType::kFlush:
      return "flush";
    case ServiceEventType::kBatchScored:
      return "batch_scored";
    case ServiceEventType::kDeploy:
      return "deploy";
    case ServiceEventType::kHealthEval:
      return "health_eval";
    case ServiceEventType::kAlert:
      return "alert";
  }
  return "?";
}

FlightRecorder::FlightRecorder(size_t capacity)
    : mask_(RoundUpPow2(capacity) - 1),
      slots_(new Slot[RoundUpPow2(capacity)]) {}

void FlightRecorder::Record(ServiceEventType type, uint32_t shard,
                            uint64_t a, uint64_t b) {
  const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = slots_[(ticket - 1) & mask_];
  // Per-slot seqlock write: park the sequence so a concurrent reader
  // discards the slot, store the fields, publish the ticket. A lapped
  // writer (two threads `capacity` tickets apart on the same slot) can
  // interleave field stores; the last seq publisher wins and a reader
  // that catches the mix sees seq != its first read and drops the slot.
  slot.seq.store(kBusy, std::memory_order_release);
  slot.ns.store(MonotonicNanos(), std::memory_order_relaxed);
  slot.type.store(static_cast<uint32_t>(type), std::memory_order_relaxed);
  slot.shard.store(shard, std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.seq.store(ticket, std::memory_order_release);
}

std::vector<ServiceEvent> FlightRecorder::Snapshot() const {
  std::vector<ServiceEvent> events;
  events.reserve(mask_ + 1);
  for (size_t i = 0; i <= mask_; ++i) {
    const Slot& slot = slots_[i];
    const uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before == 0 || before == kBusy) continue;
    ServiceEvent event;
    event.seq = before;
    event.ns = slot.ns.load(std::memory_order_relaxed);
    event.type =
        static_cast<ServiceEventType>(slot.type.load(std::memory_order_relaxed));
    event.shard = slot.shard.load(std::memory_order_relaxed);
    event.a = slot.a.load(std::memory_order_relaxed);
    event.b = slot.b.load(std::memory_order_relaxed);
    if (slot.seq.load(std::memory_order_acquire) != before) continue;
    events.push_back(std::move(event));
  }
  std::sort(events.begin(), events.end(),
            [](const ServiceEvent& x, const ServiceEvent& y) {
              return x.seq < y.seq;
            });
  return events;
}

std::string FlightRecorder::Dump() const {
  const std::vector<ServiceEvent> events = Snapshot();
  std::string out = StrFormat(
      "flight recorder: %zu events (of %llu recorded, capacity %zu)\n",
      events.size(), static_cast<unsigned long long>(recorded()),
      capacity());
  const uint64_t origin = events.empty() ? 0 : events.front().ns;
  for (const ServiceEvent& e : events) {
    const double offset_ms =
        e.ns >= origin ? static_cast<double>(e.ns - origin) * 1e-6 : 0.0;
    std::string shard = e.shard == kFleetWide
                            ? std::string("fleet")
                            : StrFormat("%u", e.shard);
    out += StrFormat("  #%llu +%.3fms %-12s shard=%s a=%llu b=%llu\n",
                     static_cast<unsigned long long>(e.seq), offset_ms,
                     ServiceEventTypeName(e.type), shard.c_str(),
                     static_cast<unsigned long long>(e.a),
                     static_cast<unsigned long long>(e.b));
  }
  return out;
}

}  // namespace lightmirm::serve
