#include "serve/service/dispatcher.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "serve/service/telemetry.h"

namespace lightmirm::serve {
namespace {

uint64_t ToNanos(std::chrono::steady_clock::time_point tp) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          tp.time_since_epoch())
          .count());
}

// SplitMix64 finalizer: a fixed, platform-independent avalanche of the
// loan id. std::hash would be both implementation-defined (libstdc++
// hashes integers to themselves — sequential ids would all land on shard
// id % N, a pathological skew) and unstable across toolchains.
uint64_t MixLoanId(int64_t id) {
  uint64_t x = static_cast<uint64_t>(id) + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

struct BatchDispatcher::PendingRequest {
  std::vector<double> scores;
  std::atomic<uint64_t> remaining{0};
  std::mutex mu;      ///< guards status + stamps
  Status status;      ///< first shard error wins
  CompletionFn done;
  /// Lifecycle tracing (id != 0 iff the request is tracked). `enqueue_ns`
  /// is written under the shard locks before they release, so every later
  /// stage stamp — taken by code that re-acquires a shard lock — orders
  /// after it on the monotonic clock.
  uint64_t id = 0;
  uint64_t admit_ns = 0;
  uint64_t enqueue_ns = 0;
  std::vector<ShardStageStamps> stamps;  ///< one per involved shard
};

size_t BatchDispatcher::ShardOf(int64_t loan_id) const {
  return static_cast<size_t>(MixLoanId(loan_id) % options_.num_shards);
}

Result<std::unique_ptr<BatchDispatcher>> BatchDispatcher::Create(
    DispatcherOptions options, ShardScoreFn score_fn) {
  if (score_fn == nullptr) {
    return Status::InvalidArgument("dispatcher needs a shard score fn");
  }
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  if (options.feature_width == 0) {
    return Status::InvalidArgument("feature_width must be positive");
  }
  if (options.max_batch_rows == 0) {
    return Status::InvalidArgument("max_batch_rows must be positive");
  }
  if (options.max_pending_rows < options.max_batch_rows) {
    return Status::InvalidArgument(
        "max_pending_rows must be >= max_batch_rows");
  }
  if (options.max_delay.count() <= 0) {
    return Status::InvalidArgument("max_delay must be positive");
  }
  if (options.score_threads <= 0) options.score_threads = DefaultThreads();
  return std::unique_ptr<BatchDispatcher>(
      new BatchDispatcher(std::move(options), std::move(score_fn)));
}

BatchDispatcher::BatchDispatcher(DispatcherOptions options,
                                 ShardScoreFn score_fn)
    : options_(std::move(options)),
      score_fn_(std::move(score_fn)),
      pool_(options_.score_threads) {
  shards_.reserve(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->batch.width = options_.feature_width;
    shards_.push_back(std::move(shard));
  }
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

BatchDispatcher::~BatchDispatcher() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
    ++wake_seq_;
  }
  wake_cv_.notify_all();
  dispatcher_.join();
}

Status BatchDispatcher::Submit(ScoreRequest request, CompletionFn done) {
  // Resolve the tracking decision once per request: every later stamp in
  // this request's life keys off the assigned id, so a telemetry toggle
  // mid-flight can never half-trace a request.
  ServiceTelemetry* const tel = options_.telemetry;
  const bool tracked = tel != nullptr && obs::TelemetryEnabled();
  const uint64_t admit_ns = tracked ? MonotonicNanos() : 0;
  if (done == nullptr) {
    return Status::InvalidArgument("Submit needs a completion fn");
  }
  const size_t n = request.loan_ids.size();
  if (request.features.size() != n * options_.feature_width) {
    return Status::InvalidArgument(StrFormat(
        "request has %zu feature values for %zu rows of width %zu",
        request.features.size(), n, options_.feature_width));
  }
  if (!request.envs.empty() && request.envs.size() != n) {
    return Status::InvalidArgument(StrFormat(
        "request has %zu envs for %zu rows", request.envs.size(), n));
  }
  if (!request.labels.empty()) {
    if (request.labels.size() != n) {
      return Status::InvalidArgument(StrFormat(
          "request has %zu labels for %zu rows", request.labels.size(), n));
    }
    for (const int label : request.labels) {
      if (label < -1 || label > 1) {
        return Status::InvalidArgument("labels must be -1, 0 or 1");
      }
    }
  }
  if (n == 0) {
    done(ScoreResponse{});
    return Status::OK();
  }

  // Partition rows by shard up front so the locked section is a straight
  // append.
  std::vector<uint32_t> shard_of(n);
  std::vector<size_t> add_count(options_.num_shards, 0);
  for (size_t i = 0; i < n; ++i) {
    shard_of[i] = static_cast<uint32_t>(ShardOf(request.loan_ids[i]));
    ++add_count[shard_of[i]];
  }
  std::vector<size_t> involved;
  for (size_t s = 0; s < options_.num_shards; ++s) {
    if (add_count[s] != 0) involved.push_back(s);
  }

  // Account the rows before they become visible to the dispatcher, so the
  // pending total can never be decremented below the rows actually in the
  // accumulators (Flush waits on it reaching zero).
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    pending_rows_total_ += n;
  }

  // Lock every involved shard in ascending index order (deadlock-free
  // against concurrent submitters) and check capacity across all of them
  // before appending anything: a shed request leaves no partial rows.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(involved.size());
  for (const size_t s : involved) locks.emplace_back(shards_[s]->mu);
  for (const size_t s : involved) {
    // Capture the row count while the shard lock is still held: after
    // locks.clear() it races with concurrent appends and batch swaps.
    const size_t held = shards_[s]->batch.rows;
    if (held + add_count[s] > options_.max_pending_rows) {
      locks.clear();
      {
        std::lock_guard<std::mutex> lock(wake_mu_);
        pending_rows_total_ -= n;
        ++wake_seq_;
        if (tracked) tel->OnPendingRows(pending_rows_total_);
      }
      // Wake the dispatcher: a Flush may be waiting on exactly this
      // decrement bringing the pending total to zero.
      wake_cv_.notify_one();
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.shed_requests;
      }
      if (tracked) tel->OnShed(s, add_count[s], held);
      return Status::ResourceExhausted(StrFormat(
          "shard %zu holds %zu pending rows (+%zu requested) over "
          "max_pending_rows=%zu; request shed",
          s, held, add_count[s], options_.max_pending_rows));
    }
  }

  auto pending = std::make_shared<PendingRequest>();
  pending->scores.resize(n);
  pending->remaining.store(n, std::memory_order_relaxed);
  pending->done = std::move(done);
  if (tracked) {
    pending->id = tel->NextRequestId();
    pending->admit_ns = admit_ns;
    pending->stamps.reserve(involved.size());
  }

  const auto now = std::chrono::steady_clock::now();
  if (tracked) pending->enqueue_ns = ToNanos(now);
  for (size_t i = 0; i < n; ++i) {
    Shard& shard = *shards_[shard_of[i]];
    if (shard.batch.rows == 0) shard.oldest = now;
    const double* row = request.features.data() + i * options_.feature_width;
    shard.batch.features.insert(shard.batch.features.end(), row,
                                row + options_.feature_width);
    shard.batch.envs.push_back(request.envs.empty() ? -1 : request.envs[i]);
    shard.batch.labels.push_back(request.labels.empty() ? -1
                                                        : request.labels[i]);
    shard.rows.push_back(RowRef{pending, static_cast<uint32_t>(i)});
    ++shard.batch.rows;
  }
  if (tracked) {
    // Queue-depth gauges while the shard locks are still held, so the
    // reading matches a state the accumulator actually passed through.
    for (const size_t s : involved) {
      tel->OnShardQueue(s, shards_[s]->batch.rows);
    }
  }
  locks.clear();

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests;
    stats_.rows += n;
  }
  // Wake the dispatcher so it flushes (size trigger) or re-arms its
  // deadline timer for the rows that just arrived. The seq bump is what
  // makes this race-free: a dispatcher that scanned the shards before the
  // append sees the moved seq and rescans instead of sleeping, even if
  // this notify fires in the window between its scan and its wait.
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    ++wake_seq_;
    if (tracked) tel->OnPendingRows(pending_rows_total_);
  }
  wake_cv_.notify_one();
  if (tracked) {
    tel->OnAdmission(pending->id, n,
                     static_cast<double>(MonotonicNanos() - admit_ns) * 1e-9);
  }
  return Status::OK();
}

Result<ScoreResponse> BatchDispatcher::Score(ScoreRequest request) {
  struct SyncState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Result<ScoreResponse> result = Status::OK();
  };
  auto state = std::make_shared<SyncState>();
  LIGHTMIRM_RETURN_NOT_OK(
      Submit(std::move(request), [state](Result<ScoreResponse> result) {
        {
          std::lock_guard<std::mutex> lock(state->mu);
          state->result = std::move(result);
          state->done = true;
        }
        state->cv.notify_one();
      }));
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done; });
  return std::move(state->result);
}

void BatchDispatcher::Flush() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  flush_requested_ = true;
  ++wake_seq_;
  wake_cv_.notify_one();
  idle_cv_.wait(lock, [this] {
    return !flush_requested_ && pending_rows_total_ == 0 && !cycle_running_;
  });
}

DispatcherStats BatchDispatcher::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void BatchDispatcher::DispatchLoop() {
  using Clock = std::chrono::steady_clock;
  struct FlushRecord {
    size_t shard;
    FlushReason reason;
    size_t rows;
    double queue_wait_s;
  };
  for (;;) {
    ServiceTelemetry* const tel = options_.telemetry;
    const bool tracked = tel != nullptr && obs::TelemetryEnabled();
    bool flush_all;
    uint64_t seen_seq;
    {
      std::lock_guard<std::mutex> lock(wake_mu_);
      flush_all = flush_requested_ || stop_;
      seen_seq = wake_seq_;
    }

    // Scan the shards: swap out every ready batch, remember the earliest
    // deadline among the rest.
    const auto now = Clock::now();
    auto next_deadline = Clock::time_point::max();
    std::vector<size_t> ready;
    std::vector<ShardBatch> batches;
    std::vector<std::vector<RowRef>> rows;
    std::vector<FlushRecord> flushes;
    uint64_t size_flushes = 0, deadline_flushes = 0, explicit_flushes = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
      Shard& shard = *shards_[s];
      std::lock_guard<std::mutex> shard_lock(shard.mu);
      if (shard.batch.rows == 0) continue;
      const auto deadline = shard.oldest + options_.max_delay;
      const bool size_ready = shard.batch.rows >= options_.max_batch_rows;
      const bool deadline_ready = deadline <= now;
      if (!flush_all && !size_ready && !deadline_ready) {
        next_deadline = std::min(next_deadline, deadline);
        continue;
      }
      FlushReason reason;
      if (size_ready) {
        ++size_flushes;
        reason = FlushReason::kSize;
      } else if (deadline_ready) {
        ++deadline_flushes;
        reason = FlushReason::kDeadline;
      } else {
        ++explicit_flushes;
        reason = FlushReason::kExplicit;
      }
      ready.push_back(s);
      batches.push_back(std::move(shard.batch));
      rows.push_back(std::move(shard.rows));
      shard.batch = ShardBatch{};
      shard.batch.width = options_.feature_width;
      shard.rows.clear();
      if (tracked) {
        // Stamp the flush on the swapped-out batch while the shard lock
        // is held: appends stamped their enqueue before releasing this
        // lock, so flush_ns >= every row's enqueue_ns (no negative queue
        // waits however the race falls).
        ShardBatch& moved = batches.back();
        moved.collect_stages = true;
        moved.stages.shard = static_cast<uint32_t>(s);
        moved.stages.batch_rows = static_cast<uint32_t>(moved.rows);
        moved.stages.flush_ns = MonotonicNanos();
        flushes.push_back(FlushRecord{
            s, reason, moved.rows,
            static_cast<double>(moved.stages.flush_ns -
                                ToNanos(shard.oldest)) *
                1e-9});
        tel->OnShardQueue(s, 0);
      }
    }

    if (!ready.empty()) {
      if (tracked) {
        for (const FlushRecord& f : flushes) {
          tel->OnFlush(f.shard, f.reason, f.rows, f.queue_wait_s);
        }
      }
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.size_flushes += size_flushes;
        stats_.deadline_flushes += deadline_flushes;
        stats_.explicit_flushes += explicit_flushes;
      }
      uint64_t scored = 0;
      for (const ShardBatch& batch : batches) scored += batch.rows;
      {
        std::lock_guard<std::mutex> lock(wake_mu_);
        cycle_running_ = true;
      }
      ScoreCycle(std::move(ready), std::move(batches), std::move(rows));
      {
        std::lock_guard<std::mutex> lock(wake_mu_);
        cycle_running_ = false;
        pending_rows_total_ -= scored;
        if (tracked) tel->OnPendingRows(pending_rows_total_);
      }
      idle_cv_.notify_all();
      continue;  // rescan immediately: more shards may have filled up
    }

    std::unique_lock<std::mutex> lock(wake_mu_);
    if (pending_rows_total_ == 0) {
      if (flush_requested_) {
        flush_requested_ = false;
        idle_cv_.notify_all();
      }
      if (stop_) return;
    }
    // Nothing ready: sleep to the earliest pending deadline (or until new
    // work / a shed / a flush / stop wakes us). The predicate re-checks
    // wake_seq_ under wake_mu_ before blocking, so an event that landed
    // after the shard scan — rows appended by an in-flight Submit, a shed
    // zeroing the pending total a Flush waits on — forces an immediate
    // rescan instead of an indefinite wait whose notify already fired.
    const auto woken = [&] { return wake_seq_ != seen_seq; };
    if (next_deadline == Clock::time_point::max()) {
      wake_cv_.wait(lock, woken);
    } else {
      wake_cv_.wait_until(lock, next_deadline, woken);
    }
  }
}

void BatchDispatcher::ScoreCycle(std::vector<size_t> ready,
                                 std::vector<ShardBatch> batches,
                                 std::vector<std::vector<RowRef>> rows) {
  ServiceTelemetry* const tel = options_.telemetry;
  // One pool task per ready shard; a shard's rows never score twice
  // concurrently because cycles are serialized on the dispatcher thread.
  pool_.Apply(ready.size(), [&](size_t i) {
    const size_t shard = ready[i];
    ShardBatch& batch = batches[i];
    if (batch.collect_stages) batch.stages.score_start_ns = MonotonicNanos();
    std::vector<double> scores(batch.rows, 0.0);
    Status status = score_fn_(shard, batch, &scores);
    if (status.ok() && scores.size() != batch.rows) {
      status = Status::Internal(
          StrFormat("shard %zu scored %zu rows for a %zu-row batch", shard,
                    scores.size(), batch.rows));
    }
    if (batch.collect_stages) {
      batch.stages.score_end_ns = MonotonicNanos();
      if (tel != nullptr) tel->OnBatchScored(batch.stages);
    }
    // Scatter scores back and retire rows per contiguous same-request run
    // (a request's rows land consecutively in a shard, so this is one
    // atomic decrement per request per shard).
    const std::vector<RowRef>& refs = rows[i];
    size_t j = 0;
    while (j < refs.size()) {
      PendingRequest* request = refs[j].request.get();
      size_t run = 0;
      while (j + run < refs.size() &&
             refs[j + run].request.get() == request) {
        if (status.ok()) {
          request->scores[refs[j + run].row] = scores[j + run];
        }
        ++run;
      }
      if (!status.ok()) {
        std::lock_guard<std::mutex> lock(request->mu);
        if (request->status.ok()) request->status = status;
      }
      if (batch.collect_stages && request->id != 0) {
        // One stamps entry per (request, shard): a request's rows on one
        // shard are appended atomically, so exactly one run sees them.
        ShardStageStamps stamp = batch.stages;
        stamp.enqueue_ns = request->enqueue_ns;
        std::lock_guard<std::mutex> lock(request->mu);
        request->stamps.push_back(stamp);
      }
      if (request->remaining.fetch_sub(run, std::memory_order_acq_rel) ==
          run) {
        if (tel != nullptr && request->id != 0) {
          RequestExemplar exemplar;
          exemplar.request_id = request->id;
          exemplar.rows = static_cast<uint32_t>(request->scores.size());
          exemplar.admit_ns = request->admit_ns;
          exemplar.complete_ns = MonotonicNanos();
          {
            std::lock_guard<std::mutex> lock(request->mu);
            exemplar.shards = std::move(request->stamps);
          }
          tel->OnRequestComplete(std::move(exemplar));
        }
        Status final_status;
        {
          std::lock_guard<std::mutex> lock(request->mu);
          final_status = request->status;
        }
        if (final_status.ok()) {
          ScoreResponse response;
          response.scores = std::move(request->scores);
          request->done(std::move(response));
        } else {
          request->done(std::move(final_status));
        }
      }
      j += run;
    }
  });
}

}  // namespace lightmirm::serve
