// BatchDispatcher: the batching front door of the sharded scoring service
// (serve/service/sharded_service.h). Callers Submit() small requests —
// each a handful of loans with features — and the dispatcher partitions
// their rows across N worker shards by loan-id hash, accumulates each
// shard's rows into a batch, and flushes a shard when its batch reaches
// `max_batch_rows` (size trigger) or its oldest pending row has waited
// `max_delay` (deadline trigger). Flushed shard batches score concurrently
// on a private ThreadPool, one task per shard; the scoring callback is
// supplied by the owner (the service snapshots the shard's registry,
// scores on that version, and feeds the shard monitor), so the dispatcher
// itself knows nothing about models.
//
// This is the SeamlessDB proxy/compute-pool shape collapsed into one
// process: Submit is the proxy (partition + enqueue, never scores), the
// pool tasks are the compute nodes (each owns its shard's batch for the
// duration of a flush cycle).
//
// Concurrency contract:
//  - Submit is thread-safe and wait-free against scoring (it only takes
//    the involved shards' accumulator locks, in ascending order, for the
//    append). Capacity is checked for every involved shard before any row
//    is appended, so a shed request leaves no partial rows behind
//    (ResourceExhausted above `max_pending_rows` per shard).
//  - One dispatcher thread runs flush cycles; within a cycle ready shards
//    score in parallel, across cycles everything is serialized. A shard's
//    rows therefore reach its scorer in exact Submit order — per-shard
//    monitor feeds are deterministic however the flush timing falls.
//  - Completion callbacks run on pool threads once every shard holding
//    rows of the request has scored; per-request scores land in submit
//    row order regardless of which shards scored them. Callbacks may
//    Submit (no dispatcher locks are held) but must not block on Flush.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "serve/service/exemplar.h"

namespace lightmirm::serve {

class ServiceTelemetry;

/// One scoring request: `features` is row-major `loan_ids.size()` ×
/// `feature_width` (the dispatcher's configured width). `envs` is empty or
/// row-aligned (province id per row; rows without one score on the global
/// table). `labels` is empty or row-aligned with entries in {-1, 0, 1}
/// (-1 = not known yet) — the replay/backfill path feeds delayed labels
/// through it so shard monitors see them.
struct ScoreRequest {
  std::vector<int64_t> loan_ids;
  std::vector<double> features;
  std::vector<int> envs;
  std::vector<int> labels;
};

/// Scores aligned with the request's rows.
struct ScoreResponse {
  std::vector<double> scores;
};

/// One shard's accumulated batch, handed to the scoring callback. `envs`
/// and `labels` are always row-aligned; rows whose request omitted them
/// carry -1 (unmonitored environment / unknown label — both are exactly
/// the semantics the scorer and monitor give -1).
struct ShardBatch {
  size_t rows = 0;
  size_t width = 0;
  std::vector<double> features;  ///< row-major rows × width
  std::vector<int> envs;
  std::vector<int> labels;
  /// Lifecycle tracing (set by the dispatcher when telemetry is attached
  /// and enabled): the scorer fills `stages`' convert/kernel/monitor
  /// durations when `collect_stages` is true; the dispatcher stamps the
  /// shard/flush/score fields around it. Never affects the scores.
  bool collect_stages = false;
  ShardStageStamps stages;
};

/// Scores one shard's batch into `scores` (must be resized to batch.rows).
/// Called on a pool thread, never concurrently for the same shard. The
/// batch is owned by the flush cycle and dies when the callback returns,
/// so the callback may consume it — moving `features` out (e.g. into a
/// Matrix) avoids copying the whole block on the hot path. `rows`, `envs`
/// and `labels` must stay intact through the call.
using ShardScoreFn = std::function<Status(
    size_t shard, ShardBatch& batch, std::vector<double>* scores)>;

struct DispatcherOptions {
  size_t num_shards = 4;
  /// Row width every request must match (the serving schema is fixed per
  /// deployed model generation).
  size_t feature_width = 0;
  /// Size trigger: a shard flushes as soon as it holds this many rows.
  size_t max_batch_rows = 256;
  /// Shed trigger: Submit returns ResourceExhausted when a shard would
  /// exceed this many pending rows (must be >= max_batch_rows).
  size_t max_pending_rows = 4096;
  /// Deadline trigger: a non-empty shard flushes when its oldest row has
  /// waited this long, so trickle traffic is never stranded.
  std::chrono::microseconds max_delay{2000};
  /// Scoring pool width; <= 0 uses DefaultThreads(). Shard batches score
  /// one pool task per shard (nested session parallelism runs inline on a
  /// pool worker), so this bounds cross-shard scoring concurrency.
  int score_threads = 0;
  /// Lifecycle telemetry sink (serve/service/telemetry.h), not owned; must
  /// outlive the dispatcher. Null = no tracing. With a sink attached the
  /// dispatcher assigns request ids, stamps every stage, feeds the
  /// per-shard metric families and offers completed requests to the
  /// slowest-K exemplar store — all gated on obs::TelemetryEnabled(), and
  /// none of it touches scores, batching or completion order.
  ServiceTelemetry* telemetry = nullptr;
};

/// Counters, monotonically increasing over the dispatcher's lifetime.
struct DispatcherStats {
  uint64_t requests = 0;        ///< accepted requests
  uint64_t rows = 0;            ///< accepted rows
  uint64_t shed_requests = 0;   ///< rejected with ResourceExhausted
  uint64_t size_flushes = 0;    ///< shard flushes triggered by batch size
  uint64_t deadline_flushes = 0;///< shard flushes triggered by max_delay
  uint64_t explicit_flushes = 0;///< shard flushes triggered by Flush()
};

class BatchDispatcher {
 public:
  using CompletionFn = std::function<void(Result<ScoreResponse>)>;

  /// Validates options and starts the dispatcher thread + scoring pool.
  static Result<std::unique_ptr<BatchDispatcher>> Create(
      DispatcherOptions options, ShardScoreFn score_fn);

  /// Stops the dispatcher thread. Pending rows are flushed and completed
  /// first, so no callback is ever dropped.
  ~BatchDispatcher();
  LIGHTMIRM_DISALLOW_COPY(BatchDispatcher);

  /// Enqueues a request; `done` fires exactly once, on a pool thread,
  /// after every row is scored (or with the first shard error). Returns
  /// without calling `done` on invalid shapes (mis-sized envs/labels/
  /// features) and on shed (ResourceExhausted) — the caller still owns
  /// the retry. Empty requests complete inline with an empty response.
  Status Submit(ScoreRequest request, CompletionFn done);

  /// Submit + block for the response.
  Result<ScoreResponse> Score(ScoreRequest request);

  /// Flushes every pending row and blocks until all are completed.
  void Flush();

  /// Stable loan-id -> shard mapping (SplitMix64 finalizer mod shards):
  /// independent of platform, process, and std::hash, so a loan's shard —
  /// and therefore which shard monitor its scores feed — is reproducible
  /// across runs and machines.
  size_t ShardOf(int64_t loan_id) const;

  DispatcherStats stats() const;
  size_t num_shards() const { return options_.num_shards; }
  const DispatcherOptions& options() const { return options_; }

 private:
  struct PendingRequest;
  struct RowRef {
    std::shared_ptr<PendingRequest> request;
    uint32_t row = 0;  ///< row index inside the request
  };

  /// One shard's accumulator. `mu` guards everything; Submit appends,
  /// the dispatcher thread swaps the contents out for a flush cycle.
  struct Shard {
    std::mutex mu;
    ShardBatch batch;
    std::vector<RowRef> rows;
    std::chrono::steady_clock::time_point oldest;  ///< first row's arrival
  };

  BatchDispatcher(DispatcherOptions options, ShardScoreFn score_fn);

  void DispatchLoop();
  /// Runs one flush cycle over `ready` shard indices (batches already
  /// swapped out by the caller).
  void ScoreCycle(std::vector<size_t> ready,
                  std::vector<ShardBatch> batches,
                  std::vector<std::vector<RowRef>> rows);

  DispatcherOptions options_;
  ShardScoreFn score_fn_;
  std::vector<std::unique_ptr<Shard>> shards_;
  ThreadPool pool_;

  std::mutex wake_mu_;  ///< guards the flags below + wake/idle signaling
  std::condition_variable wake_cv_;
  std::condition_variable idle_cv_;
  bool stop_ = false;
  bool flush_requested_ = false;
  bool cycle_running_ = false;
  uint64_t pending_rows_total_ = 0;  ///< rows accepted but not yet scored
  /// Bumped (under wake_mu_) by every event the dispatcher must react to:
  /// rows appended, a shed decrementing the pending total, Flush, stop.
  /// The dispatch loop records it before scanning the shards and refuses
  /// to sleep while it has moved — so a notify that fires between the
  /// scan and the wait is never lost (the classic lost-wakeup window).
  uint64_t wake_seq_ = 0;

  mutable std::mutex stats_mu_;
  DispatcherStats stats_;

  std::thread dispatcher_;  ///< last member: joins before the rest dies
};

}  // namespace lightmirm::serve
