#include "serve/service/telemetry.h"

#include "common/string_util.h"

namespace lightmirm::serve {
namespace {

constexpr double kNanos = 1e-9;

// Batch-size buckets: powers of two 1..8192 (a shard batch is bounded by
// max_pending_rows, typically 4096).
const std::vector<double>& BatchRowBounds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    for (double v = 1; v <= 8192; v *= 2) b.push_back(v);
    return b;
  }();
  return bounds;
}

}  // namespace

ServiceTelemetry::ServiceTelemetry(ServiceTelemetryOptions options)
    : registry_(options.registry != nullptr ? options.registry
                                            : obs::MetricsRegistry::Global()),
      exemplars_(options.slowest_k),
      recorder_(options.flight_recorder_capacity) {
  obs::MetricsRegistry& r = *registry_;
  requests_ = r.GetCounter("service.requests");
  rows_ = r.GetCounter("service.rows");
  deploys_ = r.GetCounter("service.deploys");
  health_evaluations_ = r.GetCounter("service.health_evaluations");
  alerts_ = r.GetCounter("service.alerts");
  pending_rows_ = r.GetGauge("service.pending_rows");
  admission_seconds_ = r.GetHistogram("service.stage.admission.seconds");
  request_seconds_ = r.GetHistogram("service.request.seconds");
  stage_queue_wait_ = r.GetHistogram("service.stage.queue_wait.seconds");
  stage_batch_form_ = r.GetHistogram("service.stage.batch_form.seconds");
  stage_score_ = r.GetHistogram("service.stage.score.seconds");
  stage_convert_ = r.GetHistogram("service.stage.convert.seconds");
  stage_kernel_ = r.GetHistogram("service.stage.kernel.seconds");
  stage_monitor_feed_ =
      r.GetHistogram("service.stage.monitor_feed.seconds");
  const size_t shards = options.num_shards == 0 ? 1 : options.num_shards;
  per_shard_.resize(shards);
  const std::vector<double>& batch_bounds = BatchRowBounds();
  for (size_t s = 0; s < shards; ++s) {
    const obs::MetricLabels shard{{"shard", StrFormat("%zu", s)}};
    ShardHandles& h = per_shard_[s];
    h.queue_rows = r.GetGauge("service.shard.queue_rows", shard);
    h.shed_requests = r.GetCounter("service.shed.requests", shard);
    static const char* kReasons[3] = {"size", "deadline", "explicit"};
    for (size_t reason = 0; reason < 3; ++reason) {
      h.flush_reason[reason] = r.GetCounter(
          "service.flushes",
          {{"shard", StrFormat("%zu", s)}, {"reason", kReasons[reason]}});
    }
    h.batch_rows =
        r.GetHistogram("service.batch.rows", shard, &batch_bounds);
    h.queue_wait_seconds =
        r.GetHistogram("service.stage.queue_wait.seconds", shard);
    h.batch_form_seconds =
        r.GetHistogram("service.stage.batch_form.seconds", shard);
    h.score_seconds = r.GetHistogram("service.stage.score.seconds", shard);
    h.convert_seconds =
        r.GetHistogram("service.stage.convert.seconds", shard);
    h.kernel_seconds = r.GetHistogram("service.stage.kernel.seconds", shard);
    h.monitor_feed_seconds =
        r.GetHistogram("service.stage.monitor_feed.seconds", shard);
  }
}

void ServiceTelemetry::OnAdmission(uint64_t request_id, size_t rows,
                                   double admission_s) {
  requests_->Increment();
  rows_->Increment(rows);
  admission_seconds_->Record(admission_s);
  recorder_.Record(ServiceEventType::kSubmit, kFleetWide, rows, request_id);
}

void ServiceTelemetry::OnShed(size_t shard, size_t rows_requested,
                              size_t rows_held) {
  if (shard >= per_shard_.size()) return;
  per_shard_[shard].shed_requests->Increment();
  recorder_.Record(ServiceEventType::kShed, static_cast<uint32_t>(shard),
                   rows_requested, rows_held);
}

void ServiceTelemetry::OnShardQueue(size_t shard, size_t rows) {
  if (shard >= per_shard_.size()) return;
  per_shard_[shard].queue_rows->Set(static_cast<double>(rows));
}

void ServiceTelemetry::OnPendingRows(size_t rows) {
  pending_rows_->Set(static_cast<double>(rows));
}

void ServiceTelemetry::OnFlush(size_t shard, FlushReason reason,
                               size_t batch_rows, double queue_wait_s) {
  if (shard >= per_shard_.size()) return;
  ShardHandles& h = per_shard_[shard];
  h.flush_reason[static_cast<uint32_t>(reason) % 3]->Increment();
  h.batch_rows->Record(static_cast<double>(batch_rows));
  h.queue_wait_seconds->Record(queue_wait_s);
  stage_queue_wait_->Record(queue_wait_s);
  recorder_.Record(ServiceEventType::kFlush, static_cast<uint32_t>(shard),
                   batch_rows, static_cast<uint64_t>(reason));
}

void ServiceTelemetry::OnBatchScored(const ShardStageStamps& stamps) {
  if (stamps.shard >= per_shard_.size()) return;
  ShardHandles& h = per_shard_[stamps.shard];
  const auto delta_s = [](uint64_t end, uint64_t begin) {
    return end >= begin ? static_cast<double>(end - begin) * kNanos : 0.0;
  };
  const double batch_form_s =
      delta_s(stamps.score_start_ns, stamps.flush_ns);
  const double score_s = delta_s(stamps.score_end_ns, stamps.score_start_ns);
  const double convert_s = static_cast<double>(stamps.convert_ns) * kNanos;
  const double kernel_s = static_cast<double>(stamps.kernel_ns) * kNanos;
  const double monitor_s = static_cast<double>(stamps.monitor_ns) * kNanos;
  h.batch_form_seconds->Record(batch_form_s);
  h.score_seconds->Record(score_s);
  h.convert_seconds->Record(convert_s);
  h.kernel_seconds->Record(kernel_s);
  h.monitor_feed_seconds->Record(monitor_s);
  stage_batch_form_->Record(batch_form_s);
  stage_score_->Record(score_s);
  stage_convert_->Record(convert_s);
  stage_kernel_->Record(kernel_s);
  stage_monitor_feed_->Record(monitor_s);
  recorder_.Record(ServiceEventType::kBatchScored, stamps.shard,
                   stamps.batch_rows,
                   stamps.score_end_ns - stamps.score_start_ns);
}

void ServiceTelemetry::OnRequestComplete(RequestExemplar exemplar) {
  request_seconds_->Record(static_cast<double>(exemplar.TotalNanos()) *
                           kNanos);
  exemplars_.Offer(std::move(exemplar));
}

void ServiceTelemetry::OnDeploy(uint64_t version_seq) {
  deploys_->Increment();
  recorder_.Record(ServiceEventType::kDeploy, kFleetWide, version_seq, 0);
}

void ServiceTelemetry::OnHealthEvaluation(uint32_t overall_state,
                                          uint64_t tick) {
  health_evaluations_->Increment();
  recorder_.Record(ServiceEventType::kHealthEval, kFleetWide, overall_state,
                   tick);
}

void ServiceTelemetry::OnAlert(uint32_t overall_state, uint64_t tick) {
  alerts_->Increment();
  recorder_.Record(ServiceEventType::kAlert, kFleetWide, overall_state,
                   tick);
}

}  // namespace lightmirm::serve
