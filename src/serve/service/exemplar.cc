#include "serve/service/exemplar.h"

#include <algorithm>
#include <chrono>

#include "common/string_util.h"

namespace lightmirm::serve {
namespace {

constexpr double kNanos = 1e-9;

double MaxDeltaSeconds(const std::vector<ShardStageStamps>& shards,
                       uint64_t ShardStageStamps::*end,
                       uint64_t ShardStageStamps::*begin) {
  uint64_t worst = 0;
  for (const ShardStageStamps& s : shards) {
    if (s.*end > s.*begin) worst = std::max(worst, s.*end - s.*begin);
  }
  return static_cast<double>(worst) * kNanos;
}

double MaxDurationSeconds(const std::vector<ShardStageStamps>& shards,
                          uint64_t ShardStageStamps::*field) {
  uint64_t worst = 0;
  for (const ShardStageStamps& s : shards) worst = std::max(worst, s.*field);
  return static_cast<double>(worst) * kNanos;
}

}  // namespace

uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

StageBreakdown RequestExemplar::Breakdown() const {
  StageBreakdown b;
  b.queue_wait_s = MaxDeltaSeconds(shards, &ShardStageStamps::flush_ns,
                                   &ShardStageStamps::enqueue_ns);
  b.batch_form_s = MaxDeltaSeconds(shards, &ShardStageStamps::score_start_ns,
                                   &ShardStageStamps::flush_ns);
  b.scoring_s = MaxDeltaSeconds(shards, &ShardStageStamps::score_end_ns,
                                &ShardStageStamps::score_start_ns);
  b.convert_s = MaxDurationSeconds(shards, &ShardStageStamps::convert_ns);
  b.kernel_s = MaxDurationSeconds(shards, &ShardStageStamps::kernel_ns);
  b.monitor_feed_s =
      MaxDurationSeconds(shards, &ShardStageStamps::monitor_ns);
  b.total_s = static_cast<double>(TotalNanos()) * kNanos;
  return b;
}

ExemplarStore::ExemplarStore(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void ExemplarStore::Offer(RequestExemplar exemplar) {
  const uint64_t total = exemplar.TotalNanos();
  // Fast reject: a full store's floor only rises, so a stale read can at
  // worst let a borderline request take the lock and lose there.
  if (total <= floor_ns_.load(std::memory_order_relaxed)) return;
  const auto slower = [](const RequestExemplar& a, const RequestExemplar& b) {
    return a.TotalNanos() > b.TotalNanos();  // min-heap on total
  };
  std::lock_guard<std::mutex> lock(mu_);
  if (heap_.size() < capacity_) {
    heap_.push_back(std::move(exemplar));
    std::push_heap(heap_.begin(), heap_.end(), slower);
  } else {
    if (total <= heap_.front().TotalNanos()) return;
    std::pop_heap(heap_.begin(), heap_.end(), slower);
    heap_.back() = std::move(exemplar);
    std::push_heap(heap_.begin(), heap_.end(), slower);
  }
  if (heap_.size() == capacity_) {
    floor_ns_.store(heap_.front().TotalNanos(), std::memory_order_relaxed);
  }
}

std::vector<RequestExemplar> ExemplarStore::Slowest() const {
  std::vector<RequestExemplar> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = heap_;
  }
  std::sort(out.begin(), out.end(),
            [](const RequestExemplar& a, const RequestExemplar& b) {
              if (a.TotalNanos() != b.TotalNanos()) {
                return a.TotalNanos() > b.TotalNanos();
              }
              return a.request_id < b.request_id;
            });
  return out;
}

std::string ExportExemplarsJson(
    const std::vector<RequestExemplar>& exemplars) {
  std::string out = "[";
  for (size_t i = 0; i < exemplars.size(); ++i) {
    const RequestExemplar& e = exemplars[i];
    const StageBreakdown b = e.Breakdown();
    if (i > 0) out += ",";
    out += StrFormat(
        "\n    {\"request_id\": %llu, \"rows\": %u, \"total_s\": %.9f, "
        "\"queue_wait_s\": %.9f, \"batch_form_s\": %.9f, "
        "\"scoring_s\": %.9f, \"convert_s\": %.9f, \"kernel_s\": %.9f, "
        "\"monitor_feed_s\": %.9f, \"shards\": [",
        static_cast<unsigned long long>(e.request_id), e.rows, b.total_s,
        b.queue_wait_s, b.batch_form_s, b.scoring_s, b.convert_s, b.kernel_s,
        b.monitor_feed_s);
    for (size_t s = 0; s < e.shards.size(); ++s) {
      const ShardStageStamps& st = e.shards[s];
      if (s > 0) out += ", ";
      out += StrFormat(
          "{\"shard\": %u, \"batch_rows\": %u, \"enqueue_ns\": %llu, "
          "\"flush_ns\": %llu, \"score_start_ns\": %llu, "
          "\"score_end_ns\": %llu, \"convert_ns\": %llu, "
          "\"kernel_ns\": %llu, \"monitor_ns\": %llu}",
          st.shard, st.batch_rows,
          static_cast<unsigned long long>(st.enqueue_ns),
          static_cast<unsigned long long>(st.flush_ns),
          static_cast<unsigned long long>(st.score_start_ns),
          static_cast<unsigned long long>(st.score_end_ns),
          static_cast<unsigned long long>(st.convert_ns),
          static_cast<unsigned long long>(st.kernel_ns),
          static_cast<unsigned long long>(st.monitor_ns));
    }
    out += "]}";
  }
  out += exemplars.empty() ? "]" : "\n  ]";
  return out;
}

std::vector<obs::TraceEvent> ExemplarTraceEvents(
    const std::vector<RequestExemplar>& exemplars) {
  std::vector<obs::TraceEvent> events;
  if (exemplars.empty()) return events;
  uint64_t origin = exemplars.front().admit_ns;
  for (const RequestExemplar& e : exemplars) {
    origin = std::min(origin, e.admit_ns);
  }
  const auto us = [origin](uint64_t ns) {
    return ns >= origin ? static_cast<double>(ns - origin) * 1e-3 : 0.0;
  };
  const auto span = [&](const std::string& name, int tid, uint64_t begin,
                        uint64_t end) {
    if (end <= begin) return;
    obs::TraceEvent event;
    event.name = name;
    event.tid = tid;
    event.ts_us = us(begin);
    event.dur_us = static_cast<double>(end - begin) * 1e-3;
    events.push_back(std::move(event));
  };
  for (const RequestExemplar& e : exemplars) {
    const std::string id = StrFormat("service.request.%llu",
                                     static_cast<unsigned long long>(
                                         e.request_id));
    // tid 0 is the request track; each shard's stages draw on tid shard+1
    // so one request's parallel shard lives stack under it visually.
    span(id, 0, e.admit_ns, e.complete_ns);
    for (const ShardStageStamps& st : e.shards) {
      const int tid = static_cast<int>(st.shard) + 1;
      span(id + ".queue_wait", tid, st.enqueue_ns, st.flush_ns);
      span(id + ".batch_form", tid, st.flush_ns, st.score_start_ns);
      span(id + ".score", tid, st.score_start_ns, st.score_end_ns);
    }
  }
  return events;
}

}  // namespace lightmirm::serve
