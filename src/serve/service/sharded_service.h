// ShardedScoringService: the serving front door. Loan ids hash across N
// worker shards; each shard owns its own ModelRegistry slot (champion +
// optional staged versions, hot-swappable per shard), scores on the
// registry's active version via its ScoringSession, and feeds the scored
// batch to that version's own ModelHealthMonitor — so every shard carries
// an independent sliding-window view of its slice of the traffic. A
// BatchDispatcher (serve/service/dispatcher.h) fronts the shards:
// requests accumulate into per-shard batches and flush on size or
// deadline, scoring concurrently across shards on a private pool.
//
// Global health is a snapshot merge, not a shared window: EvaluateHealth
// copies every shard monitor's O(bins) window aggregates, bin-wise-sums
// them, and runs the exact single-monitor verdict code over the merged
// aggregates (obs::MergedHealthEvaluator). With windows sized to the
// evaluation horizon the merged timeline is what one monitor observing
// the union stream would produce — bench_service proves this against the
// single-shard bench_monitor_replay timeline byte-for-byte.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "core/gbdt_lr_model.h"
#include "obs/monitor.h"
#include "serve/model_registry.h"
#include "serve/service/dispatcher.h"
#include "serve/service/telemetry.h"

namespace lightmirm::serve {

struct ServiceOptions {
  /// Dispatcher shape. `feature_width` may be left 0: Create fills it
  /// with the model's trained feature count. `telemetry` is overwritten:
  /// the service always wires its own ServiceTelemetry in.
  DispatcherOptions dispatcher;
  /// Per-shard monitor configuration. Size `window` to the horizon you
  /// evaluate over: merged-fleet verdicts equal a single monitor's
  /// exactly as long as no shard window has evicted.
  obs::MonitorOptions monitor;
  /// Version id the initial model registers under, in every shard.
  std::string initial_version_id = "v1";
  /// Registry the service's metric families (service.*, monitor.fleet.*)
  /// live in; null = the process-global registry.
  obs::MetricsRegistry* telemetry_registry = nullptr;
  /// Slowest-K exemplar store size (tail attribution).
  size_t slowest_k = 16;
  /// Flight-recorder ring size (recent service events; rounded to pow2).
  size_t flight_recorder_capacity = 1024;
  /// Fired (under the health lock, so at most once per transition) when
  /// the merged fleet health enters ALERT: the snapshot that tripped it
  /// plus the flight-recorder dump of the events leading up to it.
  std::function<void(const obs::HealthSnapshot&, const std::string&)>
      on_alert_dump;
};

class ShardedScoringService {
 public:
  using CompletionFn = BatchDispatcher::CompletionFn;

  /// Builds per-shard registries each holding `model` as the active
  /// version (shards share the model's immutable scoring session; each
  /// shard's version carries its own monitor over its own windows).
  /// Errors when the model has no scoring session or no score reference
  /// (a service without health monitoring is a different deployment —
  /// refuse rather than silently serve blind).
  static Result<std::unique_ptr<ShardedScoringService>> Create(
      core::GbdtLrModel model, ServiceOptions options = {});

  /// Asynchronous scoring: rows partition across shards, batch, and score;
  /// `done` fires once with the row-aligned scores (or the first error).
  /// ResourceExhausted = shed, caller owns the retry.
  Status Submit(ScoreRequest request, CompletionFn done);

  /// Synchronous convenience (blocks for the whole request).
  Result<ScoreResponse> Score(ScoreRequest request);

  /// Drains every pending row (blocks until scored + completed).
  void Flush();

  /// One merged evaluation tick across all shard monitors; see file
  /// comment. Evaluates the *active* versions' monitors. When telemetry
  /// is enabled the tick also publishes the fleet verdict as
  /// `monitor.fleet.*` gauges plus per-shard `monitor.shard.*{shard=...}`
  /// window gauges into `registry` (null = the service's telemetry
  /// registry), and a transition of the merged overall state into ALERT
  /// snapshots the flight recorder: the dump is kept (last_alert_dump)
  /// and handed to ServiceOptions::on_alert_dump with the snapshot.
  Result<obs::HealthSnapshot> EvaluateHealth(
      obs::MetricsRegistry* registry = nullptr);

  /// Registers `model` under `id` in every shard registry and activates
  /// it (the rolling deploy, applied shard-by-shard in index order;
  /// in-flight batches finish on their snapshots). The previous champion
  /// stays registered for rollback.
  Status Deploy(const std::string& id, core::GbdtLrModel model);

  /// Evicts retired, unreferenced versions from every shard registry;
  /// returns the total dropped.
  size_t EvictRetired();

  size_t num_shards() const { return shards_.size(); }
  /// Per-shard registry (tests and deployment tooling; shard < num_shards).
  ModelRegistry* shard_registry(size_t shard) {
    return &shards_[shard]->registry;
  }
  size_t ShardOf(int64_t loan_id) const {
    return dispatcher_->ShardOf(loan_id);
  }
  DispatcherStats dispatcher_stats() const { return dispatcher_->stats(); }

  /// The service's instrumentation hub (request ids, metric handles,
  /// exemplar store, flight recorder). Never null.
  ServiceTelemetry* telemetry() { return telemetry_.get(); }
  /// Slowest tracked requests with full stage breakdowns, slowest first.
  std::vector<RequestExemplar> SlowestRequests() const {
    return telemetry_->SlowestRequests();
  }
  FlightRecorder* flight_recorder() { return telemetry_->flight_recorder(); }
  /// Flight-recorder dump captured at the most recent OK/WARN -> ALERT
  /// transition of the merged health ("" when none has happened).
  std::string last_alert_dump() const;

 private:
  struct ShardState {
    ModelRegistry registry;
  };

  ShardedScoringService() = default;

  /// The dispatcher's per-shard scoring callback: snapshot the shard's
  /// active version, score the batch on its session, feed the version's
  /// monitor. Runs on a pool thread, never concurrently per shard.
  /// Consumes batch.features (moved into the scoring matrix — the batch
  /// dies with the flush cycle, so copying it would be pure overhead).
  Status ScoreShardBatch(size_t shard, ShardBatch& batch,
                         std::vector<double>* scores);

  ServiceOptions options_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  /// Fleet-level evaluator: owns the merged hysteresis machines, which
  /// persist across ticks (and across Deploys — an elevated state carries
  /// over a model swap until the merged signals clear it).
  mutable std::mutex health_mu_;
  std::optional<obs::MergedHealthEvaluator> merged_;
  obs::AlertState last_overall_ = obs::AlertState::kOk;  ///< health_mu_
  std::string last_alert_dump_;                          ///< health_mu_
  uint64_t deploy_seq_ = 0;  ///< deploys applied (health_mu_)
  /// Outlives the dispatcher (whose hooks point into it).
  std::unique_ptr<ServiceTelemetry> telemetry_;
  std::unique_ptr<BatchDispatcher> dispatcher_;  ///< stops before shards die
};

}  // namespace lightmirm::serve
