#include "serve/service/sharded_service.h"

#include <utility>

#include "common/matrix.h"
#include "common/string_util.h"
#include "obs/trace.h"

namespace lightmirm::serve {

Result<std::unique_ptr<ShardedScoringService>> ShardedScoringService::Create(
    core::GbdtLrModel model, ServiceOptions options) {
  if (model.scoring_session() == nullptr) {
    return Status::InvalidArgument(
        "service needs a model with a scoring session (the raw-feature "
        "ablation cannot serve)");
  }
  if (model.score_reference().empty()) {
    return Status::InvalidArgument(
        "service needs a model with a score reference: per-shard monitors "
        "and the merged health evaluator are built from it");
  }
  if (options.initial_version_id.empty()) {
    return Status::InvalidArgument("initial_version_id must be non-empty");
  }
  if (options.dispatcher.feature_width == 0) {
    options.dispatcher.feature_width =
        model.scoring_session()->forest().min_feature_count();
  }
  LIGHTMIRM_ASSIGN_OR_RETURN(
      obs::MergedHealthEvaluator evaluator,
      obs::MergedHealthEvaluator::Create(model.score_reference(),
                                         options.monitor));

  auto service =
      std::unique_ptr<ShardedScoringService>(new ShardedScoringService());
  ServiceTelemetryOptions telemetry_options;
  telemetry_options.num_shards = options.dispatcher.num_shards;
  telemetry_options.slowest_k = options.slowest_k;
  telemetry_options.flight_recorder_capacity =
      options.flight_recorder_capacity;
  telemetry_options.registry = options.telemetry_registry;
  service->telemetry_ =
      std::make_unique<ServiceTelemetry>(telemetry_options);
  options.dispatcher.telemetry = service->telemetry_.get();
  service->options_ = options;
  service->merged_.emplace(std::move(evaluator));
  service->shards_.reserve(options.dispatcher.num_shards);
  // Shard 0 takes the model; the rest register siblings — the same
  // immutable model and serving artifacts, each with its OWN monitor, so
  // shard windows observe disjoint slices of the traffic.
  LIGHTMIRM_ASSIGN_OR_RETURN(
      std::shared_ptr<const ModelVersion> base,
      ModelVersion::Create(options.initial_version_id, std::move(model),
                           options.monitor));
  for (size_t s = 0; s < options.dispatcher.num_shards; ++s) {
    auto shard = std::make_unique<ShardState>();
    std::shared_ptr<const ModelVersion> version = base;
    if (s != 0) {
      LIGHTMIRM_ASSIGN_OR_RETURN(
          version, ModelVersion::CreateSibling(base, options.monitor));
    }
    LIGHTMIRM_RETURN_NOT_OK(shard->registry.Add(std::move(version)));
    service->shards_.push_back(std::move(shard));
  }
  ShardedScoringService* raw = service.get();
  LIGHTMIRM_ASSIGN_OR_RETURN(
      service->dispatcher_,
      BatchDispatcher::Create(
          options.dispatcher,
          [raw](size_t shard, ShardBatch& batch,
                std::vector<double>* scores) {
            return raw->ScoreShardBatch(shard, batch, scores);
          }));
  return service;
}

Status ShardedScoringService::ScoreShardBatch(size_t shard,
                                              ShardBatch& batch,
                                              std::vector<double>* scores) {
  // Trace span per shard batch: `span.service.shard_score.seconds` in the
  // service's registry, and a Chrome-trace event when recording is on.
  // Inert (null registry) when lifecycle tracing is off for this batch.
  obs::TraceSpan span(
      batch.collect_stages ? telemetry_->registry() : nullptr,
      "service.shard_score");
  // One registry snapshot per batch: a concurrent Deploy never splits a
  // batch across versions, and the version (with its monitor) stays alive
  // for the whole batch even if it is retired and evicted mid-flight.
  const std::shared_ptr<const ModelVersion> version =
      shards_[shard]->registry.active();
  if (version == nullptr) {
    return Status::FailedPrecondition(
        StrFormat("shard %zu has no active model version", shard));
  }
  // Move, don't copy: the dispatcher owns the batch for this cycle only,
  // and an O(rows × width) copy here would sit on every flush's hot path.
  Matrix rows(batch.rows, batch.width, std::move(batch.features));
  ScoreStageTiming timing;
  LIGHTMIRM_RETURN_NOT_OK(version->session()->Score(
      rows, &batch.envs, scores,
      batch.collect_stages ? &timing : nullptr));
  if (batch.collect_stages) {
    batch.stages.convert_ns = timing.convert_ns;
    batch.stages.kernel_ns = timing.kernel_ns;
  }
  // Feed the shard's own monitor explicitly (never AttachMonitor: shards
  // share the model's session, and the labels here may carry the delayed
  // ground truth the serving path itself does not have).
  if (version->monitor() != nullptr) {
    const uint64_t feed_start = batch.collect_stages ? MonotonicNanos() : 0;
    LIGHTMIRM_RETURN_NOT_OK(version->monitor()->ObserveBatch(
        *scores, &batch.envs, &batch.labels));
    if (batch.collect_stages) {
      batch.stages.monitor_ns = MonotonicNanos() - feed_start;
    }
  }
  return Status::OK();
}

Status ShardedScoringService::Submit(ScoreRequest request,
                                     CompletionFn done) {
  return dispatcher_->Submit(std::move(request), std::move(done));
}

Result<ScoreResponse> ShardedScoringService::Score(ScoreRequest request) {
  return dispatcher_->Score(std::move(request));
}

void ShardedScoringService::Flush() { dispatcher_->Flush(); }

Result<obs::HealthSnapshot> ShardedScoringService::EvaluateHealth(
    obs::MetricsRegistry* registry) {
  // Snapshot every shard's active monitor first (each shard pins its
  // version so a concurrent swap cannot free a monitor mid-merge), then
  // run one merged tick.
  std::vector<std::shared_ptr<const ModelVersion>> versions;
  versions.reserve(shards_.size());
  std::vector<const obs::ModelHealthMonitor*> monitors;
  monitors.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::shared_ptr<const ModelVersion> version =
        shards_[s]->registry.active();
    if (version == nullptr || version->monitor() == nullptr) {
      return Status::FailedPrecondition(
          StrFormat("shard %zu has no monitored active version", s));
    }
    monitors.push_back(version->monitor().get());
    versions.push_back(std::move(version));
  }
  const bool publish = obs::TelemetryEnabled();
  if (registry == nullptr && publish) registry = telemetry_->registry();
  std::lock_guard<std::mutex> lock(health_mu_);
  LIGHTMIRM_ASSIGN_OR_RETURN(obs::HealthSnapshot snapshot,
                             merged_->Evaluate(monitors));
  if (publish) {
    telemetry_->OnHealthEvaluation(static_cast<uint32_t>(snapshot.overall),
                                   snapshot.evaluation);
    // Fleet verdict + per-shard window gauges (labeled by shard), so the
    // merge result and each shard's slice both reach the exporters.
    merged_->PublishTo(registry, snapshot);
    for (size_t s = 0; s < monitors.size(); ++s) {
      const obs::WindowAggregates window = monitors[s]->SnapshotWindows().global;
      const obs::MetricLabels shard{{"shard", StrFormat("%zu", s)}};
      registry->GetGauge("monitor.shard.window_rows", shard)
          ->Set(static_cast<double>(window.rows));
      registry->GetGauge("monitor.shard.labeled_rows", shard)
          ->Set(static_cast<double>(window.labeled));
      registry->GetGauge("monitor.shard.seen", shard)
          ->Set(static_cast<double>(window.seen));
      registry->GetGauge("monitor.shard.default_rate", shard)
          ->Set(window.labeled == 0
                    ? 0.0
                    : static_cast<double>(window.positives) /
                          static_cast<double>(window.labeled));
    }
  }
  // Flight-recorder dump on the OK/WARN -> ALERT transition: record the
  // alert event first so the dump's last line is the alert itself, then
  // freeze the ring's contents next to the snapshot.
  const obs::AlertState previous = last_overall_;
  last_overall_ = snapshot.overall;
  if (snapshot.overall == obs::AlertState::kAlert &&
      previous != obs::AlertState::kAlert) {
    telemetry_->OnAlert(static_cast<uint32_t>(snapshot.overall),
                        snapshot.evaluation);
    last_alert_dump_ = telemetry_->flight_recorder()->Dump();
    if (options_.on_alert_dump) {
      options_.on_alert_dump(snapshot, last_alert_dump_);
    }
  }
  return snapshot;
}

std::string ShardedScoringService::last_alert_dump() const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return last_alert_dump_;
}

Status ShardedScoringService::Deploy(const std::string& id,
                                     core::GbdtLrModel model) {
  // Register everywhere first (so a duplicate id or invalid model fails
  // before any shard swaps), then activate shard-by-shard. In-flight
  // batches finish on their snapshots; EvictRetired() reclaims the old
  // champion once the last batch drains.
  LIGHTMIRM_ASSIGN_OR_RETURN(
      std::shared_ptr<const ModelVersion> base,
      ModelVersion::Create(id, std::move(model), options_.monitor));
  std::vector<std::shared_ptr<const ModelVersion>> versions;
  versions.reserve(shards_.size());
  versions.push_back(std::move(base));
  for (size_t s = 1; s < shards_.size(); ++s) {
    LIGHTMIRM_ASSIGN_OR_RETURN(
        std::shared_ptr<const ModelVersion> sibling,
        ModelVersion::CreateSibling(versions[0], options_.monitor));
    versions.push_back(std::move(sibling));
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    LIGHTMIRM_RETURN_NOT_OK(shards_[s]->registry.Add(versions[s]));
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    LIGHTMIRM_RETURN_NOT_OK(shards_[s]->registry.Activate(id));
  }
  if (obs::TelemetryEnabled()) {
    std::lock_guard<std::mutex> lock(health_mu_);
    telemetry_->OnDeploy(++deploy_seq_);
  }
  return Status::OK();
}

size_t ShardedScoringService::EvictRetired() {
  size_t evicted = 0;
  for (const auto& shard : shards_) {
    evicted += shard->registry.EvictUnreferenced();
  }
  return evicted;
}

}  // namespace lightmirm::serve
