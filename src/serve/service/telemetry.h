// ServiceTelemetry: the sharded scoring service's instrumentation hub.
// Owns the slowest-K exemplar store and the flight recorder, assigns
// request ids, and caches every metric handle the service path touches —
// per-stage latency histograms (`service.stage.*.seconds`), per-shard
// labeled cells (queue-depth gauges, shed counters, flush counters split
// by reason, batch-size histograms), and the request-level aggregate — so
// recording on the hot path is pure atomic updates, never a registry name
// resolution. The dispatcher and service call the On* hooks; every hook
// is cheap enough for the Submit path and all of them no-op the histogram
// work when obs::TelemetryEnabled() is off (the <2% bench_service gate
// measures exactly that switch).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "obs/metrics.h"
#include "serve/service/exemplar.h"
#include "serve/service/flight_recorder.h"

namespace lightmirm::serve {

struct ServiceTelemetryOptions {
  size_t num_shards = 1;
  /// Exemplar store size (slowest-K requests kept with stage breakdowns).
  size_t slowest_k = 16;
  /// Flight recorder ring size (rounded up to a power of two).
  size_t flight_recorder_capacity = 1024;
  /// Registry the metric families live in; null = the process-global one.
  obs::MetricsRegistry* registry = nullptr;
};

/// Why a shard batch flushed.
enum class FlushReason : uint32_t { kSize = 0, kDeadline = 1, kExplicit = 2 };

class ServiceTelemetry {
 public:
  explicit ServiceTelemetry(ServiceTelemetryOptions options);
  LIGHTMIRM_DISALLOW_COPY(ServiceTelemetry);

  /// Service-assigned id for the next tracked request (1-based).
  uint64_t NextRequestId() {
    return next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Request accepted: admission latency (Submit entry -> rows enqueued).
  void OnAdmission(uint64_t request_id, size_t rows, double admission_s);
  /// Request shed on `shard` (no rows were enqueued anywhere).
  void OnShed(size_t shard, size_t rows_requested, size_t rows_held);
  /// Shard accumulator depth after an append or a flush swap.
  void OnShardQueue(size_t shard, size_t rows);
  /// Total rows accepted but not yet scored, fleet-wide.
  void OnPendingRows(size_t rows);
  /// Shard batch swapped out for scoring.
  void OnFlush(size_t shard, FlushReason reason, size_t batch_rows,
               double queue_wait_s);
  /// Shard batch scored; `stamps` carries the flush/score stamps and the
  /// convert/kernel/monitor durations the scorer filled in.
  void OnBatchScored(const ShardStageStamps& stamps);
  /// Request fully scored; records the request histogram and offers the
  /// exemplar to the slowest-K store.
  void OnRequestComplete(RequestExemplar exemplar);
  /// Model version activated across the fleet.
  void OnDeploy(uint64_t version_seq);
  /// One merged health evaluation tick.
  void OnHealthEvaluation(uint32_t overall_state, uint64_t tick);
  /// Merged health transitioned into ALERT (flight recorder dump time).
  void OnAlert(uint32_t overall_state, uint64_t tick);

  obs::MetricsRegistry* registry() const { return registry_; }
  FlightRecorder* flight_recorder() { return &recorder_; }
  const FlightRecorder* flight_recorder() const { return &recorder_; }
  /// Slowest tracked requests, slowest first.
  std::vector<RequestExemplar> SlowestRequests() const {
    return exemplars_.Slowest();
  }
  size_t num_shards() const { return per_shard_.size(); }

 private:
  /// Handles addressed per shard (label {"shard", "<index>"}).
  struct ShardHandles {
    obs::Gauge* queue_rows = nullptr;
    obs::Counter* shed_requests = nullptr;
    obs::Counter* flush_reason[3] = {nullptr, nullptr, nullptr};
    obs::Histogram* batch_rows = nullptr;
    obs::Histogram* queue_wait_seconds = nullptr;
    obs::Histogram* batch_form_seconds = nullptr;
    obs::Histogram* score_seconds = nullptr;
    obs::Histogram* convert_seconds = nullptr;
    obs::Histogram* kernel_seconds = nullptr;
    obs::Histogram* monitor_feed_seconds = nullptr;
  };

  obs::MetricsRegistry* registry_;
  std::atomic<uint64_t> next_request_id_{0};
  ExemplarStore exemplars_;
  FlightRecorder recorder_;

  obs::Counter* requests_ = nullptr;
  obs::Counter* rows_ = nullptr;
  obs::Counter* deploys_ = nullptr;
  obs::Counter* health_evaluations_ = nullptr;
  obs::Counter* alerts_ = nullptr;
  obs::Gauge* pending_rows_ = nullptr;
  obs::Histogram* admission_seconds_ = nullptr;
  obs::Histogram* request_seconds_ = nullptr;
  /// Stage histograms aggregated across shards (the per-shard labeled
  /// cells cover attribution; these are what the p99 gate reads).
  obs::Histogram* stage_queue_wait_ = nullptr;
  obs::Histogram* stage_batch_form_ = nullptr;
  obs::Histogram* stage_score_ = nullptr;
  obs::Histogram* stage_convert_ = nullptr;
  obs::Histogram* stage_kernel_ = nullptr;
  obs::Histogram* stage_monitor_feed_ = nullptr;
  std::vector<ShardHandles> per_shard_;
};

}  // namespace lightmirm::serve
