// FlightRecorder: a fixed-size lock-free ring of recent service events
// (submits, sheds, flushes, scored batches, deploys, health evaluations,
// alerts). Producers on any thread Record() with two atomic ops plus
// relaxed field stores — no mutex, no allocation — so the recorder can sit
// on the Submit hot path. When the merged fleet health transitions into
// ALERT the service dumps the ring next to the HealthSnapshot, so a page
// arrives with its last-N-events context ("what was the service doing
// right before this tripped") instead of a bare threshold value.
//
// Each slot is a per-slot seqlock: the writer parks the slot's sequence at
// kBusy, stores the fields, then publishes the ticket with a release
// store; readers re-check the sequence after copying the fields and drop
// the slot on any movement. Every slot field is an atomic, so concurrent
// Record/Snapshot is race-free under TSan; a reader may miss slots that
// are being overwritten mid-snapshot (they are, by construction, either
// the oldest events in the ring or newer than the snapshot), never observe
// a torn event.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"

namespace lightmirm::serve {

enum class ServiceEventType : uint32_t {
  kSubmit = 0,       ///< request accepted: a = rows, b = request id
  kShed = 1,         ///< request shed: a = rows requested, b = rows held
  kFlush = 2,        ///< shard batch flushed: a = rows, b = reason (0 size,
                     ///  1 deadline, 2 explicit)
  kBatchScored = 3,  ///< shard batch scored: a = rows, b = duration ns
  kDeploy = 4,       ///< version activated on the shard
  kHealthEval = 5,   ///< merged evaluation: a = overall state, b = tick
  kAlert = 6,        ///< merged health entered ALERT: a = overall state,
                     ///  b = tick
};

/// "submit", "shed", ...
const char* ServiceEventTypeName(ServiceEventType type);

/// One recorded event. `seq` is the global record order (1-based, gapless
/// per recorder); `ns` is the MonotonicNanos stamp; `shard` is the shard
/// the event concerns (uint32_t(-1) = fleet-wide).
struct ServiceEvent {
  uint64_t seq = 0;
  uint64_t ns = 0;
  ServiceEventType type = ServiceEventType::kSubmit;
  uint32_t shard = 0;
  uint64_t a = 0;
  uint64_t b = 0;
};

inline constexpr uint32_t kFleetWide = static_cast<uint32_t>(-1);

class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two (min 8): the ring keeps
  /// the most recent `capacity()` events.
  explicit FlightRecorder(size_t capacity);
  LIGHTMIRM_DISALLOW_COPY(FlightRecorder);

  void Record(ServiceEventType type, uint32_t shard, uint64_t a, uint64_t b);

  /// Consistent events currently in the ring, oldest first (ascending
  /// seq). Slots caught mid-overwrite are dropped, never torn.
  std::vector<ServiceEvent> Snapshot() const;

  /// Human-readable dump of Snapshot(): one line per event with the time
  /// offset from the ring's oldest event. The page attachment.
  std::string Dump() const;

  size_t capacity() const { return mask_ + 1; }
  /// Events ever recorded (>= capacity means the ring has wrapped).
  uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  ///< 0 = empty, kBusy = mid-write
    std::atomic<uint64_t> ns{0};
    std::atomic<uint32_t> type{0};
    std::atomic<uint32_t> shard{0};
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
  };

  size_t mask_ = 0;               ///< capacity - 1 (capacity is pow2)
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};  ///< tickets issued
};

}  // namespace lightmirm::serve
