// Tail-latency attribution for the sharded scoring service: per-request
// stage stamps and a bounded slowest-K exemplar store. Every tracked
// request carries monotonic nanosecond stamps for each lifecycle stage
// (admission, shard enqueue, flush dispatch, scoring with its plane-
// conversion / kernel / monitor-feed split, completion); the store keeps
// the K slowest completed requests with their full breakdowns, so "p99
// regressed" comes with the exact requests that paid it and the stage that
// cost them. Offers are lock-free in the common case: a full store keeps
// an atomic floor (its current fastest member), and anything faster is
// rejected with one relaxed load — the mutex is only taken by requests
// slow enough to actually belong in the tail.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace lightmirm::serve {

/// Nanoseconds on the std::chrono::steady_clock epoch — the one clock
/// every service stage stamp uses, so stamp differences are meaningful
/// across threads and never jump with wall-clock adjustments.
uint64_t MonotonicNanos();

/// One shard's slice of a request's life. `enqueue_ns`..`score_end_ns`
/// are points on the MonotonicNanos clock; `convert_ns`, `kernel_ns` and
/// `monitor_ns` are durations (busy time inside the scoring call — summed
/// across the session's internal shards, so they can exceed the
/// score_start..score_end wall time only when the session fans a batch
/// out across pool threads, which service-sized batches do not).
struct ShardStageStamps {
  uint32_t shard = 0;
  uint32_t batch_rows = 0;    ///< rows in the flushed shard batch
  uint64_t enqueue_ns = 0;    ///< request's rows appended to the shard
  uint64_t flush_ns = 0;      ///< dispatcher swapped the batch out
  uint64_t score_start_ns = 0;///< pool task picked the batch up
  uint64_t score_end_ns = 0;  ///< scores + monitor feed done
  uint64_t convert_ns = 0;    ///< float-plane conversion (duration)
  uint64_t kernel_ns = 0;     ///< forest + LR kernel (duration)
  uint64_t monitor_ns = 0;    ///< monitor ObserveBatch (duration)
};

/// Per-stage seconds of one request, reduced across its shards. Stages
/// before completion take the *straggler* view — max over shards — since
/// the request completes only when its slowest shard does.
struct StageBreakdown {
  double queue_wait_s = 0;   ///< enqueue -> flush (max over shards)
  double batch_form_s = 0;   ///< flush -> score start (max over shards)
  double scoring_s = 0;      ///< score start -> end (max over shards)
  double convert_s = 0;      ///< plane conversion (max over shards)
  double kernel_s = 0;       ///< kernel (max over shards)
  double monitor_feed_s = 0; ///< monitor feed (max over shards)
  double total_s = 0;        ///< admission -> completion
};

/// One completed request's full lifecycle record.
struct RequestExemplar {
  uint64_t request_id = 0;
  uint32_t rows = 0;
  uint64_t admit_ns = 0;     ///< Submit entry
  uint64_t complete_ns = 0;  ///< completion callback about to fire
  std::vector<ShardStageStamps> shards;

  uint64_t TotalNanos() const {
    return complete_ns >= admit_ns ? complete_ns - admit_ns : 0;
  }
  StageBreakdown Breakdown() const;
};

/// Bounded slowest-K store; see file comment. Thread-safe.
class ExemplarStore {
 public:
  /// `capacity` must be positive (the store keeps at most that many).
  explicit ExemplarStore(size_t capacity);

  /// Offers a completed request; kept iff it is among the K slowest seen.
  void Offer(RequestExemplar exemplar);

  /// The current exemplars, slowest first.
  std::vector<RequestExemplar> Slowest() const;

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  /// TotalNanos of the fastest kept exemplar once full; offers below it
  /// reject without the lock. 0 while the store still has room.
  std::atomic<uint64_t> floor_ns_{0};
  mutable std::mutex mu_;
  std::vector<RequestExemplar> heap_;  ///< min-heap on TotalNanos
};

/// Renders exemplars (slowest first) as a JSON array: request id, rows,
/// total and per-stage seconds, and the raw per-shard stamps.
std::string ExportExemplarsJson(const std::vector<RequestExemplar>& exemplars);

/// Reconstructs exemplars as Chrome-trace spans (obs/export.h renders
/// them): per request one `service.request` span plus, per shard touched,
/// `service.queue_wait` / `service.batch_form` / `service.score` child
/// spans, each on a tid derived from the shard so one request's life reads
/// as parallel tracks. Timestamps are relative to the earliest admission.
std::vector<obs::TraceEvent> ExemplarTraceEvents(
    const std::vector<RequestExemplar>& exemplars);

}  // namespace lightmirm::serve
