#include "serve/compiled_forest.h"

#include <algorithm>
#include <limits>

#include "common/string_util.h"

namespace lightmirm::serve {

Result<CompiledForest> CompiledForest::Build(const gbdt::Booster& booster) {
  const std::vector<gbdt::Tree>& trees = booster.trees();
  size_t total_nodes = 0;
  for (const gbdt::Tree& tree : trees) total_nodes += tree.num_nodes();
  if (total_nodes > static_cast<size_t>(std::numeric_limits<int32_t>::max())) {
    return Status::InvalidArgument("forest too large to compile");
  }

  CompiledForest forest;
  forest.roots_.reserve(trees.size());
  forest.depths_.reserve(trees.size());
  forest.feature_.reserve(total_nodes);
  forest.threshold_.reserve(total_nodes);
  forest.left_.reserve(total_nodes);
  forest.right_.reserve(total_nodes);
  forest.leaf_col_.reserve(total_nodes);

  int max_feature = -1;
  size_t column_offset = 0;
  for (size_t t = 0; t < trees.size(); ++t) {
    const std::vector<gbdt::TreeNode>& nodes = trees[t].nodes();
    const int num_leaves = trees[t].num_leaves();
    if (nodes.empty()) {
      return Status::InvalidArgument(
          StrFormat("tree %zu has no nodes", t));
    }
    const int32_t base = static_cast<int32_t>(forest.feature_.size());
    forest.roots_.push_back(base);
    for (size_t i = 0; i < nodes.size(); ++i) {
      const gbdt::TreeNode& n = nodes[i];
      if (n.is_leaf) {
        if (n.leaf_ordinal < 0 || n.leaf_ordinal >= num_leaves) {
          return Status::InvalidArgument(
              StrFormat("tree %zu node %zu: leaf ordinal %d out of range "
                        "(%d leaves)",
                        t, i, n.leaf_ordinal, num_leaves));
        }
        // Leaves self-loop so the depth-padded descent can keep stepping
        // past them without a leaf test; feature 0 is a benign load (any
        // tree with a split guarantees min_feature_count() >= 1, and a
        // split-free tree has depth 0, so the row is never dereferenced).
        forest.feature_.push_back(0);
        forest.threshold_.push_back(0.0);
        forest.left_.push_back(base + static_cast<int32_t>(i));
        forest.right_.push_back(base + static_cast<int32_t>(i));
        forest.leaf_col_.push_back(static_cast<uint32_t>(column_offset) +
                                   static_cast<uint32_t>(n.leaf_ordinal));
      } else {
        if (n.feature < 0) {
          return Status::InvalidArgument(
              StrFormat("tree %zu node %zu: negative split feature", t, i));
        }
        if (n.left < 0 || n.right < 0 ||
            static_cast<size_t>(n.left) >= nodes.size() ||
            static_cast<size_t>(n.right) >= nodes.size()) {
          return Status::InvalidArgument(
              StrFormat("tree %zu node %zu: child out of range", t, i));
        }
        max_feature = std::max(max_feature, n.feature);
        forest.feature_.push_back(n.feature);
        forest.threshold_.push_back(n.threshold);
        forest.left_.push_back(base + n.left);
        forest.right_.push_back(base + n.right);
        forest.leaf_col_.push_back(0);  // never read at a split
      }
    }
    // Walk the tree once to find its depth (the padded trip count). Every
    // node must be reachable at most once — a revisit means the node graph
    // has a cycle or a shared subtree, which would make the padded descent
    // (and the training-side PredictLeaf) ill-defined.
    int32_t depth = 0;
    {
      std::vector<char> seen(nodes.size(), 0);
      std::vector<std::pair<int32_t, int32_t>> stack;
      stack.emplace_back(0, 0);
      while (!stack.empty()) {
        const auto [i, d] = stack.back();
        stack.pop_back();
        if (seen[static_cast<size_t>(i)]) {
          return Status::InvalidArgument(
              StrFormat("tree %zu is not a tree: node %d reachable twice",
                        t, i));
        }
        seen[static_cast<size_t>(i)] = 1;
        const gbdt::TreeNode& n = nodes[static_cast<size_t>(i)];
        if (n.is_leaf) {
          depth = std::max(depth, d);
        } else {
          stack.emplace_back(n.left, d + 1);
          stack.emplace_back(n.right, d + 1);
        }
      }
    }
    forest.depths_.push_back(depth);
    column_offset += static_cast<size_t>(num_leaves);
  }
  forest.num_columns_ = column_offset;
  forest.min_feature_count_ = static_cast<size_t>(max_feature + 1);
  return forest;
}

}  // namespace lightmirm::serve
