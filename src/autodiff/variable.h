// Reverse-mode automatic differentiation with higher-order gradient
// support. A Var is a handle to a graph node; ops (see ops.h) build new
// nodes, and each node's vector-Jacobian product is itself expressed with
// ops, so gradients are differentiable graphs — Grad(Grad(...)) works.
// This is the substrate behind the generic (non-linear) MAML path that the
// paper's meta-IRM requires when the predictor is not logistic regression.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "autodiff/tensor.h"
#include "common/result.h"

namespace lightmirm::autodiff {

class Var;

/// Computes input adjoints given the upstream adjoint, the op inputs, and
/// the op output, all as Vars so the results stay differentiable.
using VjpFn = std::function<std::vector<Var>(
    const Var& grad_out, const std::vector<Var>& inputs, const Var& output)>;

namespace internal {

struct Node {
  Tensor value;
  std::vector<Var> inputs;
  VjpFn vjp;
  bool requires_grad = false;
  const char* op_name = "leaf";
};

}  // namespace internal

/// Value-semantics handle to a graph node.
class Var {
 public:
  Var() = default;

  /// Leaf that participates in differentiation (a parameter).
  static Var Param(Tensor value);

  /// Leaf treated as a constant.
  static Var Constant(Tensor value);
  static Var Scalar(double v) { return Constant(Tensor::Scalar(v)); }

  /// Interior node created by an op.
  static Var Op(const char* name, Tensor value, std::vector<Var> inputs,
                VjpFn vjp);

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const { return node_->value; }
  bool requires_grad() const { return node_->requires_grad; }
  const char* op_name() const { return node_->op_name; }
  const std::vector<Var>& inputs() const { return node_->inputs; }

  /// Identity of the underlying node (used as a map key).
  const void* id() const { return node_.get(); }

  /// Applies this node's VJP.
  std::vector<Var> CallVjp(const Var& grad_out) const;

 private:
  std::shared_ptr<internal::Node> node_;
};

/// Options for Grad.
struct GradOptions {
  /// If true the returned gradients are differentiable graphs (needed for
  /// second-order derivatives); if false they are detached constants.
  bool create_graph = false;
};

/// Gradients of a scalar `output` with respect to each Var in `wrt`.
/// Vars that do not influence the output get zero gradients of their own
/// shape. Errors if output is not scalar (1x1).
Result<std::vector<Var>> Grad(const Var& output, const std::vector<Var>& wrt,
                              const GradOptions& options = {});

}  // namespace lightmirm::autodiff
