#include "autodiff/ops.h"

#include <cassert>
#include <cmath>

namespace lightmirm::autodiff {
namespace {

// Output shape of a broadcasting binary op; asserts compatibility.
void BroadcastShape(const Tensor& a, const Tensor& b, size_t* rows,
                    size_t* cols) {
  if (a.BroadcastCompatible(b)) {
    *rows = a.rows();
    *cols = a.cols();
    return;
  }
  assert(b.BroadcastCompatible(a) && "incompatible broadcast shapes");
  *rows = b.rows();
  *cols = b.cols();
}

template <typename F>
Tensor ElementwiseBinary(const Tensor& a, const Tensor& b, F f) {
  size_t rows, cols;
  BroadcastShape(a, b, &rows, &cols);
  Tensor out(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      out.At(r, c) = f(a.BroadcastAt(r, c), b.BroadcastAt(r, c));
    }
  }
  return out;
}

// Reduce `g` (a Var of the broadcasted output shape) back to the shape of
// input tensor `in`.
Var ReduceToShapeOf(const Var& g, const Tensor& in) {
  if (g.value().SameShape(in)) return g;
  return ReduceSumTo(g, in.rows(), in.cols());
}

}  // namespace

Var Add(const Var& a, const Var& b) {
  Tensor out = ElementwiseBinary(a.value(), b.value(),
                                 [](double x, double y) { return x + y; });
  return Var::Op("add", std::move(out), {a, b},
                 [](const Var& g, const std::vector<Var>& in, const Var&) {
                   return std::vector<Var>{ReduceToShapeOf(g, in[0].value()),
                                           ReduceToShapeOf(g, in[1].value())};
                 });
}

Var Sub(const Var& a, const Var& b) {
  Tensor out = ElementwiseBinary(a.value(), b.value(),
                                 [](double x, double y) { return x - y; });
  return Var::Op(
      "sub", std::move(out), {a, b},
      [](const Var& g, const std::vector<Var>& in, const Var&) {
        return std::vector<Var>{ReduceToShapeOf(g, in[0].value()),
                                ReduceToShapeOf(Neg(g), in[1].value())};
      });
}

Var Mul(const Var& a, const Var& b) {
  Tensor out = ElementwiseBinary(a.value(), b.value(),
                                 [](double x, double y) { return x * y; });
  return Var::Op(
      "mul", std::move(out), {a, b},
      [](const Var& g, const std::vector<Var>& in, const Var&) {
        return std::vector<Var>{
            ReduceToShapeOf(Mul(g, in[1]), in[0].value()),
            ReduceToShapeOf(Mul(g, in[0]), in[1].value())};
      });
}

Var Div(const Var& a, const Var& b) {
  Tensor out = ElementwiseBinary(a.value(), b.value(),
                                 [](double x, double y) { return x / y; });
  return Var::Op(
      "div", std::move(out), {a, b},
      [](const Var& g, const std::vector<Var>& in, const Var&) {
        const Var da = ReduceToShapeOf(Div(g, in[1]), in[0].value());
        const Var db = ReduceToShapeOf(
            Neg(Div(Mul(g, in[0]), Mul(in[1], in[1]))), in[1].value());
        return std::vector<Var>{da, db};
      });
}

Var Neg(const Var& x) {
  return Var::Op("neg", x.value().Map([](double v) { return -v; }), {x},
                 [](const Var& g, const std::vector<Var>&, const Var&) {
                   return std::vector<Var>{Neg(g)};
                 });
}

Var Log(const Var& x) {
  return Var::Op("log", x.value().Map([](double v) { return std::log(v); }),
                 {x},
                 [](const Var& g, const std::vector<Var>& in, const Var&) {
                   return std::vector<Var>{Div(g, in[0])};
                 });
}

Var Exp(const Var& x) {
  return Var::Op("exp", x.value().Map([](double v) { return std::exp(v); }),
                 {x},
                 [](const Var& g, const std::vector<Var>&, const Var& out) {
                   return std::vector<Var>{Mul(g, out)};
                 });
}

Var Sqrt(const Var& x) {
  return Var::Op(
      "sqrt", x.value().Map([](double v) { return std::sqrt(v); }), {x},
      [](const Var& g, const std::vector<Var>&, const Var& out) {
        return std::vector<Var>{Div(g, MulScalar(out, 2.0))};
      });
}

Var Sigmoid(const Var& x) {
  auto sig = [](double v) {
    if (v >= 0.0) return 1.0 / (1.0 + std::exp(-v));
    const double e = std::exp(v);
    return e / (1.0 + e);
  };
  return Var::Op(
      "sigmoid", x.value().Map(sig), {x},
      [](const Var& g, const std::vector<Var>&, const Var& out) {
        // g * y * (1 - y)
        return std::vector<Var>{
            Mul(g, Mul(out, Sub(Var::Scalar(1.0), out)))};
      });
}

Var Softplus(const Var& x) {
  auto sp = [](double v) {
    // log(1 + e^v) = max(v, 0) + log1p(e^{-|v|})
    return std::max(v, 0.0) + std::log1p(std::exp(-std::abs(v)));
  };
  return Var::Op("softplus", x.value().Map(sp), {x},
                 [](const Var& g, const std::vector<Var>& in, const Var&) {
                   return std::vector<Var>{Mul(g, Sigmoid(in[0]))};
                 });
}

Var Tanh(const Var& x) {
  return Var::Op(
      "tanh", x.value().Map([](double v) { return std::tanh(v); }), {x},
      [](const Var& g, const std::vector<Var>&, const Var& out) {
        return std::vector<Var>{
            Mul(g, Sub(Var::Scalar(1.0), Mul(out, out)))};
      });
}

Var Relu(const Var& x) {
  return Var::Op(
      "relu", x.value().Map([](double v) { return v > 0.0 ? v : 0.0; }), {x},
      [](const Var& g, const std::vector<Var>& in, const Var&) {
        // Locally-constant mask; second derivative through it is zero.
        Tensor mask = in[0].value().Map(
            [](double v) { return v > 0.0 ? 1.0 : 0.0; });
        return std::vector<Var>{Mul(g, Var::Constant(std::move(mask)))};
      });
}

Var PowScalar(const Var& x, double p) {
  return Var::Op(
      "pow", x.value().Map([p](double v) { return std::pow(v, p); }), {x},
      [p](const Var& g, const std::vector<Var>& in, const Var&) {
        return std::vector<Var>{
            Mul(g, MulScalar(PowScalar(in[0], p - 1.0), p))};
      });
}

Var MulScalar(const Var& x, double s) {
  return Var::Op("mul_scalar",
                 x.value().Map([s](double v) { return v * s; }), {x},
                 [s](const Var& g, const std::vector<Var>&, const Var&) {
                   return std::vector<Var>{MulScalar(g, s)};
                 });
}

Var AddScalar(const Var& x, double s) {
  return Var::Op("add_scalar",
                 x.value().Map([s](double v) { return v + s; }), {x},
                 [](const Var& g, const std::vector<Var>&, const Var&) {
                   return std::vector<Var>{g};
                 });
}

Var Transpose(const Var& x) {
  return Var::Op("transpose", x.value().Transposed(), {x},
                 [](const Var& g, const std::vector<Var>&, const Var&) {
                   return std::vector<Var>{Transpose(g)};
                 });
}

Var MatMul(const Var& a, const Var& b) {
  auto out = Tensor::MatMul(a.value(), b.value());
  assert(out.ok() && "matmul shape mismatch");
  return Var::Op(
      "matmul", std::move(*out), {a, b},
      [](const Var& g, const std::vector<Var>& in, const Var&) {
        return std::vector<Var>{MatMul(g, Transpose(in[1])),
                                MatMul(Transpose(in[0]), g)};
      });
}

Var SumAll(const Var& x) {
  return Var::Op("sum", Tensor::Scalar(x.value().Sum()), {x},
                 [](const Var& g, const std::vector<Var>& in, const Var&) {
                   return std::vector<Var>{BroadcastTo(
                       g, in[0].value().rows(), in[0].value().cols())};
                 });
}

Var MeanAll(const Var& x) {
  const double n = static_cast<double>(x.value().size());
  return MulScalar(SumAll(x), 1.0 / n);
}

Var BroadcastTo(const Var& x, size_t rows, size_t cols) {
  Tensor out(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      out.At(r, c) = x.value().BroadcastAt(r, c);
    }
  }
  return Var::Op("broadcast", std::move(out), {x},
                 [](const Var& g, const std::vector<Var>& in, const Var&) {
                   return std::vector<Var>{ReduceSumTo(
                       g, in[0].value().rows(), in[0].value().cols())};
                 });
}

Var ReduceSumTo(const Var& x, size_t rows, size_t cols) {
  return Var::Op("reduce_sum", x.value().ReduceTo(rows, cols), {x},
                 [](const Var& g, const std::vector<Var>& in, const Var&) {
                   return std::vector<Var>{BroadcastTo(
                       g, in[0].value().rows(), in[0].value().cols())};
                 });
}

Var StackScalars(const std::vector<Var>& scalars) {
  assert(!scalars.empty());
  Tensor out(1, scalars.size());
  for (size_t i = 0; i < scalars.size(); ++i) {
    out.At(0, i) = scalars[i].value().ScalarValue();
  }
  const size_t n = scalars.size();
  return Var::Op(
      "stack", std::move(out), scalars,
      [n](const Var& g, const std::vector<Var>&, const Var&) {
        std::vector<Var> grads;
        grads.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          // Slice g[0, i] as a scalar: mask-multiply then sum. The mask is
          // locally constant so higher-order derivatives remain correct.
          Tensor mask(1, n, 0.0);
          mask.At(0, i) = 1.0;
          grads.push_back(SumAll(Mul(g, Var::Constant(std::move(mask)))));
        }
        return grads;
      });
}

Var BceWithLogits(const Var& logits, const Var& labels) {
  assert(labels.value().SameShape(logits.value()));
  // mean(softplus(z) - y*z)
  return MeanAll(Sub(Softplus(logits), Mul(labels, logits)));
}

Var StdDev(const Var& row, double eps) {
  const Var mean = MeanAll(row);
  const Var centered = Sub(row, mean);
  const Var variance = MeanAll(Mul(centered, centered));
  return Sqrt(AddScalar(variance, eps));
}

}  // namespace lightmirm::autodiff
