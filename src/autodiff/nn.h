// Small neural-network layer on top of the autodiff engine: linear layers
// and an MLP with a choice of activation. Demonstrates that the meta-IRM /
// LightMIRM objectives do not require a linear predictor (the paper's
// footnote 3): the generic MAML path differentiates through the inner step
// with the tape instead of the closed-form logistic HVP.
#pragma once

#include <string>
#include <vector>

#include "autodiff/ops.h"
#include "common/result.h"
#include "common/rng.h"

namespace lightmirm::autodiff::nn {

/// One dense layer: y = x W + b with W (in x out) and b (1 x out).
struct LinearLayer {
  Var weight;
  Var bias;
};

/// Multi-layer perceptron producing logits (no final activation).
class Mlp {
 public:
  /// layer_sizes = {in, hidden..., out}; activation "tanh", "relu" or
  /// "sigmoid" applied between layers.
  static Result<Mlp> Create(const std::vector<size_t>& layer_sizes,
                            double init_scale, Rng* rng,
                            const std::string& activation = "tanh");

  /// Forward pass: x is (N x in), result is (N x out) logits.
  Var Forward(const Var& x) const;

  /// All parameters, layer by layer (weight then bias).
  std::vector<Var> Params() const;

  /// A copy of this MLP whose parameters are the given Vars (same order as
  /// Params()); used to evaluate the network at MAML-adapted parameters
  /// while keeping the graph differentiable.
  Result<Mlp> WithParams(const std::vector<Var>& params) const;

  /// In-place SGD: replaces each parameter with a fresh detached Param
  /// value - lr * grad.
  Status ApplySgd(const std::vector<Var>& grads, double lr);

  size_t num_layers() const { return layers_.size(); }

 private:
  std::vector<LinearLayer> layers_;
  std::string activation_;
};

}  // namespace lightmirm::autodiff::nn
