#include "autodiff/nn.h"

#include "common/string_util.h"

namespace lightmirm::autodiff::nn {

Result<Mlp> Mlp::Create(const std::vector<size_t>& layer_sizes,
                        double init_scale, Rng* rng,
                        const std::string& activation) {
  if (layer_sizes.size() < 2) {
    return Status::InvalidArgument("need at least input and output sizes");
  }
  if (activation != "tanh" && activation != "relu" &&
      activation != "sigmoid") {
    return Status::InvalidArgument("unknown activation: " + activation);
  }
  Mlp mlp;
  mlp.activation_ = activation;
  for (size_t l = 0; l + 1 < layer_sizes.size(); ++l) {
    Tensor w(layer_sizes[l], layer_sizes[l + 1]);
    for (double& v : w.data()) v = rng->Normal(0.0, init_scale);
    Tensor b(1, layer_sizes[l + 1], 0.0);
    mlp.layers_.push_back(
        LinearLayer{Var::Param(std::move(w)), Var::Param(std::move(b))});
  }
  return mlp;
}

Var Mlp::Forward(const Var& x) const {
  Var h = x;
  for (size_t l = 0; l < layers_.size(); ++l) {
    h = Add(MatMul(h, layers_[l].weight), layers_[l].bias);
    if (l + 1 < layers_.size()) {
      if (activation_ == "tanh") {
        h = Tanh(h);
      } else if (activation_ == "relu") {
        h = Relu(h);
      } else {
        h = Sigmoid(h);
      }
    }
  }
  return h;
}

std::vector<Var> Mlp::Params() const {
  std::vector<Var> params;
  params.reserve(layers_.size() * 2);
  for (const LinearLayer& layer : layers_) {
    params.push_back(layer.weight);
    params.push_back(layer.bias);
  }
  return params;
}

Result<Mlp> Mlp::WithParams(const std::vector<Var>& params) const {
  if (params.size() != layers_.size() * 2) {
    return Status::InvalidArgument(
        StrFormat("expected %zu params, got %zu", layers_.size() * 2,
                  params.size()));
  }
  Mlp out;
  out.activation_ = activation_;
  for (size_t l = 0; l < layers_.size(); ++l) {
    if (!params[2 * l].value().SameShape(layers_[l].weight.value()) ||
        !params[2 * l + 1].value().SameShape(layers_[l].bias.value())) {
      return Status::InvalidArgument(
          StrFormat("param shape mismatch at layer %zu", l));
    }
    out.layers_.push_back(LinearLayer{params[2 * l], params[2 * l + 1]});
  }
  return out;
}

Status Mlp::ApplySgd(const std::vector<Var>& grads, double lr) {
  if (grads.size() != layers_.size() * 2) {
    return Status::InvalidArgument(
        StrFormat("expected %zu grads, got %zu", layers_.size() * 2,
                  grads.size()));
  }
  for (size_t l = 0; l < layers_.size(); ++l) {
    for (int k = 0; k < 2; ++k) {
      Var& param = k == 0 ? layers_[l].weight : layers_[l].bias;
      const Var& grad = grads[2 * l + static_cast<size_t>(k)];
      if (!grad.value().SameShape(param.value())) {
        return Status::InvalidArgument(
            StrFormat("grad shape mismatch at layer %zu", l));
      }
      Tensor updated = param.value();
      for (size_t i = 0; i < updated.data().size(); ++i) {
        updated.data()[i] -= lr * grad.value().data()[i];
      }
      param = Var::Param(std::move(updated));
    }
  }
  return Status::OK();
}

}  // namespace lightmirm::autodiff::nn
