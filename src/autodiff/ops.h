// Differentiable operations. Every VJP is itself built from these ops, so
// any gradient returned by Grad(..., create_graph=true) can be
// differentiated again — the property MAML's second-order updates need.
//
// Broadcasting: binary elementwise ops accept operands of equal shape, or
// where one operand is a scalar (1x1), a matching row vector (1xC), or a
// matching column vector (Rx1); the output takes the larger shape and the
// backward pass sum-reduces over the broadcast dimensions.
#pragma once

#include "autodiff/variable.h"

namespace lightmirm::autodiff {

// ---- elementwise binary (with broadcasting) ----
Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var Mul(const Var& a, const Var& b);
Var Div(const Var& a, const Var& b);

// ---- elementwise unary ----
Var Neg(const Var& x);
Var Log(const Var& x);   ///< element-wise natural log (inputs must be > 0)
Var Exp(const Var& x);
Var Sqrt(const Var& x);
Var Sigmoid(const Var& x);
Var Softplus(const Var& x);  ///< log(1 + exp(x)), numerically stable
Var Tanh(const Var& x);
Var Relu(const Var& x);
Var PowScalar(const Var& x, double p);
Var MulScalar(const Var& x, double s);
Var AddScalar(const Var& x, double s);

// ---- shape / reduction ----
Var Transpose(const Var& x);
Var MatMul(const Var& a, const Var& b);  ///< shapes must agree (checked)
Var SumAll(const Var& x);                ///< -> 1x1
Var MeanAll(const Var& x);               ///< -> 1x1
Var BroadcastTo(const Var& x, size_t rows, size_t cols);
Var ReduceSumTo(const Var& x, size_t rows, size_t cols);

/// Concatenates 1x1 scalars into a 1xN row vector (differentiable); used
/// to take the std-dev of the per-environment meta-losses.
Var StackScalars(const std::vector<Var>& scalars);

// ---- composites ----
/// Mean binary cross-entropy from logits: mean(softplus(z) - y .* z) with
/// y a constant 0/1 tensor of the same shape as z.
Var BceWithLogits(const Var& logits, const Var& labels);

/// Population standard deviation of a row vector (adds `eps` inside the
/// square root for differentiability at zero variance).
Var StdDev(const Var& row, double eps = 1e-12);

}  // namespace lightmirm::autodiff
