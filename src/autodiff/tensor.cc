#include "autodiff/tensor.h"

#include <cassert>

#include "common/string_util.h"

namespace lightmirm::autodiff {

Tensor::Tensor(size_t rows, size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  assert(data_.size() == rows_ * cols_);
}

Tensor Tensor::Scalar(double v) {
  Tensor t(1, 1);
  t.data_[0] = v;
  return t;
}

std::string Tensor::ShapeString() const {
  return StrFormat("[%zu x %zu]", rows_, cols_);
}

bool Tensor::BroadcastCompatible(const Tensor& small) const {
  if (SameShape(small)) return true;
  if (small.IsScalar()) return true;
  if (small.rows_ == 1 && small.cols_ == cols_) return true;
  if (small.cols_ == 1 && small.rows_ == rows_) return true;
  return false;
}

double Tensor::BroadcastAt(size_t r, size_t c) const {
  const size_t rr = rows_ == 1 ? 0 : r;
  const size_t cc = cols_ == 1 ? 0 : c;
  return data_[rr * cols_ + cc];
}

double Tensor::Sum() const {
  double acc = 0.0;
  for (double v : data_) acc += v;
  return acc;
}

Result<Tensor> Tensor::MatMul(const Tensor& a, const Tensor& b) {
  if (a.cols_ != b.rows_) {
    return Status::InvalidArgument("matmul shape mismatch: " +
                                   a.ShapeString() + " * " + b.ShapeString());
  }
  Tensor out(a.rows_, b.cols_);
  for (size_t i = 0; i < a.rows_; ++i) {
    for (size_t k = 0; k < a.cols_; ++k) {
      const double av = a.At(i, k);
      if (av == 0.0) continue;
      for (size_t j = 0; j < b.cols_; ++j) {
        out.At(i, j) += av * b.At(k, j);
      }
    }
  }
  return out;
}

Tensor Tensor::Transposed() const {
  Tensor out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out.At(c, r) = At(r, c);
  }
  return out;
}

Tensor Tensor::ReduceTo(size_t target_rows, size_t target_cols) const {
  if (target_rows == rows_ && target_cols == cols_) return *this;
  Tensor out(target_rows, target_cols, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      const size_t tr = target_rows == 1 ? 0 : r;
      const size_t tc = target_cols == 1 ? 0 : c;
      out.At(tr, tc) += At(r, c);
    }
  }
  return out;
}

}  // namespace lightmirm::autodiff
