#include "autodiff/variable.h"

#include <unordered_map>
#include <unordered_set>

namespace lightmirm::autodiff {
namespace {

// Minimal add used for adjoint accumulation. Its VJP passes the upstream
// gradient straight through, which keeps accumulated gradients
// differentiable for higher-order derivatives.
Var AccumAdd(const Var& a, const Var& b) {
  Tensor out = a.value();
  for (size_t i = 0; i < out.data().size(); ++i) {
    out.data()[i] += b.value().data()[i];
  }
  return Var::Op(
      "accum_add", std::move(out), {a, b},
      [](const Var& grad_out, const std::vector<Var>&, const Var&) {
        return std::vector<Var>{grad_out, grad_out};
      });
}

}  // namespace

Var Var::Param(Tensor value) {
  Var v;
  v.node_ = std::make_shared<internal::Node>();
  v.node_->value = std::move(value);
  v.node_->requires_grad = true;
  v.node_->op_name = "param";
  return v;
}

Var Var::Constant(Tensor value) {
  Var v;
  v.node_ = std::make_shared<internal::Node>();
  v.node_->value = std::move(value);
  v.node_->requires_grad = false;
  v.node_->op_name = "const";
  return v;
}

Var Var::Op(const char* name, Tensor value, std::vector<Var> inputs,
            VjpFn vjp) {
  Var v;
  v.node_ = std::make_shared<internal::Node>();
  v.node_->value = std::move(value);
  v.node_->inputs = std::move(inputs);
  v.node_->vjp = std::move(vjp);
  v.node_->op_name = name;
  for (const Var& in : v.node_->inputs) {
    if (in.requires_grad()) {
      v.node_->requires_grad = true;
      break;
    }
  }
  return v;
}

std::vector<Var> Var::CallVjp(const Var& grad_out) const {
  return node_->vjp(grad_out, node_->inputs, *this);
}

Result<std::vector<Var>> Grad(const Var& output, const std::vector<Var>& wrt,
                              const GradOptions& options) {
  if (!output.defined()) {
    return Status::InvalidArgument("Grad: undefined output");
  }
  if (!output.value().IsScalar()) {
    return Status::InvalidArgument(
        "Grad: output must be a scalar, got shape " +
        output.value().ShapeString());
  }

  // Topological order over nodes that require grad.
  std::vector<Var> topo;
  std::unordered_set<const void*> visited;
  std::vector<std::pair<Var, size_t>> stack;  // (node, next input index)
  if (output.requires_grad()) {
    stack.emplace_back(output, 0);
    visited.insert(output.id());
  }
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    if (next < node.inputs().size()) {
      const Var& in = node.inputs()[next++];
      if (in.requires_grad() && visited.insert(in.id()).second) {
        stack.emplace_back(in, 0);
      }
    } else {
      topo.push_back(node);
      stack.pop_back();
    }
  }

  std::unordered_map<const void*, Var> adjoint;
  adjoint.emplace(output.id(), Var::Constant(Tensor::Scalar(1.0)));

  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const Var& node = *it;
    const auto adj_it = adjoint.find(node.id());
    if (adj_it == adjoint.end()) continue;  // unreachable from output
    if (node.inputs().empty()) continue;    // leaf
    const std::vector<Var> input_grads = node.CallVjp(adj_it->second);
    if (input_grads.size() != node.inputs().size()) {
      return Status::Internal(std::string("vjp of op '") + node.op_name() +
                              "' returned wrong arity");
    }
    for (size_t i = 0; i < node.inputs().size(); ++i) {
      const Var& in = node.inputs()[i];
      if (!in.requires_grad() || !input_grads[i].defined()) continue;
      if (!input_grads[i].value().SameShape(in.value())) {
        return Status::Internal(std::string("vjp of op '") + node.op_name() +
                                "' produced gradient of shape " +
                                input_grads[i].value().ShapeString() +
                                " for input of shape " +
                                in.value().ShapeString());
      }
      auto [pos, inserted] = adjoint.emplace(in.id(), input_grads[i]);
      if (!inserted) pos->second = AccumAdd(pos->second, input_grads[i]);
    }
  }

  std::vector<Var> grads;
  grads.reserve(wrt.size());
  for (const Var& w : wrt) {
    const auto it = adjoint.find(w.id());
    if (it == adjoint.end()) {
      grads.push_back(
          Var::Constant(Tensor(w.value().rows(), w.value().cols(), 0.0)));
    } else if (options.create_graph) {
      grads.push_back(it->second);
    } else {
      grads.push_back(Var::Constant(it->second.value()));
    }
  }
  return grads;
}

}  // namespace lightmirm::autodiff
