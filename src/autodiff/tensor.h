// Dense 2-D tensor of doubles backing the autodiff engine. Scalars are 1x1
// tensors. Supports the broadcasting the ops layer needs: full-shape,
// scalar (1x1), row (1xC) and column (Rx1) operands.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"

namespace lightmirm::autodiff {

class Tensor {
 public:
  Tensor() = default;
  Tensor(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  Tensor(size_t rows, size_t cols, std::vector<double> data);

  /// 1x1 scalar tensor.
  static Tensor Scalar(double v);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool IsScalar() const { return rows_ == 1 && cols_ == 1; }
  double ScalarValue() const { return data_[0]; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  std::string ShapeString() const;

  /// True if `small` can broadcast against a tensor of this shape
  /// (identical, scalar, matching row vector, or matching column vector).
  bool BroadcastCompatible(const Tensor& small) const;

  /// Value at (r, c) with broadcasting.
  double BroadcastAt(size_t r, size_t c) const;

  /// Element-wise map.
  template <typename F>
  Tensor Map(F f) const {
    Tensor out(rows_, cols_);
    for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = f(data_[i]);
    return out;
  }

  /// Sum of all elements.
  double Sum() const;

  /// Matrix product.
  static Result<Tensor> MatMul(const Tensor& a, const Tensor& b);

  /// Transpose.
  Tensor Transposed() const;

  /// Reduces this tensor to `target` shape by summing broadcast dimensions
  /// (inverse of broadcasting). Target must be broadcast-compatible.
  Tensor ReduceTo(size_t target_rows, size_t target_cols) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace lightmirm::autodiff
