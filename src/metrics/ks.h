// Kolmogorov-Smirnov statistic for binary classification scores: the
// maximum gap between the score CDFs of the positive and negative classes.
// The standard risk-ranking metric in credit scoring (the paper reports KS
// throughout).
#pragma once

#include <vector>

#include "common/result.h"

namespace lightmirm::metrics {

/// KS statistic in [0, 1]. Errors if either class is absent or sizes
/// mismatch.
Result<double> KsStatistic(const std::vector<int>& labels,
                           const std::vector<double>& scores);

/// KS curve point: at `threshold`, the gap |F_neg - F_pos| of the two CDFs.
struct KsPoint {
  double threshold = 0.0;
  double gap = 0.0;
};

/// Full KS curve over distinct thresholds (ascending).
Result<std::vector<KsPoint>> KsCurve(const std::vector<int>& labels,
                                     const std::vector<double>& scores);

}  // namespace lightmirm::metrics
