#include "metrics/calibration.h"

#include <algorithm>
#include <cmath>

#include "data/env_split.h"
#include "metrics/threshold.h"

namespace lightmirm::metrics {

Result<std::vector<CalibrationBin>> CalibrationBins(
    const std::vector<int>& labels, const std::vector<double>& scores,
    int num_bins) {
  if (labels.size() != scores.size()) {
    return Status::InvalidArgument("labels/scores length mismatch");
  }
  if (num_bins < 1) return Status::InvalidArgument("num_bins must be >= 1");
  std::vector<CalibrationBin> bins(static_cast<size_t>(num_bins));
  std::vector<double> score_sum(bins.size(), 0.0);
  std::vector<double> label_sum(bins.size(), 0.0);
  for (size_t b = 0; b < bins.size(); ++b) {
    bins[b].score_lo = static_cast<double>(b) / num_bins;
    bins[b].score_hi = static_cast<double>(b + 1) / num_bins;
  }
  for (size_t i = 0; i < scores.size(); ++i) {
    const double s = std::clamp(scores[i], 0.0, 1.0);
    size_t b = std::min(static_cast<size_t>(s * num_bins), bins.size() - 1);
    bins[b].count++;
    score_sum[b] += s;
    label_sum[b] += labels[i];
  }
  for (size_t b = 0; b < bins.size(); ++b) {
    if (bins[b].count > 0) {
      bins[b].mean_score = score_sum[b] / static_cast<double>(bins[b].count);
      bins[b].observed_rate =
          label_sum[b] / static_cast<double>(bins[b].count);
    }
  }
  return bins;
}

Result<double> ExpectedCalibrationError(const std::vector<int>& labels,
                                        const std::vector<double>& scores,
                                        int num_bins) {
  LIGHTMIRM_ASSIGN_OR_RETURN(const std::vector<CalibrationBin> bins,
                             CalibrationBins(labels, scores, num_bins));
  double total = 0.0, weighted = 0.0;
  for (const CalibrationBin& b : bins) {
    if (b.count == 0) continue;
    total += static_cast<double>(b.count);
    weighted += static_cast<double>(b.count) *
                std::abs(b.mean_score - b.observed_rate);
  }
  return total == 0.0 ? 0.0 : weighted / total;
}

Result<double> FprDisparity(const data::Dataset& dataset,
                            const std::vector<double>& scores,
                            double threshold, size_t min_rows) {
  if (scores.size() != dataset.NumRows()) {
    return Status::InvalidArgument("scores size != dataset rows");
  }
  const auto groups = data::GroupByEnv(dataset);
  double max_fpr = -1.0, min_fpr = 2.0;
  for (const std::vector<size_t>& rows : groups) {
    if (rows.size() < min_rows) continue;
    int64_t fp = 0, tn = 0;
    for (size_t r : rows) {
      if (dataset.labels()[r] == 0) {
        (scores[r] >= threshold ? fp : tn)++;
      }
    }
    if (fp + tn == 0) continue;
    const double fpr =
        static_cast<double>(fp) / static_cast<double>(fp + tn);
    max_fpr = std::max(max_fpr, fpr);
    min_fpr = std::min(min_fpr, fpr);
  }
  if (max_fpr < 0.0) {
    return Status::FailedPrecondition("no environment large enough");
  }
  return max_fpr - min_fpr;
}

}  // namespace lightmirm::metrics
