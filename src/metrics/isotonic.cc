#include "metrics/isotonic.h"

#include <algorithm>
#include <numeric>

namespace lightmirm::metrics {

Result<IsotonicCalibrator> IsotonicCalibrator::Fit(
    const std::vector<double>& scores, const std::vector<int>& labels) {
  if (scores.size() != labels.size()) {
    return Status::InvalidArgument("scores/labels size mismatch");
  }
  if (scores.empty()) {
    return Status::InvalidArgument("cannot fit on empty data");
  }
  bool pos = false, neg = false;
  for (int y : labels) {
    if (y == 1) {
      pos = true;
    } else if (y == 0) {
      neg = true;
    } else {
      return Status::InvalidArgument("labels must be 0/1");
    }
  }
  if (!pos || !neg) {
    return Status::FailedPrecondition("need both classes to calibrate");
  }

  // Sort by score.
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });

  // Pool adjacent violators on blocks of (sum, count, min_score).
  struct Block {
    double sum;
    double count;
    double min_score;
  };
  std::vector<Block> blocks;
  blocks.reserve(scores.size());
  for (size_t i : order) {
    blocks.push_back(
        Block{static_cast<double>(labels[i]), 1.0, scores[i]});
    while (blocks.size() >= 2) {
      const Block& last = blocks.back();
      const Block& prev = blocks[blocks.size() - 2];
      if (prev.sum / prev.count <= last.sum / last.count) break;
      Block merged{prev.sum + last.sum, prev.count + last.count,
                   prev.min_score};
      blocks.pop_back();
      blocks.pop_back();
      blocks.push_back(merged);
    }
  }

  IsotonicCalibrator calibrator;
  calibrator.thresholds_.reserve(blocks.size());
  calibrator.values_.reserve(blocks.size());
  for (const Block& b : blocks) {
    calibrator.thresholds_.push_back(b.min_score);
    calibrator.values_.push_back(b.sum / b.count);
  }
  return calibrator;
}

double IsotonicCalibrator::Calibrate(double score) const {
  // Last block whose start is <= score.
  const auto it = std::upper_bound(thresholds_.begin(), thresholds_.end(),
                                   score);
  if (it == thresholds_.begin()) return values_.front();
  const size_t idx = static_cast<size_t>(it - thresholds_.begin()) - 1;
  return values_[idx];
}

std::vector<double> IsotonicCalibrator::CalibrateAll(
    const std::vector<double>& scores) const {
  std::vector<double> out(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) out[i] = Calibrate(scores[i]);
  return out;
}

}  // namespace lightmirm::metrics
