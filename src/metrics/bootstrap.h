// Bootstrap confidence intervals for KS and AUC — standard model-governance
// practice for credit scorecards, and the honest way to read the small
// per-province differences the paper's tables report.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace lightmirm::metrics {

struct ConfidenceInterval {
  double point = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};

struct BootstrapOptions {
  int num_resamples = 500;
  double confidence = 0.95;
  uint64_t seed = 1729;
};

/// Percentile-bootstrap CI for the KS statistic.
Result<ConfidenceInterval> BootstrapKs(const std::vector<int>& labels,
                                       const std::vector<double>& scores,
                                       const BootstrapOptions& options = {});

/// Percentile-bootstrap CI for the AUC.
Result<ConfidenceInterval> BootstrapAuc(const std::vector<int>& labels,
                                        const std::vector<double>& scores,
                                        const BootstrapOptions& options = {});

/// Paired-bootstrap p-style check: fraction of resamples in which model A's
/// KS exceeds model B's (0.5 = indistinguishable). Both score vectors must
/// align with `labels`.
Result<double> PairedKsWinRate(const std::vector<int>& labels,
                               const std::vector<double>& scores_a,
                               const std::vector<double>& scores_b,
                               const BootstrapOptions& options = {});

}  // namespace lightmirm::metrics
