// Calibration diagnostics. The paper's fairness notion is calibration-style
// (similar false positive rates across groups); these helpers quantify both
// probability calibration and cross-group FPR disparity.
#pragma once

#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace lightmirm::metrics {

/// One calibration bin: predicted vs observed default rate.
struct CalibrationBin {
  double score_lo = 0.0;
  double score_hi = 0.0;
  size_t count = 0;
  double mean_score = 0.0;
  double observed_rate = 0.0;
};

/// Equal-width binning over [0,1]. Empty bins are retained with count 0.
Result<std::vector<CalibrationBin>> CalibrationBins(
    const std::vector<int>& labels, const std::vector<double>& scores,
    int num_bins = 10);

/// Expected calibration error: count-weighted mean |mean_score -
/// observed_rate| over non-empty bins.
Result<double> ExpectedCalibrationError(const std::vector<int>& labels,
                                        const std::vector<double>& scores,
                                        int num_bins = 10);

/// Max minus min false positive rate across environments at `threshold`
/// (environments with < min_rows rows or no negatives are skipped).
Result<double> FprDisparity(const data::Dataset& dataset,
                            const std::vector<double>& scores,
                            double threshold, size_t min_rows = 50);

}  // namespace lightmirm::metrics
