#include "metrics/ks.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/string_util.h"

namespace lightmirm::metrics {
namespace {

Status CheckInputs(const std::vector<int>& labels,
                   const std::vector<double>& scores, double* num_pos,
                   double* num_neg) {
  if (labels.size() != scores.size()) {
    return Status::InvalidArgument(
        StrFormat("labels (%zu) and scores (%zu) differ in length",
                  labels.size(), scores.size()));
  }
  *num_pos = 0.0;
  *num_neg = 0.0;
  for (int y : labels) {
    if (y == 1) {
      *num_pos += 1.0;
    } else if (y == 0) {
      *num_neg += 1.0;
    } else {
      return Status::InvalidArgument("labels must be 0/1");
    }
  }
  if (*num_pos == 0.0 || *num_neg == 0.0) {
    return Status::FailedPrecondition("need both classes present for KS");
  }
  return Status::OK();
}

}  // namespace

Result<double> KsStatistic(const std::vector<int>& labels,
                           const std::vector<double>& scores) {
  double num_pos, num_neg;
  LIGHTMIRM_RETURN_NOT_OK(CheckInputs(labels, scores, &num_pos, &num_neg));
  const size_t n = labels.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });
  double cum_pos = 0.0, cum_neg = 0.0, best = 0.0;
  size_t i = 0;
  while (i < n) {
    const double s = scores[order[i]];
    while (i < n && scores[order[i]] == s) {
      if (labels[order[i]] == 1) {
        cum_pos += 1.0;
      } else {
        cum_neg += 1.0;
      }
      ++i;
    }
    best = std::max(best, std::abs(cum_neg / num_neg - cum_pos / num_pos));
  }
  return best;
}

Result<std::vector<KsPoint>> KsCurve(const std::vector<int>& labels,
                                     const std::vector<double>& scores) {
  double num_pos, num_neg;
  LIGHTMIRM_RETURN_NOT_OK(CheckInputs(labels, scores, &num_pos, &num_neg));
  const size_t n = labels.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });
  std::vector<KsPoint> curve;
  double cum_pos = 0.0, cum_neg = 0.0;
  size_t i = 0;
  while (i < n) {
    const double s = scores[order[i]];
    while (i < n && scores[order[i]] == s) {
      if (labels[order[i]] == 1) {
        cum_pos += 1.0;
      } else {
        cum_neg += 1.0;
      }
      ++i;
    }
    curve.push_back(
        KsPoint{s, std::abs(cum_neg / num_neg - cum_pos / num_pos)});
  }
  return curve;
}

}  // namespace lightmirm::metrics
