// Binned streaming statistics for online monitoring. Every function here
// is pure math over parallel per-bin count arrays (fixed equal-width score
// bins), so a sliding-window monitor can maintain O(bins) aggregates
// incrementally and evaluate PSI / KS / AUC / calibration in O(bins) per
// snapshot instead of re-sorting raw scores. Binning trades exactness for
// streaming cost: AUC and KS treat all scores inside one bin as tied
// (ties contribute 1/2, exactly like metrics::Auc), which converges to the
// exact statistic as bins shrink.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace lightmirm::metrics {

/// Population stability index between a reference and an observed binned
/// score distribution: sum_b (p_b - q_b) * ln(p_b / q_b), where p/q are
/// the observed/reference bin fractions. Both fractions are floored at
/// `epsilon` before the log, the standard smoothing that keeps empty bins
/// finite. Errors when the arrays are empty, differently sized, or either
/// total count is zero. Conventional credit-risk bands: < 0.1 stable,
/// 0.1-0.25 moderate shift, > 0.25 major shift.
Result<double> PsiFromCounts(const std::vector<uint64_t>& reference,
                             const std::vector<uint64_t>& observed,
                             double epsilon = 1e-4);

/// Two-sample Kolmogorov-Smirnov statistic from binned counts: the maximum
/// gap between the two empirical CDFs evaluated at bin edges. Serves both
/// monitoring uses — drift KS (window vs reference distribution) and
/// discrimination KS (positive vs negative class CDFs, the credit-scoring
/// KS). Errors on empty/mismatched arrays or a zero total on either side.
Result<double> KsFromCounts(const std::vector<uint64_t>& a,
                            const std::vector<uint64_t>& b);

/// AUC from binned class counts via the Mann-Whitney statistic, bins
/// ascending in score. Pairs split across bins are ordered by bin; pairs
/// inside one bin count 1/2 (ties). Errors on empty/mismatched arrays or
/// when either class is absent.
Result<double> AucFromBinnedCounts(const std::vector<uint64_t>& positives,
                                   const std::vector<uint64_t>& negatives);

/// Expected calibration error from binned labeled aggregates:
/// count-weighted mean of |mean_score_b - observed_rate_b| over non-empty
/// bins, where mean_score_b = score_sums[b] / counts[b] and
/// observed_rate_b = positives[b] / counts[b] (the binned form of
/// metrics::ExpectedCalibrationError). Errors on mismatched sizes, a zero
/// total, or positives[b] > counts[b].
Result<double> EceFromBinnedSums(const std::vector<uint64_t>& counts,
                                 const std::vector<double>& score_sums,
                                 const std::vector<uint64_t>& positives);

}  // namespace lightmirm::metrics
