#include "metrics/threshold.h"

#include "common/string_util.h"

namespace lightmirm::metrics {

double Confusion::TruePositiveRate() const {
  const int64_t p = tp + fn;
  return p == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(p);
}

double Confusion::FalsePositiveRate() const {
  const int64_t n = fp + tn;
  return n == 0 ? 0.0 : static_cast<double>(fp) / static_cast<double>(n);
}

double Confusion::Precision() const {
  const int64_t pred_pos = tp + fp;
  return pred_pos == 0
             ? 0.0
             : static_cast<double>(tp) / static_cast<double>(pred_pos);
}

double Confusion::Accuracy() const {
  const int64_t total = tp + fp + tn + fn;
  return total == 0
             ? 0.0
             : static_cast<double>(tp + tn) / static_cast<double>(total);
}

Result<Confusion> ConfusionAt(const std::vector<int>& labels,
                              const std::vector<double>& scores,
                              double threshold) {
  if (labels.size() != scores.size()) {
    return Status::InvalidArgument(
        StrFormat("labels (%zu) and scores (%zu) differ in length",
                  labels.size(), scores.size()));
  }
  Confusion c;
  for (size_t i = 0; i < labels.size(); ++i) {
    const bool predicted_default = scores[i] >= threshold;
    if (labels[i] == 1) {
      (predicted_default ? c.tp : c.fn)++;
    } else if (labels[i] == 0) {
      (predicted_default ? c.fp : c.tn)++;
    } else {
      return Status::InvalidArgument("labels must be 0/1");
    }
  }
  return c;
}

double BadDebtRateAt(const std::vector<int>& labels,
                     const std::vector<double>& scores, double threshold) {
  int64_t approved = 0, bad = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (scores[i] < threshold) {
      ++approved;
      if (labels[i] == 1) ++bad;
    }
  }
  return approved == 0
             ? 0.0
             : static_cast<double>(bad) / static_cast<double>(approved);
}

Result<std::vector<TradeOffPoint>> TradeOffCurve(
    const std::vector<int>& labels, const std::vector<double>& scores,
    int num_points) {
  if (num_points < 2) {
    return Status::InvalidArgument("num_points must be >= 2");
  }
  std::vector<TradeOffPoint> curve;
  curve.reserve(static_cast<size_t>(num_points));
  for (int i = 0; i < num_points; ++i) {
    const double threshold =
        static_cast<double>(i) / static_cast<double>(num_points - 1);
    LIGHTMIRM_ASSIGN_OR_RETURN(const Confusion c,
                               ConfusionAt(labels, scores, threshold));
    TradeOffPoint p;
    p.threshold = threshold;
    const double total = static_cast<double>(labels.size());
    p.refusal_rate = total == 0.0 ? 0.0
                                  : static_cast<double>(c.tp + c.fp) / total;
    p.fp_rate = c.FalsePositiveRate();
    p.bad_debt_rate = BadDebtRateAt(labels, scores, threshold);
    curve.push_back(p);
  }
  return curve;
}

}  // namespace lightmirm::metrics
