// ROC analysis: AUC and ROC curve points for binary classifiers.
#pragma once

#include <vector>

#include "common/result.h"

namespace lightmirm::metrics {

/// One point of an ROC curve.
struct RocPoint {
  double threshold = 0.0;
  double tpr = 0.0;  ///< true positive rate at score >= threshold
  double fpr = 0.0;  ///< false positive rate at score >= threshold
};

/// Area under the ROC curve via the Mann-Whitney statistic with proper tie
/// handling (ties contribute 1/2). Errors if either class is absent.
Result<double> Auc(const std::vector<int>& labels,
                   const std::vector<double>& scores);

/// Full ROC curve, one point per distinct score threshold, sorted by
/// descending threshold. Errors if either class is absent.
Result<std::vector<RocPoint>> RocCurve(const std::vector<int>& labels,
                                       const std::vector<double>& scores);

}  // namespace lightmirm::metrics
