#include "metrics/streaming.h"

#include <algorithm>
#include <cmath>

namespace lightmirm::metrics {
namespace {

Status CheckShapes(const std::vector<uint64_t>& a,
                   const std::vector<uint64_t>& b) {
  if (a.empty()) return Status::InvalidArgument("empty bin array");
  if (a.size() != b.size()) {
    return Status::InvalidArgument("bin arrays differ in size");
  }
  return Status::OK();
}

double Total(const std::vector<uint64_t>& counts) {
  double total = 0.0;
  for (uint64_t c : counts) total += static_cast<double>(c);
  return total;
}

}  // namespace

Result<double> PsiFromCounts(const std::vector<uint64_t>& reference,
                             const std::vector<uint64_t>& observed,
                             double epsilon) {
  LIGHTMIRM_RETURN_NOT_OK(CheckShapes(reference, observed));
  if (epsilon <= 0.0) return Status::InvalidArgument("epsilon must be > 0");
  const double ref_total = Total(reference);
  const double obs_total = Total(observed);
  if (ref_total == 0.0 || obs_total == 0.0) {
    return Status::InvalidArgument("zero total count");
  }
  double psi = 0.0;
  for (size_t b = 0; b < reference.size(); ++b) {
    const double q =
        std::max(static_cast<double>(reference[b]) / ref_total, epsilon);
    const double p =
        std::max(static_cast<double>(observed[b]) / obs_total, epsilon);
    psi += (p - q) * std::log(p / q);
  }
  return psi;
}

Result<double> KsFromCounts(const std::vector<uint64_t>& a,
                            const std::vector<uint64_t>& b) {
  LIGHTMIRM_RETURN_NOT_OK(CheckShapes(a, b));
  const double a_total = Total(a);
  const double b_total = Total(b);
  if (a_total == 0.0 || b_total == 0.0) {
    return Status::InvalidArgument("zero total count");
  }
  double a_cum = 0.0, b_cum = 0.0, ks = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    a_cum += static_cast<double>(a[i]);
    b_cum += static_cast<double>(b[i]);
    ks = std::max(ks, std::fabs(a_cum / a_total - b_cum / b_total));
  }
  return ks;
}

Result<double> AucFromBinnedCounts(const std::vector<uint64_t>& positives,
                                   const std::vector<uint64_t>& negatives) {
  LIGHTMIRM_RETURN_NOT_OK(CheckShapes(positives, negatives));
  const double pos_total = Total(positives);
  const double neg_total = Total(negatives);
  if (pos_total == 0.0 || neg_total == 0.0) {
    return Status::InvalidArgument("one class is absent");
  }
  double neg_below = 0.0, mw = 0.0;
  for (size_t b = 0; b < positives.size(); ++b) {
    const double p = static_cast<double>(positives[b]);
    const double n = static_cast<double>(negatives[b]);
    mw += p * (neg_below + 0.5 * n);
    neg_below += n;
  }
  return mw / (pos_total * neg_total);
}

Result<double> EceFromBinnedSums(const std::vector<uint64_t>& counts,
                                 const std::vector<double>& score_sums,
                                 const std::vector<uint64_t>& positives) {
  if (counts.empty()) return Status::InvalidArgument("empty bin array");
  if (counts.size() != score_sums.size() ||
      counts.size() != positives.size()) {
    return Status::InvalidArgument("bin arrays differ in size");
  }
  const double total = Total(counts);
  if (total == 0.0) return Status::InvalidArgument("zero total count");
  double ece = 0.0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    if (positives[b] > counts[b]) {
      return Status::InvalidArgument("positives exceed bin count");
    }
    const double count = static_cast<double>(counts[b]);
    const double mean_score = score_sums[b] / count;
    const double observed = static_cast<double>(positives[b]) / count;
    ece += (count / total) * std::fabs(mean_score - observed);
  }
  return ece;
}

}  // namespace lightmirm::metrics
