#include "metrics/bootstrap.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "metrics/ks.h"
#include "metrics/roc.h"

namespace lightmirm::metrics {
namespace {

// Resamples per parallel shard. Each resample gets its own RNG stream
// forked deterministically from the seed, so the CI is a pure function of
// (data, options) regardless of thread count.
constexpr size_t kResampleGrain = 8;

Status CheckOptions(const BootstrapOptions& options) {
  if (options.num_resamples < 10) {
    return Status::InvalidArgument("need at least 10 resamples");
  }
  if (options.confidence <= 0.0 || options.confidence >= 1.0) {
    return Status::InvalidArgument("confidence must be in (0,1)");
  }
  return Status::OK();
}

ConfidenceInterval Percentiles(std::vector<double> samples, double point,
                               double confidence) {
  std::sort(samples.begin(), samples.end());
  const double alpha = (1.0 - confidence) / 2.0;
  const size_t n = samples.size();
  const size_t lo_idx = static_cast<size_t>(alpha * (n - 1));
  const size_t hi_idx = static_cast<size_t>((1.0 - alpha) * (n - 1));
  return ConfidenceInterval{point, samples[lo_idx], samples[hi_idx]};
}

// Resamples (labels, scores) with replacement until both classes appear.
void Resample(const std::vector<int>& labels,
              const std::vector<double>& scores, Rng* rng,
              std::vector<int>* rl, std::vector<double>* rs) {
  const size_t n = labels.size();
  for (int attempt = 0; attempt < 64; ++attempt) {
    rl->clear();
    rs->clear();
    bool pos = false, neg = false;
    for (size_t i = 0; i < n; ++i) {
      const size_t pick = rng->UniformInt(n);
      rl->push_back(labels[pick]);
      rs->push_back(scores[pick]);
      (labels[pick] == 1 ? pos : neg) = true;
    }
    if (pos && neg) return;
  }
}

template <typename MetricFn>
Result<ConfidenceInterval> BootstrapMetric(const std::vector<int>& labels,
                                           const std::vector<double>& scores,
                                           const BootstrapOptions& options,
                                           MetricFn metric) {
  LIGHTMIRM_RETURN_NOT_OK(CheckOptions(options));
  LIGHTMIRM_ASSIGN_OR_RETURN(const double point, metric(labels, scores));
  // Resample-parallel: resample b draws from its own stream Fork(b), so
  // any thread count yields the serial result bit for bit.
  Rng root(options.seed);
  const size_t num_resamples = static_cast<size_t>(options.num_resamples);
  std::vector<double> values(num_resamples, 0.0);
  std::vector<uint8_t> valid(num_resamples, 0);
  ParallelFor(0, num_resamples, kResampleGrain, [&](size_t b) {
    Rng rng = root.Fork(b);
    std::vector<int> rl;
    std::vector<double> rs;
    Resample(labels, scores, &rng, &rl, &rs);
    auto value = metric(rl, rs);
    if (value.ok()) {
      values[b] = *value;
      valid[b] = 1;
    }
  });
  std::vector<double> samples;
  samples.reserve(num_resamples);
  for (size_t b = 0; b < num_resamples; ++b) {
    if (valid[b]) samples.push_back(values[b]);
  }
  if (samples.size() < 10) {
    return Status::FailedPrecondition("too few valid bootstrap resamples");
  }
  return Percentiles(std::move(samples), point, options.confidence);
}

}  // namespace

Result<ConfidenceInterval> BootstrapKs(const std::vector<int>& labels,
                                       const std::vector<double>& scores,
                                       const BootstrapOptions& options) {
  return BootstrapMetric(labels, scores, options, KsStatistic);
}

Result<ConfidenceInterval> BootstrapAuc(const std::vector<int>& labels,
                                        const std::vector<double>& scores,
                                        const BootstrapOptions& options) {
  return BootstrapMetric(labels, scores, options, Auc);
}

Result<double> PairedKsWinRate(const std::vector<int>& labels,
                               const std::vector<double>& scores_a,
                               const std::vector<double>& scores_b,
                               const BootstrapOptions& options) {
  LIGHTMIRM_RETURN_NOT_OK(CheckOptions(options));
  if (labels.size() != scores_a.size() ||
      labels.size() != scores_b.size()) {
    return Status::InvalidArgument("paired inputs must align");
  }
  Rng root(options.seed);
  const size_t n = labels.size();
  const size_t num_resamples = static_cast<size_t>(options.num_resamples);
  std::vector<uint8_t> won(num_resamples, 0), ok(num_resamples, 0);
  ParallelFor(0, num_resamples, kResampleGrain, [&](size_t b) {
    Rng rng = root.Fork(b);
    std::vector<int> rl(n);
    std::vector<double> ra(n), rb(n);
    bool pos = false, neg = false;
    for (size_t i = 0; i < n; ++i) {
      const size_t pick = rng.UniformInt(n);
      rl[i] = labels[pick];
      ra[i] = scores_a[pick];
      rb[i] = scores_b[pick];
      (rl[i] == 1 ? pos : neg) = true;
    }
    if (!pos || !neg) return;
    const auto ks_a = KsStatistic(rl, ra);
    const auto ks_b = KsStatistic(rl, rb);
    if (!ks_a.ok() || !ks_b.ok()) return;
    ok[b] = 1;
    if (*ks_a > *ks_b) won[b] = 1;
  });
  int wins = 0, valid = 0;
  for (size_t b = 0; b < num_resamples; ++b) {
    valid += ok[b];
    wins += won[b];
  }
  if (valid < 10) {
    return Status::FailedPrecondition("too few valid bootstrap resamples");
  }
  return static_cast<double>(wins) / static_cast<double>(valid);
}

}  // namespace lightmirm::metrics
