#include "metrics/bootstrap.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "metrics/ks.h"
#include "metrics/roc.h"

namespace lightmirm::metrics {
namespace {

Status CheckOptions(const BootstrapOptions& options) {
  if (options.num_resamples < 10) {
    return Status::InvalidArgument("need at least 10 resamples");
  }
  if (options.confidence <= 0.0 || options.confidence >= 1.0) {
    return Status::InvalidArgument("confidence must be in (0,1)");
  }
  return Status::OK();
}

ConfidenceInterval Percentiles(std::vector<double> samples, double point,
                               double confidence) {
  std::sort(samples.begin(), samples.end());
  const double alpha = (1.0 - confidence) / 2.0;
  const size_t n = samples.size();
  const size_t lo_idx = static_cast<size_t>(alpha * (n - 1));
  const size_t hi_idx = static_cast<size_t>((1.0 - alpha) * (n - 1));
  return ConfidenceInterval{point, samples[lo_idx], samples[hi_idx]};
}

// Resamples (labels, scores) with replacement until both classes appear.
void Resample(const std::vector<int>& labels,
              const std::vector<double>& scores, Rng* rng,
              std::vector<int>* rl, std::vector<double>* rs) {
  const size_t n = labels.size();
  for (int attempt = 0; attempt < 64; ++attempt) {
    rl->clear();
    rs->clear();
    bool pos = false, neg = false;
    for (size_t i = 0; i < n; ++i) {
      const size_t pick = rng->UniformInt(n);
      rl->push_back(labels[pick]);
      rs->push_back(scores[pick]);
      (labels[pick] == 1 ? pos : neg) = true;
    }
    if (pos && neg) return;
  }
}

template <typename MetricFn>
Result<ConfidenceInterval> BootstrapMetric(const std::vector<int>& labels,
                                           const std::vector<double>& scores,
                                           const BootstrapOptions& options,
                                           MetricFn metric) {
  LIGHTMIRM_RETURN_NOT_OK(CheckOptions(options));
  LIGHTMIRM_ASSIGN_OR_RETURN(const double point, metric(labels, scores));
  Rng rng(options.seed);
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(options.num_resamples));
  std::vector<int> rl;
  std::vector<double> rs;
  for (int b = 0; b < options.num_resamples; ++b) {
    Resample(labels, scores, &rng, &rl, &rs);
    auto value = metric(rl, rs);
    if (value.ok()) samples.push_back(*value);
  }
  if (samples.size() < 10) {
    return Status::FailedPrecondition("too few valid bootstrap resamples");
  }
  return Percentiles(std::move(samples), point, options.confidence);
}

}  // namespace

Result<ConfidenceInterval> BootstrapKs(const std::vector<int>& labels,
                                       const std::vector<double>& scores,
                                       const BootstrapOptions& options) {
  return BootstrapMetric(labels, scores, options, KsStatistic);
}

Result<ConfidenceInterval> BootstrapAuc(const std::vector<int>& labels,
                                        const std::vector<double>& scores,
                                        const BootstrapOptions& options) {
  return BootstrapMetric(labels, scores, options, Auc);
}

Result<double> PairedKsWinRate(const std::vector<int>& labels,
                               const std::vector<double>& scores_a,
                               const std::vector<double>& scores_b,
                               const BootstrapOptions& options) {
  LIGHTMIRM_RETURN_NOT_OK(CheckOptions(options));
  if (labels.size() != scores_a.size() ||
      labels.size() != scores_b.size()) {
    return Status::InvalidArgument("paired inputs must align");
  }
  Rng rng(options.seed);
  const size_t n = labels.size();
  int wins = 0, valid = 0;
  std::vector<int> rl(n);
  std::vector<double> ra(n), rb(n);
  for (int b = 0; b < options.num_resamples; ++b) {
    bool pos = false, neg = false;
    for (size_t i = 0; i < n; ++i) {
      const size_t pick = rng.UniformInt(n);
      rl[i] = labels[pick];
      ra[i] = scores_a[pick];
      rb[i] = scores_b[pick];
      (rl[i] == 1 ? pos : neg) = true;
    }
    if (!pos || !neg) continue;
    const auto ks_a = KsStatistic(rl, ra);
    const auto ks_b = KsStatistic(rl, rb);
    if (!ks_a.ok() || !ks_b.ok()) continue;
    ++valid;
    if (*ks_a > *ks_b) ++wins;
  }
  if (valid < 10) {
    return Status::FailedPrecondition("too few valid bootstrap resamples");
  }
  return static_cast<double>(wins) / static_cast<double>(valid);
}

}  // namespace lightmirm::metrics
