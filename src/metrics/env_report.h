// Per-environment evaluation: KS and AUC per province plus the aggregate
// fairness metrics of the paper — mKS/mAUC (mean over environments, overall
// performance) and wKS/wAUC (worst environment, minimax fairness).
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace lightmirm::metrics {

/// Metrics of one environment.
struct EnvMetrics {
  int env = -1;
  std::string name;
  size_t rows = 0;
  double ks = 0.0;
  double auc = 0.0;
};

/// The paper's four headline numbers plus the per-environment breakdown.
struct EnvReport {
  std::vector<EnvMetrics> per_env;
  double mean_ks = 0.0;   ///< mKS
  double worst_ks = 0.0;  ///< wKS
  double mean_auc = 0.0;  ///< mAUC
  double worst_auc = 0.0; ///< wAUC

  /// Environment with the worst KS.
  int worst_ks_env = -1;
};

/// Evaluates `scores` against `dataset` per environment. Environments with
/// fewer than `min_rows` rows or a single class are skipped (they cannot
/// support a KS/AUC estimate); at least one environment must survive.
Result<EnvReport> EvaluatePerEnv(const data::Dataset& dataset,
                                 const std::vector<double>& scores,
                                 size_t min_rows = 50);

/// KS and AUC over all rows pooled together.
struct PooledMetrics {
  double ks = 0.0;
  double auc = 0.0;
};
Result<PooledMetrics> EvaluatePooled(const std::vector<int>& labels,
                                     const std::vector<double>& scores);

}  // namespace lightmirm::metrics
