#include "metrics/roc.h"

#include <algorithm>
#include <numeric>

#include "common/string_util.h"

namespace lightmirm::metrics {
namespace {

Status CheckInputs(const std::vector<int>& labels,
                   const std::vector<double>& scores) {
  if (labels.size() != scores.size()) {
    return Status::InvalidArgument(
        StrFormat("labels (%zu) and scores (%zu) differ in length",
                  labels.size(), scores.size()));
  }
  size_t pos = 0, neg = 0;
  for (int y : labels) {
    if (y == 1) {
      ++pos;
    } else if (y == 0) {
      ++neg;
    } else {
      return Status::InvalidArgument("labels must be 0/1");
    }
  }
  if (pos == 0 || neg == 0) {
    return Status::FailedPrecondition(
        StrFormat("need both classes present (pos=%zu neg=%zu)", pos, neg));
  }
  return Status::OK();
}

}  // namespace

Result<double> Auc(const std::vector<int>& labels,
                   const std::vector<double>& scores) {
  LIGHTMIRM_RETURN_NOT_OK(CheckInputs(labels, scores));
  const size_t n = labels.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });
  // Mann-Whitney with midranks for ties.
  double rank_sum_pos = 0.0;
  size_t num_pos = 0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    const double midrank = 0.5 * static_cast<double>(i + j - 1) + 1.0;
    for (size_t k = i; k < j; ++k) {
      if (labels[order[k]] == 1) {
        rank_sum_pos += midrank;
        ++num_pos;
      }
    }
    i = j;
  }
  const size_t num_neg = n - num_pos;
  const double u = rank_sum_pos - static_cast<double>(num_pos) *
                                      (static_cast<double>(num_pos) + 1.0) /
                                      2.0;
  return u / (static_cast<double>(num_pos) * static_cast<double>(num_neg));
}

Result<std::vector<RocPoint>> RocCurve(const std::vector<int>& labels,
                                       const std::vector<double>& scores) {
  LIGHTMIRM_RETURN_NOT_OK(CheckInputs(labels, scores));
  const size_t n = labels.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  double num_pos = 0.0, num_neg = 0.0;
  for (int y : labels) (y == 1 ? num_pos : num_neg) += 1.0;

  std::vector<RocPoint> curve;
  double tp = 0.0, fp = 0.0;
  size_t i = 0;
  while (i < n) {
    const double threshold = scores[order[i]];
    while (i < n && scores[order[i]] == threshold) {
      if (labels[order[i]] == 1) {
        tp += 1.0;
      } else {
        fp += 1.0;
      }
      ++i;
    }
    curve.push_back(RocPoint{threshold, tp / num_pos, fp / num_neg});
  }
  return curve;
}

}  // namespace lightmirm::metrics
