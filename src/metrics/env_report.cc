#include "metrics/env_report.h"

#include <algorithm>

#include "data/env_split.h"
#include "metrics/ks.h"
#include "metrics/roc.h"

namespace lightmirm::metrics {

Result<EnvReport> EvaluatePerEnv(const data::Dataset& dataset,
                                 const std::vector<double>& scores,
                                 size_t min_rows) {
  if (scores.size() != dataset.NumRows()) {
    return Status::InvalidArgument("scores size != dataset rows");
  }
  const std::vector<std::vector<size_t>> groups = data::GroupByEnv(dataset);
  EnvReport report;
  double sum_ks = 0.0, sum_auc = 0.0;
  double worst_ks = 2.0, worst_auc = 2.0;
  for (size_t e = 0; e < groups.size(); ++e) {
    const std::vector<size_t>& rows = groups[e];
    if (rows.size() < min_rows) continue;
    std::vector<int> labels(rows.size());
    std::vector<double> env_scores(rows.size());
    bool has_pos = false, has_neg = false;
    for (size_t i = 0; i < rows.size(); ++i) {
      labels[i] = dataset.labels()[rows[i]];
      env_scores[i] = scores[rows[i]];
      (labels[i] == 1 ? has_pos : has_neg) = true;
    }
    if (!has_pos || !has_neg) continue;
    LIGHTMIRM_ASSIGN_OR_RETURN(const double ks,
                               KsStatistic(labels, env_scores));
    LIGHTMIRM_ASSIGN_OR_RETURN(const double auc, Auc(labels, env_scores));
    EnvMetrics m;
    m.env = static_cast<int>(e);
    m.name = dataset.EnvName(static_cast<int>(e));
    m.rows = rows.size();
    m.ks = ks;
    m.auc = auc;
    report.per_env.push_back(m);
    sum_ks += ks;
    sum_auc += auc;
    if (ks < worst_ks) {
      worst_ks = ks;
      report.worst_ks_env = static_cast<int>(e);
    }
    worst_auc = std::min(worst_auc, auc);
  }
  if (report.per_env.empty()) {
    return Status::FailedPrecondition(
        "no environment had enough rows of both classes to evaluate");
  }
  const double count = static_cast<double>(report.per_env.size());
  report.mean_ks = sum_ks / count;
  report.mean_auc = sum_auc / count;
  report.worst_ks = worst_ks;
  report.worst_auc = worst_auc;
  return report;
}

Result<PooledMetrics> EvaluatePooled(const std::vector<int>& labels,
                                     const std::vector<double>& scores) {
  PooledMetrics m;
  LIGHTMIRM_ASSIGN_OR_RETURN(m.ks, KsStatistic(labels, scores));
  LIGHTMIRM_ASSIGN_OR_RETURN(m.auc, Auc(labels, scores));
  return m;
}

}  // namespace lightmirm::metrics
