// Isotonic-regression score calibration (pool-adjacent-violators). The
// paper's fairness notion is calibration-style; this post-processor maps
// raw model scores to calibrated default probabilities without changing
// their ranking (KS/AUC are preserved exactly).
#pragma once

#include <vector>

#include "common/result.h"

namespace lightmirm::metrics {

/// A monotone step-function calibrator fit by PAV.
class IsotonicCalibrator {
 public:
  /// Fits score -> P(default) on (scores, labels). Requires both classes.
  static Result<IsotonicCalibrator> Fit(const std::vector<double>& scores,
                                        const std::vector<int>& labels);

  /// Calibrated probability for a raw score (piecewise-constant with
  /// midpoint interpolation between blocks).
  double Calibrate(double score) const;

  /// Calibrates a batch.
  std::vector<double> CalibrateAll(const std::vector<double>& scores) const;

  /// Number of monotone blocks the PAV fit produced.
  size_t num_blocks() const { return thresholds_.size(); }

 private:
  // Block i covers scores in [thresholds_[i], thresholds_[i+1]) and maps
  // to values_[i]; values_ is non-decreasing.
  std::vector<double> thresholds_;
  std::vector<double> values_;
};

}  // namespace lightmirm::metrics
