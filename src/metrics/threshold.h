// Threshold-based operating metrics: confusion matrices, bad-debt-rate vs
// refusal-rate trade-off curves (the paper's online evaluation, Fig 5).
#pragma once

#include <vector>

#include "common/result.h"

namespace lightmirm::metrics {

/// Confusion counts at a decision threshold (score >= threshold -> predict
/// default -> refuse the loan).
struct Confusion {
  int64_t tp = 0;  ///< defaulter refused
  int64_t fp = 0;  ///< good customer refused
  int64_t tn = 0;  ///< good customer approved
  int64_t fn = 0;  ///< defaulter approved (becomes bad debt)

  double TruePositiveRate() const;
  double FalsePositiveRate() const;
  double Precision() const;
  double Accuracy() const;
};

/// Computes the confusion matrix at `threshold`.
Result<Confusion> ConfusionAt(const std::vector<int>& labels,
                              const std::vector<double>& scores,
                              double threshold);

/// One point of the online-style trade-off curve: refusing every
/// application with score >= threshold yields this refusal rate and this
/// bad-debt rate among approved loans.
struct TradeOffPoint {
  double threshold = 0.0;
  double refusal_rate = 0.0;   ///< fraction of applications refused
  double fp_rate = 0.0;        ///< fraction of good customers refused
  double bad_debt_rate = 0.0;  ///< default rate among approved loans
};

/// Sweeps `num_points` evenly spaced thresholds over [0, 1] and reports the
/// trade-off curve (Fig 5).
Result<std::vector<TradeOffPoint>> TradeOffCurve(
    const std::vector<int>& labels, const std::vector<double>& scores,
    int num_points = 101);

/// Bad-debt rate among approved loans at `threshold` (approve score <
/// threshold). Returns 0 when nothing is approved.
double BadDebtRateAt(const std::vector<int>& labels,
                     const std::vector<double>& scores, double threshold);

}  // namespace lightmirm::metrics
