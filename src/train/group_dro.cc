#include "train/group_dro.h"

#include <cmath>

namespace lightmirm::train {

Result<TrainedPredictor> GroupDroTrainer::Fit(const TrainData& data) {
  Rng rng(options_.seed);
  linear::LogisticModel model = linear::LogisticModel::RandomInit(
      data.x->cols(), options_.init_scale, &rng);
  LIGHTMIRM_ASSIGN_OR_RETURN(std::unique_ptr<linear::Optimizer> opt,
                             linear::Optimizer::Create(options_.optimizer));
  const linear::LossContext ctx = data.Context();
  const size_t num_tasks = data.NumTasks();
  std::vector<double> q(num_tasks, 1.0 / static_cast<double>(num_tasks));
  const double l2 = options_.l2 * dro_.l2_multiplier;

  linear::ParamVec grad, env_grad;
  BestModelTracker tracker(&options_);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    WallTimer epoch_watch;
    grad.assign(model.params().size(), 0.0);
    {
      StepTimer::Scope scope(options_.timer, kStepBackward);
      // Per-group risks and gradients.
      double q_total = 0.0;
      std::vector<double> risks(num_tasks);
      std::vector<linear::ParamVec> grads(num_tasks);
      for (size_t t = 0; t < num_tasks; ++t) {
        risks[t] =
            linear::BceLossGrad(ctx, data.env_rows[t], model.params(),
                                &grads[t]);
      }
      // Exponentiated-gradient ascent on q.
      for (size_t t = 0; t < num_tasks; ++t) {
        q[t] *= std::exp(dro_.group_step * risks[t]);
        q_total += q[t];
      }
      for (double& v : q) v /= q_total;
      // Descend on the q-weighted risk.
      for (size_t t = 0; t < num_tasks; ++t) {
        for (size_t j = 0; j < grad.size(); ++j) {
          grad[j] += q[t] * grads[t][j];
        }
      }
      linear::AddL2(model.params(), l2, &grad);
      opt->Step(grad, &model.mutable_params());
    }
    if (options_.timer != nullptr) {
      options_.timer->Add(kStepEpoch, epoch_watch.Seconds());
    }
    if (options_.epoch_callback) options_.epoch_callback(epoch, model);
    if (!tracker.Observe(model)) break;
  }
  tracker.Finalize(&model);
  TrainedPredictor predictor;
  predictor.global = std::move(model);
  return predictor;
}

}  // namespace lightmirm::train
