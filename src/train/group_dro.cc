#include "train/group_dro.h"

#include <cmath>

namespace lightmirm::train {

Result<TrainedPredictor> GroupDroTrainer::Fit(const TrainData& data) {
  Rng rng(options_.seed);
  linear::LogisticModel model = linear::LogisticModel::RandomInit(
      data.x->cols(), options_.init_scale, &rng);
  LIGHTMIRM_ASSIGN_OR_RETURN(std::unique_ptr<linear::Optimizer> opt,
                             linear::Optimizer::Create(options_.optimizer));
  const linear::LossContext ctx = data.Context();
  const size_t num_tasks = data.NumTasks();
  std::vector<double> q(num_tasks, 1.0 / static_cast<double>(num_tasks));
  const double l2 = options_.l2 * dro_.l2_multiplier;
  const StepTelemetry telemetry = StepTelemetry::From(options_);
  const MetaTrajectoryRecorder trajectories(telemetry, data.env_ids, "risk",
                                            "weighted_risk");

  linear::ParamVec grad, env_grad;
  std::vector<double> risks(num_tasks);
  BestModelTracker tracker(&options_);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    double weighted_risk = 0.0;
    grad.assign(model.params().size(), 0.0);
    {
      StepSpan epoch_span(telemetry, kStepEpoch, "epoch");
      StepSpan scope(telemetry, kStepBackward);
      // Per-group risks and gradients.
      double q_total = 0.0;
      std::vector<linear::ParamVec> grads(num_tasks);
      for (size_t t = 0; t < num_tasks; ++t) {
        risks[t] =
            linear::BceLossGrad(ctx, data.env_rows[t], model.params(),
                                &grads[t]);
      }
      // Exponentiated-gradient ascent on q.
      for (size_t t = 0; t < num_tasks; ++t) {
        q[t] *= std::exp(dro_.group_step * risks[t]);
        q_total += q[t];
      }
      for (double& v : q) v /= q_total;
      // Descend on the q-weighted risk.
      for (size_t t = 0; t < num_tasks; ++t) {
        weighted_risk += q[t] * risks[t];
        for (size_t j = 0; j < grad.size(); ++j) {
          grad[j] += q[t] * grads[t][j];
        }
      }
      linear::AddL2(model.params(), l2, &grad);
      opt->Step(grad, &model.mutable_params());
    }
    trajectories.Record(risks, weighted_risk);
    if (options_.epoch_callback) options_.epoch_callback(epoch, model);
    if (!tracker.Observe(model)) break;
  }
  tracker.Finalize(&model);
  TrainedPredictor predictor;
  predictor.global = std::move(model);
  return predictor;
}

}  // namespace lightmirm::train
