#include "train/fine_tune.h"

namespace lightmirm::train {

Result<TrainedPredictor> FineTuneTrainer::Fit(const TrainData& data) {
  ErmTrainer erm(options_);
  LIGHTMIRM_ASSIGN_OR_RETURN(TrainedPredictor predictor, erm.Fit(data));

  const linear::LossContext ctx = data.Context();
  const linear::ParamVec& base = predictor.global.params();
  linear::ParamVec grad;
  for (size_t t = 0; t < data.NumTasks(); ++t) {
    linear::LogisticModel env_model = predictor.global;
    linear::OptimizerOptions opt_options = options_.optimizer;
    opt_options.kind = "adam";
    opt_options.learning_rate = ft_.fine_tune_lr;
    LIGHTMIRM_ASSIGN_OR_RETURN(std::unique_ptr<linear::Optimizer> opt,
                               linear::Optimizer::Create(opt_options));
    for (int epoch = 0; epoch < ft_.fine_tune_epochs; ++epoch) {
      linear::BceLossGrad(ctx, data.env_rows[t], env_model.params(), &grad);
      linear::AddL2(env_model.params(), options_.l2, &grad);
      // Proximal pull toward the pooled solution.
      if (ft_.proximal > 0.0) {
        for (size_t j = 0; j < grad.size(); ++j) {
          grad[j] += ft_.proximal * (env_model.params()[j] - base[j]);
        }
      }
      opt->Step(grad, &env_model.mutable_params());
    }
    predictor.per_env.emplace(data.env_ids[t], std::move(env_model));
  }
  return predictor;
}

}  // namespace lightmirm::train
