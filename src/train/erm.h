// ERM baseline: minimizes the pooled binary cross-entropy over all
// environments (the conventional learning paradigm the paper argues lacks
// minimax fairness).
#pragma once

#include "train/trainer.h"

namespace lightmirm::train {

/// Full-batch ERM with the configured outer optimizer.
class ErmTrainer : public Trainer {
 public:
  explicit ErmTrainer(TrainerOptions options) : options_(std::move(options)) {}

  std::string Name() const override { return "ERM"; }
  Result<TrainedPredictor> Fit(const TrainData& data) override;

  const TrainerOptions& options() const { return options_; }

 private:
  TrainerOptions options_;
};

}  // namespace lightmirm::train
