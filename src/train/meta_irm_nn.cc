#include "train/meta_irm_nn.h"

#include <cmath>

#include "common/string_util.h"

namespace lightmirm::train {

using autodiff::Tensor;
using autodiff::Var;

std::vector<double> NnPredictor::Predict(const Tensor& features) const {
  const Var logits = mlp_.Forward(Var::Constant(features));
  std::vector<double> out(features.rows());
  for (size_t r = 0; r < out.size(); ++r) {
    const double z = logits.value().At(r, 0);
    out[r] = 1.0 / (1.0 + std::exp(-z));
  }
  return out;
}

Result<NnEnvData> NnEnvData::Build(const Matrix& features,
                                   const std::vector<int>& labels,
                                   const std::vector<int>& envs,
                                   size_t min_env_rows) {
  const size_t n = features.rows();
  if (labels.size() != n || envs.size() != n) {
    return Status::InvalidArgument("labels/envs size mismatch");
  }
  int max_env = -1;
  for (int e : envs) {
    if (e < 0) return Status::InvalidArgument("negative env id");
    max_env = std::max(max_env, e);
  }
  std::vector<std::vector<size_t>> groups(static_cast<size_t>(max_env + 1));
  for (size_t i = 0; i < n; ++i) {
    groups[static_cast<size_t>(envs[i])].push_back(i);
  }
  NnEnvData data;
  for (const std::vector<size_t>& rows : groups) {
    if (rows.size() < min_env_rows) continue;
    Tensor x(rows.size(), features.cols());
    Tensor y(rows.size(), 1);
    for (size_t r = 0; r < rows.size(); ++r) {
      for (size_t c = 0; c < features.cols(); ++c) {
        x.At(r, c) = features.At(rows[r], c);
      }
      y.At(r, 0) = labels[rows[r]];
    }
    data.env_x.push_back(std::move(x));
    data.env_y.push_back(std::move(y));
  }
  if (data.env_x.size() < 2) {
    return Status::FailedPrecondition(
        "need at least two environments with enough rows");
  }
  return data;
}

namespace {

Var EnvLoss(const Tensor& x, const Tensor& y, const autodiff::nn::Mlp& mlp) {
  return autodiff::BceWithLogits(mlp.Forward(Var::Constant(x)),
                                 Var::Constant(y));
}

}  // namespace

Result<NnPredictor> TrainNnMetaIrm(const NnEnvData& data,
                                   size_t num_features,
                                   const NnMetaIrmOptions& options) {
  const size_t num_envs = data.env_x.size();
  if (options.inner_lr <= 0.0 || options.outer_lr <= 0.0) {
    return Status::InvalidArgument("learning rates must be positive");
  }
  for (const Tensor& x : data.env_x) {
    if (x.cols() != num_features) {
      return Status::InvalidArgument(
          StrFormat("env tensor has %zu features, expected %zu", x.cols(),
                    num_features));
    }
  }

  Rng rng(options.seed);
  std::vector<size_t> layers = {num_features};
  for (size_t h : options.hidden) layers.push_back(h);
  layers.push_back(1);
  LIGHTMIRM_ASSIGN_OR_RETURN(
      autodiff::nn::Mlp mlp,
      autodiff::nn::Mlp::Create(layers, options.init_scale, &rng,
                                options.activation));

  LIGHTMIRM_ASSIGN_OR_RETURN(
      MetaLossReplayQueue proto,
      MetaLossReplayQueue::Create(options.mrq_length, options.gamma));
  std::vector<MetaLossReplayQueue> queues(num_envs, proto);

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    const std::vector<Var> params = mlp.Params();
    std::vector<Var> meta_loss_vars;   // differentiable parts
    std::vector<double> replayed(num_envs, 0.0);

    for (size_t m = 0; m < num_envs; ++m) {
      // Inner step on environment m (create_graph for second order).
      const Var inner = EnvLoss(data.env_x[m], data.env_y[m], mlp);
      LIGHTMIRM_ASSIGN_OR_RETURN(
          const std::vector<Var> inner_grads,
          autodiff::Grad(inner, params, {.create_graph = true}));
      std::vector<Var> adapted(params.size());
      for (size_t j = 0; j < params.size(); ++j) {
        adapted[j] = autodiff::Sub(
            params[j], autodiff::MulScalar(inner_grads[j], options.inner_lr));
      }
      LIGHTMIRM_ASSIGN_OR_RETURN(const autodiff::nn::Mlp adapted_mlp,
                                 mlp.WithParams(adapted));

      if (options.light) {
        // Environment sampling + replaying: only the sampled environment's
        // loss carries gradients; older queue entries are constants.
        size_t s = rng.UniformInt(num_envs - 1);
        if (s >= m) ++s;
        const Var sampled =
            EnvLoss(data.env_x[s], data.env_y[s], adapted_mlp);
        queues[m].Push(sampled.value().ScalarValue());
        replayed[m] = queues[m].ReplayedLoss();
        // Differentiable part: newest slot (weight gamma^0 = 1) plus the
        // constant remainder of the queue.
        const double history = replayed[m] - sampled.value().ScalarValue();
        meta_loss_vars.push_back(
            autodiff::AddScalar(sampled, history));
      } else {
        Var meta = Var::Scalar(0.0);
        for (size_t other = 0; other < num_envs; ++other) {
          if (other == m) continue;
          meta = autodiff::Add(
              meta, EnvLoss(data.env_x[other], data.env_y[other],
                            adapted_mlp));
        }
        replayed[m] = meta.value().ScalarValue();
        meta_loss_vars.push_back(meta);
      }
    }

    // Outer objective: sum of meta-losses + lambda * sigma.
    Var total = Var::Scalar(0.0);
    for (const Var& v : meta_loss_vars) total = autodiff::Add(total, v);
    if (options.lambda != 0.0 && num_envs > 1) {
      const Var sigma =
          autodiff::StdDev(autodiff::StackScalars(meta_loss_vars), 1e-12);
      total = autodiff::Add(total, autodiff::MulScalar(sigma, options.lambda));
    }
    LIGHTMIRM_ASSIGN_OR_RETURN(const std::vector<Var> grads,
                               autodiff::Grad(total, params));
    LIGHTMIRM_RETURN_NOT_OK(mlp.ApplySgd(grads, options.outer_lr));
  }
  return NnPredictor(std::move(mlp));
}

}  // namespace lightmirm::train
