// V-REx baseline (Krueger et al. 2021): minimizes the mean of the
// per-environment risks plus beta times their variance, shrinking the
// performance gap between environments.
#pragma once

#include "train/trainer.h"

namespace lightmirm::train {

struct VRexOptions {
  /// Weight of the risk-variance penalty.
  double beta = 5.0;
};

class VRexTrainer : public Trainer {
 public:
  VRexTrainer(TrainerOptions options, VRexOptions vrex)
      : options_(std::move(options)), vrex_(vrex) {}

  std::string Name() const override { return "V-REx"; }
  Result<TrainedPredictor> Fit(const TrainData& data) override;

 private:
  TrainerOptions options_;
  VRexOptions vrex_;
};

}  // namespace lightmirm::train
