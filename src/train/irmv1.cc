#include "train/irmv1.h"

#include <cmath>

namespace lightmirm::train {
namespace {

// Computes, for one environment:
//   risk        = mean BCE
//   risk_grad   += mean BCE gradient (accumulated with coefficient 1/M)
//   D           = d/dw R(w*z)|_{w=1} = mean (p - y) * z
//   D_grad      = grad_theta D = mean [(p - y) + s z] * x_tilde
// and returns D so the caller can add 2*lambda*D*D_grad.
double EnvPenaltyTerms(const linear::LossContext& ctx,
                       const std::vector<size_t>& rows,
                       const linear::ParamVec& params, double inv_m,
                       linear::ParamVec* risk_grad,
                       linear::ParamVec* d_grad, double* risk_out) {
  d_grad->assign(params.size(), 0.0);
  double risk = 0.0, d_val = 0.0, total_w = 0.0;
  linear::ParamVec local_grad(params.size(), 0.0);
  for (size_t r : rows) {
    const double w = ctx.weights != nullptr ? (*ctx.weights)[r] : 1.0;
    const double z = ctx.x->RowDot(r, params) + params.back();
    const double p = linear::Sigmoid(z);
    const int y = (*ctx.labels)[r];
    risk -= w * (y == 1 ? std::log(std::max(p, 1e-12))
                        : std::log(std::max(1.0 - p, 1e-12)));
    const double residual = p - static_cast<double>(y);
    const double s = p * (1.0 - p);
    // Risk gradient.
    ctx.x->AddScaledRow(r, w * residual, &local_grad);
    local_grad.back() += w * residual;
    // Dummy-classifier derivative and its gradient.
    d_val += w * residual * z;
    const double coeff = w * (residual + s * z);
    ctx.x->AddScaledRow(r, coeff, d_grad);
    d_grad->back() += coeff;
    total_w += w;
  }
  const double inv_w = 1.0 / total_w;
  risk *= inv_w;
  d_val *= inv_w;
  for (size_t j = 0; j < params.size(); ++j) {
    (*risk_grad)[j] += inv_m * inv_w * local_grad[j];
    (*d_grad)[j] *= inv_w;
  }
  *risk_out = risk;
  return d_val;
}

}  // namespace

Result<TrainedPredictor> IrmV1Trainer::Fit(const TrainData& data) {
  Rng rng(options_.seed);
  linear::LogisticModel model = linear::LogisticModel::RandomInit(
      data.x->cols(), options_.init_scale, &rng);
  LIGHTMIRM_ASSIGN_OR_RETURN(std::unique_ptr<linear::Optimizer> opt,
                             linear::Optimizer::Create(options_.optimizer));
  const linear::LossContext ctx = data.Context();
  const size_t num_tasks = data.NumTasks();
  const double inv_m = 1.0 / static_cast<double>(num_tasks);
  const StepTelemetry telemetry = StepTelemetry::From(options_);
  const MetaTrajectoryRecorder trajectories(telemetry, data.env_ids, "risk",
                                            "grad_penalty");

  linear::ParamVec grad, d_grad;
  std::vector<double> risks(num_tasks);
  BestModelTracker tracker(&options_);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    double penalty = 0.0;
    {
      StepSpan epoch_span(telemetry, kStepEpoch, "epoch");
      StepSpan scope(telemetry, kStepBackward);
      grad.assign(model.params().size(), 0.0);
      const double lambda =
          epoch >= irm_.penalty_anneal_epochs ? irm_.penalty_weight : 0.0;
      for (size_t t = 0; t < num_tasks; ++t) {
        const double d_val =
            EnvPenaltyTerms(ctx, data.env_rows[t], model.params(), inv_m,
                            &grad, &d_grad, &risks[t]);
        penalty += lambda * inv_m * d_val * d_val;
        if (lambda > 0.0) {
          const double coeff = inv_m * 2.0 * lambda * d_val;
          for (size_t j = 0; j < grad.size(); ++j) {
            grad[j] += coeff * d_grad[j];
          }
        }
      }
      linear::AddL2(model.params(), options_.l2, &grad);
      opt->Step(grad, &model.mutable_params());
    }
    trajectories.Record(risks, penalty);
    if (options_.epoch_callback) options_.epoch_callback(epoch, model);
    if (!tracker.Observe(model)) break;
  }
  tracker.Finalize(&model);
  TrainedPredictor predictor;
  predictor.global = std::move(model);
  return predictor;
}

}  // namespace lightmirm::train
