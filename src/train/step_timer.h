// Formatting of per-step training timings into the layout of Table III /
// Figure 7 of the paper.
#pragma once

#include <string>
#include <vector>

#include "common/timer.h"

namespace lightmirm::train {

/// One method's timing breakdown.
struct StepTimeRow {
  std::string step;
  double mean_seconds = 0.0;
  double total_seconds = 0.0;
  double fraction_of_total = 0.0;  ///< share of the epoch time (Fig 7)
};

/// Extracts the Table III rows (mean seconds per call for each training
/// step, total seconds for "the whole epoch") from a StepTimer populated by
/// a trainer. Steps that never ran are reported with zeros.
std::vector<StepTimeRow> SummarizeStepTimes(const StepTimer& timer);

/// Renders a side-by-side Table III given per-method timers.
std::string FormatStepTimeTable(
    const std::vector<std::string>& method_names,
    const std::vector<const StepTimer*>& timers);

}  // namespace lightmirm::train
