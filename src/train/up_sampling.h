// Up-sampling baseline: re-weights rows so underrepresented environments
// count as much as a fixed fraction of the largest one, optionally also
// re-balancing the positive class ("we could adjust the rate of negative
// samples in the loss function", Table I baseline). Implemented as weighted
// ERM — mathematically identical to replicating rows, without the memory
// blow-up.
#pragma once

#include "train/trainer.h"

namespace lightmirm::train {

struct UpSamplingTrainerOptions {
  /// Environments are weighted up to `target_fraction` of the largest
  /// environment's row count.
  double target_fraction = 0.5;
  /// If > 0, additionally re-balance the positive class to this share of
  /// total weight.
  double target_pos_rate = 0.0;
};

class UpSamplingTrainer : public Trainer {
 public:
  UpSamplingTrainer(TrainerOptions options, UpSamplingTrainerOptions up)
      : options_(std::move(options)), up_(up) {}

  std::string Name() const override { return "Up Sampling"; }
  Result<TrainedPredictor> Fit(const TrainData& data) override;

 private:
  TrainerOptions options_;
  UpSamplingTrainerOptions up_;
};

}  // namespace lightmirm::train
