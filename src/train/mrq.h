// Meta-loss Replaying Queue (MRQ) — the fixed-length loss history of
// LightMIRM (Eq. 8 / Eq. 9 of the paper). One queue per environment stores
// the meta-losses of previously sampled environments; the replayed
// meta-loss is the decay-weighted sum
//   R_meta = sum_{i=1..L} gamma^{L-i} * H^i,
// paying more attention to the most recent entries. Elements start at zero
// (Algorithm 2, initialization).
#pragma once

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace lightmirm::train {

class MetaLossReplayQueue {
 public:
  /// Creates a queue of `length` zeros with decay `gamma`. Errors are
  /// reported through Create; this constructor trusts its inputs.
  MetaLossReplayQueue(size_t length, double gamma);

  /// Validating factory: length >= 1, gamma in (0, 1].
  static Result<MetaLossReplayQueue> Create(size_t length, double gamma);

  /// Eq. 8: shifts entries forward one slot and stores `loss` in the last.
  void Push(double loss);

  /// Eq. 9: the decay-weighted replayed meta-loss.
  double ReplayedLoss() const;

  /// Weight gamma^{L-i} applied to slot i (1-based, i = L is the newest).
  double SlotWeight(size_t i) const;

  size_t length() const { return values_.size(); }
  double gamma() const { return gamma_; }

  /// Slot values, oldest first (slot 1 .. slot L).
  const std::vector<double>& values() const { return values_; }

  /// Number of Push() calls so far.
  size_t pushes() const { return pushes_; }

 private:
  std::vector<double> values_;
  double gamma_;
  size_t pushes_ = 0;
};

}  // namespace lightmirm::train
