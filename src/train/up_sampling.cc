#include "train/up_sampling.h"

#include <algorithm>

#include "train/erm.h"

namespace lightmirm::train {

Result<TrainedPredictor> UpSamplingTrainer::Fit(const TrainData& data) {
  if (up_.target_fraction <= 0.0 || up_.target_fraction > 1.0) {
    return Status::InvalidArgument("target_fraction must be in (0,1]");
  }
  size_t max_count = 0;
  for (const auto& rows : data.env_rows) {
    max_count = std::max(max_count, rows.size());
  }
  const double target =
      up_.target_fraction * static_cast<double>(max_count);

  std::vector<double> weights(data.x->rows(), 1.0);
  for (const auto& rows : data.env_rows) {
    const double count = static_cast<double>(rows.size());
    if (count >= target) continue;
    const double w = target / count;
    for (size_t r : rows) weights[r] = w;
  }
  if (up_.target_pos_rate > 0.0 && up_.target_pos_rate < 1.0) {
    double pos_w = 0.0, total_w = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      total_w += weights[i];
      if ((*data.labels)[i] == 1) pos_w += weights[i];
    }
    if (pos_w > 0.0 && pos_w < total_w) {
      const double pos_scale = up_.target_pos_rate / (pos_w / total_w);
      const double neg_scale =
          (1.0 - up_.target_pos_rate) / (1.0 - pos_w / total_w);
      for (size_t i = 0; i < weights.size(); ++i) {
        weights[i] *= (*data.labels)[i] == 1 ? pos_scale : neg_scale;
      }
    }
  }
  // Fold pre-existing weights in (if any) and run weighted ERM.
  if (data.weights != nullptr) {
    for (size_t i = 0; i < weights.size(); ++i) {
      weights[i] *= (*data.weights)[i];
    }
  }
  TrainData weighted = data;
  weighted.weights = &weights;
  ErmTrainer erm(options_);
  return erm.Fit(weighted);
}

}  // namespace lightmirm::train
