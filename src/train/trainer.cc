#include "train/trainer.h"

#include <algorithm>

#include "common/string_util.h"
#include "train/meta_irm.h"

namespace lightmirm::train {

MetaTrajectoryRecorder::MetaTrajectoryRecorder(const StepTelemetry& telemetry,
                                               const std::vector<int>& env_ids,
                                               const char* loss_name,
                                               const char* penalty_name) {
  if (telemetry.metrics == nullptr) return;
  env_series_.reserve(env_ids.size());
  for (int id : env_ids) {
    env_series_.push_back(telemetry.metrics->GetSeries(
        telemetry.prefix + loss_name + ".env_" + std::to_string(id)));
  }
  penalty_series_ =
      telemetry.metrics->GetSeries(telemetry.prefix + penalty_name);
}

void MetaTrajectoryRecorder::Record(
    const std::vector<double>& env_losses) const {
  Record(env_losses, PopulationStdDev(env_losses));
}

void MetaTrajectoryRecorder::Record(const std::vector<double>& env_losses,
                                    double penalty) const {
  if (penalty_series_ == nullptr) return;
  const size_t n = std::min(env_series_.size(), env_losses.size());
  for (size_t t = 0; t < n; ++t) env_series_[t]->Append(env_losses[t]);
  penalty_series_->Append(penalty);
}

Result<TrainData> TrainData::Create(const linear::FeatureMatrix* x,
                                    const std::vector<int>* labels,
                                    const std::vector<int>* envs,
                                    size_t min_env_rows,
                                    const std::vector<double>* weights,
                                    const std::vector<size_t>* include_rows) {
  if (x == nullptr || labels == nullptr || envs == nullptr) {
    return Status::InvalidArgument("x, labels and envs must be non-null");
  }
  const size_t n = x->rows();
  if (labels->size() != n || envs->size() != n) {
    return Status::InvalidArgument(
        StrFormat("size mismatch: x has %zu rows, labels %zu, envs %zu", n,
                  labels->size(), envs->size()));
  }
  if (weights != nullptr && weights->size() != n) {
    return Status::InvalidArgument("weights size mismatch");
  }
  int max_env = -1;
  for (int e : *envs) {
    if (e < 0) return Status::InvalidArgument("negative environment id");
    max_env = std::max(max_env, e);
  }
  std::vector<std::vector<size_t>> groups(
      static_cast<size_t>(max_env + 1));
  TrainData data;
  if (include_rows == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      groups[static_cast<size_t>((*envs)[i])].push_back(i);
    }
    data.all_rows = linear::AllRows(n);
  } else {
    for (size_t i : *include_rows) {
      if (i >= n) return Status::OutOfRange("include_rows index out of range");
      groups[static_cast<size_t>((*envs)[i])].push_back(i);
    }
    data.all_rows = *include_rows;
  }
  data.x = x;
  data.labels = labels;
  data.weights = weights;
  for (size_t e = 0; e < groups.size(); ++e) {
    if (groups[e].size() >= min_env_rows) {
      data.env_rows.push_back(std::move(groups[e]));
      data.env_ids.push_back(static_cast<int>(e));
    }
  }
  if (data.env_rows.empty()) {
    return Status::FailedPrecondition(StrFormat(
        "no environment has >= %zu rows", min_env_rows));
  }
  return data;
}

bool BestModelTracker::Observe(const linear::LogisticModel& model) {
  if (!options_->validation_fn) return true;
  const double score = options_->validation_fn(model);
  if (score > best_score_) {
    best_score_ = score;
    best_params_ = model.params();
    since_best_ = 0;
  } else {
    ++since_best_;
    if (options_->early_stop_patience > 0 &&
        since_best_ >= options_->early_stop_patience) {
      return false;
    }
  }
  return true;
}

void BestModelTracker::Finalize(linear::LogisticModel* model) const {
  if (!best_params_.empty()) model->set_params(best_params_);
}

std::vector<double> TrainedPredictor::Predict(
    const linear::FeatureMatrix& x, const std::vector<int>* envs) const {
  std::vector<double> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    const linear::LogisticModel* model = &global;
    if (envs != nullptr && !per_env.empty()) {
      const auto it = per_env.find((*envs)[r]);
      if (it != per_env.end()) model = &it->second;
    }
    out[r] = model->PredictRow(x, r);
  }
  return out;
}

}  // namespace lightmirm::train
