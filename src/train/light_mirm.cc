#include "train/light_mirm.h"

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "train/meta_irm.h"
#include "train/mrq.h"

namespace lightmirm::train {

Status LightMirmOuterGradient(const linear::LossContext& ctx,
                              const TrainData& data,
                              const linear::ParamVec& params,
                              const LightMirmOptions& options, Rng* rng,
                              const StepTelemetry& telemetry,
                              std::vector<MetaLossReplayQueue>* queues,
                              MetaStepOutput* out) {
  const size_t num_tasks = data.NumTasks();
  if (queues->size() != num_tasks) {
    return Status::InvalidArgument("need one MRQ per task");
  }
  const size_t dim = params.size();
  std::vector<linear::ParamVec> theta_bar(num_tasks);
  std::vector<linear::ParamVec> sampled_grads(num_tasks);
  out->meta_losses.assign(num_tasks, 0.0);
  obs::Histogram* env_task_seconds =
      telemetry.metrics != nullptr
          ? telemetry.metrics->GetHistogram(telemetry.prefix +
                                            "inner.env_task.seconds")
          : nullptr;

  // Inner loop (Algorithm 2, lines 6-7). Each task m is independent given
  // theta, so the inner steps run environment-parallel; every task writes
  // only its own theta_bar[m].
  {
    StepSpan scope(telemetry, kStepInnerOptimization);
    ParallelFor(0, num_tasks, 1, [&](size_t m) {
      WallTimer task_watch;
      linear::ParamVec grad_m;
      linear::BceLossGrad(ctx, data.env_rows[m], params, &grad_m);
      theta_bar[m] = params;
      for (size_t j = 0; j < dim; ++j) {
        theta_bar[m][j] -= options.inner_lr * grad_m[j];
      }
      if (env_task_seconds != nullptr) {
        env_task_seconds->Record(task_watch.Seconds());
      }
    });
  }

  // Environment sampling + meta-loss replaying (lines 8-10): one sampled
  // environment per task, pushed through the MRQ. The draws consume the
  // RNG serially in task order (the exact stream the serial loop used);
  // only the loss/gradient evaluations run in parallel, and the MRQ pushes
  // replay serially in task order afterwards.
  {
    StepSpan scope(telemetry, kStepMetaLosses);
    std::vector<size_t> sampled_env(num_tasks);
    for (size_t m = 0; m < num_tasks; ++m) {
      size_t s = rng->UniformInt(num_tasks - 1);
      if (s >= m) ++s;  // s_m != m
      sampled_env[m] = s;
    }
    std::vector<double> sampled_loss(num_tasks, 0.0);
    ParallelFor(0, num_tasks, 1, [&](size_t m) {
      sampled_loss[m] =
          linear::BceLossGrad(ctx, data.env_rows[sampled_env[m]],
                              theta_bar[m], &sampled_grads[m]);
    });
    for (size_t m = 0; m < num_tasks; ++m) {
      (*queues)[m].Push(sampled_loss[m]);
      out->meta_losses[m] = (*queues)[m].ReplayedLoss();
    }
  }

  // Outer gradient (lines 12-13). Only the newest queue element depends on
  // the current theta_bar_m, and its decay weight is gamma^0 = 1, so the
  // gradient of the replayed meta-loss w.r.t. theta_bar_m is exactly the
  // sampled environment's gradient. The per-task HVPs run in parallel; the
  // accumulation happens serially in task order, so the sum matches the
  // serial loop bit for bit.
  {
    StepSpan scope(telemetry, kStepBackward);
    const std::vector<double> coeffs =
        OuterCoefficients(out->meta_losses, options.lambda);
    out->outer_grad.assign(dim, 0.0);
    std::vector<linear::ParamVec> hvs;
    if (options.second_order) {
      hvs.resize(num_tasks);
      ParallelFor(0, num_tasks, 1, [&](size_t m) {
        linear::BceHvp(ctx, data.env_rows[m], params, sampled_grads[m],
                       &hvs[m]);
      });
    }
    for (size_t m = 0; m < num_tasks; ++m) {
      if (options.second_order) {
        for (size_t j = 0; j < dim; ++j) {
          out->outer_grad[j] +=
              coeffs[m] * (sampled_grads[m][j] - options.inner_lr * hvs[m][j]);
        }
      } else {
        for (size_t j = 0; j < dim; ++j) {
          out->outer_grad[j] += coeffs[m] * sampled_grads[m][j];
        }
      }
    }
  }
  return Status::OK();
}

Result<TrainedPredictor> LightMirmTrainer::Fit(const TrainData& data) {
  const size_t num_tasks = data.NumTasks();
  if (num_tasks < 2) {
    return Status::FailedPrecondition(
        "LightMIRM needs at least 2 environments");
  }
  if (light_.inner_lr <= 0.0) {
    return Status::InvalidArgument("inner_lr must be positive");
  }
  LIGHTMIRM_ASSIGN_OR_RETURN(
      MetaLossReplayQueue proto,
      MetaLossReplayQueue::Create(light_.mrq_length, light_.gamma));
  std::vector<MetaLossReplayQueue> queues(num_tasks, proto);

  Rng rng(options_.seed);
  linear::LogisticModel model = linear::LogisticModel::RandomInit(
      data.x->cols(), options_.init_scale, &rng);
  LIGHTMIRM_ASSIGN_OR_RETURN(std::unique_ptr<linear::Optimizer> opt,
                             linear::Optimizer::Create(options_.optimizer));
  const linear::LossContext ctx = data.Context();
  const StepTelemetry telemetry = StepTelemetry::From(options_);
  const MetaTrajectoryRecorder trajectories(telemetry, data.env_ids);

  MetaStepOutput step;
  BestModelTracker tracker(&options_);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    {
      StepSpan epoch_span(telemetry, kStepEpoch, "epoch");
      LIGHTMIRM_RETURN_NOT_OK(LightMirmOuterGradient(ctx, data,
                                                     model.params(), light_,
                                                     &rng, telemetry, &queues,
                                                     &step));
      StepSpan scope(telemetry, kStepBackward);
      linear::AddL2(model.params(), options_.l2, &step.outer_grad);
      opt->Step(step.outer_grad, &model.mutable_params());
    }
    trajectories.Record(step.meta_losses);
    if (options_.epoch_callback) options_.epoch_callback(epoch, model);
    if (!tracker.Observe(model)) break;
  }
  tracker.Finalize(&model);

  TrainedPredictor predictor;
  predictor.global = std::move(model);
  return predictor;
}

}  // namespace lightmirm::train
