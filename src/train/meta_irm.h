// meta-IRM (Algorithm 1 of the paper; Bae et al. 2021): solves the IRM
// bi-level problem with MAML. Per outer iteration, each environment m runs
// one inner gradient step theta_bar_m = theta - alpha * grad R^m(theta),
// then the meta-loss R_meta(theta_bar_m) = sum_{m' != m} R^{m'}(theta_bar_m)
// is computed, and the outer update descends on
//   sum_m R_meta(theta_bar_m) + lambda * stddev_m(R_meta(theta_bar_m)).
//
// The outer gradient is computed *exactly* for the logistic head: the
// Jacobian of the inner step is I - alpha * H^m(theta), applied through an
// analytic Hessian-vector product (see linear/loss.h) — no autodiff tape
// needed. Setting second_order = false yields the first-order MAML
// approximation (ablation).
//
// sample_size > 0 gives the paper's "meta-IRM(S)" variants (Table II):
// only S randomly sampled environments (!= m) enter each meta-loss.
#pragma once

#include "train/trainer.h"

namespace lightmirm::train {

struct MetaIrmOptions {
  /// Inner-loop learning rate alpha.
  double inner_lr = 0.3;
  /// Weight lambda of the meta-loss standard-deviation term (Eq. 6/7).
  double lambda = 6.0;
  /// 0 = complete meta-IRM (all other environments); S > 0 samples S
  /// environments per task per iteration (meta-IRM(S)).
  int sample_size = 0;
  /// If false, drop the Hessian term (first-order MAML).
  bool second_order = true;
};

class MetaIrmTrainer : public Trainer {
 public:
  MetaIrmTrainer(TrainerOptions options, MetaIrmOptions meta)
      : options_(std::move(options)), meta_(meta) {}

  std::string Name() const override;
  Result<TrainedPredictor> Fit(const TrainData& data) override;

  const MetaIrmOptions& meta_options() const { return meta_; }

 private:
  TrainerOptions options_;
  MetaIrmOptions meta_;
};

/// One outer iteration's intermediate results (exposed for testing and for
/// the benches that inspect meta-losses directly).
struct MetaStepOutput {
  std::vector<double> meta_losses;   ///< R_meta(theta_bar_m) per task
  linear::ParamVec outer_grad;       ///< gradient of sum + lambda*sigma
};

/// Computes the exact outer gradient of Algorithm 1 at `params` (without
/// the L2 term). With options.sample_size > 0 the sampled variant is used
/// (consuming randomness from `rng`).
Status MetaIrmOuterGradient(const linear::LossContext& ctx,
                            const TrainData& data,
                            const linear::ParamVec& params,
                            const MetaIrmOptions& options, Rng* rng,
                            const StepTelemetry& telemetry,
                            MetaStepOutput* out);

/// Evaluates the meta-IRM outer objective sum_m R_meta(theta_bar_m) +
/// lambda*sigma at `params` (complete variant only — sample_size is
/// ignored). Used by gradient-check tests.
double MetaIrmObjective(const linear::LossContext& ctx, const TrainData& data,
                        const linear::ParamVec& params,
                        const MetaIrmOptions& options);

/// Shared helper: population standard deviation (Eq. 7).
double PopulationStdDev(const std::vector<double>& values);

/// Shared helper: outer-loop coefficients c_m = 1 + lambda*(R_m - mean)/
/// (M*sigma) — the derivative of sum_m R_m + lambda*sigma with respect to
/// R_m. When sigma is ~0 the lambda term vanishes.
std::vector<double> OuterCoefficients(const std::vector<double>& meta_losses,
                                      double lambda);

}  // namespace lightmirm::train
