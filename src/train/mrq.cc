#include "train/mrq.h"

#include <cmath>

#include "common/string_util.h"

namespace lightmirm::train {

MetaLossReplayQueue::MetaLossReplayQueue(size_t length, double gamma)
    : values_(length, 0.0), gamma_(gamma) {}

Result<MetaLossReplayQueue> MetaLossReplayQueue::Create(size_t length,
                                                        double gamma) {
  if (length < 1) {
    return Status::InvalidArgument("MRQ length must be >= 1");
  }
  if (gamma <= 0.0 || gamma > 1.0) {
    return Status::InvalidArgument(
        StrFormat("MRQ gamma must be in (0,1], got %g", gamma));
  }
  return MetaLossReplayQueue(length, gamma);
}

void MetaLossReplayQueue::Push(double loss) {
  for (size_t i = 0; i + 1 < values_.size(); ++i) {
    values_[i] = values_[i + 1];
  }
  values_.back() = loss;
  ++pushes_;
}

double MetaLossReplayQueue::ReplayedLoss() const {
  double total = 0.0;
  for (size_t i = 1; i <= values_.size(); ++i) {
    total += SlotWeight(i) * values_[i - 1];
  }
  return total;
}

double MetaLossReplayQueue::SlotWeight(size_t i) const {
  return std::pow(gamma_, static_cast<double>(values_.size() - i));
}

}  // namespace lightmirm::train
