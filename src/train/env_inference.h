// Environment inference (EIIL-style, Creager et al. 2021 — cited by the
// paper as related invariant-learning work, and the natural extension when
// province labels are unavailable): given a reference ERM model, find a
// soft partition of the training rows into two pseudo-environments that
// MAXIMIZES the IRMv1 invariance penalty. Rows whose residual pattern
// disagrees with the majority get separated out, recovering the latent
// environment structure that IRM training needs.
#pragma once

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "linear/loss.h"

namespace lightmirm::train {

struct EnvInferenceOptions {
  int steps = 300;
  double learning_rate = 0.5;
  uint64_t seed = 33;
  /// L2 pull of the assignment logits toward 0 (keeps q away from
  /// degenerate all-one/all-zero splits).
  double logit_decay = 1e-3;
};

/// Result of environment inference.
struct InferredEnvs {
  /// Soft probability of each row belonging to pseudo-environment 1.
  std::vector<double> soft_assignment;
  /// Hard 0/1 environment ids (threshold 0.5).
  std::vector<int> hard_assignment;
  /// The invariance penalty value achieved by the split.
  double penalty = 0.0;
};

/// Infers two pseudo-environments by ascending the soft IRMv1 penalty of
/// the split under the fixed reference model `params` (the dummy-classifier
/// derivative D_e = weighted mean of (p-y)*logit per pseudo-env).
Result<InferredEnvs> InferEnvironments(const linear::LossContext& ctx,
                                       const std::vector<size_t>& rows,
                                       const linear::ParamVec& params,
                                       const EnvInferenceOptions& options);

}  // namespace lightmirm::train
