// Group DRO baseline (Sagawa et al. 2019): online exponentiated-gradient
// ascent on per-group mixture weights q, descending on the q-weighted risk.
// Couples worst-group emphasis with increased L2 regularization, as the
// paper describes.
#pragma once

#include "train/trainer.h"

namespace lightmirm::train {

struct GroupDroOptions {
  /// Step size of the exponentiated-gradient update on q.
  double group_step = 1.5;
  /// Multiplier on TrainerOptions::l2 ("increased regularization").
  double l2_multiplier = 1.0;
};

class GroupDroTrainer : public Trainer {
 public:
  GroupDroTrainer(TrainerOptions options, GroupDroOptions dro)
      : options_(std::move(options)), dro_(dro) {}

  std::string Name() const override { return "Group DRO"; }
  Result<TrainedPredictor> Fit(const TrainData& data) override;

 private:
  TrainerOptions options_;
  GroupDroOptions dro_;
};

}  // namespace lightmirm::train
