// Trainer interface shared by every learning algorithm in the paper's
// evaluation: ERM, ERM+fine-tuning, Up-sampling, Group DRO, V-REx, IRMv1,
// meta-IRM (full and sampled) and LightMIRM.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/timer.h"
#include "linear/loss.h"
#include "linear/optimizer.h"
#include "obs/trace.h"

namespace lightmirm::train {

/// Training inputs grouped by environment. Holds row-index views into a
/// shared design matrix so per-environment losses never copy features.
struct TrainData {
  const linear::FeatureMatrix* x = nullptr;
  const std::vector<int>* labels = nullptr;
  /// Optional per-row weights (class re-balancing); nullptr = all ones.
  const std::vector<double>* weights = nullptr;

  /// env_rows[t] are the rows of task (environment) t; env_ids[t] is the
  /// original environment id of task t. Only environments with at least
  /// `min_env_rows` rows become tasks; smaller ones are folded into the
  /// pooled rows but not given their own task.
  std::vector<std::vector<size_t>> env_rows;
  std::vector<int> env_ids;
  std::vector<size_t> all_rows;

  /// Number of tasks M.
  size_t NumTasks() const { return env_rows.size(); }

  /// Builds the per-environment grouping. Errors if no environment reaches
  /// `min_env_rows` or inputs are inconsistent. If `include_rows` is
  /// non-null only those rows participate in training (the rest are e.g.
  /// a held-out validation set).
  static Result<TrainData> Create(const linear::FeatureMatrix* x,
                                  const std::vector<int>* labels,
                                  const std::vector<int>* envs,
                                  size_t min_env_rows = 50,
                                  const std::vector<double>* weights = nullptr,
                                  const std::vector<size_t>* include_rows = nullptr);

  /// LossContext over this data.
  linear::LossContext Context() const {
    return linear::LossContext{x, labels, weights};
  }
};

/// The result of training: a global LR model plus optional per-environment
/// overrides (used by the fine-tuning baseline).
struct TrainedPredictor {
  linear::LogisticModel global;
  std::map<int, linear::LogisticModel> per_env;

  /// Scores rows of `x`; row i uses the override for envs[i] when present,
  /// the global model otherwise. Pass envs = nullptr to force global.
  std::vector<double> Predict(const linear::FeatureMatrix& x,
                              const std::vector<int>* envs) const;
};

/// Invoked after each outer-loop epoch with the current parameters; used by
/// the benches that trace KS-vs-epoch training curves (Fig 6 / Fig 8).
using EpochCallback =
    std::function<void(int epoch, const linear::LogisticModel& model)>;

/// Scores a candidate model on held-out data (higher is better); used for
/// best-epoch snapshotting (the "stop condition" of Algorithms 1/2).
using ValidationFn = std::function<double(const linear::LogisticModel&)>;

/// Options shared by all trainers.
struct TrainerOptions {
  int epochs = 60;
  double l2 = 1e-4;
  uint64_t seed = 7;
  double init_scale = 0.01;
  /// Worker threads for the parallel training loops (environment-parallel
  /// meta-task losses, histogram builds, ...). 0 keeps the ambient default
  /// (hardware concurrency); 1 forces serial execution. Results are
  /// identical at any value — see DESIGN.md "Threading model".
  int threads = 0;
  linear::OptimizerOptions optimizer = {"adam", 0.05, 0.9, 0.9, 0.999, 1e-8};
  /// Optional per-step timing sink (Table III); not owned.
  StepTimer* timer = nullptr;
  /// Optional telemetry sink: per-step trace spans and per-environment
  /// meta-loss / penalty trajectories record here (see DESIGN.md
  /// "Observability"). Not owned; nullptr disables telemetry.
  obs::MetricsRegistry* metrics = nullptr;
  /// Metric-name prefix for this training run's telemetry, e.g.
  /// "train.LightMIRM.".
  std::string metrics_prefix;
  /// Optional per-epoch hook.
  EpochCallback epoch_callback;
  /// Optional validation scorer. When set, training returns the parameters
  /// of the best-scoring epoch instead of the last one.
  ValidationFn validation_fn;
  /// With a validation_fn set, stop early after this many epochs without
  /// improvement (0 = never stop early).
  int early_stop_patience = 0;
};

/// Tracks the best-validation parameters across epochs. When no validation
/// function is configured it is a no-op and Finalize keeps the last model.
class BestModelTracker {
 public:
  explicit BestModelTracker(const TrainerOptions* options)
      : options_(options) {}

  /// Scores `model` (if validation is configured) and snapshots it when it
  /// improves. Returns false when early-stopping patience is exhausted.
  bool Observe(const linear::LogisticModel& model);

  /// Replaces `model` with the best snapshot (if any).
  void Finalize(linear::LogisticModel* model) const;

  double best_score() const { return best_score_; }

 private:
  const TrainerOptions* options_;
  double best_score_ = -1e300;
  int since_best_ = 0;
  linear::ParamVec best_params_;
};

/// Canonical step names recorded into TrainerOptions::timer, matching the
/// rows of Table III.
inline constexpr const char* kStepInnerOptimization = "inner optimization";
inline constexpr const char* kStepMetaLosses = "calculating the meta-losses";
inline constexpr const char* kStepBackward = "backward propagation";
inline constexpr const char* kStepEpoch = "the whole epoch";

/// Telemetry wiring shared by the per-step scopes: the legacy Table III
/// StepTimer plus the optional registry that trace spans and trajectory
/// series record into. Copies of TrainerOptions' sinks, cheap to pass
/// around; all pointers optional and unowned.
struct StepTelemetry {
  StepTimer* timer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  std::string prefix;

  static StepTelemetry From(const TrainerOptions& options) {
    return {options.timer, options.metrics, options.metrics_prefix};
  }
};

/// RAII scope recording one training step into both sinks: the StepTimer
/// keeps feeding the Table III formatter exactly as before, and the trace
/// span nests under the thread's active span chain in the registry
/// (root spans get the run's metric prefix). Either sink may be null.
class StepSpan {
 public:
  /// `span_name` overrides the span segment (e.g. "epoch" instead of
  /// "the whole epoch"); the StepTimer always records under `step_name`.
  StepSpan(const StepTelemetry& telemetry, const char* step_name,
           const char* span_name = nullptr)
      : timer_(telemetry.timer),
        step_name_(step_name),
        span_(telemetry.metrics,
              obs::TraceSpan::CurrentDepth() == 0
                  ? telemetry.prefix + (span_name ? span_name : step_name)
                  : std::string(span_name ? span_name : step_name)) {}
  ~StepSpan() {
    if (timer_ != nullptr) timer_->Add(step_name_, watch_.Seconds());
  }
  StepSpan(const StepSpan&) = delete;
  StepSpan& operator=(const StepSpan&) = delete;

 private:
  StepTimer* timer_;
  const char* step_name_;
  WallTimer watch_;
  obs::TraceSpan span_;
};

/// Records per-epoch training trajectories into the telemetry registry:
/// one series per environment (`<prefix><loss_name>.env_<id>`) plus a
/// penalty series (`<prefix><penalty_name>`). Inert when the telemetry has
/// no registry. Series handles resolve once at construction, so Record is
/// cheap enough to call every epoch.
class MetaTrajectoryRecorder {
 public:
  MetaTrajectoryRecorder(const StepTelemetry& telemetry,
                         const std::vector<int>& env_ids,
                         const char* loss_name = "meta_loss",
                         const char* penalty_name = "sigma_penalty");

  /// Appends one point per environment plus the population standard
  /// deviation of `env_losses` (the sigma term of Eq. 6/7).
  void Record(const std::vector<double>& env_losses) const;
  /// Same, with an explicit penalty value (V-REx variance, IRMv1 gradient
  /// penalty, Group DRO worst-group risk, ...).
  void Record(const std::vector<double>& env_losses, double penalty) const;

 private:
  std::vector<obs::Series*> env_series_;
  obs::Series* penalty_series_ = nullptr;
};

/// Abstract learning algorithm.
class Trainer {
 public:
  virtual ~Trainer() = default;

  /// Algorithm name as it appears in the paper's tables.
  virtual std::string Name() const = 0;

  /// Runs the full training loop and returns the learned predictor.
  virtual Result<TrainedPredictor> Fit(const TrainData& data) = 0;
};

}  // namespace lightmirm::train
