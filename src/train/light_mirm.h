// LightMIRM (Algorithm 2 of the paper): meta-IRM accelerated by
//   1) environment sampling — each task m computes its meta-loss on a
//      single randomly sampled environment s_m != m, and
//   2) meta-loss replaying — a fixed-length queue H_m (see train/mrq.h)
//      recycles the losses from previous iterations with decay gamma, so
//      the replayed meta-loss approximates the full sum at O(1) cost.
// Only the newest queue element carries gradients (the paper's complexity
// analysis relies on this), so the backward pass costs one HVP + one
// gradient per environment: O(4M) per iteration vs O(2M^2) for meta-IRM.
#pragma once

#include "train/trainer.h"

namespace lightmirm::train {

struct LightMirmOptions {
  /// Inner-loop learning rate alpha.
  double inner_lr = 0.3;
  /// Weight lambda of the meta-loss standard-deviation term.
  double lambda = 6.0;
  /// MRQ length L (Fig 9 ablates 1..9; the paper uses 5).
  size_t mrq_length = 5;
  /// Decay gamma of the replayed losses (Table IV ablates 0.1..1.0; the
  /// paper's default is 0.9).
  double gamma = 0.9;
  /// If false, drop the Hessian term (first-order MAML, ablation).
  bool second_order = true;
};

class MetaLossReplayQueue;  // see train/mrq.h

/// One LightMIRM outer iteration at `params` (exposed for testing and
/// micro-benchmarks): environment sampling, MRQ push/replay, and the exact
/// outer gradient (without L2). `queues` must hold one MRQ per task and is
/// updated in place. `out->meta_losses` receives the replayed losses.
Status LightMirmOuterGradient(const linear::LossContext& ctx,
                              const TrainData& data,
                              const linear::ParamVec& params,
                              const LightMirmOptions& options, Rng* rng,
                              const StepTelemetry& telemetry,
                              std::vector<class MetaLossReplayQueue>* queues,
                              struct MetaStepOutput* out);

class LightMirmTrainer : public Trainer {
 public:
  LightMirmTrainer(TrainerOptions options, LightMirmOptions light)
      : options_(std::move(options)), light_(light) {}

  std::string Name() const override { return "LightMIRM"; }
  Result<TrainedPredictor> Fit(const TrainData& data) override;

  const LightMirmOptions& light_options() const { return light_; }

 private:
  TrainerOptions options_;
  LightMirmOptions light_;
};

}  // namespace lightmirm::train
