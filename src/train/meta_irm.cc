#include "train/meta_irm.h"

#include <cmath>

#include "common/string_util.h"
#include "common/thread_pool.h"

namespace lightmirm::train {

double PopulationStdDev(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  const double inv_m = 1.0 / static_cast<double>(values.size());
  double mean = 0.0;
  for (double v : values) mean += v * inv_m;
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean) * inv_m;
  return std::sqrt(var);
}

std::vector<double> OuterCoefficients(const std::vector<double>& meta_losses,
                                      double lambda) {
  const size_t m = meta_losses.size();
  std::vector<double> coeffs(m, 1.0);
  const double sigma = PopulationStdDev(meta_losses);
  if (sigma < 1e-12 || lambda == 0.0) return coeffs;
  double mean = 0.0;
  for (double v : meta_losses) mean += v;
  mean /= static_cast<double>(m);
  for (size_t t = 0; t < m; ++t) {
    coeffs[t] +=
        lambda * (meta_losses[t] - mean) / (static_cast<double>(m) * sigma);
  }
  return coeffs;
}

Status MetaIrmOuterGradient(const linear::LossContext& ctx,
                            const TrainData& data,
                            const linear::ParamVec& params,
                            const MetaIrmOptions& options, Rng* rng,
                            const StepTelemetry& telemetry,
                            MetaStepOutput* out) {
  const size_t num_tasks = data.NumTasks();
  const size_t dim = params.size();
  std::vector<linear::ParamVec> theta_bar(num_tasks);
  std::vector<linear::ParamVec> meta_grads(num_tasks);
  out->meta_losses.assign(num_tasks, 0.0);

  // Inner loop (Algorithm 1, lines 6-7): one gradient step per environment,
  // environment-parallel (tasks are independent given theta).
  {
    StepSpan scope(telemetry, kStepInnerOptimization);
    ParallelFor(0, num_tasks, 1, [&](size_t m) {
      linear::ParamVec grad_m;
      linear::BceLossGrad(ctx, data.env_rows[m], params, &grad_m);
      theta_bar[m] = params;
      for (size_t j = 0; j < dim; ++j) {
        theta_bar[m][j] -= options.inner_lr * grad_m[j];
      }
    });
  }

  // Meta-losses (line 8): R_meta(theta_bar_m) over the other environments
  // (all of them, or a random subset of size S). Sampling draws consume
  // the RNG serially in task order — the same stream as the serial loop —
  // then the per-task loss sums run environment-parallel, each in the same
  // within-task evaluation order as the serial code.
  {
    StepSpan scope(telemetry, kStepMetaLosses);
    std::vector<std::vector<size_t>> eval_envs(num_tasks);
    for (size_t m = 0; m < num_tasks; ++m) {
      if (options.sample_size == 0) {
        eval_envs[m].reserve(num_tasks - 1);
        for (size_t other = 0; other < num_tasks; ++other) {
          if (other != m) eval_envs[m].push_back(other);
        }
      } else {
        // Sample S distinct environments != m (partial Fisher-Yates).
        std::vector<size_t> pool;
        pool.reserve(num_tasks - 1);
        for (size_t other = 0; other < num_tasks; ++other) {
          if (other != m) pool.push_back(other);
        }
        for (int s = 0; s < options.sample_size; ++s) {
          const size_t pick =
              static_cast<size_t>(s) +
              rng->UniformInt(pool.size() - static_cast<size_t>(s));
          std::swap(pool[static_cast<size_t>(s)], pool[pick]);
          eval_envs[m].push_back(pool[static_cast<size_t>(s)]);
        }
      }
    }
    ParallelFor(0, num_tasks, 1, [&](size_t m) {
      meta_grads[m].assign(dim, 0.0);
      linear::ParamVec env_grad;
      for (size_t other : eval_envs[m]) {
        out->meta_losses[m] += linear::BceLossGrad(
            ctx, data.env_rows[other], theta_bar[m], &env_grad);
        for (size_t j = 0; j < dim; ++j) meta_grads[m][j] += env_grad[j];
      }
    });
  }

  // Backward (lines 10-11): d/dtheta [sum_m R_meta + lambda*sigma], with
  // the inner-step Jacobian (I - alpha*H^m(theta)) applied exactly via
  // Hessian-vector products. HVPs run task-parallel; the reduction into
  // outer_grad stays serial in task order for bit-stable float sums.
  {
    StepSpan scope(telemetry, kStepBackward);
    const std::vector<double> coeffs =
        OuterCoefficients(out->meta_losses, options.lambda);
    out->outer_grad.assign(dim, 0.0);
    std::vector<linear::ParamVec> hvs;
    if (options.second_order) {
      hvs.resize(num_tasks);
      ParallelFor(0, num_tasks, 1, [&](size_t m) {
        linear::BceHvp(ctx, data.env_rows[m], params, meta_grads[m], &hvs[m]);
      });
    }
    for (size_t m = 0; m < num_tasks; ++m) {
      if (options.second_order) {
        for (size_t j = 0; j < dim; ++j) {
          out->outer_grad[j] +=
              coeffs[m] * (meta_grads[m][j] - options.inner_lr * hvs[m][j]);
        }
      } else {
        for (size_t j = 0; j < dim; ++j) {
          out->outer_grad[j] += coeffs[m] * meta_grads[m][j];
        }
      }
    }
  }
  return Status::OK();
}

double MetaIrmObjective(const linear::LossContext& ctx, const TrainData& data,
                        const linear::ParamVec& params,
                        const MetaIrmOptions& options) {
  const size_t num_tasks = data.NumTasks();
  const size_t dim = params.size();
  std::vector<double> meta_losses(num_tasks, 0.0);
  linear::ParamVec grad_m, theta_bar;
  for (size_t m = 0; m < num_tasks; ++m) {
    linear::BceLossGrad(ctx, data.env_rows[m], params, &grad_m);
    theta_bar = params;
    for (size_t j = 0; j < dim; ++j) {
      theta_bar[j] -= options.inner_lr * grad_m[j];
    }
    for (size_t other = 0; other < num_tasks; ++other) {
      if (other == m) continue;
      meta_losses[m] += linear::BceLoss(ctx, data.env_rows[other], theta_bar);
    }
  }
  double total = 0.0;
  for (double v : meta_losses) total += v;
  return total + options.lambda * PopulationStdDev(meta_losses);
}

std::string MetaIrmTrainer::Name() const {
  if (meta_.sample_size > 0) {
    return StrFormat("meta-IRM(%d)", meta_.sample_size);
  }
  return "meta-IRM";
}

Result<TrainedPredictor> MetaIrmTrainer::Fit(const TrainData& data) {
  const size_t num_tasks = data.NumTasks();
  if (num_tasks < 2) {
    return Status::FailedPrecondition(
        "meta-IRM needs at least 2 environments");
  }
  if (meta_.inner_lr <= 0.0) {
    return Status::InvalidArgument("inner_lr must be positive");
  }
  if (meta_.sample_size < 0 ||
      static_cast<size_t>(meta_.sample_size) >= num_tasks) {
    return Status::InvalidArgument(StrFormat(
        "sample_size must be in [0, M-1] = [0, %zu], got %d", num_tasks - 1,
        meta_.sample_size));
  }

  Rng rng(options_.seed);
  linear::LogisticModel model = linear::LogisticModel::RandomInit(
      data.x->cols(), options_.init_scale, &rng);
  LIGHTMIRM_ASSIGN_OR_RETURN(std::unique_ptr<linear::Optimizer> opt,
                             linear::Optimizer::Create(options_.optimizer));
  const linear::LossContext ctx = data.Context();
  const StepTelemetry telemetry = StepTelemetry::From(options_);
  const MetaTrajectoryRecorder trajectories(telemetry, data.env_ids);

  MetaStepOutput step;
  BestModelTracker tracker(&options_);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    {
      StepSpan epoch_span(telemetry, kStepEpoch, "epoch");
      LIGHTMIRM_RETURN_NOT_OK(MetaIrmOuterGradient(
          ctx, data, model.params(), meta_, &rng, telemetry, &step));
      StepSpan scope(telemetry, kStepBackward);
      linear::AddL2(model.params(), options_.l2, &step.outer_grad);
      opt->Step(step.outer_grad, &model.mutable_params());
    }
    trajectories.Record(step.meta_losses);
    if (options_.epoch_callback) options_.epoch_callback(epoch, model);
    if (!tracker.Observe(model)) break;
  }
  tracker.Finalize(&model);

  TrainedPredictor predictor;
  predictor.global = std::move(model);
  return predictor;
}

}  // namespace lightmirm::train
