#include "train/env_inference.h"

#include <cmath>

namespace lightmirm::train {

Result<InferredEnvs> InferEnvironments(const linear::LossContext& ctx,
                                       const std::vector<size_t>& rows,
                                       const linear::ParamVec& params,
                                       const EnvInferenceOptions& options) {
  if (rows.empty()) return Status::InvalidArgument("no rows");
  if (options.steps < 1 || options.learning_rate <= 0.0) {
    return Status::InvalidArgument("bad optimization options");
  }
  const size_t n = rows.size();

  // Per-row dummy-classifier derivative contribution: d_i = (p_i - y_i)*z_i
  // under the fixed reference model.
  std::vector<double> d(n);
  for (size_t k = 0; k < n; ++k) {
    const size_t r = rows[k];
    const double z = ctx.x->RowDot(r, params) + params.back();
    const double p = linear::Sigmoid(z);
    d[k] = (p - static_cast<double>((*ctx.labels)[r])) * z;
  }

  // Soft assignment logits, randomly initialized. Ascend
  //   J(q) = D1(q)^2 + D0(q)^2,  D_e = sum w_i d_i / sum w_i
  // with w_i = q_i for env 1 and (1 - q_i) for env 0.
  Rng rng(options.seed);
  std::vector<double> logits(n);
  for (double& v : logits) v = rng.Normal(0.0, 0.1);

  std::vector<double> q(n);
  for (int step = 0; step < options.steps; ++step) {
    double s1 = 0.0, w1 = 0.0, s0 = 0.0, w0 = 0.0;
    for (size_t k = 0; k < n; ++k) {
      q[k] = linear::Sigmoid(logits[k]);
      s1 += q[k] * d[k];
      w1 += q[k];
      s0 += (1.0 - q[k]) * d[k];
      w0 += 1.0 - q[k];
    }
    if (w1 < 1e-9 || w0 < 1e-9) break;
    const double d1 = s1 / w1, d0 = s0 / w0;
    // dJ/dq_k = 2*D1*(d_k - D1)/w1 - 2*D0*(d_k - D0)/w0; chain through the
    // sigmoid parametrization.
    for (size_t k = 0; k < n; ++k) {
      const double grad_q = 2.0 * d1 * (d[k] - d1) / w1 -
                            2.0 * d0 * (d[k] - d0) / w0;
      const double grad_logit = grad_q * q[k] * (1.0 - q[k]);
      logits[k] += options.learning_rate *
                   (static_cast<double>(n) * grad_logit -
                    options.logit_decay * logits[k]);
    }
  }

  InferredEnvs result;
  result.soft_assignment.resize(n);
  result.hard_assignment.resize(n);
  double s1 = 0.0, w1 = 0.0, s0 = 0.0, w0 = 0.0;
  for (size_t k = 0; k < n; ++k) {
    result.soft_assignment[k] = linear::Sigmoid(logits[k]);
    result.hard_assignment[k] = result.soft_assignment[k] >= 0.5 ? 1 : 0;
    s1 += result.soft_assignment[k] * d[k];
    w1 += result.soft_assignment[k];
    s0 += (1.0 - result.soft_assignment[k]) * d[k];
    w0 += 1.0 - result.soft_assignment[k];
  }
  if (w1 > 1e-9 && w0 > 1e-9) {
    result.penalty = (s1 / w1) * (s1 / w1) + (s0 / w0) * (s0 / w0);
  }
  return result;
}

}  // namespace lightmirm::train
