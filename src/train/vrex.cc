#include "train/vrex.h"

namespace lightmirm::train {

Result<TrainedPredictor> VRexTrainer::Fit(const TrainData& data) {
  Rng rng(options_.seed);
  linear::LogisticModel model = linear::LogisticModel::RandomInit(
      data.x->cols(), options_.init_scale, &rng);
  LIGHTMIRM_ASSIGN_OR_RETURN(std::unique_ptr<linear::Optimizer> opt,
                             linear::Optimizer::Create(options_.optimizer));
  const linear::LossContext ctx = data.Context();
  const size_t num_tasks = data.NumTasks();
  const double inv_m = 1.0 / static_cast<double>(num_tasks);
  const StepTelemetry telemetry = StepTelemetry::From(options_);
  const MetaTrajectoryRecorder trajectories(telemetry, data.env_ids, "risk",
                                            "variance_penalty");

  linear::ParamVec grad;
  std::vector<double> risks(num_tasks);
  std::vector<linear::ParamVec> grads(num_tasks);
  BestModelTracker tracker(&options_);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    double penalty = 0.0;
    {
      StepSpan epoch_span(telemetry, kStepEpoch, "epoch");
      StepSpan scope(telemetry, kStepBackward);
      double mean_risk = 0.0;
      for (size_t t = 0; t < num_tasks; ++t) {
        risks[t] = linear::BceLossGrad(ctx, data.env_rows[t],
                                       model.params(), &grads[t]);
        mean_risk += risks[t] * inv_m;
      }
      // d/dtheta [mean + beta * var] =
      //   sum_t [1/M + 2*beta*(R_t - mean)/M] * grad_t.
      grad.assign(model.params().size(), 0.0);
      for (size_t t = 0; t < num_tasks; ++t) {
        const double dev = risks[t] - mean_risk;
        penalty += vrex_.beta * inv_m * dev * dev;
        const double coeff = inv_m * (1.0 + 2.0 * vrex_.beta * dev);
        for (size_t j = 0; j < grad.size(); ++j) {
          grad[j] += coeff * grads[t][j];
        }
      }
      linear::AddL2(model.params(), options_.l2, &grad);
      opt->Step(grad, &model.mutable_params());
    }
    trajectories.Record(risks, penalty);
    if (options_.epoch_callback) options_.epoch_callback(epoch, model);
    if (!tracker.Observe(model)) break;
  }
  tracker.Finalize(&model);
  TrainedPredictor predictor;
  predictor.global = std::move(model);
  return predictor;
}

}  // namespace lightmirm::train
