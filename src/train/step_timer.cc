#include "train/step_timer.h"

#include <cassert>

#include "common/string_util.h"
#include "train/trainer.h"

namespace lightmirm::train {
namespace {

const char* kTableSteps[] = {
    "loading data",
    "transforming the format",
    kStepInnerOptimization,
    kStepMetaLosses,
    kStepBackward,
};

}  // namespace

std::vector<StepTimeRow> SummarizeStepTimes(const StepTimer& timer) {
  std::vector<StepTimeRow> rows;
  const double epoch_total = timer.TotalSeconds(kStepEpoch);
  for (const char* step : kTableSteps) {
    StepTimeRow row;
    row.step = step;
    row.mean_seconds = timer.MeanSeconds(step);
    row.total_seconds = timer.TotalSeconds(step);
    row.fraction_of_total =
        epoch_total > 0.0 ? row.total_seconds / epoch_total : 0.0;
    rows.push_back(row);
  }
  StepTimeRow epoch;
  epoch.step = kStepEpoch;
  epoch.mean_seconds = timer.MeanSeconds(kStepEpoch);
  epoch.total_seconds = epoch_total;
  epoch.fraction_of_total = epoch_total > 0.0 ? 1.0 : 0.0;
  rows.push_back(epoch);
  return rows;
}

std::string FormatStepTimeTable(
    const std::vector<std::string>& method_names,
    const std::vector<const StepTimer*>& timers) {
  assert(method_names.size() == timers.size());
  std::string out = StrFormat("%-30s", "Step");
  for (const std::string& name : method_names) {
    out += StrFormat(" %16s", name.c_str());
  }
  out += "\n";
  std::vector<std::vector<StepTimeRow>> all;
  all.reserve(timers.size());
  for (const StepTimer* t : timers) all.push_back(SummarizeStepTimes(*t));
  const size_t num_rows = all.empty() ? 0 : all[0].size();
  for (size_t r = 0; r < num_rows; ++r) {
    const bool epoch_row = all[0][r].step == kStepEpoch;
    out += StrFormat("%-30s", all[0][r].step.c_str());
    for (const auto& rows : all) {
      if (epoch_row) {
        out += StrFormat(" %15.3fs", rows[r].total_seconds);
      } else {
        out += StrFormat(" %15.6fs", rows[r].mean_seconds);
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace lightmirm::train
