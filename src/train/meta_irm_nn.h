// Generic (non-linear) meta-IRM / LightMIRM over an MLP predictor, built on
// the autodiff engine instead of the closed-form logistic algebra. This
// covers the paper's footnote 3 — meta-IRM "does not assume the linearity
// of the prediction model" — and serves as the reference implementation the
// analytic path is cross-checked against.
//
// The per-environment data is densified into autodiff tensors once up
// front; each outer iteration then differentiates through the MAML inner
// step with create_graph=true, exactly as a PyTorch implementation would.
#pragma once

#include <vector>

#include "autodiff/nn.h"
#include "common/result.h"
#include "common/rng.h"
#include "train/light_mirm.h"
#include "train/meta_irm.h"
#include "train/mrq.h"

namespace lightmirm::train {

/// Configuration of the neural meta-IRM trainer.
struct NnMetaIrmOptions {
  /// Hidden layer widths ({} = logistic regression as a 1-layer net).
  std::vector<size_t> hidden = {16};
  std::string activation = "tanh";
  double init_scale = 0.1;
  int epochs = 60;
  double outer_lr = 0.05;
  double inner_lr = 0.2;
  double lambda = 1.0;
  uint64_t seed = 7;
  /// If true use LightMIRM's environment sampling + MRQ; otherwise the
  /// complete meta-IRM objective.
  bool light = true;
  size_t mrq_length = 5;
  double gamma = 0.9;
};

/// A trained MLP predictor over dense features.
class NnPredictor {
 public:
  NnPredictor() = default;
  NnPredictor(autodiff::nn::Mlp mlp) : mlp_(std::move(mlp)) {}  // NOLINT

  /// Default probabilities for the rows of a dense feature tensor.
  std::vector<double> Predict(const autodiff::Tensor& features) const;

  const autodiff::nn::Mlp& mlp() const { return mlp_; }

 private:
  autodiff::nn::Mlp mlp_;
};

/// Per-environment dense views used by the neural trainer.
struct NnEnvData {
  std::vector<autodiff::Tensor> env_x;  ///< rows x features per env
  std::vector<autodiff::Tensor> env_y;  ///< rows x 1 labels per env

  /// Densifies a Matrix + labels + env column. Environments with fewer
  /// than `min_env_rows` rows are skipped.
  static Result<NnEnvData> Build(const Matrix& features,
                                 const std::vector<int>& labels,
                                 const std::vector<int>& envs,
                                 size_t min_env_rows = 20);
};

/// Trains an MLP with the (Light)meta-IRM objective via double-backward
/// autodiff. Returns the trained predictor.
Result<NnPredictor> TrainNnMetaIrm(const NnEnvData& data,
                                   size_t num_features,
                                   const NnMetaIrmOptions& options);

}  // namespace lightmirm::train
