#include "train/erm.h"

namespace lightmirm::train {

Result<TrainedPredictor> ErmTrainer::Fit(const TrainData& data) {
  Rng rng(options_.seed);
  linear::LogisticModel model = linear::LogisticModel::RandomInit(
      data.x->cols(), options_.init_scale, &rng);
  LIGHTMIRM_ASSIGN_OR_RETURN(std::unique_ptr<linear::Optimizer> opt,
                             linear::Optimizer::Create(options_.optimizer));
  const linear::LossContext ctx = data.Context();
  const StepTelemetry telemetry = StepTelemetry::From(options_);
  linear::ParamVec grad;
  BestModelTracker tracker(&options_);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    {
      StepSpan epoch_span(telemetry, kStepEpoch, "epoch");
      StepSpan scope(telemetry, kStepBackward);
      linear::BceLossGrad(ctx, data.all_rows, model.params(), &grad);
      linear::AddL2(model.params(), options_.l2, &grad);
      opt->Step(grad, &model.mutable_params());
    }
    if (options_.epoch_callback) options_.epoch_callback(epoch, model);
    if (!tracker.Observe(model)) break;
  }
  tracker.Finalize(&model);
  TrainedPredictor predictor;
  predictor.global = std::move(model);
  return predictor;
}

}  // namespace lightmirm::train
