// ERM + fine-tuning baseline: a pooled ERM model that is then fine-tuned on
// each province's own data before evaluation (Table I). Raises worst-case
// scores at the cost of depending on per-province data quality — typically
// slightly lower mean metrics, matching the paper's observation.
#pragma once

#include "train/erm.h"
#include "train/trainer.h"

namespace lightmirm::train {

/// Fine-tuning specific knobs.
struct FineTuneOptions {
  int fine_tune_epochs = 25;
  double fine_tune_lr = 0.01;
  /// Extra L2 pull toward the pooled model during fine-tuning (proximal
  /// term); keeps tiny provinces from overfitting outright.
  double proximal = 0.08;
};

class FineTuneTrainer : public Trainer {
 public:
  FineTuneTrainer(TrainerOptions options, FineTuneOptions ft_options)
      : options_(std::move(options)), ft_(ft_options) {}

  std::string Name() const override { return "ERM + fine-tuning"; }
  Result<TrainedPredictor> Fit(const TrainData& data) override;

 private:
  TrainerOptions options_;
  FineTuneOptions ft_;
};

}  // namespace lightmirm::train
