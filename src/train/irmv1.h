// IRMv1 (Arjovsky et al. 2019): ERM plus the gradient-penalty approximation
// of the IRM constraint with a fixed scalar "dummy" classifier w = 1:
//   penalty_m = ( d/dw R^m(w * logits) |_{w=1} )^2.
// Included as a reference implementation; the paper argues meta-IRM is the
// more faithful solver of the bi-level problem.
#pragma once

#include "train/trainer.h"

namespace lightmirm::train {

struct IrmV1Options {
  /// Weight of the invariance penalty.
  double penalty_weight = 10.0;
  /// Epoch at which the penalty ramps in (0 = from the start), following
  /// the common IRMv1 annealing recipe.
  int penalty_anneal_epochs = 0;
};

class IrmV1Trainer : public Trainer {
 public:
  IrmV1Trainer(TrainerOptions options, IrmV1Options irm)
      : options_(std::move(options)), irm_(irm) {}

  std::string Name() const override { return "IRMv1"; }
  Result<TrainedPredictor> Fit(const TrainData& data) override;

 private:
  TrainerOptions options_;
  IrmV1Options irm_;
};

}  // namespace lightmirm::train
