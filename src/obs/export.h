// Registry exporters: a JSON document (machine-readable telemetry
// artifact, the `telemetry_out=` knob) and Prometheus text exposition
// format (scrape-compatible). Both snapshot the registry name-sorted, so
// output for the same recorded values is deterministic.
#pragma once

#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace lightmirm::obs {

/// Full registry as a JSON object {counters, gauges, histograms, series}.
/// Histograms export count/sum/mean/p50/p95/p99 plus their non-empty
/// buckets (overflow bucket as "le": "+Inf").
std::string ExportJson(const MetricsRegistry& registry);

/// Prometheus text format. Metric names are prefixed "lightmirm_" and
/// mapped to the Prometheus alphabet; histograms use cumulative
/// `_bucket{le=...}` / `_sum` / `_count` lines. Series have no Prometheus
/// equivalent and export their last value as a gauge.
std::string ExportPrometheus(const MetricsRegistry& registry);

/// Writes the registry to `path`: Prometheus text when the path ends in
/// ".prom", JSON otherwise.
Status WriteTelemetryFile(const MetricsRegistry& registry,
                          const std::string& path);

}  // namespace lightmirm::obs
