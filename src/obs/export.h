// Registry exporters: a JSON document (machine-readable telemetry
// artifact, the `telemetry_out=` knob) and Prometheus text exposition
// format (scrape-compatible). Both snapshot the registry name-sorted, so
// output for the same recorded values is deterministic.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lightmirm::obs {

/// Full registry as a JSON object {counters, gauges, histograms, series}.
/// Histograms export count/sum/mean/p50/p95/p99 plus their non-empty
/// buckets (overflow bucket as "le": "+Inf").
std::string ExportJson(const MetricsRegistry& registry);

/// Prometheus text format. Metric names are prefixed "lightmirm_" and
/// mapped to the Prometheus alphabet; histograms use cumulative
/// `_bucket{le=...}` / `_sum` / `_count` lines. Series have no Prometheus
/// equivalent and export their last value as a gauge.
std::string ExportPrometheus(const MetricsRegistry& registry);

/// Writes the registry to `path`: Prometheus text when the path ends in
/// ".prom", JSON otherwise.
Status WriteTelemetryFile(const MetricsRegistry& registry,
                          const std::string& path);

/// True when `name` is a valid Prometheus metric name:
/// [a-zA-Z_:][a-zA-Z0-9_:]*.
bool IsValidPromMetricName(std::string_view name);

/// Escapes a label value per the Prometheus exposition format: backslash,
/// double quote and newline become \\, \" and \n.
std::string PromEscapeLabelValue(std::string_view value);

/// Renders one exposition sample line, `name{key="value",...} value`. The
/// metric name is mapped into the Prometheus alphabet with the exporter's
/// "lightmirm_" prefix and then validated (rejects names that still don't
/// match the metric-name grammar); label names must match
/// [a-zA-Z_][a-zA-Z0-9_]*, and label values are escaped. The building
/// block for every labeled line the exporter emits, exposed so external
/// exporters can't inject malformed exposition text.
Result<std::string> PromSampleLine(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& labels,
    double value);

/// Chrome trace-event JSON (the `chrome://tracing` / Perfetto "trace
/// event" format): one complete ("ph":"X") event per recorded span, under
/// a single process. Load via chrome://tracing or ui.perfetto.dev.
std::string ExportChromeTrace(const std::vector<TraceEvent>& events);

/// Writes the currently recorded span events (obs/trace.h recording mode)
/// as a Chrome trace file.
Status WriteChromeTraceFile(const std::vector<TraceEvent>& events,
                            const std::string& path);

}  // namespace lightmirm::obs
