#include "obs/replay.h"

#include <algorithm>
#include <limits>
#include <map>
#include <utility>

namespace lightmirm::obs {

AlertState ReplayResult::WorstState(int env) const {
  AlertState worst = AlertState::kOk;
  for (const ReplayPeriod& period : periods) {
    const auto it = period.health.per_env.find(env);
    if (it == period.health.per_env.end()) continue;
    if (static_cast<int>(it->second.overall) > static_cast<int>(worst)) {
      worst = it->second.overall;
    }
  }
  return worst;
}

AlertState ReplayResult::WorstOverall() const {
  AlertState worst = AlertState::kOk;
  for (const ReplayPeriod& period : periods) {
    if (static_cast<int>(period.health.overall) > static_cast<int>(worst)) {
      worst = period.health.overall;
    }
  }
  return worst;
}

bool ReplayResult::ReachedAlert(int env) const {
  return WorstState(env) == AlertState::kAlert;
}

Result<ReplayResult> ReplayStream(const serve::ScoringSession& session,
                                  ModelHealthMonitor* monitor,
                                  const data::Dataset& stream,
                                  const ReplayOptions& options) {
  if (monitor == nullptr) {
    return Status::InvalidArgument("monitor must be non-null");
  }
  if (stream.NumRows() == 0) {
    return Status::InvalidArgument("empty replay stream");
  }
  if (options.batch_rows == 0) {
    return Status::InvalidArgument("batch_rows must be positive");
  }

  // Rows of each (year, half) period in dataset order; the map iterates
  // periods chronologically.
  std::map<std::pair<int, int>, std::vector<size_t>> periods;
  for (size_t i = 0; i < stream.NumRows(); ++i) {
    if (options.only_year != 0 && stream.years()[i] != options.only_year) {
      continue;
    }
    periods[{stream.years()[i], stream.halves()[i]}].push_back(i);
  }
  if (periods.empty()) {
    return Status::InvalidArgument("no rows to replay after the year filter");
  }

  ReplayResult result;
  result.periods.reserve(periods.size());
  std::vector<double> scores;
  for (const auto& [when, rows] : periods) {
    LIGHTMIRM_ASSIGN_OR_RETURN(const data::Dataset period,
                               stream.Select(rows));
    for (size_t begin = 0; begin < period.NumRows();
         begin += options.batch_rows) {
      const size_t end =
          std::min(period.NumRows(), begin + options.batch_rows);
      std::vector<size_t> batch_rows(end - begin);
      for (size_t i = begin; i < end; ++i) batch_rows[i - begin] = i;
      LIGHTMIRM_ASSIGN_OR_RETURN(const data::Dataset batch,
                                 period.Select(batch_rows));
      LIGHTMIRM_RETURN_NOT_OK(
          session.Score(batch.features(), &batch.envs(), &scores));
      LIGHTMIRM_RETURN_NOT_OK(monitor->ObserveBatch(
          scores, &batch.envs(),
          options.feed_labels ? &batch.labels() : nullptr));
    }
    ReplayPeriod replayed;
    replayed.year = when.first;
    replayed.half = when.second;
    replayed.rows = rows.size();
    replayed.health = monitor->Evaluate(options.registry);
    result.periods.push_back(std::move(replayed));
  }
  return result;
}

Result<ReplayResult> ReplayCompressedStream(
    const serve::ScoringSession& session, ModelHealthMonitor* monitor,
    data::ColumnStoreReader* reader, const ReplayOptions& options) {
  if (monitor == nullptr) {
    return Status::InvalidArgument("monitor must be non-null");
  }
  if (reader == nullptr) {
    return Status::InvalidArgument("reader must be non-null");
  }
  if (options.batch_rows == 0) {
    return Status::InvalidArgument("batch_rows must be positive");
  }
  if (reader->total_rows() == 0) {
    return Status::InvalidArgument("empty replay stream");
  }

  // Pass 1 — build the period index from chunk headers and int columns
  // only. The chunk index's year range skips whole chunks under a year
  // filter; feature payloads are not touched either way. Chunks ascend and
  // rows within a chunk ascend, so each period's row list is in global
  // dataset order — the same order ReplayStream visits.
  std::map<std::pair<int, int>, std::vector<std::pair<size_t, size_t>>>
      periods;
  for (size_t c = 0; c < reader->num_chunks(); ++c) {
    const data::ChunkInfo& info = reader->chunk(c);
    if (options.only_year != 0 && (info.year_min > options.only_year ||
                                   info.year_max < options.only_year)) {
      continue;
    }
    LIGHTMIRM_ASSIGN_OR_RETURN(const data::ChunkTimes times,
                               reader->ReadChunkTimes(c));
    for (size_t r = 0; r < times.years.size(); ++r) {
      if (options.only_year != 0 && times.years[r] != options.only_year) {
        continue;
      }
      periods[{times.years[r], times.halves[r]}].push_back({c, r});
    }
  }
  if (periods.empty()) {
    return Status::InvalidArgument("no rows to replay after the year filter");
  }

  // Pass 2 — replay period by period, decoding a chunk only when one of
  // its rows comes due and keeping a single decoded chunk cached (rows
  // ascend within a period, so each period streams chunks forward).
  const size_t d = reader->schema().num_features();
  ReplayResult result;
  result.periods.reserve(periods.size());
  std::vector<double> scores;
  size_t cached_index = std::numeric_limits<size_t>::max();
  data::Dataset cached_chunk;
  for (const auto& [when, rows] : periods) {
    for (size_t begin = 0; begin < rows.size(); begin += options.batch_rows) {
      const size_t end = std::min(rows.size(), begin + options.batch_rows);
      const size_t n = end - begin;
      Matrix feats(n, d);
      std::vector<int> envs(n), labels(n);
      for (size_t i = 0; i < n; ++i) {
        const auto [chunk, row] = rows[begin + i];
        if (chunk != cached_index) {
          LIGHTMIRM_ASSIGN_OR_RETURN(cached_chunk, reader->ReadChunk(chunk));
          cached_index = chunk;
        }
        const double* src = cached_chunk.features().Row(row);
        std::copy(src, src + d, feats.Row(i));
        envs[i] = cached_chunk.envs()[row];
        labels[i] = cached_chunk.labels()[row];
      }
      LIGHTMIRM_RETURN_NOT_OK(session.Score(feats, &envs, &scores));
      LIGHTMIRM_RETURN_NOT_OK(monitor->ObserveBatch(
          scores, &envs, options.feed_labels ? &labels : nullptr));
    }
    ReplayPeriod replayed;
    replayed.year = when.first;
    replayed.half = when.second;
    replayed.rows = rows.size();
    replayed.health = monitor->Evaluate(options.registry);
    result.periods.push_back(std::move(replayed));
  }
  return result;
}

}  // namespace lightmirm::obs
