#include "obs/replay.h"

#include <algorithm>
#include <map>
#include <utility>

namespace lightmirm::obs {

AlertState ReplayResult::WorstState(int env) const {
  AlertState worst = AlertState::kOk;
  for (const ReplayPeriod& period : periods) {
    const auto it = period.health.per_env.find(env);
    if (it == period.health.per_env.end()) continue;
    if (static_cast<int>(it->second.overall) > static_cast<int>(worst)) {
      worst = it->second.overall;
    }
  }
  return worst;
}

AlertState ReplayResult::WorstOverall() const {
  AlertState worst = AlertState::kOk;
  for (const ReplayPeriod& period : periods) {
    if (static_cast<int>(period.health.overall) > static_cast<int>(worst)) {
      worst = period.health.overall;
    }
  }
  return worst;
}

bool ReplayResult::ReachedAlert(int env) const {
  return WorstState(env) == AlertState::kAlert;
}

Result<ReplayResult> ReplayStream(const serve::ScoringSession& session,
                                  ModelHealthMonitor* monitor,
                                  const data::Dataset& stream,
                                  const ReplayOptions& options) {
  if (monitor == nullptr) {
    return Status::InvalidArgument("monitor must be non-null");
  }
  if (stream.NumRows() == 0) {
    return Status::InvalidArgument("empty replay stream");
  }
  if (options.batch_rows == 0) {
    return Status::InvalidArgument("batch_rows must be positive");
  }

  // Rows of each (year, half) period in dataset order; the map iterates
  // periods chronologically.
  std::map<std::pair<int, int>, std::vector<size_t>> periods;
  for (size_t i = 0; i < stream.NumRows(); ++i) {
    periods[{stream.years()[i], stream.halves()[i]}].push_back(i);
  }

  ReplayResult result;
  result.periods.reserve(periods.size());
  std::vector<double> scores;
  for (const auto& [when, rows] : periods) {
    LIGHTMIRM_ASSIGN_OR_RETURN(const data::Dataset period,
                               stream.Select(rows));
    for (size_t begin = 0; begin < period.NumRows();
         begin += options.batch_rows) {
      const size_t end =
          std::min(period.NumRows(), begin + options.batch_rows);
      std::vector<size_t> batch_rows(end - begin);
      for (size_t i = begin; i < end; ++i) batch_rows[i - begin] = i;
      LIGHTMIRM_ASSIGN_OR_RETURN(const data::Dataset batch,
                                 period.Select(batch_rows));
      LIGHTMIRM_RETURN_NOT_OK(
          session.Score(batch.features(), &batch.envs(), &scores));
      LIGHTMIRM_RETURN_NOT_OK(monitor->ObserveBatch(
          scores, &batch.envs(),
          options.feed_labels ? &batch.labels() : nullptr));
    }
    ReplayPeriod replayed;
    replayed.year = when.first;
    replayed.half = when.second;
    replayed.rows = rows.size();
    replayed.health = monitor->Evaluate(options.registry);
    result.periods.push_back(std::move(replayed));
  }
  return result;
}

}  // namespace lightmirm::obs
