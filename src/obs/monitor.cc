#include "obs/monitor.h"

#include <algorithm>

#include "common/string_util.h"
#include "metrics/streaming.h"

namespace lightmirm::obs {
namespace {

constexpr double kMinReferenceRate = 1e-6;

AlertState MaxState(AlertState a, AlertState b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

}  // namespace

const char* AlertStateName(AlertState state) {
  switch (state) {
    case AlertState::kOk:
      return "OK";
    case AlertState::kWarn:
      return "WARN";
    case AlertState::kAlert:
      return "ALERT";
  }
  return "?";
}

AlertState AlertStateMachine::Update(double value) {
  // Escalation is immediate; de-escalation requires clearing the lower
  // threshold by the hysteresis margin, so a value sitting exactly at a
  // threshold keeps the elevated state instead of flapping.
  const double clear_warn = thresholds_.warn * (1.0 - thresholds_.hysteresis);
  const double clear_alert =
      thresholds_.alert * (1.0 - thresholds_.hysteresis);
  switch (state_) {
    case AlertState::kOk:
      if (value >= thresholds_.alert) {
        state_ = AlertState::kAlert;
      } else if (value >= thresholds_.warn) {
        state_ = AlertState::kWarn;
      }
      break;
    case AlertState::kWarn:
      if (value >= thresholds_.alert) {
        state_ = AlertState::kAlert;
      } else if (value < clear_warn) {
        state_ = AlertState::kOk;
      }
      break;
    case AlertState::kAlert:
      if (value < clear_warn) {
        state_ = AlertState::kOk;
      } else if (value < clear_alert) {
        state_ = AlertState::kWarn;
      }
      break;
  }
  return state_;
}

ModelHealthMonitor::ModelHealthMonitor(ScoreReference reference,
                                       MonitorOptions options)
    : reference_(std::move(reference)),
      options_(options),
      global_(options_, reference_.num_bins),
      fairness_(options_.fairness_gap) {
  int max_env = -1;
  for (const auto& [env, bins] : reference_.per_env) {
    (void)bins;
    per_env_.emplace(env, EnvMonitor(options_, reference_.num_bins));
    max_env = std::max(max_env, env);
  }
  if (max_env >= 0) {
    env_index_.assign(static_cast<size_t>(max_env) + 1, nullptr);
    for (auto& [env, mon] : per_env_) {
      if (env >= 0) env_index_[static_cast<size_t>(env)] = &mon;
    }
  }
}

Result<std::unique_ptr<ModelHealthMonitor>> ModelHealthMonitor::Create(
    ScoreReference reference, MonitorOptions options) {
  if (reference.empty()) {
    return Status::InvalidArgument(
        "monitor needs a non-empty score reference (train the model with "
        "score-reference capture, or build one with BuildScoreReference)");
  }
  if (options.window == 0) {
    return Status::InvalidArgument("window capacity must be positive");
  }
  if (reference.num_bins > SlidingWindow::kMaxBins) {
    return Status::InvalidArgument(StrFormat(
        "score reference has %d bins; monitored windows support at most %d",
        reference.num_bins, SlidingWindow::kMaxBins));
  }
  return std::unique_ptr<ModelHealthMonitor>(
      new ModelHealthMonitor(std::move(reference), options));
}

Status ModelHealthMonitor::ObserveBatch(const std::vector<double>& scores,
                                        const std::vector<int>* envs,
                                        const std::vector<int>* labels) {
  if (envs != nullptr && envs->size() != scores.size()) {
    return Status::InvalidArgument(
        StrFormat("envs has %zu entries for %zu scores", envs->size(),
                  scores.size()));
  }
  if (labels != nullptr && labels->size() != scores.size()) {
    return Status::InvalidArgument(
        StrFormat("labels has %zu entries for %zu scores", labels->size(),
                  scores.size()));
  }
  if (labels != nullptr) {
    // Validate before feeding anything so a bad batch is all-or-nothing
    // (and the serving-path loop below stays branch-light).
    for (const int label : *labels) {
      if (label < -1 || label > 1) {
        return Status::InvalidArgument("labels must be -1, 0 or 1");
      }
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Per-row cost of the monitored serving path. Chunked passes: bin each
  // observation once, walk the global ring in a tight loop, then bucket the
  // chunk's rows by environment (stable counting sort — each window still
  // sees its rows in arrival order) so every province's ring and aggregate
  // lines are pulled in once per chunk instead of once per row. Those lines
  // are cold right after a scoring pass and their miss latency would
  // otherwise dominate the feed.
  constexpr size_t kChunk = 512;
  const int num_bins = reference_.num_bins;
  const size_t num_envs = env_index_.size();
  SlidingWindow::Entry entries[kChunk];
  uint32_t slot[kChunk];  // row -> env bucket; num_envs = unmonitored
  SlidingWindow::Entry reordered[kChunk];  // entries regrouped by bucket
  std::vector<uint32_t> bucket_ends(num_envs + 2, 0);
  for (size_t base = 0; base < scores.size(); base += kChunk) {
    const size_t n = std::min(kChunk, scores.size() - base);
    std::fill(bucket_ends.begin(), bucket_ends.end(), 0);
    for (size_t j = 0; j < n; ++j) {
      entries[j] = SlidingWindow::MakeEntry(
          scores[base + j],
          labels != nullptr ? (*labels)[base + j] : -1, num_bins);
      uint32_t s = static_cast<uint32_t>(num_envs);
      if (envs != nullptr) {
        const int env = (*envs)[base + j];
        if (env >= 0 && static_cast<size_t>(env) < num_envs &&
            env_index_[static_cast<size_t>(env)] != nullptr) {
          s = static_cast<uint32_t>(env);
        }
      }
      slot[j] = s;
      ++bucket_ends[s + 1];
    }
    // Prefetch every active env window before the global feed: the global
    // pass is long enough to hide the env windows' cold-miss latency.
    for (size_t e = 0; e < num_envs; ++e) {
      if (bucket_ends[e + 1] != 0) env_index_[e]->window.PrefetchNextSlot();
    }
    global_.window.AddBatch(entries, n);
    if (envs == nullptr || num_envs == 0) continue;
    for (size_t e = 1; e < bucket_ends.size(); ++e) {
      bucket_ends[e] += bucket_ends[e - 1];
    }
    // Scatter advances each bucket's cursor to its end; bucket e then
    // occupies [end of e-1, bucket_ends[e]).
    for (size_t j = 0; j < n; ++j) reordered[bucket_ends[slot[j]]++] = entries[j];
    for (size_t e = 0, pos = 0; e < num_envs; ++e) {
      const size_t end = bucket_ends[e];
      if (pos == end) continue;
      env_index_[e]->window.AddBatch(reordered + pos, end - pos);
      pos = end;
    }
  }
  return Status::OK();
}

namespace {

WindowAggregates CopyAggregates(const SlidingWindow& window) {
  WindowAggregates agg;
  agg.rows = window.size();
  agg.seen = window.total_seen();
  agg.labeled = window.labeled_total();
  agg.positives = window.positive_total();
  agg.counts = window.bin_counts();
  agg.labeled_counts = window.labeled_counts();
  agg.labeled_positives = window.labeled_positives();
  agg.score_sums = window.labeled_score_sums();
  return agg;
}

}  // namespace

WindowAggregates ModelHealthMonitor::GlobalWindow() const {
  std::lock_guard<std::mutex> lock(mu_);
  return CopyAggregates(global_.window);
}

Result<WindowAggregates> ModelHealthMonitor::EnvWindow(int env) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = per_env_.find(env);
  if (it == per_env_.end()) {
    return Status::NotFound(
        StrFormat("environment %d is not monitored", env));
  }
  return CopyAggregates(it->second.window);
}

MonitorAggregates ModelHealthMonitor::SnapshotWindows() const {
  std::lock_guard<std::mutex> lock(mu_);
  MonitorAggregates snapshot;
  snapshot.global = CopyAggregates(global_.window);
  for (const auto& [env, mon] : per_env_) {
    snapshot.per_env.emplace(env, CopyAggregates(mon.window));
  }
  return snapshot;
}

std::vector<int> ModelHealthMonitor::MonitoredEnvs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> envs;
  envs.reserve(per_env_.size());
  for (const auto& [env, mon] : per_env_) {
    (void)mon;
    envs.push_back(env);
  }
  return envs;
}

WindowHealth EvaluateWindowAggregates(const WindowAggregates& window,
                                      const BinnedScores& reference,
                                      const MonitorOptions& options,
                                      WindowStateMachines* machines,
                                      uint64_t* escalations) {
  WindowHealth health;
  health.seen = window.seen;
  health.window_rows = window.rows;
  health.labeled_rows = window.labeled;

  const auto advance = [escalations](AlertStateMachine* sm, double value,
                                     bool evaluable) {
    SignalHealth signal;
    signal.evaluated = evaluable;
    if (evaluable) {
      const AlertState before = sm->state();
      signal.value = value;
      signal.state = sm->Update(value);
      if (static_cast<int>(signal.state) > static_cast<int>(before) &&
          escalations != nullptr) {
        ++*escalations;
      }
    } else {
      signal.state = sm->state();  // hold
    }
    return signal;
  };

  // Distribution signals: window score histogram vs the reference.
  const bool dist_ready =
      health.window_rows >= options.min_rows && reference.Total() > 0;
  double psi = 0.0, drift = 0.0;
  if (dist_ready) {
    auto psi_result = metrics::PsiFromCounts(reference.counts, window.counts);
    auto ks_result = metrics::KsFromCounts(window.counts, reference.counts);
    psi = psi_result.ok() ? *psi_result : 0.0;
    drift = ks_result.ok() ? *ks_result : 0.0;
  }
  health.psi = advance(&machines->psi, psi, dist_ready);
  health.drift_ks = advance(&machines->drift_ks, drift, dist_ready);

  // Label signals over the window's labeled subset.
  const uint64_t labeled = window.labeled;
  const uint64_t positives = window.positives;
  const uint64_t negatives = labeled - positives;
  const bool rate_ready = labeled >= options.min_labeled;
  double rate_rise = 0.0;
  if (rate_ready) {
    health.default_rate =
        static_cast<double>(positives) / static_cast<double>(labeled);
    const double ref_rate =
        std::max(reference.DefaultRate(), kMinReferenceRate);
    rate_rise = std::max(0.0, health.default_rate - ref_rate) / ref_rate;
  }
  health.default_rate_rise =
      advance(&machines->default_rate_rise, rate_rise, rate_ready);

  const uint64_t ref_pos = reference.TotalPositives();
  const bool auc_ready = rate_ready && positives > 0 && negatives > 0 &&
                         ref_pos > 0 && ref_pos < reference.Total();
  double auc_drop = 0.0, ks_drop = 0.0;
  if (auc_ready) {
    std::vector<uint64_t> window_neg(window.labeled_counts.size(), 0);
    for (size_t b = 0; b < window_neg.size(); ++b) {
      window_neg[b] = window.labeled_counts[b] - window.labeled_positives[b];
    }
    const std::vector<uint64_t> ref_neg = reference.Negatives();
    auto auc =
        metrics::AucFromBinnedCounts(window.labeled_positives, window_neg);
    auto ks = metrics::KsFromCounts(window.labeled_positives, window_neg);
    auto ref_auc = metrics::AucFromBinnedCounts(reference.positives, ref_neg);
    auto ref_ks = metrics::KsFromCounts(reference.positives, ref_neg);
    if (auc.ok() && ref_auc.ok()) {
      health.auc = *auc;
      auc_drop = std::max(0.0, *ref_auc - *auc);
    }
    if (ks.ok() && ref_ks.ok()) {
      health.ks = *ks;
      ks_drop = std::max(0.0, *ref_ks - *ks);
    }
  }
  health.auc_drop = advance(&machines->auc_drop, auc_drop, auc_ready);
  health.ks_drop = advance(&machines->ks_drop, ks_drop, auc_ready);

  double ece = 0.0;
  if (rate_ready) {
    auto result = metrics::EceFromBinnedSums(
        window.labeled_counts, window.score_sums, window.labeled_positives);
    ece = result.ok() ? *result : 0.0;
  }
  health.calibration = advance(&machines->calibration, ece, rate_ready);

  health.overall = health.psi.state;
  health.overall = MaxState(health.overall, health.drift_ks.state);
  health.overall = MaxState(health.overall, health.default_rate_rise.state);
  health.overall = MaxState(health.overall, health.auc_drop.state);
  health.overall = MaxState(health.overall, health.ks_drop.state);
  health.overall = MaxState(health.overall, health.calibration.state);
  return health;
}

WindowAggregates MergeWindowAggregates(
    const std::vector<WindowAggregates>& parts) {
  WindowAggregates merged;
  size_t bins = 0;
  for (const WindowAggregates& part : parts) {
    bins = std::max(bins, part.counts.size());
  }
  merged.counts.assign(bins, 0);
  merged.labeled_counts.assign(bins, 0);
  merged.labeled_positives.assign(bins, 0);
  merged.score_sums.assign(bins, 0.0);
  for (const WindowAggregates& part : parts) {
    merged.rows += part.rows;
    merged.seen += part.seen;
    merged.labeled += part.labeled;
    merged.positives += part.positives;
    for (size_t b = 0; b < part.counts.size(); ++b) {
      merged.counts[b] += part.counts[b];
    }
    for (size_t b = 0; b < part.labeled_counts.size(); ++b) {
      merged.labeled_counts[b] += part.labeled_counts[b];
    }
    for (size_t b = 0; b < part.labeled_positives.size(); ++b) {
      merged.labeled_positives[b] += part.labeled_positives[b];
    }
    for (size_t b = 0; b < part.score_sums.size(); ++b) {
      merged.score_sums[b] += part.score_sums[b];
    }
  }
  return merged;
}

namespace {

// One environment's slot in a snapshot evaluation: merged-or-live
// aggregates, the matching reference histogram, and the state machines to
// advance. Shared by ModelHealthMonitor::Evaluate and
// MergedHealthEvaluator so the per-env loop + fairness-gap verdict logic
// exists exactly once.
struct EnvSlot {
  int env = 0;
  const WindowAggregates* window = nullptr;
  const BinnedScores* reference = nullptr;
  WindowStateMachines* machines = nullptr;
};

HealthSnapshot EvaluateSnapshotImpl(const MonitorOptions& options,
                                    const WindowAggregates& global_window,
                                    const BinnedScores& global_reference,
                                    WindowStateMachines* global_machines,
                                    const std::vector<EnvSlot>& envs,
                                    AlertStateMachine* fairness,
                                    uint64_t* evaluations,
                                    uint64_t* escalations) {
  HealthSnapshot snapshot;
  snapshot.evaluation = ++*evaluations;
  snapshot.global = EvaluateWindowAggregates(
      global_window, global_reference, options, global_machines, escalations);
  snapshot.overall = snapshot.global.overall;

  // Per-province windows, then the paper's minimax-fairness signal: the
  // worst-vs-best streaming AUC gap across provinces with enough labels.
  double best_auc = 0.0, worst_auc = 0.0;
  for (const EnvSlot& slot : envs) {
    WindowHealth health = EvaluateWindowAggregates(
        *slot.window, *slot.reference, options, slot.machines, escalations);
    const bool in_gap = health.labeled_rows >= options.fairness_min_labeled &&
                        health.auc_drop.evaluated;
    if (in_gap) {
      if (snapshot.fairness_envs.empty()) {
        best_auc = worst_auc = health.auc;
      } else {
        best_auc = std::max(best_auc, health.auc);
        worst_auc = std::min(worst_auc, health.auc);
      }
      snapshot.fairness_envs.push_back(slot.env);
    }
    snapshot.overall = MaxState(snapshot.overall, health.overall);
    snapshot.per_env.emplace(slot.env, std::move(health));
  }
  const bool gap_ready = snapshot.fairness_envs.size() >= 2;
  const double gap = gap_ready ? best_auc - worst_auc : 0.0;
  snapshot.fairness_gap.evaluated = gap_ready;
  if (gap_ready) {
    const AlertState before = fairness->state();
    snapshot.fairness_gap.value = gap;
    snapshot.fairness_gap.state = fairness->Update(gap);
    if (static_cast<int>(snapshot.fairness_gap.state) >
        static_cast<int>(before)) {
      ++*escalations;
    }
  } else {
    snapshot.fairness_gap.state = fairness->state();
  }
  snapshot.overall = MaxState(snapshot.overall, snapshot.fairness_gap.state);
  return snapshot;
}

}  // namespace

HealthSnapshot ModelHealthMonitor::Evaluate() {
  std::lock_guard<std::mutex> lock(mu_);
  // Snapshot the windows' O(bins) aggregates and run the shared verdict
  // code over them — the identical path MergedHealthEvaluator runs over
  // bin-wise sums, which is what makes single-monitor and merged-fleet
  // timelines comparable by construction.
  const WindowAggregates global_agg = CopyAggregates(global_.window);
  std::map<int, WindowAggregates> env_aggs;
  std::vector<EnvSlot> slots;
  slots.reserve(per_env_.size());
  for (auto& [env, mon] : per_env_) {
    const auto it =
        env_aggs.emplace(env, CopyAggregates(mon.window)).first;
    slots.push_back(EnvSlot{env, &it->second, &reference_.per_env.at(env),
                            &mon.machines});
  }
  return EvaluateSnapshotImpl(options_, global_agg, reference_.global,
                              &global_.machines, slots, &fairness_,
                              &evaluations_, &escalations_);
}

MergedHealthEvaluator::MergedHealthEvaluator(ScoreReference reference,
                                             MonitorOptions options)
    : reference_(std::move(reference)),
      options_(options),
      global_(options_),
      fairness_(options_.fairness_gap) {
  for (const auto& [env, bins] : reference_.per_env) {
    (void)bins;
    per_env_.emplace(env, WindowStateMachines(options_));
  }
}

Result<MergedHealthEvaluator> MergedHealthEvaluator::Create(
    ScoreReference reference, MonitorOptions options) {
  if (reference.empty()) {
    return Status::InvalidArgument(
        "merged evaluator needs a non-empty score reference");
  }
  return MergedHealthEvaluator(std::move(reference), options);
}

Result<HealthSnapshot> MergedHealthEvaluator::Evaluate(
    const std::vector<const ModelHealthMonitor*>& shards) {
  if (shards.empty()) {
    return Status::InvalidArgument(
        "merged evaluation needs at least one shard monitor");
  }
  for (const ModelHealthMonitor* shard : shards) {
    if (shard == nullptr) {
      return Status::InvalidArgument("null shard monitor");
    }
    if (shard->reference().num_bins != reference_.num_bins) {
      return Status::InvalidArgument(StrFormat(
          "shard monitor has %d reference bins, evaluator has %d",
          shard->reference().num_bins, reference_.num_bins));
    }
  }
  // One SnapshotWindows call per shard: each shard's global and env
  // aggregates are copied under a single lock acquisition, so a batch
  // observed concurrently with this tick is either in both views of its
  // shard or in neither — never a torn contribution (env labeled sums
  // exceeding what the shard's global window implied, or vice versa).
  std::vector<MonitorAggregates> snapshots;
  snapshots.reserve(shards.size());
  for (const ModelHealthMonitor* shard : shards) {
    snapshots.push_back(shard->SnapshotWindows());
  }
  std::vector<WindowAggregates> parts;
  parts.reserve(snapshots.size());
  for (MonitorAggregates& snapshot : snapshots) {
    parts.push_back(std::move(snapshot.global));
  }
  const WindowAggregates global_agg = MergeWindowAggregates(parts);
  std::map<int, WindowAggregates> env_aggs;
  std::vector<EnvSlot> slots;
  slots.reserve(per_env_.size());
  for (auto& [env, machines] : per_env_) {
    parts.clear();
    for (size_t s = 0; s < snapshots.size(); ++s) {
      const auto it = snapshots[s].per_env.find(env);
      if (it == snapshots[s].per_env.end()) {
        return Status::NotFound(StrFormat(
            "shard %zu does not monitor environment %d", s, env));
      }
      parts.push_back(std::move(it->second));
    }
    const auto it = env_aggs.emplace(env, MergeWindowAggregates(parts)).first;
    slots.push_back(EnvSlot{env, &it->second, &reference_.per_env.at(env),
                            &machines});
  }
  return EvaluateSnapshotImpl(options_, global_agg, reference_.global,
                              &global_, slots, &fairness_, &evaluations_,
                              &escalations_);
}

HealthSnapshot ModelHealthMonitor::Evaluate(MetricsRegistry* registry) {
  HealthSnapshot snapshot = Evaluate();
  if (registry != nullptr) PublishTo(registry, snapshot);
  return snapshot;
}

namespace {

void PublishWindow(MetricsRegistry* registry, const std::string& prefix,
                   const WindowHealth& health) {
  const auto signal = [&](const char* name, const SignalHealth& s) {
    registry->GetGauge(prefix + name)->Set(s.value);
    registry->GetGauge(prefix + name + "_state")
        ->Set(static_cast<double>(s.state));
  };
  registry->GetGauge(prefix + "window_rows")
      ->Set(static_cast<double>(health.window_rows));
  registry->GetGauge(prefix + "labeled_rows")
      ->Set(static_cast<double>(health.labeled_rows));
  registry->GetGauge(prefix + "default_rate")->Set(health.default_rate);
  registry->GetGauge(prefix + "auc")->Set(health.auc);
  registry->GetGauge(prefix + "ks")->Set(health.ks);
  signal("psi", health.psi);
  signal("drift_ks", health.drift_ks);
  signal("default_rate_rise", health.default_rate_rise);
  signal("auc_drop", health.auc_drop);
  signal("ks_drop", health.ks_drop);
  signal("calibration", health.calibration);
  registry->GetGauge(prefix + "state")
      ->Set(static_cast<double>(health.overall));
}

}  // namespace

void PublishHealthSnapshot(MetricsRegistry* registry,
                           const std::string& prefix,
                           const HealthSnapshot& snapshot,
                           const ScoreReference& reference) {
  if (registry == nullptr) return;
  PublishWindow(registry, prefix + "global.", snapshot.global);
  for (const auto& [env, health] : snapshot.per_env) {
    PublishWindow(registry,
                  prefix + "env." +
                      SanitizeMetricName(reference.EnvName(env)) + ".",
                  health);
  }
  registry->GetGauge(prefix + "fairness_gap")
      ->Set(snapshot.fairness_gap.value);
  registry->GetGauge(prefix + "fairness_gap_state")
      ->Set(static_cast<double>(snapshot.fairness_gap.state));
  registry->GetGauge(prefix + "state")
      ->Set(static_cast<double>(snapshot.overall));
  registry->GetGauge(prefix + "evaluations")
      ->Set(static_cast<double>(snapshot.evaluation));
}

void ModelHealthMonitor::PublishTo(MetricsRegistry* registry,
                                   const HealthSnapshot& snapshot) const {
  if (registry == nullptr) return;
  PublishHealthSnapshot(registry, "monitor.", snapshot, reference_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    registry->GetGauge("monitor.escalations")
        ->Set(static_cast<double>(escalations_));
  }
}

void MergedHealthEvaluator::PublishTo(MetricsRegistry* registry,
                                      const HealthSnapshot& snapshot) const {
  if (registry == nullptr) return;
  PublishHealthSnapshot(registry, "monitor.fleet.", snapshot, reference_);
  registry->GetGauge("monitor.fleet.escalations")
      ->Set(static_cast<double>(escalations_));
}

}  // namespace lightmirm::obs
