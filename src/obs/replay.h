// Streaming replay harness: drives a time-ordered dataset through a
// ScoringSession period-by-period — the deployment setting of the paper's
// online evaluation (and of Continual IRM: environments arriving as a
// stream). Each (year, half) period is scored in fixed-size batches, every
// batch is fed to a ModelHealthMonitor (scores, provinces, and the
// dataset's outcome labels standing in for delayed labels), and the
// monitor is evaluated once per period, so the result is a health
// trajectory: which provinces went WARN/ALERT in which window. The
// generator's finest time resolution is the half-year, so periods are
// halves; Fig 11's Hubei COVID shock lands exactly in the H1-2020 period.
//
// Replay feeds the monitor directly (it knows the outcomes); live serving
// attaches the monitor to the session instead and feeds scores unlabeled.
#pragma once

#include <vector>

#include "common/result.h"
#include "data/column_store.h"
#include "data/dataset.h"
#include "obs/monitor.h"
#include "serve/scoring_session.h"

namespace lightmirm::obs {

struct ReplayOptions {
  /// Rows per scored batch inside a period.
  size_t batch_rows = 512;
  /// Feed the dataset's labels to the monitor (delayed ground truth). When
  /// false, rows are observed unlabeled and only the distribution signals
  /// (PSI, drift KS) evaluate.
  bool feed_labels = true;
  /// When non-null, every period snapshot is published here.
  MetricsRegistry* registry = nullptr;
  /// When non-zero, only rows of this calendar year are replayed. The
  /// compressed path additionally skips whole chunks whose indexed year
  /// range excludes it, without decoding them.
  int only_year = 0;
};

/// One replayed (year, half) period and the monitor state after it.
struct ReplayPeriod {
  int year = 0;
  int half = 0;
  size_t rows = 0;
  HealthSnapshot health;
};

struct ReplayResult {
  std::vector<ReplayPeriod> periods;

  /// Worst overall state environment `env` reached across all periods
  /// (kOk when the monitor never tracked it).
  AlertState WorstState(int env) const;
  /// Worst snapshot-wide state across all periods.
  AlertState WorstOverall() const;
  /// True when `env` reached ALERT in at least one period.
  bool ReachedAlert(int env) const;
};

/// Replays `stream` (any mix of years; periods are processed in ascending
/// (year, half) order, rows within a period in dataset order) through
/// `session` and `monitor`. Errors when the dataset is empty or scoring
/// fails. The session's own attached monitor, if any, is not involved.
Result<ReplayResult> ReplayStream(const serve::ScoringSession& session,
                                  ModelHealthMonitor* monitor,
                                  const data::Dataset& stream,
                                  const ReplayOptions& options = {});

/// Out-of-core form of ReplayStream: replays a compressed column store
/// (data::ColumnStoreReader) one chunk at a time instead of an in-RAM
/// dataset. The period structure, row order and batch boundaries are
/// identical to ReplayStream over the store's decoded contents — a first
/// pass over the chunk *headers* (plus the cheap int columns) maps every
/// (year, half) period to its rows, then periods are replayed in ascending
/// order, decoding each feature chunk only when one of its rows is due.
/// With a lossless store — or a serving-grid store scored by the forest
/// its grids came from — the scores, and therefore the monitor verdicts,
/// are bit-identical to replaying the original dataset. Peak memory is one
/// decoded chunk plus one batch.
Result<ReplayResult> ReplayCompressedStream(
    const serve::ScoringSession& session, ModelHealthMonitor* monitor,
    data::ColumnStoreReader* reader, const ReplayOptions& options = {});

}  // namespace lightmirm::obs
