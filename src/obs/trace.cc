#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <vector>

namespace lightmirm::obs {
namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Chrome trace recorder: a mutex-protected event buffer behind one relaxed
// atomic flag, so the span hot path pays a single load when recording is
// off. Spans push on close (scope exit), never inside the measured region.
std::atomic<bool> g_trace_recording{false};
std::mutex g_trace_mu;
std::vector<TraceEvent>& TraceBuffer() {
  static std::vector<TraceEvent>* buffer = new std::vector<TraceEvent>();
  return *buffer;
}
int64_t g_trace_epoch_ns = 0;

// Small stable per-thread ids: nicer lanes in the trace viewer than
// std::thread::id hashes, and deterministic within a run.
int ThreadTraceId() {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// Per-thread span state. Samples buffer until the root span closes, then
// merge into each sample's registry in one pass.
struct SpanBuffer {
  std::string path;  // dot-joined names of the open spans
  int depth = 0;
  struct Sample {
    std::string metric;  // "span.<path>.seconds"
    double seconds;
    MetricsRegistry* registry;
  };
  std::vector<Sample> samples;
};

thread_local SpanBuffer tls_spans;

}  // namespace

TraceSpan::TraceSpan(MetricsRegistry* registry, std::string_view name)
    : registry_(registry) {
  if (registry_ == nullptr) return;
  SpanBuffer& buf = tls_spans;
  path_restore_ = buf.path.size();
  if (!buf.path.empty()) buf.path += '.';
  buf.path += SanitizeMetricName(name);
  ++buf.depth;
  start_ns_ = NowNanos();
}

void SetTraceRecordingEnabled(bool enabled) {
  std::lock_guard<std::mutex> lock(g_trace_mu);
  if (enabled) {
    TraceBuffer().clear();
    g_trace_epoch_ns = NowNanos();
  }
  g_trace_recording.store(enabled, std::memory_order_release);
}

bool TraceRecordingEnabled() {
  return g_trace_recording.load(std::memory_order_relaxed);
}

std::vector<TraceEvent> RecordedTraceEvents() {
  std::lock_guard<std::mutex> lock(g_trace_mu);
  return TraceBuffer();
}

TraceSpan::~TraceSpan() {
  if (registry_ == nullptr) return;
  SpanBuffer& buf = tls_spans;
  buf.samples.push_back(
      {"span." + buf.path + ".seconds", Seconds(), registry_});
  if (g_trace_recording.load(std::memory_order_relaxed)) {
    const int64_t end_ns = NowNanos();
    std::lock_guard<std::mutex> lock(g_trace_mu);
    if (g_trace_recording.load(std::memory_order_relaxed)) {
      TraceBuffer().push_back(
          {buf.path, static_cast<double>(start_ns_ - g_trace_epoch_ns) * 1e-3,
           static_cast<double>(end_ns - start_ns_) * 1e-3, ThreadTraceId()});
    }
  }
  buf.path.resize(path_restore_);
  if (--buf.depth == 0) {
    for (const SpanBuffer::Sample& s : buf.samples) {
      s.registry->GetHistogram(s.metric)->Record(s.seconds);
    }
    buf.samples.clear();
  }
}

double TraceSpan::Seconds() const {
  if (registry_ == nullptr) return 0.0;
  return static_cast<double>(NowNanos() - start_ns_) * 1e-9;
}

int TraceSpan::CurrentDepth() { return tls_spans.depth; }

}  // namespace lightmirm::obs
