#include "obs/trace.h"

#include <chrono>
#include <vector>

namespace lightmirm::obs {
namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-thread span state. Samples buffer until the root span closes, then
// merge into each sample's registry in one pass.
struct SpanBuffer {
  std::string path;  // dot-joined names of the open spans
  int depth = 0;
  struct Sample {
    std::string metric;  // "span.<path>.seconds"
    double seconds;
    MetricsRegistry* registry;
  };
  std::vector<Sample> samples;
};

thread_local SpanBuffer tls_spans;

}  // namespace

TraceSpan::TraceSpan(MetricsRegistry* registry, std::string_view name)
    : registry_(registry) {
  if (registry_ == nullptr) return;
  SpanBuffer& buf = tls_spans;
  path_restore_ = buf.path.size();
  if (!buf.path.empty()) buf.path += '.';
  buf.path += SanitizeMetricName(name);
  ++buf.depth;
  start_ns_ = NowNanos();
}

TraceSpan::~TraceSpan() {
  if (registry_ == nullptr) return;
  SpanBuffer& buf = tls_spans;
  buf.samples.push_back(
      {"span." + buf.path + ".seconds", Seconds(), registry_});
  buf.path.resize(path_restore_);
  if (--buf.depth == 0) {
    for (const SpanBuffer::Sample& s : buf.samples) {
      s.registry->GetHistogram(s.metric)->Record(s.seconds);
    }
    buf.samples.clear();
  }
}

double TraceSpan::Seconds() const {
  if (registry_ == nullptr) return 0.0;
  return static_cast<double>(NowNanos() - start_ns_) * 1e-9;
}

int TraceSpan::CurrentDepth() { return tls_spans.depth; }

}  // namespace lightmirm::obs
