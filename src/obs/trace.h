// RAII trace spans. A span measures the wall-clock of a scope and records
// it as histogram `span.<path>.seconds` in a MetricsRegistry, where <path>
// is the dot-joined chain of the spans active on the current thread
// ("train.LightMIRM.epoch.inner_optimization"). Closing spans accumulate
// in a thread-local buffer; when the outermost span on the thread closes,
// the buffer merges into the registry under one name-resolution pass — so
// nested scopes on a hot path never touch the registry mutex, and span
// counts are identical at any thread count (each pooled task roots its own
// chain on its worker thread).
// When trace recording is enabled (SetTraceRecordingEnabled), every closing
// span additionally appends a TraceEvent — name, relative start, duration,
// stable thread id — to a process-wide buffer that obs/export.h renders as
// Chrome trace-event JSON for chrome://tracing / Perfetto. Recording is off
// by default and costs one relaxed atomic load per span close when off.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace lightmirm::obs {

/// One completed span occurrence for the Chrome trace export. Timestamps
/// are microseconds relative to the moment recording was (re-)enabled.
struct TraceEvent {
  std::string name;   ///< dot-joined span path
  double ts_us = 0;   ///< start time
  double dur_us = 0;  ///< duration
  int tid = 0;        ///< stable small id of the recording thread
};

/// Enables/disables span-occurrence recording. Enabling clears the buffer
/// and restarts the relative clock. Disabled by default.
void SetTraceRecordingEnabled(bool enabled);
bool TraceRecordingEnabled();

/// Snapshot of the recorded events (chronological per thread; threads
/// interleave in close order).
std::vector<TraceEvent> RecordedTraceEvents();

class TraceSpan {
 public:
  /// Opens a span named `name` (sanitized) nested under the thread's
  /// current span, if any. A null registry makes the span inert.
  TraceSpan(MetricsRegistry* registry, std::string_view name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Seconds elapsed since construction (0 for an inert span).
  double Seconds() const;

  /// Nesting depth of the calling thread's active span chain (0 = no span
  /// open). Lets callers prefix only root spans.
  static int CurrentDepth();

 private:
  MetricsRegistry* registry_;
  size_t path_restore_ = 0;  // length of the thread path before this span
  int64_t start_ns_ = 0;
};

}  // namespace lightmirm::obs
