#include "obs/metrics.h"

#include <algorithm>
#include <cassert>

namespace lightmirm::obs {
namespace {

std::atomic<bool> g_telemetry_enabled{true};

// Relaxed atomic add for pre-C++20-hardware-support double accumulation.
void AtomicAdd(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + v,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  assert(!bounds_.empty());
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Record(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
}

double Histogram::Mean() const {
  const uint64_t n = Count();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

double Histogram::Quantile(double q) const {
  const std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double next = cum + static_cast<double>(counts[i]);
    if (next >= target) {
      if (i == bounds_.size()) return bounds_.back();  // overflow: clamp
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double frac =
          (target - cum) / static_cast<double>(counts[i]);
      return lower + frac * (bounds_[i] - lower);
    }
    cum = next;
  }
  return bounds_.back();
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::MergeFrom(const Histogram& other) {
  assert(bounds_ == other.bounds_);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].fetch_add(other.buckets_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
  count_.fetch_add(other.Count(), std::memory_order_relaxed);
  AtomicAdd(&sum_, other.Sum());
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& Histogram::DefaultLatencyBounds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    for (double decade = 1e-6; decade < 20.0; decade *= 10.0) {
      b.push_back(decade);
      b.push_back(2.5 * decade);
      b.push_back(5.0 * decade);
    }
    return b;  // 1µs .. 50s, {1, 2.5, 5} per decade
  }();
  return bounds;
}

void Series::Append(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  values_.push_back(v);
}

std::vector<double> Series::Values() const {
  std::lock_guard<std::mutex> lock(mu_);
  return values_;
}

size_t Series::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return values_.size();
}

void Series::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  values_.clear();
}

std::string SanitizeMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  bool pending_sep = false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.';
    if (ok) {
      if (pending_sep && !out.empty()) out += '_';
      pending_sep = false;
      out += c;
    } else {
      pending_sep = true;
    }
  }
  return out.empty() ? "_" : out;
}

namespace {

// Canonical cell key inside one family: labels sorted by name, joined
// with unprintable separators so no label value can collide with the
// joining scheme.
MetricLabels CanonicalLabels(const MetricLabels& labels) {
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

std::string LabelKey(const MetricLabels& canonical) {
  std::string key;
  for (const auto& [name, value] : canonical) {
    key += name;
    key += '\x1e';
    key += value;
    key += '\x1f';
  }
  return key;
}

}  // namespace

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>* bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(
        bounds != nullptr ? *bounds : Histogram::DefaultLatencyBounds());
  }
  return slot.get();
}

Series* MetricsRegistry::GetSeries(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = series_[name];
  if (slot == nullptr) slot = std::make_unique<Series>();
  return slot.get();
}

Counter* MetricsRegistry::GetCounter(const std::string& family,
                                     const MetricLabels& labels) {
  MetricLabels canonical = CanonicalLabels(labels);
  std::string key = LabelKey(canonical);
  std::lock_guard<std::mutex> lock(mu_);
  auto& cell = labeled_counters_[family][key];
  if (cell.metric == nullptr) {
    cell.labels = std::move(canonical);
    cell.metric = std::make_unique<Counter>();
  }
  return cell.metric.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& family,
                                 const MetricLabels& labels) {
  MetricLabels canonical = CanonicalLabels(labels);
  std::string key = LabelKey(canonical);
  std::lock_guard<std::mutex> lock(mu_);
  auto& cell = labeled_gauges_[family][key];
  if (cell.metric == nullptr) {
    cell.labels = std::move(canonical);
    cell.metric = std::make_unique<Gauge>();
  }
  return cell.metric.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& family,
                                         const MetricLabels& labels,
                                         const std::vector<double>* bounds) {
  MetricLabels canonical = CanonicalLabels(labels);
  std::string key = LabelKey(canonical);
  std::lock_guard<std::mutex> lock(mu_);
  auto& cell = labeled_histograms_[family][key];
  if (cell.metric == nullptr) {
    cell.labels = std::move(canonical);
    cell.metric = std::make_unique<Histogram>(
        bounds != nullptr ? *bounds : Histogram::DefaultLatencyBounds());
  }
  return cell.metric.get();
}

std::vector<std::pair<std::string, const Counter*>>
MetricsRegistry::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Counter*>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.get());
  return out;
}

std::vector<std::pair<std::string, const Gauge*>> MetricsRegistry::Gauges()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Gauge*>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g.get());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>>
MetricsRegistry::Histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

std::vector<std::pair<std::string, const Series*>>
MetricsRegistry::AllSeries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Series*>> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) out.emplace_back(name, s.get());
  return out;
}

template <typename Metric>
std::vector<LabeledMetric<Metric>> MetricsRegistry::SnapshotLabeled(
    const LabeledFamilies<Metric>& families) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LabeledMetric<Metric>> out;
  for (const auto& [family, cells] : families) {
    for (const auto& [key, cell] : cells) {
      out.push_back({family, cell.labels, cell.metric.get()});
    }
  }
  return out;
}

std::vector<LabeledMetric<Counter>> MetricsRegistry::LabeledCounters() const {
  return SnapshotLabeled(labeled_counters_);
}

std::vector<LabeledMetric<Gauge>> MetricsRegistry::LabeledGauges() const {
  return SnapshotLabeled(labeled_gauges_);
}

std::vector<LabeledMetric<Histogram>> MetricsRegistry::LabeledHistograms()
    const {
  return SnapshotLabeled(labeled_histograms_);
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
  for (auto& [name, s] : series_) s->Reset();
  for (auto& [family, cells] : labeled_counters_) {
    for (auto& [key, cell] : cells) cell.metric->Reset();
  }
  for (auto& [family, cells] : labeled_gauges_) {
    for (auto& [key, cell] : cells) cell.metric->Reset();
  }
  for (auto& [family, cells] : labeled_histograms_) {
    for (auto& [key, cell] : cells) cell.metric->Reset();
  }
}

MetricsRegistry* MetricsRegistry::Global() {
  // Intentionally leaked: worker threads and cached handles may outlive
  // static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

bool TelemetryEnabled() {
  return g_telemetry_enabled.load(std::memory_order_relaxed);
}

void SetTelemetryEnabled(bool enabled) {
  g_telemetry_enabled.store(enabled, std::memory_order_relaxed);
}

}  // namespace lightmirm::obs
