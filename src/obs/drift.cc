#include "obs/drift.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/string_util.h"

namespace lightmirm::obs {

uint64_t BinnedScores::Total() const {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  return total;
}

uint64_t BinnedScores::TotalPositives() const {
  uint64_t total = 0;
  for (uint64_t p : positives) total += p;
  return total;
}

double BinnedScores::DefaultRate() const {
  const uint64_t total = Total();
  if (total == 0) return 0.0;
  return static_cast<double>(TotalPositives()) / static_cast<double>(total);
}

std::vector<uint64_t> BinnedScores::Negatives() const {
  std::vector<uint64_t> neg(counts.size(), 0);
  for (size_t b = 0; b < counts.size(); ++b) neg[b] = counts[b] - positives[b];
  return neg;
}

std::string ScoreReference::EnvName(int env) const {
  if (env >= 0 && static_cast<size_t>(env) < env_names.size() &&
      !env_names[static_cast<size_t>(env)].empty()) {
    return env_names[static_cast<size_t>(env)];
  }
  return StrFormat("env%d", env);
}

namespace {

void WriteBins(const BinnedScores& bins, std::ostream* out) {
  for (uint64_t c : bins.counts) {
    (*out) << " " << static_cast<unsigned long long>(c);
  }
  for (uint64_t p : bins.positives) {
    (*out) << " " << static_cast<unsigned long long>(p);
  }
  (*out) << "\n";
}

Result<BinnedScores> ReadBins(std::istringstream* ss, int num_bins) {
  BinnedScores bins;
  bins.counts.resize(static_cast<size_t>(num_bins));
  bins.positives.resize(static_cast<size_t>(num_bins));
  for (auto* vec : {&bins.counts, &bins.positives}) {
    for (uint64_t& v : *vec) {
      unsigned long long parsed = 0;
      if (!((*ss) >> parsed)) {
        return Status::InvalidArgument("truncated score-reference bins");
      }
      v = parsed;
    }
  }
  for (size_t b = 0; b < bins.counts.size(); ++b) {
    if (bins.positives[b] > bins.counts[b]) {
      return Status::InvalidArgument(
          "score-reference positives exceed bin count");
    }
  }
  return bins;
}

}  // namespace

Status ScoreReference::WriteTo(std::ostream* out) const {
  (*out) << "score_reference " << num_bins << " " << per_env.size() << " "
         << env_names.size() << "\n";
  if (empty()) {
    return out->good() ? Status::OK() : Status::IoError("write failed");
  }
  (*out) << "global";
  WriteBins(global, out);
  for (const auto& [env, bins] : per_env) {
    (*out) << "env " << env;
    WriteBins(bins, out);
  }
  // One name per line (province names may contain spaces).
  for (const std::string& name : env_names) (*out) << "name " << name << "\n";
  return out->good() ? Status::OK() : Status::IoError("write failed");
}

Result<ScoreReference> ScoreReference::Parse(std::istream* in) {
  ScoreReference ref;
  std::string line;
  // Skip blank lines; a clean end-of-stream means "no reference persisted"
  // (model files written before references existed).
  do {
    if (!std::getline(*in, line)) return ref;
  } while (Trim(line).empty());

  std::istringstream header(line);
  std::string tag;
  size_t num_envs = 0, num_names = 0;
  if (!(header >> tag >> ref.num_bins >> num_envs >> num_names) ||
      tag != "score_reference") {
    return Status::InvalidArgument("expected score_reference header");
  }
  if (ref.num_bins == 0) return ref;
  if (ref.num_bins < 2 || ref.num_bins > 10000) {
    return Status::InvalidArgument("bad score_reference bin count");
  }
  {
    if (!std::getline(*in, line)) {
      return Status::IoError("truncated score_reference");
    }
    std::istringstream ss(line);
    if (!(ss >> tag) || tag != "global") {
      return Status::InvalidArgument("expected global score histogram");
    }
    LIGHTMIRM_ASSIGN_OR_RETURN(ref.global, ReadBins(&ss, ref.num_bins));
  }
  for (size_t i = 0; i < num_envs; ++i) {
    if (!std::getline(*in, line)) {
      return Status::IoError("truncated score_reference");
    }
    std::istringstream ss(line);
    int env = 0;
    if (!(ss >> tag >> env) || tag != "env") {
      return Status::InvalidArgument("expected env score histogram");
    }
    LIGHTMIRM_ASSIGN_OR_RETURN(BinnedScores bins, ReadBins(&ss, ref.num_bins));
    ref.per_env.emplace(env, std::move(bins));
  }
  ref.env_names.reserve(num_names);
  for (size_t i = 0; i < num_names; ++i) {
    if (!std::getline(*in, line)) {
      return Status::IoError("truncated score_reference names");
    }
    if (line.rfind("name ", 0) != 0) {
      return Status::InvalidArgument("expected score_reference name line");
    }
    ref.env_names.push_back(line.substr(5));
  }
  return ref;
}

Result<ScoreReference> BuildScoreReference(
    const std::vector<double>& scores, const std::vector<int>& labels,
    const std::vector<int>& envs, int num_bins, size_t min_env_rows,
    std::vector<std::string> env_names) {
  if (num_bins < 2) return Status::InvalidArgument("num_bins must be >= 2");
  if (scores.empty()) return Status::InvalidArgument("no scores");
  if (labels.size() != scores.size()) {
    return Status::InvalidArgument("labels misaligned with scores");
  }
  if (!envs.empty() && envs.size() != scores.size()) {
    return Status::InvalidArgument("envs misaligned with scores");
  }
  ScoreReference ref;
  ref.num_bins = num_bins;
  ref.env_names = std::move(env_names);
  const size_t bins = static_cast<size_t>(num_bins);
  ref.global.counts.assign(bins, 0);
  ref.global.positives.assign(bins, 0);
  std::map<int, BinnedScores> per_env;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (labels[i] != 0 && labels[i] != 1) {
      return Status::InvalidArgument("labels must be 0 or 1");
    }
    const size_t b = static_cast<size_t>(ScoreBin(scores[i], num_bins));
    ref.global.counts[b] += 1;
    ref.global.positives[b] += static_cast<uint64_t>(labels[i]);
    if (!envs.empty()) {
      BinnedScores& env_bins = per_env[envs[i]];
      if (env_bins.counts.empty()) {
        env_bins.counts.assign(bins, 0);
        env_bins.positives.assign(bins, 0);
      }
      env_bins.counts[b] += 1;
      env_bins.positives[b] += static_cast<uint64_t>(labels[i]);
    }
  }
  for (auto& [env, env_bins] : per_env) {
    if (env_bins.Total() >= min_env_rows) {
      ref.per_env.emplace(env, std::move(env_bins));
    }
  }
  return ref;
}

Status SlidingWindow::SaveState(std::ostream* out) const {
  (*out) << "sliding_window " << num_bins_ << " " << capacity_ << " "
         << next_ << " " << static_cast<unsigned long long>(total_seen_)
         << " " << ring_.size() << "\n";
  (*out) << "ring";
  for (const Entry& e : ring_) {
    (*out) << " " << static_cast<unsigned>(e.qscore) << " "
           << static_cast<unsigned>(e.bin) << " "
           << static_cast<int>(e.label);
  }
  (*out) << "\n";
  const auto write_counts = [out](const char* tag,
                                  const std::vector<uint64_t>& v) {
    (*out) << tag;
    for (uint64_t c : v) (*out) << " " << static_cast<unsigned long long>(c);
    (*out) << "\n";
  };
  write_counts("counts", counts_);
  write_counts("labeled", labeled_);
  write_counts("positives", positives_);
  (*out) << "score_sums";
  for (double s : score_sums_) (*out) << " " << FormatG17(s);
  (*out) << "\n";
  (*out) << "labeled_totals "
         << static_cast<unsigned long long>(labeled_total_) << " "
         << static_cast<unsigned long long>(positive_total_) << "\n";
  return out->good() ? Status::OK() : Status::IoError("write failed");
}

Result<SlidingWindow> SlidingWindow::LoadState(std::istream* in) {
  std::string line;
  if (!std::getline(*in, line)) {
    return Status::IoError("truncated sliding_window state");
  }
  std::istringstream header(line);
  std::string tag;
  int num_bins = 0;
  size_t capacity = 0, next = 0, ring_size = 0;
  unsigned long long total_seen = 0;
  if (!(header >> tag >> num_bins >> capacity >> next >> total_seen >>
        ring_size) ||
      tag != "sliding_window") {
    return Status::InvalidArgument("expected sliding_window header");
  }
  if (num_bins < 2 || num_bins > kMaxBins) {
    return Status::InvalidArgument("bad sliding_window bin count");
  }
  if (capacity == 0 || ring_size > capacity || next >= capacity ||
      (ring_size < capacity && next != ring_size)) {
    return Status::InvalidArgument("inconsistent sliding_window ring shape");
  }
  SlidingWindow window(num_bins, capacity);
  window.next_ = next;
  window.total_seen_ = total_seen;
  if (!std::getline(*in, line)) {
    return Status::IoError("truncated sliding_window ring");
  }
  {
    std::istringstream ss(line);
    if (!(ss >> tag) || tag != "ring") {
      return Status::InvalidArgument("expected sliding_window ring line");
    }
    window.ring_.reserve(ring_size);
    for (size_t i = 0; i < ring_size; ++i) {
      unsigned qscore = 0, bin = 0;
      int label = 0;
      if (!(ss >> qscore >> bin >> label)) {
        return Status::InvalidArgument("truncated sliding_window ring line");
      }
      if (qscore > 65535u || bin >= static_cast<unsigned>(num_bins) ||
          label < -1 || label > 1) {
        return Status::InvalidArgument("bad sliding_window ring entry");
      }
      window.ring_.push_back(Entry{static_cast<uint16_t>(qscore),
                                   static_cast<uint8_t>(bin),
                                   static_cast<int8_t>(label)});
    }
  }
  const auto read_counts = [&](const char* want, std::vector<uint64_t>* v) {
    if (!std::getline(*in, line)) {
      return Status::IoError("truncated sliding_window aggregates");
    }
    std::istringstream ss(line);
    if (!(ss >> tag) || tag != want) {
      return Status::InvalidArgument(
          StrFormat("expected sliding_window %s line", want));
    }
    for (uint64_t& c : *v) {
      unsigned long long parsed = 0;
      if (!(ss >> parsed)) {
        return Status::InvalidArgument(
            StrFormat("truncated sliding_window %s line", want));
      }
      c = parsed;
    }
    return Status::OK();
  };
  LIGHTMIRM_RETURN_NOT_OK(read_counts("counts", &window.counts_));
  LIGHTMIRM_RETURN_NOT_OK(read_counts("labeled", &window.labeled_));
  LIGHTMIRM_RETURN_NOT_OK(read_counts("positives", &window.positives_));
  {
    if (!std::getline(*in, line)) {
      return Status::IoError("truncated sliding_window score_sums");
    }
    std::istringstream ss(line);
    if (!(ss >> tag) || tag != "score_sums") {
      return Status::InvalidArgument("expected sliding_window score_sums");
    }
    for (double& s : window.score_sums_) {
      if (!(ss >> s)) {
        return Status::InvalidArgument(
            "truncated sliding_window score_sums line");
      }
    }
  }
  {
    if (!std::getline(*in, line)) {
      return Status::IoError("truncated sliding_window totals");
    }
    std::istringstream ss(line);
    unsigned long long labeled_total = 0, positive_total = 0;
    if (!(ss >> tag >> labeled_total >> positive_total) ||
        tag != "labeled_totals") {
      return Status::InvalidArgument("expected sliding_window totals line");
    }
    if (positive_total > labeled_total || labeled_total > ring_size) {
      return Status::InvalidArgument("inconsistent sliding_window totals");
    }
    window.labeled_total_ = labeled_total;
    window.positive_total_ = positive_total;
  }
  for (size_t b = 0; b < window.counts_.size(); ++b) {
    if (window.positives_[b] > window.labeled_[b] ||
        window.labeled_[b] > window.counts_[b]) {
      return Status::InvalidArgument("inconsistent sliding_window bins");
    }
  }
  return window;
}

SlidingWindow::SlidingWindow(int num_bins, size_t capacity)
    : num_bins_(std::clamp(num_bins, 2, kMaxBins)),
      capacity_(std::max<size_t>(1, capacity)),
      counts_(static_cast<size_t>(num_bins_), 0),
      labeled_(static_cast<size_t>(num_bins_), 0),
      positives_(static_cast<size_t>(num_bins_), 0),
      score_sums_(static_cast<size_t>(num_bins_), 0.0) {
  ring_.reserve(capacity_);
}

}  // namespace lightmirm::obs
