// ModelHealthMonitor: online drift and model-health monitoring over the
// serving path. A ScoringSession (or the replay harness) feeds it one call
// per scored batch — (score, province, optional delayed label) per row —
// and it maintains per-environment and global sliding windows whose binned
// aggregates (obs/drift.h) evaluate against the training-time
// ScoreReference: score PSI, drift KS, rolling default rate, streaming
// AUC/KS, calibration error, and the worst-vs-best province AUC gap (the
// paper's minimax-fairness metric). Each signal drives an OK→WARN→ALERT
// state machine with hysteresis; Evaluate() snapshots everything and can
// publish gauges/counters into a MetricsRegistry so the existing JSON /
// Prometheus exporters pick the health state up for free.
//
// Observing is thread-safe (one mutex per monitor, taken per batch, not
// per row) and never touches the scores themselves — predictions are
// bit-identical with monitoring on or off. Evaluation ticks are explicit
// (one per Evaluate call), so snapshots depend only on the observation
// sequence, never on thread count or wall clock.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/drift.h"
#include "obs/metrics.h"

namespace lightmirm::obs {

enum class AlertState { kOk = 0, kWarn = 1, kAlert = 2 };

/// "OK" / "WARN" / "ALERT".
const char* AlertStateName(AlertState state);

/// Thresholds of one monitored signal. Signals are normalized so that
/// bigger is worse ("badness"); a signal escalates when its value reaches
/// warn/alert and de-escalates only after dropping below the threshold by
/// the hysteresis margin — value must fall under threshold * (1 -
/// hysteresis) — so a value oscillating exactly at a threshold never
/// flaps.
struct AlertThresholds {
  double warn = 0.1;
  double alert = 0.25;
  double hysteresis = 0.2;  ///< fraction of the threshold, in [0, 1)
};

/// Per-signal state machine with the hysteresis semantics above.
class AlertStateMachine {
 public:
  explicit AlertStateMachine(AlertThresholds thresholds = {})
      : thresholds_(thresholds) {}

  /// Advances on one evaluated value and returns the new state.
  AlertState Update(double value);
  AlertState state() const { return state_; }
  const AlertThresholds& thresholds() const { return thresholds_; }

  /// One-line text serialization (thresholds + current state), in the same
  /// line-oriented style as ScoreReference, so a restored machine resumes
  /// its hysteresis exactly (an elevated state stays elevated until the
  /// value clears the margin, even across a process restart).
  Status SaveState(std::ostream* out) const;
  static Result<AlertStateMachine> LoadState(std::istream* in);

 private:
  AlertThresholds thresholds_;
  AlertState state_ = AlertState::kOk;
};

/// Monitor configuration. Defaults follow credit-risk conventions (PSI
/// 0.1 / 0.25 bands) and are deliberately conservative for the label-based
/// signals, whose small-window estimates are noisy.
struct MonitorOptions {
  /// Sliding-window capacity per environment (and for the global window).
  size_t window = 4096;
  /// Distribution signals (PSI, drift KS) evaluate only when the window
  /// holds at least this many rows; below it the signal holds its state.
  size_t min_rows = 200;
  /// Label signals (default rate, AUC/KS, calibration) need this many
  /// labeled rows — with both classes present for AUC/KS.
  size_t min_labeled = 150;
  /// Environments participate in the fairness gap only above this labeled
  /// count (per-env AUC noise would otherwise drive the gap).
  size_t fairness_min_labeled = 300;

  AlertThresholds psi{0.1, 0.25, 0.2};
  AlertThresholds drift_ks{0.1, 0.2, 0.2};
  /// Relative rise of the rolling default rate over the reference rate:
  /// max(0, rate - ref) / ref.
  AlertThresholds default_rate_rise{0.5, 1.0, 0.2};
  /// Absolute AUC drop under the reference AUC.
  AlertThresholds auc_drop{0.05, 0.1, 0.2};
  /// Absolute discrimination-KS drop under the reference KS.
  AlertThresholds ks_drop{0.08, 0.16, 0.2};
  /// Expected calibration error of the window.
  AlertThresholds calibration{0.1, 0.2, 0.2};
  /// Worst-vs-best province streaming-AUC gap.
  AlertThresholds fairness_gap{0.15, 0.25, 0.2};

  /// Self-delimiting text serialization of the whole configuration, so a
  /// monitor checkpoint restores under exactly the thresholds it was
  /// running with (not whatever the restarted binary's defaults are).
  Status SaveState(std::ostream* out) const;
  static Result<MonitorOptions> LoadState(std::istream* in);
};

/// One signal's evaluation: value, state, and whether this tick had
/// enough data to evaluate (when false the state was held, not updated).
struct SignalHealth {
  double value = 0.0;
  AlertState state = AlertState::kOk;
  bool evaluated = false;
};

/// Health of one window (an environment or the global pool).
struct WindowHealth {
  uint64_t seen = 0;          ///< observations ever fed
  uint64_t window_rows = 0;   ///< rows currently in the window
  uint64_t labeled_rows = 0;  ///< labeled rows currently in the window
  double default_rate = 0.0;  ///< rolling, over labeled rows
  double auc = 0.0;           ///< streaming AUC (0 when unevaluable)
  double ks = 0.0;            ///< streaming discrimination KS
  SignalHealth psi;
  SignalHealth drift_ks;
  SignalHealth default_rate_rise;
  SignalHealth auc_drop;
  SignalHealth ks_drop;
  SignalHealth calibration;
  /// Worst signal state of this window.
  AlertState overall = AlertState::kOk;
};

/// One Evaluate() tick over every window.
struct HealthSnapshot {
  uint64_t evaluation = 0;  ///< 1-based tick index
  WindowHealth global;
  std::map<int, WindowHealth> per_env;  ///< envs the reference knows
  SignalHealth fairness_gap;
  /// Environments spanned by the fairness gap this tick (ids, ascending).
  std::vector<int> fairness_envs;
  AlertState overall = AlertState::kOk;
};

/// Copy of one sliding window's binned aggregates, taken under the monitor
/// lock. This is the read surface the challenger gate compares champion and
/// challenger monitors through (and what checkpoint tests assert on):
/// everything needed to compute PSI / streaming AUC / calibration between
/// two windows without touching monitor internals.
struct WindowAggregates {
  uint64_t rows = 0;     ///< observations currently in the window
  uint64_t seen = 0;     ///< observations ever fed
  uint64_t labeled = 0;  ///< labeled rows in the window
  uint64_t positives = 0;
  std::vector<uint64_t> counts;            ///< all-row score histogram
  std::vector<uint64_t> labeled_counts;    ///< labeled-row histogram
  std::vector<uint64_t> labeled_positives; ///< label==1 histogram
  std::vector<double> score_sums;          ///< labeled score sums per bin
};

/// Global + every monitored environment window's aggregates, copied under
/// ONE lock acquisition (ModelHealthMonitor::SnapshotWindows), so the
/// bundle is internally consistent: a concurrently observed batch is
/// either in both the global and the env aggregates or in neither. The
/// merged fleet evaluator reads shards through this — per-window getters
/// (GlobalWindow, then EnvWindow per env) would let a batch land between
/// the two copies and show up in one view but not the other.
struct MonitorAggregates {
  WindowAggregates global;
  std::map<int, WindowAggregates> per_env;  ///< monitored envs, ascending
};

/// The six per-window hysteresis machines, bundled so the same signal
/// state can live inside a ModelHealthMonitor's window or inside a
/// MergedHealthEvaluator (which has no windows of its own, only merged
/// aggregates).
struct WindowStateMachines {
  WindowStateMachines() = default;
  explicit WindowStateMachines(const MonitorOptions& options)
      : psi(options.psi),
        drift_ks(options.drift_ks),
        default_rate_rise(options.default_rate_rise),
        auc_drop(options.auc_drop),
        ks_drop(options.ks_drop),
        calibration(options.calibration) {}

  AlertStateMachine psi;
  AlertStateMachine drift_ks;
  AlertStateMachine default_rate_rise;
  AlertStateMachine auc_drop;
  AlertStateMachine ks_drop;
  AlertStateMachine calibration;
};

/// Evaluates one window's signals from its binned aggregates alone and
/// advances the given state machines — the single verdict implementation
/// behind both ModelHealthMonitor::Evaluate (aggregates of a live
/// SlidingWindow) and MergedHealthEvaluator (bin-wise sums across shard
/// windows). `escalations` is incremented per signal that escalated; may
/// be null.
WindowHealth EvaluateWindowAggregates(const WindowAggregates& window,
                                      const BinnedScores& reference,
                                      const MonitorOptions& options,
                                      WindowStateMachines* machines,
                                      uint64_t* escalations);

/// Bin-wise sum of shard window aggregates: O(bins) per part, independent
/// of window capacity or row count. Histogram vectors are summed at the
/// widest part's bin count (shorter parts contribute zeros — callers
/// merging same-reference monitors always have equal widths).
WindowAggregates MergeWindowAggregates(
    const std::vector<WindowAggregates>& parts);

/// Publishes a snapshot as registry gauges under `prefix` ("monitor." for
/// a single monitor, "monitor.fleet." for the merged verdict): value and
/// numeric state (0 OK / 1 WARN / 2 ALERT) per signal per window
/// (`<prefix>env.<province>.psi`, `<prefix>global.auc`, ...), plus
/// `<prefix>fairness_gap`, `<prefix>state` and `<prefix>evaluations`.
/// `reference` supplies the environment names. The shared publisher behind
/// ModelHealthMonitor::PublishTo and MergedHealthEvaluator::PublishTo.
void PublishHealthSnapshot(MetricsRegistry* registry,
                           const std::string& prefix,
                           const HealthSnapshot& snapshot,
                           const ScoreReference& reference);

class ModelHealthMonitor;

/// Global health over a fleet of per-shard monitors, by snapshot merge:
/// each Evaluate tick copies every shard's O(bins) window aggregates,
/// bin-wise-sums them per environment, and runs the exact per-window
/// verdict code a single monitor runs — same signals, same hysteresis,
/// same fairness gap — over the merged aggregates. The evaluator owns its
/// own state machines (shard-local machines never advance), so a fleet's
/// merged timeline is exactly what one monitor observing the union stream
/// would produce whenever no shard window has evicted.
class MergedHealthEvaluator {
 public:
  /// Same validation as ModelHealthMonitor::Create; the reference defines
  /// which environments are merged and compared.
  static Result<MergedHealthEvaluator> Create(ScoreReference reference,
                                              MonitorOptions options = {});

  /// One merged evaluation tick over the shard monitors. Errors when the
  /// list is empty, holds a null entry, or a shard's reference bin count
  /// disagrees with this evaluator's (merging those sums would be
  /// meaningless).
  Result<HealthSnapshot> Evaluate(
      const std::vector<const ModelHealthMonitor*>& shards);

  /// Publishes a merged snapshot under `monitor.fleet.` (same gauge layout
  /// as ModelHealthMonitor::PublishTo), so the fleet verdict reaches the
  /// JSON/Prometheus exporters just like a single monitor's does.
  void PublishTo(MetricsRegistry* registry,
                 const HealthSnapshot& snapshot) const;

  const ScoreReference& reference() const { return reference_; }
  const MonitorOptions& options() const { return options_; }

 private:
  MergedHealthEvaluator(ScoreReference reference, MonitorOptions options);

  ScoreReference reference_;
  MonitorOptions options_;
  WindowStateMachines global_;
  std::map<int, WindowStateMachines> per_env_;
  AlertStateMachine fairness_;
  uint64_t evaluations_ = 0;
  uint64_t escalations_ = 0;
};

/// Thread-safe online monitor; see file comment.
class ModelHealthMonitor {
 public:
  /// Errors when the reference is empty. Per-env windows are created for
  /// exactly the environments the reference holds histograms for; other
  /// environments only feed the global window.
  static Result<std::unique_ptr<ModelHealthMonitor>> Create(
      ScoreReference reference, MonitorOptions options = {});

  /// Observes one scored batch. `envs` may be null (rows feed the global
  /// window only); `labels` may be null (scores observed unlabeled — the
  /// delayed-label case) or score-aligned with entries in {-1, 0, 1},
  /// where -1 means "label not known yet".
  Status ObserveBatch(const std::vector<double>& scores,
                      const std::vector<int>* envs,
                      const std::vector<int>* labels);

  /// One evaluation tick: computes every window's signals, advances the
  /// alert state machines, and returns the snapshot.
  HealthSnapshot Evaluate();

  /// Evaluate() + PublishTo(registry, snapshot).
  HealthSnapshot Evaluate(MetricsRegistry* registry);

  /// Publishes a snapshot as registry gauges under `monitor.` — value and
  /// numeric state (0 OK / 1 WARN / 2 ALERT) per signal per window
  /// (`monitor.env.<province>.psi`, `monitor.global.auc`, ...), plus
  /// counters `monitor.evaluations` and `monitor.escalations`.
  void PublishTo(MetricsRegistry* registry,
                 const HealthSnapshot& snapshot) const;

  const ScoreReference& reference() const { return reference_; }
  const MonitorOptions& options() const { return options_; }

  /// Aggregates of the global window / one environment's window, copied
  /// under the lock. EnvWindow errors (NotFound) for environments the
  /// monitor does not track.
  WindowAggregates GlobalWindow() const;
  Result<WindowAggregates> EnvWindow(int env) const;
  /// Every window's aggregates in one lock acquisition — the internally
  /// consistent read surface (see MonitorAggregates). Use this whenever
  /// global and per-env views of the same monitor are compared or merged.
  MonitorAggregates SnapshotWindows() const;
  /// Monitored environment ids, ascending.
  std::vector<int> MonitoredEnvs() const;

  /// Writes the complete serving state — options, reference, every sliding
  /// window (ring + aggregates), every hysteresis state machine, and the
  /// evaluation/escalation counters — as one self-delimiting
  /// "monitor_checkpoint v1" bundle (obs/checkpoint.h has file-level
  /// helpers). LoadCheckpoint reconstructs a monitor that is
  /// bit-identical: feeding the restored monitor any further observation
  /// sequence yields exactly the snapshots the saved one would have
  /// produced, including hysteresis states held from before the save.
  Status SaveCheckpoint(std::ostream* out) const;
  static Result<std::unique_ptr<ModelHealthMonitor>> LoadCheckpoint(
      std::istream* in);

 private:
  struct EnvMonitor {
    explicit EnvMonitor(const MonitorOptions& options, int num_bins)
        : window(num_bins, options.window), machines(options) {}

    SlidingWindow window;
    WindowStateMachines machines;
  };

  ModelHealthMonitor(ScoreReference reference, MonitorOptions options);

  mutable std::mutex mu_;
  ScoreReference reference_;
  MonitorOptions options_;
  EnvMonitor global_;
  std::map<int, EnvMonitor> per_env_;
  /// Dense env-id -> monitor index (nullptr = not monitored), so the
  /// per-row lookup on the serving path is one bounds check + load instead
  /// of a map walk.
  std::vector<EnvMonitor*> env_index_;
  AlertStateMachine fairness_;
  uint64_t evaluations_ = 0;
  uint64_t escalations_ = 0;
};

}  // namespace lightmirm::obs
