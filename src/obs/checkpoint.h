// Checkpoint/restore of online serving state. A ModelHealthMonitor is the
// serving stack's "operator state" (SeamlessDB's term): sliding-window
// rings, binned aggregates, hysteresis state machines, and evaluation
// counters that a process restart would otherwise wipe, leaving a
// restarted shard blind for a full warm-up window. The monitor serializes
// itself as one self-delimiting, line-oriented "monitor_checkpoint v1"
// bundle (the same text style as ScoreReference in model_io): options,
// score reference, the global window, and every per-province window with
// its six state machines. Restoring is bit-identical — the restored
// monitor produces exactly the snapshots the saved one would have, on any
// further observation sequence, at any thread count.
//
// This header adds the file-level helpers the serving layer uses; the
// piece-wise SaveState/LoadState APIs live on the state classes themselves
// (SlidingWindow in obs/drift.h, AlertStateMachine / MonitorOptions /
// ModelHealthMonitor in obs/monitor.h).
#pragma once

#include <memory>
#include <string>

#include "common/result.h"
#include "obs/monitor.h"

namespace lightmirm::obs {

/// Versioned header line opening a monitor checkpoint bundle. Bump the
/// version when the layout changes; LoadCheckpoint rejects versions it
/// does not know instead of misparsing them.
inline constexpr const char* kMonitorCheckpointMagic = "monitor_checkpoint";
inline constexpr int kMonitorCheckpointVersion = 1;

/// Saves `monitor`'s complete state to `path` (atomic against readers only
/// insofar as the filesystem is; write to a temp path and rename for crash
/// safety at the call site if needed).
Status SaveMonitorCheckpointToFile(const ModelHealthMonitor& monitor,
                                   const std::string& path);

/// Restores a monitor saved by SaveMonitorCheckpointToFile.
Result<std::unique_ptr<ModelHealthMonitor>> LoadMonitorCheckpointFromFile(
    const std::string& path);

}  // namespace lightmirm::obs
