// Lightweight telemetry primitives: a thread-safe MetricsRegistry holding
// named counters, gauges, fixed-bucket latency histograms and append-only
// series. Metric handles returned by the registry are stable for the
// registry's lifetime, and every update on them is a lock-free atomic
// operation (the registry mutex is only taken to resolve a name the first
// time). Exporters (obs/export.h) snapshot the registry into JSON or
// Prometheus text; obs/trace.h layers RAII nested spans on top.
//
// Naming convention (see DESIGN.md "Observability"): dot-separated
// lowercase-ish segments, `<layer>.<object>.<unit>` — e.g.
// `serve.batch.seconds`, `pool.tasks`, `train.LightMIRM.meta_loss.env_3`.
// SanitizeMetricName maps arbitrary labels into that alphabet.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lightmirm::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-value-wins instantaneous measurement.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts samples v <= bounds[i] (first
/// matching bound); samples above the last bound land in an overflow
/// bucket. Record is an atomic increment; quantiles interpolate linearly
/// inside the winning bucket (the overflow bucket clamps to the last
/// bound, so p99 of a saturated histogram reads as "at least bounds
/// .back()").
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> bounds);

  void Record(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const;
  /// q in [0, 1]; 0 when empty.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; the last entry is the overflow bucket.
  std::vector<uint64_t> BucketCounts() const;

  /// Adds another histogram's samples into this one. The bucket layouts
  /// must match (same bounds).
  void MergeFrom(const Histogram& other);

  void Reset();

  /// Log-spaced latency bounds from 1µs to 10s ({1, 2.5, 5} per decade),
  /// the default for every `.seconds` histogram in the library.
  static const std::vector<double>& DefaultLatencyBounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Append-only sequence of doubles (per-epoch trajectories: meta-losses,
/// penalty terms). Appends take a mutex — callers record once per epoch,
/// not on per-row hot paths.
class Series {
 public:
  void Append(double v);
  std::vector<double> Values() const;
  size_t Size() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  std::vector<double> values_;
};

/// Maps an arbitrary label into the metric-name alphabet [A-Za-z0-9_.]:
/// every other character becomes '_', runs collapse, and leading/trailing
/// separators are trimmed ("meta-IRM(5)" -> "meta_IRM_5").
std::string SanitizeMetricName(std::string_view name);

/// Label set of one labeled metric: (name, value) pairs. The registry
/// canonicalizes the order (sorted by label name), so callers may pass
/// labels in any order and still address the same cell. Label names
/// should match the Prometheus grammar [a-zA-Z_][a-zA-Z0-9_]* ("le" is
/// reserved for histogram buckets); the exporters skip cells whose names
/// do not.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Snapshot view of one labeled metric cell: the family name (shared by
/// every cell of the family), its canonicalized labels, and the handle.
template <typename Metric>
struct LabeledMetric {
  std::string family;
  MetricLabels labels;
  const Metric* metric = nullptr;
};

/// Named metric store. Get* registers on first use and afterwards returns
/// the same pointer, which stays valid (and keeps its identity across
/// Reset) for the registry's lifetime — callers may cache handles.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` applies only on first registration; nullptr means
  /// Histogram::DefaultLatencyBounds().
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>* bounds = nullptr);
  Series* GetSeries(const std::string& name);

  /// Labeled families: one metric cell per (family, label-set), e.g.
  /// `service.shed.requests{shard="3"}`. Cells follow the same contract
  /// as the unlabeled getters (first call registers, handles are stable,
  /// updates are lock-free); labels are canonicalized by sorting on the
  /// label name, so `{a=1,b=2}` and `{b=2,a=1}` address the same cell.
  /// Labeled and unlabeled metrics of the same name are distinct.
  Counter* GetCounter(const std::string& family, const MetricLabels& labels);
  Gauge* GetGauge(const std::string& family, const MetricLabels& labels);
  Histogram* GetHistogram(const std::string& family,
                          const MetricLabels& labels,
                          const std::vector<double>* bounds = nullptr);

  /// Name-sorted handle snapshots for the exporters.
  std::vector<std::pair<std::string, const Counter*>> Counters() const;
  std::vector<std::pair<std::string, const Gauge*>> Gauges() const;
  std::vector<std::pair<std::string, const Histogram*>> Histograms() const;
  std::vector<std::pair<std::string, const Series*>> AllSeries() const;

  /// Labeled snapshots, sorted by family then canonical label key.
  std::vector<LabeledMetric<Counter>> LabeledCounters() const;
  std::vector<LabeledMetric<Gauge>> LabeledGauges() const;
  std::vector<LabeledMetric<Histogram>> LabeledHistograms() const;

  /// Zeroes every metric. Registrations (and handle pointers) survive.
  void Reset();

  /// The process-wide registry every built-in instrumentation site records
  /// into. Never destroyed, so cached handles outlive static teardown.
  static MetricsRegistry* Global();

 private:
  template <typename Metric>
  struct LabeledCell {
    MetricLabels labels;  ///< canonical (name-sorted) order
    std::unique_ptr<Metric> metric;
  };
  /// family -> canonical label key -> cell.
  template <typename Metric>
  using LabeledFamilies =
      std::map<std::string, std::map<std::string, LabeledCell<Metric>>>;

  template <typename Metric>
  std::vector<LabeledMetric<Metric>> SnapshotLabeled(
      const LabeledFamilies<Metric>& families) const;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<Series>> series_;
  LabeledFamilies<Counter> labeled_counters_;
  LabeledFamilies<Gauge> labeled_gauges_;
  LabeledFamilies<Histogram> labeled_histograms_;
};

/// Process-wide switch for the built-in instrumentation sites (thread
/// pool, loan generator, scoring sessions, trainer spans). Defaults to
/// enabled; bench_telemetry_overhead flips it to measure the cost.
bool TelemetryEnabled();
void SetTelemetryEnabled(bool enabled);

}  // namespace lightmirm::obs
