#include "obs/export.h"

#include <cstdio>

#include "common/string_util.h"

namespace lightmirm::obs {
namespace {

// Shortest-ish round-trip double for JSON values and Prometheus samples.
std::string Num(double v) { return StrFormat("%.12g", v); }

std::string JsonKey(const std::string& name) { return "\"" + name + "\""; }

void AppendHistogramJson(const std::string& name, const Histogram& h,
                         std::string* out) {
  *out += "    " + JsonKey(name) + ": {";
  *out += "\"count\": " + StrFormat("%llu",
                                    static_cast<unsigned long long>(h.Count()));
  *out += ", \"sum\": " + Num(h.Sum());
  *out += ", \"mean\": " + Num(h.Mean());
  *out += ", \"p50\": " + Num(h.Quantile(0.50));
  *out += ", \"p95\": " + Num(h.Quantile(0.95));
  *out += ", \"p99\": " + Num(h.Quantile(0.99));
  *out += ", \"buckets\": [";
  const std::vector<uint64_t> counts = h.BucketCounts();
  const std::vector<double>& bounds = h.bounds();
  bool first = true;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (!first) *out += ", ";
    first = false;
    const std::string le =
        i < bounds.size() ? Num(bounds[i]) : "\"+Inf\"";
    *out += "{\"le\": " + le + ", \"count\": " +
            StrFormat("%llu", static_cast<unsigned long long>(counts[i])) +
            "}";
  }
  *out += "]}";
}

}  // namespace

std::string ExportJson(const MetricsRegistry& registry) {
  std::string out = "{\n";

  out += "  \"counters\": {\n";
  const auto counters = registry.Counters();
  for (size_t i = 0; i < counters.size(); ++i) {
    out += "    " + JsonKey(counters[i].first) + ": " +
           StrFormat("%llu", static_cast<unsigned long long>(
                                 counters[i].second->Value()));
    out += i + 1 < counters.size() ? ",\n" : "\n";
  }
  out += "  },\n";

  out += "  \"gauges\": {\n";
  const auto gauges = registry.Gauges();
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += "    " + JsonKey(gauges[i].first) + ": " +
           Num(gauges[i].second->Value());
    out += i + 1 < gauges.size() ? ",\n" : "\n";
  }
  out += "  },\n";

  out += "  \"histograms\": {\n";
  const auto histograms = registry.Histograms();
  for (size_t i = 0; i < histograms.size(); ++i) {
    AppendHistogramJson(histograms[i].first, *histograms[i].second, &out);
    out += i + 1 < histograms.size() ? ",\n" : "\n";
  }
  out += "  },\n";

  out += "  \"series\": {\n";
  const auto series = registry.AllSeries();
  for (size_t i = 0; i < series.size(); ++i) {
    out += "    " + JsonKey(series[i].first) + ": [";
    const std::vector<double> values = series[i].second->Values();
    for (size_t j = 0; j < values.size(); ++j) {
      if (j > 0) out += ", ";
      out += Num(values[j]);
    }
    out += "]";
    out += i + 1 < series.size() ? ",\n" : "\n";
  }
  out += "  }\n}\n";
  return out;
}

namespace {

// Prometheus alphabet: [a-zA-Z0-9_:]; '.' and everything else become '_'.
std::string PromName(const std::string& name) {
  std::string out = "lightmirm_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

bool IsValidPromLabelName(std::string_view name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    if (!(alpha || (i > 0 && c >= '0' && c <= '9'))) return false;
  }
  return true;
}

}  // namespace

bool IsValidPromMetricName(std::string_view name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    if (!(alpha || (i > 0 && c >= '0' && c <= '9'))) return false;
  }
  return true;
}

std::string PromEscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

Result<std::string> PromSampleLine(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& labels,
    double value) {
  const std::string prom = PromName(name);
  if (!IsValidPromMetricName(prom)) {
    return Status::InvalidArgument("invalid Prometheus metric name: " + name);
  }
  std::string out = prom;
  if (!labels.empty()) {
    out += "{";
    for (size_t i = 0; i < labels.size(); ++i) {
      if (!IsValidPromLabelName(labels[i].first)) {
        return Status::InvalidArgument("invalid Prometheus label name: " +
                                       labels[i].first);
      }
      if (i > 0) out += ",";
      out += labels[i].first + "=\"" +
             PromEscapeLabelValue(labels[i].second) + "\"";
    }
    out += "}";
  }
  out += " " + Num(value) + "\n";
  return out;
}

std::string ExportPrometheus(const MetricsRegistry& registry) {
  std::string out;
  // PromName output always matches the metric-name grammar (the prefix
  // supplies a valid first character); the validation is defense in depth
  // against future prefix/mapping changes.
  for (const auto& [name, counter] : registry.Counters()) {
    const std::string prom = PromName(name);
    if (!IsValidPromMetricName(prom)) continue;
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " +
           StrFormat("%llu",
                     static_cast<unsigned long long>(counter->Value())) +
           "\n";
  }
  for (const auto& [name, gauge] : registry.Gauges()) {
    const std::string prom = PromName(name);
    if (!IsValidPromMetricName(prom)) continue;
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + Num(gauge->Value()) + "\n";
  }
  for (const auto& [name, hist] : registry.Histograms()) {
    const std::string prom = PromName(name);
    if (!IsValidPromMetricName(prom)) continue;
    out += "# TYPE " + prom + " histogram\n";
    const std::vector<uint64_t> counts = hist->BucketCounts();
    const std::vector<double>& bounds = hist->bounds();
    unsigned long long cum = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
      cum += counts[i];
      const std::string le =
          i < bounds.size() ? PromEscapeLabelValue(Num(bounds[i])) : "+Inf";
      out += prom + "_bucket{le=\"" + le + "\"} " +
             StrFormat("%llu", cum) + "\n";
    }
    out += prom + "_sum " + Num(hist->Sum()) + "\n";
    out += prom + "_count " +
           StrFormat("%llu",
                     static_cast<unsigned long long>(hist->Count())) +
           "\n";
  }
  for (const auto& [name, series] : registry.AllSeries()) {
    const std::vector<double> values = series->Values();
    const std::string prom = PromName(name) + "_last";
    if (!IsValidPromMetricName(prom)) continue;
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + (values.empty() ? "0" : Num(values.back())) + "\n";
  }
  return out;
}

namespace {

// JSON string-literal escaping for span names in the Chrome trace export.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ExportChromeTrace(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\": [\n";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out += "  {\"ph\": \"X\", \"name\": \"" + JsonEscape(e.name) +
           "\", \"pid\": 1, \"tid\": " + StrFormat("%d", e.tid) +
           ", \"ts\": " + Num(e.ts_us) + ", \"dur\": " + Num(e.dur_us) + "}";
    out += i + 1 < events.size() ? ",\n" : "\n";
  }
  out += "], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

Status WriteChromeTraceFile(const std::vector<TraceEvent>& events,
                            const std::string& path) {
  const std::string text = ExportChromeTrace(events);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot write trace file: " + path);
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return Status::OK();
}

Status WriteTelemetryFile(const MetricsRegistry& registry,
                          const std::string& path) {
  const bool prom =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  const std::string text =
      prom ? ExportPrometheus(registry) : ExportJson(registry);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot write telemetry file: " + path);
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return Status::OK();
}

}  // namespace lightmirm::obs
