#include "obs/export.h"

#include <cstdio>

#include "common/string_util.h"

namespace lightmirm::obs {
namespace {

// Shortest-ish round-trip double for JSON values and Prometheus samples.
std::string Num(double v) { return StrFormat("%.12g", v); }

std::string JsonKey(const std::string& name) { return "\"" + name + "\""; }

// Inline rendering of a labeled cell's name for the JSON export:
// `family{shard="3"}` — the same spelling Prometheus users grep for.
std::string LabeledJsonName(const std::string& family,
                            const MetricLabels& labels) {
  std::string out = family + "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\\\"" +
           PromEscapeLabelValue(labels[i].second) + "\\\"";
  }
  return out + "}";
}

void AppendHistogramJson(const std::string& name, const Histogram& h,
                         std::string* out) {
  *out += "    " + JsonKey(name) + ": {";
  *out += "\"count\": " + StrFormat("%llu",
                                    static_cast<unsigned long long>(h.Count()));
  *out += ", \"sum\": " + Num(h.Sum());
  *out += ", \"mean\": " + Num(h.Mean());
  *out += ", \"p50\": " + Num(h.Quantile(0.50));
  *out += ", \"p95\": " + Num(h.Quantile(0.95));
  *out += ", \"p99\": " + Num(h.Quantile(0.99));
  *out += ", \"buckets\": [";
  const std::vector<uint64_t> counts = h.BucketCounts();
  const std::vector<double>& bounds = h.bounds();
  bool first = true;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (!first) *out += ", ";
    first = false;
    const std::string le =
        i < bounds.size() ? Num(bounds[i]) : "\"+Inf\"";
    *out += "{\"le\": " + le + ", \"count\": " +
            StrFormat("%llu", static_cast<unsigned long long>(counts[i])) +
            "}";
  }
  *out += "]}";
}

}  // namespace

std::string ExportJson(const MetricsRegistry& registry) {
  std::string out = "{\n";

  // Each section renders its entries first (unlabeled by name, then
  // labeled cells as `family{label="value"}` keys) so the ",\n"
  // separators come out right with any mix of the two.
  std::vector<std::string> entries;
  const auto flush_section = [&](const char* name, bool last = false) {
    out += "  \"" + std::string(name) + "\": {\n";
    for (size_t i = 0; i < entries.size(); ++i) {
      out += entries[i];
      out += i + 1 < entries.size() ? ",\n" : "\n";
    }
    out += last ? "  }\n" : "  },\n";
    entries.clear();
  };

  for (const auto& [name, counter] : registry.Counters()) {
    entries.push_back(
        "    " + JsonKey(name) + ": " +
        StrFormat("%llu", static_cast<unsigned long long>(counter->Value())));
  }
  for (const auto& cell : registry.LabeledCounters()) {
    entries.push_back(
        "    " + JsonKey(LabeledJsonName(cell.family, cell.labels)) + ": " +
        StrFormat("%llu",
                  static_cast<unsigned long long>(cell.metric->Value())));
  }
  flush_section("counters");

  for (const auto& [name, gauge] : registry.Gauges()) {
    entries.push_back("    " + JsonKey(name) + ": " + Num(gauge->Value()));
  }
  for (const auto& cell : registry.LabeledGauges()) {
    entries.push_back("    " +
                      JsonKey(LabeledJsonName(cell.family, cell.labels)) +
                      ": " + Num(cell.metric->Value()));
  }
  flush_section("gauges");

  for (const auto& [name, hist] : registry.Histograms()) {
    std::string entry;
    AppendHistogramJson(name, *hist, &entry);
    entries.push_back(std::move(entry));
  }
  for (const auto& cell : registry.LabeledHistograms()) {
    std::string entry;
    AppendHistogramJson(LabeledJsonName(cell.family, cell.labels),
                        *cell.metric, &entry);
    entries.push_back(std::move(entry));
  }
  flush_section("histograms");

  for (const auto& [name, s] : registry.AllSeries()) {
    std::string entry = "    " + JsonKey(name) + ": [";
    const std::vector<double> values = s->Values();
    for (size_t j = 0; j < values.size(); ++j) {
      if (j > 0) entry += ", ";
      entry += Num(values[j]);
    }
    entry += "]";
    entries.push_back(std::move(entry));
  }
  flush_section("series", /*last=*/true);
  out += "}\n";
  return out;
}

namespace {

// Prometheus alphabet: [a-zA-Z0-9_:]; '.' and everything else become '_'.
std::string PromName(const std::string& name) {
  std::string out = "lightmirm_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

bool IsValidPromLabelName(std::string_view name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    if (!(alpha || (i > 0 && c >= '0' && c <= '9'))) return false;
  }
  return true;
}

}  // namespace

bool IsValidPromMetricName(std::string_view name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    if (!(alpha || (i > 0 && c >= '0' && c <= '9'))) return false;
  }
  return true;
}

std::string PromEscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

Result<std::string> PromSampleLine(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& labels,
    double value) {
  const std::string prom = PromName(name);
  if (!IsValidPromMetricName(prom)) {
    return Status::InvalidArgument("invalid Prometheus metric name: " + name);
  }
  std::string out = prom;
  if (!labels.empty()) {
    out += "{";
    for (size_t i = 0; i < labels.size(); ++i) {
      if (!IsValidPromLabelName(labels[i].first)) {
        return Status::InvalidArgument("invalid Prometheus label name: " +
                                       labels[i].first);
      }
      if (i > 0) out += ",";
      out += labels[i].first + "=\"" +
             PromEscapeLabelValue(labels[i].second) + "\"";
    }
    out += "}";
  }
  out += " " + Num(value) + "\n";
  return out;
}

std::string ExportPrometheus(const MetricsRegistry& registry) {
  std::string out;
  // PromName output always matches the metric-name grammar (the prefix
  // supplies a valid first character); the validation is defense in depth
  // against future prefix/mapping changes.
  for (const auto& [name, counter] : registry.Counters()) {
    const std::string prom = PromName(name);
    if (!IsValidPromMetricName(prom)) continue;
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " +
           StrFormat("%llu",
                     static_cast<unsigned long long>(counter->Value())) +
           "\n";
  }
  for (const auto& [name, gauge] : registry.Gauges()) {
    const std::string prom = PromName(name);
    if (!IsValidPromMetricName(prom)) continue;
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + Num(gauge->Value()) + "\n";
  }
  for (const auto& [name, hist] : registry.Histograms()) {
    const std::string prom = PromName(name);
    if (!IsValidPromMetricName(prom)) continue;
    out += "# TYPE " + prom + " histogram\n";
    const std::vector<uint64_t> counts = hist->BucketCounts();
    const std::vector<double>& bounds = hist->bounds();
    unsigned long long cum = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
      cum += counts[i];
      const std::string le =
          i < bounds.size() ? PromEscapeLabelValue(Num(bounds[i])) : "+Inf";
      out += prom + "_bucket{le=\"" + le + "\"} " +
             StrFormat("%llu", cum) + "\n";
    }
    out += prom + "_sum " + Num(hist->Sum()) + "\n";
    out += prom + "_count " +
           StrFormat("%llu",
                     static_cast<unsigned long long>(hist->Count())) +
           "\n";
  }
  for (const auto& [name, series] : registry.AllSeries()) {
    const std::vector<double> values = series->Values();
    const std::string prom = PromName(name) + "_last";
    if (!IsValidPromMetricName(prom)) continue;
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + (values.empty() ? "0" : Num(values.back())) + "\n";
  }

  // Labeled families: one TYPE line per family, then one sample line per
  // cell (histograms get the family's bucket/sum/count lines per cell,
  // with the cell's labels on every line). Cells whose label names fail
  // the grammar are skipped — the exposition text stays parseable.
  const auto label_block = [](const MetricLabels& labels,
                              const char* le) -> Result<std::string> {
    std::string block = "{";
    bool first = true;
    for (const auto& [label_name, value] : labels) {
      if (!IsValidPromLabelName(label_name) || label_name == "le") {
        return Status::InvalidArgument("invalid Prometheus label name: " +
                                       label_name);
      }
      if (!first) block += ",";
      first = false;
      block += label_name + "=\"" + PromEscapeLabelValue(value) + "\"";
    }
    if (le != nullptr) {
      if (!first) block += ",";
      block += std::string("le=\"") + le + "\"";
    }
    return block + "}";
  };

  std::string last_family;
  for (const auto& cell : registry.LabeledCounters()) {
    const std::string prom = PromName(cell.family);
    if (!IsValidPromMetricName(prom)) continue;
    const auto labels = label_block(cell.labels, nullptr);
    if (!labels.ok()) continue;
    if (cell.family != last_family) {
      out += "# TYPE " + prom + " counter\n";
      last_family = cell.family;
    }
    out += prom + *labels + " " +
           StrFormat("%llu",
                     static_cast<unsigned long long>(cell.metric->Value())) +
           "\n";
  }
  last_family.clear();
  for (const auto& cell : registry.LabeledGauges()) {
    const std::string prom = PromName(cell.family);
    if (!IsValidPromMetricName(prom)) continue;
    const auto labels = label_block(cell.labels, nullptr);
    if (!labels.ok()) continue;
    if (cell.family != last_family) {
      out += "# TYPE " + prom + " gauge\n";
      last_family = cell.family;
    }
    out += prom + *labels + " " + Num(cell.metric->Value()) + "\n";
  }
  last_family.clear();
  for (const auto& cell : registry.LabeledHistograms()) {
    const std::string prom = PromName(cell.family);
    if (!IsValidPromMetricName(prom)) continue;
    const auto plain = label_block(cell.labels, nullptr);
    if (!plain.ok()) continue;
    if (cell.family != last_family) {
      out += "# TYPE " + prom + " histogram\n";
      last_family = cell.family;
    }
    const std::vector<uint64_t> counts = cell.metric->BucketCounts();
    const std::vector<double>& bounds = cell.metric->bounds();
    unsigned long long cum = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
      cum += counts[i];
      const std::string le =
          i < bounds.size() ? PromEscapeLabelValue(Num(bounds[i])) : "+Inf";
      out += prom + "_bucket" + *label_block(cell.labels, le.c_str()) + " " +
             StrFormat("%llu", cum) + "\n";
    }
    out += prom + "_sum" + *plain + " " + Num(cell.metric->Sum()) + "\n";
    out += prom + "_count" + *plain + " " +
           StrFormat("%llu",
                     static_cast<unsigned long long>(cell.metric->Count())) +
           "\n";
  }
  return out;
}

namespace {

// JSON string-literal escaping for span names in the Chrome trace export.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ExportChromeTrace(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\": [\n";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out += "  {\"ph\": \"X\", \"name\": \"" + JsonEscape(e.name) +
           "\", \"pid\": 1, \"tid\": " + StrFormat("%d", e.tid) +
           ", \"ts\": " + Num(e.ts_us) + ", \"dur\": " + Num(e.dur_us) + "}";
    out += i + 1 < events.size() ? ",\n" : "\n";
  }
  out += "], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

Status WriteChromeTraceFile(const std::vector<TraceEvent>& events,
                            const std::string& path) {
  const std::string text = ExportChromeTrace(events);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot write trace file: " + path);
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return Status::OK();
}

Status WriteTelemetryFile(const MetricsRegistry& registry,
                          const std::string& path) {
  const bool prom =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  const std::string text =
      prom ? ExportPrometheus(registry) : ExportJson(registry);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot write telemetry file: " + path);
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return Status::OK();
}

}  // namespace lightmirm::obs
