// Score-distribution drift primitives for online model-health monitoring:
// a training-time ScoreReference (per-province binned score histograms +
// class counts captured when the model is built, persisted by
// core/model_io) and a SlidingWindow that maintains the same binned
// aggregates incrementally over the most recent observations, so PSI /
// drift-KS / streaming AUC / calibration evaluate in O(bins) per snapshot
// (the math lives in metrics/streaming.h). obs/monitor.h layers the
// thresholded alerting state machines on top.
#pragma once

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace lightmirm::obs {

/// Bin index of a score under `num_bins` equal-width bins over [0, 1].
/// Scores outside [0, 1] clamp to the first/last bin. Inline: this runs
/// per scored row on the monitored serving path.
inline int ScoreBin(double score, int num_bins) {
  const int bin = static_cast<int>(score * static_cast<double>(num_bins));
  return std::clamp(bin, 0, num_bins - 1);
}

/// Binned score histogram plus per-bin positive-label counts for one
/// population (all training rows are labeled, so the reference can derive
/// default rate, discrimination AUC/KS and class CDFs from these counts).
struct BinnedScores {
  std::vector<uint64_t> counts;     ///< rows per score bin
  std::vector<uint64_t> positives;  ///< label==1 rows per score bin

  uint64_t Total() const;
  uint64_t TotalPositives() const;
  /// Fraction of rows with label == 1 (0 when empty).
  double DefaultRate() const;
  /// counts - positives, the negative-class histogram.
  std::vector<uint64_t> Negatives() const;
};

/// Training-time score distribution captured at model build: the global
/// histogram plus one per environment (province), against which the
/// monitor's sliding windows are compared. Environment names ride along so
/// monitor metrics can be published under province names.
struct ScoreReference {
  int num_bins = 0;  ///< 0 = no reference captured
  BinnedScores global;
  std::map<int, BinnedScores> per_env;
  std::vector<std::string> env_names;  ///< index == env id; may be empty

  bool empty() const { return num_bins == 0; }
  /// "env<e>" when names are absent or e is out of range.
  std::string EnvName(int env) const;

  /// Line-oriented text serialization (embedded in the model_io format).
  /// WriteTo emits a self-delimiting section; Parse consumes exactly one
  /// such section. Parse at end-of-stream returns an empty reference, so
  /// model files persisted before references existed load cleanly.
  Status WriteTo(std::ostream* out) const;
  static Result<ScoreReference> Parse(std::istream* in);
};

/// Builds a reference from training scores. `envs` may be empty (global
/// histogram only); otherwise it must be score-aligned, and every
/// environment with at least `min_env_rows` rows gets its own histogram.
/// Errors on misaligned inputs, labels outside {0,1}, or num_bins < 2.
Result<ScoreReference> BuildScoreReference(
    const std::vector<double>& scores, const std::vector<int>& labels,
    const std::vector<int>& envs, int num_bins = 10,
    size_t min_env_rows = 50, std::vector<std::string> env_names = {});

/// Fixed-capacity sliding window over (score, optional label) observations
/// with incrementally maintained binned aggregates. Adding the
/// (capacity+1)-th observation evicts the oldest; aggregates are updated
/// on both insert and evict, so snapshots depend only on the observation
/// sequence (never on batch sizes or thread counts). Unlabeled rows
/// (label == -1, the delayed-label case) count toward the distribution
/// aggregates but not the labeled ones.
class SlidingWindow {
 public:
  /// One pre-binned observation, 4 bytes. The score is quantized to 16
  /// bits — it only feeds the calibration score sums, where the <=8e-6
  /// rounding is orders of magnitude below any calibration threshold — and
  /// the bin is cached so neither eviction nor a second window re-bins.
  /// The ring buffers run per scored row on the monitored serving path
  /// under caches the scoring pass just trashed, so entry bytes are what
  /// the feed cost is made of. Build with MakeEntry.
  struct Entry {
    uint16_t qscore = 0;  ///< round(clamp(score, 0, 1) * 65535)
    uint8_t bin = 0;
    int8_t label = -1;
  };

  /// Quantized score back as a double in [0, 1].
  static double EntryScore(const Entry& e) {
    return static_cast<double>(e.qscore) * (1.0 / 65535.0);
  }

  /// Bins `score` once for every window with this bin count (must be
  /// <= kMaxBins). label must be -1 (unknown yet), 0 or 1. The bin is
  /// derived from the quantized score with integer math — it equals
  /// ScoreBin(EntryScore(e)) exactly, and can differ from
  /// ScoreBin(score) only when the score sits within one quantum
  /// (~8e-6) of a bin edge.
  static Entry MakeEntry(double score, int label, int num_bins) {
    const double clamped = std::clamp(score, 0.0, 1.0);
    const uint32_t q = static_cast<uint32_t>(clamped * 65535.0 + 0.5);
    const uint32_t bins = static_cast<uint32_t>(num_bins);
    return Entry{static_cast<uint16_t>(q),
                 static_cast<uint8_t>(std::min(q * bins / 65535u, bins - 1)),
                 static_cast<int8_t>(label < 0 ? -1 : (label != 0))};
  }

  /// Entry::bin is 8 bits, so windows support at most 256 score bins
  /// (monitoring uses 10-bin histograms; this is not a practical limit).
  static constexpr int kMaxBins = 256;

  SlidingWindow(int num_bins, size_t capacity);

  /// label must be -1 (unknown yet), 0 or 1. Defined inline below — this
  /// is the monitored serving path's per-row cost.
  void Add(double score, int label);

  /// Add of an entry built by MakeEntry with this window's bin count. The
  /// monitor feeds several same-binning windows per row; binning once and
  /// reusing the entry keeps that path cheap.
  void Add(const Entry& e);

  /// Exactly `Add(entries[0..n))`, but with the ring cursor and aggregate
  /// pointers held in locals across the loop — the serving-path monitor
  /// feeds whole chunks at once and the per-Add member traffic would
  /// otherwise be a measurable fraction of its budget.
  void AddBatch(const Entry* entries, size_t n);

  /// Hints the cache that the lines the next few Adds touch (ring slots
  /// and the bin-count array) are about to be written. The monitor issues
  /// these for every active window at the top of each chunk: the per-env
  /// windows are cold after a scoring pass, and prefetching early lets the
  /// global-window feed overlap their miss latency.
  void PrefetchNextSlot() const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(ring_.data() + next_, /*rw=*/1);
    __builtin_prefetch(ring_.data() + std::min(next_ + 15, capacity_ - 1),
                       /*rw=*/1);
    __builtin_prefetch(counts_.data(), /*rw=*/1);
#endif
  }

  int num_bins() const { return num_bins_; }
  size_t capacity() const { return capacity_; }

  size_t size() const { return ring_.size(); }
  uint64_t total_seen() const { return total_seen_; }

  /// Line-oriented text serialization of the complete window state — ring
  /// contents, cursor, and every aggregate — in the same self-delimiting
  /// style as ScoreReference. Aggregates are persisted verbatim (doubles
  /// as %.17g) rather than rebuilt from the ring: score_sums_ carries the
  /// residue of every add/evict pair ever applied, so replaying the
  /// surviving entries would not reproduce it bit-for-bit. A restored
  /// window therefore continues the observation stream exactly where the
  /// saved one stopped.
  Status SaveState(std::ostream* out) const;
  static Result<SlidingWindow> LoadState(std::istream* in);

  /// All-row score histogram (PSI / drift-KS input).
  const std::vector<uint64_t>& bin_counts() const { return counts_; }
  /// Labeled-row aggregates (streaming AUC/KS, default rate, calibration).
  const std::vector<uint64_t>& labeled_counts() const { return labeled_; }
  const std::vector<uint64_t>& labeled_positives() const { return positives_; }
  const std::vector<double>& labeled_score_sums() const { return score_sums_; }
  uint64_t labeled_total() const { return labeled_total_; }
  uint64_t positive_total() const { return positive_total_; }

 private:
  void Apply(const Entry& e, int64_t sign);

  int num_bins_;
  size_t capacity_;
  size_t next_ = 0;  ///< ring slot the next Add writes
  std::vector<Entry> ring_;
  uint64_t total_seen_ = 0;
  std::vector<uint64_t> counts_;
  std::vector<uint64_t> labeled_;
  std::vector<uint64_t> positives_;
  std::vector<double> score_sums_;
  uint64_t labeled_total_ = 0;
  uint64_t positive_total_ = 0;
};

inline void SlidingWindow::Apply(const Entry& e, int64_t sign) {
  const size_t b = static_cast<size_t>(e.bin);
  counts_[b] = static_cast<uint64_t>(static_cast<int64_t>(counts_[b]) + sign);
  if (e.label >= 0) {
    labeled_[b] =
        static_cast<uint64_t>(static_cast<int64_t>(labeled_[b]) + sign);
    labeled_total_ =
        static_cast<uint64_t>(static_cast<int64_t>(labeled_total_) + sign);
    score_sums_[b] += static_cast<double>(sign) * EntryScore(e);
    if (e.label == 1) {
      positives_[b] =
          static_cast<uint64_t>(static_cast<int64_t>(positives_[b]) + sign);
      positive_total_ =
          static_cast<uint64_t>(static_cast<int64_t>(positive_total_) + sign);
    }
  }
}

inline void SlidingWindow::Add(const Entry& e) {
  ++total_seen_;
  Apply(e, +1);
  if (ring_.size() < capacity_) [[unlikely]] {  // only while filling
    ring_.push_back(e);
  } else {
    Apply(ring_[next_], -1);
    ring_[next_] = e;
  }
  // Branch instead of modulo: the divide would dominate the per-row cost.
  if (++next_ == capacity_) next_ = 0;
}

inline void SlidingWindow::Add(double score, int label) {
  Add(MakeEntry(score, label, num_bins_));
}

inline void SlidingWindow::AddBatch(const Entry* entries, size_t n) {
  size_t i = 0;
  while (ring_.size() < capacity_ && i < n) Add(entries[i++]);  // filling
  if (i == n) return;
  // Steady state: the ring is full, every add evicts. Locals keep the
  // cursor and the unlabeled-path aggregates out of memory; the labeled
  // branches stay perfectly predicted on the serving path (no labels yet).
  Entry* const ring = ring_.data();
  uint64_t* const counts = counts_.data();
  size_t next = next_;
  total_seen_ += n - i;
  for (; i < n; ++i) {
    const Entry e = entries[i];
    const Entry old = ring[next];
    ring[next] = e;
    if (++next == capacity_) next = 0;
    ++counts[e.bin];
    --counts[old.bin];
    if (e.label >= 0) {
      ++labeled_[e.bin];
      ++labeled_total_;
      score_sums_[e.bin] += EntryScore(e);
      if (e.label == 1) {
        ++positives_[e.bin];
        ++positive_total_;
      }
    }
    if (old.label >= 0) {
      --labeled_[old.bin];
      --labeled_total_;
      score_sums_[old.bin] -= EntryScore(old);
      if (old.label == 1) {
        --positives_[old.bin];
        --positive_total_;
      }
    }
  }
  next_ = next;
}

}  // namespace lightmirm::obs
