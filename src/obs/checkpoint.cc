// Serialization side of the monitor state plane (see obs/checkpoint.h).
// Everything here is line-oriented text in the ScoreReference style:
// tagged, self-delimiting sections that parse with plain istream
// extraction and fail loudly on any shape mismatch.
#include "obs/checkpoint.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/string_util.h"

namespace lightmirm::obs {
namespace {

Status ReadLine(std::istream* in, const char* what, std::string* line) {
  if (!std::getline(*in, *line)) {
    return Status::IoError(StrFormat("truncated %s", what));
  }
  return Status::OK();
}

}  // namespace

Status AlertStateMachine::SaveState(std::ostream* out) const {
  (*out) << "alert_machine " << FormatG17(thresholds_.warn) << " "
         << FormatG17(thresholds_.alert) << " "
         << FormatG17(thresholds_.hysteresis) << " "
         << static_cast<int>(state_) << "\n";
  return out->good() ? Status::OK() : Status::IoError("write failed");
}

Result<AlertStateMachine> AlertStateMachine::LoadState(std::istream* in) {
  std::string line;
  LIGHTMIRM_RETURN_NOT_OK(ReadLine(in, "alert_machine state", &line));
  std::istringstream ss(line);
  std::string tag;
  AlertThresholds thresholds;
  int state = 0;
  if (!(ss >> tag >> thresholds.warn >> thresholds.alert >>
        thresholds.hysteresis >> state) ||
      tag != "alert_machine") {
    return Status::InvalidArgument("expected alert_machine line");
  }
  if (state < 0 || state > 2) {
    return Status::InvalidArgument("bad alert_machine state");
  }
  if (thresholds.hysteresis < 0.0 || thresholds.hysteresis >= 1.0) {
    return Status::InvalidArgument("bad alert_machine hysteresis");
  }
  AlertStateMachine machine(thresholds);
  machine.state_ = static_cast<AlertState>(state);
  return machine;
}

Status MonitorOptions::SaveState(std::ostream* out) const {
  (*out) << "monitor_options " << window << " " << min_rows << " "
         << min_labeled << " " << fairness_min_labeled << "\n";
  const auto thresholds = [out](const char* name,
                                const AlertThresholds& t) {
    (*out) << "thresholds " << name << " " << FormatG17(t.warn) << " "
           << FormatG17(t.alert) << " " << FormatG17(t.hysteresis)
           << "\n";
  };
  thresholds("psi", psi);
  thresholds("drift_ks", drift_ks);
  thresholds("default_rate_rise", default_rate_rise);
  thresholds("auc_drop", auc_drop);
  thresholds("ks_drop", ks_drop);
  thresholds("calibration", calibration);
  thresholds("fairness_gap", fairness_gap);
  return out->good() ? Status::OK() : Status::IoError("write failed");
}

Result<MonitorOptions> MonitorOptions::LoadState(std::istream* in) {
  std::string line;
  LIGHTMIRM_RETURN_NOT_OK(ReadLine(in, "monitor_options", &line));
  MonitorOptions options;
  {
    std::istringstream ss(line);
    std::string tag;
    if (!(ss >> tag >> options.window >> options.min_rows >>
          options.min_labeled >> options.fairness_min_labeled) ||
        tag != "monitor_options") {
      return Status::InvalidArgument("expected monitor_options line");
    }
  }
  const auto read = [&](const char* want, AlertThresholds* t) {
    LIGHTMIRM_RETURN_NOT_OK(
        ReadLine(in, "monitor_options thresholds", &line));
    std::istringstream ss(line);
    std::string tag, name;
    if (!(ss >> tag >> name >> t->warn >> t->alert >> t->hysteresis) ||
        tag != "thresholds" || name != want) {
      return Status::InvalidArgument(
          StrFormat("expected thresholds %s line", want));
    }
    return Status::OK();
  };
  LIGHTMIRM_RETURN_NOT_OK(read("psi", &options.psi));
  LIGHTMIRM_RETURN_NOT_OK(read("drift_ks", &options.drift_ks));
  LIGHTMIRM_RETURN_NOT_OK(
      read("default_rate_rise", &options.default_rate_rise));
  LIGHTMIRM_RETURN_NOT_OK(read("auc_drop", &options.auc_drop));
  LIGHTMIRM_RETURN_NOT_OK(read("ks_drop", &options.ks_drop));
  LIGHTMIRM_RETURN_NOT_OK(read("calibration", &options.calibration));
  LIGHTMIRM_RETURN_NOT_OK(read("fairness_gap", &options.fairness_gap));
  return options;
}

namespace {

// One EnvMonitor = the window plus its six signal machines, in a fixed
// order shared by save and load.
Status SaveEnvMonitorState(const SlidingWindow& window,
                           const AlertStateMachine& psi,
                           const AlertStateMachine& drift_ks,
                           const AlertStateMachine& default_rate_rise,
                           const AlertStateMachine& auc_drop,
                           const AlertStateMachine& ks_drop,
                           const AlertStateMachine& calibration,
                           std::ostream* out) {
  LIGHTMIRM_RETURN_NOT_OK(window.SaveState(out));
  LIGHTMIRM_RETURN_NOT_OK(psi.SaveState(out));
  LIGHTMIRM_RETURN_NOT_OK(drift_ks.SaveState(out));
  LIGHTMIRM_RETURN_NOT_OK(default_rate_rise.SaveState(out));
  LIGHTMIRM_RETURN_NOT_OK(auc_drop.SaveState(out));
  LIGHTMIRM_RETURN_NOT_OK(ks_drop.SaveState(out));
  return calibration.SaveState(out);
}

}  // namespace

Status ModelHealthMonitor::SaveCheckpoint(std::ostream* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  (*out) << kMonitorCheckpointMagic << " v" << kMonitorCheckpointVersion
         << "\n";
  LIGHTMIRM_RETURN_NOT_OK(options_.SaveState(out));
  LIGHTMIRM_RETURN_NOT_OK(reference_.WriteTo(out));
  (*out) << "counters " << static_cast<unsigned long long>(evaluations_)
         << " " << static_cast<unsigned long long>(escalations_) << "\n";
  LIGHTMIRM_RETURN_NOT_OK(fairness_.SaveState(out));
  (*out) << "window global\n";
  LIGHTMIRM_RETURN_NOT_OK(SaveEnvMonitorState(
      global_.window, global_.machines.psi, global_.machines.drift_ks,
      global_.machines.default_rate_rise, global_.machines.auc_drop,
      global_.machines.ks_drop, global_.machines.calibration, out));
  (*out) << "env_windows " << per_env_.size() << "\n";
  for (const auto& [env, mon] : per_env_) {
    (*out) << "window env " << env << "\n";
    LIGHTMIRM_RETURN_NOT_OK(SaveEnvMonitorState(
        mon.window, mon.machines.psi, mon.machines.drift_ks,
        mon.machines.default_rate_rise, mon.machines.auc_drop,
        mon.machines.ks_drop, mon.machines.calibration, out));
  }
  (*out) << "end_monitor_checkpoint\n";
  return out->good() ? Status::OK() : Status::IoError("write failed");
}

Result<std::unique_ptr<ModelHealthMonitor>> ModelHealthMonitor::LoadCheckpoint(
    std::istream* in) {
  std::string line;
  // Skip leading blank lines, like ScoreReference::Parse.
  do {
    LIGHTMIRM_RETURN_NOT_OK(ReadLine(in, "monitor checkpoint", &line));
  } while (Trim(line).empty());
  {
    std::istringstream ss(line);
    std::string tag, version;
    if (!(ss >> tag >> version) || tag != kMonitorCheckpointMagic) {
      return Status::InvalidArgument("expected monitor_checkpoint header");
    }
    if (version != StrFormat("v%d", kMonitorCheckpointVersion)) {
      return Status::InvalidArgument(
          StrFormat("unsupported monitor checkpoint version '%s' (this "
                    "build reads v%d)",
                    version.c_str(), kMonitorCheckpointVersion));
    }
  }
  LIGHTMIRM_ASSIGN_OR_RETURN(MonitorOptions options,
                             MonitorOptions::LoadState(in));
  LIGHTMIRM_ASSIGN_OR_RETURN(ScoreReference reference,
                             ScoreReference::Parse(in));
  if (reference.empty()) {
    return Status::InvalidArgument(
        "monitor checkpoint carries an empty score reference");
  }
  LIGHTMIRM_ASSIGN_OR_RETURN(std::unique_ptr<ModelHealthMonitor> monitor,
                             Create(std::move(reference), options));
  {
    LIGHTMIRM_RETURN_NOT_OK(ReadLine(in, "checkpoint counters", &line));
    std::istringstream ss(line);
    std::string tag;
    unsigned long long evaluations = 0, escalations = 0;
    if (!(ss >> tag >> evaluations >> escalations) || tag != "counters") {
      return Status::InvalidArgument("expected checkpoint counters line");
    }
    monitor->evaluations_ = evaluations;
    monitor->escalations_ = escalations;
  }
  LIGHTMIRM_ASSIGN_OR_RETURN(monitor->fairness_,
                             AlertStateMachine::LoadState(in));
  const int num_bins = monitor->reference_.num_bins;
  const auto load_env_monitor = [&](EnvMonitor* mon) {
    LIGHTMIRM_ASSIGN_OR_RETURN(mon->window, SlidingWindow::LoadState(in));
    if (mon->window.num_bins() != num_bins) {
      return Status::InvalidArgument(
          "checkpoint window bin count disagrees with the reference");
    }
    LIGHTMIRM_ASSIGN_OR_RETURN(mon->machines.psi,
                               AlertStateMachine::LoadState(in));
    LIGHTMIRM_ASSIGN_OR_RETURN(mon->machines.drift_ks,
                               AlertStateMachine::LoadState(in));
    LIGHTMIRM_ASSIGN_OR_RETURN(mon->machines.default_rate_rise,
                               AlertStateMachine::LoadState(in));
    LIGHTMIRM_ASSIGN_OR_RETURN(mon->machines.auc_drop,
                               AlertStateMachine::LoadState(in));
    LIGHTMIRM_ASSIGN_OR_RETURN(mon->machines.ks_drop,
                               AlertStateMachine::LoadState(in));
    LIGHTMIRM_ASSIGN_OR_RETURN(mon->machines.calibration,
                               AlertStateMachine::LoadState(in));
    return Status::OK();
  };
  {
    LIGHTMIRM_RETURN_NOT_OK(ReadLine(in, "checkpoint global window", &line));
    if (Trim(line) != "window global") {
      return Status::InvalidArgument("expected 'window global' line");
    }
    LIGHTMIRM_RETURN_NOT_OK(load_env_monitor(&monitor->global_));
  }
  size_t env_count = 0;
  {
    LIGHTMIRM_RETURN_NOT_OK(ReadLine(in, "checkpoint env windows", &line));
    std::istringstream ss(line);
    std::string tag;
    if (!(ss >> tag >> env_count) || tag != "env_windows") {
      return Status::InvalidArgument("expected env_windows line");
    }
    if (env_count != monitor->per_env_.size()) {
      return Status::InvalidArgument(StrFormat(
          "checkpoint has %zu env windows but the reference monitors %zu "
          "environments",
          env_count, monitor->per_env_.size()));
    }
  }
  for (size_t i = 0; i < env_count; ++i) {
    LIGHTMIRM_RETURN_NOT_OK(ReadLine(in, "checkpoint env window", &line));
    std::istringstream ss(line);
    std::string tag, kind;
    int env = 0;
    if (!(ss >> tag >> kind >> env) || tag != "window" || kind != "env") {
      return Status::InvalidArgument("expected 'window env <id>' line");
    }
    const auto it = monitor->per_env_.find(env);
    if (it == monitor->per_env_.end()) {
      return Status::InvalidArgument(StrFormat(
          "checkpoint window for env %d, which the reference does not "
          "monitor",
          env));
    }
    LIGHTMIRM_RETURN_NOT_OK(load_env_monitor(&it->second));
  }
  {
    LIGHTMIRM_RETURN_NOT_OK(ReadLine(in, "checkpoint trailer", &line));
    if (Trim(line) != "end_monitor_checkpoint") {
      return Status::InvalidArgument("expected end_monitor_checkpoint");
    }
  }
  return monitor;
}

Status SaveMonitorCheckpointToFile(const ModelHealthMonitor& monitor,
                                   const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return monitor.SaveCheckpoint(&out);
}

Result<std::unique_ptr<ModelHealthMonitor>> LoadMonitorCheckpointFromFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return ModelHealthMonitor::LoadCheckpoint(&in);
}

}  // namespace lightmirm::obs
