// Logistic regression model (Eq. 2 of the paper):
//   y_hat = sigmoid(theta^T x + b).
// Parameters are packed into a single vector of size cols+1 with the bias
// last, which keeps the MAML inner/outer updates plain vector arithmetic.
#pragma once

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "linear/feature_matrix.h"

namespace lightmirm::linear {

/// Packed parameter vector: [theta_0..theta_{d-1}, bias].
using ParamVec = std::vector<double>;

/// Numerically stable sigmoid.
double Sigmoid(double x);

/// The LR predictor of the paper.
class LogisticModel {
 public:
  LogisticModel() = default;

  /// Creates a model for `num_features` inputs with zero parameters.
  explicit LogisticModel(size_t num_features);

  /// Creates a model with small random parameters (N(0, init_scale)).
  static LogisticModel RandomInit(size_t num_features, double init_scale,
                                  Rng* rng);

  size_t num_features() const {
    return params_.empty() ? 0 : params_.size() - 1;
  }

  const ParamVec& params() const { return params_; }
  ParamVec& mutable_params() { return params_; }
  void set_params(ParamVec params) { params_ = std::move(params); }

  double bias() const { return params_.back(); }

  /// Predicted default probability for row r of X.
  double PredictRow(const FeatureMatrix& x, size_t r) const;

  /// Predicted probabilities for all rows.
  std::vector<double> Predict(const FeatureMatrix& x) const;

  /// Predicted probabilities for a subset of rows (aligned with `rows`).
  std::vector<double> PredictRows(const FeatureMatrix& x,
                                  const std::vector<size_t>& rows) const;

 private:
  ParamVec params_;
};

}  // namespace lightmirm::linear
