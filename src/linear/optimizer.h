// First-order optimizers operating on packed parameter vectors. The outer
// loop of meta-IRM / LightMIRM and the ERM-family baselines all step
// through this interface.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "linear/logistic.h"

namespace lightmirm::linear {

/// Optimizer configuration.
struct OptimizerOptions {
  std::string kind = "sgd";  ///< "sgd", "momentum", or "adam"
  double learning_rate = 0.1;
  double momentum = 0.9;  ///< for "momentum"
  double beta1 = 0.9;     ///< for "adam"
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

/// Stateful gradient-descent stepper.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update: params -= f(grad). Sizes must match the first
  /// call's.
  virtual void Step(const ParamVec& grad, ParamVec* params) = 0;

  /// Clears internal state (momentum buffers etc.).
  virtual void Reset() = 0;

  /// Factory by options; errors on unknown kind.
  static Result<std::unique_ptr<Optimizer>> Create(
      const OptimizerOptions& options);
};

}  // namespace lightmirm::linear
