#include "linear/logistic.h"

#include <cmath>

namespace lightmirm::linear {

double Sigmoid(double x) {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

LogisticModel::LogisticModel(size_t num_features)
    : params_(num_features + 1, 0.0) {}

LogisticModel LogisticModel::RandomInit(size_t num_features,
                                        double init_scale, Rng* rng) {
  LogisticModel model(num_features);
  for (double& p : model.params_) p = rng->Normal(0.0, init_scale);
  return model;
}

double LogisticModel::PredictRow(const FeatureMatrix& x, size_t r) const {
  return Sigmoid(x.RowDot(r, params_) + params_.back());
}

std::vector<double> LogisticModel::Predict(const FeatureMatrix& x) const {
  std::vector<double> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) out[r] = PredictRow(x, r);
  return out;
}

std::vector<double> LogisticModel::PredictRows(
    const FeatureMatrix& x, const std::vector<size_t>& rows) const {
  std::vector<double> out(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) out[i] = PredictRow(x, rows[i]);
  return out;
}

}  // namespace lightmirm::linear
