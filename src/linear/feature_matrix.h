// FeatureMatrix: the input representation consumed by the logistic
// regression head. Two storage modes:
//   * dense rows (raw numeric features), and
//   * sparse-binary rows (the multi-hot GBDT leaf encoding of §III-C, where
//     each row has exactly one active column per tree).
// Sparse-binary mode makes the LR gradient and Hessian-vector kernels cost
// O(active entries) instead of O(columns).
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/result.h"

namespace lightmirm::linear {

/// Immutable design matrix with dense or sparse-binary storage.
class FeatureMatrix {
 public:
  FeatureMatrix() = default;

  /// Wraps a dense matrix.
  static FeatureMatrix FromDense(Matrix dense);

  /// Builds a sparse-binary matrix with `cols` columns; row r has value 1.0
  /// at every index in `row_active[r]` and 0 elsewhere. Errors if any index
  /// is out of range.
  static Result<FeatureMatrix> FromSparseBinary(
      size_t cols, std::vector<std::vector<uint32_t>> row_active);

  size_t rows() const {
    return dense_mode_ ? dense_.rows() : sparse_rows_.size();
  }
  size_t cols() const { return dense_mode_ ? dense_.cols() : cols_; }
  bool dense_mode() const { return dense_mode_; }

  /// Dot product of row r with the first cols() entries of `w`.
  double RowDot(size_t r, const std::vector<double>& w) const;

  /// out[j] += a * X[r][j] for all j. `out` must have at least cols()
  /// entries.
  void AddScaledRow(size_t r, double a, std::vector<double>* out) const;

  /// Active column indices of a sparse row (empty span semantics for dense
  /// mode — call only when !dense_mode()).
  const std::vector<uint32_t>& SparseRow(size_t r) const {
    return sparse_rows_[r];
  }

  /// The dense matrix (call only when dense_mode()).
  const Matrix& dense() const { return dense_; }

  /// Mean number of active (nonzero) entries per row.
  double MeanRowNnz() const;

 private:
  bool dense_mode_ = true;
  Matrix dense_;
  size_t cols_ = 0;
  std::vector<std::vector<uint32_t>> sparse_rows_;
};

}  // namespace lightmirm::linear
