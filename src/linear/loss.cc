#include "linear/loss.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace lightmirm::linear {
namespace {

// Clamped log to keep the loss finite for saturated probabilities.
double SafeLog(double v) { return std::log(std::max(v, 1e-12)); }

}  // namespace

double BceLoss(const LossContext& ctx, const std::vector<size_t>& rows,
               const ParamVec& params) {
  assert(ctx.x != nullptr && ctx.labels != nullptr && !rows.empty());
  double loss = 0.0, total_w = 0.0;
  for (size_t r : rows) {
    const double w = ctx.weights != nullptr ? (*ctx.weights)[r] : 1.0;
    const double p = Sigmoid(ctx.x->RowDot(r, params) + params.back());
    const int y = (*ctx.labels)[r];
    loss -= w * (y == 1 ? SafeLog(p) : SafeLog(1.0 - p));
    total_w += w;
  }
  return loss / total_w;
}

double BceLossGrad(const LossContext& ctx, const std::vector<size_t>& rows,
                   const ParamVec& params, ParamVec* grad) {
  assert(ctx.x != nullptr && ctx.labels != nullptr && !rows.empty());
  grad->assign(params.size(), 0.0);
  double loss = 0.0, total_w = 0.0;
  for (size_t r : rows) {
    const double w = ctx.weights != nullptr ? (*ctx.weights)[r] : 1.0;
    const double p = Sigmoid(ctx.x->RowDot(r, params) + params.back());
    const int y = (*ctx.labels)[r];
    loss -= w * (y == 1 ? SafeLog(p) : SafeLog(1.0 - p));
    const double residual = w * (p - static_cast<double>(y));
    ctx.x->AddScaledRow(r, residual, grad);
    grad->back() += residual;
    total_w += w;
  }
  const double inv_w = 1.0 / total_w;
  for (double& g : *grad) g *= inv_w;
  return loss * inv_w;
}

void BceHvp(const LossContext& ctx, const std::vector<size_t>& rows,
            const ParamVec& params, const ParamVec& v, ParamVec* hv) {
  assert(ctx.x != nullptr && ctx.labels != nullptr && !rows.empty());
  assert(v.size() == params.size());
  hv->assign(params.size(), 0.0);
  double total_w = 0.0;
  for (size_t r : rows) {
    const double w = ctx.weights != nullptr ? (*ctx.weights)[r] : 1.0;
    const double p = Sigmoid(ctx.x->RowDot(r, params) + params.back());
    const double s = p * (1.0 - p);
    const double xv = ctx.x->RowDot(r, v) + v.back();
    const double coeff = w * s * xv;
    ctx.x->AddScaledRow(r, coeff, hv);
    hv->back() += coeff;
    total_w += w;
  }
  const double inv_w = 1.0 / total_w;
  for (double& h : *hv) h *= inv_w;
}

double AddL2(const ParamVec& params, double l2, ParamVec* grad) {
  if (l2 == 0.0) return 0.0;
  double penalty = 0.0;
  for (size_t j = 0; j + 1 < params.size(); ++j) {
    penalty += params[j] * params[j];
    if (grad != nullptr) (*grad)[j] += l2 * params[j];
  }
  return 0.5 * l2 * penalty;
}

std::vector<size_t> AllRows(size_t n) {
  std::vector<size_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0);
  return rows;
}

}  // namespace lightmirm::linear
