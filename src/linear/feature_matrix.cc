#include "linear/feature_matrix.h"

#include <cassert>

#include "common/string_util.h"

namespace lightmirm::linear {

FeatureMatrix FeatureMatrix::FromDense(Matrix dense) {
  FeatureMatrix fm;
  fm.dense_mode_ = true;
  fm.dense_ = std::move(dense);
  return fm;
}

Result<FeatureMatrix> FeatureMatrix::FromSparseBinary(
    size_t cols, std::vector<std::vector<uint32_t>> row_active) {
  for (size_t r = 0; r < row_active.size(); ++r) {
    for (uint32_t c : row_active[r]) {
      if (c >= cols) {
        return Status::OutOfRange(
            StrFormat("row %zu: column %u out of range (%zu cols)", r, c,
                      cols));
      }
    }
  }
  FeatureMatrix fm;
  fm.dense_mode_ = false;
  fm.cols_ = cols;
  fm.sparse_rows_ = std::move(row_active);
  return fm;
}

double FeatureMatrix::RowDot(size_t r, const std::vector<double>& w) const {
  assert(w.size() >= cols());
  if (dense_mode_) {
    const double* row = dense_.Row(r);
    double acc = 0.0;
    for (size_t c = 0; c < dense_.cols(); ++c) acc += row[c] * w[c];
    return acc;
  }
  double acc = 0.0;
  for (uint32_t c : sparse_rows_[r]) acc += w[c];
  return acc;
}

void FeatureMatrix::AddScaledRow(size_t r, double a,
                                 std::vector<double>* out) const {
  assert(out->size() >= cols());
  if (a == 0.0) return;
  if (dense_mode_) {
    const double* row = dense_.Row(r);
    for (size_t c = 0; c < dense_.cols(); ++c) (*out)[c] += a * row[c];
    return;
  }
  for (uint32_t c : sparse_rows_[r]) (*out)[c] += a;
}

double FeatureMatrix::MeanRowNnz() const {
  if (rows() == 0) return 0.0;
  if (dense_mode_) {
    size_t nnz = 0;
    for (size_t r = 0; r < dense_.rows(); ++r) {
      const double* row = dense_.Row(r);
      for (size_t c = 0; c < dense_.cols(); ++c) {
        if (row[c] != 0.0) ++nnz;
      }
    }
    return static_cast<double>(nnz) / static_cast<double>(dense_.rows());
  }
  size_t nnz = 0;
  for (const auto& row : sparse_rows_) nnz += row.size();
  return static_cast<double>(nnz) / static_cast<double>(sparse_rows_.size());
}

}  // namespace lightmirm::linear
