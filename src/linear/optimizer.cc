#include "linear/optimizer.h"

#include <cassert>
#include <cmath>

namespace lightmirm::linear {
namespace {

class SgdOptimizer : public Optimizer {
 public:
  explicit SgdOptimizer(const OptimizerOptions& opt) : lr_(opt.learning_rate) {}

  void Step(const ParamVec& grad, ParamVec* params) override {
    assert(grad.size() == params->size());
    for (size_t i = 0; i < grad.size(); ++i) (*params)[i] -= lr_ * grad[i];
  }

  void Reset() override {}

 private:
  double lr_;
};

class MomentumOptimizer : public Optimizer {
 public:
  explicit MomentumOptimizer(const OptimizerOptions& opt)
      : lr_(opt.learning_rate), momentum_(opt.momentum) {}

  void Step(const ParamVec& grad, ParamVec* params) override {
    if (velocity_.size() != grad.size()) velocity_.assign(grad.size(), 0.0);
    for (size_t i = 0; i < grad.size(); ++i) {
      velocity_[i] = momentum_ * velocity_[i] + grad[i];
      (*params)[i] -= lr_ * velocity_[i];
    }
  }

  void Reset() override { velocity_.clear(); }

 private:
  double lr_;
  double momentum_;
  ParamVec velocity_;
};

class AdamOptimizer : public Optimizer {
 public:
  explicit AdamOptimizer(const OptimizerOptions& opt)
      : lr_(opt.learning_rate),
        beta1_(opt.beta1),
        beta2_(opt.beta2),
        eps_(opt.epsilon) {}

  void Step(const ParamVec& grad, ParamVec* params) override {
    if (m_.size() != grad.size()) {
      m_.assign(grad.size(), 0.0);
      v_.assign(grad.size(), 0.0);
      t_ = 0;
    }
    ++t_;
    const double bc1 = 1.0 - std::pow(beta1_, t_);
    const double bc2 = 1.0 - std::pow(beta2_, t_);
    for (size_t i = 0; i < grad.size(); ++i) {
      m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grad[i];
      v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grad[i] * grad[i];
      const double mhat = m_[i] / bc1;
      const double vhat = v_[i] / bc2;
      (*params)[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }

  void Reset() override {
    m_.clear();
    v_.clear();
    t_ = 0;
  }

 private:
  double lr_, beta1_, beta2_, eps_;
  ParamVec m_, v_;
  int64_t t_ = 0;
};

}  // namespace

Result<std::unique_ptr<Optimizer>> Optimizer::Create(
    const OptimizerOptions& options) {
  if (options.learning_rate <= 0.0) {
    return Status::InvalidArgument("learning_rate must be positive");
  }
  if (options.kind == "sgd") {
    return std::unique_ptr<Optimizer>(new SgdOptimizer(options));
  }
  if (options.kind == "momentum") {
    return std::unique_ptr<Optimizer>(new MomentumOptimizer(options));
  }
  if (options.kind == "adam") {
    return std::unique_ptr<Optimizer>(new AdamOptimizer(options));
  }
  return Status::InvalidArgument("unknown optimizer kind: " + options.kind);
}

}  // namespace lightmirm::linear
