// Binary cross-entropy risk kernels for logistic regression over row
// subsets (environments). These are the atomic operations of Algorithms 1
// and 2 in the paper:
//   R^m(D_m; theta)            -> BceLoss over the rows of environment m
//   grad_theta R^m(D_m; theta) -> BceLossGrad
//   H^m(theta) * v             -> BceHvp (exact logistic Hessian-vector
//                                 product, used for second-order MAML)
#pragma once

#include <vector>

#include "common/result.h"
#include "linear/logistic.h"

namespace lightmirm::linear {

/// Bundles the design matrix, labels and optional per-row weights; all
/// loss kernels index into these through explicit row subsets so that
/// per-environment losses never copy data.
struct LossContext {
  const FeatureMatrix* x = nullptr;
  const std::vector<int>* labels = nullptr;
  /// Optional per-row weights (full length); nullptr means all-ones.
  const std::vector<double>* weights = nullptr;
};

/// Weighted mean BCE over `rows` (Eq. 4). Rows must be non-empty.
double BceLoss(const LossContext& ctx, const std::vector<size_t>& rows,
               const ParamVec& params);

/// Computes the loss and writes the gradient (size params.size(), bias
/// last) into `grad`. Returns the loss.
double BceLossGrad(const LossContext& ctx, const std::vector<size_t>& rows,
                   const ParamVec& params, ParamVec* grad);

/// Exact Hessian-vector product of the mean BCE at `params`:
///   hv = [ (1/W) sum_i w_i s_i x_i (x_i^T v + v_b) ;
///          (1/W) sum_i w_i s_i (x_i^T v + v_b) ]
/// with s_i = p_i (1 - p_i). `hv` is resized to params.size().
void BceHvp(const LossContext& ctx, const std::vector<size_t>& rows,
            const ParamVec& params, const ParamVec& v, ParamVec* hv);

/// Adds the L2 penalty 0.5*l2*|theta|^2 (bias excluded) to `loss` and its
/// gradient l2*theta to `grad` (grad may be null to skip).
double AddL2(const ParamVec& params, double l2, ParamVec* grad);

/// All row indices [0, n).
std::vector<size_t> AllRows(size_t n);

}  // namespace lightmirm::linear
