// Dense row-major matrix of doubles with the handful of BLAS-like kernels
// the library needs. This is deliberately small: the heavy lifting in
// lightmirm happens on sparse multi-hot features (see linear/feature_matrix.h)
// and inside the GBDT histograms.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace lightmirm {

/// Row-major dense matrix.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Creates from explicit data (size must equal rows*cols).
  Matrix(size_t rows, size_t cols, std::vector<double> data);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  double& At(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Pointer to the start of row r.
  double* Row(size_t r) { return data_.data() + r * cols_; }
  const double* Row(size_t r) const { return data_.data() + r * cols_; }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// y = this * x  (x has cols() entries; y gets rows() entries).
  void MatVec(const std::vector<double>& x, std::vector<double>* y) const;

  /// y = this^T * x  (x has rows() entries; y gets cols() entries).
  void TransposeMatVec(const std::vector<double>& x,
                       std::vector<double>* y) const;

  /// Returns this * other.
  Matrix MatMul(const Matrix& other) const;

  /// Returns the transpose.
  Matrix Transposed() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// In-place y += a * x. Sizes must match.
void Axpy(double a, const std::vector<double>& x, std::vector<double>* y);

/// Dot product; sizes must match.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm.
double Norm2(const std::vector<double>& v);

}  // namespace lightmirm
