// Result<T>: a value-or-Status holder, in the style of arrow::Result.
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/macros.h"
#include "common/status.h"

namespace lightmirm {

/// Holds either a value of type T or an error Status. The error status of a
/// Result is never OK; constructing one from an OK status is an internal
/// error that is normalized to StatusCode::kInternal.
template <typename T>
class Result {
 public:
  /// Constructs a successful result.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs an error result from a non-OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The error status; Status::OK() when a value is present.
  const Status& status() const { return status_; }

  /// Accessors; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` on error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace lightmirm
