#include "common/timer.h"

namespace lightmirm {

void StepTimer::Add(const std::string& name, double seconds) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    order_.push_back(name);
    it = entries_.emplace(name, Entry{}).first;
  }
  it->second.total_seconds += seconds;
  it->second.count += 1;
}

double StepTimer::TotalSeconds(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? 0.0 : it->second.total_seconds;
}

int64_t StepTimer::Count(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.count;
}

double StepTimer::MeanSeconds(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end() || it->second.count == 0) return 0.0;
  return it->second.total_seconds / static_cast<double>(it->second.count);
}

void StepTimer::Reset() {
  entries_.clear();
  order_.clear();
}

}  // namespace lightmirm
