#include "common/timer.h"

#include "obs/metrics.h"

namespace lightmirm {

StepTimer::StepTimer() : registry_(std::make_unique<obs::MetricsRegistry>()) {}

StepTimer::~StepTimer() = default;

StepTimer::StepTimer(const StepTimer& other) : StepTimer() {
  CopyFrom(other);
}

StepTimer& StepTimer::operator=(const StepTimer& other) {
  if (this == &other) return *this;
  Reset();
  CopyFrom(other);
  return *this;
}

StepTimer::StepTimer(StepTimer&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  registry_ = std::move(other.registry_);
  steps_ = std::move(other.steps_);
  order_ = std::move(other.order_);
  other.registry_ = std::make_unique<obs::MetricsRegistry>();
  other.steps_.clear();
  other.order_.clear();
}

StepTimer& StepTimer::operator=(StepTimer&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  registry_ = std::move(other.registry_);
  steps_ = std::move(other.steps_);
  order_ = std::move(other.order_);
  other.registry_ = std::make_unique<obs::MetricsRegistry>();
  other.steps_.clear();
  other.order_.clear();
  return *this;
}

void StepTimer::CopyFrom(const StepTimer& other) {
  std::scoped_lock lock(mu_, other.mu_);
  for (const std::string& name : other.order_) {
    const auto it = other.steps_.find(name);
    if (it == other.steps_.end()) continue;
    obs::Histogram* mine = registry_->GetHistogram(
        obs::SanitizeMetricName(name), &it->second->bounds());
    mine->MergeFrom(*it->second);
    steps_.emplace(name, mine);
    order_.push_back(name);
  }
}

obs::Histogram* StepTimer::HistogramFor(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = steps_.find(name);
  if (it != steps_.end()) return it->second;
  obs::Histogram* hist =
      registry_->GetHistogram(obs::SanitizeMetricName(name));
  steps_.emplace(name, hist);
  order_.push_back(name);
  return hist;
}

const obs::Histogram* StepTimer::FindHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = steps_.find(name);
  return it == steps_.end() ? nullptr : it->second;
}

void StepTimer::Add(const std::string& name, double seconds) {
  HistogramFor(name)->Record(seconds);
}

double StepTimer::TotalSeconds(const std::string& name) const {
  const obs::Histogram* hist = FindHistogram(name);
  return hist == nullptr ? 0.0 : hist->Sum();
}

int64_t StepTimer::Count(const std::string& name) const {
  const obs::Histogram* hist = FindHistogram(name);
  return hist == nullptr ? 0 : static_cast<int64_t>(hist->Count());
}

double StepTimer::MeanSeconds(const std::string& name) const {
  const obs::Histogram* hist = FindHistogram(name);
  return hist == nullptr ? 0.0 : hist->Mean();
}

std::vector<std::string> StepTimer::StepNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return order_;
}

void StepTimer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  registry_->Reset();
  steps_.clear();
  order_.clear();
}

}  // namespace lightmirm
