// Common macros used across the lightmirm codebase.
#pragma once

// Disallow copy construction and copy assignment.
#define LIGHTMIRM_DISALLOW_COPY(TypeName) \
  TypeName(const TypeName&) = delete;     \
  TypeName& operator=(const TypeName&) = delete

// Propagate a non-ok Status from an expression, RocksDB-style.
#define LIGHTMIRM_RETURN_NOT_OK(expr)                 \
  do {                                                \
    ::lightmirm::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                        \
  } while (false)

// Assign the value of a Result<T> expression to `lhs`, or propagate its error.
#define LIGHTMIRM_ASSIGN_OR_RETURN(lhs, expr)         \
  auto LIGHTMIRM_CONCAT_(_res_, __LINE__) = (expr);   \
  if (!LIGHTMIRM_CONCAT_(_res_, __LINE__).ok())       \
    return LIGHTMIRM_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(LIGHTMIRM_CONCAT_(_res_, __LINE__)).value()

#define LIGHTMIRM_CONCAT_IMPL_(a, b) a##b
#define LIGHTMIRM_CONCAT_(a, b) LIGHTMIRM_CONCAT_IMPL_(a, b)
