// Wall-clock timing utilities. StepTimer accumulates named step durations,
// which the training algorithms use to reproduce the per-step cost breakdown
// of Table III / Figure 7 of the paper.
#pragma once

#include <chrono>
#include <map>
#include <string>
#include <vector>

namespace lightmirm {

/// Simple monotonic stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates total duration and call count per named step.
class StepTimer {
 public:
  /// RAII scope that adds its lifetime to `name`.
  class Scope {
   public:
    Scope(StepTimer* timer, std::string name)
        : timer_(timer), name_(std::move(name)) {}
    ~Scope() {
      if (timer_ != nullptr) timer_->Add(name_, watch_.Seconds());
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    StepTimer* timer_;
    std::string name_;
    WallTimer watch_;
  };

  /// Adds `seconds` to the accumulator for `name`.
  void Add(const std::string& name, double seconds);

  /// Total accumulated seconds for `name` (0 if never recorded).
  double TotalSeconds(const std::string& name) const;

  /// Number of Add() calls for `name`.
  int64_t Count(const std::string& name) const;

  /// Mean seconds per call for `name` (0 if never recorded).
  double MeanSeconds(const std::string& name) const;

  /// All recorded step names in insertion order.
  const std::vector<std::string>& StepNames() const { return order_; }

  /// Clears all accumulators.
  void Reset();

 private:
  struct Entry {
    double total_seconds = 0.0;
    int64_t count = 0;
  };
  std::map<std::string, Entry> entries_;
  std::vector<std::string> order_;
};

}  // namespace lightmirm
