// Wall-clock timing utilities. StepTimer accumulates named step durations,
// which the training algorithms use to reproduce the per-step cost breakdown
// of Table III / Figure 7 of the paper.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lightmirm {

namespace obs {
class Histogram;
class MetricsRegistry;
}  // namespace obs

/// Simple monotonic stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates total duration and call count per named step.
///
/// Thread-safe: a thin adapter over a private obs::MetricsRegistry — each
/// step is a latency histogram there, so Add is an atomic record after a
/// one-time name resolution, and concurrent Adds from pooled regions are
/// race-free (the original std::map implementation corrupted itself the
/// moment a scope closed on a worker thread).
class StepTimer {
 public:
  StepTimer();
  ~StepTimer();
  StepTimer(const StepTimer& other);
  StepTimer& operator=(const StepTimer& other);
  StepTimer(StepTimer&& other) noexcept;
  StepTimer& operator=(StepTimer&& other) noexcept;

  /// RAII scope that adds its lifetime to `name`.
  class Scope {
   public:
    Scope(StepTimer* timer, std::string name)
        : timer_(timer), name_(std::move(name)) {}
    ~Scope() {
      if (timer_ != nullptr) timer_->Add(name_, watch_.Seconds());
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    StepTimer* timer_;
    std::string name_;
    WallTimer watch_;
  };

  /// Adds `seconds` to the accumulator for `name`.
  void Add(const std::string& name, double seconds);

  /// Total accumulated seconds for `name` (0 if never recorded).
  double TotalSeconds(const std::string& name) const;

  /// Number of Add() calls for `name`.
  int64_t Count(const std::string& name) const;

  /// Mean seconds per call for `name` (0 if never recorded).
  double MeanSeconds(const std::string& name) const;

  /// All recorded step names in insertion order.
  std::vector<std::string> StepNames() const;

  /// Clears all accumulators.
  void Reset();

  /// The backing registry (per-step latency histograms keyed by the
  /// sanitized step name); exposed for telemetry export.
  const obs::MetricsRegistry& registry() const { return *registry_; }

 private:
  obs::Histogram* HistogramFor(const std::string& name);
  const obs::Histogram* FindHistogram(const std::string& name) const;
  void CopyFrom(const StepTimer& other);

  mutable std::mutex mu_;
  std::unique_ptr<obs::MetricsRegistry> registry_;
  std::map<std::string, obs::Histogram*> steps_;  // display name -> histogram
  std::vector<std::string> order_;
};

}  // namespace lightmirm
