// Minimal leveled logging to stderr. Intended for library-internal progress
// and diagnostics; benches and examples print their results to stdout.
#pragma once

#include <sstream>
#include <string>

namespace lightmirm {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a log statement below the active level.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define LIGHTMIRM_LOG(level)                                            \
  if (::lightmirm::LogLevel::k##level < ::lightmirm::GetLogLevel()) {  \
  } else                                                                \
    ::lightmirm::internal::LogMessage(::lightmirm::LogLevel::k##level,  \
                                      __FILE__, __LINE__)               \
        .stream()

}  // namespace lightmirm
