#include "common/logging.h"

#include <atomic>
#include <cstring>
#include <iostream>

namespace lightmirm {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  (void)level_;
  std::cerr << stream_.str() << "\n";
}

}  // namespace internal
}  // namespace lightmirm
