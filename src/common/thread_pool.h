// Deterministic parallel execution. A fixed-size pool (no work stealing)
// runs index-sharded loops whose shard structure depends only on the
// problem size and grain — never on the thread count — so any computation
// that writes disjoint slots, or that merges per-shard partials in shard
// order, produces bit-identical results at 1, 2 or N threads.
//
// The process-wide default thread count starts at the hardware concurrency
// and is adjusted with SetDefaultThreads (the `threads=` CLI knob). With a
// default of 1 every loop below runs inline on the calling thread, in shard
// order, with zero synchronization.
//
// Idle workers spin briefly watching for the next batch before parking on
// the condition variable (skipped when the pool is wider than the
// hardware), so a serving loop dispatching thousands of small batches per
// second does not pay a futex wakeup per batch.
#pragma once

#include <cstddef>
#include <functional>

namespace lightmirm {

/// max(1, std::thread::hardware_concurrency()).
int HardwareThreads();

/// Current process-wide default thread count (>= 1).
int DefaultThreads();

/// Sets the process-wide default thread count; n <= 0 restores the
/// hardware concurrency. The global pool is resized lazily on next use.
void SetDefaultThreads(int n);

/// RAII override of the default thread count (used by trainers honoring
/// TrainerOptions::threads and by the bench thread sweeps).
class ScopedDefaultThreads {
 public:
  /// n <= 0 leaves the current default untouched.
  explicit ScopedDefaultThreads(int n) : prev_(DefaultThreads()) {
    if (n > 0) SetDefaultThreads(n);
  }
  ~ScopedDefaultThreads() { SetDefaultThreads(prev_); }
  ScopedDefaultThreads(const ScopedDefaultThreads&) = delete;
  ScopedDefaultThreads& operator=(const ScopedDefaultThreads&) = delete;

 private:
  int prev_;
};

/// Number of shards a range of `count` elements splits into at the given
/// grain: ceil(count / grain); 0 for an empty range. Grain 0 is treated as
/// 1. This is the deterministic contract every parallel caller relies on.
size_t NumShards(size_t count, size_t grain);

/// Calls fn(shard, shard_begin, shard_end) for every shard of [begin, end)
/// at the given grain. Shards may run concurrently in any order; with one
/// thread they run inline in increasing shard order. The first exception
/// thrown (lowest shard index) is rethrown after all shards finish.
void ParallelForShards(size_t begin, size_t end, size_t grain,
                       const std::function<void(size_t, size_t, size_t)>& fn);

/// Element-wise form: calls fn(i) for every i in [begin, end), batched into
/// shards of `grain` elements. Safe whenever iterations write disjoint
/// state.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t)>& fn);

/// A fixed-size thread pool executing one index batch at a time. Most code
/// should use ParallelFor/ParallelForShards (which share one global pool);
/// the class is public for tests and for callers needing a private pool.
class ThreadPool {
 public:
  /// Spawns num_threads - 1 workers; the calling thread participates in
  /// every batch. num_threads <= 1 spawns nothing and runs inline.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(t) for every t in [0, num_tasks) across the pool and blocks
  /// until all complete. Tasks are claimed from a shared counter (no work
  /// stealing, no per-thread queues). Rethrows the exception of the lowest
  /// failing task index. Calls from inside a pool task run inline (serial)
  /// rather than deadlocking.
  void Apply(size_t num_tasks, const std::function<void(size_t)>& fn);

 private:
  struct Impl;
  Impl* impl_;
  int num_threads_;
};

}  // namespace lightmirm
