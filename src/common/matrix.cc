#include "common/matrix.h"

#include <cmath>

namespace lightmirm {

Matrix::Matrix(size_t rows, size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  assert(data_.size() == rows_ * cols_);
}

void Matrix::MatVec(const std::vector<double>& x,
                    std::vector<double>* y) const {
  assert(x.size() == cols_);
  y->assign(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = Row(r);
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    (*y)[r] = acc;
  }
}

void Matrix::TransposeMatVec(const std::vector<double>& x,
                             std::vector<double>* y) const {
  assert(x.size() == rows_);
  y->assign(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = Row(r);
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (size_t c = 0; c < cols_; ++c) (*y)[c] += xr * row[c];
  }
}

Matrix Matrix::MatMul(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* a_row = Row(i);
    double* o_row = out.Row(i);
    for (size_t k = 0; k < cols_; ++k) {
      const double a = a_row[k];
      if (a == 0.0) continue;
      const double* b_row = other.Row(k);
      for (size_t j = 0; j < other.cols_; ++j) o_row[j] += a * b_row[j];
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out.At(c, r) = At(r, c);
  }
  return out;
}

void Axpy(double a, const std::vector<double>& x, std::vector<double>* y) {
  assert(x.size() == y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += a * x[i];
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm2(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

}  // namespace lightmirm
