// Small string helpers used by the CSV reader and report formatting.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace lightmirm {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Joins the pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Parses a double; errors on malformed or trailing garbage.
/// Locale-independent (std::from_chars): '.' is the decimal separator
/// under any LC_NUMERIC, so CSV and model files parse identically whether
/// the process runs under "C" or a comma-decimal locale like de_DE.
Result<double> ParseDouble(std::string_view s);

/// Parses a signed 64-bit integer. Locale-independent like ParseDouble.
Result<int64_t> ParseInt(std::string_view s);

/// Formats `v` exactly as printf's "%.17g" would in the "C" locale, under
/// any LC_NUMERIC (std::to_chars). The persistence formats (model files,
/// monitor checkpoints, forest serialization) write doubles through this
/// so a comma-decimal locale can never corrupt them.
std::string FormatG17(double v);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace lightmirm
