// Small string helpers used by the CSV reader and report formatting.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace lightmirm {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Joins the pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Parses a double; errors on malformed or trailing garbage.
Result<double> ParseDouble(std::string_view s);

/// Parses a signed 64-bit integer.
Result<int64_t> ParseInt(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace lightmirm
