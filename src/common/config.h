// Key=value configuration map. Benches and examples accept "key=value"
// command-line tokens so workload scale can be adjusted without recompiling,
// e.g. `bench_table1_main rows=200000 envs=31 epochs=40`.
#pragma once

#include <map>
#include <string>

#include "common/result.h"

namespace lightmirm {

/// An ordered map of string settings with typed getters.
class ConfigMap {
 public:
  ConfigMap() = default;

  /// Parses argv[1..argc) tokens of the form "key=value". Unknown shapes
  /// yield InvalidArgument.
  static Result<ConfigMap> FromArgs(int argc, char** argv);

  /// Sets or overwrites a key.
  void Set(const std::string& key, const std::string& value);

  bool Has(const std::string& key) const;

  /// Typed getters with defaults; malformed values fall back to the default
  /// and are reported via logging.
  int64_t GetInt(const std::string& key, int64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  std::string GetString(const std::string& key, const std::string& def) const;
  bool GetBool(const std::string& key, bool def) const;

  const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace lightmirm
