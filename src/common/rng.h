// Deterministic pseudo-random number generation. Every stochastic component
// in lightmirm takes an explicit seed so that experiments are reproducible
// bit-for-bit across runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lightmirm {

/// xoshiro256** PRNG seeded via splitmix64. Fast, high quality, and fully
/// deterministic given the seed. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator. The same seed always yields the same stream.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  uint64_t operator()() { return Next(); }
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller (cached spare).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli draw with probability p of returning true.
  bool Bernoulli(double p);

  /// Draws an index in [0, weights.size()) proportionally to `weights`.
  /// Negative weights are treated as zero. If all weights are zero the
  /// draw is uniform.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `indices` in place.
  void Shuffle(std::vector<size_t>* indices);

  /// Derives an independent child generator without advancing this one;
  /// stream `i` is stable across runs for a fixed parent seed. Safe to call
  /// concurrently from parallel shards (read-only on the parent), which is
  /// how the parallel bootstrap/generator obtain per-shard streams.
  Rng Fork(uint64_t stream) const;

 private:
  uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace lightmirm
