#include "common/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "obs/metrics.h"

namespace lightmirm {
namespace {

// Set while a thread is executing a pool task; nested parallel calls run
// inline instead of re-entering the pool.
thread_local bool tls_in_pool_task = false;

// Spin budget an idle worker burns watching for the next batch before
// falling back to the condition variable. A serving replica scoring
// back-to-back batches dispatches thousands of pool batches per second;
// waking a sleeping worker through futex costs ~5-20us each time, which at
// sub-millisecond batch latencies eats the parallel speedup. The budget is
// small enough (~a few microseconds) that a genuinely idle pool still
// parks quickly.
constexpr int kIdleSpinRounds = 4096;

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

std::atomic<int> g_default_threads{0};  // 0 = not yet initialized

// Pool metrics in the global registry (resolved once; the handles stay
// valid forever). `pool.queue_depth` gauges the size of the batch being
// drained; the counters/histograms cover only pooled batches — the inline
// serial path stays untouched.
struct PoolMetrics {
  obs::Counter* batches;
  obs::Counter* tasks;
  obs::Gauge* queue_depth;
  obs::Histogram* batch_seconds;
  obs::Histogram* task_seconds;
};

const PoolMetrics& GetPoolMetrics() {
  static const PoolMetrics metrics = [] {
    obs::MetricsRegistry* registry = obs::MetricsRegistry::Global();
    return PoolMetrics{registry->GetCounter("pool.batches"),
                       registry->GetCounter("pool.tasks"),
                       registry->GetGauge("pool.queue_depth"),
                       registry->GetHistogram("pool.batch.seconds"),
                       registry->GetHistogram("pool.task.seconds")};
  }();
  return metrics;
}

}  // namespace

int HardwareThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

int DefaultThreads() {
  int n = g_default_threads.load(std::memory_order_relaxed);
  return n > 0 ? n : HardwareThreads();
}

void SetDefaultThreads(int n) {
  g_default_threads.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

size_t NumShards(size_t count, size_t grain) {
  if (count == 0) return 0;
  if (grain == 0) grain = 1;
  return (count + grain - 1) / grain;
}

struct ThreadPool::Impl {
  // One batch runs at a time; Apply holds apply_mu for its whole duration.
  std::mutex apply_mu;

  std::mutex mu;
  std::condition_variable work_cv;
  std::condition_variable done_cv;

  // Batch descriptor. `fn` and `limit` are published by the release store
  // of `next = 0`; a claim (acquire RMW on `next`) that yields t < limit
  // therefore sees them. Claims at t >= limit never touch `fn`, and every
  // claim below the limit bumps `completed` exactly once, so when
  // `completed == limit` no thread can still be inside `fn`.
  const std::function<void(size_t)>* fn = nullptr;
  std::atomic<size_t> limit{0};
  std::atomic<size_t> next{std::numeric_limits<size_t>::max()};
  size_t completed = 0;  // guarded by mu
  // Atomic so idle workers can watch for the next batch (or shutdown)
  // without taking mu: `generation` is bumped (release) only after the
  // batch descriptor and the `next = 0` release store are in place, so a
  // spinner's acquire load of a new generation sees the whole batch.
  std::atomic<uint64_t> generation{0};
  std::atomic<bool> stop{false};
  // Spin-then-sleep only helps when every worker can own a core; on an
  // oversubscribed pool (more threads than the machine has) spinning
  // workers would steal cycles from the ones holding work.
  bool spin_wakeup = false;
  std::exception_ptr error;
  size_t error_task = std::numeric_limits<size_t>::max();

  std::vector<std::thread> workers;

  // Claims and runs tasks of the current batch until the counter runs dry.
  void RunTasks() {
    const bool telemetry = obs::TelemetryEnabled();
    for (;;) {
      const size_t t = next.fetch_add(1, std::memory_order_acquire);
      if (t >= limit.load(std::memory_order_acquire)) return;
      std::exception_ptr err;
      tls_in_pool_task = true;
      WallTimer task_watch;
      try {
        (*fn)(t);
      } catch (...) {
        err = std::current_exception();
      }
      if (telemetry) {
        const PoolMetrics& metrics = GetPoolMetrics();
        metrics.tasks->Increment();
        metrics.task_seconds->Record(task_watch.Seconds());
      }
      tls_in_pool_task = false;
      std::lock_guard<std::mutex> lock(mu);
      if (err && t < error_task) {
        error_task = t;
        error = err;
      }
      if (++completed == limit.load(std::memory_order_relaxed)) {
        done_cv.notify_all();
      }
    }
  }

  void WorkerLoop() {
    uint64_t seen_generation = 0;
    for (;;) {
      uint64_t g = generation.load(std::memory_order_acquire);
      if (spin_wakeup) {
        for (int i = 0;
             i < kIdleSpinRounds && g == seen_generation &&
             !stop.load(std::memory_order_relaxed);
             ++i) {
          CpuRelax();
          g = generation.load(std::memory_order_acquire);
        }
      }
      if (g == seen_generation && !stop.load(std::memory_order_relaxed)) {
        std::unique_lock<std::mutex> lock(mu);
        work_cv.wait(lock, [&] {
          return stop.load(std::memory_order_relaxed) ||
                 generation.load(std::memory_order_relaxed) !=
                     seen_generation;
        });
        g = generation.load(std::memory_order_relaxed);
      }
      if (stop.load(std::memory_order_relaxed)) return;
      seen_generation = g;
      RunTasks();
    }
  }
};

ThreadPool::ThreadPool(int num_threads)
    : impl_(new Impl), num_threads_(num_threads < 1 ? 1 : num_threads) {
  impl_->spin_wakeup = num_threads_ <= HardwareThreads();
  impl_->workers.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    impl_->workers.emplace_back([this] { impl_->WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop.store(true, std::memory_order_relaxed);
  }
  impl_->work_cv.notify_all();
  for (std::thread& w : impl_->workers) w.join();
  delete impl_;
}

void ThreadPool::Apply(size_t num_tasks,
                       const std::function<void(size_t)>& fn) {
  if (num_tasks == 0) return;
  if (num_threads_ <= 1 || num_tasks == 1 || tls_in_pool_task) {
    // Inline serial execution in task order (also the nested-call path).
    for (size_t t = 0; t < num_tasks; ++t) fn(t);
    return;
  }
  std::lock_guard<std::mutex> apply_lock(impl_->apply_mu);
  const bool telemetry = obs::TelemetryEnabled();
  WallTimer batch_watch;
  if (telemetry) {
    const PoolMetrics& metrics = GetPoolMetrics();
    metrics.batches->Increment();
    metrics.queue_depth->Set(static_cast<double>(num_tasks));
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->fn = &fn;
    impl_->limit.store(num_tasks, std::memory_order_relaxed);
    impl_->completed = 0;
    impl_->error = nullptr;
    impl_->error_task = std::numeric_limits<size_t>::max();
    impl_->next.store(0, std::memory_order_release);
    // Bumped last (release): a spinning worker that observes the new
    // generation without touching mu still sees the whole batch above.
    impl_->generation.fetch_add(1, std::memory_order_release);
  }
  impl_->work_cv.notify_all();
  impl_->RunTasks();  // the caller participates
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->done_cv.wait(lock, [&] { return impl_->completed == num_tasks; });
    error = impl_->error;
  }
  if (telemetry) {
    const PoolMetrics& metrics = GetPoolMetrics();
    metrics.queue_depth->Set(0.0);
    metrics.batch_seconds->Record(batch_watch.Seconds());
  }
  if (error) std::rethrow_exception(error);
}

namespace {

// The shared pool behind ParallelFor/ParallelForShards. Rebuilt when the
// default thread count changes; intentionally leaked at exit so late
// worker teardown can never race static destruction. Resizing while
// another thread is inside a parallel loop is not supported (the CLI knob
// is set once at startup or between phases).
std::mutex g_pool_mu;
ThreadPool* g_pool = nullptr;

ThreadPool* GlobalPool(int threads) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool == nullptr || g_pool->num_threads() != threads) {
    delete g_pool;
    g_pool = nullptr;  // stay null while the new pool constructs
    g_pool = new ThreadPool(threads);
  }
  return g_pool;
}

}  // namespace

void ParallelForShards(size_t begin, size_t end, size_t grain,
                       const std::function<void(size_t, size_t, size_t)>& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const size_t shards = NumShards(end - begin, grain);
  auto run_shard = [&](size_t s) {
    const size_t b = begin + s * grain;
    const size_t e = b + grain < end ? b + grain : end;
    fn(s, b, e);
  };
  const int threads = DefaultThreads();
  if (shards == 1 || threads <= 1 || tls_in_pool_task) {
    for (size_t s = 0; s < shards; ++s) run_shard(s);
    return;
  }
  GlobalPool(threads)->Apply(shards, run_shard);
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t)>& fn) {
  ParallelForShards(begin, end, grain, [&fn](size_t, size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) fn(i);
  });
}

}  // namespace lightmirm
