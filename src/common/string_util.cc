#include "common/string_util.h"

#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <system_error>

namespace lightmirm {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  const char* ws = " \t\r\n";
  const size_t b = s.find_first_not_of(ws);
  if (b == std::string_view::npos) return {};
  const size_t e = s.find_last_not_of(ws);
  return s.substr(b, e - b + 1);
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

namespace {

// std::from_chars never accepts a leading '+', which the strtod/strtoll
// family (and therefore old data files) did. Strip exactly one, and reject
// a second sign after it so "+-3" stays malformed.
bool StripLeadingPlus(std::string_view* s) {
  if (s->empty() || s->front() != '+') return true;
  s->remove_prefix(1);
  return !s->empty() && s->front() != '+' && s->front() != '-';
}

}  // namespace

Result<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty numeric field");
  // std::from_chars is locale-independent by definition: "1.5" parses as
  // one-and-a-half under any LC_NUMERIC, where strtod under a
  // comma-decimal locale (de_DE) would stop at the '.' and report the
  // field malformed (or silently truncate in call sites less careful than
  // this one).
  std::string_view body = s;
  if (!StripLeadingPlus(&body)) {
    return Status::InvalidArgument("malformed number: " + std::string(s));
  }
  double v = 0.0;
  const auto [end, ec] =
      std::from_chars(body.data(), body.data() + body.size(), v);
  if (ec == std::errc::result_out_of_range) {
    return Status::OutOfRange("numeric value out of range: " +
                              std::string(s));
  }
  if (ec != std::errc() || end != body.data() + body.size()) {
    return Status::InvalidArgument("malformed number: " + std::string(s));
  }
  return v;
}

Result<int64_t> ParseInt(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty integer field");
  std::string_view body = s;
  if (!StripLeadingPlus(&body)) {
    return Status::InvalidArgument("malformed integer: " + std::string(s));
  }
  int64_t v = 0;
  const auto [end, ec] =
      std::from_chars(body.data(), body.data() + body.size(), v, 10);
  if (ec == std::errc::result_out_of_range) {
    return Status::OutOfRange("integer value out of range: " +
                              std::string(s));
  }
  if (ec != std::errc() || end != body.data() + body.size()) {
    return Status::InvalidArgument("malformed integer: " + std::string(s));
  }
  return v;
}

std::string FormatG17(double v) {
  // std::to_chars with an explicit precision formats "in the style of
  // printf %.17g in the C locale" — the exact bytes the %.17g persistence
  // sites always meant to write, but immune to LC_NUMERIC: a process
  // running under a comma-decimal locale (de_DE) would otherwise save
  // model files and monitor checkpoints with ',' decimal separators that
  // no parser (locale-independent or not) reads back as one number.
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v,
                                       std::chars_format::general, 17);
  if (ec != std::errc()) return "0";  // cannot happen at this buffer size
  return std::string(buf, end);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace lightmirm
