#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>

namespace lightmirm {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  const char* ws = " \t\r\n";
  const size_t b = s.find_first_not_of(ws);
  if (b == std::string_view::npos) return {};
  const size_t e = s.find_last_not_of(ws);
  return s.substr(b, e - b + 1);
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

Result<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty numeric field");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("numeric value out of range: " + buf);
  }
  if (end == buf.c_str() || *end != '\0') {
    return Status::InvalidArgument("malformed number: " + buf);
  }
  return v;
}

Result<int64_t> ParseInt(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty integer field");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer value out of range: " + buf);
  }
  if (end == buf.c_str() || *end != '\0') {
    return Status::InvalidArgument("malformed integer: " + buf);
  }
  return static_cast<int64_t>(v);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace lightmirm
