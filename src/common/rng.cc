#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace lightmirm {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  uint64_t r;
  do {
    r = Next();
  } while (r < threshold);
  return r % n;
}

double Rng::Normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1, u2;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  u2 = Uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return UniformInt(weights.size());
  double u = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (u < w) return i;
    u -= w;
  }
  return weights.size() - 1;
}

void Rng::Shuffle(std::vector<size_t>* indices) {
  if (indices->size() < 2) return;
  for (size_t i = indices->size() - 1; i > 0; --i) {
    const size_t j = UniformInt(i + 1);
    std::swap((*indices)[i], (*indices)[j]);
  }
}

Rng Rng::Fork(uint64_t stream) const {
  // Mix the parent state with the stream id through splitmix64.
  uint64_t mix = s_[0] ^ (stream * 0xD1B54A32D192ED03ULL + 0x2545F4914F6CDD1DULL);
  return Rng(SplitMix64(&mix));
}

}  // namespace lightmirm
