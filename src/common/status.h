// Status: lightweight error propagation without exceptions, in the style of
// RocksDB/Arrow. Public lightmirm APIs that can fail return Status or
// Result<T> (see result.h) rather than throwing.
#pragma once

#include <string>
#include <string_view>

namespace lightmirm {

/// Error categories used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kIoError = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kResourceExhausted = 8,
};

/// Returns a human-readable name for a status code ("InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy in the success case (no
/// allocation); errors carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, Arrow-style.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  /// True iff the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace lightmirm
