#include "common/config.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace lightmirm {

Result<ConfigMap> ConfigMap::FromArgs(int argc, char** argv) {
  ConfigMap cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string tok = argv[i];
    const size_t eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("expected key=value, got: " + tok);
    }
    cfg.Set(tok.substr(0, eq), tok.substr(eq + 1));
  }
  return cfg;
}

void ConfigMap::Set(const std::string& key, const std::string& value) {
  entries_[key] = value;
}

bool ConfigMap::Has(const std::string& key) const {
  return entries_.count(key) > 0;
}

int64_t ConfigMap::GetInt(const std::string& key, int64_t def) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return def;
  auto parsed = ParseInt(it->second);
  if (!parsed.ok()) {
    LIGHTMIRM_LOG(Warning) << "config key '" << key << "': "
                           << parsed.status().ToString() << "; using default";
    return def;
  }
  return *parsed;
}

double ConfigMap::GetDouble(const std::string& key, double def) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return def;
  auto parsed = ParseDouble(it->second);
  if (!parsed.ok()) {
    LIGHTMIRM_LOG(Warning) << "config key '" << key << "': "
                           << parsed.status().ToString() << "; using default";
    return def;
  }
  return *parsed;
}

std::string ConfigMap::GetString(const std::string& key,
                                 const std::string& def) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? def : it->second;
}

bool ConfigMap::GetBool(const std::string& key, bool def) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return def;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  LIGHTMIRM_LOG(Warning) << "config key '" << key << "': unrecognized bool '"
                         << v << "'; using default";
  return def;
}

}  // namespace lightmirm
