// Feature importance for the booster — the explainability/auditability leg
// of the paper's trustworthiness requirements (§II-B, FEAS): which raw
// features drive the automatic feature extraction.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "data/schema.h"
#include "gbdt/booster.h"

namespace lightmirm::gbdt {

/// Importance of one raw feature.
struct FeatureImportance {
  int feature = -1;
  std::string name;
  int64_t split_count = 0;  ///< number of splits using the feature
  double total_gain = 0.0;  ///< unavailable post-hoc; proxied, see below
};

/// Split-count importance per feature, sorted descending. Since trained
/// trees do not retain per-split gains, total_gain here is a structural
/// proxy: the number of training paths through the split weighted by depth
/// (shallower splits matter more). Names are taken from `schema` when it
/// has enough fields.
std::vector<FeatureImportance> SplitImportance(const Booster& booster,
                                               const data::Schema& schema);

/// Groups importances by prefix buckets — for the synthetic loan schema
/// this reports how much of the booster's structure keys on causal bureau
/// numerics vs spurious "bureau_attr_*" vs pure-noise "ext_attr_*" columns.
struct ImportanceBucket {
  std::string prefix;
  int64_t split_count = 0;
  double share = 0.0;
};
std::vector<ImportanceBucket> BucketImportance(
    const std::vector<FeatureImportance>& importances,
    const std::vector<std::string>& prefixes);

/// Renders an aligned text table of the top `top_n` features.
std::string FormatImportanceTable(
    const std::vector<FeatureImportance>& importances, size_t top_n = 20);

}  // namespace lightmirm::gbdt
