#include "gbdt/importance.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace lightmirm::gbdt {
namespace {

// Depth of each node within its tree (root = 0).
std::vector<int> NodeDepths(const Tree& tree) {
  std::vector<int> depth(tree.num_nodes(), 0);
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    const TreeNode& n = tree.nodes()[i];
    if (n.is_leaf) continue;
    depth[static_cast<size_t>(n.left)] = depth[i] + 1;
    depth[static_cast<size_t>(n.right)] = depth[i] + 1;
  }
  return depth;
}

}  // namespace

std::vector<FeatureImportance> SplitImportance(const Booster& booster,
                                               const data::Schema& schema) {
  int max_feature = -1;
  for (const Tree& tree : booster.trees()) {
    for (const TreeNode& n : tree.nodes()) {
      if (!n.is_leaf) max_feature = std::max(max_feature, n.feature);
    }
  }
  std::vector<FeatureImportance> importances(
      static_cast<size_t>(max_feature + 1));
  for (size_t f = 0; f < importances.size(); ++f) {
    importances[f].feature = static_cast<int>(f);
    importances[f].name = f < schema.num_features()
                              ? schema.field(f).name
                              : StrFormat("feature_%zu", f);
  }
  for (const Tree& tree : booster.trees()) {
    const std::vector<int> depth = NodeDepths(tree);
    for (size_t i = 0; i < tree.num_nodes(); ++i) {
      const TreeNode& n = tree.nodes()[i];
      if (n.is_leaf) continue;
      FeatureImportance& imp =
          importances[static_cast<size_t>(n.feature)];
      imp.split_count += 1;
      imp.total_gain += std::pow(0.5, depth[i]);  // shallower = heavier
    }
  }
  std::sort(importances.begin(), importances.end(),
            [](const FeatureImportance& a, const FeatureImportance& b) {
              if (a.total_gain != b.total_gain) {
                return a.total_gain > b.total_gain;
              }
              return a.feature < b.feature;
            });
  return importances;
}

std::vector<ImportanceBucket> BucketImportance(
    const std::vector<FeatureImportance>& importances,
    const std::vector<std::string>& prefixes) {
  std::vector<ImportanceBucket> buckets;
  for (const std::string& prefix : prefixes) {
    buckets.push_back(ImportanceBucket{prefix, 0, 0.0});
  }
  buckets.push_back(ImportanceBucket{"(other)", 0, 0.0});
  int64_t total = 0;
  for (const FeatureImportance& imp : importances) {
    total += imp.split_count;
    bool matched = false;
    for (size_t b = 0; b < prefixes.size(); ++b) {
      if (imp.name.rfind(prefixes[b], 0) == 0) {
        buckets[b].split_count += imp.split_count;
        matched = true;
        break;
      }
    }
    if (!matched) buckets.back().split_count += imp.split_count;
  }
  if (total > 0) {
    for (ImportanceBucket& b : buckets) {
      b.share = static_cast<double>(b.split_count) /
                static_cast<double>(total);
    }
  }
  return buckets;
}

std::string FormatImportanceTable(
    const std::vector<FeatureImportance>& importances, size_t top_n) {
  std::string out = StrFormat("%-28s %8s %12s\n", "feature", "splits",
                              "depth-weight");
  for (size_t i = 0; i < std::min(top_n, importances.size()); ++i) {
    const FeatureImportance& imp = importances[i];
    if (imp.split_count == 0) break;
    out += StrFormat("%-28s %8lld %12.3f\n", imp.name.c_str(),
                     static_cast<long long>(imp.split_count),
                     imp.total_gain);
  }
  return out;
}

}  // namespace lightmirm::gbdt
