#include "gbdt/leaf_encoder.h"

#include "common/string_util.h"
#include "common/thread_pool.h"

namespace lightmirm::gbdt {

LeafEncoder::LeafEncoder(const Booster* booster) : booster_(booster) {
  offsets_.reserve(booster_->trees().size());
  size_t offset = 0;
  for (const Tree& tree : booster_->trees()) {
    offsets_.push_back(offset);
    offset += static_cast<size_t>(tree.num_leaves());
  }
  num_columns_ = offset;
}

Result<linear::FeatureMatrix> LeafEncoder::Encode(const Matrix& raw) const {
  const size_t need = booster_->MinFeatureCount();
  if (raw.cols() < need) {
    return Status::InvalidArgument(
        StrFormat("matrix has %zu columns but the booster reads feature %zu",
                  raw.cols(), need - 1));
  }
  std::vector<std::vector<uint32_t>> rows(raw.rows());
  const auto& trees = booster_->trees();
  // Row-parallel leaf encoding: each row writes only its own slot.
  ParallelFor(0, raw.rows(), 1024, [&](size_t r) {
    rows[r].reserve(trees.size());
    const double* raw_row = raw.Row(r);
    for (size_t t = 0; t < trees.size(); ++t) {
      const int leaf = trees[t].PredictLeaf(raw_row);
      rows[r].push_back(static_cast<uint32_t>(ColumnOf(t, leaf)));
    }
  });
  return linear::FeatureMatrix::FromSparseBinary(num_columns_,
                                                 std::move(rows));
}

}  // namespace lightmirm::gbdt
