// Gradient/hessian histograms and best-split search for one tree node.
#pragma once

#include <cstdint>
#include <vector>

#include "gbdt/bin_mapper.h"

namespace lightmirm::gbdt {

/// Accumulated first/second-order statistics of one bin.
struct BinStats {
  double grad = 0.0;
  double hess = 0.0;
  double count = 0.0;
};

/// Histogram over all features of one node: feature-major, bin-minor.
class NodeHistogram {
 public:
  NodeHistogram() = default;
  NodeHistogram(size_t num_features, int max_bins);

  /// Accumulates the rows of `rows` into the histogram.
  void Build(const BinnedMatrix& binned, const std::vector<size_t>& rows,
             const std::vector<double>& grads,
             const std::vector<double>& hessians);

  /// this = parent - other (the LightGBM histogram-subtraction trick: the
  /// larger child's histogram is derived from the parent's and the smaller
  /// sibling's).
  void SubtractFrom(const NodeHistogram& parent, const NodeHistogram& other);

  const BinStats& At(size_t feature, int bin) const {
    return stats_[feature * static_cast<size_t>(max_bins_) +
                  static_cast<size_t>(bin)];
  }

  size_t num_features() const { return num_features_; }
  int max_bins() const { return max_bins_; }

 private:
  size_t num_features_ = 0;
  int max_bins_ = 0;
  std::vector<BinStats> stats_;
};

/// A candidate split.
struct SplitInfo {
  bool valid = false;
  int feature = -1;
  int bin_threshold = -1;  ///< go left iff bin <= bin_threshold
  double gain = 0.0;
  double left_grad = 0.0, left_hess = 0.0, left_count = 0.0;
  double right_grad = 0.0, right_hess = 0.0, right_count = 0.0;
};

/// Parameters of the split search.
struct SplitOptions {
  double lambda_l2 = 1.0;
  double min_child_weight = 1e-3;  ///< min hessian sum per child
  double min_data_in_leaf = 20.0;
  double min_gain = 1e-6;
  /// Per-feature enable mask (empty = all enabled); used for feature
  /// subsampling.
  std::vector<uint8_t> feature_mask;
};

/// Leaf objective value -G/(H+lambda) scaled by nothing; helper shared with
/// the tree learner.
double LeafOutput(double grad_sum, double hess_sum, double lambda_l2);

/// Gain of keeping a node whole: G^2 / (H + lambda).
double NodeScore(double grad_sum, double hess_sum, double lambda_l2);

/// Scans all (feature, bin) cut points and returns the best split (valid =
/// false if nothing passes the constraints).
SplitInfo FindBestSplit(const NodeHistogram& hist,
                        const std::vector<int>& feature_num_bins,
                        double node_grad, double node_hess,
                        double node_count, const SplitOptions& options);

}  // namespace lightmirm::gbdt
