// Gradient boosting with binary logistic loss — the from-scratch LightGBM
// stand-in used by the feature-extraction module (§III-C of the paper).
#pragma once

#include <vector>

#include "common/matrix.h"
#include "common/result.h"
#include "gbdt/tree.h"

namespace lightmirm::gbdt {

/// Booster configuration.
struct BoosterOptions {
  int num_trees = 60;
  int max_bins = 64;
  TreeLearnerOptions tree;
  /// Row subsample fraction per tree (1.0 = none).
  double bagging_fraction = 1.0;
  uint64_t seed = 123;
};

/// A trained gradient-boosted tree ensemble for binary classification.
class Booster {
 public:
  Booster() = default;

  /// Trains on raw features and 0/1 labels by minimizing logistic loss.
  static Result<Booster> Train(const Matrix& features,
                               const std::vector<int>& labels,
                               const BoosterOptions& options);

  /// Additive score (log-odds) for one raw feature row.
  double PredictLogit(const double* row) const;

  /// Default probability for one raw feature row.
  double PredictProb(const double* row) const;

  /// Probabilities for every row of a raw matrix.
  std::vector<double> PredictProbs(const Matrix& features) const;

  /// Per-tree leaf ordinals for one raw row (length = num trees). This is
  /// the input of the leaf encoder.
  void PredictLeaves(const double* row, std::vector<int>* leaves) const;

  const std::vector<Tree>& trees() const { return trees_; }
  double base_score() const { return base_score_; }

  /// Sum over trees of their leaf counts — the width of the multi-hot
  /// encoding.
  int TotalLeaves() const;

  /// Minimum raw-row width prediction reads: max split feature id + 1.
  /// Narrower matrices must be rejected before traversal (the trees index
  /// rows unchecked).
  size_t MinFeatureCount() const;

  /// Mean training logloss after each boosting iteration.
  const std::vector<double>& train_loss_history() const {
    return train_loss_history_;
  }

  /// Constructs directly from parts (used by deserialization).
  Booster(double base_score, std::vector<Tree> trees);

 private:
  double base_score_ = 0.0;
  std::vector<Tree> trees_;
  std::vector<double> train_loss_history_;
};

}  // namespace lightmirm::gbdt
