#include "gbdt/tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <memory>

#include "common/string_util.h"

namespace lightmirm::gbdt {

float QuantizeThreshold(double threshold) {
  if (std::isnan(threshold)) {
    return std::numeric_limits<float>::quiet_NaN();
  }
  // Round to nearest, then step down while the float image still sits
  // strictly above the double threshold (one step suffices: nearest is at
  // most half a float ULP away).
  float f = static_cast<float>(threshold);
  if (static_cast<double>(f) > threshold) {
    f = std::nextafterf(f, -std::numeric_limits<float>::infinity());
  }
  return f;
}

Tree::Tree(std::vector<TreeNode> nodes) : nodes_(std::move(nodes)) {
  for (const TreeNode& n : nodes_) {
    if (n.is_leaf) {
      ++num_leaves_;
    } else {
      max_feature_index_ = std::max(max_feature_index_, n.feature);
    }
  }
}

double Tree::Predict(const double* row) const {
  if (nodes_.empty()) return 0.0;
  int idx = 0;
  while (!nodes_[idx].is_leaf) {
    const TreeNode& n = nodes_[idx];
    idx = row[n.feature] <= n.threshold ? n.left : n.right;
  }
  return nodes_[idx].leaf_value;
}

int Tree::PredictLeaf(const double* row) const {
  if (nodes_.empty()) return 0;
  int idx = 0;
  while (!nodes_[idx].is_leaf) {
    const TreeNode& n = nodes_[idx];
    idx = row[n.feature] <= n.threshold ? n.left : n.right;
  }
  return nodes_[idx].leaf_ordinal;
}

namespace {

// Bookkeeping for one open (not yet split or finalized) leaf.
struct OpenLeaf {
  int node = -1;
  std::vector<size_t> rows;
  double grad_sum = 0.0;
  double hess_sum = 0.0;
  std::unique_ptr<NodeHistogram> hist;
  SplitInfo best;
};

}  // namespace

Result<Tree> GrowTree(const BinnedMatrix& binned,
                      const std::vector<size_t>& rows,
                      const std::vector<double>& grads,
                      const std::vector<double>& hessians,
                      const TreeLearnerOptions& options, Rng* rng) {
  if (options.max_leaves < 2) {
    return Status::InvalidArgument("max_leaves must be >= 2");
  }
  if (rows.empty()) {
    return Status::InvalidArgument("cannot grow a tree on zero rows");
  }
  const size_t num_features = binned.num_features();
  const int max_bins = binned.MaxBinCount();
  std::vector<int> feature_num_bins(num_features);
  for (size_t f = 0; f < num_features; ++f) {
    feature_num_bins[f] = binned.mapper(f).num_bins();
  }

  SplitOptions split_options = options.split;
  if (options.feature_fraction < 1.0) {
    split_options.feature_mask.assign(num_features, 0);
    const size_t keep = std::max<size_t>(
        1, static_cast<size_t>(options.feature_fraction *
                               static_cast<double>(num_features)));
    std::vector<size_t> order(num_features);
    for (size_t f = 0; f < num_features; ++f) order[f] = f;
    rng->Shuffle(&order);
    for (size_t i = 0; i < keep; ++i) split_options.feature_mask[order[i]] = 1;
  }

  std::vector<TreeNode> nodes(1);  // root, provisionally a leaf
  std::vector<OpenLeaf> open;

  {
    OpenLeaf root;
    root.node = 0;
    root.rows = rows;
    for (size_t r : rows) {
      root.grad_sum += grads[r];
      root.hess_sum += hessians[r];
    }
    root.hist = std::make_unique<NodeHistogram>(num_features, max_bins);
    root.hist->Build(binned, root.rows, grads, hessians);
    root.best = FindBestSplit(*root.hist, feature_num_bins, root.grad_sum,
                              root.hess_sum,
                              static_cast<double>(root.rows.size()),
                              split_options);
    open.push_back(std::move(root));
  }

  int num_leaves = 1;
  while (num_leaves < options.max_leaves) {
    // Pick the open leaf with the best gain.
    int best_idx = -1;
    double best_gain = 0.0;
    for (size_t i = 0; i < open.size(); ++i) {
      if (open[i].best.valid && open[i].best.gain > best_gain) {
        best_gain = open[i].best.gain;
        best_idx = static_cast<int>(i);
      }
    }
    if (best_idx < 0) break;

    OpenLeaf leaf = std::move(open[static_cast<size_t>(best_idx)]);
    open.erase(open.begin() + best_idx);
    const SplitInfo& split = leaf.best;

    // Materialize the split in the node array. The children are appended
    // after the parent is written: emplace_back may reallocate `nodes`, so
    // no reference into the vector survives past it.
    const int left_index = static_cast<int>(nodes.size());
    const int right_index = left_index + 1;
    {
      TreeNode& parent = nodes[static_cast<size_t>(leaf.node)];
      parent.is_leaf = false;
      parent.feature = split.feature;
      parent.threshold =
          binned.mapper(static_cast<size_t>(split.feature))
              .UpperBound(split.bin_threshold);
      parent.left = left_index;
      parent.right = right_index;
    }
    nodes.emplace_back();
    nodes.emplace_back();

    // Partition rows by bin.
    const std::vector<uint16_t>& bins =
        binned.FeatureBins(static_cast<size_t>(split.feature));
    OpenLeaf left, right;
    left.node = left_index;
    right.node = right_index;
    for (size_t r : leaf.rows) {
      if (bins[r] <= static_cast<uint16_t>(split.bin_threshold)) {
        left.rows.push_back(r);
      } else {
        right.rows.push_back(r);
      }
    }
    left.grad_sum = split.left_grad;
    left.hess_sum = split.left_hess;
    right.grad_sum = split.right_grad;
    right.hess_sum = split.right_hess;

    // Histogram subtraction: build the smaller child, derive the larger.
    OpenLeaf* small = left.rows.size() <= right.rows.size() ? &left : &right;
    OpenLeaf* large = small == &left ? &right : &left;
    small->hist = std::make_unique<NodeHistogram>(num_features, max_bins);
    small->hist->Build(binned, small->rows, grads, hessians);
    large->hist = std::make_unique<NodeHistogram>(num_features, max_bins);
    large->hist->SubtractFrom(*leaf.hist, *small->hist);
    leaf.hist.reset();

    for (OpenLeaf* child : {&left, &right}) {
      child->best = FindBestSplit(
          *child->hist, feature_num_bins, child->grad_sum, child->hess_sum,
          static_cast<double>(child->rows.size()), split_options);
    }
    open.push_back(std::move(left));
    open.push_back(std::move(right));
    ++num_leaves;
  }

  // Finalize remaining open leaves: ordinals in node order for stable
  // encoding, shrunken Newton outputs.
  std::sort(open.begin(), open.end(),
            [](const OpenLeaf& a, const OpenLeaf& b) {
              return a.node < b.node;
            });
  int ordinal = 0;
  for (const OpenLeaf& leaf : open) {
    TreeNode& n = nodes[static_cast<size_t>(leaf.node)];
    n.is_leaf = true;
    n.leaf_ordinal = ordinal++;
    n.leaf_value =
        options.shrinkage *
        LeafOutput(leaf.grad_sum, leaf.hess_sum, split_options.lambda_l2);
  }
  return Tree(std::move(nodes));
}

}  // namespace lightmirm::gbdt
