// Feature binning for histogram-based GBDT training, after LightGBM: each
// numeric feature is discretized into at most `max_bins` quantile bins; the
// tree learner then scans bin histograms instead of sorted raw values.
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/result.h"

namespace lightmirm::gbdt {

/// Bin mapping for one feature: bin b covers
/// (upper_bounds[b-1], upper_bounds[b]], with bin 0 starting at -inf and
/// the last bin ending at +inf.
class BinMapper {
 public:
  BinMapper() = default;

  /// Builds quantile bins from the observed values. Duplicated quantiles
  /// are collapsed, so features with few distinct values get few bins.
  static BinMapper Fit(const std::vector<double>& values, int max_bins);

  /// Number of bins (>= 1).
  int num_bins() const { return static_cast<int>(upper_bounds_.size()) + 1; }

  /// Bin index of a raw value, in [0, num_bins()).
  uint16_t BinOf(double value) const;

  /// Raw-value upper boundary of bin b (for turning a bin split back into
  /// a numeric threshold). b must be < num_bins() - 1.
  double UpperBound(int b) const { return upper_bounds_[b]; }

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }

 private:
  std::vector<double> upper_bounds_;
};

/// Bin mappers and binned (feature-major) storage for a whole matrix.
class BinnedMatrix {
 public:
  /// Fits one BinMapper per column of `raw` and bins every value.
  static Result<BinnedMatrix> Build(const Matrix& raw, int max_bins);

  size_t rows() const { return rows_; }
  size_t num_features() const { return mappers_.size(); }
  const BinMapper& mapper(size_t f) const { return mappers_[f]; }

  /// Binned values of feature f (length rows()).
  const std::vector<uint16_t>& FeatureBins(size_t f) const {
    return bins_[f];
  }

  int MaxBinCount() const;

 private:
  size_t rows_ = 0;
  std::vector<BinMapper> mappers_;
  std::vector<std::vector<uint16_t>> bins_;
};

}  // namespace lightmirm::gbdt
