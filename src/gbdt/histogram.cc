#include "gbdt/histogram.h"

#include <cassert>

#include "common/thread_pool.h"

namespace lightmirm::gbdt {
namespace {

// Rows per histogram shard. The shard structure depends only on the row
// count (never the thread count), and shard partials are merged in shard
// order, so the histogram is bit-identical at any thread count. Node row
// sets below the grain take the single-shard path with zero overhead.
constexpr size_t kHistogramRowGrain = 2048;

// Accumulates rows [begin, end) of `rows` into `stats` (feature-major,
// `max_bins` bins per feature).
void AccumulateRows(const BinnedMatrix& binned, const std::vector<size_t>& rows,
                    size_t begin, size_t end, size_t num_features,
                    int max_bins, const std::vector<double>& grads,
                    const std::vector<double>& hessians, BinStats* stats) {
  for (size_t f = 0; f < num_features; ++f) {
    const std::vector<uint16_t>& bins = binned.FeatureBins(f);
    BinStats* feature_stats = stats + f * static_cast<size_t>(max_bins);
    for (size_t i = begin; i < end; ++i) {
      const size_t r = rows[i];
      BinStats& s = feature_stats[bins[r]];
      s.grad += grads[r];
      s.hess += hessians[r];
      s.count += 1.0;
    }
  }
}

}  // namespace

NodeHistogram::NodeHistogram(size_t num_features, int max_bins)
    : num_features_(num_features),
      max_bins_(max_bins),
      stats_(num_features * static_cast<size_t>(max_bins)) {}

void NodeHistogram::Build(const BinnedMatrix& binned,
                          const std::vector<size_t>& rows,
                          const std::vector<double>& grads,
                          const std::vector<double>& hessians) {
  std::fill(stats_.begin(), stats_.end(), BinStats{});
  const size_t num_shards = NumShards(rows.size(), kHistogramRowGrain);
  if (num_shards <= 1) {
    AccumulateRows(binned, rows, 0, rows.size(), num_features_, max_bins_,
                   grads, hessians, stats_.data());
    return;
  }
  // Row-block sharding: per-shard local histograms, merged in fixed shard
  // order below so the float accumulation order is thread-count-invariant.
  std::vector<std::vector<BinStats>> partials(num_shards);
  ParallelForShards(0, rows.size(), kHistogramRowGrain,
                    [&](size_t shard, size_t begin, size_t end) {
                      partials[shard].assign(stats_.size(), BinStats{});
                      AccumulateRows(binned, rows, begin, end, num_features_,
                                     max_bins_, grads, hessians,
                                     partials[shard].data());
                    });
  for (const std::vector<BinStats>& partial : partials) {
    for (size_t i = 0; i < stats_.size(); ++i) {
      stats_[i].grad += partial[i].grad;
      stats_[i].hess += partial[i].hess;
      stats_[i].count += partial[i].count;
    }
  }
}

void NodeHistogram::SubtractFrom(const NodeHistogram& parent,
                                 const NodeHistogram& other) {
  assert(parent.stats_.size() == stats_.size() &&
         other.stats_.size() == stats_.size());
  for (size_t i = 0; i < stats_.size(); ++i) {
    stats_[i].grad = parent.stats_[i].grad - other.stats_[i].grad;
    stats_[i].hess = parent.stats_[i].hess - other.stats_[i].hess;
    stats_[i].count = parent.stats_[i].count - other.stats_[i].count;
  }
}

double LeafOutput(double grad_sum, double hess_sum, double lambda_l2) {
  return -grad_sum / (hess_sum + lambda_l2);
}

double NodeScore(double grad_sum, double hess_sum, double lambda_l2) {
  return grad_sum * grad_sum / (hess_sum + lambda_l2);
}

namespace {

// Best split of one feature: the scan the serial implementation ran inside
// its feature loop, with an empty running best.
SplitInfo FindBestSplitForFeature(const NodeHistogram& hist, size_t f,
                                  int nbins, double node_grad,
                                  double node_hess, double node_count,
                                  const SplitOptions& options,
                                  double parent_score) {
  SplitInfo best;
  double left_grad = 0.0, left_hess = 0.0, left_count = 0.0;
  // Cut after bin b: left = bins [0..b], right = rest.
  for (int b = 0; b + 1 < nbins; ++b) {
    const BinStats& s = hist.At(f, b);
    left_grad += s.grad;
    left_hess += s.hess;
    left_count += s.count;
    const double right_grad = node_grad - left_grad;
    const double right_hess = node_hess - left_hess;
    const double right_count = node_count - left_count;
    if (left_count < options.min_data_in_leaf ||
        right_count < options.min_data_in_leaf) {
      continue;
    }
    if (left_hess < options.min_child_weight ||
        right_hess < options.min_child_weight) {
      continue;
    }
    const double gain = NodeScore(left_grad, left_hess, options.lambda_l2) +
                        NodeScore(right_grad, right_hess, options.lambda_l2) -
                        parent_score;
    if (gain > options.min_gain && gain > best.gain) {
      best.valid = true;
      best.feature = static_cast<int>(f);
      best.bin_threshold = b;
      best.gain = gain;
      best.left_grad = left_grad;
      best.left_hess = left_hess;
      best.left_count = left_count;
      best.right_grad = right_grad;
      best.right_hess = right_hess;
      best.right_count = right_count;
    }
  }
  return best;
}

constexpr size_t kSplitFeatureGrain = 16;

}  // namespace

SplitInfo FindBestSplit(const NodeHistogram& hist,
                        const std::vector<int>& feature_num_bins,
                        double node_grad, double node_hess,
                        double node_count, const SplitOptions& options) {
  const double parent_score =
      NodeScore(node_grad, node_hess, options.lambda_l2);
  // Feature-parallel scan; the strictly-greater reduction in feature order
  // below reproduces the serial "first feature with the maximal gain wins"
  // tie-breaking exactly.
  std::vector<SplitInfo> per_feature(hist.num_features());
  ParallelFor(0, hist.num_features(), kSplitFeatureGrain, [&](size_t f) {
    if (!options.feature_mask.empty() && options.feature_mask[f] == 0) {
      return;
    }
    const int nbins = feature_num_bins[f];
    if (nbins < 2) return;
    per_feature[f] =
        FindBestSplitForFeature(hist, f, nbins, node_grad, node_hess,
                                node_count, options, parent_score);
  });
  SplitInfo best;
  for (const SplitInfo& candidate : per_feature) {
    if (candidate.valid && candidate.gain > best.gain) best = candidate;
  }
  return best;
}

}  // namespace lightmirm::gbdt
