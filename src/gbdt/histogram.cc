#include "gbdt/histogram.h"

#include <cassert>

namespace lightmirm::gbdt {

NodeHistogram::NodeHistogram(size_t num_features, int max_bins)
    : num_features_(num_features),
      max_bins_(max_bins),
      stats_(num_features * static_cast<size_t>(max_bins)) {}

void NodeHistogram::Build(const BinnedMatrix& binned,
                          const std::vector<size_t>& rows,
                          const std::vector<double>& grads,
                          const std::vector<double>& hessians) {
  std::fill(stats_.begin(), stats_.end(), BinStats{});
  for (size_t f = 0; f < num_features_; ++f) {
    const std::vector<uint16_t>& bins = binned.FeatureBins(f);
    BinStats* feature_stats = &stats_[f * static_cast<size_t>(max_bins_)];
    for (size_t r : rows) {
      BinStats& s = feature_stats[bins[r]];
      s.grad += grads[r];
      s.hess += hessians[r];
      s.count += 1.0;
    }
  }
}

void NodeHistogram::SubtractFrom(const NodeHistogram& parent,
                                 const NodeHistogram& other) {
  assert(parent.stats_.size() == stats_.size() &&
         other.stats_.size() == stats_.size());
  for (size_t i = 0; i < stats_.size(); ++i) {
    stats_[i].grad = parent.stats_[i].grad - other.stats_[i].grad;
    stats_[i].hess = parent.stats_[i].hess - other.stats_[i].hess;
    stats_[i].count = parent.stats_[i].count - other.stats_[i].count;
  }
}

double LeafOutput(double grad_sum, double hess_sum, double lambda_l2) {
  return -grad_sum / (hess_sum + lambda_l2);
}

double NodeScore(double grad_sum, double hess_sum, double lambda_l2) {
  return grad_sum * grad_sum / (hess_sum + lambda_l2);
}

SplitInfo FindBestSplit(const NodeHistogram& hist,
                        const std::vector<int>& feature_num_bins,
                        double node_grad, double node_hess,
                        double node_count, const SplitOptions& options) {
  SplitInfo best;
  const double parent_score =
      NodeScore(node_grad, node_hess, options.lambda_l2);
  for (size_t f = 0; f < hist.num_features(); ++f) {
    if (!options.feature_mask.empty() && options.feature_mask[f] == 0) {
      continue;
    }
    const int nbins = feature_num_bins[f];
    if (nbins < 2) continue;
    double left_grad = 0.0, left_hess = 0.0, left_count = 0.0;
    // Cut after bin b: left = bins [0..b], right = rest.
    for (int b = 0; b + 1 < nbins; ++b) {
      const BinStats& s = hist.At(f, b);
      left_grad += s.grad;
      left_hess += s.hess;
      left_count += s.count;
      const double right_grad = node_grad - left_grad;
      const double right_hess = node_hess - left_hess;
      const double right_count = node_count - left_count;
      if (left_count < options.min_data_in_leaf ||
          right_count < options.min_data_in_leaf) {
        continue;
      }
      if (left_hess < options.min_child_weight ||
          right_hess < options.min_child_weight) {
        continue;
      }
      const double gain =
          NodeScore(left_grad, left_hess, options.lambda_l2) +
          NodeScore(right_grad, right_hess, options.lambda_l2) -
          parent_score;
      if (gain > options.min_gain && gain > best.gain) {
        best.valid = true;
        best.feature = static_cast<int>(f);
        best.bin_threshold = b;
        best.gain = gain;
        best.left_grad = left_grad;
        best.left_hess = left_hess;
        best.left_count = left_count;
        best.right_grad = right_grad;
        best.right_hess = right_hess;
        best.right_count = right_count;
      }
    }
  }
  return best;
}

}  // namespace lightmirm::gbdt
