#include "gbdt/booster.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "linear/logistic.h"

namespace lightmirm::gbdt {
namespace {

// Rows per shard of the row-parallel loops (gradient refresh, score
// update, batch prediction). Fixed grain + ordered merge of shard partials
// keeps every result bit-identical at any thread count.
constexpr size_t kRowGrain = 4096;

}  // namespace

Booster::Booster(double base_score, std::vector<Tree> trees)
    : base_score_(base_score), trees_(std::move(trees)) {}

Result<Booster> Booster::Train(const Matrix& features,
                               const std::vector<int>& labels,
                               const BoosterOptions& options) {
  const size_t n = features.rows();
  if (n == 0) return Status::InvalidArgument("no training rows");
  if (labels.size() != n) {
    return Status::InvalidArgument(
        StrFormat("labels size %zu != rows %zu", labels.size(), n));
  }
  if (options.num_trees < 1) {
    return Status::InvalidArgument("num_trees must be >= 1");
  }
  if (options.bagging_fraction <= 0.0 || options.bagging_fraction > 1.0) {
    return Status::InvalidArgument("bagging_fraction must be in (0,1]");
  }
  double pos = 0.0;
  for (int y : labels) {
    if (y != 0 && y != 1) {
      return Status::InvalidArgument("labels must be 0/1");
    }
    pos += y;
  }
  if (pos == 0.0 || pos == static_cast<double>(n)) {
    return Status::FailedPrecondition("need both classes to boost");
  }

  LIGHTMIRM_ASSIGN_OR_RETURN(const BinnedMatrix binned,
                             BinnedMatrix::Build(features, options.max_bins));

  Booster booster;
  const double base_rate = pos / static_cast<double>(n);
  booster.base_score_ = std::log(base_rate / (1.0 - base_rate));

  std::vector<double> scores(n, booster.base_score_);
  std::vector<double> grads(n), hessians(n);
  Rng rng(options.seed);
  std::vector<size_t> all_rows(n);
  for (size_t i = 0; i < n; ++i) all_rows[i] = i;

  std::vector<double> shard_loss(NumShards(n, kRowGrain));
  for (int t = 0; t < options.num_trees; ++t) {
    ParallelForShards(0, n, kRowGrain,
                      [&](size_t shard, size_t begin, size_t end) {
                        double loss = 0.0;
                        for (size_t i = begin; i < end; ++i) {
                          const double p = linear::Sigmoid(scores[i]);
                          const double y = static_cast<double>(labels[i]);
                          grads[i] = p - y;
                          hessians[i] = std::max(p * (1.0 - p), 1e-12);
                          loss -= y * std::log(std::max(p, 1e-12)) +
                                  (1.0 - y) *
                                      std::log(std::max(1.0 - p, 1e-12));
                        }
                        shard_loss[shard] = loss;
                      });
    double loss = 0.0;
    for (double part : shard_loss) loss += part;  // fixed shard order
    booster.train_loss_history_.push_back(loss / static_cast<double>(n));

    std::vector<size_t>* rows = &all_rows;
    std::vector<size_t> bagged;
    if (options.bagging_fraction < 1.0) {
      const size_t keep = std::max<size_t>(
          1, static_cast<size_t>(options.bagging_fraction *
                                 static_cast<double>(n)));
      bagged = all_rows;
      rng.Shuffle(&bagged);
      bagged.resize(keep);
      std::sort(bagged.begin(), bagged.end());
      rows = &bagged;
    }

    LIGHTMIRM_ASSIGN_OR_RETURN(
        Tree tree,
        GrowTree(binned, *rows, grads, hessians, options.tree, &rng));
    ParallelFor(0, n, kRowGrain, [&](size_t i) {
      scores[i] += tree.Predict(features.Row(i));
    });
    booster.trees_.push_back(std::move(tree));
  }
  return booster;
}

double Booster::PredictLogit(const double* row) const {
  double score = base_score_;
  for (const Tree& tree : trees_) score += tree.Predict(row);
  return score;
}

double Booster::PredictProb(const double* row) const {
  return linear::Sigmoid(PredictLogit(row));
}

std::vector<double> Booster::PredictProbs(const Matrix& features) const {
  std::vector<double> out(features.rows());
  // Row-parallel batch scoring: rows are independent and written to
  // disjoint slots, so the output is identical at any thread count.
  ParallelFor(0, features.rows(), kRowGrain,
              [&](size_t r) { out[r] = PredictProb(features.Row(r)); });
  return out;
}

void Booster::PredictLeaves(const double* row,
                            std::vector<int>* leaves) const {
  leaves->resize(trees_.size());
  for (size_t t = 0; t < trees_.size(); ++t) {
    (*leaves)[t] = trees_[t].PredictLeaf(row);
  }
}

int Booster::TotalLeaves() const {
  int total = 0;
  for (const Tree& tree : trees_) total += tree.num_leaves();
  return total;
}

size_t Booster::MinFeatureCount() const {
  int max_f = -1;
  for (const Tree& tree : trees_) {
    max_f = std::max(max_f, tree.max_feature_index());
  }
  return static_cast<size_t>(max_f + 1);
}

}  // namespace lightmirm::gbdt
