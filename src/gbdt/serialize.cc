#include "gbdt/serialize.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace lightmirm::gbdt {
namespace {

constexpr const char* kMagic = "lightmirm-booster-v1";

}  // namespace

Status SaveBooster(const Booster& booster, std::ostream* out) {
  (*out) << kMagic << "\n";
  (*out) << "base_score " << FormatG17(booster.base_score()) << "\n";
  (*out) << StrFormat("num_trees %zu\n", booster.trees().size());
  for (const Tree& tree : booster.trees()) {
    (*out) << StrFormat("tree %zu\n", tree.num_nodes());
    for (const TreeNode& n : tree.nodes()) {
      if (n.is_leaf) {
        (*out) << "leaf " << n.leaf_ordinal << " "
               << FormatG17(n.leaf_value) << "\n";
      } else {
        (*out) << "split " << n.feature << " " << FormatG17(n.threshold)
               << " " << n.left << " " << n.right << "\n";
      }
    }
  }
  if (!(*out)) return Status::IoError("failed writing booster");
  return Status::OK();
}

Status SaveBoosterToFile(const Booster& booster, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return SaveBooster(booster, &out);
}

Result<Booster> LoadBooster(std::istream* in) {
  std::string line;
  if (!std::getline(*in, line) || Trim(line) != kMagic) {
    return Status::InvalidArgument("bad booster header");
  }
  double base_score = 0.0;
  size_t num_trees = 0;
  {
    if (!std::getline(*in, line)) return Status::IoError("truncated booster");
    std::istringstream ss(line);
    std::string tag;
    if (!(ss >> tag >> base_score) || tag != "base_score") {
      return Status::InvalidArgument("expected base_score line");
    }
  }
  {
    if (!std::getline(*in, line)) return Status::IoError("truncated booster");
    std::istringstream ss(line);
    std::string tag;
    if (!(ss >> tag >> num_trees) || tag != "num_trees") {
      return Status::InvalidArgument("expected num_trees line");
    }
  }
  std::vector<Tree> trees;
  trees.reserve(num_trees);
  for (size_t t = 0; t < num_trees; ++t) {
    if (!std::getline(*in, line)) return Status::IoError("truncated booster");
    std::istringstream ss(line);
    std::string tag;
    size_t num_nodes = 0;
    if (!(ss >> tag >> num_nodes) || tag != "tree") {
      return Status::InvalidArgument("expected tree line");
    }
    std::vector<TreeNode> nodes(num_nodes);
    for (size_t i = 0; i < num_nodes; ++i) {
      if (!std::getline(*in, line)) {
        return Status::IoError("truncated booster");
      }
      std::istringstream ns(line);
      std::string kind;
      ns >> kind;
      TreeNode& n = nodes[i];
      if (kind == "leaf") {
        n.is_leaf = true;
        if (!(ns >> n.leaf_ordinal >> n.leaf_value)) {
          return Status::InvalidArgument("malformed leaf line: " + line);
        }
      } else if (kind == "split") {
        n.is_leaf = false;
        if (!(ns >> n.feature >> n.threshold >> n.left >> n.right)) {
          return Status::InvalidArgument("malformed split line: " + line);
        }
        if (n.left < 0 || n.right < 0 ||
            static_cast<size_t>(n.left) >= num_nodes ||
            static_cast<size_t>(n.right) >= num_nodes) {
          return Status::InvalidArgument("split child out of range: " + line);
        }
      } else {
        return Status::InvalidArgument("unknown node kind: " + line);
      }
    }
    trees.emplace_back(std::move(nodes));
  }
  return Booster(base_score, std::move(trees));
}

Result<Booster> LoadBoosterFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return LoadBooster(&in);
}

}  // namespace lightmirm::gbdt
