// Leaf encoder (§III-C): treats each trained tree as a categorical feature
// transform — the index of the leaf an instance falls into — and one-hot
// encodes it. Concatenating over trees yields the multi-hot vector the LR
// head consumes (exactly one active column per tree).
#pragma once

#include "common/result.h"
#include "gbdt/booster.h"
#include "linear/feature_matrix.h"

namespace lightmirm::gbdt {

/// Maps raw feature rows to sparse multi-hot leaf features.
class LeafEncoder {
 public:
  /// Builds the encoder for a trained booster. Column layout: tree t's
  /// leaves occupy columns [offset[t], offset[t] + num_leaves_t).
  explicit LeafEncoder(const Booster* booster);

  /// Total number of encoded columns (sum of leaf counts).
  size_t num_columns() const { return num_columns_; }

  /// Column index of (tree, leaf ordinal).
  size_t ColumnOf(size_t tree, int leaf) const {
    return offsets_[tree] + static_cast<size_t>(leaf);
  }

  /// Encodes a raw matrix into a sparse-binary FeatureMatrix (one active
  /// column per tree per row).
  Result<linear::FeatureMatrix> Encode(const Matrix& raw) const;

 private:
  const Booster* booster_;  // not owned
  std::vector<size_t> offsets_;
  size_t num_columns_ = 0;
};

}  // namespace lightmirm::gbdt
