// Text (de)serialization of a trained Booster, so the feature-extraction
// model can be persisted and shipped alongside the LR head.
#pragma once

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "gbdt/booster.h"

namespace lightmirm::gbdt {

/// Writes the booster in a line-oriented text format.
Status SaveBooster(const Booster& booster, std::ostream* out);
Status SaveBoosterToFile(const Booster& booster, const std::string& path);

/// Parses a booster previously written by SaveBooster.
Result<Booster> LoadBooster(std::istream* in);
Result<Booster> LoadBoosterFromFile(const std::string& path);

}  // namespace lightmirm::gbdt
