#include "gbdt/bin_mapper.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace lightmirm::gbdt {

BinMapper BinMapper::Fit(const std::vector<double>& values, int max_bins) {
  BinMapper mapper;
  if (values.empty() || max_bins < 2) return mapper;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(max_bins));
  for (int b = 1; b < max_bins; ++b) {
    const size_t idx = std::min(
        n - 1, static_cast<size_t>(static_cast<double>(b) *
                                   static_cast<double>(n) / max_bins));
    const double q = sorted[idx];
    if (bounds.empty() || q > bounds.back()) bounds.push_back(q);
  }
  // Drop a trailing boundary equal to the max so the last bin is non-empty.
  while (!bounds.empty() && bounds.back() >= sorted.back()) {
    bounds.pop_back();
  }
  mapper.upper_bounds_ = std::move(bounds);
  return mapper;
}

uint16_t BinMapper::BinOf(double value) const {
  // First bin whose upper bound is >= value.
  const auto it = std::lower_bound(upper_bounds_.begin(),
                                   upper_bounds_.end(), value);
  return static_cast<uint16_t>(it - upper_bounds_.begin());
}

Result<BinnedMatrix> BinnedMatrix::Build(const Matrix& raw, int max_bins) {
  if (max_bins < 2 || max_bins > 65535) {
    return Status::InvalidArgument(
        StrFormat("max_bins must be in [2, 65535], got %d", max_bins));
  }
  if (raw.rows() == 0 || raw.cols() == 0) {
    return Status::InvalidArgument("cannot bin an empty matrix");
  }
  BinnedMatrix out;
  out.rows_ = raw.rows();
  out.mappers_.resize(raw.cols());
  out.bins_.resize(raw.cols());
  std::vector<double> column(raw.rows());
  for (size_t f = 0; f < raw.cols(); ++f) {
    for (size_t r = 0; r < raw.rows(); ++r) column[r] = raw.At(r, f);
    out.mappers_[f] = BinMapper::Fit(column, max_bins);
    out.bins_[f].resize(raw.rows());
    for (size_t r = 0; r < raw.rows(); ++r) {
      out.bins_[f][r] = out.mappers_[f].BinOf(column[r]);
    }
  }
  return out;
}

int BinnedMatrix::MaxBinCount() const {
  int max_bins = 1;
  for (const BinMapper& m : mappers_) {
    max_bins = std::max(max_bins, m.num_bins());
  }
  return max_bins;
}

}  // namespace lightmirm::gbdt
