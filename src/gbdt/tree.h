// Decision tree: structure, raw-value prediction, leaf-index prediction,
// and a leaf-wise (best-first) histogram learner in the LightGBM style.
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/result.h"
#include "common/rng.h"
#include "gbdt/histogram.h"

namespace lightmirm::gbdt {

/// One node; leaves have is_leaf = true and carry a value and a dense leaf
/// ordinal (used by the leaf encoder of §III-C).
struct TreeNode {
  bool is_leaf = true;
  int feature = -1;
  double threshold = 0.0;  ///< go left iff value <= threshold
  int left = -1;
  int right = -1;
  double leaf_value = 0.0;
  int leaf_ordinal = -1;
};

/// An immutable trained tree.
class Tree {
 public:
  Tree() = default;
  explicit Tree(std::vector<TreeNode> nodes);

  int num_leaves() const { return num_leaves_; }
  size_t num_nodes() const { return nodes_.size(); }
  const std::vector<TreeNode>& nodes() const { return nodes_; }

  /// Largest feature id any split reads; -1 for a leaf-only tree.
  int max_feature_index() const { return max_feature_index_; }

  /// Additive output for a raw feature row (length >= max feature id + 1).
  double Predict(const double* row) const;

  /// Dense leaf ordinal in [0, num_leaves()) that `row` falls into.
  int PredictLeaf(const double* row) const;

 private:
  std::vector<TreeNode> nodes_;
  int num_leaves_ = 0;
  int max_feature_index_ = -1;
};

/// Largest float f with (double)f <= value: the tie-preserving float image
/// of a double. This is the export hook the quantized serving engine
/// (serve::QuantizedForest) builds on, applied to BOTH sides of every
/// split: for any float x, `x <= QuantizeThreshold(t)` equals
/// `(double)x <= t`, so when the feature plane is rounded with the same
/// function, a feature that exactly equals a training split (bin bounds
/// are observed feature values, so serving ties are common) lands on the
/// quantized threshold and still goes left, and every float-representable
/// feature decides exactly as the double descent would. NaN maps to NaN
/// (goes right on both sides); values beyond float range clamp to
/// ±FLT_MAX / ±inf without changing any preserved comparison.
float QuantizeThreshold(double value);

/// Leaf-wise growth parameters.
struct TreeLearnerOptions {
  int max_leaves = 31;
  SplitOptions split;
  double shrinkage = 0.1;  ///< learning rate applied to leaf outputs
  /// Fraction of features considered per tree (LightGBM feature_fraction);
  /// 1.0 = all.
  double feature_fraction = 1.0;
};

/// Grows one tree on (grads, hessians) over the given rows.
Result<Tree> GrowTree(const BinnedMatrix& binned,
                      const std::vector<size_t>& rows,
                      const std::vector<double>& grads,
                      const std::vector<double>& hessians,
                      const TreeLearnerOptions& options, Rng* rng);

}  // namespace lightmirm::gbdt
