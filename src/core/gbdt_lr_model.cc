#include "core/gbdt_lr_model.h"

#include <algorithm>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "metrics/ks.h"
#include "obs/metrics.h"
#include "train/erm.h"

namespace lightmirm::core {

std::string MethodName(Method method) {
  switch (method) {
    case Method::kErm:
      return "ERM";
    case Method::kErmFineTune:
      return "ERM + fine-tuning";
    case Method::kUpSampling:
      return "Up Sampling";
    case Method::kGroupDro:
      return "Group DRO";
    case Method::kVRex:
      return "V-REx";
    case Method::kIrmV1:
      return "IRMv1";
    case Method::kMetaIrm:
      return "meta-IRM";
    case Method::kLightMirm:
      return "LightMIRM";
  }
  return "unknown";
}

Result<Method> MethodFromName(const std::string& name) {
  for (Method m : AllMethods()) {
    if (MethodName(m) == name) return m;
  }
  if (name == "erm") return Method::kErm;
  if (name == "erm_fine_tune" || name == "fine_tune") {
    return Method::kErmFineTune;
  }
  if (name == "up_sampling" || name == "upsampling") {
    return Method::kUpSampling;
  }
  if (name == "group_dro") return Method::kGroupDro;
  if (name == "vrex" || name == "v_rex") return Method::kVRex;
  if (name == "irmv1" || name == "irm_v1") return Method::kIrmV1;
  if (name == "meta_irm") return Method::kMetaIrm;
  if (name == "light_mirm" || name == "lightmirm") return Method::kLightMirm;
  return Status::NotFound("unknown method: " + name);
}

std::string TrainMetricsPrefix(Method method) {
  return "train." + obs::SanitizeMetricName(MethodName(method)) + ".";
}

const std::vector<Method>& AllMethods() {
  static const std::vector<Method> methods = {
      Method::kErm,     Method::kErmFineTune, Method::kUpSampling,
      Method::kGroupDro, Method::kVRex,       Method::kIrmV1,
      Method::kMetaIrm, Method::kLightMirm,
  };
  return methods;
}

Result<std::unique_ptr<train::Trainer>> MakeTrainer(
    Method method, const GbdtLrOptions& options) {
  using std::make_unique;
  switch (method) {
    case Method::kErm:
      return {make_unique<train::ErmTrainer>(options.trainer)};
    case Method::kErmFineTune:
      return {make_unique<train::FineTuneTrainer>(options.trainer,
                                                  options.fine_tune)};
    case Method::kUpSampling:
      return {make_unique<train::UpSamplingTrainer>(options.trainer,
                                                    options.up_sampling)};
    case Method::kGroupDro:
      return {make_unique<train::GroupDroTrainer>(options.trainer,
                                                  options.group_dro)};
    case Method::kVRex:
      return {make_unique<train::VRexTrainer>(options.trainer, options.vrex)};
    case Method::kIrmV1:
      return {make_unique<train::IrmV1Trainer>(options.trainer,
                                               options.irmv1)};
    case Method::kMetaIrm:
      return {make_unique<train::MetaIrmTrainer>(options.trainer,
                                                 options.meta_irm)};
    case Method::kLightMirm:
      return {make_unique<train::LightMirmTrainer>(options.trainer,
                                                   options.light_mirm)};
  }
  return Status::InvalidArgument("unknown method enum value");
}

Result<GbdtLrModel> GbdtLrModel::Train(const data::Dataset& train,
                                       Method method,
                                       const GbdtLrOptions& options) {
  ScopedDefaultThreads threads_guard(options.trainer.threads);
  LIGHTMIRM_ASSIGN_OR_RETURN(
      gbdt::Booster booster,
      gbdt::Booster::Train(train.features(), train.labels(),
                           options.booster));
  return TrainWithBooster(
      std::make_shared<const gbdt::Booster>(std::move(booster)), train,
      method, options);
}

Result<GbdtLrModel> GbdtLrModel::TrainWithBooster(
    std::shared_ptr<const gbdt::Booster> booster, const data::Dataset& train,
    Method method, const GbdtLrOptions& options) {
  if (booster == nullptr) {
    return Status::InvalidArgument("booster must be non-null");
  }
  ScopedDefaultThreads threads_guard(options.trainer.threads);
  GbdtLrModel model;
  model.method_ = method;
  model.booster_ = std::move(booster);
  model.encoder_ = std::make_unique<gbdt::LeafEncoder>(model.booster_.get());
  model.use_raw_features_ = options.use_raw_features;

  GbdtLrOptions run_options = options;
  // Default telemetry sink: the global registry under the method's prefix.
  // Callers that pass an explicit registry (or disable telemetry) win.
  if (run_options.trainer.metrics == nullptr && obs::TelemetryEnabled()) {
    run_options.trainer.metrics = obs::MetricsRegistry::Global();
  }
  if (run_options.trainer.metrics != nullptr &&
      run_options.trainer.metrics_prefix.empty()) {
    run_options.trainer.metrics_prefix = TrainMetricsPrefix(method);
  }

  // "transforming the format": raw features -> multi-hot leaf encoding.
  linear::FeatureMatrix features;
  {
    train::StepSpan scope(train::StepTelemetry::From(run_options.trainer),
                          "transforming the format");
    LIGHTMIRM_ASSIGN_OR_RETURN(features, model.EncodeFeatures(train));
  }

  // Optional held-out validation split for best-epoch selection.
  std::vector<size_t> train_rows, val_rows;
  std::vector<int> val_labels;
  if (options.validation_fraction > 0.0 &&
      options.validation_fraction < 1.0) {
    std::vector<size_t> order = linear::AllRows(features.rows());
    Rng rng(options.validation_seed);
    rng.Shuffle(&order);
    const size_t n_val = static_cast<size_t>(options.validation_fraction *
                                             static_cast<double>(order.size()));
    val_rows.assign(order.begin(), order.begin() + n_val);
    train_rows.assign(order.begin() + n_val, order.end());
    std::sort(val_rows.begin(), val_rows.end());
    std::sort(train_rows.begin(), train_rows.end());
    val_labels.reserve(val_rows.size());
    for (size_t r : val_rows) val_labels.push_back(train.labels()[r]);
    run_options.trainer.validation_fn =
        [&features, &val_rows, &val_labels](
            const linear::LogisticModel& candidate) {
          const std::vector<double> scores =
              candidate.PredictRows(features, val_rows);
          auto ks = metrics::KsStatistic(val_labels, scores);
          return ks.ok() ? *ks : 0.0;
        };
  }

  LIGHTMIRM_ASSIGN_OR_RETURN(
      train::TrainData train_data,
      train::TrainData::Create(&features, &train.labels(), &train.envs(),
                               run_options.min_env_rows, nullptr,
                               val_rows.empty() ? nullptr : &train_rows));
  LIGHTMIRM_ASSIGN_OR_RETURN(std::unique_ptr<train::Trainer> trainer,
                             MakeTrainer(method, run_options));
  LIGHTMIRM_ASSIGN_OR_RETURN(model.predictor_, trainer->Fit(train_data));
  LIGHTMIRM_RETURN_NOT_OK(model.CompileForServing());
  if (options.capture_score_reference) {
    LIGHTMIRM_RETURN_NOT_OK(model.CaptureScoreReference(
        train, options.score_reference_bins));
  }
  return model;
}

Result<GbdtLrModel> GbdtLrModel::FromParts(
    std::shared_ptr<const gbdt::Booster> booster,
    train::TrainedPredictor predictor, Method method,
    bool use_raw_features) {
  if (booster == nullptr) {
    return Status::InvalidArgument("booster must be non-null");
  }
  GbdtLrModel model;
  model.method_ = method;
  model.booster_ = std::move(booster);
  model.encoder_ = std::make_unique<gbdt::LeafEncoder>(model.booster_.get());
  model.predictor_ = std::move(predictor);
  model.use_raw_features_ = use_raw_features;
  LIGHTMIRM_RETURN_NOT_OK(model.CompileForServing());
  return model;
}

Status GbdtLrModel::CompileForServing() {
  // The raw-feature ablation feeds dense rows straight into the LR head;
  // there is no leaf encoding to compile.
  if (use_raw_features_) return Status::OK();
  LIGHTMIRM_ASSIGN_OR_RETURN(serve::CompiledForest forest,
                             serve::CompiledForest::Build(*booster_));
  forest_ = std::make_shared<const serve::CompiledForest>(std::move(forest));
  LIGHTMIRM_ASSIGN_OR_RETURN(serve::ScoringSession session,
                             serve::ScoringSession::Create(forest_,
                                                           predictor_));
  session_ =
      std::make_shared<const serve::ScoringSession>(std::move(session));
  return Status::OK();
}

Status GbdtLrModel::CaptureScoreReference(const data::Dataset& train,
                                          int num_bins) {
  // One extra scoring pass over the training data through the serving
  // path; the reference must describe the scores deployment will see.
  LIGHTMIRM_ASSIGN_OR_RETURN(const std::vector<double> scores,
                             Predict(train));
  LIGHTMIRM_ASSIGN_OR_RETURN(
      score_reference_,
      obs::BuildScoreReference(scores, train.labels(), train.envs(),
                               num_bins, /*min_env_rows=*/100,
                               train.env_names()));
  return Status::OK();
}

Result<std::shared_ptr<obs::ModelHealthMonitor>> GbdtLrModel::StartMonitoring(
    const obs::MonitorOptions& options) const {
  LIGHTMIRM_ASSIGN_OR_RETURN(
      std::unique_ptr<obs::ModelHealthMonitor> monitor,
      obs::ModelHealthMonitor::Create(score_reference_, options));
  std::shared_ptr<obs::ModelHealthMonitor> shared = std::move(monitor);
  // Double-start is an error now that attachment is exclusive: the caller
  // must DetachMonitor() the session's current monitor first.
  if (session_ != nullptr) {
    LIGHTMIRM_RETURN_NOT_OK(session_->AttachMonitor(shared));
  }
  return shared;
}

Result<linear::FeatureMatrix> GbdtLrModel::EncodeFeatures(
    const data::Dataset& dataset) const {
  if (use_raw_features_) {
    return linear::FeatureMatrix::FromDense(dataset.features());
  }
  return encoder_->Encode(dataset.features());
}

Result<std::vector<double>> GbdtLrModel::Predict(
    const data::Dataset& dataset) const {
  if (use_raw_features_) {
    if (dataset.NumFeatures() != predictor_.global.num_features()) {
      return Status::InvalidArgument(
          StrFormat("dataset has %zu features but the LR head was trained "
                    "on %zu",
                    dataset.NumFeatures(),
                    predictor_.global.num_features()));
    }
    LIGHTMIRM_ASSIGN_OR_RETURN(const linear::FeatureMatrix features,
                               EncodeFeatures(dataset));
    return predictor_.Predict(features, &dataset.envs());
  }
  return session_->Score(dataset.features(), &dataset.envs());
}

}  // namespace lightmirm::core
