// GbdtLrModel — the paper's full loan-default prediction pipeline (Fig 2):
// a LightGBM-style booster performs automatic feature extraction (each tree
// contributes a one-hot leaf feature, §III-C), and a logistic-regression
// head on the multi-hot encoding is learned with one of the training
// paradigms (ERM family or the IRM family, §III-D/E).
#pragma once

#include <memory>
#include <string>

#include "common/result.h"
#include "common/timer.h"
#include "data/dataset.h"
#include "gbdt/booster.h"
#include "gbdt/leaf_encoder.h"
#include "obs/drift.h"
#include "obs/monitor.h"
#include "serve/compiled_forest.h"
#include "serve/scoring_session.h"
#include "train/fine_tune.h"
#include "train/group_dro.h"
#include "train/irmv1.h"
#include "train/light_mirm.h"
#include "train/meta_irm.h"
#include "train/trainer.h"
#include "train/up_sampling.h"
#include "train/vrex.h"

namespace lightmirm::core {

/// The training paradigms compared in the paper's evaluation.
enum class Method {
  kErm,
  kErmFineTune,
  kUpSampling,
  kGroupDro,
  kVRex,
  kIrmV1,
  kMetaIrm,
  kLightMirm,
};

/// Table-facing display name ("ERM", "LightMIRM", ...).
std::string MethodName(Method method);

/// Parses a method name (accepts the display names and lowercase slugs
/// like "light_mirm"). Errors on unknown names.
Result<Method> MethodFromName(const std::string& name);

/// All methods in Table I order.
const std::vector<Method>& AllMethods();

/// Canonical telemetry prefix for a method's training-run metrics, e.g.
/// "train.LightMIRM." or "train.meta_IRM." (see DESIGN.md "Observability").
std::string TrainMetricsPrefix(Method method);

/// Configuration for the full pipeline.
struct GbdtLrOptions {
  gbdt::BoosterOptions booster;
  train::TrainerOptions trainer;
  train::FineTuneOptions fine_tune;
  train::UpSamplingTrainerOptions up_sampling;
  train::GroupDroOptions group_dro;
  train::VRexOptions vrex;
  train::IrmV1Options irmv1;
  train::MetaIrmOptions meta_irm;
  train::LightMirmOptions light_mirm;
  /// Environments smaller than this do not get their own training task.
  size_t min_env_rows = 100;
  /// Fraction of training rows held out for best-epoch selection (pooled
  /// validation KS). 0 disables validation snapshotting.
  double validation_fraction = 0.15;
  uint64_t validation_seed = 1234;
  /// Ablation: feed raw features to the LR head instead of leaf features.
  bool use_raw_features = false;
  /// Capture a training-time score reference (per-province binned score
  /// histograms, obs/drift.h) after training, the baseline the online
  /// drift monitors compare against. Persisted by core/model_io.
  bool capture_score_reference = true;
  int score_reference_bins = 10;
};

/// Builds the trainer implementing `method` under `options`.
Result<std::unique_ptr<train::Trainer>> MakeTrainer(
    Method method, const GbdtLrOptions& options);

/// A trained pipeline: booster + leaf encoder + LR predictor.
class GbdtLrModel {
 public:
  /// Trains feature extraction and the LR head from scratch.
  static Result<GbdtLrModel> Train(const data::Dataset& train, Method method,
                                   const GbdtLrOptions& options);

  /// Trains the LR head on top of an existing booster, so several methods
  /// can share one feature extractor (as the paper's comparisons do).
  static Result<GbdtLrModel> TrainWithBooster(
      std::shared_ptr<const gbdt::Booster> booster,
      const data::Dataset& train, Method method,
      const GbdtLrOptions& options);

  /// Reassembles a model from persisted parts (see core/model_io.h).
  static Result<GbdtLrModel> FromParts(
      std::shared_ptr<const gbdt::Booster> booster,
      train::TrainedPredictor predictor, Method method,
      bool use_raw_features);

  /// Default probabilities for each row of `dataset`. Uses per-province
  /// model overrides when the method produced them (fine-tuning). Leaf
  /// models score through the compiled serving path (bit-identical to the
  /// legacy encode-then-dot path); the raw-feature ablation keeps the
  /// dense legacy path.
  Result<std::vector<double>> Predict(const data::Dataset& dataset) const;

  /// Encodes a dataset into the LR head's input representation. Training
  /// still needs the materialized FeatureMatrix; inference does not (see
  /// scoring_session()).
  Result<linear::FeatureMatrix> EncodeFeatures(
      const data::Dataset& dataset) const;

  const gbdt::Booster& booster() const { return *booster_; }
  const train::TrainedPredictor& predictor() const { return predictor_; }
  Method method() const { return method_; }
  bool use_raw_features() const { return use_raw_features_; }

  /// The flattened forest and batch scorer backing Predict; null for the
  /// raw-feature ablation (which has no leaf encoding to compile).
  std::shared_ptr<const serve::CompiledForest> compiled_forest() const {
    return forest_;
  }
  std::shared_ptr<const serve::ScoringSession> scoring_session() const {
    return session_;
  }

  /// Training-time score reference captured at model build (empty when
  /// capture was disabled or the model predates references).
  const obs::ScoreReference& score_reference() const {
    return score_reference_;
  }
  void set_score_reference(obs::ScoreReference reference) {
    score_reference_ = std::move(reference);
  }

  /// Builds a ModelHealthMonitor from the captured reference and attaches
  /// it to the scoring session (when the model serves through one), so
  /// every subsequent Predict/Score feeds the drift monitors. Errors when
  /// no reference was captured.
  Result<std::shared_ptr<obs::ModelHealthMonitor>> StartMonitoring(
      const obs::MonitorOptions& options = {}) const;

 private:
  Status CompileForServing();
  Status CaptureScoreReference(const data::Dataset& train, int num_bins);

  std::shared_ptr<const gbdt::Booster> booster_;
  std::unique_ptr<gbdt::LeafEncoder> encoder_;
  train::TrainedPredictor predictor_;
  std::shared_ptr<const serve::CompiledForest> forest_;
  std::shared_ptr<const serve::ScoringSession> session_;
  obs::ScoreReference score_reference_;
  Method method_ = Method::kErm;
  bool use_raw_features_ = false;
};

}  // namespace lightmirm::core
