// Persistence for the full GBDT+LR pipeline — booster, LR parameters,
// per-province overrides, and method metadata — so a trained model can be
// deployed as a standalone artifact (the paper's "plug-and-play companion
// runner" deployment mode).
#pragma once

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "core/gbdt_lr_model.h"

namespace lightmirm::core {

/// Writes the model in a line-oriented text format.
Status SaveModel(const GbdtLrModel& model, std::ostream* out);
Status SaveModelToFile(const GbdtLrModel& model, const std::string& path);

/// Parses a model written by SaveModel.
Result<GbdtLrModel> LoadModel(std::istream* in);
Result<GbdtLrModel> LoadModelFromFile(const std::string& path);

}  // namespace lightmirm::core
