#include "core/experiment.h"

#include "common/thread_pool.h"
#include "metrics/ks.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace lightmirm::core {

Result<std::unique_ptr<ExperimentRunner>> ExperimentRunner::Create(
    ExperimentConfig config) {
  ScopedDefaultThreads threads_guard(config.threads);
  data::LoanGenerator generator(config.generator);
  LIGHTMIRM_ASSIGN_OR_RETURN(data::Dataset dataset, generator.Generate());
  return CreateWithDataset(std::move(config), std::move(dataset));
}

Result<std::unique_ptr<ExperimentRunner>> ExperimentRunner::CreateWithDataset(
    ExperimentConfig config, data::Dataset dataset) {
  std::unique_ptr<ExperimentRunner> runner(new ExperimentRunner());
  runner->config_ = std::move(config);
  runner->dataset_ = std::move(dataset);
  if (!runner->config_.trace_out.empty()) {
    obs::SetTraceRecordingEnabled(true);
  }
  LIGHTMIRM_RETURN_NOT_OK(runner->Init());
  return runner;
}

Status ExperimentRunner::Init() {
  ScopedDefaultThreads threads_guard(config_.threads);
  if (config_.iid_split) {
    Rng rng(config_.split_seed);
    LIGHTMIRM_ASSIGN_OR_RETURN(
        split_,
        data::RandomSplit(dataset_, config_.iid_test_fraction, &rng));
  } else {
    LIGHTMIRM_ASSIGN_OR_RETURN(
        split_, data::TemporalSplit(dataset_, config_.test_year));
  }
  if (split_.train.NumRows() == 0 || split_.test.NumRows() == 0) {
    return Status::FailedPrecondition("empty train or test split");
  }
  // One shared feature extractor for every method, like the paper's
  // comparisons.
  LIGHTMIRM_ASSIGN_OR_RETURN(
      gbdt::Booster booster,
      gbdt::Booster::Train(split_.train.features(), split_.train.labels(),
                           config_.model.booster));
  booster_ = std::make_shared<const gbdt::Booster>(std::move(booster));
  gbdt::LeafEncoder encoder(booster_.get());
  LIGHTMIRM_ASSIGN_OR_RETURN(test_features_,
                             encoder.Encode(split_.test.features()));
  return Status::OK();
}

Result<MethodResult> ExperimentRunner::RunMethodWithOptions(
    Method method, const GbdtLrOptions& options, bool trace_epochs) {
  ScopedDefaultThreads threads_guard(config_.threads);
  MethodResult result;
  result.method = method;
  result.method_name = MethodName(method);

  GbdtLrOptions run_options = options;
  run_options.trainer.timer = &result.step_times;
  if (run_options.trainer.metrics == nullptr && obs::TelemetryEnabled()) {
    run_options.trainer.metrics = obs::MetricsRegistry::Global();
    run_options.trainer.metrics_prefix = TrainMetricsPrefix(method);
  }

  // "loading data": fetching the split rows into the training harness.
  {
    train::StepSpan scope(train::StepTelemetry::From(run_options.trainer),
                          "loading data");
    (void)split_.train.NumRows();
  }

  // Per-epoch tracing of the pooled test KS.
  linear::FeatureMatrix raw_test;
  const linear::FeatureMatrix* eval_x = &test_features_;
  if (run_options.use_raw_features) {
    raw_test = linear::FeatureMatrix::FromDense(split_.test.features());
    eval_x = &raw_test;
  }
  if (trace_epochs) {
    run_options.trainer.epoch_callback =
        [this, eval_x, &result](int, const linear::LogisticModel& model) {
          const std::vector<double> scores = model.Predict(*eval_x);
          auto ks = metrics::KsStatistic(split_.test.labels(), scores);
          result.ks_per_epoch.push_back(ks.ok() ? *ks : 0.0);
        };
  }

  WallTimer train_watch;
  LIGHTMIRM_ASSIGN_OR_RETURN(
      GbdtLrModel model,
      GbdtLrModel::TrainWithBooster(booster_, split_.train, method,
                                    run_options));
  result.train_seconds = train_watch.Seconds();

  // Both branches route through GbdtLrModel::Predict — for leaf models
  // that is the compiled serving path (bit-identical to scoring the
  // pre-encoded test_features_, which remains only for the per-epoch
  // trace above).
  LIGHTMIRM_ASSIGN_OR_RETURN(result.test_scores, model.Predict(split_.test));

  LIGHTMIRM_ASSIGN_OR_RETURN(
      result.report,
      metrics::EvaluatePerEnv(split_.test, result.test_scores,
                              config_.eval_min_rows));
  LIGHTMIRM_ASSIGN_OR_RETURN(
      const metrics::PooledMetrics pooled,
      metrics::EvaluatePooled(split_.test.labels(), result.test_scores));
  result.pooled_ks = pooled.ks;
  result.pooled_auc = pooled.auc;

  if (!config_.telemetry_out.empty()) {
    LIGHTMIRM_RETURN_NOT_OK(obs::WriteTelemetryFile(
        *obs::MetricsRegistry::Global(), config_.telemetry_out));
  }
  if (!config_.trace_out.empty()) {
    LIGHTMIRM_RETURN_NOT_OK(obs::WriteChromeTraceFile(
        obs::RecordedTraceEvents(), config_.trace_out));
  }
  return result;
}

}  // namespace lightmirm::core
