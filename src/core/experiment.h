// ExperimentRunner — shared harness for every table and figure of the
// paper: generates (or accepts) a dataset, splits it temporally (2016-2019
// train / 2020 test) or randomly (Table VI), trains one shared GBDT feature
// extractor, then runs any subset of the training paradigms on the same
// leaf features and evaluates them per province.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/gbdt_lr_model.h"
#include "data/env_split.h"
#include "data/loan_generator.h"
#include "metrics/env_report.h"

namespace lightmirm::core {

/// Full experiment configuration.
struct ExperimentConfig {
  data::LoanGeneratorOptions generator;
  GbdtLrOptions model;
  /// Temporal split: train on years < test_year, test on test_year.
  int test_year = 2020;
  /// If true use a random i.i.d. split instead (Table VI).
  bool iid_split = false;
  double iid_test_fraction = 0.25;
  uint64_t split_seed = 99;
  /// Environments need this many test rows to be scored.
  size_t eval_min_rows = 80;
  /// Worker threads for generation, booster training, scoring and the LR
  /// head (0 = hardware concurrency, 1 = serial). Deterministic: every
  /// thread count produces the same bits.
  int threads = 0;
  /// When non-empty, a snapshot of the global telemetry registry is
  /// written here after every RunMethod* call (a path ending in ".prom"
  /// selects Prometheus text format, anything else JSON — see
  /// obs/export.h).
  std::string telemetry_out;
  /// When non-empty, span-occurrence recording is switched on at runner
  /// creation and a Chrome trace-event file (chrome://tracing / Perfetto)
  /// of every span recorded so far is written here after every RunMethod*
  /// call.
  std::string trace_out;
};

/// One method's evaluation outcome.
struct MethodResult {
  Method method = Method::kErm;
  std::string method_name;
  metrics::EnvReport report;      ///< per-province + mKS/wKS/mAUC/wAUC
  double pooled_ks = 0.0;
  double pooled_auc = 0.0;
  double train_seconds = 0.0;     ///< wall-clock of the LR-head training
  StepTimer step_times;           ///< per-step breakdown (Table III)
  std::vector<double> test_scores;
  /// KS on the pooled test set after each epoch when tracing was enabled.
  std::vector<double> ks_per_epoch;
};

/// Harness shared by the benches and examples.
class ExperimentRunner {
 public:
  /// Generates the dataset, splits it, trains the shared booster and
  /// encodes train/test features.
  static Result<std::unique_ptr<ExperimentRunner>> Create(
      ExperimentConfig config);

  /// Same, but on a caller-provided dataset.
  static Result<std::unique_ptr<ExperimentRunner>> CreateWithDataset(
      ExperimentConfig config, data::Dataset dataset);

  /// Trains and evaluates one method with the config's options.
  Result<MethodResult> RunMethod(Method method) {
    return RunMethodWithOptions(method, config_.model, false);
  }

  /// Trains and evaluates with explicit pipeline options (ablations). If
  /// `trace_epochs` is set, records pooled test KS after every epoch.
  Result<MethodResult> RunMethodWithOptions(Method method,
                                            const GbdtLrOptions& options,
                                            bool trace_epochs);

  const ExperimentConfig& config() const { return config_; }
  const data::Dataset& full_dataset() const { return dataset_; }
  const data::Dataset& train() const { return split_.train; }
  const data::Dataset& test() const { return split_.test; }
  const gbdt::Booster& booster() const { return *booster_; }

  /// The shared feature extractor, for callers training their own heads on
  /// top of it (see GbdtLrModel::TrainWithBooster).
  std::shared_ptr<const gbdt::Booster> shared_booster() const {
    return booster_;
  }

 private:
  ExperimentRunner() = default;
  Status Init();

  ExperimentConfig config_;
  data::Dataset dataset_;
  data::Split split_;
  std::shared_ptr<const gbdt::Booster> booster_;
  linear::FeatureMatrix test_features_;
};

}  // namespace lightmirm::core
