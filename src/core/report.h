// Plain-text table rendering for the bench harnesses, mirroring the layout
// of the paper's tables.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.h"
#include "obs/replay.h"

namespace lightmirm::core {

/// Table I / Table VI layout: one row per method with mKS/wKS/mAUC/wAUC.
/// Best value per column is marked with '*'.
std::string FormatComparisonTable(const std::vector<MethodResult>& results);

/// Per-province breakdown (Fig 1 layout): province, rows, KS, AUC, sorted
/// by KS descending.
std::string FormatProvinceTable(const MethodResult& result);

/// Training-curve series (Fig 6 / Fig 8): epoch index vs pooled test KS,
/// one column per method.
std::string FormatTrainingCurves(const std::vector<MethodResult>& results);

/// Generic aligned table: `header` then rows. Every row must have
/// header.size() cells.
std::string FormatTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows);

/// Health trajectory of a streaming replay (obs/replay.h): one row per
/// (period, window) with the rolling statistics and the OK/WARN/ALERT
/// state — the global window first, then the monitored provinces. `envs`
/// restricts the province rows (empty = all monitored provinces).
std::string FormatHealthTrajectory(const obs::ReplayResult& result,
                                   const obs::ScoreReference& reference,
                                   const std::vector<int>& envs = {});

}  // namespace lightmirm::core
