// Plain-text table rendering for the bench harnesses, mirroring the layout
// of the paper's tables.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.h"

namespace lightmirm::core {

/// Table I / Table VI layout: one row per method with mKS/wKS/mAUC/wAUC.
/// Best value per column is marked with '*'.
std::string FormatComparisonTable(const std::vector<MethodResult>& results);

/// Per-province breakdown (Fig 1 layout): province, rows, KS, AUC, sorted
/// by KS descending.
std::string FormatProvinceTable(const MethodResult& result);

/// Training-curve series (Fig 6 / Fig 8): epoch index vs pooled test KS,
/// one column per method.
std::string FormatTrainingCurves(const std::vector<MethodResult>& results);

/// Generic aligned table: `header` then rows. Every row must have
/// header.size() cells.
std::string FormatTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows);

}  // namespace lightmirm::core
