#include "core/report.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"

namespace lightmirm::core {

std::string FormatTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths(header.size());
  for (size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    assert(row.size() == header.size());
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += "  ";
      out += row[c];
      out.append(widths[c] - row[c].size(), ' ');
    }
    out += "\n";
    return out;
  };
  std::string out = render_row(header);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : 0, '-');
  out += "\n";
  for (const auto& row : rows) out += render_row(row);
  return out;
}

std::string FormatComparisonTable(const std::vector<MethodResult>& results) {
  // Find best per metric for the '*' marker (higher is better).
  double best[4] = {-1.0, -1.0, -1.0, -1.0};
  for (const MethodResult& r : results) {
    best[0] = std::max(best[0], r.report.mean_ks);
    best[1] = std::max(best[1], r.report.worst_ks);
    best[2] = std::max(best[2], r.report.mean_auc);
    best[3] = std::max(best[3], r.report.worst_auc);
  }
  auto cell = [](double v, double is_best) {
    return StrFormat("%.4f%s", v, is_best ? "*" : " ");
  };
  std::vector<std::vector<std::string>> rows;
  for (const MethodResult& r : results) {
    rows.push_back({
        r.method_name,
        cell(r.report.mean_ks, r.report.mean_ks == best[0]),
        cell(r.report.worst_ks, r.report.worst_ks == best[1]),
        cell(r.report.mean_auc, r.report.mean_auc == best[2]),
        cell(r.report.worst_auc, r.report.worst_auc == best[3]),
        StrFormat("%.2fs", r.train_seconds),
    });
  }
  return FormatTable({"Methods", "mKS", "wKS", "mAUC", "wAUC", "train"},
                     rows);
}

std::string FormatProvinceTable(const MethodResult& result) {
  std::vector<metrics::EnvMetrics> sorted = result.report.per_env;
  std::sort(sorted.begin(), sorted.end(),
            [](const metrics::EnvMetrics& a, const metrics::EnvMetrics& b) {
              return a.ks > b.ks;
            });
  std::vector<std::vector<std::string>> rows;
  for (const metrics::EnvMetrics& m : sorted) {
    rows.push_back({m.name, StrFormat("%zu", m.rows),
                    StrFormat("%.4f", m.ks), StrFormat("%.4f", m.auc)});
  }
  return FormatTable({"Province", "rows", "KS", "AUC"}, rows);
}

std::string FormatTrainingCurves(const std::vector<MethodResult>& results) {
  std::vector<std::string> header = {"epoch"};
  size_t max_epochs = 0;
  for (const MethodResult& r : results) {
    header.push_back(r.method_name);
    max_epochs = std::max(max_epochs, r.ks_per_epoch.size());
  }
  std::vector<std::vector<std::string>> rows;
  for (size_t e = 0; e < max_epochs; ++e) {
    std::vector<std::string> row = {StrFormat("%zu", e)};
    for (const MethodResult& r : results) {
      row.push_back(e < r.ks_per_epoch.size()
                        ? StrFormat("%.4f", r.ks_per_epoch[e])
                        : "");
    }
    rows.push_back(std::move(row));
  }
  return FormatTable(header, rows);
}

std::string FormatHealthTrajectory(const obs::ReplayResult& result,
                                   const obs::ScoreReference& reference,
                                   const std::vector<int>& envs) {
  const auto window_row = [](int year, int half, const std::string& name,
                             const obs::WindowHealth& h) {
    return std::vector<std::string>{
        StrFormat("%d-H%d", year, half),
        name,
        StrFormat("%llu", static_cast<unsigned long long>(h.window_rows)),
        h.psi.evaluated ? StrFormat("%.3f", h.psi.value) : "-",
        h.default_rate_rise.evaluated ? StrFormat("%.3f", h.default_rate)
                                      : "-",
        h.auc_drop.evaluated ? StrFormat("%.3f", h.auc) : "-",
        h.calibration.evaluated ? StrFormat("%.3f", h.calibration.value)
                                : "-",
        obs::AlertStateName(h.overall)};
  };
  std::vector<std::vector<std::string>> rows;
  for (const obs::ReplayPeriod& period : result.periods) {
    rows.push_back(window_row(period.year, period.half, "(global)",
                              period.health.global));
    for (const auto& [env, health] : period.health.per_env) {
      if (!envs.empty() &&
          std::find(envs.begin(), envs.end(), env) == envs.end()) {
        continue;
      }
      rows.push_back(window_row(period.year, period.half,
                                reference.EnvName(env), health));
    }
    rows.push_back({StrFormat("%d-H%d", period.year, period.half),
                    "(fairness gap)", "",
                    period.health.fairness_gap.evaluated
                        ? StrFormat("%.3f", period.health.fairness_gap.value)
                        : "-",
                    "", "", "",
                    obs::AlertStateName(period.health.fairness_gap.state)});
  }
  return FormatTable(
      {"period", "window", "rows", "PSI", "rate", "AUC", "ECE", "state"},
      rows);
}

}  // namespace lightmirm::core
