#include "core/model_io.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "gbdt/serialize.h"

namespace lightmirm::core {
namespace {

constexpr const char* kMagic = "lightmirm-model-v1";

Status WriteParams(const linear::ParamVec& params, std::ostream* out) {
  (*out) << params.size();
  for (double p : params) (*out) << StrFormat(" %.17g", p);
  (*out) << "\n";
  return out->good() ? Status::OK() : Status::IoError("write failed");
}

Result<linear::ParamVec> ReadParams(std::istream* in) {
  std::string line;
  if (!std::getline(*in, line)) {
    return Status::IoError("truncated model: missing params");
  }
  std::istringstream ss(line);
  size_t count = 0;
  if (!(ss >> count)) return Status::InvalidArgument("bad params header");
  linear::ParamVec params(count);
  for (size_t i = 0; i < count; ++i) {
    if (!(ss >> params[i])) {
      return Status::InvalidArgument("truncated params line");
    }
  }
  return params;
}

}  // namespace

Status SaveModel(const GbdtLrModel& model, std::ostream* out) {
  (*out) << kMagic << "\n";
  (*out) << "method " << MethodName(model.method()) << "\n";
  (*out) << "use_raw_features " << (model.use_raw_features() ? 1 : 0)
         << "\n";
  (*out) << "global ";
  LIGHTMIRM_RETURN_NOT_OK(WriteParams(model.predictor().global.params(), out));
  (*out) << "per_env " << model.predictor().per_env.size() << "\n";
  for (const auto& [env, lr_model] : model.predictor().per_env) {
    (*out) << env << " ";
    LIGHTMIRM_RETURN_NOT_OK(WriteParams(lr_model.params(), out));
  }
  LIGHTMIRM_RETURN_NOT_OK(gbdt::SaveBooster(model.booster(), out));
  // The score reference trails the booster so files written before
  // references existed (and readers that predate them) stay compatible:
  // old readers stop after the booster, and Parse treats end-of-stream as
  // "no reference".
  return model.score_reference().WriteTo(out);
}

Status SaveModelToFile(const GbdtLrModel& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return SaveModel(model, &out);
}

Result<GbdtLrModel> LoadModel(std::istream* in) {
  std::string line;
  if (!std::getline(*in, line) || Trim(line) != kMagic) {
    return Status::InvalidArgument("bad model header");
  }
  if (!std::getline(*in, line)) return Status::IoError("truncated model");
  Method method = Method::kErm;
  {
    const std::string_view trimmed = Trim(line);
    if (trimmed.rfind("method ", 0) != 0) {
      return Status::InvalidArgument("expected method line");
    }
    LIGHTMIRM_ASSIGN_OR_RETURN(
        method, MethodFromName(std::string(trimmed.substr(7))));
  }
  bool use_raw = false;
  {
    if (!std::getline(*in, line)) return Status::IoError("truncated model");
    std::istringstream ss(line);
    std::string tag;
    int value = 0;
    if (!(ss >> tag >> value) || tag != "use_raw_features") {
      return Status::InvalidArgument("expected use_raw_features line");
    }
    use_raw = value != 0;
  }
  train::TrainedPredictor predictor;
  {
    std::string tag;
    (*in) >> tag;
    if (tag != "global") return Status::InvalidArgument("expected global");
    in->get();  // consume the space
    LIGHTMIRM_ASSIGN_OR_RETURN(linear::ParamVec params, ReadParams(in));
    predictor.global.set_params(std::move(params));
  }
  {
    if (!std::getline(*in, line)) return Status::IoError("truncated model");
    std::istringstream ss(line);
    std::string tag;
    size_t count = 0;
    if (!(ss >> tag >> count) || tag != "per_env") {
      return Status::InvalidArgument("expected per_env line");
    }
    for (size_t i = 0; i < count; ++i) {
      int env = 0;
      (*in) >> env;
      in->get();
      LIGHTMIRM_ASSIGN_OR_RETURN(linear::ParamVec params, ReadParams(in));
      linear::LogisticModel lr_model;
      lr_model.set_params(std::move(params));
      predictor.per_env.emplace(env, std::move(lr_model));
    }
  }
  LIGHTMIRM_ASSIGN_OR_RETURN(gbdt::Booster booster, gbdt::LoadBooster(in));
  // A loaded leaf model must round-trip through the compiled serving
  // representation: reject persisted LR tables whose width disagrees with
  // the booster's leaf-column layout before reassembly, so corruption
  // surfaces as a load error instead of a serving error.
  if (!use_raw) {
    const size_t want = static_cast<size_t>(booster.TotalLeaves()) + 1;
    if (predictor.global.params().size() != want) {
      return Status::InvalidArgument(StrFormat(
          "model file inconsistent: global LR table has %zu params but the "
          "booster encodes %d leaf columns (+1 bias)",
          predictor.global.params().size(), booster.TotalLeaves()));
    }
    for (const auto& [env, lr_model] : predictor.per_env) {
      if (lr_model.params().size() != want) {
        return Status::InvalidArgument(StrFormat(
            "model file inconsistent: env %d LR table has %zu params but "
            "the booster encodes %d leaf columns (+1 bias)",
            env, lr_model.params().size(), booster.TotalLeaves()));
      }
    }
  }
  LIGHTMIRM_ASSIGN_OR_RETURN(obs::ScoreReference reference,
                             obs::ScoreReference::Parse(in));
  LIGHTMIRM_ASSIGN_OR_RETURN(
      GbdtLrModel model,
      GbdtLrModel::FromParts(
          std::make_shared<const gbdt::Booster>(std::move(booster)),
          std::move(predictor), method, use_raw));
  model.set_score_reference(std::move(reference));
  return model;
}

Result<GbdtLrModel> LoadModelFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return LoadModel(&in);
}

}  // namespace lightmirm::core
