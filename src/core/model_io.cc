#include "core/model_io.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "gbdt/serialize.h"

namespace lightmirm::core {
namespace {

constexpr const char* kMagic = "lightmirm-model-v1";

// Unbuffered pass-through streambuf that counts consumed newlines, so a
// parse failure anywhere in the model file — including deep inside the
// booster or the trailing score_reference section — can report the section
// it died in and roughly where. No get area is installed, so every read
// funnels through uflow() and the count stays exact for both getline and
// formatted extraction.
class LineCountingBuf : public std::streambuf {
 public:
  explicit LineCountingBuf(std::streambuf* source) : source_(source) {}

  /// 1-based line the next read starts on.
  size_t line() const { return lines_consumed_ + 1; }

 protected:
  int_type underflow() override { return source_->sgetc(); }

  int_type uflow() override {
    const int_type c = source_->sbumpc();
    if (c == '\n') ++lines_consumed_;
    return c;
  }

  int_type pbackfail(int_type c) override {
    if (c == '\n' || (c == traits_type::eof() && source_->sgetc() == '\n')) {
      // A putback would make the next uflow double-count the newline.
      if (lines_consumed_ > 0) --lines_consumed_;
    }
    return c == traits_type::eof() ? source_->sungetc()
                                   : source_->sputbackc(
                                         static_cast<char>(c));
  }

 private:
  std::streambuf* source_;
  size_t lines_consumed_ = 0;
};

// Wraps a sub-parser failure with the section it happened in and the line
// the reader had reached, preserving the status code.
Status SectionError(const char* section, const LineCountingBuf& buf,
                    const Status& status) {
  return Status(status.code(),
                StrFormat("model parse error in section '%s' near line "
                          "%zu: %s",
                          section, buf.line(), status.message().c_str()));
}

Status WriteParams(const linear::ParamVec& params, std::ostream* out) {
  (*out) << params.size();
  for (double p : params) (*out) << " " << FormatG17(p);
  (*out) << "\n";
  return out->good() ? Status::OK() : Status::IoError("write failed");
}

Result<linear::ParamVec> ReadParams(std::istream* in) {
  std::string line;
  if (!std::getline(*in, line)) {
    return Status::IoError("truncated model: missing params");
  }
  std::istringstream ss(line);
  size_t count = 0;
  if (!(ss >> count)) return Status::InvalidArgument("bad params header");
  linear::ParamVec params(count);
  for (size_t i = 0; i < count; ++i) {
    if (!(ss >> params[i])) {
      return Status::InvalidArgument("truncated params line");
    }
  }
  return params;
}

}  // namespace

Status SaveModel(const GbdtLrModel& model, std::ostream* out) {
  (*out) << kMagic << "\n";
  (*out) << "method " << MethodName(model.method()) << "\n";
  (*out) << "use_raw_features " << (model.use_raw_features() ? 1 : 0)
         << "\n";
  (*out) << "global ";
  LIGHTMIRM_RETURN_NOT_OK(WriteParams(model.predictor().global.params(), out));
  (*out) << "per_env " << model.predictor().per_env.size() << "\n";
  for (const auto& [env, lr_model] : model.predictor().per_env) {
    (*out) << env << " ";
    LIGHTMIRM_RETURN_NOT_OK(WriteParams(lr_model.params(), out));
  }
  LIGHTMIRM_RETURN_NOT_OK(gbdt::SaveBooster(model.booster(), out));
  // The score reference trails the booster so files written before
  // references existed (and readers that predate them) stay compatible:
  // old readers stop after the booster, and Parse treats end-of-stream as
  // "no reference".
  return model.score_reference().WriteTo(out);
}

Status SaveModelToFile(const GbdtLrModel& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return SaveModel(model, &out);
}

Result<GbdtLrModel> LoadModel(std::istream* in) {
  // Every section reads through a line-counting view of the stream, so a
  // failure reports both the section it was parsing and the line reached.
  LineCountingBuf buf(in->rdbuf());
  std::istream counted(&buf);
  std::string line;
  if (!std::getline(counted, line) || Trim(line) != kMagic) {
    return SectionError("header", buf,
                        Status::InvalidArgument("bad model header"));
  }
  if (!std::getline(counted, line)) {
    return SectionError("method", buf, Status::IoError("truncated model"));
  }
  Method method = Method::kErm;
  {
    const std::string_view trimmed = Trim(line);
    if (trimmed.rfind("method ", 0) != 0) {
      return SectionError("method", buf,
                          Status::InvalidArgument("expected method line"));
    }
    Result<Method> parsed = MethodFromName(std::string(trimmed.substr(7)));
    if (!parsed.ok()) return SectionError("method", buf, parsed.status());
    method = *parsed;
  }
  bool use_raw = false;
  {
    if (!std::getline(counted, line)) {
      return SectionError("use_raw_features", buf,
                          Status::IoError("truncated model"));
    }
    std::istringstream ss(line);
    std::string tag;
    int value = 0;
    if (!(ss >> tag >> value) || tag != "use_raw_features") {
      return SectionError(
          "use_raw_features", buf,
          Status::InvalidArgument("expected use_raw_features line"));
    }
    use_raw = value != 0;
  }
  train::TrainedPredictor predictor;
  {
    std::string tag;
    counted >> tag;
    if (tag != "global") {
      return SectionError("global_params", buf,
                          Status::InvalidArgument("expected global"));
    }
    counted.get();  // consume the space
    Result<linear::ParamVec> params = ReadParams(&counted);
    if (!params.ok()) {
      return SectionError("global_params", buf, params.status());
    }
    predictor.global.set_params(std::move(params).value());
  }
  {
    if (!std::getline(counted, line)) {
      return SectionError("per_env_params", buf,
                          Status::IoError("truncated model"));
    }
    std::istringstream ss(line);
    std::string tag;
    size_t count = 0;
    if (!(ss >> tag >> count) || tag != "per_env") {
      return SectionError("per_env_params", buf,
                          Status::InvalidArgument("expected per_env line"));
    }
    for (size_t i = 0; i < count; ++i) {
      int env = 0;
      counted >> env;
      counted.get();
      Result<linear::ParamVec> params = ReadParams(&counted);
      if (!params.ok()) {
        return SectionError("per_env_params", buf, params.status());
      }
      linear::LogisticModel lr_model;
      lr_model.set_params(std::move(params).value());
      predictor.per_env.emplace(env, std::move(lr_model));
    }
  }
  Result<gbdt::Booster> booster_result = gbdt::LoadBooster(&counted);
  if (!booster_result.ok()) {
    return SectionError("booster", buf, booster_result.status());
  }
  gbdt::Booster booster = std::move(booster_result).value();
  // A loaded leaf model must round-trip through the compiled serving
  // representation: reject persisted LR tables whose width disagrees with
  // the booster's leaf-column layout before reassembly, so corruption
  // surfaces as a load error instead of a serving error.
  if (!use_raw) {
    const size_t want = static_cast<size_t>(booster.TotalLeaves()) + 1;
    if (predictor.global.params().size() != want) {
      return Status::InvalidArgument(StrFormat(
          "model file inconsistent: global LR table has %zu params but the "
          "booster encodes %d leaf columns (+1 bias)",
          predictor.global.params().size(), booster.TotalLeaves()));
    }
    for (const auto& [env, lr_model] : predictor.per_env) {
      if (lr_model.params().size() != want) {
        return Status::InvalidArgument(StrFormat(
            "model file inconsistent: env %d LR table has %zu params but "
            "the booster encodes %d leaf columns (+1 bias)",
            env, lr_model.params().size(), booster.TotalLeaves()));
      }
    }
  }
  Result<obs::ScoreReference> reference_result =
      obs::ScoreReference::Parse(&counted);
  if (!reference_result.ok()) {
    return SectionError("score_reference", buf, reference_result.status());
  }
  obs::ScoreReference reference = std::move(reference_result).value();
  LIGHTMIRM_ASSIGN_OR_RETURN(
      GbdtLrModel model,
      GbdtLrModel::FromParts(
          std::make_shared<const gbdt::Booster>(std::move(booster)),
          std::move(predictor), method, use_raw));
  model.set_score_reference(std::move(reference));
  return model;
}

Result<GbdtLrModel> LoadModelFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return LoadModel(&in);
}

}  // namespace lightmirm::core
