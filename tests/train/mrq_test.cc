#include "train/mrq.h"

#include <gtest/gtest.h>

#include <cmath>

namespace lightmirm::train {
namespace {

TEST(MrqTest, CreateValidates) {
  EXPECT_FALSE(MetaLossReplayQueue::Create(0, 0.9).ok());
  EXPECT_FALSE(MetaLossReplayQueue::Create(5, 0.0).ok());
  EXPECT_FALSE(MetaLossReplayQueue::Create(5, 1.5).ok());
  EXPECT_TRUE(MetaLossReplayQueue::Create(5, 1.0).ok());
  EXPECT_TRUE(MetaLossReplayQueue::Create(1, 0.5).ok());
}

TEST(MrqTest, StartsAtZero) {
  const MetaLossReplayQueue q = *MetaLossReplayQueue::Create(4, 0.9);
  EXPECT_DOUBLE_EQ(q.ReplayedLoss(), 0.0);
  for (double v : q.values()) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_EQ(q.pushes(), 0u);
}

TEST(MrqTest, PushShiftsForward) {
  MetaLossReplayQueue q = *MetaLossReplayQueue::Create(3, 0.9);
  q.Push(1.0);
  q.Push(2.0);
  q.Push(3.0);
  q.Push(4.0);  // 1.0 falls out
  EXPECT_DOUBLE_EQ(q.values()[0], 2.0);
  EXPECT_DOUBLE_EQ(q.values()[1], 3.0);
  EXPECT_DOUBLE_EQ(q.values()[2], 4.0);
  EXPECT_EQ(q.pushes(), 4u);
}

TEST(MrqTest, ReplayedLossMatchesEq9) {
  // R = sum_i gamma^{L-i} H_i with i = 1..L (newest has weight 1).
  MetaLossReplayQueue q = *MetaLossReplayQueue::Create(3, 0.5);
  q.Push(8.0);   // slot 3 -> will shift
  q.Push(4.0);
  q.Push(2.0);
  // values (oldest..newest) = {8, 4, 2}; weights = {0.25, 0.5, 1}.
  EXPECT_DOUBLE_EQ(q.ReplayedLoss(), 0.25 * 8.0 + 0.5 * 4.0 + 1.0 * 2.0);
}

TEST(MrqTest, SlotWeightsAreGammaPowers) {
  const MetaLossReplayQueue q = *MetaLossReplayQueue::Create(4, 0.7);
  EXPECT_NEAR(q.SlotWeight(4), 1.0, 1e-12);
  EXPECT_NEAR(q.SlotWeight(3), 0.7, 1e-12);
  EXPECT_NEAR(q.SlotWeight(1), std::pow(0.7, 3), 1e-12);
}

TEST(MrqTest, LengthOneDegeneratesToLastLoss) {
  // The paper: L=1 makes LightMIRM degrade into single-sample meta-IRM.
  MetaLossReplayQueue q = *MetaLossReplayQueue::Create(1, 0.9);
  q.Push(5.0);
  EXPECT_DOUBLE_EQ(q.ReplayedLoss(), 5.0);
  q.Push(7.0);
  EXPECT_DOUBLE_EQ(q.ReplayedLoss(), 7.0);
}

TEST(MrqTest, GammaOneWeighsAllSlotsEqually) {
  MetaLossReplayQueue q = *MetaLossReplayQueue::Create(3, 1.0);
  q.Push(1.0);
  q.Push(2.0);
  q.Push(3.0);
  EXPECT_DOUBLE_EQ(q.ReplayedLoss(), 6.0);
}

TEST(MrqTest, PartialFillTreatsMissingAsZero) {
  MetaLossReplayQueue q = *MetaLossReplayQueue::Create(4, 0.5);
  q.Push(8.0);
  // values = {0,0,0,8}; only newest contributes.
  EXPECT_DOUBLE_EQ(q.ReplayedLoss(), 8.0);
}

// Property: replayed loss is monotone in each pushed value.
class MrqMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(MrqMonotoneTest, IncreasingAnyLossRaisesReplay) {
  const double gamma = GetParam();
  for (size_t bump_at = 0; bump_at < 4; ++bump_at) {
    MetaLossReplayQueue base = *MetaLossReplayQueue::Create(4, gamma);
    MetaLossReplayQueue bumped = *MetaLossReplayQueue::Create(4, gamma);
    for (size_t i = 0; i < 4; ++i) {
      base.Push(1.0);
      bumped.Push(i == bump_at ? 2.0 : 1.0);
    }
    EXPECT_GT(bumped.ReplayedLoss(), base.ReplayedLoss());
  }
}

INSTANTIATE_TEST_SUITE_P(Gammas, MrqMonotoneTest,
                         ::testing::Values(0.1, 0.5, 0.9, 1.0));

}  // namespace
}  // namespace lightmirm::train
