#include "train/step_timer.h"

#include <gtest/gtest.h>

#include "train/trainer.h"

namespace lightmirm::train {
namespace {

StepTimer MakeTimer() {
  StepTimer timer;
  timer.Add("loading data", 0.001);
  timer.Add("transforming the format", 0.01);
  timer.Add(kStepInnerOptimization, 0.1);
  timer.Add(kStepInnerOptimization, 0.3);
  timer.Add(kStepMetaLosses, 1.0);
  timer.Add(kStepBackward, 0.2);
  timer.Add(kStepEpoch, 2.0);
  return timer;
}

TEST(SummarizeStepTimesTest, ReportsMeansTotalsAndFractions) {
  const auto rows = SummarizeStepTimes(MakeTimer());
  ASSERT_EQ(rows.size(), 6u);  // five steps + whole epoch
  // Inner optimization: two calls of 0.1 and 0.3.
  const auto& inner = rows[2];
  EXPECT_EQ(inner.step, kStepInnerOptimization);
  EXPECT_DOUBLE_EQ(inner.mean_seconds, 0.2);
  EXPECT_DOUBLE_EQ(inner.total_seconds, 0.4);
  EXPECT_DOUBLE_EQ(inner.fraction_of_total, 0.2);
  // Epoch row.
  const auto& epoch = rows.back();
  EXPECT_EQ(epoch.step, kStepEpoch);
  EXPECT_DOUBLE_EQ(epoch.total_seconds, 2.0);
  EXPECT_DOUBLE_EQ(epoch.fraction_of_total, 1.0);
}

TEST(SummarizeStepTimesTest, MissingStepsAreZero) {
  StepTimer timer;
  timer.Add(kStepEpoch, 1.0);
  const auto rows = SummarizeStepTimes(timer);
  EXPECT_DOUBLE_EQ(rows[0].total_seconds, 0.0);   // loading data
  EXPECT_DOUBLE_EQ(rows[0].fraction_of_total, 0.0);
}

TEST(SummarizeStepTimesTest, NoEpochMeansZeroFractions) {
  StepTimer timer;
  timer.Add(kStepMetaLosses, 1.0);
  const auto rows = SummarizeStepTimes(timer);
  for (const auto& row : rows) {
    EXPECT_DOUBLE_EQ(row.fraction_of_total, 0.0);
  }
}

TEST(FormatStepTimeTableTest, SideBySideColumns) {
  const StepTimer a = MakeTimer();
  StepTimer b = MakeTimer();
  b.Add(kStepMetaLosses, 9.0);
  const std::string table =
      FormatStepTimeTable({"meta-IRM", "LightMIRM"}, {&a, &b});
  EXPECT_NE(table.find("meta-IRM"), std::string::npos);
  EXPECT_NE(table.find("LightMIRM"), std::string::npos);
  EXPECT_NE(table.find(kStepMetaLosses), std::string::npos);
  EXPECT_NE(table.find(kStepEpoch), std::string::npos);
  // Six data rows + header.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 7);
}

}  // namespace
}  // namespace lightmirm::train
