// Cross-validation of the analytic second-order MAML path against the
// autodiff engine: the closed-form (I - alpha*H) Jacobian-vector products
// used by meta-IRM must agree with differentiating through the inner step
// with the tape. This is the key correctness bridge between the two
// substrates (DESIGN.md §2).
#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/ops.h"
#include "common/rng.h"
#include "linear/loss.h"
#include "train/meta_irm.h"
#include "train/trainer.h"

namespace lightmirm::train {
namespace {

struct TinyProblem {
  Matrix raw;               // n x d
  std::vector<int> labels;
  std::vector<int> envs;
  linear::FeatureMatrix x;
  autodiff::Tensor x_tensor;        // n x (d+1) with bias column
  autodiff::Tensor y_tensor;        // n x 1
  std::vector<autodiff::Tensor> env_x;  // per-env slices
  std::vector<autodiff::Tensor> env_y;
};

TinyProblem MakeTiny(size_t n, size_t d, size_t envs_count, uint64_t seed) {
  Rng rng(seed);
  TinyProblem p;
  p.raw = Matrix(n, d);
  p.labels.resize(n);
  p.envs.resize(n);
  for (size_t i = 0; i < n; ++i) {
    p.envs[i] = static_cast<int>(i % envs_count);
    double z = 0.2 * p.envs[i];
    for (size_t j = 0; j < d; ++j) {
      p.raw.At(i, j) = rng.Normal();
      z += 0.6 * p.raw.At(i, j);
    }
    p.labels[i] = rng.Bernoulli(linear::Sigmoid(z)) ? 1 : 0;
  }
  p.x = linear::FeatureMatrix::FromDense(p.raw);
  // Autodiff views with an explicit all-ones bias column.
  p.x_tensor = autodiff::Tensor(n, d + 1);
  p.y_tensor = autodiff::Tensor(n, 1);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) p.x_tensor.At(i, j) = p.raw.At(i, j);
    p.x_tensor.At(i, d) = 1.0;
    p.y_tensor.At(i, 0) = p.labels[i];
  }
  for (size_t e = 0; e < envs_count; ++e) {
    std::vector<size_t> rows;
    for (size_t i = 0; i < n; ++i) {
      if (p.envs[i] == static_cast<int>(e)) rows.push_back(i);
    }
    autodiff::Tensor ex(rows.size(), d + 1), ey(rows.size(), 1);
    for (size_t r = 0; r < rows.size(); ++r) {
      for (size_t j = 0; j <= d; ++j) {
        ex.At(r, j) = p.x_tensor.At(rows[r], j);
      }
      ey.At(r, 0) = p.y_tensor.At(rows[r], 0);
    }
    p.env_x.push_back(std::move(ex));
    p.env_y.push_back(std::move(ey));
  }
  return p;
}

autodiff::Var EnvLoss(const autodiff::Tensor& x, const autodiff::Tensor& y,
                      const autodiff::Var& w) {
  using namespace autodiff;
  return BceWithLogits(MatMul(Var::Constant(x), w), Var::Constant(y));
}

TEST(MamlAutodiffTest, AnalyticMetaGradientMatchesTape) {
  const size_t d = 3, num_envs = 3;
  TinyProblem p = MakeTiny(90, d, num_envs, 11);
  const auto data =
      TrainData::Create(&p.x, &p.labels, &p.envs, 5);
  ASSERT_TRUE(data.ok());

  Rng prng(12);
  linear::ParamVec params(d + 1);
  for (double& v : params) v = prng.Normal(0.0, 0.3);

  MetaIrmOptions options;
  options.inner_lr = 0.4;
  options.lambda = 1.3;
  options.second_order = true;
  MetaStepOutput analytic;
  Rng rng(13);
  ASSERT_TRUE(MetaIrmOuterGradient(data->Context(), *data, params, options,
                                   &rng, StepTelemetry{}, &analytic)
                  .ok());

  // Same objective via the autodiff tape: theta column vector (d+1) x 1.
  using namespace autodiff;
  Tensor w0(d + 1, 1);
  for (size_t j = 0; j <= d; ++j) w0.At(j, 0) = params[j];
  const Var w = Var::Param(w0);

  std::vector<Var> meta_losses;
  for (size_t m = 0; m < num_envs; ++m) {
    const Var inner = EnvLoss(p.env_x[m], p.env_y[m], w);
    const auto inner_grad = *Grad(inner, {w}, {.create_graph = true});
    const Var adapted =
        Sub(w, MulScalar(inner_grad[0], options.inner_lr));
    Var meta = Var::Scalar(0.0);
    for (size_t other = 0; other < num_envs; ++other) {
      if (other == m) continue;
      meta = Add(meta, EnvLoss(p.env_x[other], p.env_y[other], adapted));
    }
    meta_losses.push_back(meta);
  }
  Var total = Var::Scalar(0.0);
  for (const Var& ml : meta_losses) total = Add(total, ml);
  const Var sigma = StdDev(StackScalars(meta_losses), 0.0);
  total = Add(total, MulScalar(sigma, options.lambda));
  const auto tape_grad = *Grad(total, {w});

  // Meta losses agree.
  for (size_t m = 0; m < num_envs; ++m) {
    EXPECT_NEAR(meta_losses[m].value().ScalarValue(),
                analytic.meta_losses[m], 1e-9);
  }
  // Gradients agree to numerical precision.
  for (size_t j = 0; j <= d; ++j) {
    EXPECT_NEAR(tape_grad[0].value().At(j, 0), analytic.outer_grad[j], 1e-8)
        << "param " << j;
  }
}

TEST(MamlAutodiffTest, FirstOrderApproximationDiffersFromTape) {
  const size_t d = 2, num_envs = 2;
  TinyProblem p = MakeTiny(60, d, num_envs, 14);
  const auto data = TrainData::Create(&p.x, &p.labels, &p.envs, 5);
  ASSERT_TRUE(data.ok());
  linear::ParamVec params = {0.3, -0.5, 0.1};
  MetaIrmOptions options;
  options.inner_lr = 0.8;  // large alpha magnifies the Hessian term
  options.lambda = 0.0;
  options.second_order = false;
  MetaStepOutput first_order;
  Rng rng(15);
  ASSERT_TRUE(MetaIrmOuterGradient(data->Context(), *data, params, options,
                                   &rng, StepTelemetry{}, &first_order)
                  .ok());
  options.second_order = true;
  MetaStepOutput second_order;
  ASSERT_TRUE(MetaIrmOuterGradient(data->Context(), *data, params, options,
                                   &rng, StepTelemetry{}, &second_order)
                  .ok());
  double gap = 0.0;
  for (size_t j = 0; j < params.size(); ++j) {
    gap += std::abs(first_order.outer_grad[j] - second_order.outer_grad[j]);
  }
  EXPECT_GT(gap, 1e-4);
}

}  // namespace
}  // namespace lightmirm::train
