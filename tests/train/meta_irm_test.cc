#include "train/meta_irm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/roc.h"
#include "test_util.h"

namespace lightmirm::train {
namespace {

using testing::MakeEasyProblem;
using testing::MakeIrmProblem;

TrainerOptions FastOptions() {
  TrainerOptions options;
  options.epochs = 120;
  options.optimizer.learning_rate = 0.15;
  return options;
}

TEST(PopulationStdDevTest, MatchesEq7) {
  // std of {1, 3} (population) = 1.
  EXPECT_DOUBLE_EQ(PopulationStdDev({1.0, 3.0}), 1.0);
  EXPECT_DOUBLE_EQ(PopulationStdDev({2.0, 2.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(PopulationStdDev({}), 0.0);
  EXPECT_NEAR(PopulationStdDev({1.0, 2.0, 3.0, 4.0}), std::sqrt(1.25),
              1e-12);
}

TEST(OuterCoefficientsTest, DerivativeOfSumPlusLambdaSigma) {
  const std::vector<double> losses = {1.0, 3.0};
  // sigma = 1, mean = 2; c_m = 1 + lambda*(R_m - 2)/(2*1).
  const auto coeffs = OuterCoefficients(losses, 2.0);
  EXPECT_DOUBLE_EQ(coeffs[0], 1.0 + 2.0 * (-1.0) / 2.0);
  EXPECT_DOUBLE_EQ(coeffs[1], 1.0 + 2.0 * (1.0) / 2.0);
  // Zero sigma or lambda -> plain ones.
  const auto flat = OuterCoefficients({2.0, 2.0}, 5.0);
  EXPECT_DOUBLE_EQ(flat[0], 1.0);
  const auto no_lambda = OuterCoefficients(losses, 0.0);
  EXPECT_DOUBLE_EQ(no_lambda[1], 1.0);
}

TEST(MetaIrmGradientTest, MatchesFiniteDifferences) {
  const auto p = MakeIrmProblem({0.9, 0.6, 0.3}, 30, 1);
  const TrainData data = p.Data(5);
  const linear::LossContext ctx = data.Context();
  Rng prng(2);
  linear::ParamVec params(3);
  for (double& v : params) v = prng.Normal(0.0, 0.3);

  MetaIrmOptions options;
  options.inner_lr = 0.3;
  options.lambda = 1.7;
  options.sample_size = 0;
  options.second_order = true;
  MetaStepOutput step;
  Rng rng(3);
  ASSERT_TRUE(MetaIrmOuterGradient(ctx, data, params, options, &rng,
                                   StepTelemetry{}, &step)
                  .ok());
  const double h = 1e-6;
  for (size_t j = 0; j < params.size(); ++j) {
    linear::ParamVec plus = params, minus = params;
    plus[j] += h;
    minus[j] -= h;
    const double fd = (MetaIrmObjective(ctx, data, plus, options) -
                       MetaIrmObjective(ctx, data, minus, options)) /
                      (2.0 * h);
    EXPECT_NEAR(step.outer_grad[j], fd, 1e-5 * (1.0 + std::abs(fd)))
        << "param " << j;
  }
}

TEST(MetaIrmGradientTest, FirstOrderDropsHessianTerm) {
  const auto p = MakeIrmProblem({0.9, 0.4}, 40, 4);
  const TrainData data = p.Data(5);
  const linear::LossContext ctx = data.Context();
  linear::ParamVec params = {0.5, -0.2, 0.1};
  MetaIrmOptions second, first;
  second.inner_lr = first.inner_lr = 0.5;
  first.second_order = false;
  MetaStepOutput s2, s1;
  Rng r1(5), r2(5);
  ASSERT_TRUE(
      MetaIrmOuterGradient(ctx, data, params, second, &r1, StepTelemetry{},
                           &s2)
          .ok());
  ASSERT_TRUE(
      MetaIrmOuterGradient(ctx, data, params, first, &r2, StepTelemetry{},
                           &s1)
          .ok());
  // Same meta-losses, different gradients (Hessian correction).
  for (size_t t = 0; t < s1.meta_losses.size(); ++t) {
    EXPECT_DOUBLE_EQ(s1.meta_losses[t], s2.meta_losses[t]);
  }
  double diff = 0.0;
  for (size_t j = 0; j < params.size(); ++j) {
    diff += std::abs(s1.outer_grad[j] - s2.outer_grad[j]);
  }
  EXPECT_GT(diff, 1e-6);
}

TEST(MetaIrmTrainerTest, LearnsAndPrefersInvariantFeature) {
  // Spurious agreement varies wildly across envs; meta-IRM should place
  // relatively more weight on the invariant feature than ERM does.
  const auto p = MakeIrmProblem({0.95, 0.8, 0.2, 0.05}, 400, 6);
  const TrainData data = p.Data();
  MetaIrmOptions meta;
  meta.inner_lr = 0.3;
  meta.lambda = 1.0;
  MetaIrmTrainer trainer(FastOptions(), meta);
  const TrainedPredictor predictor = *trainer.Fit(data);
  EXPECT_GT(testing::InvariantWeightShare(predictor.global), 0.6);
  const auto scores = predictor.Predict(p.x, nullptr);
  EXPECT_GT(*metrics::Auc(p.labels, scores), 0.75);
}

TEST(MetaIrmTrainerTest, SampledVariantRunsAndNames) {
  const auto p = MakeIrmProblem({0.9, 0.6, 0.3}, 100, 7);
  const TrainData data = p.Data();
  MetaIrmOptions meta;
  meta.sample_size = 2;
  TrainerOptions options = FastOptions();
  options.epochs = 30;
  MetaIrmTrainer trainer(options, meta);
  EXPECT_EQ(trainer.Name(), "meta-IRM(2)");
  EXPECT_TRUE(trainer.Fit(data).ok());
  MetaIrmTrainer complete(options, MetaIrmOptions{});
  EXPECT_EQ(complete.Name(), "meta-IRM");
}

TEST(MetaIrmTrainerTest, RejectsBadConfig) {
  const auto p = MakeIrmProblem({0.9, 0.6}, 50, 8);
  const TrainData data = p.Data();
  MetaIrmOptions meta;
  meta.sample_size = 2;  // only 1 other env available
  EXPECT_FALSE(MetaIrmTrainer(FastOptions(), meta).Fit(data).ok());
  meta.sample_size = 0;
  meta.inner_lr = 0.0;
  EXPECT_FALSE(MetaIrmTrainer(FastOptions(), meta).Fit(data).ok());
}

TEST(MetaIrmTrainerTest, NeedsAtLeastTwoEnvironments) {
  const auto p = MakeEasyProblem(1, 100, 9);
  const TrainData data = p.Data();
  EXPECT_FALSE(
      MetaIrmTrainer(FastOptions(), MetaIrmOptions{}).Fit(data).ok());
}

TEST(MetaIrmTrainerTest, DeterministicGivenSeed) {
  const auto p = MakeIrmProblem({0.8, 0.4}, 100, 10);
  const TrainData data = p.Data();
  TrainerOptions options = FastOptions();
  options.epochs = 20;
  MetaIrmOptions meta;
  meta.sample_size = 1;
  const TrainedPredictor a = *MetaIrmTrainer(options, meta).Fit(data);
  const TrainedPredictor b = *MetaIrmTrainer(options, meta).Fit(data);
  for (size_t j = 0; j < a.global.params().size(); ++j) {
    EXPECT_DOUBLE_EQ(a.global.params()[j], b.global.params()[j]);
  }
}

}  // namespace
}  // namespace lightmirm::train
