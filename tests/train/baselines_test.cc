// Tests for the baseline trainers: ERM + fine-tuning, Up-sampling,
// Group DRO, V-REx, IRMv1.
#include <gtest/gtest.h>

#include <cmath>

#include "linear/loss.h"
#include "metrics/roc.h"
#include "test_util.h"
#include "train/fine_tune.h"
#include "train/group_dro.h"
#include "train/irmv1.h"
#include "train/up_sampling.h"
#include "train/vrex.h"

namespace lightmirm::train {
namespace {

using testing::MakeEasyProblem;
using testing::MakeIrmProblem;

TrainerOptions FastOptions() {
  TrainerOptions options;
  options.epochs = 150;
  options.optimizer.learning_rate = 0.2;
  return options;
}

TEST(FineTuneTest, ProducesPerEnvOverrides) {
  const auto p = MakeEasyProblem(3, 150, 1);
  FineTuneTrainer trainer(FastOptions(), FineTuneOptions{});
  const TrainData data = p.Data();
  const TrainedPredictor predictor = *trainer.Fit(data);
  EXPECT_EQ(predictor.per_env.size(), 3u);
  const auto scores = predictor.Predict(p.x, &p.envs);
  EXPECT_GT(*metrics::Auc(p.labels, scores), 0.80);
}

TEST(FineTuneTest, AdaptsToEnvironmentSpecificPattern) {
  // Environment 1's spurious pattern is strong and *locally* valid;
  // fine-tuning on env 1 should pick up more of feature 1 than the pooled
  // model does.
  const auto p = MakeIrmProblem({0.5, 0.95}, 400, 2);
  FineTuneOptions ft;
  ft.fine_tune_epochs = 80;
  ft.proximal = 0.0;
  FineTuneTrainer trainer(FastOptions(), ft);
  const TrainData data = p.Data();
  const TrainedPredictor predictor = *trainer.Fit(data);
  const double pooled_w1 = predictor.global.params()[1];
  const double env1_w1 = predictor.per_env.at(1).params()[1];
  EXPECT_GT(env1_w1, pooled_w1);
}

TEST(UpSamplingTest, EquivalentWeightsHelpSmallEnvironment) {
  // env 0 large with flipped spurious feature, env 1 small with aligned
  // pattern: up-weighting env 1 shifts the learned weight on feature 1 up.
  const auto big = MakeIrmProblem({0.2, 0.9}, 100, 3);
  // Rebuild with imbalanced env sizes.
  Rng rng(4);
  const size_t n0 = 900, n1 = 100;
  Matrix m(n0 + n1, 2);
  std::vector<int> labels(n0 + n1), envs(n0 + n1);
  for (size_t i = 0; i < n0 + n1; ++i) {
    const bool in_big = i < n0;
    envs[i] = in_big ? 0 : 1;
    const double causal = rng.Normal();
    const int y = rng.Bernoulli(linear::Sigmoid(2.0 * causal)) ? 1 : 0;
    const double agree = in_big ? 0.2 : 0.9;
    const double sign = rng.Bernoulli(agree) ? 1.0 : -1.0;
    m.At(i, 0) = causal + 0.3 * rng.Normal();
    m.At(i, 1) = sign * (y == 1 ? 1.0 : -1.0) + 0.5 * rng.Normal();
    labels[i] = y;
  }
  const auto x = linear::FeatureMatrix::FromDense(std::move(m));
  const TrainData data =
      std::move(TrainData::Create(&x, &labels, &envs, 10)).value();

  ErmTrainer erm(FastOptions());
  UpSamplingTrainer up(FastOptions(), UpSamplingTrainerOptions{1.0, 0.0});
  const double w_erm = (*erm.Fit(data)).global.params()[1];
  const double w_up = (*up.Fit(data)).global.params()[1];
  EXPECT_GT(w_up, w_erm);
  (void)big;
}

TEST(UpSamplingTest, RejectsBadFraction) {
  const auto p = MakeEasyProblem(2, 50, 5);
  UpSamplingTrainer trainer(FastOptions(), UpSamplingTrainerOptions{0.0, 0});
  const TrainData data = p.Data();
  EXPECT_FALSE(trainer.Fit(data).ok());
}

TEST(GroupDroTest, FocusesOnWorstGroup) {
  // The pooled ERM optimum favors env 0 (its spurious pattern is much
  // stronger), leaving env 1 with a higher risk; Group DRO's worst-group
  // weighting should shrink that risk gap.
  const auto p = MakeIrmProblem({0.95, 0.55}, 400, 6);
  const TrainData data = p.Data();
  GroupDroOptions dro;
  dro.group_step = 0.3;
  dro.l2_multiplier = 1.0;
  GroupDroTrainer trainer(FastOptions(), dro);
  const TrainedPredictor predictor = *trainer.Fit(data);
  // Per-env risks at the solution should be closer together than ERM's.
  ErmTrainer erm(FastOptions());
  const TrainedPredictor erm_pred = *erm.Fit(data);
  const linear::LossContext ctx = data.Context();
  auto risk_gap = [&](const TrainedPredictor& pr) {
    const double r0 =
        linear::BceLoss(ctx, data.env_rows[0], pr.global.params());
    const double r1 =
        linear::BceLoss(ctx, data.env_rows[1], pr.global.params());
    return std::abs(r0 - r1);
  };
  EXPECT_LT(risk_gap(predictor), risk_gap(erm_pred) + 1e-6);
}

TEST(VRexTest, ReducesCrossEnvRiskVariance) {
  const auto p = MakeIrmProblem({0.95, 0.05}, 400, 7);
  const TrainData data = p.Data();
  const linear::LossContext ctx = data.Context();
  VRexTrainer vrex(FastOptions(), VRexOptions{20.0});
  ErmTrainer erm(FastOptions());
  auto variance = [&](const TrainedPredictor& pr) {
    std::vector<double> risks;
    for (const auto& rows : data.env_rows) {
      risks.push_back(linear::BceLoss(ctx, rows, pr.global.params()));
    }
    double mean = 0.0;
    for (double r : risks) mean += r / risks.size();
    double var = 0.0;
    for (double r : risks) var += (r - mean) * (r - mean) / risks.size();
    return var;
  };
  EXPECT_LT(variance(*vrex.Fit(data)), variance(*erm.Fit(data)));
}

TEST(IrmV1Test, PenaltyPushesWeightOffSpuriousFeature) {
  // Feature 1 helps with opposite optimal scaling per env; the IRMv1
  // penalty should shrink its weight relative to ERM.
  const auto p = MakeIrmProblem({0.95, 0.3}, 600, 8);
  const TrainData data = p.Data();
  IrmV1Options irm;
  irm.penalty_weight = 50.0;
  IrmV1Trainer trainer(FastOptions(), irm);
  ErmTrainer erm(FastOptions());
  const double w_irm = std::abs((*trainer.Fit(data)).global.params()[1]);
  const double w_erm = std::abs((*erm.Fit(data)).global.params()[1]);
  EXPECT_LT(w_irm, w_erm);
}

TEST(IrmV1Test, ZeroPenaltyMatchesErmDirection) {
  const auto p = MakeEasyProblem(2, 200, 9);
  const TrainData data = p.Data();
  IrmV1Options irm;
  irm.penalty_weight = 0.0;
  const TrainedPredictor a = *IrmV1Trainer(FastOptions(), irm).Fit(data);
  const TrainedPredictor b = *ErmTrainer(FastOptions()).Fit(data);
  // Not identical (different gradient aggregation) but strongly aligned.
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t j = 0; j < a.global.params().size(); ++j) {
    dot += a.global.params()[j] * b.global.params()[j];
    na += a.global.params()[j] * a.global.params()[j];
    nb += b.global.params()[j] * b.global.params()[j];
  }
  EXPECT_GT(dot / std::sqrt(na * nb), 0.95);
}

}  // namespace
}  // namespace lightmirm::train
