#include "train/trainer.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace lightmirm::train {
namespace {

using testing::MakeEasyProblem;

TEST(TrainDataTest, GroupsByEnvironment) {
  const auto p = MakeEasyProblem(3, 40, 1);
  const TrainData data = p.Data(10);
  EXPECT_EQ(data.NumTasks(), 3u);
  EXPECT_EQ(data.all_rows.size(), 120u);
  size_t total = 0;
  for (size_t t = 0; t < data.NumTasks(); ++t) {
    total += data.env_rows[t].size();
    for (size_t r : data.env_rows[t]) {
      EXPECT_EQ((*data.labels).size(), 120u);
      EXPECT_EQ(p.envs[r], data.env_ids[t]);
    }
  }
  EXPECT_EQ(total, 120u);
}

TEST(TrainDataTest, ErrorsWhenNoEnvironmentQualifies) {
  const auto p = MakeEasyProblem(3, 40, 3);
  auto result = TrainData::Create(&p.x, &p.labels, &p.envs, 1000);
  EXPECT_FALSE(result.ok());
}

TEST(TrainDataTest, RejectsInconsistentInputs) {
  const auto p = MakeEasyProblem(2, 10, 4);
  std::vector<int> short_labels = {0, 1};
  EXPECT_FALSE(TrainData::Create(&p.x, &short_labels, &p.envs, 1).ok());
  EXPECT_FALSE(TrainData::Create(nullptr, &p.labels, &p.envs, 1).ok());
  std::vector<int> bad_envs = p.envs;
  bad_envs[0] = -1;
  EXPECT_FALSE(TrainData::Create(&p.x, &p.labels, &bad_envs, 1).ok());
}

TEST(TrainDataTest, IncludeRowsRestrictsTraining) {
  const auto p = MakeEasyProblem(2, 30, 5);
  std::vector<size_t> subset;
  for (size_t i = 0; i < 30; ++i) subset.push_back(i);
  const auto data =
      TrainData::Create(&p.x, &p.labels, &p.envs, 5, nullptr, &subset);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->all_rows.size(), 30u);
  size_t task_total = 0;
  for (const auto& rows : data->env_rows) task_total += rows.size();
  EXPECT_EQ(task_total, 30u);
  std::vector<size_t> bad = {10000};
  EXPECT_FALSE(
      TrainData::Create(&p.x, &p.labels, &p.envs, 1, nullptr, &bad).ok());
}

TEST(TrainedPredictorTest, PerEnvOverridesApply) {
  TrainedPredictor predictor;
  predictor.global = linear::LogisticModel(1);
  predictor.global.set_params({0.0, 0.0});  // always 0.5
  linear::LogisticModel biased(1);
  biased.set_params({0.0, 100.0});  // always ~1.0
  predictor.per_env.emplace(1, biased);

  Matrix m(2, 1, {0.0, 0.0});
  const linear::FeatureMatrix x = linear::FeatureMatrix::FromDense(m);
  const std::vector<int> envs = {0, 1};
  const auto scores = predictor.Predict(x, &envs);
  EXPECT_DOUBLE_EQ(scores[0], 0.5);
  EXPECT_GT(scores[1], 0.99);
  // Without envs, the global model is used everywhere.
  const auto global_scores = predictor.Predict(x, nullptr);
  EXPECT_DOUBLE_EQ(global_scores[1], 0.5);
}

TEST(BestModelTrackerTest, KeepsBestSnapshot) {
  TrainerOptions options;
  int call = 0;
  const std::vector<double> scores = {0.1, 0.9, 0.4};
  options.validation_fn = [&](const linear::LogisticModel&) {
    return scores[call++];
  };
  BestModelTracker tracker(&options);
  linear::LogisticModel model(1);
  model.set_params({1.0, 0.0});
  EXPECT_TRUE(tracker.Observe(model));
  model.set_params({2.0, 0.0});
  EXPECT_TRUE(tracker.Observe(model));  // best (0.9)
  model.set_params({3.0, 0.0});
  EXPECT_TRUE(tracker.Observe(model));
  tracker.Finalize(&model);
  EXPECT_DOUBLE_EQ(model.params()[0], 2.0);
  EXPECT_DOUBLE_EQ(tracker.best_score(), 0.9);
}

TEST(BestModelTrackerTest, EarlyStopAfterPatience) {
  TrainerOptions options;
  options.early_stop_patience = 2;
  options.validation_fn = [](const linear::LogisticModel& m) {
    return -m.params()[0];  // decreasing scores
  };
  BestModelTracker tracker(&options);
  linear::LogisticModel model(1);
  model.set_params({1.0, 0.0});
  EXPECT_TRUE(tracker.Observe(model));
  model.set_params({2.0, 0.0});
  EXPECT_TRUE(tracker.Observe(model));  // 1 since best
  model.set_params({3.0, 0.0});
  EXPECT_FALSE(tracker.Observe(model));  // patience exhausted
}

TEST(BestModelTrackerTest, NoValidationIsPassThrough) {
  TrainerOptions options;
  BestModelTracker tracker(&options);
  linear::LogisticModel model(1);
  model.set_params({5.0, 1.0});
  EXPECT_TRUE(tracker.Observe(model));
  linear::LogisticModel other(1);
  other.set_params({7.0, 2.0});
  tracker.Finalize(&other);  // must not overwrite
  EXPECT_DOUBLE_EQ(other.params()[0], 7.0);
}

}  // namespace
}  // namespace lightmirm::train
