#include "train/meta_irm_nn.h"

#include <gtest/gtest.h>

#include "metrics/roc.h"
#include "test_util.h"

namespace lightmirm::train {
namespace {

struct DenseProblem {
  Matrix features;
  std::vector<int> labels;
  std::vector<int> envs;
};

DenseProblem MakeDense(const std::vector<double>& agree, size_t rows_per_env,
                       uint64_t seed) {
  Rng rng(seed);
  const size_t n = rows_per_env * agree.size();
  DenseProblem p{Matrix(n, 2), std::vector<int>(n), std::vector<int>(n)};
  for (size_t i = 0; i < n; ++i) {
    const size_t e = i % agree.size();
    p.envs[i] = static_cast<int>(e);
    const double causal = rng.Normal();
    const int y = rng.Bernoulli(linear::Sigmoid(2.0 * causal)) ? 1 : 0;
    const double sign = rng.Bernoulli(agree[e]) ? 1.0 : -1.0;
    p.features.At(i, 0) = causal + 0.3 * rng.Normal();
    p.features.At(i, 1) = sign * (y == 1 ? 1.0 : -1.0) + 0.5 * rng.Normal();
    p.labels[i] = y;
  }
  return p;
}

TEST(NnEnvDataTest, BuildsPerEnvTensors) {
  const DenseProblem p = MakeDense({0.9, 0.5, 0.2}, 60, 1);
  const NnEnvData data =
      std::move(NnEnvData::Build(p.features, p.labels, p.envs, 20)).value();
  EXPECT_EQ(data.env_x.size(), 3u);
  EXPECT_EQ(data.env_x[0].rows(), 60u);
  EXPECT_EQ(data.env_x[0].cols(), 2u);
  EXPECT_EQ(data.env_y[1].rows(), 60u);
}

TEST(NnEnvDataTest, RejectsBadInputs) {
  const DenseProblem p = MakeDense({0.9, 0.5}, 30, 2);
  std::vector<int> short_labels = {0, 1};
  EXPECT_FALSE(
      NnEnvData::Build(p.features, short_labels, p.envs, 10).ok());
  EXPECT_FALSE(NnEnvData::Build(p.features, p.labels, p.envs, 1000).ok());
}

TEST(NnMetaIrmTest, LearnsNonlinearlySeparableData) {
  const DenseProblem p = MakeDense({0.5, 0.5}, 400, 3);
  const NnEnvData data =
      std::move(NnEnvData::Build(p.features, p.labels, p.envs, 20)).value();
  NnMetaIrmOptions options;
  options.epochs = 80;
  options.hidden = {8};
  options.light = true;
  const NnPredictor predictor =
      std::move(TrainNnMetaIrm(data, 2, options)).value();

  // Score the pooled data.
  autodiff::Tensor all(p.features.rows(), 2);
  for (size_t i = 0; i < p.features.rows(); ++i) {
    all.At(i, 0) = p.features.At(i, 0);
    all.At(i, 1) = p.features.At(i, 1);
  }
  const std::vector<double> scores = predictor.Predict(all);
  EXPECT_GT(*metrics::Auc(p.labels, scores), 0.75);
}

TEST(NnMetaIrmTest, CompleteObjectiveAlsoTrains) {
  const DenseProblem p = MakeDense({0.9, 0.2}, 250, 4);
  const NnEnvData data =
      std::move(NnEnvData::Build(p.features, p.labels, p.envs, 20)).value();
  NnMetaIrmOptions options;
  options.epochs = 60;
  options.light = false;  // full meta-IRM
  options.hidden = {};    // degenerate to logistic regression
  const NnPredictor predictor =
      std::move(TrainNnMetaIrm(data, 2, options)).value();
  autodiff::Tensor all(p.features.rows(), 2);
  for (size_t i = 0; i < p.features.rows(); ++i) {
    all.At(i, 0) = p.features.At(i, 0);
    all.At(i, 1) = p.features.At(i, 1);
  }
  EXPECT_GT(*metrics::Auc(p.labels, predictor.Predict(all)), 0.70);
}

TEST(NnMetaIrmTest, RejectsBadConfig) {
  const DenseProblem p = MakeDense({0.9, 0.2}, 50, 5);
  const NnEnvData data =
      std::move(NnEnvData::Build(p.features, p.labels, p.envs, 20)).value();
  NnMetaIrmOptions options;
  options.inner_lr = 0.0;
  EXPECT_FALSE(TrainNnMetaIrm(data, 2, options).ok());
  options = NnMetaIrmOptions{};
  EXPECT_FALSE(TrainNnMetaIrm(data, 99, options).ok());  // wrong width
}

}  // namespace
}  // namespace lightmirm::train
