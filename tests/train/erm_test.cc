#include "train/erm.h"

#include <gtest/gtest.h>

#include "metrics/roc.h"
#include "test_util.h"

namespace lightmirm::train {
namespace {

using testing::MakeEasyProblem;

TrainerOptions FastOptions() {
  TrainerOptions options;
  options.epochs = 150;
  options.optimizer.learning_rate = 0.2;
  return options;
}

TEST(ErmTrainerTest, LearnsSeparableProblem) {
  const auto p = MakeEasyProblem(3, 300, 1);
  ErmTrainer trainer(FastOptions());
  const TrainData data = p.Data();
  const TrainedPredictor predictor = *trainer.Fit(data);
  const auto scores = predictor.Predict(p.x, nullptr);
  EXPECT_GT(*metrics::Auc(p.labels, scores), 0.80);
  // The invariant feature must carry positive weight.
  EXPECT_GT(predictor.global.params()[0], 0.5);
}

TEST(ErmTrainerTest, DeterministicGivenSeed) {
  const auto p = MakeEasyProblem(2, 200, 2);
  ErmTrainer a(FastOptions()), b(FastOptions());
  const TrainData data = p.Data();
  const TrainedPredictor pa = *a.Fit(data);
  const TrainedPredictor pb = *b.Fit(data);
  for (size_t j = 0; j < pa.global.params().size(); ++j) {
    EXPECT_DOUBLE_EQ(pa.global.params()[j], pb.global.params()[j]);
  }
}

TEST(ErmTrainerTest, L2ShrinksWeights) {
  const auto p = MakeEasyProblem(2, 300, 3);
  TrainerOptions weak = FastOptions(), strong = FastOptions();
  weak.l2 = 0.0;
  strong.l2 = 5.0;
  const TrainData data = p.Data();
  const TrainedPredictor pw = *ErmTrainer(weak).Fit(data);
  const TrainedPredictor ps = *ErmTrainer(strong).Fit(data);
  EXPECT_LT(std::abs(ps.global.params()[0]),
            std::abs(pw.global.params()[0]));
}

TEST(ErmTrainerTest, EpochCallbackFiresEveryEpoch) {
  const auto p = MakeEasyProblem(2, 50, 4);
  TrainerOptions options = FastOptions();
  options.epochs = 7;
  int calls = 0;
  options.epoch_callback = [&](int epoch, const linear::LogisticModel&) {
    EXPECT_EQ(epoch, calls);
    ++calls;
  };
  const TrainData data = p.Data();
  (void)*ErmTrainer(options).Fit(data);
  EXPECT_EQ(calls, 7);
}

TEST(ErmTrainerTest, TimerRecordsSteps) {
  const auto p = MakeEasyProblem(2, 50, 5);
  StepTimer timer;
  TrainerOptions options = FastOptions();
  options.epochs = 5;
  options.timer = &timer;
  const TrainData data = p.Data();
  (void)*ErmTrainer(options).Fit(data);
  EXPECT_EQ(timer.Count(kStepBackward), 5);
  EXPECT_EQ(timer.Count(kStepEpoch), 5);
}

TEST(ErmTrainerTest, ValidationSnapshotBeatsOrMatchesFinal) {
  const auto p = MakeEasyProblem(2, 200, 6);
  const auto holdout = MakeEasyProblem(2, 200, 7);
  TrainerOptions options = FastOptions();
  options.validation_fn = [&](const linear::LogisticModel& model) {
    const auto scores = model.Predict(holdout.x);
    return *metrics::Auc(holdout.labels, scores);
  };
  const TrainData data = p.Data();
  const TrainedPredictor snap = *ErmTrainer(options).Fit(data);
  TrainerOptions plain = FastOptions();
  const TrainedPredictor last = *ErmTrainer(plain).Fit(data);
  const double snap_auc =
      *metrics::Auc(holdout.labels, snap.Predict(holdout.x, nullptr));
  const double last_auc =
      *metrics::Auc(holdout.labels, last.Predict(holdout.x, nullptr));
  EXPECT_GE(snap_auc + 1e-9, last_auc);
}

TEST(ErmTrainerTest, EarlyStoppingCutsEpochs) {
  const auto p = MakeEasyProblem(2, 100, 8);
  TrainerOptions options = FastOptions();
  options.epochs = 500;
  options.early_stop_patience = 3;
  int epochs_run = 0;
  options.epoch_callback = [&](int, const linear::LogisticModel&) {
    ++epochs_run;
  };
  options.validation_fn = [](const linear::LogisticModel&) { return 0.0; };
  const TrainData data = p.Data();
  (void)*ErmTrainer(options).Fit(data);
  EXPECT_LT(epochs_run, 10);
}

}  // namespace
}  // namespace lightmirm::train
