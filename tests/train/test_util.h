// Shared fixtures for the trainer tests: a small multi-environment problem
// with one invariant feature (same relationship everywhere) and one
// spurious feature whose sign flips across environments — the canonical
// IRM testbed.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "linear/feature_matrix.h"
#include "linear/logistic.h"
#include "train/trainer.h"

namespace lightmirm::train::testing {

struct EnvProblem {
  linear::FeatureMatrix x;
  std::vector<int> labels;
  std::vector<int> envs;

  TrainData Data(size_t min_env_rows = 10) const {
    auto built = TrainData::Create(&x, &labels, &envs, min_env_rows);
    return std::move(built).value();
  }
};

/// Feature 0 is invariant (coefficient +2 in every environment); feature 1
/// agrees with the label with probability `agree[e]` in environment e.
inline EnvProblem MakeIrmProblem(const std::vector<double>& agree,
                                 size_t rows_per_env, uint64_t seed) {
  Rng rng(seed);
  const size_t num_envs = agree.size();
  const size_t n = rows_per_env * num_envs;
  Matrix m(n, 2);
  EnvProblem p;
  p.labels.resize(n);
  p.envs.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t e = i % num_envs;
    p.envs[i] = static_cast<int>(e);
    const double causal = rng.Normal();
    const int y = rng.Bernoulli(linear::Sigmoid(2.0 * causal)) ? 1 : 0;
    const double sign = rng.Bernoulli(agree[e]) ? 1.0 : -1.0;
    m.At(i, 0) = causal + 0.3 * rng.Normal();
    m.At(i, 1) = sign * (y == 1 ? 1.0 : -1.0) + 0.5 * rng.Normal();
    p.labels[i] = y;
  }
  p.x = linear::FeatureMatrix::FromDense(std::move(m));
  return p;
}

/// A simple single-feature separable problem (all environments identical).
inline EnvProblem MakeEasyProblem(size_t num_envs, size_t rows_per_env,
                                  uint64_t seed) {
  return MakeIrmProblem(std::vector<double>(num_envs, 0.5), rows_per_env,
                        seed);
}

/// Fraction of held-out rows the model ranks correctly (AUC-like proxy):
/// correlation of score with the invariant feature's class.
inline double InvariantWeightShare(const linear::LogisticModel& model) {
  const double w0 = std::abs(model.params()[0]);
  const double w1 = std::abs(model.params()[1]);
  return w0 / (w0 + w1 + 1e-12);
}

}  // namespace lightmirm::train::testing
