#include "train/light_mirm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/roc.h"
#include "test_util.h"
#include "train/meta_irm.h"
#include "train/mrq.h"

namespace lightmirm::train {
namespace {

using testing::MakeEasyProblem;
using testing::MakeIrmProblem;

TrainerOptions FastOptions() {
  TrainerOptions options;
  options.epochs = 120;
  options.optimizer.learning_rate = 0.15;
  return options;
}

TEST(LightMirmGradientTest, SampledGradientIsUnbiasedStructure) {
  // With mrq_length = 1 and a fresh queue, the replayed meta-loss equals
  // the sampled environment's loss exactly, and the outer gradient matches
  // the meta-IRM gradient computed on that single sampled environment.
  const auto p = MakeIrmProblem({0.9, 0.5, 0.2}, 40, 1);
  const TrainData data = p.Data(5);
  const linear::LossContext ctx = data.Context();
  linear::ParamVec params = {0.4, -0.3, 0.1};

  LightMirmOptions options;
  options.mrq_length = 1;
  options.gamma = 1.0;
  options.lambda = 0.0;
  options.inner_lr = 0.25;
  std::vector<MetaLossReplayQueue> queues(
      data.NumTasks(), *MetaLossReplayQueue::Create(1, 1.0));
  MetaStepOutput out;
  Rng rng(7);
  ASSERT_TRUE(LightMirmOuterGradient(ctx, data, params, options, &rng,
                                     StepTelemetry{}, &queues, &out)
                  .ok());
  // Each queue now holds exactly the sampled loss.
  for (size_t m = 0; m < data.NumTasks(); ++m) {
    EXPECT_DOUBLE_EQ(queues[m].ReplayedLoss(), out.meta_losses[m]);
    EXPECT_GT(out.meta_losses[m], 0.0);
  }
  // Gradient is finite and nonzero.
  double norm = 0.0;
  for (double g : out.outer_grad) norm += g * g;
  EXPECT_GT(norm, 0.0);
  EXPECT_TRUE(std::isfinite(norm));
}

TEST(LightMirmGradientTest, ReplayedLossUsesHistory) {
  const auto p = MakeIrmProblem({0.9, 0.5}, 40, 2);
  const TrainData data = p.Data(5);
  const linear::LossContext ctx = data.Context();
  linear::ParamVec params = {0.1, 0.1, 0.0};
  LightMirmOptions options;
  options.mrq_length = 3;
  options.gamma = 0.5;
  std::vector<MetaLossReplayQueue> queues(
      data.NumTasks(), *MetaLossReplayQueue::Create(3, 0.5));
  MetaStepOutput out;
  Rng rng(8);
  // After three iterations the queues are full; the replayed loss must be
  // the decayed sum of the three pushes.
  std::vector<std::vector<double>> pushed(data.NumTasks());
  for (int it = 0; it < 3; ++it) {
    ASSERT_TRUE(LightMirmOuterGradient(ctx, data, params, options, &rng,
                                       StepTelemetry{}, &queues, &out)
                    .ok());
    for (size_t m = 0; m < data.NumTasks(); ++m) {
      pushed[m].push_back(queues[m].values().back());
    }
  }
  for (size_t m = 0; m < data.NumTasks(); ++m) {
    const double expected = 0.25 * pushed[m][0] + 0.5 * pushed[m][1] +
                            1.0 * pushed[m][2];
    EXPECT_NEAR(out.meta_losses[m], expected, 1e-12);
  }
}

TEST(LightMirmTrainerTest, LearnsAndPrefersInvariantFeature) {
  const auto p = MakeIrmProblem({0.95, 0.8, 0.2, 0.05}, 400, 3);
  const TrainData data = p.Data();
  LightMirmOptions light;
  light.inner_lr = 0.3;
  LightMirmTrainer trainer(FastOptions(), light);
  EXPECT_EQ(trainer.Name(), "LightMIRM");
  const TrainedPredictor predictor = *trainer.Fit(data);
  EXPECT_GT(testing::InvariantWeightShare(predictor.global), 0.6);
  const auto scores = predictor.Predict(p.x, nullptr);
  EXPECT_GT(*metrics::Auc(p.labels, scores), 0.75);
}

TEST(LightMirmTrainerTest, MuchCheaperThanCompleteMetaIrm) {
  // Count loss-kernel work via the step timer: the meta-loss step of
  // complete meta-IRM scales with M-1 sampled envs per task, LightMIRM
  // with 1 — so its meta-loss time must be well below meta-IRM's.
  const auto p = MakeIrmProblem(std::vector<double>(10, 0.7), 300, 4);
  const TrainData data = p.Data();
  TrainerOptions options = FastOptions();
  options.epochs = 15;
  StepTimer meta_timer, light_timer;
  options.timer = &meta_timer;
  (void)*MetaIrmTrainer(options, MetaIrmOptions{}).Fit(data);
  options.timer = &light_timer;
  (void)*LightMirmTrainer(options, LightMirmOptions{}).Fit(data);
  EXPECT_LT(light_timer.TotalSeconds(kStepMetaLosses) * 3.0,
            meta_timer.TotalSeconds(kStepMetaLosses));
}

TEST(LightMirmTrainerTest, RejectsBadConfig) {
  const auto p = MakeIrmProblem({0.9, 0.5}, 50, 5);
  const TrainData data = p.Data();
  LightMirmOptions light;
  light.inner_lr = -1.0;
  EXPECT_FALSE(LightMirmTrainer(FastOptions(), light).Fit(data).ok());
  light = LightMirmOptions{};
  light.mrq_length = 0;
  EXPECT_FALSE(LightMirmTrainer(FastOptions(), light).Fit(data).ok());
  light = LightMirmOptions{};
  light.gamma = 0.0;
  EXPECT_FALSE(LightMirmTrainer(FastOptions(), light).Fit(data).ok());
}

TEST(LightMirmTrainerTest, NeedsTwoEnvironments) {
  const auto p = MakeEasyProblem(1, 80, 6);
  const TrainData data = p.Data();
  EXPECT_FALSE(
      LightMirmTrainer(FastOptions(), LightMirmOptions{}).Fit(data).ok());
}

TEST(LightMirmTrainerTest, DeterministicGivenSeed) {
  const auto p = MakeIrmProblem({0.8, 0.4, 0.6}, 100, 7);
  const TrainData data = p.Data();
  TrainerOptions options = FastOptions();
  options.epochs = 25;
  const TrainedPredictor a =
      *LightMirmTrainer(options, LightMirmOptions{}).Fit(data);
  const TrainedPredictor b =
      *LightMirmTrainer(options, LightMirmOptions{}).Fit(data);
  for (size_t j = 0; j < a.global.params().size(); ++j) {
    EXPECT_DOUBLE_EQ(a.global.params()[j], b.global.params()[j]);
  }
}

// Property sweep over MRQ lengths: training stays finite and functional.
class LightMirmLengthTest : public ::testing::TestWithParam<size_t> {};

TEST_P(LightMirmLengthTest, TrainsWithAnyQueueLength) {
  const auto p = MakeIrmProblem({0.9, 0.3, 0.6}, 150, 8);
  const TrainData data = p.Data();
  TrainerOptions options = FastOptions();
  options.epochs = 40;
  LightMirmOptions light;
  light.mrq_length = GetParam();
  const TrainedPredictor predictor =
      *LightMirmTrainer(options, light).Fit(data);
  const auto scores = predictor.Predict(p.x, nullptr);
  EXPECT_GT(*metrics::Auc(p.labels, scores), 0.65);
}

INSTANTIATE_TEST_SUITE_P(Lengths, LightMirmLengthTest,
                         ::testing::Values(1, 2, 5, 9));

}  // namespace
}  // namespace lightmirm::train
