#include "train/env_inference.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "train/erm.h"

namespace lightmirm::train {
namespace {

using testing::MakeIrmProblem;

TEST(EnvInferenceTest, RecoversLatentEnvironmentStructure) {
  // Latent environments with opposite spurious patterns, where the aligned
  // pattern dominates the pool (2:1), so the reference ERM model exploits
  // the spurious feature (the EIIL precondition). Rows of the minority
  // pattern then carry systematically different residual signatures, and
  // inference should separate the two pattern groups far better than
  // chance.
  const auto p = MakeIrmProblem({0.95, 0.95, 0.05}, 500, 1);
  const TrainData data = p.Data();
  TrainerOptions options;
  options.epochs = 150;
  options.optimizer.learning_rate = 0.2;
  const TrainedPredictor erm = *ErmTrainer(options).Fit(data);
  ASSERT_GT(erm.global.params()[1], 0.1);  // reference leans on spurious

  const InferredEnvs inferred =
      std::move(InferEnvironments(data.Context(), data.all_rows,
                                  erm.global.params(), {}))
          .value();
  ASSERT_EQ(inferred.hard_assignment.size(), data.all_rows.size());

  // Agreement with the true *pattern group* (envs {0,1} vs {2}), up to
  // label switching.
  size_t match = 0;
  for (size_t k = 0; k < data.all_rows.size(); ++k) {
    const int group = p.envs[data.all_rows[k]] == 2 ? 1 : 0;
    if (inferred.hard_assignment[k] == group) ++match;
  }
  double rate = static_cast<double>(match) /
                static_cast<double>(data.all_rows.size());
  rate = std::max(rate, 1.0 - rate);
  EXPECT_GT(rate, 0.62);
  EXPECT_GT(inferred.penalty, 0.0);
}

TEST(EnvInferenceTest, SoftAssignmentsAreProbabilities) {
  const auto p = MakeIrmProblem({0.8, 0.3}, 200, 2);
  const TrainData data = p.Data();
  TrainerOptions options;
  options.epochs = 60;
  const TrainedPredictor erm = *ErmTrainer(options).Fit(data);
  const InferredEnvs inferred =
      std::move(InferEnvironments(data.Context(), data.all_rows,
                                  erm.global.params(), {}))
          .value();
  for (double q : inferred.soft_assignment) {
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1.0);
  }
}

TEST(EnvInferenceTest, DeterministicGivenSeed) {
  const auto p = MakeIrmProblem({0.9, 0.2}, 150, 3);
  const TrainData data = p.Data();
  TrainerOptions options;
  options.epochs = 60;
  const TrainedPredictor erm = *ErmTrainer(options).Fit(data);
  EnvInferenceOptions inference;
  inference.seed = 77;
  const InferredEnvs a =
      std::move(InferEnvironments(data.Context(), data.all_rows,
                                  erm.global.params(), inference))
          .value();
  const InferredEnvs b =
      std::move(InferEnvironments(data.Context(), data.all_rows,
                                  erm.global.params(), inference))
          .value();
  for (size_t k = 0; k < a.soft_assignment.size(); k += 11) {
    EXPECT_DOUBLE_EQ(a.soft_assignment[k], b.soft_assignment[k]);
  }
}

TEST(EnvInferenceTest, RejectsBadInputs) {
  const auto p = MakeIrmProblem({0.9, 0.2}, 50, 4);
  const TrainData data = p.Data();
  linear::ParamVec params(3, 0.0);
  EXPECT_FALSE(InferEnvironments(data.Context(), {}, params, {}).ok());
  EnvInferenceOptions bad;
  bad.steps = 0;
  EXPECT_FALSE(
      InferEnvironments(data.Context(), data.all_rows, params, bad).ok());
}

}  // namespace
}  // namespace lightmirm::train
