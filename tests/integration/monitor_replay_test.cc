// End-to-end online monitoring: train a model on 2016-2019, then stream
// data through the serving path with a ModelHealthMonitor attached.
//   * replaying held-in 2019 data keeps every monitor OK (no false alarms);
//   * replaying 2020 fires ALERTs for Hubei (Fig 11 COVID shock) and
//     Guangdong (Fig 10 share shift + the 2020 spurious-pattern flip);
//   * snapshots are identical at any thread count;
//   * predictions are bit-identical with monitoring attached or detached.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/gbdt_lr_model.h"
#include "data/env_split.h"
#include "data/loan_generator.h"
#include "obs/monitor.h"
#include "obs/replay.h"

namespace lightmirm {
namespace {

data::LoanGeneratorOptions GeneratorOptions(int rows_per_year) {
  data::LoanGeneratorOptions gen;
  gen.rows_per_year = rows_per_year;
  gen.seed = 7;
  return gen;
}

core::GbdtLrOptions FastModelOptions() {
  core::GbdtLrOptions options;
  options.booster.num_trees = 15;
  options.booster.tree.max_leaves = 8;
  options.trainer.epochs = 40;
  options.min_env_rows = 60;
  return options;
}

// Monitor tuning for this replay's scale: one half-year gives a mid-sized
// province only a few hundred rows, so the evaluation gates admit windows
// from ~150 rows and the thresholds leave room for the sampling noise of
// estimates that small (the defaults assume production windows of
// thousands of rows).
obs::MonitorOptions ReplayMonitorOptions() {
  obs::MonitorOptions options;
  options.window = 2048;
  options.min_rows = 150;
  options.min_labeled = 150;
  options.fairness_min_labeled = 300;
  options.psi = {0.15, 0.3, 0.2};
  options.drift_ks = {0.15, 0.25, 0.2};
  options.default_rate_rise = {0.6, 1.2, 0.2};
  options.auc_drop = {0.1, 0.18, 0.2};
  options.ks_drop = {0.25, 0.4, 0.2};
  return options;
}

// Rows of `full` with the given year.
data::Dataset YearSlice(const data::Dataset& full, int year) {
  std::vector<size_t> rows;
  for (size_t i = 0; i < full.NumRows(); ++i) {
    if (full.years()[i] == year) rows.push_back(i);
  }
  auto slice = full.Select(rows);
  EXPECT_TRUE(slice.ok());
  return std::move(*slice);
}

TEST(MonitorReplayTest, QuietOn2019AlertingOn2020Shifts) {
  data::LoanGenerator generator(GeneratorOptions(6000));
  auto full = generator.Generate();
  ASSERT_TRUE(full.ok());
  auto split = data::TemporalSplit(*full, 2020);
  ASSERT_TRUE(split.ok());
  auto model = core::GbdtLrModel::Train(split->train, core::Method::kErm,
                                        FastModelOptions());
  ASSERT_TRUE(model.ok());
  ASSERT_FALSE(model->score_reference().empty());
  const auto session = model->scoring_session();
  ASSERT_NE(session, nullptr);

  const int guangdong = *data::LoanGenerator::ProvinceIndex("Guangdong");
  const int hubei = *data::LoanGenerator::ProvinceIndex("Hubei");

  // Stationary stream: the last training year. Nothing may leave OK.
  {
    auto monitor = obs::ModelHealthMonitor::Create(model->score_reference(),
                                                   ReplayMonitorOptions());
    ASSERT_TRUE(monitor.ok());
    auto replay = obs::ReplayStream(*session, monitor->get(),
                                    YearSlice(*full, 2019));
    ASSERT_TRUE(replay.ok());
    ASSERT_EQ(replay->periods.size(), 2u);  // H1 + H2
    EXPECT_EQ(replay->WorstOverall(), obs::AlertState::kOk);
  }

  // Shifted stream: the 2020 test year.
  {
    auto monitor = obs::ModelHealthMonitor::Create(model->score_reference(),
                                                   ReplayMonitorOptions());
    ASSERT_TRUE(monitor.ok());
    auto replay = obs::ReplayStream(*session, monitor->get(),
                                    YearSlice(*full, 2020));
    ASSERT_TRUE(replay.ok());
    ASSERT_EQ(replay->periods.size(), 2u);
    EXPECT_TRUE(replay->ReachedAlert(hubei));      // Fig 11 COVID shock
    EXPECT_TRUE(replay->ReachedAlert(guangdong));  // Fig 10 + spurious flip
    EXPECT_EQ(replay->WorstOverall(), obs::AlertState::kAlert);
    // The COVID shock lands in H1-2020 specifically.
    const auto& h1 = replay->periods.front();
    ASSERT_EQ(h1.year, 2020);
    ASSERT_EQ(h1.half, 1);
    ASSERT_EQ(h1.health.per_env.count(hubei), 1u);
    EXPECT_EQ(h1.health.per_env.at(hubei).overall, obs::AlertState::kAlert);
  }
}

void ExpectSameSignal(const obs::SignalHealth& a, const obs::SignalHealth& b) {
  EXPECT_EQ(a.evaluated, b.evaluated);
  EXPECT_EQ(a.state, b.state);
  EXPECT_EQ(a.value, b.value);  // bit-identical, not approximately equal
}

void ExpectSameWindow(const obs::WindowHealth& a, const obs::WindowHealth& b) {
  EXPECT_EQ(a.seen, b.seen);
  EXPECT_EQ(a.window_rows, b.window_rows);
  EXPECT_EQ(a.labeled_rows, b.labeled_rows);
  EXPECT_EQ(a.default_rate, b.default_rate);
  EXPECT_EQ(a.auc, b.auc);
  EXPECT_EQ(a.ks, b.ks);
  ExpectSameSignal(a.psi, b.psi);
  ExpectSameSignal(a.drift_ks, b.drift_ks);
  ExpectSameSignal(a.default_rate_rise, b.default_rate_rise);
  ExpectSameSignal(a.auc_drop, b.auc_drop);
  ExpectSameSignal(a.ks_drop, b.ks_drop);
  ExpectSameSignal(a.calibration, b.calibration);
  EXPECT_EQ(a.overall, b.overall);
}

TEST(MonitorReplayTest, SnapshotsAreThreadCountInvariant) {
  data::LoanGenerator generator(GeneratorOptions(2000));
  auto full = generator.Generate();
  ASSERT_TRUE(full.ok());
  auto split = data::TemporalSplit(*full, 2020);
  ASSERT_TRUE(split.ok());
  auto model = core::GbdtLrModel::Train(split->train, core::Method::kErm,
                                        FastModelOptions());
  ASSERT_TRUE(model.ok());
  const auto session = model->scoring_session();
  ASSERT_NE(session, nullptr);

  std::vector<obs::ReplayResult> runs;
  for (const int threads : {1, 2, 8}) {
    ScopedDefaultThreads guard(threads);
    auto monitor = obs::ModelHealthMonitor::Create(model->score_reference(),
                                                   ReplayMonitorOptions());
    ASSERT_TRUE(monitor.ok());
    auto replay =
        obs::ReplayStream(*session, monitor->get(), YearSlice(*full, 2020));
    ASSERT_TRUE(replay.ok());
    runs.push_back(std::move(*replay));
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].periods.size(), runs[0].periods.size());
    for (size_t p = 0; p < runs[0].periods.size(); ++p) {
      const obs::ReplayPeriod& a = runs[0].periods[p];
      const obs::ReplayPeriod& b = runs[r].periods[p];
      EXPECT_EQ(a.year, b.year);
      EXPECT_EQ(a.half, b.half);
      EXPECT_EQ(a.rows, b.rows);
      ExpectSameWindow(a.health.global, b.health.global);
      ASSERT_EQ(a.health.per_env.size(), b.health.per_env.size());
      for (const auto& [env, health] : a.health.per_env) {
        ASSERT_EQ(b.health.per_env.count(env), 1u);
        ExpectSameWindow(health, b.health.per_env.at(env));
      }
      ExpectSameSignal(a.health.fairness_gap, b.health.fairness_gap);
      EXPECT_EQ(a.health.fairness_envs, b.health.fairness_envs);
      EXPECT_EQ(a.health.overall, b.health.overall);
    }
  }
}

TEST(MonitorReplayTest, MonitoringNeverChangesPredictions) {
  data::LoanGenerator generator(GeneratorOptions(2000));
  auto full = generator.Generate();
  ASSERT_TRUE(full.ok());
  auto split = data::TemporalSplit(*full, 2020);
  ASSERT_TRUE(split.ok());
  auto model = core::GbdtLrModel::Train(split->train, core::Method::kErm,
                                        FastModelOptions());
  ASSERT_TRUE(model.ok());
  const auto session = model->scoring_session();
  ASSERT_NE(session, nullptr);
  ASSERT_EQ(session->monitor(), nullptr);

  auto detached = model->Predict(split->test);
  ASSERT_TRUE(detached.ok());

  // StartMonitoring attaches the monitor to the live serving path: every
  // Predict now also feeds the drift windows (unlabeled).
  auto monitor = model->StartMonitoring(ReplayMonitorOptions());
  ASSERT_TRUE(monitor.ok());
  ASSERT_EQ(session->monitor(), *monitor);
  auto attached = model->Predict(split->test);
  ASSERT_TRUE(attached.ok());
  EXPECT_EQ(*detached, *attached);  // bit-identical scores

  // The monitor really saw the scored rows.
  const obs::HealthSnapshot snapshot = (*monitor)->Evaluate();
  EXPECT_EQ(snapshot.global.seen, split->test.NumRows());
  EXPECT_TRUE(snapshot.global.psi.evaluated);
  EXPECT_FALSE(snapshot.global.auc_drop.evaluated);  // no labels fed

  // Attachment is exclusive: a second attach must fail until the first
  // monitor is detached, and detach returns the displaced monitor.
  EXPECT_FALSE(session->AttachMonitor(*monitor).ok());
  EXPECT_EQ(session->DetachMonitor(), *monitor);
  EXPECT_EQ(session->monitor(), nullptr);
}

}  // namespace
}  // namespace lightmirm
