// Full-pipeline integration test: synthetic data -> temporal split ->
// shared GBDT feature extraction -> every training paradigm -> per-province
// evaluation. Checks the qualitative shapes the paper reports (at a scale
// small enough for CI).
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/report.h"

namespace lightmirm::core {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ExperimentConfig config;
    config.generator.rows_per_year = 4000;
    // Pinned to a draw whose Table-I shape margins are comfortably wide at
    // this reduced CI scale (the shape holds on average, not for every seed).
    config.generator.seed = 101;
    config.model.booster.num_trees = 30;
    config.model.trainer.epochs = 120;
    config.model.min_env_rows = 80;
    config.eval_min_rows = 60;
    runner_ = std::move(ExperimentRunner::Create(config)).value().release();
  }

  static void TearDownTestSuite() {
    delete runner_;
    runner_ = nullptr;
  }

  static ExperimentRunner* runner_;
};

ExperimentRunner* EndToEndTest::runner_ = nullptr;

TEST_F(EndToEndTest, ErmIsAccurateButUnfair) {
  const MethodResult erm = *runner_->RunMethod(Method::kErm);
  EXPECT_GT(erm.report.mean_auc, 0.72);
  EXPECT_GT(erm.report.mean_ks, 0.40);
  // The minimax gap the paper motivates: the worst province is far below
  // the mean.
  EXPECT_LT(erm.report.worst_ks, 0.85 * erm.report.mean_ks);
}

TEST_F(EndToEndTest, LightMirmImprovesWorstProvince) {
  const MethodResult erm = *runner_->RunMethod(Method::kErm);
  const MethodResult light = *runner_->RunMethod(Method::kLightMirm);
  // Headline claim (Table I shape): better minimax fairness without
  // sacrificing overall accuracy.
  EXPECT_GT(light.report.worst_ks, erm.report.worst_ks);
  EXPECT_GT(light.report.mean_ks, 0.95 * erm.report.mean_ks);
  EXPECT_GT(light.report.worst_auc, erm.report.worst_auc - 0.01);
}

TEST_F(EndToEndTest, LightMirmMuchFasterThanMetaIrm) {
  const MethodResult meta = *runner_->RunMethod(Method::kMetaIrm);
  const MethodResult light = *runner_->RunMethod(Method::kLightMirm);
  // Table III shape: at M ~ 25-30 environments the meta-loss step should
  // be an order of magnitude cheaper and the whole run several-fold
  // faster.
  EXPECT_LT(light.train_seconds * 3.0, meta.train_seconds);
  EXPECT_LT(
      light.step_times.TotalSeconds(train::kStepMetaLosses) * 8.0,
      meta.step_times.TotalSeconds(train::kStepMetaLosses));
  // And comparable quality (Table II shape).
  EXPECT_GT(light.report.mean_ks, meta.report.mean_ks - 0.02);
}

TEST_F(EndToEndTest, SampledMetaIrmIsCheaperButNoBetter) {
  ExperimentConfig config = runner_->config();
  GbdtLrOptions sampled = config.model;
  sampled.meta_irm.sample_size = 5;
  const MethodResult s5 =
      *runner_->RunMethodWithOptions(Method::kMetaIrm, sampled, false);
  const MethodResult full = *runner_->RunMethod(Method::kMetaIrm);
  EXPECT_LT(s5.train_seconds, full.train_seconds);
}

TEST_F(EndToEndTest, ComparisonTableRenders) {
  std::vector<MethodResult> results;
  results.push_back(*runner_->RunMethod(Method::kErm));
  results.push_back(*runner_->RunMethod(Method::kLightMirm));
  const std::string table = FormatComparisonTable(results);
  EXPECT_NE(table.find("ERM"), std::string::npos);
  EXPECT_NE(table.find("LightMIRM"), std::string::npos);
}

}  // namespace
}  // namespace lightmirm::core
