// Bit-equality of every parallelized component across thread counts: the
// deterministic-parallelism contract (DESIGN.md "Threading model") says the
// thread count may only change the wall clock, never a single output bit.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/loan_generator.h"
#include "gbdt/booster.h"
#include "gbdt/histogram.h"
#include "gbdt/leaf_encoder.h"
#include "linear/feature_matrix.h"
#include "linear/logistic.h"
#include "metrics/bootstrap.h"
#include "train/light_mirm.h"
#include "train/meta_irm.h"
#include "train/mrq.h"

namespace lightmirm {
namespace {

const int kThreadCounts[] = {1, 2, 8};

// A multi-environment problem large enough that every parallel loop in the
// LR-head trainers actually shards.
train::TrainData MakeProblem(linear::FeatureMatrix* x,
                             std::vector<int>* labels,
                             std::vector<int>* envs) {
  Rng rng(17);
  const size_t num_envs = 6, rows_per_env = 80;
  const size_t n = num_envs * rows_per_env;
  Matrix m(n, 3);
  labels->resize(n);
  envs->resize(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t e = i % num_envs;
    (*envs)[i] = static_cast<int>(e);
    const double causal = rng.Normal();
    const int y = rng.Bernoulli(linear::Sigmoid(2.0 * causal)) ? 1 : 0;
    m.At(i, 0) = causal + 0.3 * rng.Normal();
    m.At(i, 1) = (y == 1 ? 1.0 : -1.0) * (e % 2 == 0 ? 1.0 : -1.0) +
                 0.5 * rng.Normal();
    m.At(i, 2) = rng.Normal();
    (*labels)[i] = y;
  }
  *x = linear::FeatureMatrix::FromDense(std::move(m));
  return std::move(train::TrainData::Create(x, labels, envs, 10)).value();
}

TEST(ParallelEquivalenceTest, HistogramBuildAndSplit) {
  // 5000 rows x kHistogramRowGrain=2048 -> 3 shards, so the parallel merge
  // path is exercised.
  const size_t rows = 5000, cols = 6;
  Rng rng(5);
  Matrix raw(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) raw.At(r, c) = rng.Normal();
  }
  const gbdt::BinnedMatrix binned = *gbdt::BinnedMatrix::Build(raw, 16);
  std::vector<double> grads(rows), hessians(rows);
  for (size_t i = 0; i < rows; ++i) {
    grads[i] = rng.Normal();
    hessians[i] = rng.Uniform(0.05, 1.0);
  }
  std::vector<size_t> all_rows(rows);
  for (size_t i = 0; i < rows; ++i) all_rows[i] = i;
  std::vector<int> num_bins(cols);
  double node_grad = 0.0, node_hess = 0.0;
  for (size_t i = 0; i < rows; ++i) {
    node_grad += grads[i];
    node_hess += hessians[i];
  }
  for (size_t f = 0; f < cols; ++f) {
    num_bins[f] = binned.mapper(f).num_bins();
  }

  std::vector<gbdt::NodeHistogram> hists;
  std::vector<gbdt::SplitInfo> splits;
  for (int threads : kThreadCounts) {
    ScopedDefaultThreads guard(threads);
    gbdt::NodeHistogram hist(cols, binned.MaxBinCount());
    hist.Build(binned, all_rows, grads, hessians);
    splits.push_back(gbdt::FindBestSplit(hist, num_bins, node_grad,
                                         node_hess,
                                         static_cast<double>(rows), {}));
    hists.push_back(std::move(hist));
  }
  for (size_t i = 1; i < hists.size(); ++i) {
    for (size_t f = 0; f < cols; ++f) {
      for (int b = 0; b < num_bins[f]; ++b) {
        EXPECT_EQ(hists[0].At(f, b).grad, hists[i].At(f, b).grad);
        EXPECT_EQ(hists[0].At(f, b).hess, hists[i].At(f, b).hess);
        EXPECT_EQ(hists[0].At(f, b).count, hists[i].At(f, b).count);
      }
    }
    EXPECT_EQ(splits[0].valid, splits[i].valid);
    EXPECT_EQ(splits[0].feature, splits[i].feature);
    EXPECT_EQ(splits[0].bin_threshold, splits[i].bin_threshold);
    EXPECT_EQ(splits[0].gain, splits[i].gain);
  }
}

TEST(ParallelEquivalenceTest, BoosterTrainAndPredict) {
  Rng rng(9);
  const size_t rows = 3000, cols = 5;
  Matrix raw(rows, cols);
  std::vector<int> labels(rows);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) raw.At(r, c) = rng.Normal();
    labels[r] = rng.Bernoulli(linear::Sigmoid(raw.At(r, 0))) ? 1 : 0;
  }
  gbdt::BoosterOptions options;
  options.num_trees = 8;

  std::vector<std::vector<double>> probs;
  std::vector<std::vector<double>> loss_histories;
  for (int threads : kThreadCounts) {
    ScopedDefaultThreads guard(threads);
    const gbdt::Booster booster =
        *gbdt::Booster::Train(raw, labels, options);
    probs.push_back(booster.PredictProbs(raw));
    loss_histories.push_back(booster.train_loss_history());
  }
  for (size_t i = 1; i < probs.size(); ++i) {
    EXPECT_EQ(probs[0], probs[i]) << "threads=" << kThreadCounts[i];
    EXPECT_EQ(loss_histories[0], loss_histories[i]);
  }
}

TEST(ParallelEquivalenceTest, LeafEncoding) {
  Rng rng(13);
  const size_t rows = 2500, cols = 4;
  Matrix raw(rows, cols);
  std::vector<int> labels(rows);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) raw.At(r, c) = rng.Normal();
    labels[r] = rng.Bernoulli(0.3) ? 1 : 0;
  }
  gbdt::BoosterOptions options;
  options.num_trees = 6;
  const gbdt::Booster booster = *gbdt::Booster::Train(raw, labels, options);
  const gbdt::LeafEncoder encoder(&booster);

  std::vector<linear::FeatureMatrix> encoded;
  for (int threads : kThreadCounts) {
    ScopedDefaultThreads guard(threads);
    encoded.push_back(*encoder.Encode(raw));
  }
  for (size_t i = 1; i < encoded.size(); ++i) {
    ASSERT_EQ(encoded[0].rows(), encoded[i].rows());
    for (size_t r = 0; r < encoded[0].rows(); ++r) {
      EXPECT_EQ(encoded[0].SparseRow(r), encoded[i].SparseRow(r));
    }
  }
}

TEST(ParallelEquivalenceTest, BootstrapConfidenceIntervals) {
  Rng rng(21);
  const size_t n = 4000;
  std::vector<int> labels(n);
  std::vector<double> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    labels[i] = rng.Bernoulli(0.15) ? 1 : 0;
    a[i] = rng.Uniform() + 0.4 * labels[i];
    b[i] = rng.Uniform() + 0.3 * labels[i];
  }
  metrics::BootstrapOptions options;
  options.num_resamples = 120;

  std::vector<metrics::ConfidenceInterval> ks_cis, auc_cis;
  std::vector<double> win_rates;
  for (int threads : kThreadCounts) {
    ScopedDefaultThreads guard(threads);
    ks_cis.push_back(*metrics::BootstrapKs(labels, a, options));
    auc_cis.push_back(*metrics::BootstrapAuc(labels, a, options));
    win_rates.push_back(*metrics::PairedKsWinRate(labels, a, b, options));
  }
  for (size_t i = 1; i < ks_cis.size(); ++i) {
    EXPECT_EQ(ks_cis[0].point, ks_cis[i].point);
    EXPECT_EQ(ks_cis[0].lo, ks_cis[i].lo);
    EXPECT_EQ(ks_cis[0].hi, ks_cis[i].hi);
    EXPECT_EQ(auc_cis[0].lo, auc_cis[i].lo);
    EXPECT_EQ(auc_cis[0].hi, auc_cis[i].hi);
    EXPECT_EQ(win_rates[0], win_rates[i]);
  }
}

TEST(ParallelEquivalenceTest, LightMirmStepAndFit) {
  linear::FeatureMatrix x;
  std::vector<int> labels, envs;
  const train::TrainData data = MakeProblem(&x, &labels, &envs);
  const linear::LossContext ctx = data.Context();
  linear::ParamVec params(x.cols() + 1, 0.05);

  train::LightMirmOptions light;
  light.mrq_length = 3;

  // One outer step: identical meta-losses and outer gradient.
  std::vector<train::MetaStepOutput> steps;
  for (int threads : kThreadCounts) {
    ScopedDefaultThreads guard(threads);
    std::vector<train::MetaLossReplayQueue> queues(
        data.NumTasks(),
        *train::MetaLossReplayQueue::Create(light.mrq_length, light.gamma));
    train::MetaStepOutput out;
    Rng rng(7);
    for (int it = 0; it < 4; ++it) {
      ASSERT_TRUE(train::LightMirmOuterGradient(ctx, data, params, light,
                                                &rng, train::StepTelemetry{},
                                                &queues, &out)
                      .ok());
    }
    steps.push_back(out);
  }
  for (size_t i = 1; i < steps.size(); ++i) {
    EXPECT_EQ(steps[0].meta_losses, steps[i].meta_losses);
    EXPECT_EQ(steps[0].outer_grad, steps[i].outer_grad);
  }

  // Full training runs land on identical parameters.
  train::TrainerOptions options;
  options.epochs = 25;
  std::vector<linear::ParamVec> fitted;
  for (int threads : kThreadCounts) {
    options.threads = threads;
    ScopedDefaultThreads guard(threads);
    train::LightMirmTrainer trainer(options, light);
    fitted.push_back(trainer.Fit(data)->global.params());
  }
  for (size_t i = 1; i < fitted.size(); ++i) {
    EXPECT_EQ(fitted[0], fitted[i]);
  }
}

TEST(ParallelEquivalenceTest, MetaIrmStepCompleteAndSampled) {
  linear::FeatureMatrix x;
  std::vector<int> labels, envs;
  const train::TrainData data = MakeProblem(&x, &labels, &envs);
  const linear::LossContext ctx = data.Context();
  linear::ParamVec params(x.cols() + 1, -0.03);

  for (int sample_size : {0, 3}) {
    train::MetaIrmOptions meta;
    meta.sample_size = sample_size;
    std::vector<train::MetaStepOutput> steps;
    for (int threads : kThreadCounts) {
      ScopedDefaultThreads guard(threads);
      train::MetaStepOutput out;
      Rng rng(11);
      for (int it = 0; it < 3; ++it) {
        ASSERT_TRUE(train::MetaIrmOuterGradient(ctx, data, params, meta,
                                                &rng, train::StepTelemetry{},
                                                &out)
                        .ok());
      }
      steps.push_back(out);
    }
    for (size_t i = 1; i < steps.size(); ++i) {
      EXPECT_EQ(steps[0].meta_losses, steps[i].meta_losses)
          << "sample_size=" << sample_size;
      EXPECT_EQ(steps[0].outer_grad, steps[i].outer_grad)
          << "sample_size=" << sample_size;
    }
  }
}

TEST(ParallelEquivalenceTest, LoanGeneratorDataset) {
  data::LoanGeneratorOptions options;
  // 1200 rows/year x 5 years = 6000 rows -> 3 shards at grain 2048.
  options.rows_per_year = 1200;
  const data::LoanGenerator gen(options);

  std::vector<data::Dataset> datasets;
  std::vector<std::vector<double>> logits;
  for (int threads : kThreadCounts) {
    ScopedDefaultThreads guard(threads);
    std::vector<double> true_logits;
    datasets.push_back(*gen.Generate(&true_logits));
    logits.push_back(std::move(true_logits));
  }
  for (size_t i = 1; i < datasets.size(); ++i) {
    const data::Dataset& d0 = datasets[0];
    const data::Dataset& di = datasets[i];
    ASSERT_EQ(d0.NumRows(), di.NumRows());
    EXPECT_EQ(d0.labels(), di.labels());
    EXPECT_EQ(d0.envs(), di.envs());
    EXPECT_EQ(d0.years(), di.years());
    EXPECT_EQ(d0.halves(), di.halves());
    EXPECT_EQ(logits[0], logits[i]);
    for (size_t r = 0; r < d0.NumRows(); ++r) {
      for (size_t c = 0; c < d0.NumFeatures(); ++c) {
        ASSERT_EQ(d0.features().At(r, c), di.features().At(r, c))
            << "row " << r << " col " << c;
      }
    }
  }
}

}  // namespace
}  // namespace lightmirm
