// Out-of-core replay equivalence: stream the generator into a compressed
// column store, replay the 2020 timeline from disk chunk by chunk, and
// compare against the in-RAM ReplayStream over the same rows.
//   * lossless store: decoded rows are bit-identical, so everything is;
//   * serving-grid store (a few bits per value): the *features* differ but
//     every forest comparison is preserved, so scores — and with them all
//     monitor verdicts — stay bit-identical, on the scalar and SIMD
//     kernels alike;
//   * chunk skipping via the year index never changes the result.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/gbdt_lr_model.h"
#include "data/column_store.h"
#include "data/env_split.h"
#include "data/loan_generator.h"
#include "obs/monitor.h"
#include "obs/replay.h"
#include "serve/quantized_forest.h"
#include "serve/simd_dispatch.h"

namespace lightmirm {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "/" + name) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

data::LoanGeneratorOptions GeneratorOptions() {
  data::LoanGeneratorOptions gen;
  gen.rows_per_year = 2000;
  gen.seed = 7;
  return gen;
}

core::GbdtLrOptions FastModelOptions() {
  core::GbdtLrOptions options;
  options.booster.num_trees = 15;
  options.booster.tree.max_leaves = 8;
  options.trainer.epochs = 40;
  options.min_env_rows = 60;
  return options;
}

obs::MonitorOptions ReplayMonitorOptions() {
  obs::MonitorOptions options;
  options.window = 2048;
  options.min_rows = 150;
  options.min_labeled = 150;
  options.fairness_min_labeled = 300;
  return options;
}

void ExpectSameSignal(const obs::SignalHealth& a, const obs::SignalHealth& b) {
  EXPECT_EQ(a.evaluated, b.evaluated);
  EXPECT_EQ(a.state, b.state);
  EXPECT_EQ(a.value, b.value);  // bit-identical, not approximately equal
}

void ExpectSameWindow(const obs::WindowHealth& a, const obs::WindowHealth& b) {
  EXPECT_EQ(a.seen, b.seen);
  EXPECT_EQ(a.window_rows, b.window_rows);
  EXPECT_EQ(a.labeled_rows, b.labeled_rows);
  EXPECT_EQ(a.default_rate, b.default_rate);
  EXPECT_EQ(a.auc, b.auc);
  EXPECT_EQ(a.ks, b.ks);
  ExpectSameSignal(a.psi, b.psi);
  ExpectSameSignal(a.drift_ks, b.drift_ks);
  ExpectSameSignal(a.default_rate_rise, b.default_rate_rise);
  ExpectSameSignal(a.auc_drop, b.auc_drop);
  ExpectSameSignal(a.ks_drop, b.ks_drop);
  ExpectSameSignal(a.calibration, b.calibration);
  EXPECT_EQ(a.overall, b.overall);
}

void ExpectSameReplay(const obs::ReplayResult& a, const obs::ReplayResult& b) {
  ASSERT_EQ(a.periods.size(), b.periods.size());
  for (size_t p = 0; p < a.periods.size(); ++p) {
    const obs::ReplayPeriod& x = a.periods[p];
    const obs::ReplayPeriod& y = b.periods[p];
    EXPECT_EQ(x.year, y.year);
    EXPECT_EQ(x.half, y.half);
    EXPECT_EQ(x.rows, y.rows);
    ExpectSameWindow(x.health.global, y.health.global);
    ASSERT_EQ(x.health.per_env.size(), y.health.per_env.size());
    for (const auto& [env, health] : x.health.per_env) {
      ASSERT_EQ(y.health.per_env.count(env), 1u);
      ExpectSameWindow(health, y.health.per_env.at(env));
    }
    ExpectSameSignal(x.health.fairness_gap, y.health.fairness_gap);
    EXPECT_EQ(x.health.fairness_envs, y.health.fairness_envs);
    EXPECT_EQ(x.health.overall, y.health.overall);
  }
}

struct TrainedSetup {
  data::Dataset full;
  core::GbdtLrModel model;
};

TrainedSetup TrainSetup() {
  data::LoanGenerator generator(GeneratorOptions());
  auto full = generator.Generate();
  EXPECT_TRUE(full.ok());
  auto split = data::TemporalSplit(*full, 2020);
  EXPECT_TRUE(split.ok());
  auto model = core::GbdtLrModel::Train(split->train, core::Method::kErm,
                                        FastModelOptions());
  EXPECT_TRUE(model.ok());
  return {std::move(*full), std::move(*model)};
}

obs::ReplayResult InRamReplay2020(const TrainedSetup& setup) {
  auto monitor = obs::ModelHealthMonitor::Create(
      setup.model.score_reference(), ReplayMonitorOptions());
  EXPECT_TRUE(monitor.ok());
  obs::ReplayOptions options;
  options.only_year = 2020;
  auto replay = obs::ReplayStream(*setup.model.scoring_session(),
                                  monitor->get(), setup.full, options);
  EXPECT_TRUE(replay.ok());
  return std::move(*replay);
}

obs::ReplayResult CompressedReplay2020(const TrainedSetup& setup,
                                       const std::string& store_path,
                                       const data::ColumnStoreOptions& store) {
  data::LoanGenerator generator(GeneratorOptions());
  auto rows = generator.GenerateToStore(store_path, store);
  EXPECT_TRUE(rows.ok());
  auto reader = data::ColumnStoreReader::Open(store_path);
  EXPECT_TRUE(reader.ok());
  auto monitor = obs::ModelHealthMonitor::Create(
      setup.model.score_reference(), ReplayMonitorOptions());
  EXPECT_TRUE(monitor.ok());
  obs::ReplayOptions options;
  options.only_year = 2020;
  auto replay = obs::ReplayCompressedStream(*setup.model.scoring_session(),
                                            monitor->get(), &*reader,
                                            options);
  EXPECT_TRUE(replay.ok());
  return std::move(*replay);
}

TEST(CompressedReplayTest, LosslessStoreMatchesInRamReplayBitForBit) {
  const TrainedSetup setup = TrainSetup();
  const obs::ReplayResult in_ram = InRamReplay2020(setup);

  TempFile file("compressed_replay_lossless.lmcs");
  data::ColumnStoreOptions store;
  store.chunk_rows = 1024;
  const obs::ReplayResult compressed =
      CompressedReplay2020(setup, file.path(), store);
  ExpectSameReplay(in_ram, compressed);
}

TEST(CompressedReplayTest, ServingGridStoreKeepsVerdictsBitIdentical) {
  const TrainedSetup setup = TrainSetup();
  const obs::ReplayResult in_ram = InRamReplay2020(setup);

  const auto session = setup.model.scoring_session();
  TempFile file("compressed_replay_grid.lmcs");
  data::ColumnStoreOptions store;
  store.chunk_rows = 1024;
  store.feature_encoding = data::FeatureEncoding::kServingGrid;
  store.feature_grids = serve::ScoringFeatureGrid(session->forest());
  store.feature_grids.resize(setup.full.NumFeatures());

  // Grid-decoded features are a few bits per value, yet scores — and so
  // every monitor verdict — must match the in-RAM replay bit for bit, on
  // whichever kernel tier is active.
  for (const serve::SimdLevel level :
       {serve::SimdLevel::kScalar, serve::SimdLevel::kAvx2}) {
    serve::ScopedSimdLevel pin(level);
    const obs::ReplayResult compressed =
        CompressedReplay2020(setup, file.path(), store);
    ExpectSameReplay(in_ram, compressed);
  }
}

TEST(CompressedReplayTest, YearFilterSkipsChunksWithoutChangingResults) {
  const TrainedSetup setup = TrainSetup();
  TempFile file("compressed_replay_filter.lmcs");
  data::LoanGenerator generator(GeneratorOptions());
  data::ColumnStoreOptions store;
  store.chunk_rows = 512;
  ASSERT_TRUE(generator.GenerateToStore(file.path(), store).ok());
  auto reader = data::ColumnStoreReader::Open(file.path());
  ASSERT_TRUE(reader.ok());

  // The generator writes years in order, so most chunks are skippable
  // under a 2020 filter — and at least one chunk must be pure 2020.
  size_t skippable = 0, in_2020 = 0;
  for (size_t c = 0; c < reader->num_chunks(); ++c) {
    if (reader->chunk(c).year_max < 2020) ++skippable;
    if (reader->chunk(c).year_min >= 2020) ++in_2020;
  }
  EXPECT_GT(skippable, 0u);
  EXPECT_GT(in_2020, 0u);

  // Replaying the filtered store equals replaying the full store with the
  // same filter applied row by row (the skip is an optimization only) —
  // and both equal the in-RAM filtered replay.
  const obs::ReplayResult in_ram = InRamReplay2020(setup);
  auto monitor = obs::ModelHealthMonitor::Create(
      setup.model.score_reference(), ReplayMonitorOptions());
  ASSERT_TRUE(monitor.ok());
  obs::ReplayOptions options;
  options.only_year = 2020;
  auto compressed = obs::ReplayCompressedStream(
      *setup.model.scoring_session(), monitor->get(), &*reader, options);
  ASSERT_TRUE(compressed.ok());
  for (const obs::ReplayPeriod& period : compressed->periods) {
    EXPECT_EQ(period.year, 2020);
  }
  ExpectSameReplay(in_ram, *compressed);
}

}  // namespace
}  // namespace lightmirm
