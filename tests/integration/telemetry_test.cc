// End-to-end telemetry: run a full experiment with `telemetry_out` set and
// assert the exported JSON carries the training spans, the per-env
// meta-loss trajectories, the serving latency histograms and the
// infrastructure counters — and that the Table III formatter is
// byte-stable for fixed timings.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/experiment.h"
#include "obs/metrics.h"
#include "train/step_timer.h"

namespace lightmirm {
namespace {

core::ExperimentConfig FastConfig() {
  core::ExperimentConfig config;
  config.generator.rows_per_year = 2000;
  config.generator.seed = 3;
  config.model.booster.num_trees = 15;
  config.model.booster.tree.max_leaves = 8;
  config.model.trainer.epochs = 40;
  config.model.min_env_rows = 60;
  config.eval_min_rows = 40;
  return config;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(TelemetryIntegrationTest, FullRunExportsAllLayers) {
  obs::SetTelemetryEnabled(true);
  obs::MetricsRegistry::Global()->Reset();

  core::ExperimentConfig config = FastConfig();
  config.threads = 2;  // force the pooled path even on single-core hosts
  config.telemetry_out =
      ::testing::TempDir() + "telemetry_integration.json";
  const auto runner =
      std::move(core::ExperimentRunner::Create(config)).value();
  const core::MethodResult result =
      *runner->RunMethod(core::Method::kLightMirm);
  EXPECT_GT(result.pooled_auc, 0.5);

  const std::string json = ReadFile(config.telemetry_out);
  ASSERT_FALSE(json.empty());

  // Training spans: the prefixed epoch chain plus the Table III steps
  // nested inside it.
  EXPECT_NE(json.find("span.train.LightMIRM.epoch.seconds"),
            std::string::npos);
  EXPECT_NE(json.find("span.train.LightMIRM.epoch.inner_optimization"),
            std::string::npos);
  EXPECT_NE(
      json.find("span.train.LightMIRM.epoch.calculating_the_meta_losses"),
      std::string::npos);
  EXPECT_NE(json.find("span.train.LightMIRM.epoch.backward_propagation"),
            std::string::npos);
  EXPECT_NE(json.find("span.train.LightMIRM.loading_data"),
            std::string::npos);
  EXPECT_NE(json.find("span.train.LightMIRM.transforming_the_format"),
            std::string::npos);

  // Per-env meta-loss trajectories and the sigma penalty series.
  EXPECT_NE(json.find("train.LightMIRM.meta_loss.env_"), std::string::npos);
  EXPECT_NE(json.find("train.LightMIRM.sigma_penalty"), std::string::npos);

  // Serving layer (Predict routes through the compiled scoring session).
  EXPECT_NE(json.find("serve.batch.seconds"), std::string::npos);
  EXPECT_NE(json.find("serve.rows_scored"), std::string::npos);

  // Infrastructure: data generation shards and the shared thread pool.
  EXPECT_NE(json.find("datagen.shard.seconds"), std::string::npos);
  EXPECT_NE(json.find("datagen.rows"), std::string::npos);
  EXPECT_NE(json.find("pool.tasks"), std::string::npos);
}

TEST(TelemetryIntegrationTest, DisabledTelemetryKeepsGlobalRegistryQuiet) {
  obs::MetricsRegistry::Global()->Reset();
  obs::SetTelemetryEnabled(false);
  core::ExperimentConfig config = FastConfig();
  const auto runner =
      std::move(core::ExperimentRunner::Create(config)).value();
  const core::MethodResult result =
      *runner->RunMethod(core::Method::kErm);
  obs::SetTelemetryEnabled(true);
  EXPECT_GT(result.pooled_auc, 0.5);
  // No instrumentation site should have recorded while disabled.
  for (const auto& [name, counter] : obs::MetricsRegistry::Global()->Counters()) {
    EXPECT_EQ(counter->Value(), 0u) << name;
  }
  for (const auto& [name, hist] :
       obs::MetricsRegistry::Global()->Histograms()) {
    EXPECT_EQ(hist->Count(), 0u) << name;
  }
  // Table III timings still work without the registry.
  EXPECT_GT(result.step_times.TotalSeconds(train::kStepEpoch), 0.0);
}

// Byte-stable Table III rendering for fixed Add values — pins the exact
// layout the paper-comparison tools parse.
TEST(TelemetryIntegrationTest, StepTimeTableGolden) {
  StepTimer timer;
  timer.Add("loading data", 0.5);
  timer.Add("transforming the format", 0.25);
  timer.Add(train::kStepInnerOptimization, 0.1);
  timer.Add(train::kStepInnerOptimization, 0.3);
  timer.Add(train::kStepMetaLosses, 0.001);
  timer.Add(train::kStepBackward, 0.0005);
  timer.Add(train::kStepEpoch, 1.0);
  timer.Add(train::kStepEpoch, 2.0);
  const std::string table =
      train::FormatStepTimeTable({"LightMIRM"}, {&timer});
  const std::string expected =
      "Step                                  LightMIRM\n"
      "loading data                          0.500000s\n"
      "transforming the format               0.250000s\n"
      "inner optimization                    0.200000s\n"
      "calculating the meta-losses           0.001000s\n"
      "backward propagation                  0.000500s\n"
      "the whole epoch                          3.000s\n";
  EXPECT_EQ(table, expected);
}

}  // namespace
}  // namespace lightmirm
