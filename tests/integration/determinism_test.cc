// Determinism: the whole stack is reproducible bit-for-bit given seeds —
// generation, GBDT training, leaf encoding, and every trainer.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "gbdt/serialize.h"

#include <sstream>

namespace lightmirm::core {
namespace {

ExperimentConfig FastConfig(uint64_t seed) {
  ExperimentConfig config;
  config.generator.rows_per_year = 1200;
  config.generator.seed = seed;
  config.model.booster.num_trees = 10;
  config.model.trainer.epochs = 25;
  config.model.min_env_rows = 40;
  config.eval_min_rows = 30;
  return config;
}

TEST(DeterminismTest, BoosterSerializationIsIdenticalAcrossRuns) {
  const auto a = std::move(ExperimentRunner::Create(FastConfig(5))).value();
  const auto b = std::move(ExperimentRunner::Create(FastConfig(5))).value();
  std::stringstream sa, sb;
  ASSERT_TRUE(gbdt::SaveBooster(a->booster(), &sa).ok());
  ASSERT_TRUE(gbdt::SaveBooster(b->booster(), &sb).ok());
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(DeterminismTest, EveryMethodReproducesItsScores) {
  const auto a = std::move(ExperimentRunner::Create(FastConfig(6))).value();
  const auto b = std::move(ExperimentRunner::Create(FastConfig(6))).value();
  for (Method method :
       {Method::kErm, Method::kUpSampling, Method::kGroupDro, Method::kVRex,
        Method::kIrmV1, Method::kLightMirm}) {
    const MethodResult ra = *a->RunMethod(method);
    const MethodResult rb = *b->RunMethod(method);
    ASSERT_EQ(ra.test_scores.size(), rb.test_scores.size());
    for (size_t i = 0; i < ra.test_scores.size(); i += 37) {
      EXPECT_DOUBLE_EQ(ra.test_scores[i], rb.test_scores[i])
          << MethodName(method) << " row " << i;
    }
  }
}

TEST(DeterminismTest, RepeatedRunsOnSameRunnerAreIdentical) {
  const auto runner = std::move(ExperimentRunner::Create(FastConfig(7))).value();
  const MethodResult first = *runner->RunMethod(Method::kLightMirm);
  const MethodResult second = *runner->RunMethod(Method::kLightMirm);
  EXPECT_DOUBLE_EQ(first.report.mean_ks, second.report.mean_ks);
  EXPECT_DOUBLE_EQ(first.report.worst_ks, second.report.worst_ks);
}

TEST(DeterminismTest, DifferentSeedsChangeOutcomes) {
  const auto a = std::move(ExperimentRunner::Create(FastConfig(8))).value();
  const auto b = std::move(ExperimentRunner::Create(FastConfig(9))).value();
  const MethodResult ra = *a->RunMethod(Method::kErm);
  const MethodResult rb = *b->RunMethod(Method::kErm);
  EXPECT_NE(ra.report.mean_ks, rb.report.mean_ks);
}

}  // namespace
}  // namespace lightmirm::core
