// Property-style invariants of the evaluation stack, swept over seeds:
// report aggregates are consistent, scores are probabilities, Bayes scores
// upper-bound trained models, and fairness metrics behave sanely.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "metrics/calibration.h"
#include "metrics/env_report.h"

namespace lightmirm::core {
namespace {

class FairnessPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FairnessPropertyTest, ReportInvariantsHold) {
  ExperimentConfig config;
  config.generator.rows_per_year = 1500;
  config.generator.seed = GetParam();
  config.model.booster.num_trees = 12;
  config.model.trainer.epochs = 30;
  config.model.min_env_rows = 50;
  config.eval_min_rows = 40;
  const auto runner = std::move(ExperimentRunner::Create(config)).value();
  const MethodResult r = *runner->RunMethod(Method::kErm);

  // Scores are probabilities.
  for (double s : r.test_scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  // Aggregates are consistent with the per-env table.
  double mean_ks = 0.0, worst_ks = 2.0, mean_auc = 0.0, worst_auc = 2.0;
  for (const auto& env : r.report.per_env) {
    mean_ks += env.ks;
    mean_auc += env.auc;
    worst_ks = std::min(worst_ks, env.ks);
    worst_auc = std::min(worst_auc, env.auc);
    EXPECT_GE(env.ks, 0.0);
    EXPECT_LE(env.ks, 1.0);
    EXPECT_GE(env.auc, 0.0);
    EXPECT_LE(env.auc, 1.0);
  }
  mean_ks /= static_cast<double>(r.report.per_env.size());
  mean_auc /= static_cast<double>(r.report.per_env.size());
  EXPECT_NEAR(r.report.mean_ks, mean_ks, 1e-12);
  EXPECT_NEAR(r.report.mean_auc, mean_auc, 1e-12);
  EXPECT_NEAR(r.report.worst_ks, worst_ks, 1e-12);
  EXPECT_NEAR(r.report.worst_auc, worst_auc, 1e-12);
  EXPECT_LE(r.report.worst_ks, r.report.mean_ks);
  EXPECT_LE(r.report.worst_auc, r.report.mean_auc);
}

TEST_P(FairnessPropertyTest, BayesScoresUpperBoundTrainedModel) {
  data::LoanGeneratorOptions gen;
  gen.rows_per_year = 2000;
  gen.seed = GetParam();
  std::vector<double> logits;
  const data::Dataset dataset = *data::LoanGenerator(gen).Generate(&logits);
  const auto split = *data::TemporalSplit(dataset, 2020);

  // Bayes scores on the test year.
  std::vector<double> bayes;
  for (size_t i = 0; i < dataset.NumRows(); ++i) {
    if (dataset.years()[i] == 2020) bayes.push_back(logits[i]);
  }
  const auto bayes_pooled =
      *metrics::EvaluatePooled(split.test.labels(), bayes);

  ExperimentConfig config;
  config.generator = gen;
  config.model.booster.num_trees = 12;
  config.model.trainer.epochs = 30;
  config.model.min_env_rows = 50;
  config.eval_min_rows = 40;
  const auto runner =
      std::move(ExperimentRunner::CreateWithDataset(config, dataset)).value();
  const MethodResult r = *runner->RunMethod(Method::kErm);
  // No model can beat the generative logit by a real margin.
  EXPECT_LE(r.pooled_auc, bayes_pooled.auc + 0.02);
  EXPECT_LE(r.pooled_ks, bayes_pooled.ks + 0.03);
}

TEST_P(FairnessPropertyTest, FprDisparityWithinBounds) {
  ExperimentConfig config;
  config.generator.rows_per_year = 1500;
  config.generator.seed = GetParam();
  config.model.booster.num_trees = 12;
  config.model.trainer.epochs = 30;
  config.model.min_env_rows = 50;
  config.eval_min_rows = 40;
  const auto runner = std::move(ExperimentRunner::Create(config)).value();
  const MethodResult r = *runner->RunMethod(Method::kErm);
  const auto disparity =
      metrics::FprDisparity(runner->test(), r.test_scores, 0.5, 40);
  ASSERT_TRUE(disparity.ok());
  EXPECT_GE(*disparity, 0.0);
  EXPECT_LE(*disparity, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FairnessPropertyTest,
                         ::testing::Values(11, 222, 3333));

}  // namespace
}  // namespace lightmirm::core
