#include "gbdt/leaf_encoder.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linear/logistic.h"

namespace lightmirm::gbdt {
namespace {

Booster TrainSmallBooster(Matrix* features_out, std::vector<int>* labels_out,
                          int num_trees = 10) {
  Rng rng(1);
  const size_t n = 1000;
  Matrix features(n, 3);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < 3; ++j) features.At(i, j) = rng.Normal();
    labels[i] =
        rng.Bernoulli(linear::Sigmoid(features.At(i, 0) * 2.0)) ? 1 : 0;
  }
  BoosterOptions options;
  options.num_trees = num_trees;
  options.tree.max_leaves = 6;
  Booster booster = *Booster::Train(features, labels, options);
  *features_out = std::move(features);
  *labels_out = std::move(labels);
  return booster;
}

TEST(LeafEncoderTest, OneActiveColumnPerTree) {
  Matrix features;
  std::vector<int> labels;
  const Booster booster = TrainSmallBooster(&features, &labels);
  const LeafEncoder encoder(&booster);
  const linear::FeatureMatrix encoded = *encoder.Encode(features);
  EXPECT_EQ(encoded.rows(), features.rows());
  EXPECT_EQ(encoded.cols(), static_cast<size_t>(booster.TotalLeaves()));
  EXPECT_FALSE(encoded.dense_mode());
  for (size_t r = 0; r < encoded.rows(); r += 31) {
    EXPECT_EQ(encoded.SparseRow(r).size(), booster.trees().size());
  }
  EXPECT_DOUBLE_EQ(encoded.MeanRowNnz(),
                   static_cast<double>(booster.trees().size()));
}

TEST(LeafEncoderTest, ColumnsSegmentByTree) {
  Matrix features;
  std::vector<int> labels;
  const Booster booster = TrainSmallBooster(&features, &labels);
  const LeafEncoder encoder(&booster);
  const linear::FeatureMatrix encoded = *encoder.Encode(features);
  // Active column t must lie in tree t's segment.
  size_t offset = 0;
  std::vector<std::pair<size_t, size_t>> segments;
  for (const Tree& tree : booster.trees()) {
    segments.emplace_back(offset,
                          offset + static_cast<size_t>(tree.num_leaves()));
    offset += static_cast<size_t>(tree.num_leaves());
  }
  for (size_t r = 0; r < encoded.rows(); r += 17) {
    const auto& active = encoded.SparseRow(r);
    for (size_t t = 0; t < active.size(); ++t) {
      EXPECT_GE(active[t], segments[t].first);
      EXPECT_LT(active[t], segments[t].second);
    }
  }
}

TEST(LeafEncoderTest, EncodingMatchesPredictLeaves) {
  Matrix features;
  std::vector<int> labels;
  const Booster booster = TrainSmallBooster(&features, &labels);
  const LeafEncoder encoder(&booster);
  const linear::FeatureMatrix encoded = *encoder.Encode(features);
  std::vector<int> leaves;
  for (size_t r = 0; r < features.rows(); r += 23) {
    booster.PredictLeaves(features.Row(r), &leaves);
    const auto& active = encoded.SparseRow(r);
    for (size_t t = 0; t < leaves.size(); ++t) {
      EXPECT_EQ(active[t], encoder.ColumnOf(t, leaves[t]));
    }
  }
}

TEST(LeafEncoderTest, RejectsMatrixNarrowerThanTrainedFeatures) {
  Matrix features;
  std::vector<int> labels;
  const Booster booster = TrainSmallBooster(&features, &labels);
  ASSERT_GT(booster.MinFeatureCount(), 1u);
  const LeafEncoder encoder(&booster);
  const Matrix narrow(8, booster.MinFeatureCount() - 1);
  const auto encoded = encoder.Encode(narrow);
  ASSERT_FALSE(encoded.ok());
  EXPECT_EQ(encoded.status().code(), StatusCode::kInvalidArgument);
  // Extra columns beyond the trained ones are fine — only narrower input
  // would read out of bounds.
  const Matrix wide(8, booster.MinFeatureCount() + 2);
  EXPECT_TRUE(encoder.Encode(wide).ok());
}

TEST(LeafEncoderTest, LeafFeaturesLinearlyRecoverBoosterScore) {
  // A linear model over the leaf one-hots with weights = leaf values
  // reproduces the booster's logit exactly (§III-C consistency).
  Matrix features;
  std::vector<int> labels;
  const Booster booster = TrainSmallBooster(&features, &labels);
  const LeafEncoder encoder(&booster);
  const linear::FeatureMatrix encoded = *encoder.Encode(features);

  std::vector<double> weights(encoder.num_columns() + 1, 0.0);
  for (size_t t = 0; t < booster.trees().size(); ++t) {
    for (const TreeNode& node : booster.trees()[t].nodes()) {
      if (node.is_leaf) {
        weights[encoder.ColumnOf(t, node.leaf_ordinal)] = node.leaf_value;
      }
    }
  }
  weights.back() = booster.base_score();
  for (size_t r = 0; r < features.rows(); r += 41) {
    const double via_leaves =
        encoded.RowDot(r, weights) + weights.back();
    EXPECT_NEAR(via_leaves, booster.PredictLogit(features.Row(r)), 1e-9);
  }
}

}  // namespace
}  // namespace lightmirm::gbdt
