#include "gbdt/booster.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linear/logistic.h"
#include "metrics/roc.h"

namespace lightmirm::gbdt {
namespace {

struct Binary {
  Matrix features;
  std::vector<int> labels;
};

// Nonlinear but learnable binary problem.
Binary MakeProblem(size_t n, uint64_t seed) {
  Rng rng(seed);
  Binary p{Matrix(n, 4), std::vector<int>(n)};
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < 4; ++j) p.features.At(i, j) = rng.Normal();
    const double logit = 1.5 * p.features.At(i, 0) -
                         1.0 * p.features.At(i, 1) * p.features.At(i, 1) +
                         0.8;
    p.labels[i] = rng.Bernoulli(linear::Sigmoid(logit)) ? 1 : 0;
  }
  return p;
}

BoosterOptions SmallOptions() {
  BoosterOptions options;
  options.num_trees = 20;
  options.tree.max_leaves = 8;
  return options;
}

TEST(BoosterTest, TrainingLossDecreasesMonotonically) {
  const Binary p = MakeProblem(2000, 1);
  const Booster booster =
      *Booster::Train(p.features, p.labels, SmallOptions());
  const auto& history = booster.train_loss_history();
  ASSERT_EQ(history.size(), 20u);
  for (size_t t = 1; t < history.size(); ++t) {
    EXPECT_LE(history[t], history[t - 1] + 1e-9) << "iteration " << t;
  }
  EXPECT_LT(history.back(), 0.8 * history.front());
}

TEST(BoosterTest, LearnsTheProblem) {
  const Binary train = MakeProblem(4000, 2);
  const Binary test = MakeProblem(2000, 3);
  const Booster booster =
      *Booster::Train(train.features, train.labels, SmallOptions());
  const std::vector<double> scores = booster.PredictProbs(test.features);
  EXPECT_GT(*metrics::Auc(test.labels, scores), 0.80);
}

TEST(BoosterTest, BaseScoreMatchesLogOddsOfBaseRate) {
  const Binary p = MakeProblem(1000, 4);
  const Booster booster =
      *Booster::Train(p.features, p.labels, SmallOptions());
  double pos = 0.0;
  for (int y : p.labels) pos += y;
  const double rate = pos / static_cast<double>(p.labels.size());
  EXPECT_NEAR(booster.base_score(), std::log(rate / (1.0 - rate)), 1e-9);
}

TEST(BoosterTest, PredictLeavesWithinRange) {
  const Binary p = MakeProblem(500, 5);
  const Booster booster =
      *Booster::Train(p.features, p.labels, SmallOptions());
  std::vector<int> leaves;
  for (size_t i = 0; i < 50; ++i) {
    booster.PredictLeaves(p.features.Row(i), &leaves);
    ASSERT_EQ(leaves.size(), booster.trees().size());
    for (size_t t = 0; t < leaves.size(); ++t) {
      EXPECT_GE(leaves[t], 0);
      EXPECT_LT(leaves[t], booster.trees()[t].num_leaves());
    }
  }
}

TEST(BoosterTest, TotalLeavesSumsTreeLeafCounts) {
  const Binary p = MakeProblem(500, 6);
  const Booster booster =
      *Booster::Train(p.features, p.labels, SmallOptions());
  int total = 0;
  for (const Tree& t : booster.trees()) total += t.num_leaves();
  EXPECT_EQ(booster.TotalLeaves(), total);
  EXPECT_GT(total, 20);
}

TEST(BoosterTest, DeterministicGivenSeed) {
  const Binary p = MakeProblem(800, 7);
  const Booster a = *Booster::Train(p.features, p.labels, SmallOptions());
  const Booster b = *Booster::Train(p.features, p.labels, SmallOptions());
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.PredictLogit(p.features.Row(i)),
                     b.PredictLogit(p.features.Row(i)));
  }
}

TEST(BoosterTest, BaggingStillLearns) {
  const Binary train = MakeProblem(3000, 8);
  BoosterOptions options = SmallOptions();
  options.bagging_fraction = 0.6;
  const Booster booster =
      *Booster::Train(train.features, train.labels, options);
  const std::vector<double> scores = booster.PredictProbs(train.features);
  EXPECT_GT(*metrics::Auc(train.labels, scores), 0.75);
}

TEST(BoosterTest, RejectsBadInputs) {
  const Binary p = MakeProblem(100, 9);
  BoosterOptions options = SmallOptions();
  EXPECT_FALSE(Booster::Train(Matrix(), {}, options).ok());
  EXPECT_FALSE(
      Booster::Train(p.features, {0, 1}, options).ok());  // size mismatch
  options.num_trees = 0;
  EXPECT_FALSE(Booster::Train(p.features, p.labels, options).ok());
  options = SmallOptions();
  options.bagging_fraction = 0.0;
  EXPECT_FALSE(Booster::Train(p.features, p.labels, options).ok());
  // single class
  std::vector<int> ones(p.labels.size(), 1);
  EXPECT_FALSE(Booster::Train(p.features, ones, SmallOptions()).ok());
  // bad label value
  std::vector<int> bad = p.labels;
  bad[0] = 7;
  EXPECT_FALSE(Booster::Train(p.features, bad, SmallOptions()).ok());
}

// Property: more trees never hurt training loss.
class BoosterDepthTest : public ::testing::TestWithParam<int> {};

TEST_P(BoosterDepthTest, MoreTreesLowerTrainLoss) {
  const Binary p = MakeProblem(1500, 10);
  BoosterOptions few = SmallOptions(), many = SmallOptions();
  few.num_trees = GetParam();
  many.num_trees = GetParam() * 2;
  const Booster a = *Booster::Train(p.features, p.labels, few);
  const Booster b = *Booster::Train(p.features, p.labels, many);
  EXPECT_LE(b.train_loss_history().back(),
            a.train_loss_history().back() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(TreeCounts, BoosterDepthTest,
                         ::testing::Values(5, 10, 20));

}  // namespace
}  // namespace lightmirm::gbdt
