#include "gbdt/importance.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linear/logistic.h"

namespace lightmirm::gbdt {
namespace {

// Feature 0 carries all the signal; features 1-3 are noise.
Booster TrainSignalBooster(data::Schema* schema_out) {
  Rng rng(1);
  const size_t n = 2000;
  Matrix features(n, 4);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < 4; ++j) features.At(i, j) = rng.Normal();
    labels[i] =
        rng.Bernoulli(linear::Sigmoid(2.5 * features.At(i, 0))) ? 1 : 0;
  }
  BoosterOptions options;
  options.num_trees = 15;
  options.tree.max_leaves = 6;
  *schema_out = data::Schema({{"signal", data::FeatureKind::kNumeric, 0},
                              {"noise_a", data::FeatureKind::kNumeric, 0},
                              {"noise_b", data::FeatureKind::kNumeric, 0},
                              {"noise_c", data::FeatureKind::kNumeric, 0}});
  return *Booster::Train(features, labels, options);
}

TEST(ImportanceTest, SignalFeatureDominates) {
  data::Schema schema;
  const Booster booster = TrainSignalBooster(&schema);
  const auto importances = SplitImportance(booster, schema);
  ASSERT_FALSE(importances.empty());
  EXPECT_EQ(importances[0].name, "signal");
  EXPECT_GT(importances[0].split_count, 3);
  // The signal feature has more splits than all noise combined.
  int64_t noise_splits = 0;
  for (size_t i = 1; i < importances.size(); ++i) {
    noise_splits += importances[i].split_count;
  }
  EXPECT_GT(importances[0].split_count, noise_splits);
}

TEST(ImportanceTest, SplitCountsSumToTreeSplits) {
  data::Schema schema;
  const Booster booster = TrainSignalBooster(&schema);
  const auto importances = SplitImportance(booster, schema);
  int64_t total_from_importance = 0;
  for (const auto& imp : importances) {
    total_from_importance += imp.split_count;
  }
  int64_t total_splits = 0;
  for (const Tree& tree : booster.trees()) {
    total_splits += static_cast<int64_t>(tree.num_nodes()) -
                    static_cast<int64_t>(tree.num_leaves());
  }
  EXPECT_EQ(total_from_importance, total_splits);
}

TEST(ImportanceTest, BucketsPartitionSplits) {
  data::Schema schema;
  const Booster booster = TrainSignalBooster(&schema);
  const auto importances = SplitImportance(booster, schema);
  const auto buckets = BucketImportance(importances, {"signal", "noise_"});
  ASSERT_EQ(buckets.size(), 3u);  // signal, noise_, (other)
  double total_share = 0.0;
  for (const auto& b : buckets) total_share += b.share;
  EXPECT_NEAR(total_share, 1.0, 1e-9);
  EXPECT_GT(buckets[0].share, 0.5);
  EXPECT_EQ(buckets[2].split_count, 0);
}

TEST(ImportanceTest, FormatTableIsReadable) {
  data::Schema schema;
  const Booster booster = TrainSignalBooster(&schema);
  const auto importances = SplitImportance(booster, schema);
  const std::string table = FormatImportanceTable(importances, 3);
  EXPECT_NE(table.find("signal"), std::string::npos);
  EXPECT_NE(table.find("splits"), std::string::npos);
}

}  // namespace
}  // namespace lightmirm::gbdt
