#include "gbdt/tree.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "common/rng.h"

namespace lightmirm::gbdt {
namespace {

struct Problem {
  Matrix raw;
  BinnedMatrix binned;
  std::vector<double> grads;
  std::vector<double> hessians;
  std::vector<size_t> rows;
};

// Gradient pattern an ideal tree can fit: grad = -sign(x0) - sign(x1)/2.
Problem MakeProblem(size_t n, uint64_t seed) {
  Rng rng(seed);
  Problem p{Matrix(n, 2), BinnedMatrix(), {}, {}, {}};
  p.grads.resize(n);
  p.hessians.assign(n, 1.0);
  for (size_t i = 0; i < n; ++i) {
    p.raw.At(i, 0) = rng.Normal();
    p.raw.At(i, 1) = rng.Normal();
    p.grads[i] = -(p.raw.At(i, 0) > 0 ? 1.0 : -1.0) -
                 0.5 * (p.raw.At(i, 1) > 0 ? 1.0 : -1.0);
    p.rows.push_back(i);
  }
  p.binned = *BinnedMatrix::Build(p.raw, 32);
  return p;
}

TEST(GrowTreeTest, RespectsMaxLeaves) {
  Problem p = MakeProblem(500, 1);
  TreeLearnerOptions options;
  options.max_leaves = 4;
  Rng rng(2);
  const Tree tree =
      *GrowTree(p.binned, p.rows, p.grads, p.hessians, options, &rng);
  EXPECT_LE(tree.num_leaves(), 4);
  EXPECT_GE(tree.num_leaves(), 2);
}

TEST(GrowTreeTest, LeafOrdinalsAreDense) {
  Problem p = MakeProblem(500, 3);
  TreeLearnerOptions options;
  options.max_leaves = 8;
  Rng rng(4);
  const Tree tree =
      *GrowTree(p.binned, p.rows, p.grads, p.hessians, options, &rng);
  std::set<int> ordinals;
  for (const TreeNode& node : tree.nodes()) {
    if (node.is_leaf) ordinals.insert(node.leaf_ordinal);
  }
  EXPECT_EQ(static_cast<int>(ordinals.size()), tree.num_leaves());
  EXPECT_EQ(*ordinals.begin(), 0);
  EXPECT_EQ(*ordinals.rbegin(), tree.num_leaves() - 1);
}

TEST(GrowTreeTest, PredictLeafMatchesTraversal) {
  Problem p = MakeProblem(300, 5);
  TreeLearnerOptions options;
  options.max_leaves = 6;
  Rng rng(6);
  const Tree tree =
      *GrowTree(p.binned, p.rows, p.grads, p.hessians, options, &rng);
  for (size_t i = 0; i < 300; i += 7) {
    const int leaf = tree.PredictLeaf(p.raw.Row(i));
    EXPECT_GE(leaf, 0);
    EXPECT_LT(leaf, tree.num_leaves());
    // Rows in the same leaf share the same prediction.
    EXPECT_EQ(tree.Predict(p.raw.Row(i)),
              tree.Predict(p.raw.Row(i)));
  }
}

TEST(GrowTreeTest, FitsSignPattern) {
  // With 4 leaves the tree can capture the 2x2 sign structure: predictions
  // should be positively correlated with -grad.
  Problem p = MakeProblem(2000, 7);
  TreeLearnerOptions options;
  options.max_leaves = 4;
  options.shrinkage = 1.0;
  Rng rng(8);
  const Tree tree =
      *GrowTree(p.binned, p.rows, p.grads, p.hessians, options, &rng);
  double corr = 0.0;
  for (size_t i = 0; i < 2000; ++i) {
    corr += tree.Predict(p.raw.Row(i)) * (-p.grads[i]);
  }
  EXPECT_GT(corr / 2000.0, 0.5);
}

TEST(GrowTreeTest, ShrinkageScalesLeafValues) {
  Problem p = MakeProblem(500, 9);
  TreeLearnerOptions full, tenth;
  full.max_leaves = 4;
  full.shrinkage = 1.0;
  tenth.max_leaves = 4;
  tenth.shrinkage = 0.1;
  Rng rng1(10), rng2(10);
  const Tree t1 =
      *GrowTree(p.binned, p.rows, p.grads, p.hessians, full, &rng1);
  const Tree t2 =
      *GrowTree(p.binned, p.rows, p.grads, p.hessians, tenth, &rng2);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_NEAR(t2.Predict(p.raw.Row(i)), 0.1 * t1.Predict(p.raw.Row(i)),
                1e-9);
  }
}

TEST(GrowTreeTest, PureNodeStopsEarly) {
  // Uniform gradient: no split has positive gain -> single leaf.
  const size_t n = 100;
  Matrix raw(n, 1);
  Rng data_rng(11);
  for (size_t i = 0; i < n; ++i) raw.At(i, 0) = data_rng.Normal();
  const BinnedMatrix binned = *BinnedMatrix::Build(raw, 16);
  std::vector<double> grads(n, 1.0), hessians(n, 1.0);
  std::vector<size_t> rows;
  for (size_t i = 0; i < n; ++i) rows.push_back(i);
  TreeLearnerOptions options;
  options.max_leaves = 16;
  Rng rng(12);
  const Tree tree = *GrowTree(binned, rows, grads, hessians, options, &rng);
  EXPECT_EQ(tree.num_leaves(), 1);
}

TEST(GrowTreeTest, RejectsBadInputs) {
  Problem p = MakeProblem(50, 13);
  TreeLearnerOptions options;
  Rng rng(14);
  options.max_leaves = 1;
  EXPECT_FALSE(
      GrowTree(p.binned, p.rows, p.grads, p.hessians, options, &rng).ok());
  options.max_leaves = 4;
  EXPECT_FALSE(
      GrowTree(p.binned, {}, p.grads, p.hessians, options, &rng).ok());
}

TEST(GrowTreeTest, FeatureFractionLimitsFeatures) {
  Problem p = MakeProblem(500, 15);
  TreeLearnerOptions options;
  options.max_leaves = 8;
  options.feature_fraction = 0.5;  // only 1 of 2 features per tree
  Rng rng(16);
  const Tree tree =
      *GrowTree(p.binned, p.rows, p.grads, p.hessians, options, &rng);
  std::set<int> used;
  for (const TreeNode& node : tree.nodes()) {
    if (!node.is_leaf) used.insert(node.feature);
  }
  EXPECT_LE(used.size(), 1u);
}

TEST(QuantizeThresholdTest, FloatCompareMatchesDoubleCompareForFloats) {
  // The serving contract: for every float x and double threshold t,
  // x <= QuantizeThreshold(t) in float must equal (double)x <= t.
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    const double t = rng.Normal() * std::pow(10.0, rng.Uniform(-4, 4));
    const float qt = QuantizeThreshold(t);
    // Probe floats bracketing the threshold, including the quantized value
    // itself and its neighbors.
    const float probes[] = {
        qt,
        std::nextafterf(qt, std::numeric_limits<float>::infinity()),
        std::nextafterf(qt, -std::numeric_limits<float>::infinity()),
        static_cast<float>(t),
        static_cast<float>(rng.Normal())};
    for (const float x : probes) {
      EXPECT_EQ(x <= qt, static_cast<double>(x) <= t)
          << "x=" << x << " t=" << t;
    }
  }
}

}  // namespace
}  // namespace lightmirm::gbdt
