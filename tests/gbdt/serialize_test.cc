#include "gbdt/serialize.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "linear/logistic.h"

namespace lightmirm::gbdt {
namespace {

Booster TrainBooster() {
  Rng rng(1);
  const size_t n = 600;
  Matrix features(n, 3);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < 3; ++j) features.At(i, j) = rng.Normal();
    labels[i] =
        rng.Bernoulli(linear::Sigmoid(1.5 * features.At(i, 1))) ? 1 : 0;
  }
  BoosterOptions options;
  options.num_trees = 8;
  options.tree.max_leaves = 5;
  return *Booster::Train(features, labels, options);
}

TEST(SerializeTest, RoundTripPreservesPredictions) {
  const Booster original = TrainBooster();
  std::stringstream buffer;
  ASSERT_TRUE(SaveBooster(original, &buffer).ok());
  const Booster loaded = *LoadBooster(&buffer);
  EXPECT_EQ(loaded.trees().size(), original.trees().size());
  EXPECT_DOUBLE_EQ(loaded.base_score(), original.base_score());
  Rng rng(9);
  std::vector<double> row(3);
  for (int trial = 0; trial < 200; ++trial) {
    for (double& v : row) v = rng.Normal(0.0, 2.0);
    EXPECT_DOUBLE_EQ(loaded.PredictLogit(row.data()),
                     original.PredictLogit(row.data()));
    EXPECT_EQ(loaded.trees()[0].PredictLeaf(row.data()),
              original.trees()[0].PredictLeaf(row.data()));
  }
}

TEST(SerializeTest, FileRoundTrip) {
  const std::string path =
      std::string(::testing::TempDir()) + "/booster.txt";
  const Booster original = TrainBooster();
  ASSERT_TRUE(SaveBoosterToFile(original, path).ok());
  const Booster loaded = *LoadBoosterFromFile(path);
  Rng rng(10);
  std::vector<double> row(3);
  for (double& v : row) v = rng.Normal();
  EXPECT_DOUBLE_EQ(loaded.PredictLogit(row.data()),
                   original.PredictLogit(row.data()));
}

TEST(SerializeTest, RejectsBadHeader) {
  std::stringstream buffer("not-a-booster\n");
  EXPECT_FALSE(LoadBooster(&buffer).ok());
}

TEST(SerializeTest, RejectsTruncatedStream) {
  const Booster original = TrainBooster();
  std::stringstream buffer;
  ASSERT_TRUE(SaveBooster(original, &buffer).ok());
  std::string text = buffer.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_FALSE(LoadBooster(&truncated).ok());
}

TEST(SerializeTest, RejectsChildIndexOutOfRange) {
  std::stringstream buffer(
      "lightmirm-booster-v1\n"
      "base_score 0\n"
      "num_trees 1\n"
      "tree 1\n"
      "split 0 0.5 5 6\n");
  EXPECT_FALSE(LoadBooster(&buffer).ok());
}

TEST(SerializeTest, MissingFileIsIoError) {
  auto r = LoadBoosterFromFile("/no/such/booster.txt");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace lightmirm::gbdt
