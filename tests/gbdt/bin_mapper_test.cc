#include "gbdt/bin_mapper.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace lightmirm::gbdt {
namespace {

TEST(BinMapperTest, BinsAreOrderedAndCoverRange) {
  Rng rng(1);
  std::vector<double> values(1000);
  for (double& v : values) v = rng.Normal();
  const BinMapper mapper = BinMapper::Fit(values, 16);
  EXPECT_GT(mapper.num_bins(), 4);
  EXPECT_LE(mapper.num_bins(), 16);
  const auto& bounds = mapper.upper_bounds();
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
  }
}

TEST(BinMapperTest, BinOfRespectsBoundaries) {
  Rng rng(2);
  std::vector<double> values(500);
  for (double& v : values) v = rng.Uniform();
  const BinMapper mapper = BinMapper::Fit(values, 8);
  for (double v : values) {
    const uint16_t b = mapper.BinOf(v);
    ASSERT_LT(b, mapper.num_bins());
    // bin b covers (ub[b-1], ub[b]]
    if (b > 0) EXPECT_GT(v, mapper.UpperBound(b - 1));
    if (b + 1 < mapper.num_bins()) EXPECT_LE(v, mapper.UpperBound(b));
  }
}

TEST(BinMapperTest, ExtremeValuesLandInEdgeBins) {
  std::vector<double> values = {1, 2, 3, 4, 5, 6, 7, 8};
  const BinMapper mapper = BinMapper::Fit(values, 4);
  EXPECT_EQ(mapper.BinOf(-100.0), 0);
  EXPECT_EQ(mapper.BinOf(100.0), mapper.num_bins() - 1);
}

TEST(BinMapperTest, FewDistinctValuesCollapseBins) {
  std::vector<double> values(100, 1.0);
  values.resize(200, 1.0);
  for (size_t i = 0; i < 100; ++i) values.push_back(2.0);
  const BinMapper mapper = BinMapper::Fit(values, 32);
  EXPECT_LE(mapper.num_bins(), 3);
  EXPECT_NE(mapper.BinOf(1.0), mapper.BinOf(2.0));
}

TEST(BinMapperTest, ConstantFeatureGetsOneBin) {
  std::vector<double> values(100, 5.0);
  const BinMapper mapper = BinMapper::Fit(values, 16);
  EXPECT_EQ(mapper.num_bins(), 1);
  EXPECT_EQ(mapper.BinOf(5.0), 0);
  EXPECT_EQ(mapper.BinOf(99.0), 0);
}

TEST(BinnedMatrixTest, BuildsAllColumns) {
  Rng rng(3);
  Matrix raw(200, 4);
  for (size_t r = 0; r < raw.rows(); ++r) {
    for (size_t c = 0; c < raw.cols(); ++c) raw.At(r, c) = rng.Normal();
  }
  const BinnedMatrix binned = *BinnedMatrix::Build(raw, 16);
  EXPECT_EQ(binned.rows(), 200u);
  EXPECT_EQ(binned.num_features(), 4u);
  EXPECT_LE(binned.MaxBinCount(), 16);
  for (size_t f = 0; f < 4; ++f) {
    const auto& bins = binned.FeatureBins(f);
    ASSERT_EQ(bins.size(), 200u);
    for (size_t r = 0; r < 200; ++r) {
      EXPECT_EQ(bins[r], binned.mapper(f).BinOf(raw.At(r, f)));
    }
  }
}

TEST(BinnedMatrixTest, RejectsBadInputs) {
  EXPECT_FALSE(BinnedMatrix::Build(Matrix(0, 0), 16).ok());
  EXPECT_FALSE(BinnedMatrix::Build(Matrix(10, 2), 1).ok());
  EXPECT_FALSE(BinnedMatrix::Build(Matrix(10, 2), 100000).ok());
}

// Property: binning is monotone — larger values never get smaller bins.
class BinMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(BinMonotoneTest, BinOfIsMonotone) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  std::vector<double> values(400);
  for (double& v : values) v = rng.Normal(0.0, 3.0);
  const BinMapper mapper = BinMapper::Fit(values, GetParam() % 60 + 4);
  double prev = -10.0;
  for (double v = -10.0; v <= 10.0; v += 0.05) {
    EXPECT_LE(mapper.BinOf(prev), mapper.BinOf(v));
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinMonotoneTest,
                         ::testing::Values(2, 7, 19, 64, 255));

}  // namespace
}  // namespace lightmirm::gbdt
