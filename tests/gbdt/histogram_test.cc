#include "gbdt/histogram.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace lightmirm::gbdt {
namespace {

BinnedMatrix MakeBinned(size_t rows, size_t cols, uint64_t seed,
                        Matrix* raw_out = nullptr) {
  Rng rng(seed);
  Matrix raw(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) raw.At(r, c) = rng.Normal();
  }
  if (raw_out != nullptr) *raw_out = raw;
  return *BinnedMatrix::Build(raw, 8);
}

TEST(NodeHistogramTest, BuildAccumulatesStats) {
  const BinnedMatrix binned = MakeBinned(100, 2, 1);
  std::vector<double> grads(100, 1.0), hessians(100, 0.5);
  std::vector<size_t> rows;
  for (size_t i = 0; i < 100; ++i) rows.push_back(i);
  NodeHistogram hist(2, binned.MaxBinCount());
  hist.Build(binned, rows, grads, hessians);
  double total_grad = 0.0, total_count = 0.0;
  for (int b = 0; b < binned.mapper(0).num_bins(); ++b) {
    total_grad += hist.At(0, b).grad;
    total_count += hist.At(0, b).count;
  }
  EXPECT_DOUBLE_EQ(total_grad, 100.0);
  EXPECT_DOUBLE_EQ(total_count, 100.0);
}

TEST(NodeHistogramTest, SubtractionRecoversSibling) {
  const BinnedMatrix binned = MakeBinned(200, 3, 2);
  Rng rng(3);
  std::vector<double> grads(200), hessians(200);
  for (size_t i = 0; i < 200; ++i) {
    grads[i] = rng.Normal();
    hessians[i] = rng.Uniform(0.1, 1.0);
  }
  std::vector<size_t> all, left, right;
  for (size_t i = 0; i < 200; ++i) {
    all.push_back(i);
    (i % 3 == 0 ? left : right).push_back(i);
  }
  NodeHistogram parent(3, binned.MaxBinCount());
  NodeHistogram small(3, binned.MaxBinCount());
  NodeHistogram derived(3, binned.MaxBinCount());
  NodeHistogram direct(3, binned.MaxBinCount());
  parent.Build(binned, all, grads, hessians);
  small.Build(binned, left, grads, hessians);
  derived.SubtractFrom(parent, small);
  direct.Build(binned, right, grads, hessians);
  for (size_t f = 0; f < 3; ++f) {
    for (int b = 0; b < binned.mapper(f).num_bins(); ++b) {
      EXPECT_NEAR(derived.At(f, b).grad, direct.At(f, b).grad, 1e-9);
      EXPECT_NEAR(derived.At(f, b).hess, direct.At(f, b).hess, 1e-9);
      EXPECT_NEAR(derived.At(f, b).count, direct.At(f, b).count, 1e-9);
    }
  }
}

TEST(SplitSearchTest, FindsObviousSplit) {
  // Feature 0 perfectly separates gradient signs at value 0.
  const size_t n = 400;
  Matrix raw(n, 1);
  std::vector<double> grads(n), hessians(n, 1.0);
  for (size_t i = 0; i < n; ++i) {
    raw.At(i, 0) = (i < n / 2) ? -1.0 - 0.001 * i : 1.0 + 0.001 * i;
    grads[i] = (i < n / 2) ? -1.0 : 1.0;
  }
  const BinnedMatrix binned = *BinnedMatrix::Build(raw, 16);
  std::vector<size_t> rows;
  for (size_t i = 0; i < n; ++i) rows.push_back(i);
  NodeHistogram hist(1, binned.MaxBinCount());
  hist.Build(binned, rows, grads, hessians);
  SplitOptions options;
  const SplitInfo split = FindBestSplit(
      hist, {binned.mapper(0).num_bins()}, 0.0, static_cast<double>(n),
      static_cast<double>(n), options);
  ASSERT_TRUE(split.valid);
  EXPECT_EQ(split.feature, 0);
  EXPECT_NEAR(split.left_count, n / 2.0, 2.0);
  EXPECT_DOUBLE_EQ(split.left_count + split.right_count,
                   static_cast<double>(n));
  EXPECT_LT(split.left_grad, 0.0);
  EXPECT_GT(split.right_grad, 0.0);
  EXPECT_GT(split.gain, 100.0);
}

TEST(SplitSearchTest, RespectsMinDataInLeaf) {
  const size_t n = 30;
  Matrix raw(n, 1);
  std::vector<double> grads(n, 0.0), hessians(n, 1.0);
  for (size_t i = 0; i < n; ++i) {
    raw.At(i, 0) = static_cast<double>(i);
    grads[i] = i < 2 ? -10.0 : 1.0;  // best cut isolates 2 rows
  }
  const BinnedMatrix binned = *BinnedMatrix::Build(raw, 32);
  std::vector<size_t> rows;
  for (size_t i = 0; i < n; ++i) rows.push_back(i);
  NodeHistogram hist(1, binned.MaxBinCount());
  hist.Build(binned, rows, grads, hessians);
  SplitOptions options;
  options.min_data_in_leaf = 10.0;
  double total_grad = 0.0;
  for (double g : grads) total_grad += g;
  const SplitInfo split = FindBestSplit(
      hist, {binned.mapper(0).num_bins()}, total_grad,
      static_cast<double>(n), static_cast<double>(n), options);
  if (split.valid) {
    EXPECT_GE(split.left_count, 10.0);
    EXPECT_GE(split.right_count, 10.0);
  }
}

TEST(SplitSearchTest, FeatureMaskDisablesFeatures) {
  const BinnedMatrix binned = MakeBinned(100, 2, 5);
  Rng rng(6);
  std::vector<double> grads(100), hessians(100, 1.0);
  for (double& g : grads) g = rng.Normal();
  std::vector<size_t> rows;
  for (size_t i = 0; i < 100; ++i) rows.push_back(i);
  NodeHistogram hist(2, binned.MaxBinCount());
  hist.Build(binned, rows, grads, hessians);
  SplitOptions options;
  options.min_data_in_leaf = 1.0;
  options.min_gain = 0.0;
  options.feature_mask = {0, 1};  // only feature 1 allowed
  double total_grad = 0.0;
  for (double g : grads) total_grad += g;
  const SplitInfo split = FindBestSplit(
      hist,
      {binned.mapper(0).num_bins(), binned.mapper(1).num_bins()},
      total_grad, 100.0, 100.0, options);
  if (split.valid) EXPECT_EQ(split.feature, 1);
}

TEST(LeafMathTest, OutputAndScore) {
  EXPECT_DOUBLE_EQ(LeafOutput(-4.0, 3.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(NodeScore(-4.0, 3.0, 1.0), 4.0);
}

}  // namespace
}  // namespace lightmirm::gbdt
