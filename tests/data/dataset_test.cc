#include "data/dataset.h"

#include <gtest/gtest.h>

namespace lightmirm::data {
namespace {

Dataset MakeDataset() {
  Schema schema({{"f0", FeatureKind::kNumeric, 0},
                 {"f1", FeatureKind::kNumeric, 0}});
  Matrix feats(4, 2, {0, 1, 2, 3, 4, 5, 6, 7});
  Dataset ds(std::move(schema), std::move(feats), {0, 1, 0, 1},
             {0, 0, 1, 2}, {2016, 2017, 2018, 2020}, {1, 2, 1, 2});
  ds.set_env_names({"A", "B", "C"});
  return ds;
}

TEST(DatasetTest, BasicAccessors) {
  const Dataset ds = MakeDataset();
  EXPECT_EQ(ds.NumRows(), 4u);
  EXPECT_EQ(ds.NumFeatures(), 2u);
  EXPECT_EQ(ds.NumEnvs(), 3);
  EXPECT_DOUBLE_EQ(ds.PositiveRate(), 0.5);
  EXPECT_EQ(ds.EnvName(1), "B");
  EXPECT_EQ(ds.EnvName(9), "env9");
}

TEST(DatasetTest, ValidateAcceptsConsistentData) {
  EXPECT_TRUE(MakeDataset().Validate().ok());
}

TEST(DatasetTest, ValidateRejectsBadLabel) {
  Schema schema({{"f", FeatureKind::kNumeric, 0}});
  Dataset ds(std::move(schema), Matrix(1, 1), {2}, {0}, {2016}, {1});
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(DatasetTest, ValidateRejectsColumnMismatch) {
  Schema schema({{"f", FeatureKind::kNumeric, 0}});
  Dataset ds(std::move(schema), Matrix(2, 1), {0}, {0, 0}, {2016, 2016},
             {1, 1});
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(DatasetTest, ValidateRejectsSchemaWidthMismatch) {
  Schema schema({{"f", FeatureKind::kNumeric, 0},
                 {"g", FeatureKind::kNumeric, 0}});
  Dataset ds(std::move(schema), Matrix(1, 1), {0}, {0}, {2016}, {1});
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(DatasetTest, SelectExtractsRowsInOrder) {
  const Dataset ds = MakeDataset();
  const Dataset sub = *ds.Select({2, 0});
  ASSERT_EQ(sub.NumRows(), 2u);
  EXPECT_DOUBLE_EQ(sub.features().At(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(sub.features().At(1, 0), 0.0);
  EXPECT_EQ(sub.labels()[0], 0);
  EXPECT_EQ(sub.envs()[0], 1);
  EXPECT_EQ(sub.years()[1], 2016);
  EXPECT_EQ(sub.EnvName(1), "B");  // env names propagate
}

TEST(DatasetTest, SelectRejectsOutOfRange) {
  const Dataset ds = MakeDataset();
  EXPECT_FALSE(ds.Select({7}).ok());
}

TEST(DatasetTest, SelectAllowsDuplicates) {
  const Dataset ds = MakeDataset();
  const Dataset sub = *ds.Select({1, 1, 1});
  EXPECT_EQ(sub.NumRows(), 3u);
  EXPECT_EQ(sub.labels()[2], 1);
}

}  // namespace
}  // namespace lightmirm::data
