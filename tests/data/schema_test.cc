#include "data/schema.h"

#include <gtest/gtest.h>

namespace lightmirm::data {
namespace {

TEST(SchemaTest, AddAndLookupFields) {
  Schema schema;
  EXPECT_EQ(schema.AddField({"age", FeatureKind::kNumeric, 0}), 0u);
  EXPECT_EQ(schema.AddField({"vehicle", FeatureKind::kCategorical, 4}), 1u);
  EXPECT_EQ(schema.num_features(), 2u);
  EXPECT_EQ(*schema.FieldIndex("vehicle"), 1u);
  EXPECT_EQ(schema.field(1).cardinality, 4);
  EXPECT_FALSE(schema.FieldIndex("missing").ok());
}

TEST(SchemaTest, EqualityComparesAllFields) {
  Schema a({{"x", FeatureKind::kNumeric, 0}});
  Schema b({{"x", FeatureKind::kNumeric, 0}});
  Schema c({{"x", FeatureKind::kBinary, 0}});
  Schema d({{"y", FeatureKind::kNumeric, 0}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
  EXPECT_FALSE(a == Schema());
}

}  // namespace
}  // namespace lightmirm::data
