#include "data/loan_generator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/env_split.h"
#include "metrics/env_report.h"

namespace lightmirm::data {
namespace {

LoanGeneratorOptions SmallOptions() {
  LoanGeneratorOptions options;
  options.rows_per_year = 2000;
  options.seed = 77;
  return options;
}

TEST(LoanGeneratorTest, ProvinceNamesAndLookup) {
  EXPECT_EQ(LoanGenerator::ProvinceNames().size(), 31u);
  EXPECT_EQ(*LoanGenerator::ProvinceIndex("Guangdong"), 0);
  EXPECT_EQ(*LoanGenerator::ProvinceIndex("Hubei"), 6);
  EXPECT_FALSE(LoanGenerator::ProvinceIndex("Atlantis").ok());
}

TEST(LoanGeneratorTest, GeneratesRequestedShape) {
  const LoanGenerator gen(SmallOptions());
  const Dataset ds = *gen.Generate();
  EXPECT_EQ(ds.NumRows(), 2000u * 5u);
  EXPECT_EQ(static_cast<int>(ds.NumFeatures()), gen.NumFeatures());
  EXPECT_EQ(gen.NumFeatures(), 210);  // the paper's dimensionality
  EXPECT_TRUE(ds.Validate().ok());
}

TEST(LoanGeneratorTest, DeterministicGivenSeed) {
  const Dataset a = *LoanGenerator(SmallOptions()).Generate();
  const Dataset b = *LoanGenerator(SmallOptions()).Generate();
  ASSERT_EQ(a.NumRows(), b.NumRows());
  for (size_t i = 0; i < a.NumRows(); i += 97) {
    EXPECT_EQ(a.labels()[i], b.labels()[i]);
    EXPECT_EQ(a.envs()[i], b.envs()[i]);
    EXPECT_DOUBLE_EQ(a.features().At(i, 0), b.features().At(i, 0));
  }
}

TEST(LoanGeneratorTest, DifferentSeedsDiffer) {
  LoanGeneratorOptions other = SmallOptions();
  other.seed = 78;
  const Dataset a = *LoanGenerator(SmallOptions()).Generate();
  const Dataset b = *LoanGenerator(other).Generate();
  size_t diff = 0;
  for (size_t i = 0; i < a.NumRows(); i += 13) {
    if (a.labels()[i] != b.labels()[i]) ++diff;
  }
  EXPECT_GT(diff, 0u);
}

TEST(LoanGeneratorTest, DefaultRateInPlausibleBand) {
  const Dataset ds = *LoanGenerator(SmallOptions()).Generate();
  EXPECT_GT(ds.PositiveRate(), 0.04);
  EXPECT_LT(ds.PositiveRate(), 0.20);
}

TEST(LoanGeneratorTest, GuangdongShareHalvesIn2020) {
  const LoanGenerator gen(SmallOptions());
  const std::vector<double> pre = gen.YearShares(2019);
  const std::vector<double> post = gen.YearShares(2020);
  const double ratio = post[0] / pre[0];
  EXPECT_LT(ratio, 0.65);
  EXPECT_GT(ratio, 0.40);
}

TEST(LoanGeneratorTest, YearSharesNormalized) {
  const LoanGenerator gen(SmallOptions());
  for (int year : {2016, 2020}) {
    double total = 0.0;
    for (double s : gen.YearShares(year)) total += s;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(LoanGeneratorTest, VehicleMixIsDistributionAndShiftsWithEconomy) {
  const LoanGenerator gen(SmallOptions());
  const int shanghai = *LoanGenerator::ProvinceIndex("Shanghai");
  const int tibet = *LoanGenerator::ProvinceIndex("Tibet");
  for (int p : {shanghai, tibet}) {
    const auto mix = gen.VehicleMix(p, 2018);
    double total = 0.0;
    for (double v : mix) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  // Developed Shanghai buys more trailer trucks; Tibet more used cars.
  EXPECT_GT(gen.VehicleMix(shanghai, 2018)[2], gen.VehicleMix(tibet, 2018)[2]);
  EXPECT_LT(gen.VehicleMix(shanghai, 2018)[1], gen.VehicleMix(tibet, 2018)[1]);
}

TEST(LoanGeneratorTest, UsedCarShareGrowsOverYears) {
  const LoanGenerator gen(SmallOptions());
  const int henan = *LoanGenerator::ProvinceIndex("Henan");
  EXPECT_GT(gen.VehicleMix(henan, 2020)[1], gen.VehicleMix(henan, 2016)[1]);
}

TEST(LoanGeneratorTest, TrueLogitsAreBayesOptimal) {
  std::vector<double> logits;
  const Dataset ds = *LoanGenerator(SmallOptions()).Generate(&logits);
  ASSERT_EQ(logits.size(), ds.NumRows());
  // The true logit must rank labels far better than chance.
  const auto pooled = metrics::EvaluatePooled(ds.labels(), logits);
  ASSERT_TRUE(pooled.ok());
  EXPECT_GT(pooled->auc, 0.85);
}

TEST(LoanGeneratorTest, CovidRaisesHubeiH1DefaultRate) {
  LoanGeneratorOptions options = SmallOptions();
  options.rows_per_year = 20000;  // enough Hubei-2020 rows
  const Dataset ds = *LoanGenerator(options).Generate();
  const int hubei = *LoanGenerator::ProvinceIndex("Hubei");
  double h1_pos = 0, h1_n = 0, h2_pos = 0, h2_n = 0;
  for (size_t i = 0; i < ds.NumRows(); ++i) {
    if (ds.envs()[i] != hubei || ds.years()[i] != 2020) continue;
    if (ds.halves()[i] == 1) {
      h1_n += 1;
      h1_pos += ds.labels()[i];
    } else {
      h2_n += 1;
      h2_pos += ds.labels()[i];
    }
  }
  ASSERT_GT(h1_n, 100);
  ASSERT_GT(h2_n, 100);
  EXPECT_GT(h1_pos / h1_n, 1.15 * (h2_pos / h2_n));
}

TEST(LoanGeneratorTest, RejectsBadOptions) {
  LoanGeneratorOptions options = SmallOptions();
  options.rows_per_year = 0;
  EXPECT_FALSE(LoanGenerator(options).Generate().ok());
  options = SmallOptions();
  options.last_year = options.first_year - 1;
  EXPECT_FALSE(LoanGenerator(options).Generate().ok());
}

TEST(LoanGeneratorTest, ProfilesGiveSmallProvincesDisagreeingPatterns) {
  const LoanGenerator gen(SmallOptions());
  const auto& profiles = gen.profiles();
  // Guangdong (largest): strongly aligned spurious patterns.
  EXPECT_GT(profiles[0].spurious_agree_train, 0.85);
  // Tibet (smallest): below 0.5 -> locally flipped.
  EXPECT_LT(profiles[30].spurious_agree_train, 0.5);
}

// Property sweep: every year's env column stays within range for several
// seeds.
class GeneratorSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorSeedTest, EnvAndHalfColumnsWellFormed) {
  LoanGeneratorOptions options;
  options.rows_per_year = 500;
  options.seed = GetParam();
  const Dataset ds = *LoanGenerator(options).Generate();
  for (size_t i = 0; i < ds.NumRows(); ++i) {
    EXPECT_GE(ds.envs()[i], 0);
    EXPECT_LT(ds.envs()[i], 31);
    EXPECT_TRUE(ds.halves()[i] == 1 || ds.halves()[i] == 2);
    EXPECT_GE(ds.years()[i], 2016);
    EXPECT_LE(ds.years()[i], 2020);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedTest,
                         ::testing::Values(1, 42, 77, 1234, 99999));

}  // namespace
}  // namespace lightmirm::data
