#include "data/env_split.h"

#include <gtest/gtest.h>

namespace lightmirm::data {
namespace {

Dataset MakeDataset() {
  // 8 rows, 3 envs (env 2 empty), years 2016..2020.
  Schema schema({{"f", FeatureKind::kNumeric, 0}});
  Matrix feats(8, 1);
  for (size_t i = 0; i < 8; ++i) feats.At(i, 0) = static_cast<double>(i);
  return Dataset(std::move(schema), std::move(feats),
                 {0, 1, 0, 1, 0, 1, 0, 1}, {0, 0, 1, 1, 0, 3, 3, 0},
                 {2016, 2017, 2018, 2019, 2020, 2020, 2016, 2018},
                 {1, 1, 2, 2, 1, 2, 1, 1});
}

TEST(GroupByEnvTest, GroupsRowsByEnvironment) {
  const auto groups = GroupByEnv(MakeDataset());
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[0].size(), 4u);
  EXPECT_EQ(groups[1].size(), 2u);
  EXPECT_TRUE(groups[2].empty());
  EXPECT_EQ(groups[3].size(), 2u);
}

TEST(TemporalSplitTest, SplitsByYear) {
  const Split split = *TemporalSplit(MakeDataset(), 2020);
  EXPECT_EQ(split.train.NumRows(), 6u);
  EXPECT_EQ(split.test.NumRows(), 2u);
  for (int y : split.train.years()) EXPECT_LT(y, 2020);
  for (int y : split.test.years()) EXPECT_EQ(y, 2020);
}

TEST(TemporalSplitTest, RejectsRowsAfterTestYear) {
  EXPECT_FALSE(TemporalSplit(MakeDataset(), 2019).ok());
}

TEST(RandomSplitTest, PartitionsAllRows) {
  Rng rng(3);
  const Split split = *RandomSplit(MakeDataset(), 0.25, &rng);
  EXPECT_EQ(split.test.NumRows(), 2u);
  EXPECT_EQ(split.train.NumRows(), 6u);
}

TEST(RandomSplitTest, RejectsDegenerateFractions) {
  Rng rng(3);
  EXPECT_FALSE(RandomSplit(MakeDataset(), 0.0, &rng).ok());
  EXPECT_FALSE(RandomSplit(MakeDataset(), 1.0, &rng).ok());
}

TEST(RandomSplitTest, DeterministicGivenSeed) {
  Rng rng1(5), rng2(5);
  const Split a = *RandomSplit(MakeDataset(), 0.5, &rng1);
  const Split b = *RandomSplit(MakeDataset(), 0.5, &rng2);
  ASSERT_EQ(a.test.NumRows(), b.test.NumRows());
  for (size_t i = 0; i < a.test.NumRows(); ++i) {
    EXPECT_DOUBLE_EQ(a.test.features().At(i, 0),
                     b.test.features().At(i, 0));
  }
}

TEST(SplitByEnvTest, SeparatesEnvironments) {
  const auto parts = *SplitByEnv(MakeDataset());
  ASSERT_EQ(parts.size(), 3u);  // env 2 has no rows
  EXPECT_EQ(parts[0].NumRows(), 4u);
  EXPECT_EQ(parts[1].NumRows(), 2u);
  EXPECT_EQ(parts[2].NumRows(), 2u);
}

TEST(SplitByEnvTest, MergesTinyEnvironmentsIntoRest) {
  const auto parts = *SplitByEnv(MakeDataset(), 3);
  // envs 1 and 3 (2 rows each) merge into one "rest" dataset.
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].NumRows(), 4u);
  EXPECT_EQ(parts[1].NumRows(), 4u);
}

TEST(EnvCountsTest, CountsPerEnvironment) {
  const auto counts = EnvCounts(MakeDataset());
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 4u);
  EXPECT_EQ(counts[2], 0u);
}

}  // namespace
}  // namespace lightmirm::data
