// Round-trip property tests for the column codecs: every encoder/decoder
// pair over adversarial shapes — empty and 1-row chunks, all-equal runs,
// int64 extremes, NaN payloads / infinities / signed zeros, values sitting
// exactly on float boundaries — plus the serving-grid codec's defining
// property: the decoded value decides every `x <= threshold` comparison of
// the originating forest exactly as the original did, in both the double
// (scalar kernel) and quantized-float (SIMD kernel) comparison spaces.
// Truncated payloads must come back as Status errors, never UB.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "data/codec.h"
#include "gbdt/tree.h"

namespace lightmirm::data {
namespace {

double FromBits(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

bool SameBits(double a, double b) {
  uint64_t ab, bb;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb;
}

// Doubles that stress a bit-exact contract: NaNs with distinct payloads,
// infinities, signed zeros, denormals, and float-boundary values.
std::vector<double> SpecialDoubles() {
  return {
      0.0,
      -0.0,
      1.0,
      -1.0,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      FromBits(0x7FF8000000000001ULL),  // NaN, different payload
      FromBits(0xFFF8000000000123ULL),  // negative NaN
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::lowest(),
      1.5,                                   // exactly a float
      0.1,                                   // not a float
      static_cast<double>(std::numeric_limits<float>::max()),
      std::nextafter(1.0f, 2.0f),            // float boundary
  };
}

TEST(CodecTest, VarintRoundTrip) {
  const uint64_t cases[] = {0,   1,    127,        128,
                            300, 1u << 20, ~uint64_t{0}};
  for (uint64_t value : cases) {
    std::vector<uint8_t> bytes;
    AppendVarint(value, &bytes);
    size_t pos = 0;
    uint64_t decoded = 0;
    ASSERT_TRUE(ReadVarint(bytes.data(), bytes.size(), &pos, &decoded).ok());
    EXPECT_EQ(decoded, value);
    EXPECT_EQ(pos, bytes.size());
    // Truncation errors rather than reading past the buffer.
    size_t short_pos = 0;
    EXPECT_FALSE(
        ReadVarint(bytes.data(), bytes.size() - 1, &short_pos, &decoded)
            .ok());
  }
}

TEST(CodecTest, ZigzagRoundTrip) {
  const int64_t cases[] = {0,  -1, 1,  -2, 2, std::numeric_limits<int64_t>::min(),
                           std::numeric_limits<int64_t>::max()};
  for (int64_t value : cases) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(value)), value);
  }
  // Small magnitudes stay small — that is the point of the mapping.
  EXPECT_EQ(ZigzagEncode(0), 0u);
  EXPECT_EQ(ZigzagEncode(-1), 1u);
  EXPECT_EQ(ZigzagEncode(1), 2u);
}

void ExpectDeltaBitpackRoundTrip(const std::vector<int64_t>& values) {
  std::vector<uint8_t> bytes;
  EncodeDeltaBitpack(values.data(), values.size(), &bytes);
  std::vector<int64_t> decoded(values.size());
  ASSERT_TRUE(
      DecodeDeltaBitpack(bytes.data(), bytes.size(), values.size(),
                         decoded.data())
          .ok());
  EXPECT_EQ(decoded, values);
}

TEST(CodecTest, DeltaBitpackRoundTrip) {
  ExpectDeltaBitpackRoundTrip({});
  ExpectDeltaBitpackRoundTrip({42});
  ExpectDeltaBitpackRoundTrip({7, 7, 7, 7, 7});  // constant: width 0
  ExpectDeltaBitpackRoundTrip({2016, 2016, 2017, 2018, 2020});
  ExpectDeltaBitpackRoundTrip({-5, 3, -1000000, 1000000, 0});
  // int64 extremes: deltas overflow the signed range and must still round
  // trip through the unsigned delta domain.
  ExpectDeltaBitpackRoundTrip({std::numeric_limits<int64_t>::min(),
                               std::numeric_limits<int64_t>::max(),
                               std::numeric_limits<int64_t>::min()});
  Rng rng(17);
  std::vector<int64_t> timestamps(1000);
  int64_t t = 1577836800;  // 2020-01-01, monotone-ish with jitter
  for (int64_t& v : timestamps) {
    t += static_cast<int64_t>(rng.UniformInt(120));
    v = t;
  }
  ExpectDeltaBitpackRoundTrip(timestamps);
}

TEST(CodecTest, DeltaBitpackConstantColumnIsTiny) {
  std::vector<int64_t> values(4096, 2019);
  std::vector<uint8_t> bytes;
  EncodeDeltaBitpack(values.data(), values.size(), &bytes);
  // First value + width byte, nothing per row.
  EXPECT_LE(bytes.size(), 8u);
}

void ExpectRleDictionaryRoundTrip(const std::vector<int64_t>& values) {
  std::vector<uint8_t> bytes;
  EncodeRleDictionary(values.data(), values.size(), &bytes);
  std::vector<int64_t> decoded(values.size());
  ASSERT_TRUE(
      DecodeRleDictionary(bytes.data(), bytes.size(), values.size(),
                          decoded.data())
          .ok());
  EXPECT_EQ(decoded, values);
}

TEST(CodecTest, RleDictionaryRoundTrip) {
  ExpectRleDictionaryRoundTrip({});
  ExpectRleDictionaryRoundTrip({0});
  ExpectRleDictionaryRoundTrip(std::vector<int64_t>(513, 6));  // all equal
  ExpectRleDictionaryRoundTrip({1, 0, 1, 0, 1, 0, 1});  // alternating
  ExpectRleDictionaryRoundTrip({-3, 100, -3, -3, 100, 7});
  Rng rng(31);
  std::vector<int64_t> provinces(5000);
  for (int64_t& v : provinces) {
    v = static_cast<int64_t>(rng.UniformInt(31));
  }
  ExpectRleDictionaryRoundTrip(provinces);
}

TEST(CodecTest, RleDictionaryAllEqualIsTiny) {
  std::vector<int64_t> values(4096, 13);
  std::vector<uint8_t> bytes;
  EncodeRleDictionary(values.data(), values.size(), &bytes);
  // Dictionary {13} + one run.
  EXPECT_LE(bytes.size(), 8u);
}

void ExpectByteSplitRoundTrip(const std::vector<double>& values) {
  std::vector<uint8_t> bytes;
  EncodeByteStreamSplit(values.data(), values.size(), &bytes);
  std::vector<double> decoded(values.size());
  ASSERT_TRUE(
      DecodeByteStreamSplit(bytes.data(), bytes.size(), values.size(),
                            decoded.data())
          .ok());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_TRUE(SameBits(values[i], decoded[i])) << "index " << i;
  }
}

TEST(CodecTest, ByteStreamSplitBitExact) {
  ExpectByteSplitRoundTrip({});
  ExpectByteSplitRoundTrip({3.25});
  ExpectByteSplitRoundTrip(SpecialDoubles());
  ExpectByteSplitRoundTrip(std::vector<double>(777, -0.0));  // all equal
  Rng rng(5);
  std::vector<double> gaussians(2048);
  for (double& v : gaussians) v = rng.Normal();
  ExpectByteSplitRoundTrip(gaussians);
}

TEST(CodecTest, QuantizedFloatDecodesToTheFloatImage) {
  std::vector<double> values = SpecialDoubles();
  Rng rng(11);
  for (int i = 0; i < 500; ++i) values.push_back(rng.Normal(0.0, 100.0));
  std::vector<uint8_t> bytes;
  EncodeQuantizedFloat(values.data(), values.size(), &bytes);
  std::vector<double> decoded(values.size());
  ASSERT_TRUE(
      DecodeQuantizedFloat(bytes.data(), bytes.size(), values.size(),
                           decoded.data())
          .ok());
  for (size_t i = 0; i < values.size(); ++i) {
    const double image =
        static_cast<double>(gbdt::QuantizeThreshold(values[i]));
    EXPECT_TRUE(SameBits(decoded[i], image) ||
                (std::isnan(decoded[i]) && std::isnan(image)))
        << "index " << i;
    // Idempotence: re-quantizing a decoded value changes nothing, so a
    // quantized store can be rewritten losslessly.
    const float requantized = gbdt::QuantizeThreshold(decoded[i]);
    const float once = gbdt::QuantizeThreshold(values[i]);
    EXPECT_TRUE((std::isnan(requantized) && std::isnan(once)) ||
                requantized == once)
        << "index " << i;
  }
}

TEST(CodecTest, DoubleDictionaryRoundTripAndRejection) {
  // Low-cardinality column with tricky symbols: distinct NaN payloads and
  // both zeros must survive as distinct dictionary entries.
  const std::vector<double> symbols = {0.0, -0.0, 1.0,
                                       FromBits(0x7FF8000000000001ULL),
                                       FromBits(0x7FF8000000000002ULL)};
  Rng rng(23);
  std::vector<double> values(3000);
  for (double& v : values) v = symbols[rng.UniformInt(symbols.size())];
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(
      TryEncodeDoubleDictionary(values.data(), values.size(), 8, &bytes));
  std::vector<double> decoded(values.size());
  ASSERT_TRUE(
      DecodeDoubleDictionary(bytes.data(), bytes.size(), values.size(),
                             decoded.data())
          .ok());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_TRUE(SameBits(values[i], decoded[i])) << "index " << i;
  }

  // Too many distinct patterns: the encoder declines and writes nothing.
  std::vector<double> wide(100);
  for (size_t i = 0; i < wide.size(); ++i) wide[i] = static_cast<double>(i);
  std::vector<uint8_t> untouched;
  EXPECT_FALSE(
      TryEncodeDoubleDictionary(wide.data(), wide.size(), 8, &untouched));
  EXPECT_TRUE(untouched.empty());

  // Empty and 1-row chunks.
  std::vector<uint8_t> tiny;
  ASSERT_TRUE(TryEncodeDoubleDictionary(nullptr, 0, 8, &tiny));
  ASSERT_TRUE(DecodeDoubleDictionary(tiny.data(), tiny.size(), 0, nullptr)
                  .ok());
  tiny.clear();
  const double one = 0.25;
  ASSERT_TRUE(TryEncodeDoubleDictionary(&one, 1, 8, &tiny));
  double one_decoded = 0.0;
  ASSERT_TRUE(
      DecodeDoubleDictionary(tiny.data(), tiny.size(), 1, &one_decoded).ok());
  EXPECT_EQ(one_decoded, one);
}

// The serving-grid property: with grid = sorted unique QuantizeThreshold
// images of a threshold set, the decoded value must decide x <= t exactly
// as the original for every threshold t — as doubles (scalar kernel) and
// as quantized floats (SIMD kernel).
TEST(CodecTest, ServingGridPreservesEveryThresholdComparison) {
  Rng rng(47);
  std::vector<double> thresholds;
  for (int i = 0; i < 13; ++i) thresholds.push_back(rng.Normal());
  thresholds.push_back(0.0);
  thresholds.push_back(1.5);  // exactly a float
  std::vector<float> grid;
  for (double t : thresholds) grid.push_back(gbdt::QuantizeThreshold(t));
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());

  std::vector<double> values = SpecialDoubles();
  for (int i = 0; i < 2000; ++i) values.push_back(rng.Normal());
  // Values sitting exactly on thresholds (the tie cases splits care about).
  for (double t : thresholds) {
    values.push_back(t);
    values.push_back(static_cast<double>(gbdt::QuantizeThreshold(t)));
  }

  std::vector<uint8_t> bytes;
  EncodeServingGrid(values.data(), values.size(), grid, &bytes);
  std::vector<double> decoded(values.size());
  ASSERT_TRUE(DecodeServingGrid(bytes.data(), bytes.size(), values.size(),
                                grid, decoded.data())
                  .ok());

  for (size_t i = 0; i < values.size(); ++i) {
    const double x = values[i];
    const double g = decoded[i];
    const float xq = gbdt::QuantizeThreshold(x);
    const float gq = gbdt::QuantizeThreshold(g);
    for (double t : thresholds) {
      const float tq = gbdt::QuantizeThreshold(t);
      // The contract: the decoded value reproduces the quantized decision
      // `xq <= tq` — what the SIMD feature plane sees — in float space...
      EXPECT_EQ(xq <= tq, gq <= tq)
          << "value " << i << " vs threshold " << t << " (float space)";
      // ...and, being float-representable, decides identically under the
      // scalar kernel's raw double compare (the tree.h tie invariant).
      EXPECT_EQ(g <= t, gq <= tq)
          << "value " << i << " vs threshold " << t << " (double space)";
      // The raw comparison of the *original* double matches except when x
      // lies in the sub-float-ULP window above t — where the scalar and
      // SIMD kernels already disagree on uncompressed data (tree.h only
      // promises exactness for float-representable features).
      if ((x <= t) == (xq <= tq)) {
        EXPECT_EQ(x <= t, g <= t) << "value " << i << " vs threshold " << t;
      }
    }
  }

  // A handful of bits per value, not 64.
  EXPECT_LT(bytes.size(), values.size());
}

TEST(CodecTest, ServingGridEdgeShapes) {
  const std::vector<float> grid = {-1.0f, 0.5f, 2.0f};
  // Empty chunk.
  std::vector<uint8_t> bytes;
  EncodeServingGrid(nullptr, 0, grid, &bytes);
  ASSERT_TRUE(
      DecodeServingGrid(bytes.data(), bytes.size(), 0, grid, nullptr).ok());
  // One row above every threshold decodes to NaN (compares false against
  // every threshold, like the original).
  bytes.clear();
  const double big = 99.0;
  EncodeServingGrid(&big, 1, grid, &bytes);
  double decoded = 0.0;
  ASSERT_TRUE(
      DecodeServingGrid(bytes.data(), bytes.size(), 1, grid, &decoded).ok());
  EXPECT_TRUE(std::isnan(decoded));
  // Empty grid (feature the forest never splits on): everything maps to
  // the single interval and decodes to NaN.
  bytes.clear();
  const double any = 0.125;
  EncodeServingGrid(&any, 1, {}, &bytes);
  ASSERT_TRUE(
      DecodeServingGrid(bytes.data(), bytes.size(), 1, {}, &decoded).ok());
  EXPECT_TRUE(std::isnan(decoded));
}

TEST(CodecTest, TruncatedPayloadsError) {
  Rng rng(3);
  std::vector<int64_t> ints(100);
  for (int64_t& v : ints) v = static_cast<int64_t>(rng.UniformInt(1000));
  std::vector<double> doubles(100);
  for (double& v : doubles) v = rng.Normal();

  std::vector<uint8_t> bytes;
  EncodeDeltaBitpack(ints.data(), ints.size(), &bytes);
  std::vector<int64_t> iout(ints.size());
  EXPECT_FALSE(
      DecodeDeltaBitpack(bytes.data(), bytes.size() / 2, ints.size(),
                         iout.data())
          .ok());

  bytes.clear();
  EncodeRleDictionary(ints.data(), ints.size(), &bytes);
  EXPECT_FALSE(
      DecodeRleDictionary(bytes.data(), bytes.size() / 2, ints.size(),
                          iout.data())
          .ok());

  bytes.clear();
  EncodeByteStreamSplit(doubles.data(), doubles.size(), &bytes);
  std::vector<double> dout(doubles.size());
  EXPECT_FALSE(
      DecodeByteStreamSplit(bytes.data(), bytes.size() / 2, doubles.size(),
                            dout.data())
          .ok());
  // Trailing garbage is also rejected (a corrupt size field cannot make
  // the decoder silently mis-align).
  bytes.push_back(0xAB);
  EXPECT_FALSE(
      DecodeByteStreamSplit(bytes.data(), bytes.size(), doubles.size(),
                            dout.data())
          .ok());

  bytes.clear();
  const std::vector<float> grid = {0.0f, 1.0f};
  EncodeServingGrid(doubles.data(), doubles.size(), grid, &bytes);
  EXPECT_FALSE(DecodeServingGrid(bytes.data(), bytes.size() / 2,
                                 doubles.size(), grid, dout.data())
                   .ok());
}

}  // namespace
}  // namespace lightmirm::data
