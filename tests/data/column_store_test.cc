// Chunked writer/reader contract of the compressed column store: lossless
// stores round-trip a Dataset bit-exactly (across chunk boundaries, with a
// partial tail chunk), quantized stores reproduce the QuantizeThreshold
// float image, the chunk index carries usable year/env stats, the
// times-only and stats-only readers never touch feature payloads they
// don't need, and malformed inputs (schema mismatch, missing Finish,
// trailing bytes) surface as Status errors.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/column_store.h"
#include "data/dataset.h"
#include "data/loan_generator.h"
#include "gbdt/tree.h"

namespace lightmirm::data {
namespace {

// Unique-ish path under the build tree's temp dir; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "/" + name) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

bool SameBits(double a, double b) {
  uint64_t ab, bb;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb;
}

// Small synthetic dataset with the column shapes the store targets:
// gaussian numerics, a one-hot block, NaN holes, and int columns.
Dataset MakeDataset(size_t rows, uint64_t seed) {
  std::vector<FieldSpec> fields = {
      {"num_a", FeatureKind::kNumeric, 0},
      {"num_b", FeatureKind::kNumeric, 0},
      {"flag", FeatureKind::kBinary, 0},
      {"cat", FeatureKind::kCategorical, 4},
  };
  Rng rng(seed);
  Matrix feats(rows, fields.size());
  std::vector<int> labels(rows), envs(rows), years(rows), halves(rows);
  for (size_t r = 0; r < rows; ++r) {
    feats.At(r, 0) = rng.Normal();
    feats.At(r, 1) = rng.Bernoulli(0.05)
                         ? std::numeric_limits<double>::quiet_NaN()
                         : rng.Normal(3.0, 10.0);
    feats.At(r, 2) = rng.Bernoulli(0.3) ? 1.0 : 0.0;
    feats.At(r, 3) = static_cast<double>(rng.UniformInt(4));
    labels[r] = rng.Bernoulli(0.1) ? 1 : 0;
    envs[r] = static_cast<int>(rng.UniformInt(31));
    years[r] = 2016 + static_cast<int>(r / ((rows / 5) + 1));
    halves[r] = rng.Bernoulli(0.5) ? 2 : 1;
  }
  Dataset dataset(Schema(fields), std::move(feats), std::move(labels),
                  std::move(envs), std::move(years), std::move(halves));
  dataset.set_env_names({});
  return dataset;
}

void ExpectDatasetsBitIdentical(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.NumRows(), b.NumRows());
  ASSERT_EQ(a.NumFeatures(), b.NumFeatures());
  EXPECT_EQ(a.labels(), b.labels());
  EXPECT_EQ(a.envs(), b.envs());
  EXPECT_EQ(a.years(), b.years());
  EXPECT_EQ(a.halves(), b.halves());
  for (size_t r = 0; r < a.NumRows(); ++r) {
    for (size_t c = 0; c < a.NumFeatures(); ++c) {
      EXPECT_TRUE(SameBits(a.features().At(r, c), b.features().At(r, c)))
          << "row " << r << " col " << c;
    }
  }
}

TEST(ColumnStoreTest, LosslessRoundTripAcrossChunks) {
  const Dataset dataset = MakeDataset(1000, 99);
  TempFile file("column_store_lossless.lmcs");
  ColumnStoreOptions options;
  options.chunk_rows = 256;  // 3 full chunks + a 232-row tail
  auto writer = ColumnStoreWriter::Open(file.path(), dataset.schema(), {},
                                        options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(dataset).ok());
  ASSERT_TRUE(writer->Finish().ok());
  EXPECT_EQ(writer->rows_written(), dataset.NumRows());

  auto reader = ColumnStoreReader::Open(file.path());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->total_rows(), dataset.NumRows());
  EXPECT_EQ(reader->num_chunks(), 4u);
  EXPECT_EQ(reader->chunk(0).rows, 256u);
  EXPECT_EQ(reader->chunk(3).rows, 232u);
  EXPECT_TRUE(reader->schema() == dataset.schema());
  EXPECT_EQ(reader->feature_encoding(), FeatureEncoding::kLossless);
  EXPECT_EQ(reader->file_bytes(), writer->bytes_written());

  size_t row = 0;
  for (size_t c = 0; c < reader->num_chunks(); ++c) {
    auto chunk = reader->ReadChunk(c);
    ASSERT_TRUE(chunk.ok());
    std::vector<size_t> ids(chunk->NumRows());
    for (size_t i = 0; i < ids.size(); ++i) ids[i] = row + i;
    auto expected = dataset.Select(ids);
    ASSERT_TRUE(expected.ok());
    ExpectDatasetsBitIdentical(*expected, *chunk);
    row += chunk->NumRows();
  }
}

TEST(ColumnStoreTest, ChunkIndexStatsAndTimesOnlyReads) {
  const Dataset dataset = MakeDataset(600, 7);
  TempFile file("column_store_times.lmcs");
  ColumnStoreOptions options;
  options.chunk_rows = 200;
  auto writer = ColumnStoreWriter::Open(file.path(), dataset.schema(), {},
                                        options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(dataset).ok());
  ASSERT_TRUE(writer->Finish().ok());

  auto reader = ColumnStoreReader::Open(file.path());
  ASSERT_TRUE(reader.ok());
  size_t row = 0;
  for (size_t c = 0; c < reader->num_chunks(); ++c) {
    const ChunkInfo& info = reader->chunk(c);
    auto times = reader->ReadChunkTimes(c);
    ASSERT_TRUE(times.ok());
    ASSERT_EQ(times->years.size(), info.rows);
    int year_min = times->years[0], year_max = times->years[0];
    for (size_t i = 0; i < info.rows; ++i) {
      EXPECT_EQ(times->labels[i], dataset.labels()[row + i]);
      EXPECT_EQ(times->envs[i], dataset.envs()[row + i]);
      EXPECT_EQ(times->years[i], dataset.years()[row + i]);
      EXPECT_EQ(times->halves[i], dataset.halves()[row + i]);
      year_min = std::min(year_min, times->years[i]);
      year_max = std::max(year_max, times->years[i]);
    }
    EXPECT_EQ(info.year_min, year_min);
    EXPECT_EQ(info.year_max, year_max);
    row += info.rows;
  }

  // Feature stats match a direct scan (NaN-skipping min/max).
  auto stats = reader->ReadChunkFeatureStats(0);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->size(), dataset.NumFeatures());
  for (size_t f = 0; f < dataset.NumFeatures(); ++f) {
    double lo = std::numeric_limits<double>::quiet_NaN(), hi = lo;
    for (size_t r = 0; r < reader->chunk(0).rows; ++r) {
      const double v = dataset.features().At(r, f);
      if (std::isnan(v)) continue;
      if (std::isnan(lo) || v < lo) lo = v;
      if (std::isnan(hi) || v > hi) hi = v;
    }
    EXPECT_TRUE(SameBits((*stats)[f].min, lo)) << "feature " << f;
    EXPECT_TRUE(SameBits((*stats)[f].max, hi)) << "feature " << f;
  }
}

TEST(ColumnStoreTest, QuantizedStoreHoldsTheFloatImage) {
  const Dataset dataset = MakeDataset(300, 21);
  TempFile file("column_store_quantized.lmcs");
  ColumnStoreOptions options;
  options.feature_encoding = FeatureEncoding::kQuantized;
  options.chunk_rows = 128;
  auto writer = ColumnStoreWriter::Open(file.path(), dataset.schema(), {},
                                        options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(dataset).ok());
  ASSERT_TRUE(writer->Finish().ok());

  auto reader = ColumnStoreReader::Open(file.path());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->feature_encoding(), FeatureEncoding::kQuantized);
  size_t row = 0;
  for (size_t c = 0; c < reader->num_chunks(); ++c) {
    auto chunk = reader->ReadChunk(c);
    ASSERT_TRUE(chunk.ok());
    for (size_t r = 0; r < chunk->NumRows(); ++r) {
      for (size_t f = 0; f < chunk->NumFeatures(); ++f) {
        const double original = dataset.features().At(row + r, f);
        const double image =
            static_cast<double>(gbdt::QuantizeThreshold(original));
        const double decoded = chunk->features().At(r, f);
        EXPECT_TRUE(SameBits(decoded, image) ||
                    (std::isnan(decoded) && std::isnan(image)))
            << "row " << row + r << " col " << f;
      }
    }
    row += chunk->NumRows();
  }
  // The quantized file is smaller than the lossless one for the same data.
  TempFile lossless("column_store_quantized_ref.lmcs");
  auto ref_writer = ColumnStoreWriter::Open(lossless.path(),
                                            dataset.schema(), {}, {});
  ASSERT_TRUE(ref_writer.ok());
  ASSERT_TRUE(ref_writer->Append(dataset).ok());
  ASSERT_TRUE(ref_writer->Finish().ok());
  EXPECT_LT(writer->bytes_written(), ref_writer->bytes_written());
}

TEST(ColumnStoreTest, GeneratorStreamsBitIdenticalRows) {
  LoanGeneratorOptions gen;
  gen.rows_per_year = 1200;
  gen.seed = 3;
  LoanGenerator generator(gen);
  auto dataset = generator.Generate();
  ASSERT_TRUE(dataset.ok());

  TempFile file("column_store_generator.lmcs");
  ColumnStoreOptions options;
  options.chunk_rows = 1024;
  auto rows = generator.GenerateToStore(file.path(), options);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, dataset->NumRows());

  auto reader = ColumnStoreReader::Open(file.path());
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ(reader->total_rows(), dataset->NumRows());
  EXPECT_TRUE(reader->schema() == dataset->schema());
  EXPECT_EQ(reader->env_names(), dataset->env_names());
  size_t row = 0;
  for (size_t c = 0; c < reader->num_chunks(); ++c) {
    auto chunk = reader->ReadChunk(c);
    ASSERT_TRUE(chunk.ok());
    std::vector<size_t> ids(chunk->NumRows());
    for (size_t i = 0; i < ids.size(); ++i) ids[i] = row + i;
    auto expected = dataset->Select(ids);
    ASSERT_TRUE(expected.ok());
    ExpectDatasetsBitIdentical(*expected, *chunk);
    row += chunk->NumRows();
  }
}

TEST(ColumnStoreTest, WriterValidatesItsInputs) {
  const Dataset dataset = MakeDataset(50, 1);
  TempFile file("column_store_invalid.lmcs");

  ColumnStoreOptions zero_chunk;
  zero_chunk.chunk_rows = 0;
  EXPECT_FALSE(ColumnStoreWriter::Open(file.path(), dataset.schema(), {},
                                       zero_chunk)
                   .ok());

  ColumnStoreOptions grid_without_grids;
  grid_without_grids.feature_encoding = FeatureEncoding::kServingGrid;
  EXPECT_FALSE(ColumnStoreWriter::Open(file.path(), dataset.schema(), {},
                                       grid_without_grids)
                   .ok());

  ColumnStoreOptions grids_without_grid_mode;
  grids_without_grid_mode.feature_grids.resize(dataset.NumFeatures());
  EXPECT_FALSE(ColumnStoreWriter::Open(file.path(), dataset.schema(), {},
                                       grids_without_grid_mode)
                   .ok());

  auto writer = ColumnStoreWriter::Open(file.path(), dataset.schema(), {},
                                        {});
  ASSERT_TRUE(writer.ok());
  // Mismatched schema is rejected.
  const Dataset other(Schema({{"x", FeatureKind::kNumeric, 0}}),
                      Matrix(1, 1), {0}, {0}, {2016}, {1});
  EXPECT_FALSE(writer->Append(other).ok());
  ASSERT_TRUE(writer->Append(dataset).ok());
  ASSERT_TRUE(writer->Finish().ok());
  EXPECT_FALSE(writer->Finish().ok());   // double finish
  EXPECT_FALSE(writer->Append(dataset).ok());  // append after finish
}

TEST(ColumnStoreTest, ReaderRejectsMalformedFiles) {
  EXPECT_FALSE(ColumnStoreReader::Open("/nonexistent/store.lmcs").ok());

  const Dataset dataset = MakeDataset(100, 2);
  TempFile file("column_store_malformed.lmcs");
  {
    auto writer = ColumnStoreWriter::Open(file.path(), dataset.schema(), {},
                                          {});
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(dataset).ok());
    // No Finish: the store has no end marker.
  }
  EXPECT_FALSE(ColumnStoreReader::Open(file.path()).ok());

  {
    auto writer = ColumnStoreWriter::Open(file.path(), dataset.schema(), {},
                                          {});
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(dataset).ok());
    ASSERT_TRUE(writer->Finish().ok());
  }
  ASSERT_TRUE(ColumnStoreReader::Open(file.path()).ok());
  // Trailing bytes after the end marker are rejected.
  {
    std::ofstream tail(file.path(), std::ios::binary | std::ios::app);
    tail << "junk";
  }
  EXPECT_FALSE(ColumnStoreReader::Open(file.path()).ok());
}

}  // namespace
}  // namespace lightmirm::data
