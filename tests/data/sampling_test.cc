#include "data/sampling.h"

#include <gtest/gtest.h>

#include "data/env_split.h"

namespace lightmirm::data {
namespace {

Dataset MakeImbalanced() {
  // env 0: 8 rows, env 1: 2 rows; 20% positives overall.
  Schema schema({{"f", FeatureKind::kNumeric, 0}});
  Matrix feats(10, 1);
  std::vector<int> labels = {1, 0, 0, 0, 0, 1, 0, 0, 0, 0};
  std::vector<int> envs = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1};
  std::vector<int> years(10, 2016);
  std::vector<int> halves(10, 1);
  return Dataset(std::move(schema), std::move(feats), std::move(labels),
                 std::move(envs), std::move(years), std::move(halves));
}

TEST(UpSamplingTest, LiftsSmallEnvironments) {
  UpSamplingOptions options;
  options.target_fraction = 0.75;  // target = 6 rows
  const Dataset up = *UpSampleEnvironments(MakeImbalanced(), options);
  const auto counts = EnvCounts(up);
  EXPECT_EQ(counts[0], 8u);
  EXPECT_EQ(counts[1], 6u);
}

TEST(UpSamplingTest, NoOpWhenAlreadyBalanced) {
  UpSamplingOptions options;
  options.target_fraction = 0.25;  // target = 2, env 1 already has 2
  const Dataset up = *UpSampleEnvironments(MakeImbalanced(), options);
  EXPECT_EQ(up.NumRows(), 10u);
}

TEST(UpSamplingTest, RejectsBadFraction) {
  EXPECT_FALSE(UpSampleEnvironments(MakeImbalanced(), {0.0, 1}).ok());
  EXPECT_FALSE(UpSampleEnvironments(MakeImbalanced(), {1.5, 1}).ok());
}

TEST(UpSamplingTest, DeterministicGivenSeed) {
  UpSamplingOptions options;
  options.target_fraction = 1.0;
  options.seed = 9;
  const Dataset a = *UpSampleEnvironments(MakeImbalanced(), options);
  const Dataset b = *UpSampleEnvironments(MakeImbalanced(), options);
  ASSERT_EQ(a.NumRows(), b.NumRows());
  for (size_t i = 0; i < a.NumRows(); ++i) {
    EXPECT_EQ(a.envs()[i], b.envs()[i]);
  }
}

TEST(ClassBalanceWeightsTest, RebalancesPositiveMass) {
  const Dataset ds = MakeImbalanced();
  const std::vector<double> w = ClassBalanceWeights(ds, 0.5);
  double pos_mass = 0.0, total = 0.0;
  for (size_t i = 0; i < ds.NumRows(); ++i) {
    total += w[i];
    if (ds.labels()[i] == 1) pos_mass += w[i];
  }
  EXPECT_NEAR(pos_mass / total, 0.5, 1e-9);
}

TEST(ClassBalanceWeightsTest, SingleClassYieldsOnes) {
  Schema schema({{"f", FeatureKind::kNumeric, 0}});
  Dataset ds(std::move(schema), Matrix(2, 1), {0, 0}, {0, 0}, {2016, 2016},
             {1, 1});
  const std::vector<double> w = ClassBalanceWeights(ds, 0.5);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 1.0);
}

TEST(SampleBatchTest, IndicesInRangeAndSized) {
  Rng rng(4);
  const auto batch = SampleBatch(17, 64, &rng);
  EXPECT_EQ(batch.size(), 64u);
  for (size_t i : batch) EXPECT_LT(i, 17u);
}

}  // namespace
}  // namespace lightmirm::data
