#include "data/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace lightmirm::data {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

Dataset MakeDataset() {
  Schema schema({{"alpha", FeatureKind::kNumeric, 0},
                 {"beta", FeatureKind::kNumeric, 0}});
  Matrix feats(3, 2, {0.5, -1.25, 3.0, 4.5, 1e-9, 7.0});
  return Dataset(std::move(schema), std::move(feats), {0, 1, 0}, {0, 1, 1},
                 {2016, 2017, 2020}, {1, 2, 1});
}

TEST(CsvTest, RoundTripPreservesEverything) {
  const std::string path = TempPath("roundtrip.csv");
  const Dataset original = MakeDataset();
  ASSERT_TRUE(WriteCsv(original, path).ok());
  const Dataset loaded = *ReadCsv(path);
  ASSERT_EQ(loaded.NumRows(), original.NumRows());
  ASSERT_EQ(loaded.NumFeatures(), original.NumFeatures());
  EXPECT_EQ(loaded.schema().field(0).name, "alpha");
  EXPECT_EQ(loaded.schema().field(1).name, "beta");
  for (size_t i = 0; i < original.NumRows(); ++i) {
    EXPECT_EQ(loaded.labels()[i], original.labels()[i]);
    EXPECT_EQ(loaded.envs()[i], original.envs()[i]);
    EXPECT_EQ(loaded.years()[i], original.years()[i]);
    EXPECT_EQ(loaded.halves()[i], original.halves()[i]);
    for (size_t j = 0; j < original.NumFeatures(); ++j) {
      EXPECT_DOUBLE_EQ(loaded.features().At(i, j),
                       original.features().At(i, j));
    }
  }
}

TEST(CsvTest, MissingFileIsIoError) {
  auto r = ReadCsv("/nonexistent/dir/file.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, BadHeaderRejected) {
  const std::string path = TempPath("badheader.csv");
  std::ofstream(path) << "foo,bar\n1,2\n";
  EXPECT_FALSE(ReadCsv(path).ok());
}

TEST(CsvTest, WrongCellCountRejected) {
  const std::string path = TempPath("badcells.csv");
  std::ofstream(path) << "label,env,year,half,f\n1,0,2016,1\n";
  auto r = ReadCsv(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, MalformedNumberRejected) {
  const std::string path = TempPath("badnum.csv");
  std::ofstream(path) << "label,env,year,half,f\n1,0,2016,1,xyz\n";
  EXPECT_FALSE(ReadCsv(path).ok());
}

TEST(CsvTest, SkipsBlankLines) {
  const std::string path = TempPath("blank.csv");
  std::ofstream(path) << "label,env,year,half,f\n1,0,2016,1,2.5\n\n0,1,2017,"
                         "2,-1\n";
  const Dataset ds = *ReadCsv(path);
  EXPECT_EQ(ds.NumRows(), 2u);
}

}  // namespace
}  // namespace lightmirm::data
