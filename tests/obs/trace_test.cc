#include "obs/trace.h"

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace lightmirm::obs {
namespace {

TEST(TraceSpanTest, NestedSpansRecordDottedPaths) {
  MetricsRegistry registry;
  {
    TraceSpan outer(&registry, "outer");
    EXPECT_EQ(TraceSpan::CurrentDepth(), 1);
    {
      TraceSpan inner(&registry, "inner step");
      EXPECT_EQ(TraceSpan::CurrentDepth(), 2);
      EXPECT_GE(inner.Seconds(), 0.0);
    }
    EXPECT_EQ(TraceSpan::CurrentDepth(), 1);
  }
  EXPECT_EQ(TraceSpan::CurrentDepth(), 0);
  EXPECT_EQ(registry.GetHistogram("span.outer.seconds")->Count(), 1u);
  EXPECT_EQ(registry.GetHistogram("span.outer.inner_step.seconds")->Count(),
            1u);
}

TEST(TraceSpanTest, SamplesBufferUntilRootCloses) {
  MetricsRegistry registry;
  {
    TraceSpan outer(&registry, "outer");
    { TraceSpan inner(&registry, "inner"); }
    // The inner span has closed but the root is still open: nothing has
    // been flushed to the registry yet.
    EXPECT_TRUE(registry.Histograms().empty());
  }
  EXPECT_EQ(registry.Histograms().size(), 2u);
}

TEST(TraceSpanTest, NullRegistryIsInert) {
  TraceSpan span(nullptr, "ghost");
  EXPECT_EQ(TraceSpan::CurrentDepth(), 0);
  EXPECT_DOUBLE_EQ(span.Seconds(), 0.0);
}

TEST(TraceSpanTest, RepeatedScopesAccumulateIntoOneHistogram) {
  MetricsRegistry registry;
  for (int i = 0; i < 5; ++i) {
    TraceSpan epoch(&registry, "epoch");
    TraceSpan step(&registry, "step");
  }
  EXPECT_EQ(registry.GetHistogram("span.epoch.seconds")->Count(), 5u);
  EXPECT_EQ(registry.GetHistogram("span.epoch.step.seconds")->Count(), 5u);
}

// Each pooled task roots its own span chain on its worker thread, so the
// flushed sample counts depend only on the iteration count — not on how
// many threads the pool uses.
TEST(TraceSpanTest, SpanCountsDeterministicAcrossThreadCounts) {
  constexpr size_t kTasks = 64;
  for (int threads : {1, 2, 8}) {
    MetricsRegistry registry;
    ScopedDefaultThreads guard(threads);
    ParallelFor(0, kTasks, 1, [&registry](size_t) {
      TraceSpan task(&registry, "task");
      TraceSpan work(&registry, "work");
    });
    EXPECT_EQ(registry.GetHistogram("span.task.seconds")->Count(), kTasks)
        << "threads=" << threads;
    EXPECT_EQ(registry.GetHistogram("span.task.work.seconds")->Count(),
              kTasks)
        << "threads=" << threads;
    EXPECT_EQ(registry.Histograms().size(), 2u) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace lightmirm::obs
