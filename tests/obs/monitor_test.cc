#include "obs/monitor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "obs/drift.h"
#include "obs/metrics.h"

namespace lightmirm::obs {
namespace {

// Transition table of the hysteresis state machine with thresholds
// warn = 0.1, alert = 0.25, hysteresis = 0.2, so the de-escalation edges
// are clear_warn = 0.08 and clear_alert = 0.2.
TEST(AlertStateMachineTest, TransitionTable) {
  AlertStateMachine sm({0.1, 0.25, 0.2});
  EXPECT_EQ(sm.state(), AlertState::kOk);
  EXPECT_EQ(sm.Update(0.05), AlertState::kOk);     // below warn
  EXPECT_EQ(sm.Update(0.10), AlertState::kWarn);   // at warn: escalate
  EXPECT_EQ(sm.Update(0.09), AlertState::kWarn);   // above clear_warn: hold
  EXPECT_EQ(sm.Update(0.079), AlertState::kOk);    // below clear_warn
  EXPECT_EQ(sm.Update(0.25), AlertState::kAlert);  // OK -> ALERT directly
  EXPECT_EQ(sm.Update(0.21), AlertState::kAlert);  // above clear_alert: hold
  EXPECT_EQ(sm.Update(0.20), AlertState::kAlert);  // exactly clear_alert: hold
  EXPECT_EQ(sm.Update(0.19), AlertState::kWarn);   // below clear_alert
  EXPECT_EQ(sm.Update(0.24), AlertState::kWarn);   // below alert: hold
  EXPECT_EQ(sm.Update(0.25), AlertState::kAlert);  // re-escalate
  EXPECT_EQ(sm.Update(0.05), AlertState::kOk);     // ALERT -> OK directly
}

// A value oscillating exactly around a threshold must never bounce the
// state back and forth.
TEST(AlertStateMachineTest, NoFlappingAtTheThreshold) {
  AlertStateMachine sm({0.1, 0.25, 0.2});
  EXPECT_EQ(sm.Update(0.10), AlertState::kWarn);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(sm.Update(i % 2 == 0 ? 0.099 : 0.101), AlertState::kWarn);
  }
}

// Reference with two environments and hand-checkable aggregates:
//   env 0: 200 rows of score 0.25, 40 positives (rate 0.20)
//   env 1: 200 rows of score 0.65, 130 positives (rate 0.65)
ScoreReference TestReference() {
  std::vector<double> scores;
  std::vector<int> labels;
  std::vector<int> envs;
  for (int i = 0; i < 200; ++i) {
    scores.push_back(0.25);
    labels.push_back(i < 40);
    envs.push_back(0);
  }
  for (int i = 0; i < 200; ++i) {
    scores.push_back(0.65);
    labels.push_back(i < 130);
    envs.push_back(1);
  }
  auto ref = BuildScoreReference(scores, labels, envs, /*num_bins=*/10,
                                 /*min_env_rows=*/50, {"Hubei", "Zhejiang"});
  EXPECT_TRUE(ref.ok());
  return *ref;
}

// Feeds the monitor exactly the reference population.
void FeedReferencePopulation(ModelHealthMonitor* monitor) {
  std::vector<double> scores;
  std::vector<int> labels;
  std::vector<int> envs;
  for (int i = 0; i < 200; ++i) {
    scores.push_back(0.25);
    labels.push_back(i < 40);
    envs.push_back(0);
  }
  for (int i = 0; i < 200; ++i) {
    scores.push_back(0.65);
    labels.push_back(i < 130);
    envs.push_back(1);
  }
  ASSERT_TRUE(monitor->ObserveBatch(scores, &envs, &labels).ok());
}

TEST(ModelHealthMonitorTest, RejectsEmptyReference) {
  EXPECT_FALSE(ModelHealthMonitor::Create(ScoreReference{}).ok());
}

TEST(ModelHealthMonitorTest, StationaryPopulationStaysOk) {
  auto monitor = ModelHealthMonitor::Create(TestReference());
  ASSERT_TRUE(monitor.ok());
  FeedReferencePopulation(monitor->get());
  const HealthSnapshot snapshot = (*monitor)->Evaluate();
  EXPECT_EQ(snapshot.evaluation, 1u);
  EXPECT_EQ(snapshot.overall, AlertState::kOk);
  EXPECT_TRUE(snapshot.global.psi.evaluated);
  EXPECT_NEAR(snapshot.global.psi.value, 0.0, 1e-9);
  EXPECT_TRUE(snapshot.global.default_rate_rise.evaluated);
  EXPECT_NEAR(snapshot.global.default_rate, 170.0 / 400.0, 1e-12);
  EXPECT_NEAR(snapshot.global.default_rate_rise.value, 0.0, 1e-12);
  EXPECT_TRUE(snapshot.global.auc_drop.evaluated);
  EXPECT_NEAR(snapshot.global.auc_drop.value, 0.0, 1e-12);
  ASSERT_EQ(snapshot.per_env.size(), 2u);
  EXPECT_EQ(snapshot.per_env.at(0).overall, AlertState::kOk);
  EXPECT_EQ(snapshot.per_env.at(1).overall, AlertState::kOk);
  // 200 labeled rows per env < fairness_min_labeled (300): gap not scored.
  EXPECT_FALSE(snapshot.fairness_gap.evaluated);
}

TEST(ModelHealthMonitorTest, UnderfilledWindowsHoldStateUnevaluated) {
  auto monitor = ModelHealthMonitor::Create(TestReference());
  ASSERT_TRUE(monitor.ok());
  const std::vector<double> scores = {0.95};  // far off the reference
  ASSERT_TRUE((*monitor)->ObserveBatch(scores, nullptr, nullptr).ok());
  const HealthSnapshot snapshot = (*monitor)->Evaluate();
  EXPECT_FALSE(snapshot.global.psi.evaluated);
  EXPECT_EQ(snapshot.global.psi.state, AlertState::kOk);  // held, not fired
  EXPECT_EQ(snapshot.overall, AlertState::kOk);
}

TEST(ModelHealthMonitorTest, UnlabeledFeedEvaluatesDistributionSignalsOnly) {
  auto monitor = ModelHealthMonitor::Create(TestReference());
  ASSERT_TRUE(monitor.ok());
  std::vector<double> scores(400, 0.25);
  ASSERT_TRUE((*monitor)->ObserveBatch(scores, nullptr, nullptr).ok());
  const HealthSnapshot snapshot = (*monitor)->Evaluate();
  EXPECT_TRUE(snapshot.global.psi.evaluated);
  EXPECT_FALSE(snapshot.global.default_rate_rise.evaluated);
  EXPECT_FALSE(snapshot.global.auc_drop.evaluated);
  EXPECT_FALSE(snapshot.global.calibration.evaluated);
}

TEST(ModelHealthMonitorTest, ShiftedPopulationFiresAlertsPerEnvironment) {
  auto monitor = ModelHealthMonitor::Create(TestReference());
  ASSERT_TRUE(monitor.ok());
  FeedReferencePopulation(monitor->get());
  // A score-distribution shift concentrated in env 0: 400 rows at 0.95
  // with a 90% default rate.
  std::vector<double> scores(400, 0.95);
  std::vector<int> labels(400, 0);
  std::vector<int> envs(400, 0);
  for (int i = 0; i < 360; ++i) labels[i] = 1;
  ASSERT_TRUE((*monitor)->ObserveBatch(scores, &envs, &labels).ok());
  const HealthSnapshot snapshot = (*monitor)->Evaluate();
  EXPECT_EQ(snapshot.global.psi.state, AlertState::kAlert);
  EXPECT_EQ(snapshot.per_env.at(0).overall, AlertState::kAlert);
  EXPECT_EQ(snapshot.per_env.at(1).overall, AlertState::kOk);  // untouched
  EXPECT_EQ(snapshot.overall, AlertState::kAlert);
}

TEST(ModelHealthMonitorTest, ObserveBatchValidatesAlignment) {
  auto monitor = ModelHealthMonitor::Create(TestReference());
  ASSERT_TRUE(monitor.ok());
  const std::vector<double> scores = {0.5, 0.5};
  const std::vector<int> short_envs = {0};
  const std::vector<int> bad_labels = {0, 3};
  EXPECT_FALSE((*monitor)->ObserveBatch(scores, &short_envs, nullptr).ok());
  EXPECT_FALSE((*monitor)->ObserveBatch(scores, nullptr, &bad_labels).ok());
}

TEST(ModelHealthMonitorTest, SnapshotWindowsMatchesPerWindowGetters) {
  auto monitor = ModelHealthMonitor::Create(TestReference());
  ASSERT_TRUE(monitor.ok());
  FeedReferencePopulation(monitor->get());
  const MonitorAggregates snapshot = (*monitor)->SnapshotWindows();
  const WindowAggregates global = (*monitor)->GlobalWindow();
  EXPECT_EQ(snapshot.global.rows, global.rows);
  EXPECT_EQ(snapshot.global.seen, global.seen);
  EXPECT_EQ(snapshot.global.labeled, global.labeled);
  EXPECT_EQ(snapshot.global.positives, global.positives);
  EXPECT_EQ(snapshot.global.counts, global.counts);
  ASSERT_EQ(snapshot.per_env.size(), 2u);
  for (const int env : (*monitor)->MonitoredEnvs()) {
    const auto window = (*monitor)->EnvWindow(env);
    ASSERT_TRUE(window.ok());
    ASSERT_TRUE(snapshot.per_env.count(env));
    EXPECT_EQ(snapshot.per_env.at(env).rows, window->rows);
    EXPECT_EQ(snapshot.per_env.at(env).counts, window->counts);
  }
}

TEST(ModelHealthMonitorTest, SnapshotWindowsIsConsistentUnderConcurrency) {
  // Every observed row carries a monitored env, so at any instant the
  // global window's totals equal the sum over env windows — but only if
  // the copies are taken under one lock acquisition. Per-window getters
  // (the merged evaluator's old read path) let a batch land between the
  // global and env copies, tearing the invariant this reader asserts.
  auto monitor = ModelHealthMonitor::Create(TestReference());
  ASSERT_TRUE(monitor.ok());
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      // 2 writers x 250 batches x 8 rows = 4000 < the 4096 window
      // capacity: nothing evicts, so the global in-window totals must
      // equal the env sums exactly whenever the snapshot is untorn.
      const std::vector<double> scores(8, 0.25 + 0.4 * w);
      const std::vector<int> envs(8, w);
      const std::vector<int> labels(8, w);
      for (int i = 0; i < 250; ++i) {
        ASSERT_TRUE((*monitor)->ObserveBatch(scores, &envs, &labels).ok());
      }
      done.store(true);
    });
  }
  int torn = 0;
  while (!done.load()) {
    const MonitorAggregates snapshot = (*monitor)->SnapshotWindows();
    uint64_t env_seen = 0, env_labeled = 0, env_positives = 0;
    for (const auto& [env, window] : snapshot.per_env) {
      env_seen += window.seen;
      env_labeled += window.labeled;
      env_positives += window.positives;
    }
    torn += snapshot.global.seen != env_seen;
    torn += snapshot.global.labeled != env_labeled;
    torn += snapshot.global.positives != env_positives;
  }
  for (std::thread& writer : writers) writer.join();
  EXPECT_EQ(torn, 0);
}

TEST(ModelHealthMonitorTest, PublishesGaugesIntoRegistry) {
  auto monitor = ModelHealthMonitor::Create(TestReference());
  ASSERT_TRUE(monitor.ok());
  FeedReferencePopulation(monitor->get());
  MetricsRegistry registry;
  const HealthSnapshot snapshot = (*monitor)->Evaluate(&registry);
  EXPECT_EQ(registry.GetGauge("monitor.state")->Value(),
            static_cast<double>(snapshot.overall));
  EXPECT_EQ(registry.GetGauge("monitor.evaluations")->Value(), 1.0);
  EXPECT_EQ(registry.GetGauge("monitor.global.window_rows")->Value(), 400.0);
  EXPECT_NEAR(registry.GetGauge("monitor.global.default_rate")->Value(),
              170.0 / 400.0, 1e-12);
  // Per-province gauges publish under the sanitized province name.
  EXPECT_EQ(registry.GetGauge("monitor.env.Hubei.psi_state")->Value(), 0.0);
  EXPECT_EQ(registry.GetGauge("monitor.env.Zhejiang.state")->Value(), 0.0);
}

}  // namespace
}  // namespace lightmirm::obs
