#include "obs/export.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace lightmirm::obs {
namespace {

// A small registry with one metric of every kind and hand-computable
// values: histogram over bounds {1, 2} with samples 0.5 / 1.5 / 5.0 (one
// per bucket including overflow), so sum = 7, mean = 7/3, p50 = 1.5 and
// p95/p99 clamp to the last bound.
void FillRegistry(MetricsRegistry* registry) {
  registry->GetCounter("requests")->Increment(3);
  registry->GetGauge("queue.depth")->Set(2.5);
  const std::vector<double> bounds = {1.0, 2.0};
  Histogram* h = registry->GetHistogram("lat", &bounds);
  h->Record(0.5);
  h->Record(1.5);
  h->Record(5.0);
  Series* s = registry->GetSeries("loss");
  s->Append(1.0);
  s->Append(2.5);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(ExportJsonTest, MatchesGolden) {
  MetricsRegistry registry;
  FillRegistry(&registry);
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"requests\": 3\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"queue.depth\": 2.5\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"lat\": {\"count\": 3, \"sum\": 7, \"mean\": 2.33333333333, "
      "\"p50\": 1.5, \"p95\": 2, \"p99\": 2, \"buckets\": "
      "[{\"le\": 1, \"count\": 1}, {\"le\": 2, \"count\": 1}, "
      "{\"le\": \"+Inf\", \"count\": 1}]}\n"
      "  },\n"
      "  \"series\": {\n"
      "    \"loss\": [1, 2.5]\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(ExportJson(registry), expected);
}

TEST(ExportJsonTest, EmptyRegistryIsStillValidDocument) {
  MetricsRegistry registry;
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "  },\n"
      "  \"gauges\": {\n"
      "  },\n"
      "  \"histograms\": {\n"
      "  },\n"
      "  \"series\": {\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(ExportJson(registry), expected);
}

TEST(ExportPrometheusTest, MatchesGolden) {
  MetricsRegistry registry;
  FillRegistry(&registry);
  const std::string expected =
      "# TYPE lightmirm_requests counter\n"
      "lightmirm_requests 3\n"
      "# TYPE lightmirm_queue_depth gauge\n"
      "lightmirm_queue_depth 2.5\n"
      "# TYPE lightmirm_lat histogram\n"
      "lightmirm_lat_bucket{le=\"1\"} 1\n"
      "lightmirm_lat_bucket{le=\"2\"} 2\n"
      "lightmirm_lat_bucket{le=\"+Inf\"} 3\n"
      "lightmirm_lat_sum 7\n"
      "lightmirm_lat_count 3\n"
      "# TYPE lightmirm_loss_last gauge\n"
      "lightmirm_loss_last 2.5\n";
  EXPECT_EQ(ExportPrometheus(registry), expected);
}

TEST(WriteTelemetryFileTest, PicksFormatFromExtension) {
  MetricsRegistry registry;
  FillRegistry(&registry);
  const std::string json_path = ::testing::TempDir() + "telemetry_test.json";
  const std::string prom_path = ::testing::TempDir() + "telemetry_test.prom";
  ASSERT_TRUE(WriteTelemetryFile(registry, json_path).ok());
  ASSERT_TRUE(WriteTelemetryFile(registry, prom_path).ok());
  EXPECT_EQ(ReadFile(json_path), ExportJson(registry));
  EXPECT_EQ(ReadFile(prom_path), ExportPrometheus(registry));
}

TEST(WriteTelemetryFileTest, UnwritablePathFails) {
  MetricsRegistry registry;
  EXPECT_FALSE(
      WriteTelemetryFile(registry, "/nonexistent-dir/telemetry.json").ok());
}

}  // namespace
}  // namespace lightmirm::obs
