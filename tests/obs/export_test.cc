#include "obs/export.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace lightmirm::obs {
namespace {

// A small registry with one metric of every kind and hand-computable
// values: histogram over bounds {1, 2} with samples 0.5 / 1.5 / 5.0 (one
// per bucket including overflow), so sum = 7, mean = 7/3, p50 = 1.5 and
// p95/p99 clamp to the last bound.
void FillRegistry(MetricsRegistry* registry) {
  registry->GetCounter("requests")->Increment(3);
  registry->GetGauge("queue.depth")->Set(2.5);
  const std::vector<double> bounds = {1.0, 2.0};
  Histogram* h = registry->GetHistogram("lat", &bounds);
  h->Record(0.5);
  h->Record(1.5);
  h->Record(5.0);
  Series* s = registry->GetSeries("loss");
  s->Append(1.0);
  s->Append(2.5);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(ExportJsonTest, MatchesGolden) {
  MetricsRegistry registry;
  FillRegistry(&registry);
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"requests\": 3\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"queue.depth\": 2.5\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"lat\": {\"count\": 3, \"sum\": 7, \"mean\": 2.33333333333, "
      "\"p50\": 1.5, \"p95\": 2, \"p99\": 2, \"buckets\": "
      "[{\"le\": 1, \"count\": 1}, {\"le\": 2, \"count\": 1}, "
      "{\"le\": \"+Inf\", \"count\": 1}]}\n"
      "  },\n"
      "  \"series\": {\n"
      "    \"loss\": [1, 2.5]\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(ExportJson(registry), expected);
}

TEST(ExportJsonTest, EmptyRegistryIsStillValidDocument) {
  MetricsRegistry registry;
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "  },\n"
      "  \"gauges\": {\n"
      "  },\n"
      "  \"histograms\": {\n"
      "  },\n"
      "  \"series\": {\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(ExportJson(registry), expected);
}

TEST(ExportPrometheusTest, MatchesGolden) {
  MetricsRegistry registry;
  FillRegistry(&registry);
  const std::string expected =
      "# TYPE lightmirm_requests counter\n"
      "lightmirm_requests 3\n"
      "# TYPE lightmirm_queue_depth gauge\n"
      "lightmirm_queue_depth 2.5\n"
      "# TYPE lightmirm_lat histogram\n"
      "lightmirm_lat_bucket{le=\"1\"} 1\n"
      "lightmirm_lat_bucket{le=\"2\"} 2\n"
      "lightmirm_lat_bucket{le=\"+Inf\"} 3\n"
      "lightmirm_lat_sum 7\n"
      "lightmirm_lat_count 3\n"
      "# TYPE lightmirm_loss_last gauge\n"
      "lightmirm_loss_last 2.5\n";
  EXPECT_EQ(ExportPrometheus(registry), expected);
}

TEST(ExportJsonTest, LabeledCellsRenderAfterUnlabeledEntries) {
  MetricsRegistry registry;
  registry.GetCounter("requests")->Increment(3);
  registry.GetCounter("service.flushes", {{"shard", "0"}, {"reason", "size"}})
      ->Increment(4);
  registry.GetGauge("service.shard.queue_rows", {{"shard", "1"}})->Set(7);
  const std::vector<double> bounds = {1.0, 2.0};
  registry.GetHistogram("lat", {{"shard", "0"}}, &bounds)->Record(1.5);
  const std::string json = ExportJson(registry);
  // Labeled cells render as `family{label=\"value\"}` keys (canonical
  // label order), after the unlabeled entries of the section.
  EXPECT_NE(json.find("\"requests\": 3,\n"
                      "    \"service.flushes"
                      "{reason=\\\"size\\\",shard=\\\"0\\\"}\": 4\n"),
            std::string::npos)
      << json;
  EXPECT_NE(
      json.find("\"service.shard.queue_rows{shard=\\\"1\\\"}\": 7"),
      std::string::npos);
  EXPECT_NE(json.find("\"lat{shard=\\\"0\\\"}\": {\"count\": 1"),
            std::string::npos);
}

TEST(ExportPrometheusTest, LabeledFamiliesGetOneTypeLineAndPerCellSamples) {
  MetricsRegistry registry;
  registry.GetCounter("service.flushes", {{"shard", "0"}, {"reason", "size"}})
      ->Increment(2);
  registry
      .GetCounter("service.flushes", {{"shard", "1"}, {"reason", "deadline"}})
      ->Increment(5);
  registry.GetGauge("service.shard.queue_rows", {{"shard", "0"}})->Set(12);
  const std::vector<double> bounds = {1.0, 2.0};
  Histogram* h =
      registry.GetHistogram("service.batch.rows", {{"shard", "0"}}, &bounds);
  h->Record(0.5);
  h->Record(1.5);
  h->Record(5.0);
  const std::string expected =
      "# TYPE lightmirm_service_batch_rows histogram\n"
      "lightmirm_service_batch_rows_bucket{shard=\"0\",le=\"1\"} 1\n"
      "lightmirm_service_batch_rows_bucket{shard=\"0\",le=\"2\"} 2\n"
      "lightmirm_service_batch_rows_bucket{shard=\"0\",le=\"+Inf\"} 3\n"
      "lightmirm_service_batch_rows_sum{shard=\"0\"} 7\n"
      "lightmirm_service_batch_rows_count{shard=\"0\"} 3\n";
  const std::string prom = ExportPrometheus(registry);
  EXPECT_NE(prom.find(expected), std::string::npos) << prom;
  // One TYPE line for the two-cell counter family, cells in canonical
  // (label-sorted) order.
  EXPECT_NE(prom.find(
                "# TYPE lightmirm_service_flushes counter\n"
                "lightmirm_service_flushes{reason=\"deadline\",shard=\"1\"} "
                "5\n"
                "lightmirm_service_flushes{reason=\"size\",shard=\"0\"} 2\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(
      prom.find("# TYPE lightmirm_service_shard_queue_rows gauge\n"
                "lightmirm_service_shard_queue_rows{shard=\"0\"} 12\n"),
      std::string::npos);
}

TEST(ExportPrometheusTest, SkipsCellsWithInvalidOrReservedLabelNames) {
  MetricsRegistry registry;
  registry.GetCounter("ok", {{"shard", "0"}})->Increment();
  registry.GetCounter("bad", {{"le", "1"}})->Increment();       // reserved
  registry.GetCounter("bad2", {{"has space", "x"}})->Increment();
  const std::string prom = ExportPrometheus(registry);
  EXPECT_NE(prom.find("lightmirm_ok{shard=\"0\"} 1"), std::string::npos);
  EXPECT_EQ(prom.find("lightmirm_bad"), std::string::npos);
}

TEST(ExportPrometheusTest, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.GetGauge("g", {{"province", "He\"nan\\\n"}})->Set(1);
  EXPECT_NE(ExportPrometheus(registry)
                .find("lightmirm_g{province=\"He\\\"nan\\\\\\n\"} 1"),
            std::string::npos);
}

TEST(WriteTelemetryFileTest, PicksFormatFromExtension) {
  MetricsRegistry registry;
  FillRegistry(&registry);
  const std::string json_path = ::testing::TempDir() + "telemetry_test.json";
  const std::string prom_path = ::testing::TempDir() + "telemetry_test.prom";
  ASSERT_TRUE(WriteTelemetryFile(registry, json_path).ok());
  ASSERT_TRUE(WriteTelemetryFile(registry, prom_path).ok());
  EXPECT_EQ(ReadFile(json_path), ExportJson(registry));
  EXPECT_EQ(ReadFile(prom_path), ExportPrometheus(registry));
}

TEST(WriteTelemetryFileTest, UnwritablePathFails) {
  MetricsRegistry registry;
  EXPECT_FALSE(
      WriteTelemetryFile(registry, "/nonexistent-dir/telemetry.json").ok());
}

TEST(PromFormatTest, MetricNameGrammar) {
  EXPECT_TRUE(IsValidPromMetricName("lightmirm_requests"));
  EXPECT_TRUE(IsValidPromMetricName("a_b:c9"));
  EXPECT_TRUE(IsValidPromMetricName("_leading_underscore"));
  EXPECT_FALSE(IsValidPromMetricName(""));
  EXPECT_FALSE(IsValidPromMetricName("9starts_with_digit"));
  EXPECT_FALSE(IsValidPromMetricName("has space"));
  EXPECT_FALSE(IsValidPromMetricName("has.dot"));
  EXPECT_FALSE(IsValidPromMetricName("newline\ninjection 1"));
}

TEST(PromFormatTest, EscapesHostileLabelValues) {
  EXPECT_EQ(PromEscapeLabelValue("plain"), "plain");
  EXPECT_EQ(PromEscapeLabelValue("back\\slash"), "back\\\\slash");
  EXPECT_EQ(PromEscapeLabelValue("quo\"te"), "quo\\\"te");
  EXPECT_EQ(PromEscapeLabelValue("new\nline"), "new\\nline");
}

// A label value carrying every hostile character renders as one valid
// exposition line: the quote, backslash and newline cannot break out of
// the quoted label value.
TEST(PromSampleLineTest, GoldenWithHostileLabel) {
  auto line = PromSampleLine("monitor.env.psi",
                             {{"province", "He\"nan\\\n"}}, 0.25);
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(*line,
            "lightmirm_monitor_env_psi{province=\"He\\\"nan\\\\\\n\"} "
            "0.25\n");
}

TEST(PromSampleLineTest, NoLabelsAndNameMapping) {
  auto line = PromSampleLine("serve.batch.seconds", {}, 2.0);
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(*line, "lightmirm_serve_batch_seconds 2\n");
}

TEST(PromSampleLineTest, RejectsInvalidLabelNames) {
  EXPECT_FALSE(PromSampleLine("m", {{"bad name", "v"}}, 1.0).ok());
  EXPECT_FALSE(PromSampleLine("m", {{"9lead", "v"}}, 1.0).ok());
  EXPECT_FALSE(PromSampleLine("m", {{"", "v"}}, 1.0).ok());
  EXPECT_FALSE(PromSampleLine("m", {{"inj\"ect", "v"}}, 1.0).ok());
}

TEST(ChromeTraceTest, ExportGolden) {
  const std::vector<TraceEvent> events = {
      {"train.epoch", 1.5, 200.25, 0},
      {"serve\"batch", 3.0, 10.0, 1},  // hostile span name gets escaped
  };
  EXPECT_EQ(ExportChromeTrace(events),
            "{\"traceEvents\": [\n"
            "  {\"ph\": \"X\", \"name\": \"train.epoch\", \"pid\": 1, "
            "\"tid\": 0, \"ts\": 1.5, \"dur\": 200.25},\n"
            "  {\"ph\": \"X\", \"name\": \"serve\\\"batch\", \"pid\": 1, "
            "\"tid\": 1, \"ts\": 3, \"dur\": 10}\n"
            "], \"displayTimeUnit\": \"ms\"}\n");
}

TEST(ChromeTraceTest, EmptyEventListIsValidDocument) {
  EXPECT_EQ(ExportChromeTrace({}),
            "{\"traceEvents\": [\n], \"displayTimeUnit\": \"ms\"}\n");
}

TEST(ChromeTraceTest, RecordingCapturesNestedSpans) {
  MetricsRegistry registry;
  SetTraceRecordingEnabled(true);
  {
    TraceSpan outer(&registry, "outer");
    { TraceSpan inner(&registry, "inner"); }
  }
  const std::vector<TraceEvent> events = RecordedTraceEvents();
  SetTraceRecordingEnabled(false);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "outer.inner");  // inner closes first
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_GE(events[0].ts_us, events[1].ts_us);  // inner starts after outer
  EXPECT_GE(events[1].dur_us, events[0].dur_us);
  // Re-enabling restarts the buffer and the relative clock.
  SetTraceRecordingEnabled(true);
  EXPECT_TRUE(RecordedTraceEvents().empty());
  SetTraceRecordingEnabled(false);
}

TEST(ChromeTraceTest, DisabledRecordingCapturesNothing) {
  MetricsRegistry registry;
  SetTraceRecordingEnabled(true);
  SetTraceRecordingEnabled(false);
  { TraceSpan span(&registry, "quiet"); }
  EXPECT_TRUE(RecordedTraceEvents().empty());
}

TEST(ChromeTraceTest, WritesTraceFile) {
  const std::string path = ::testing::TempDir() + "trace_test.json";
  const std::vector<TraceEvent> events = {{"span", 0.0, 1.0, 0}};
  ASSERT_TRUE(WriteChromeTraceFile(events, path).ok());
  EXPECT_EQ(ReadFile(path), ExportChromeTrace(events));
  EXPECT_FALSE(WriteChromeTraceFile(events, "/nonexistent-dir/t.json").ok());
}

}  // namespace
}  // namespace lightmirm::obs
