#include "obs/drift.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace lightmirm::obs {
namespace {

TEST(ScoreBinTest, EqualWidthBinsWithClamping) {
  EXPECT_EQ(ScoreBin(0.0, 10), 0);
  EXPECT_EQ(ScoreBin(0.05, 10), 0);
  EXPECT_EQ(ScoreBin(0.1, 10), 1);
  EXPECT_EQ(ScoreBin(0.55, 10), 5);
  EXPECT_EQ(ScoreBin(0.999, 10), 9);
  EXPECT_EQ(ScoreBin(1.0, 10), 9);   // right edge clamps into the last bin
  EXPECT_EQ(ScoreBin(-0.5, 10), 0);  // out-of-range clamps
  EXPECT_EQ(ScoreBin(1.5, 10), 9);
}

TEST(BinnedScoresTest, DerivedQuantities) {
  BinnedScores bins;
  bins.counts = {10, 30};
  bins.positives = {1, 9};
  EXPECT_EQ(bins.Total(), 40u);
  EXPECT_EQ(bins.TotalPositives(), 10u);
  EXPECT_DOUBLE_EQ(bins.DefaultRate(), 0.25);
  EXPECT_EQ(bins.Negatives(), (std::vector<uint64_t>{9, 21}));
  EXPECT_DOUBLE_EQ(BinnedScores{}.DefaultRate(), 0.0);
}

TEST(SlidingWindowTest, TracksBinnedAggregates) {
  SlidingWindow window(/*num_bins=*/10, /*capacity=*/8);
  window.Add(0.05, 1);
  window.Add(0.15, 0);
  window.Add(0.25, -1);  // unlabeled: distribution only
  EXPECT_EQ(window.size(), 3u);
  EXPECT_EQ(window.total_seen(), 3u);
  EXPECT_EQ(window.bin_counts()[0], 1u);
  EXPECT_EQ(window.bin_counts()[1], 1u);
  EXPECT_EQ(window.bin_counts()[2], 1u);
  EXPECT_EQ(window.labeled_total(), 2u);
  EXPECT_EQ(window.positive_total(), 1u);
  EXPECT_EQ(window.labeled_counts()[2], 0u);  // unlabeled row not counted
  // Scores are quantized to 16 bits inside the window (<= 8e-6 error).
  EXPECT_NEAR(window.labeled_score_sums()[0], 0.05, 1e-4);
  EXPECT_NEAR(window.labeled_score_sums()[1], 0.15, 1e-4);
  EXPECT_DOUBLE_EQ(window.labeled_score_sums()[2], 0.0);
}

TEST(SlidingWindowTest, EvictionKeepsOnlyTheLastCapacityRows) {
  SlidingWindow window(/*num_bins=*/10, /*capacity=*/2);
  window.Add(0.05, 1);
  window.Add(0.15, 1);
  window.Add(0.95, 0);  // evicts 0.05
  EXPECT_EQ(window.size(), 2u);
  EXPECT_EQ(window.total_seen(), 3u);
  EXPECT_EQ(window.bin_counts()[0], 0u);
  EXPECT_EQ(window.bin_counts()[1], 1u);
  EXPECT_EQ(window.bin_counts()[9], 1u);
  EXPECT_EQ(window.labeled_total(), 2u);
  EXPECT_EQ(window.positive_total(), 1u);
}

// A window fed N rows must hold exactly the same aggregates as a fresh
// window fed only the last `capacity` of them — the invariant that makes
// monitor snapshots independent of batch sizes.
TEST(SlidingWindowTest, AggregatesMatchFreshWindowOverTail) {
  const size_t capacity = 16;
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 100; ++i) {
    scores.push_back((i % 23) / 23.0);
    labels.push_back(i % 3 == 0 ? 1 : (i % 3 == 1 ? 0 : -1));
  }
  SlidingWindow rolling(10, capacity);
  for (size_t i = 0; i < scores.size(); ++i) rolling.Add(scores[i], labels[i]);
  SlidingWindow fresh(10, capacity);
  for (size_t i = scores.size() - capacity; i < scores.size(); ++i) {
    fresh.Add(scores[i], labels[i]);
  }
  EXPECT_EQ(rolling.size(), fresh.size());
  EXPECT_EQ(rolling.bin_counts(), fresh.bin_counts());
  EXPECT_EQ(rolling.labeled_counts(), fresh.labeled_counts());
  EXPECT_EQ(rolling.labeled_positives(), fresh.labeled_positives());
  EXPECT_EQ(rolling.labeled_total(), fresh.labeled_total());
  EXPECT_EQ(rolling.positive_total(), fresh.positive_total());
  for (size_t b = 0; b < 10; ++b) {
    EXPECT_NEAR(rolling.labeled_score_sums()[b],
                fresh.labeled_score_sums()[b], 1e-9);
  }
}

TEST(BuildScoreReferenceTest, FiltersSmallEnvironmentsAndKeepsNames) {
  std::vector<double> scores;
  std::vector<int> labels;
  std::vector<int> envs;
  for (int i = 0; i < 60; ++i) {  // env 0: 60 rows
    scores.push_back(0.25);
    labels.push_back(i % 4 == 0);
    envs.push_back(0);
  }
  for (int i = 0; i < 10; ++i) {  // env 1: only 10 rows
    scores.push_back(0.75);
    labels.push_back(1);
    envs.push_back(1);
  }
  auto ref = BuildScoreReference(scores, labels, envs, /*num_bins=*/4,
                                 /*min_env_rows=*/50, {"Hubei", "Tibet"});
  ASSERT_TRUE(ref.ok());
  EXPECT_FALSE(ref->empty());
  EXPECT_EQ(ref->global.Total(), 70u);
  ASSERT_EQ(ref->per_env.count(0), 1u);
  EXPECT_EQ(ref->per_env.count(1), 0u);  // under min_env_rows
  EXPECT_EQ(ref->per_env.at(0).Total(), 60u);
  EXPECT_EQ(ref->per_env.at(0).counts[1], 60u);
  EXPECT_EQ(ref->per_env.at(0).positives[1], 15u);
  EXPECT_EQ(ref->EnvName(0), "Hubei");
  EXPECT_EQ(ref->EnvName(7), "env7");
}

TEST(BuildScoreReferenceTest, RejectsBadInputs) {
  EXPECT_FALSE(BuildScoreReference({}, {}, {}).ok());
  EXPECT_FALSE(BuildScoreReference({0.5}, {1, 0}, {}).ok());
  EXPECT_FALSE(BuildScoreReference({0.5}, {2}, {}).ok());
  EXPECT_FALSE(BuildScoreReference({0.5}, {1}, {0, 1}).ok());
  EXPECT_FALSE(BuildScoreReference({0.5}, {1}, {}, /*num_bins=*/1).ok());
}

TEST(ScoreReferenceTest, RoundTripsThroughTextIncludingSpacedNames) {
  auto built = BuildScoreReference(
      {0.1, 0.3, 0.3, 0.9, 0.9, 0.9}, {0, 0, 1, 1, 1, 0}, {0, 0, 0, 1, 1, 1},
      /*num_bins=*/5, /*min_env_rows=*/2, {"Inner Mongolia", "Hubei"});
  ASSERT_TRUE(built.ok());
  std::ostringstream out;
  ASSERT_TRUE(built->WriteTo(&out).ok());
  std::istringstream in(out.str());
  auto parsed = ScoreReference::Parse(&in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_bins, built->num_bins);
  EXPECT_EQ(parsed->global.counts, built->global.counts);
  EXPECT_EQ(parsed->global.positives, built->global.positives);
  ASSERT_EQ(parsed->per_env.size(), built->per_env.size());
  for (const auto& [env, bins] : built->per_env) {
    ASSERT_EQ(parsed->per_env.count(env), 1u);
    EXPECT_EQ(parsed->per_env.at(env).counts, bins.counts);
    EXPECT_EQ(parsed->per_env.at(env).positives, bins.positives);
  }
  EXPECT_EQ(parsed->env_names,
            (std::vector<std::string>{"Inner Mongolia", "Hubei"}));
}

TEST(ScoreReferenceTest, ParseAtEndOfStreamReturnsEmptyReference) {
  std::istringstream in("");
  auto parsed = ScoreReference::Parse(&in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(ScoreReferenceTest, EmptyReferenceRoundTrips) {
  ScoreReference empty;
  std::ostringstream out;
  ASSERT_TRUE(empty.WriteTo(&out).ok());
  std::istringstream in(out.str());
  auto parsed = ScoreReference::Parse(&in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(ScoreReferenceTest, ParseRejectsMalformedSections) {
  {
    std::istringstream in("not_a_reference 10 0 0\n");
    EXPECT_FALSE(ScoreReference::Parse(&in).ok());
  }
  {
    std::istringstream in("score_reference 4 1 0\nglobal 1 2 3\n");
    EXPECT_FALSE(ScoreReference::Parse(&in).ok());  // truncated bins
  }
  {
    // positives > counts in a bin.
    std::istringstream in("score_reference 2 0 0\nglobal 1 1 5 0\n");
    EXPECT_FALSE(ScoreReference::Parse(&in).ok());
  }
}

}  // namespace
}  // namespace lightmirm::obs
